#!/usr/bin/env bash
# Tier-1 CI: build Debug and Release with -Wall -Wextra -Werror and run the
# full test suite in each. Set SECDDR_CI_SANITIZE=1 to append an
# address+undefined sanitizer build (unit label only, for speed).
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc)"

run_matrix() {
  local cfg="$1" bdir="$2"
  shift 2
  cmake -B "$bdir" -S . -DCMAKE_BUILD_TYPE="$cfg" -DSECDDR_WERROR=ON "$@"
  cmake --build "$bdir" -j "$jobs"
  ctest --test-dir "$bdir" --output-on-failure -j "$jobs" \
        ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
}

CTEST_ARGS=()
run_matrix Debug build-ci-debug
run_matrix Release build-ci-release

# The slow-vs-fast simulation-loop determinism check must hold in both
# build types. It already ran as part of the full suites above; re-run it
# explicitly so a future CTEST_ARGS filter can never silently skip it.
for bdir in build-ci-debug build-ci-release; do
  ctest --test-dir "$bdir" -L determinism --no-tests=error \
        --output-on-failure -j "$jobs"
done

# Dedicated multi-channel step: the determinism label again with the
# backend sharded across 2 channels (SECDDR_CHANNELS overrides every
# variant that does not pin its own channel count), Release build.
SECDDR_CHANNELS=2 ctest --test-dir build-ci-release -L determinism \
      --no-tests=error --output-on-failure -j "$jobs"

# Threaded-memory step: the determinism label with every variant's
# channels ticked on 2 worker threads (SECDDR_MEM_THREADS; single-channel
# variants clamp back to serial), Release build. Threaded and serial runs
# must be bit-identical.
SECDDR_MEM_THREADS=2 ctest --test-dir build-ci-release -L determinism \
      --no-tests=error --output-on-failure -j "$jobs"

# Epoch-decoupled bench smoke: a bounded Release run of bench/speed,
# which hard-fails if the epoch loop or the threaded 4-channel sweep is
# not bit-identical to the per-cycle serial reference. The wall-clock
# speedup gate stays opt-in (SECDDR_SPEED_GATE_THREADS=1, for hosts with
# >= 4 cores); the identity gate always runs.
SECDDR_INSTR=4000 SECDDR_WARMUP=2000 SECDDR_FILTER=b SECDDR_SPEED_JSON='' \
      ./build-ci-release/speed

# Trace-subsystem battery: the trace label (codec round-trip/property
# tests, the corruption battery, text-parser regressions, source
# determinism, trace_convert selftest, record+replay sweep smoke) in both
# build types. Already covered by the full suites above; re-run
# explicitly so a future CTEST_ARGS filter can never silently skip it.
for bdir in build-ci-debug build-ci-release; do
  ctest --test-dir "$bdir" -L trace --no-tests=error \
        --output-on-failure -j "$jobs"
done

# Adversarial-fuzz step: the fuzz label (fuzzer unit tests, bounded
# campaign + cross-jobs/loop-mode reproducibility, checked-in regression
# replays, and the campaign smoke via bench/fuzz_campaign) in both build
# types. Bounded well below the default 10k-trial campaign: CI asserts
# zero undetected corruptions on the bounded run; the full campaign is
# the bench entry point. Already covered by the full suites above;
# re-run explicitly so a future CTEST_ARGS filter can never skip it.
for bdir in build-ci-debug build-ci-release; do
  ctest --test-dir "$bdir" -L fuzz --no-tests=error \
        --output-on-failure -j "$jobs"
done

# Fleet-service step: the fleet label (checkpoint corruption battery +
# generational-fallback cases, Node/coordinator integration incl. the
# forced worker-SIGKILL recovery, the chaos battery, the warm-start
# harness gate, and the fleetd kill-recovery + chaos smokes, which exit
# non-zero unless the recovered aggregates are byte-identical to an
# undisturbed single-worker run) in both build types. Already covered by
# the full suites above; re-run explicitly so a future CTEST_ARGS filter
# can never silently skip it.
for bdir in build-ci-debug build-ci-release; do
  ctest --test-dir "$bdir" -L fleet --no-tests=error \
        --output-on-failure -j "$jobs"
done

# Power/thermal step: the power label (Table II golden hash + paper gate,
# the integer energy/thermal property tests, accounting-neutrality and
# policy-determinism runs, throttle/remap engagement, checkpointed
# thermal state, and the bounded bench/thermal smoke) in both build
# types. Already covered by the full suites above; re-run explicitly so
# a future CTEST_ARGS filter can never silently skip it.
for bdir in build-ci-debug build-ci-release; do
  ctest --test-dir "$bdir" -L power --no-tests=error \
        --output-on-failure -j "$jobs"
done

# Chaos-hardening step: a bounded fleetd run with the seeded
# fault-injection plan armed (crash-during-checkpoint, crash between tmp
# and rename, corrupted + torn generations, a hung worker recovered by
# the watchdog, a torn result frame), Debug and Release. fleetd exits
# non-zero unless every fault is absorbed: recovered aggregates
# bit-identical to the undisturbed reference, zero quarantined nodes.
for bdir in build-ci-debug build-ci-release; do
  SECDDR_INSTR=4000 SECDDR_WARMUP=1000 SECDDR_CORES=2 \
  SECDDR_FLEET_NODES=3 SECDDR_FLEET_WORKERS=2 SECDDR_FLEET_CKPT=1000 \
  SECDDR_FLEET_WATCHDOG_MS=2000 SECDDR_FLEET_STATE="$bdir/ci_chaos_state" \
  SECDDR_FLEET_JSON='' "./$bdir/fleetd" --chaos=7
done

if [[ "${SECDDR_CI_SANITIZE:-0}" == "1" ]]; then
  # unit + trace + fuzz: the corruption battery (including the
  # single-byte-flip smoke) and the adversarial fault injector must be
  # clean under ASan/UBSan, not just throw nicely. The fuzz campaigns in
  # that label are already CI-bounded (well under the 10k bench run).
  CTEST_ARGS=(-L 'unit|trace|fuzz|power')
  run_matrix Debug build-ci-asan -DSECDDR_SANITIZE=address,undefined
  # ThreadSanitizer over the threaded-backend paths (backend-level
  # thread tests plus the threaded determinism tests, with the backend
  # forced multi-threaded) and over the trace prefetch thread
  # (StreamFileTrace producer/consumer handoff, incl. mid-stream
  # destruction in loop mode).
  CTEST_ARGS=(-R "Threaded|SimFastPathDeterminism|StreamFileTrace|TraceSourceDeterminism|TraceCodec")
  SECDDR_MEM_THREADS=2 run_matrix Debug build-ci-tsan -DSECDDR_SANITIZE=thread
  # Epoch-decoupled races: the full determinism + fuzz labels with every
  # variant's channels spread over 4 workers, so TSan watches the wide
  # epoch windows (tick_until run-ahead + atomic wait/notify barrier),
  # not just the per-cycle handoff the step above exercises.
  SECDDR_MEM_THREADS=4 ctest --test-dir build-ci-tsan \
        -L 'determinism|fuzz' --no-tests=error --output-on-failure \
        -j "$jobs"
fi

echo "CI OK"
