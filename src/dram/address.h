// Physical address to DRAM coordinate mapping.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "dram/timings.h"

namespace secddr::dram {

/// A decoded DRAM coordinate.
struct DecodedAddr {
  unsigned rank = 0;
  unsigned bank_group = 0;
  unsigned bank = 0;  ///< bank within its group
  std::uint64_t row = 0;
  unsigned column = 0;  ///< cache-line column within the row

  /// Flat bank id within the channel: rank * banks_per_rank + bg * bpg + bank.
  unsigned flat_bank(const Geometry& g) const {
    return rank * g.banks_per_rank() + bank_group * g.banks_per_group + bank;
  }

  friend bool operator==(const DecodedAddr& a, const DecodedAddr& b) {
    return a.rank == b.rank && a.bank_group == b.bank_group &&
           a.bank == b.bank && a.row == b.row && a.column == b.column;
  }
};

/// Row-interleaved mapping (low bits -> column, then bank group, bank, rank,
/// row) with optional XOR-based bank permutation that spreads row-conflict
/// streams across banks.
class AddressMapping {
 public:
  explicit AddressMapping(const Geometry& geometry, bool xor_banks = true);

  DecodedAddr decode(Addr byte_addr) const;
  /// Inverse of decode (line-aligned address).
  Addr encode(const DecodedAddr& d) const;

  const Geometry& geometry() const { return geometry_; }

 private:
  Geometry geometry_;
  bool xor_banks_;
  unsigned col_bits_, bg_bits_, bank_bits_, rank_bits_;
};

}  // namespace secddr::dram
