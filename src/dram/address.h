// Physical address to DRAM coordinate mapping.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "dram/timings.h"

namespace secddr::dram {

/// A decoded DRAM coordinate.
struct DecodedAddr {
  unsigned rank = 0;
  unsigned bank_group = 0;
  unsigned bank = 0;  ///< bank within its group
  std::uint64_t row = 0;
  unsigned column = 0;  ///< cache-line column within the row

  /// Flat bank id within the channel: rank * banks_per_rank + bg * bpg + bank.
  unsigned flat_bank(const Geometry& g) const {
    return rank * g.banks_per_rank() + bank_group * g.banks_per_group + bank;
  }

  friend bool operator==(const DecodedAddr& a, const DecodedAddr& b) {
    return a.rank == b.rank && a.bank_group == b.bank_group &&
           a.bank == b.bank && a.row == b.row && a.column == b.column;
  }
};

/// Extracts the channel-select bits from a global physical address and
/// converts between the global address space and each channel's dense
/// local address space (channel bits removed). Controllers, metadata
/// layouts, and security engines all operate on local addresses, so a
/// single-channel system (`channels == 1`) sees the identity mapping.
class ChannelSelector {
 public:
  explicit ChannelSelector(const Geometry& geometry);

  unsigned channels() const { return channels_; }
  /// Bit position of the lowest channel-select bit.
  unsigned shift() const { return shift_; }

  /// Channel owning `byte_addr`.
  unsigned channel_of(Addr byte_addr) const {
    return static_cast<unsigned>((byte_addr >> shift_) & (channels_ - 1));
  }
  /// Strips the channel bits: the dense channel-local address.
  Addr to_local(Addr byte_addr) const {
    const Addr low = byte_addr & ((Addr{1} << shift_) - 1);
    const Addr high = byte_addr >> (shift_ + ch_bits_);
    return (high << shift_) | low;
  }
  /// Inverse of to_local: re-inserts the channel bits.
  Addr to_global(unsigned channel, Addr local) const {
    const Addr low = local & ((Addr{1} << shift_) - 1);
    const Addr high = local >> shift_;
    return (((high << ch_bits_) | channel) << shift_) | low;
  }

 private:
  unsigned channels_, ch_bits_, shift_;
};

/// Row-interleaved mapping (low bits -> column, then bank group, bank, rank,
/// row) with optional XOR-based bank permutation that spreads row-conflict
/// streams across banks. Operates on channel-local addresses (the
/// ChannelSelector removes the channel bits first).
class AddressMapping {
 public:
  explicit AddressMapping(const Geometry& geometry, bool xor_banks = true);

  DecodedAddr decode(Addr byte_addr) const;
  /// Inverse of decode (line-aligned address).
  Addr encode(const DecodedAddr& d) const;

  const Geometry& geometry() const { return geometry_; }

 private:
  Geometry geometry_;
  bool xor_banks_;
  unsigned col_bits_, bg_bits_, bank_bits_, rank_bits_;
};

}  // namespace secddr::dram
