#include "dram/address.h"

#include <cassert>

#include "common/bitops.h"

namespace secddr::dram {

ChannelSelector::ChannelSelector(const Geometry& geometry)
    : channels_(geometry.channels) {
  assert(channels_ >= 1 && is_pow2(channels_));
  assert(is_pow2(geometry.columns_per_row));
  ch_bits_ = ilog2(channels_);
  shift_ = kLineBits;
  if (geometry.channel_interleave == ChannelInterleave::kRow)
    shift_ += ilog2(geometry.columns_per_row);
}

AddressMapping::AddressMapping(const Geometry& geometry, bool xor_banks)
    : geometry_(geometry), xor_banks_(xor_banks) {
  assert(is_pow2(geometry.columns_per_row));
  assert(is_pow2(geometry.bank_groups));
  assert(is_pow2(geometry.banks_per_group));
  assert(is_pow2(geometry.ranks));
  assert(is_pow2(geometry.rows_per_bank));
  col_bits_ = ilog2(geometry.columns_per_row);
  bg_bits_ = ilog2(geometry.bank_groups);
  bank_bits_ = ilog2(geometry.banks_per_group);
  rank_bits_ = ilog2(geometry.ranks);
}

DecodedAddr AddressMapping::decode(Addr byte_addr) const {
  std::uint64_t v = line_index(byte_addr);
  DecodedAddr d;
  d.column = static_cast<unsigned>(bits(v, 0, col_bits_));
  unsigned pos = col_bits_;
  d.bank_group = static_cast<unsigned>(bits(v, pos, bg_bits_));
  pos += bg_bits_;
  d.bank = static_cast<unsigned>(bits(v, pos, bank_bits_));
  pos += bank_bits_;
  d.rank = static_cast<unsigned>(bits(v, pos, rank_bits_));
  pos += rank_bits_;
  d.row = bits(v, pos, 64 - pos) % geometry_.rows_per_bank;
  if (xor_banks_) {
    // Permute banks with low row bits so same-bank row streams spread out.
    d.bank_group =
        static_cast<unsigned>((d.bank_group ^ d.row) & (geometry_.bank_groups - 1));
    d.bank = static_cast<unsigned>((d.bank ^ (d.row >> bg_bits_)) &
                                   (geometry_.banks_per_group - 1));
  }
  return d;
}

Addr AddressMapping::encode(const DecodedAddr& d) const {
  unsigned bg = d.bank_group;
  unsigned bank = d.bank;
  if (xor_banks_) {
    bg = static_cast<unsigned>((bg ^ d.row) & (geometry_.bank_groups - 1));
    bank = static_cast<unsigned>((bank ^ (d.row >> bg_bits_)) &
                                 (geometry_.banks_per_group - 1));
  }
  std::uint64_t v = d.row;
  v = (v << rank_bits_) | d.rank;
  v = (v << bank_bits_) | bank;
  v = (v << bg_bits_) | bg;
  v = (v << col_bits_) | d.column;
  return v << kLineBits;
}

}  // namespace secddr::dram
