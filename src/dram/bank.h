// Per-bank DRAM state machine.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace secddr::dram {

/// Timing state of one DRAM bank. The controller consults the `next_*`
/// earliest-allowed cycles before issuing a command and updates them on
/// issue; the bank itself only tracks the open row.
struct Bank {
  static constexpr std::int64_t kClosed = -1;

  std::int64_t open_row = kClosed;
  Cycle next_activate = 0;
  Cycle next_read = 0;
  Cycle next_write = 0;
  Cycle next_precharge = 0;

  bool is_open() const { return open_row != kClosed; }

  /// Applies an ACTIVATE issued at `now`.
  void activate(std::uint64_t row, Cycle now, unsigned tRCD, unsigned tRAS) {
    open_row = static_cast<std::int64_t>(row);
    next_read = std::max(next_read, now + tRCD);
    next_write = std::max(next_write, now + tRCD);
    next_precharge = std::max(next_precharge, now + tRAS);
  }

  /// Applies a PRECHARGE issued at `now`.
  void precharge(Cycle now, unsigned tRP) {
    open_row = kClosed;
    next_activate = std::max(next_activate, now + tRP);
  }
};

}  // namespace secddr::dram
