// Per-bank DRAM state machine and per-bank request FIFO.
#pragma once

#include <cstdint>
#include <deque>

#include "common/types.h"
#include "dram/address.h"

namespace secddr::dram {

/// Timing state of one DRAM bank. The controller consults the `next_*`
/// earliest-allowed cycles before issuing a command and updates them on
/// issue; the bank itself only tracks the open row.
struct Bank {
  static constexpr std::int64_t kClosed = -1;

  std::int64_t open_row = kClosed;
  Cycle next_activate = 0;
  Cycle next_read = 0;
  Cycle next_write = 0;
  Cycle next_precharge = 0;

  bool is_open() const { return open_row != kClosed; }

  /// Applies an ACTIVATE issued at `now`.
  void activate(std::uint64_t row, Cycle now, unsigned tRCD, unsigned tRAS) {
    open_row = static_cast<std::int64_t>(row);
    next_read = std::max(next_read, now + tRCD);
    next_write = std::max(next_write, now + tRCD);
    next_precharge = std::max(next_precharge, now + tRAS);
  }

  /// Applies a PRECHARGE issued at `now`.
  void precharge(Cycle now, unsigned tRP) {
    open_row = kClosed;
    next_activate = std::max(next_activate, now + tRP);
  }
};

/// One queued controller transaction. `seq` is the global arrival order
/// (unique, monotone), which is what FR-FCFS ages and tie-breaks on now
/// that entries live in per-bank FIFOs instead of one global deque.
struct Request {
  Addr addr;
  DecodedAddr d;
  std::uint64_t tag;
  Cycle arrival;
  std::uint64_t seq;
  bool activated_for = false;  ///< an ACT was issued on this entry's behalf
};

/// Per-(bank, direction) request FIFO. Entries stay in arrival order, so
/// the FIFO head is the bank's oldest request and `seq` comparisons across
/// banks reconstruct the global arrival order exactly.
///
/// `match_count` caches how many queued entries target the currently open
/// row; it is only meaningful while the bank is open (the controller
/// recounts on ACTIVATE and ignores it while the bank is closed). It lets
/// the issue and next-event scans classify a bank as "has row hits" /
/// "has conflicts" in O(1) instead of walking the FIFO.
struct BankQueue {
  std::deque<Request> q;
  unsigned match_count = 0;

  bool empty() const { return q.empty(); }
  std::size_t size() const { return q.size(); }
  /// Queued entries that do NOT target the open row (valid while open).
  std::size_t mismatch_count() const { return q.size() - match_count; }

  /// Index of the oldest entry targeting `row`, or -1. The caller reports
  /// entries examined via `visited` (scan-cost accounting).
  int first_match(std::uint64_t row, std::uint64_t* visited) const;
  /// Index of the oldest entry NOT targeting `row`, or -1.
  int first_mismatch(std::uint64_t row, std::uint64_t* visited) const;
  /// Recomputes `match_count` against `open_row` (called on ACTIVATE).
  void recount(std::int64_t open_row);
};

}  // namespace secddr::dram
