// DDR4/DDR5 device geometry and timing parameters.
//
// Values follow Table I of the paper (DDR4-3200 at 1600MHz memory clock).
// SecDDR's eWCRC lengthens the *write* burst (BL8 -> BL10 on DDR4,
// BL16 -> BL18 on DDR5), which is expressed here as `write_burst_cycles`.
// The InvisiMem "realistic" configuration runs the channel at 2400MT/s to
// account for its centralized data buffer (paper §VI-D).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace secddr::dram {

/// Where the channel-select bits sit in the physical address.
enum class ChannelInterleave : std::uint8_t {
  /// Channel bits directly above the line offset: consecutive cache lines
  /// round-robin across channels (maximum bandwidth spreading).
  kLine,
  /// Channel bits above the column bits: row-buffer-sized stripes stay on
  /// one channel (preserves per-channel row locality).
  kRow,
};

/// Channel/DIMM organization. Defaults model one 16GB dual-rank DIMM built
/// from 8Gb x8 devices: 2 ranks x 4 bank groups x 4 banks x 64K rows x
/// 128 cache lines (8KB row buffer). `ranks`..`columns_per_row` describe a
/// single channel; `channels` replicates that channel (each with its own
/// controller, command/data bus, and security engine — SecDDR protects
/// each DDR interface independently).
struct Geometry {
  unsigned channels = 1;
  ChannelInterleave channel_interleave = ChannelInterleave::kLine;
  unsigned ranks = 2;
  unsigned bank_groups = 4;
  unsigned banks_per_group = 4;
  std::uint64_t rows_per_bank = 1ull << 16;
  unsigned columns_per_row = 128;  ///< cache lines per row

  unsigned banks_per_rank() const { return bank_groups * banks_per_group; }
  unsigned total_banks() const { return ranks * banks_per_rank(); }
  std::uint64_t lines_per_bank() const {
    return rows_per_bank * columns_per_row;
  }
  /// Capacity of one channel.
  std::uint64_t channel_capacity_bytes() const {
    return static_cast<std::uint64_t>(total_banks()) * lines_per_bank() *
           kLineSize;
  }
  /// Total capacity across all channels.
  std::uint64_t capacity_bytes() const {
    return channels * channel_capacity_bytes();
  }
};

/// DRAM timing parameters in memory-clock cycles.
struct Timings {
  std::string name = "DDR4-3200";
  double clock_mhz = 1600.0;  ///< memory clock (data rate = 2x)

  unsigned tCL = 22;     ///< read command to first data
  unsigned tRCD = 22;    ///< activate to column command
  unsigned tRP = 22;     ///< precharge to activate
  unsigned tRAS = 56;    ///< activate to precharge
  unsigned tCCD_S = 4;   ///< column-to-column, different bank group
  unsigned tCCD_L = 10;  ///< column-to-column, same bank group
  unsigned tCWL = 16;    ///< write command to first data
  unsigned tWTR_S = 4;   ///< write data end to read cmd, different bank group
  unsigned tWTR_L = 12;  ///< write data end to read cmd, same bank group
  unsigned tRRD_S = 4;   ///< activate to activate, different bank group
  unsigned tRRD_L = 6;   ///< activate to activate, same bank group
  unsigned tFAW = 26;    ///< four-activate window
  unsigned tWR = 24;     ///< write recovery (data end to precharge)
  unsigned tRTP = 12;    ///< read to precharge
  unsigned tRFC = 560;   ///< refresh cycle time (350ns)
  unsigned tREFI = 12480;  ///< refresh interval (7.8us)
  unsigned turnaround = 2;  ///< bus direction / rank switch penalty

  unsigned read_burst_cycles = 4;   ///< BL8 on DDR4
  unsigned write_burst_cycles = 4;  ///< BL8; eWCRC raises this to 5 (BL10)

  /// Nanoseconds per memory-clock cycle.
  double ns_per_cycle() const { return 1000.0 / clock_mhz; }

  /// Table I configuration: DDR4-3200 at 1600MHz.
  static Timings ddr4_3200();
  /// Derated channel for InvisiMem's centralized buffer (2400MT/s).
  static Timings ddr4_2400();
  /// DDR5-ish preset (used by the power model discussion only).
  static Timings ddr5_4800();

  /// Returns a copy with the eWCRC write burst extension applied
  /// (BL8 -> BL10 on DDR4: 4 -> 5 data-bus cycles).
  Timings with_ewcrc_burst() const;
};

}  // namespace secddr::dram
