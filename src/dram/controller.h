// Cycle-level DDR memory controller: FR-FCFS scheduling, separate read and
// write queues with watermark-based write draining, bank/rank/channel
// timing constraints, and per-rank refresh.
//
// Queue sizes follow Table I (64 read + 64 write entries). The data-bus
// occupancy of writes is `Timings::write_burst_cycles`, which is where
// SecDDR's eWCRC burst extension (BL8 -> BL10) costs bandwidth.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "dram/address.h"
#include "dram/bank.h"
#include "dram/timings.h"

namespace secddr::dram {

/// A completed memory transaction, reported to the owner via `tag`.
struct Completion {
  std::uint64_t tag = 0;
  Addr addr = 0;
  bool is_write = false;
  Cycle arrival = 0;
  Cycle finish = 0;  ///< cycle the last data beat left the bus
};

/// Controller statistics.
struct ControllerStats {
  std::uint64_t reads_enqueued = 0;
  std::uint64_t writes_enqueued = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t write_forwards = 0;
  std::uint64_t data_bus_busy_cycles = 0;
  std::uint64_t total_read_latency = 0;  ///< sum over completed reads

  double row_hit_rate() const {
    const std::uint64_t n = row_hits + row_misses;
    return n ? static_cast<double>(row_hits) / static_cast<double>(n) : 0.0;
  }
  double avg_read_latency() const {
    return reads_completed ? static_cast<double>(total_read_latency) /
                                 static_cast<double>(reads_completed)
                           : 0.0;
  }

  /// Accumulates another channel's counters (multi-channel aggregation).
  ControllerStats& operator+=(const ControllerStats& o) {
    reads_enqueued += o.reads_enqueued;
    writes_enqueued += o.writes_enqueued;
    reads_completed += o.reads_completed;
    writes_completed += o.writes_completed;
    row_hits += o.row_hits;
    row_misses += o.row_misses;
    activates += o.activates;
    precharges += o.precharges;
    refreshes += o.refreshes;
    write_forwards += o.write_forwards;
    data_bus_busy_cycles += o.data_bus_busy_cycles;
    total_read_latency += o.total_read_latency;
    return *this;
  }
};

/// Request-scheduling policy.
enum class SchedulingPolicy {
  kFrFcfs,  ///< first-ready FCFS: oldest row hit first (default)
  kFcfs,    ///< strict arrival order (ablation baseline)
};

/// Single-channel memory controller.
class Controller {
 public:
  Controller(const Geometry& geometry, const Timings& timings,
             unsigned read_queue_size = 64, unsigned write_queue_size = 64,
             SchedulingPolicy policy = SchedulingPolicy::kFrFcfs);

  /// True if a read (write) can be enqueued this cycle.
  bool can_accept_read() const { return read_q_.size() < rq_size_; }
  bool can_accept_write() const { return write_q_.size() < wq_size_; }

  /// Enqueues a transaction; returns false if the queue is full.
  /// Reads that hit a pending write are forwarded and complete quickly.
  bool enqueue(Addr addr, bool is_write, std::uint64_t tag, Cycle now);

  /// Advances one memory-clock cycle: issues at most one DRAM command and
  /// retires finished transactions into the completion list.
  void tick(Cycle now);

  /// Conservative next-event query for the event-driven loop: the
  /// earliest memory cycle >= `now` at which tick() could change any
  /// state or statistic (command issue, read retirement, or a refresh
  /// transition). Every tick strictly before the returned cycle is a
  /// guaranteed no-op; the returned cycle itself may still be one (the
  /// estimate errs early, never late). Refresh keeps this finite
  /// (<= ~tREFI away) even for an idle controller. Memoized: recomputed
  /// only after a state change, O(1) on the no-op fast path.
  Cycle next_event_cycle(Cycle now) const;

  /// Completions since the last call (caller drains and clears).
  std::vector<Completion>& completions() { return completions_; }
  bool has_undrained_completions() const { return !completions_.empty(); }

  const ControllerStats& stats() const { return stats_; }
  /// Clears statistics after warmup; bank/queue state is preserved.
  void reset_stats() { stats_ = ControllerStats{}; }
  const Timings& timings() const { return timings_; }
  const Geometry& geometry() const { return geometry_; }
  const AddressMapping& mapping() const { return mapping_; }

  /// Outstanding queued transactions (for drain checks in tests/harness).
  std::size_t pending() const {
    return read_q_.size() + write_q_.size() + inflight_reads_.size();
  }

 private:
  struct Entry {
    Addr addr;
    DecodedAddr d;
    std::uint64_t tag;
    Cycle arrival;
    bool activated_for = false;  ///< an ACT was issued on this entry's behalf
  };
  struct InflightRead {
    Entry entry;
    Cycle finish;
  };
  struct RankState {
    std::deque<Cycle> act_window;  ///< ACT timestamps for tFAW
    Cycle last_act = 0;
    bool have_last_act = false;
    unsigned last_act_bg = 0;
    Cycle next_refresh_due = 0;
    bool refresh_pending = false;
  };

  bool try_issue_column(std::deque<Entry>& q, bool is_write, Cycle now);
  bool try_issue_bank_prep(std::deque<Entry>& q, Cycle now);
  bool handle_refresh(Cycle now);
  /// Earliest cycle a column command for `e` (an open row hit) satisfies
  /// every timing constraint (bank column timing, tCCD, data-bus
  /// availability + turnaround). Single source of truth: both the issue
  /// predicate (allowed == now >= bound) and the memoized next-event
  /// bounds derive from it, so they cannot drift apart.
  Cycle column_ready_at(const Entry& e, bool is_write) const;
  /// Earliest cycle an ACT for `e` (a closed bank) satisfies tRC/tFAW/tRRD;
  /// kNoEvent while the rank's refresh gates activates (refresh events are
  /// tracked separately).
  Cycle act_ready_at(const Entry& e) const;
  bool column_cmd_allowed(const Entry& e, bool is_write, Cycle now) const;
  bool act_allowed(const Entry& e, Cycle now) const;
  void apply_write_to_read_penalty(const Entry& e, Cycle data_end);
  Cycle compute_next_event_cycle(Cycle now) const;
  /// Whether the next tick would serve write columns (same predicate the
  /// tick uses, against the current drain flag and queue states).
  bool serving_writes() const {
    return draining_writes_ || (read_q_.empty() && !write_q_.empty());
  }
  /// Earliest cycle at which `e` could act given current bank state
  /// (column for a row hit, precharge for a conflict, activate for a
  /// closed bank); kNoEvent when gated by a pending refresh (whose own
  /// events are tracked separately).
  Cycle entry_event_bound(const Entry& e, bool is_write) const;
  /// Folds a possibly-earlier event into the memoized next-event cache.
  /// Mutations made *inside* tick() never need this: a mutating tick only
  /// runs once the cached event time has been reached, so the cache
  /// expires and the next query recomputes. Only out-of-tick mutations
  /// (enqueue) can create an event earlier than a still-live cache.
  void observe_event_candidate(Cycle at) const {
    if (next_event_valid_ && at < next_event_cache_) next_event_cache_ = at;
  }

  Geometry geometry_;
  Timings timings_;
  AddressMapping mapping_;
  SchedulingPolicy policy_;
  unsigned rq_size_, wq_size_;
  unsigned drain_low_, drain_high_;
  bool draining_writes_ = false;

  std::vector<Bank> banks_;
  std::vector<RankState> ranks_;

  std::deque<Entry> read_q_;
  std::deque<Entry> write_q_;
  std::vector<InflightRead> inflight_reads_;
  std::vector<Completion> completions_;

  // Channel-level constraints.
  Cycle bus_free_at_ = 0;
  bool bus_last_was_write_ = false;
  unsigned bus_last_rank_ = 0;
  Cycle last_col_cmd_ = 0;
  bool have_last_col_ = false;
  unsigned last_col_bg_ = 0;
  unsigned last_col_rank_ = 0;

  // next_event_cycle() memo (valid until the next state mutation).
  mutable Cycle next_event_cache_ = 0;
  mutable bool next_event_valid_ = false;
  // Per-bank scratch stamps so one timing check per (bank, direction)
  // suffices per scan: same-bank entries in the same state share the same
  // verdict. Indexed [is_write][flat_bank]. try_issue_* passes stamp with
  // the odd value 2*now+1 ("checked, not allowed this cycle");
  // compute_next_event_cycle() stamps with a fresh even epoch per pass.
  mutable std::vector<Cycle> col_checked_[2];
  mutable std::vector<Cycle> act_checked_;
  mutable Cycle compute_epoch_ = 0;

  ControllerStats stats_;
};

}  // namespace secddr::dram
