// Cycle-level DDR memory controller: FR-FCFS scheduling, per-bank read
// and write request FIFOs with watermark-based write draining,
// bank/rank/channel timing constraints, and per-rank refresh.
//
// Requests are organized per (bank, direction): each entry carries a
// global arrival sequence number, so FR-FCFS age ordering is recovered by
// comparing `seq` across bank FIFO heads instead of walking one global
// deque. The issue and next-event scans therefore visit O(active banks)
// records instead of O(queue depth) entries — a bank whose FIFO is empty
// costs nothing, and a bank with fifty queued row hits costs the same as
// a bank with one.
//
// Queue sizes follow Table I (64 read + 64 write entries, totals across
// banks). The data-bus occupancy of writes is `Timings::write_burst_cycles`,
// which is where SecDDR's eWCRC burst extension (BL8 -> BL10) costs
// bandwidth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/serial.h"
#include "common/types.h"
#include "dram/address.h"
#include "dram/bank.h"
#include "dram/power.h"
#include "dram/timings.h"

namespace secddr::dram {

/// A completed memory transaction, reported to the owner via `tag`.
struct Completion {
  std::uint64_t tag = 0;
  Addr addr = 0;
  bool is_write = false;
  Cycle arrival = 0;
  Cycle finish = 0;  ///< cycle the last data beat left the bus
};

/// Controller statistics.
struct ControllerStats {
  std::uint64_t reads_enqueued = 0;
  std::uint64_t writes_enqueued = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t write_forwards = 0;
  std::uint64_t data_bus_busy_cycles = 0;
  std::uint64_t total_read_latency = 0;  ///< sum over completed reads

  double row_hit_rate() const {
    const std::uint64_t n = row_hits + row_misses;
    return n ? static_cast<double>(row_hits) / static_cast<double>(n) : 0.0;
  }
  double avg_read_latency() const {
    return reads_completed ? static_cast<double>(total_read_latency) /
                                 static_cast<double>(reads_completed)
                           : 0.0;
  }

  /// Accumulates another channel's counters (multi-channel aggregation).
  ControllerStats& operator+=(const ControllerStats& o) {
    reads_enqueued += o.reads_enqueued;
    writes_enqueued += o.writes_enqueued;
    reads_completed += o.reads_completed;
    writes_completed += o.writes_completed;
    row_hits += o.row_hits;
    row_misses += o.row_misses;
    activates += o.activates;
    precharges += o.precharges;
    refreshes += o.refreshes;
    write_forwards += o.write_forwards;
    data_bus_busy_cycles += o.data_bus_busy_cycles;
    total_read_latency += o.total_read_latency;
    return *this;
  }
};

/// Scheduler scan-cost accounting, kept out of ControllerStats on purpose:
/// the per-cycle and event-driven loops run different numbers of scans, so
/// these counters are loop-mode-dependent and must never enter RunResult
/// (which the determinism tests compare bit-for-bit). `bench/speed` reads
/// them to show entries visited per issued command.
struct ScanStats {
  std::uint64_t issue_scans = 0;      ///< try_issue_* invocations
  std::uint64_t entries_visited = 0;  ///< bank/entry records examined
  std::uint64_t queue_depth_sum = 0;  ///< direction queue depth per scan
                                      ///< (what a global-deque scan costs)
  std::uint64_t commands_issued = 0;  ///< scans that issued a command

  ScanStats& operator+=(const ScanStats& o) {
    issue_scans += o.issue_scans;
    entries_visited += o.entries_visited;
    queue_depth_sum += o.queue_depth_sum;
    commands_issued += o.commands_issued;
    return *this;
  }
};

/// Request-scheduling policy.
enum class SchedulingPolicy {
  kFrFcfs,  ///< first-ready FCFS: oldest row hit first (default)
  kFcfs,    ///< strict arrival order (ablation baseline)
};

/// Read-only tap on the DRAM command stream the controller issues, in
/// issue order. This is the *ground truth* an on-bus observer would see
/// before any tampering: the fuzz campaign's TrackerGroundTruth property
/// tests replay it into core::TrackingInterposer and require the
/// attacker's open-row model to agree with the controller's — including
/// mid-stream attachment, where a bank whose ACTIVATE predates the
/// observer must resolve as *unknown*, never as a concrete (wrong) row.
/// Observers must not mutate controller state.
class CommandObserver {
 public:
  virtual ~CommandObserver() = default;
  virtual void on_activate(const DecodedAddr& /*d*/, Cycle /*now*/) {}
  virtual void on_precharge(unsigned /*rank*/, unsigned /*bank_group*/,
                            unsigned /*bank*/, Cycle /*now*/) {}
  virtual void on_column(const DecodedAddr& /*d*/, bool /*is_write*/,
                         Cycle /*now*/) {}
  virtual void on_refresh(unsigned /*rank*/, Cycle /*now*/) {}
};

/// Single-channel memory controller.
class Controller {
 public:
  Controller(const Geometry& geometry, const Timings& timings,
             unsigned read_queue_size = 64, unsigned write_queue_size = 64,
             SchedulingPolicy policy = SchedulingPolicy::kFrFcfs,
             const PowerConfig& power = {});

  /// True if a read (write) can be enqueued this cycle.
  bool can_accept_read() const { return q_size_[0] < rq_size_; }
  bool can_accept_write() const { return q_size_[1] < wq_size_; }

  /// Enqueues a transaction; returns false if the queue is full.
  /// Reads that hit a pending write are forwarded and complete quickly.
  bool enqueue(Addr addr, bool is_write, std::uint64_t tag, Cycle now);

  /// Advances one memory-clock cycle: issues at most one DRAM command and
  /// retires finished transactions into the completion list.
  void tick(Cycle now);

  /// Conservative next-event query for the event-driven loop: the
  /// earliest memory cycle >= `now` at which tick() could change any
  /// state or statistic (command issue, read retirement, or a refresh
  /// transition). Every tick strictly before the returned cycle is a
  /// guaranteed no-op; the returned cycle itself may still be one (the
  /// estimate errs early, never late). Refresh keeps this finite
  /// (<= ~tREFI away) even for an idle controller. Memoized: recomputed
  /// only after a state change, O(1) on the no-op fast path.
  Cycle next_event_cycle(Cycle now) const;

  /// Completions since the last call (caller drains and clears).
  std::vector<Completion>& completions() { return completions_; }
  bool has_undrained_completions() const { return !completions_.empty(); }

  const ControllerStats& stats() const { return stats_; }
  const ScanStats& scan_stats() const { return scan_stats_; }
  /// Clears statistics after warmup; bank/queue state is preserved. Power
  /// accounting zeroes its cumulative totals but keeps physical state
  /// (temperatures, in-window counts, throttle engagement, remap table).
  void reset_stats() {
    stats_ = ControllerStats{};
    scan_stats_ = ScanStats{};
    if (power_on_) reset_power_stats();
  }

  // --- dynamic power / thermal (inert unless PowerConfig::enabled) -----
  const PowerConfig& power_config() const { return power_cfg_; }
  /// Processes accounting windows that have fully elapsed by `now`. With
  /// policies off the window bookkeeping is lazy (elided event-driven
  /// ticks issue no commands, so late processing is arithmetic-identical);
  /// owners must call this before reset_stats() so the cumulative totals
  /// cut over at the same window in every loop mode.
  void catch_up_power(Cycle now) {
    if (power_on_) power_advance(now);
  }
  /// Cumulative energy/thermal report. Catches accounting up to `now`
  /// first, which is behavior-neutral (the same window closes would run
  /// at the next tick anyway, with identical arithmetic).
  PowerReport power_report(Cycle now);
  const Timings& timings() const { return timings_; }
  const Geometry& geometry() const { return geometry_; }
  const AddressMapping& mapping() const { return mapping_; }

  /// Outstanding queued transactions (for drain checks in tests/harness).
  std::size_t pending() const {
    return q_size_[0] + q_size_[1] + inflight_reads_.size();
  }

  // --- lookahead-window queries (epoch-decoupled execution) -----------
  // The backend's safe-horizon computation bounds the earliest cycle this
  // channel could hand a finished read back to the cores; these expose
  // the three facts that bound it without running a tick.
  /// Min data-arrival cycle over in-flight reads (kNoEvent when none):
  /// the earliest retirement upcoming ticks could produce.
  Cycle inflight_read_finish() const { return inflight_min_finish_; }
  /// Read entries sitting in the request queues (not yet issued).
  std::size_t queued_reads() const { return q_size_[0]; }
  /// True when a queued write covers `addr`'s line — the predicate
  /// enqueue() applies when it forwards an arriving read from write data.
  bool has_queued_write_to_line(Addr addr) const;

  /// Installs (or clears, with nullptr) the command-stream tap.
  void set_command_observer(CommandObserver* obs) { observer_ = obs; }

  /// Checkpoint hooks: the full scheduler state (bank timing, rank
  /// refresh/ACT windows, per-bank FIFOs, in-flight reads, undrained
  /// completions, bus history, stats; when power accounting is enabled,
  /// the power/thermal block — remap table, window counts, thermal nodes,
  /// throttle state — is serialized first so queued requests re-decode
  /// through the restored bank permutation). The candidate indexes are rebuilt
  /// on load (their order is behavior-neutral: every selection is a
  /// strict min over seq/bounds) and the next-event memo is invalidated;
  /// `Request::d` is recomputed from the address mapping. load() throws
  /// std::runtime_error on a geometry mismatch.
  void save(serial::Sink& s) const;
  void load(serial::Source& s);

 private:
  struct InflightRead {
    Request entry;
    Cycle finish;
  };
  struct RankState {
    std::deque<Cycle> act_window;  ///< ACT timestamps for tFAW
    Cycle last_act = 0;
    bool have_last_act = false;
    unsigned last_act_bg = 0;
    Cycle next_refresh_due = 0;
    bool refresh_pending = false;
  };

  bool try_issue_column(bool is_write, Cycle now);
  bool try_issue_bank_prep(bool is_write, Cycle now);
  bool handle_refresh(Cycle now);
  void issue_column(unsigned flat, std::size_t pos, bool is_write, Cycle now);
  /// Earliest cycle a column command for an open row hit in `e`'s bank
  /// satisfies every timing constraint (bank column timing, tCCD, data-bus
  /// availability + turnaround). Bank-level: every same-bank row hit
  /// shares it. Single source of truth: both the issue predicate
  /// (allowed == now >= bound) and the memoized next-event bounds derive
  /// from it, so they cannot drift apart.
  Cycle column_ready_at(const Request& e, bool is_write) const;
  /// Earliest cycle an ACT for `e` (a closed bank) satisfies tRC/tFAW/tRRD;
  /// kNoEvent while the rank's refresh gates activates (refresh events are
  /// tracked separately).
  Cycle act_ready_at(const Request& e) const;
  void apply_write_to_read_penalty(const Request& e, Cycle data_end);
  Cycle compute_next_event_cycle(Cycle now) const;
  /// Whether the next tick would serve write columns (same predicate the
  /// tick uses, against the current drain flag and queue states).
  bool serving_writes() const {
    return draining_writes_ || (q_size_[0] == 0 && q_size_[1] != 0);
  }
  /// Earliest cycle at which `e` could act given current bank state
  /// (column for a row hit, precharge for a conflict, activate for a
  /// closed bank); kNoEvent when gated by a pending refresh (whose own
  /// events are tracked separately).
  Cycle entry_event_bound(const Request& e, bool is_write) const;
  /// Folds a possibly-earlier event into the memoized next-event cache.
  /// Mutations made *inside* tick() never need this: a mutating tick only
  /// runs once the cached event time has been reached, so the cache
  /// expires and the next query recomputes. Only out-of-tick mutations
  /// (enqueue) can create an event earlier than a still-live cache.
  void observe_event_candidate(Cycle at) const {
    if (next_event_valid_ && at < next_event_cache_) next_event_cache_ = at;
  }

  // Scan-invariant timing floors, primed once per bank scan. Each scan
  // visits O(active banks) records; the channel/rank-level parts of
  // column_ready_at()/act_ready_at() (tCCD vs the last column, bus
  // turnaround, tFAW/tRRD vs the last activate) are identical for every
  // bank of a rank, so hoisting them leaves one max() over two or three
  // precomputed values per bank. The primed forms are exact value-level
  // equivalents of the *_ready_at functions.
  void prime_col_floors(bool is_write) const;
  void prime_act_floors() const;
  Cycle column_ready_primed(const Bank& bank, const DecodedAddr& d,
                            bool is_write) const {
    Cycle at = is_write ? bank.next_write : bank.next_read;
    if (have_last_col_)
      at = std::max(at, d.bank_group == last_col_bg_ &&
                                d.rank == last_col_rank_
                            ? col_ccd_same_
                            : col_ccd_diff_);
    return std::max(at, col_bus_floor_[d.rank]);
  }
  Cycle act_ready_primed(const Bank& bank, const DecodedAddr& d) const {
    const ActFloor& f = act_floor_[d.rank];
    if (f.gated) return kNoEvent;
    return std::max(bank.next_activate,
                    d.bank_group == ranks_[d.rank].last_act_bg ? f.same_bg
                                                               : f.diff_bg);
  }

  /// Re-derives `flat`'s membership in the candidate indexes of `dir`
  /// (column / precharge / closed-per-rank) from its FIFO and bank state.
  void sync_indexes(unsigned dir, unsigned flat);
  /// Closes a bank via PRECHARGE and re-syncs its index membership.
  void close_bank(unsigned flat, Cycle now);
  /// Oldest entry (min seq) across the direction's bank FIFO heads: the
  /// strict-FCFS candidate. Returns the owning flat bank or -1 when empty.
  int oldest_bank(unsigned dir) const;
  /// Recounts open-row matches for both of `flat`'s FIFOs (after ACT).
  void recount_bank(unsigned flat);

  // --- dynamic power / thermal internals -------------------------------
  /// Decodes `addr` and applies the logical->physical bank permutation
  /// (identity unless the remap policy is enabled).
  DecodedAddr map_addr(Addr addr) const;
  /// Closes every accounting window that has fully elapsed by `now`.
  void power_advance(Cycle now);
  /// Converts the current window's counts to energy, steps the per-rank
  /// thermal nodes, and evaluates the throttle/remap policies.
  void close_power_window();
  /// Swaps the busiest idle bank of the hottest rank with the least busy
  /// idle bank of the coolest rank (window-close policy hook).
  void maybe_remap();
  void reset_power_stats();
  Request load_request(serial::Source& s) const;

  Geometry geometry_;
  Timings timings_;
  AddressMapping mapping_;
  SchedulingPolicy policy_;
  unsigned rq_size_, wq_size_;
  unsigned drain_low_, drain_high_;
  bool draining_writes_ = false;

  std::vector<Bank> banks_;
  std::vector<RankState> ranks_;

  // Per-bank request FIFOs, indexed [is_write][flat_bank], plus the
  // ready-bank index: the flat ids of banks with a nonempty FIFO
  // (unordered; selection is by min `seq`, so order cannot matter) and
  // each bank's position in that list for O(1) removal.
  std::vector<BankQueue> queues_[2];

  /// Swap-pop membership list over flat bank ids (order arbitrary —
  /// selection is always by min seq or min bound, so order cannot
  /// matter).
  struct BankIndex {
    std::vector<unsigned> items;
    std::vector<std::int32_t> pos;
    void init(unsigned banks) {
      pos.assign(banks, -1);
      items.clear();
      items.reserve(banks);
    }
    void set(unsigned flat, bool want) {
      std::int32_t& p = pos[flat];
      if (want == (p >= 0)) return;
      if (want) {
        p = static_cast<std::int32_t>(items.size());
        items.push_back(flat);
      } else {
        const unsigned last = items.back();
        items[static_cast<std::size_t>(p)] = last;
        pos[last] = p;
        items.pop_back();
        p = -1;
      }
    }
  };
  // Bank indexes, per direction: every bank with a nonempty FIFO
  // (strict-FCFS head lookup), banks a column scan can pick from (open,
  // >= 1 queued row hit), banks a precharge can serve (open, >= 1 queued
  // conflict), and closed banks with pending entries grouped by rank —
  // so a rank whose tFAW/tRRD floor blocks every ACT is skipped as one
  // comparison instead of one per bank.
  BankIndex active_[2];
  BankIndex col_idx_[2];
  BankIndex pre_idx_[2];
  std::vector<BankIndex> closed_idx_[2];  ///< [dir][rank]
  unsigned q_size_[2] = {0, 0};
  std::uint64_t next_seq_ = 0;

  std::vector<InflightRead> inflight_reads_;
  /// Min finish over inflight_reads_ (kNoEvent when empty), maintained on
  /// push and during tick()'s retire pass so compute_next_event_cycle()
  /// reads it in O(1).
  Cycle inflight_min_finish_ = kNoEvent;
  std::vector<Completion> completions_;

  // Channel-level constraints.
  Cycle bus_free_at_ = 0;
  bool bus_last_was_write_ = false;
  unsigned bus_last_rank_ = 0;
  Cycle last_col_cmd_ = 0;
  bool have_last_col_ = false;
  unsigned last_col_bg_ = 0;
  unsigned last_col_rank_ = 0;

  // next_event_cycle() memo (valid until the next state mutation).
  mutable Cycle next_event_cache_ = 0;
  mutable bool next_event_valid_ = false;

  // Primed-floor scratch (see prime_col_floors / prime_act_floors).
  struct ActFloor {
    Cycle same_bg = 0, diff_bg = 0;
    bool gated = false;
  };
  mutable Cycle col_ccd_same_ = 0, col_ccd_diff_ = 0;
  mutable std::vector<Cycle> col_bus_floor_;  ///< per rank
  mutable std::vector<ActFloor> act_floor_;   ///< per rank

  ControllerStats stats_;
  ScanStats scan_stats_;
  CommandObserver* observer_ = nullptr;

  // --- dynamic power / thermal state (all inert when power_on_ false) --
  PowerConfig power_cfg_;
  bool power_on_ = false;      ///< power_cfg_.enabled
  bool any_policy_ = false;    ///< power_cfg_.any_policy()
  bool remap_active_ = false;  ///< enabled && remap
  std::uint64_t throttle_period_ = 1;  ///< clamped >= 1
  analysis::EnergyModel energy_model_;
  Cycle power_window_start_ = 0;
  /// Commands per rank in the (single) window currently accumulating.
  /// Lazy processing cannot mix windows: every tick/enqueue closes all
  /// elapsed windows *before* the command taps run, so nonzero counts
  /// always belong to the oldest unprocessed window, and windows with no
  /// ticks at all had no commands to record.
  std::vector<analysis::CommandCounts> window_counts_;
  std::vector<std::uint64_t> bank_activity_;  ///< per flat bank, this window
  std::vector<analysis::ThermalNode> thermal_;      ///< per rank
  std::vector<std::uint64_t> rank_energy_fj_;       ///< since stats reset
  analysis::EnergyBreakdown energy_total_;          ///< since stats reset
  analysis::CommandCounts counts_total_;            ///< since stats reset
  std::uint64_t power_windows_ = 0;
  std::uint64_t throttled_windows_ = 0;
  std::uint64_t remap_swaps_ = 0;
  std::uint64_t windows_since_swap_ = 0;
  bool throttle_engaged_ = false;
  std::vector<std::uint32_t> remap_;      ///< logical flat -> physical flat
  std::vector<std::uint32_t> remap_inv_;  ///< physical flat -> logical flat
};

}  // namespace secddr::dram
