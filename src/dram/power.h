// Per-channel dynamic power + thermal configuration and reporting.
//
// Everything here is off by default (`enabled = false`): the default
// build issues zero extra commands and keeps timing bit-identical to a
// power-unaware controller. With `enabled` set, the controller counts
// ACT/PRE/RD/WR/REF per rank over fixed accounting windows, converts
// each window to energy (analysis::EnergyModel), and steps one RC
// thermal node per rank (analysis::ThermalNode). Accounting alone never
// perturbs timing. The two policies do, deterministically:
//
//  * throttle — once the hottest rank crosses `trip_mc`, command issue
//    is gated to cycles where `cycle % throttle_period == 0` until the
//    rank cools below `release_mc` (refresh is never throttled).
//  * remap    — a logical->physical flat-bank permutation; at window
//    close, if the hottest rank runs `remap_delta_mc` above the coolest,
//    the busiest idle bank of the hot rank swaps places with the least
//    busy idle bank of the cool rank (both banks' queues must be empty,
//    so in-flight ordering invariants are untouched).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/energy.h"
#include "analysis/thermal.h"

namespace secddr::dram {

struct PowerConfig {
  bool enabled = false;
  /// Accounting window length in memory-clock cycles.
  std::uint64_t window_cycles = 1024;
  analysis::DramEnergyParams energy;
  analysis::ThermalParams thermal;

  bool throttle = false;
  std::int64_t trip_mc = 85'000;     ///< engage at/above, milli-degrees C
  std::int64_t release_mc = 83'000;  ///< disengage at/below (hysteresis)
  std::uint64_t throttle_period = 4; ///< issue 1 cycle in N while engaged

  bool remap = false;
  std::int64_t remap_delta_mc = 2'000;     ///< min hot-cold spread to act
  std::uint64_t remap_min_windows = 8;     ///< min windows between swaps

  bool any_policy() const { return enabled && (throttle || remap); }
};

struct RankPowerReport {
  std::uint64_t energy_fj = 0;  ///< cumulative since last stats reset
  std::int64_t temp_mc = 0;     ///< current temperature
  std::int64_t peak_mc = 0;     ///< peak since last stats reset
};

struct PowerReport {
  bool enabled = false;
  analysis::EnergyBreakdown energy;   ///< channel total since stats reset
  analysis::CommandCounts counts;     ///< commands accounted (all ranks)
  std::uint64_t windows = 0;          ///< accounting windows closed
  std::uint64_t throttled_windows = 0;
  std::uint64_t remap_swaps = 0;
  std::vector<RankPowerReport> ranks;
};

}  // namespace secddr::dram
