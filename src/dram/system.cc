#include "dram/system.h"

#include <cmath>

namespace secddr::dram {

DramSystem::DramSystem(const Geometry& geometry, const Timings& timings,
                       double core_clock_mhz, SchedulingPolicy policy)
    : controller_(geometry, timings, 64, 64, policy),
      core_clock_mhz_(core_clock_mhz),
      mem_khz_(static_cast<std::uint64_t>(timings.clock_mhz * 1000.0)),
      core_khz_(static_cast<std::uint64_t>(core_clock_mhz * 1000.0)) {}

bool DramSystem::enqueue(Addr addr, bool is_write, std::uint64_t tag) {
  return controller_.enqueue(addr, is_write, tag, mem_cycle_);
}

void DramSystem::tick_core_cycle() {
  ++core_cycle_;
  accum_ += mem_khz_;
  while (accum_ >= core_khz_) {
    accum_ -= core_khz_;
    controller_.tick(mem_cycle_);
    ++mem_cycle_;
  }
  // Drain controller completions into the core-clock domain.
  for (const auto& c : controller_.completions()) {
    Completion cc = c;
    cc.finish = core_cycle_;  // visible to the core now
    out_.push_back(cc);
  }
  controller_.completions().clear();
}

std::vector<Completion> DramSystem::drain_completions() {
  std::vector<Completion> v;
  v.swap(out_);
  return v;
}

Cycle DramSystem::mem_to_core(Cycle mem_cycles) const {
  return static_cast<Cycle>(
      std::ceil(static_cast<double>(mem_cycles) * core_clock_mhz_ /
                (static_cast<double>(mem_khz_) / 1000.0)));
}

}  // namespace secddr::dram
