#include "dram/system.h"

#include <algorithm>
#include <cmath>

namespace secddr::dram {

DramSystem::DramSystem(const Geometry& geometry, const Timings& timings,
                       double core_clock_mhz, SchedulingPolicy policy,
                       const PowerConfig& power)
    : controller_(geometry, timings, 64, 64, policy, power),
      core_clock_mhz_(core_clock_mhz),
      mem_khz_(static_cast<std::uint64_t>(timings.clock_mhz * 1000.0)),
      core_khz_(static_cast<std::uint64_t>(core_clock_mhz * 1000.0)) {}

bool DramSystem::enqueue(Addr addr, bool is_write, std::uint64_t tag) {
  return controller_.enqueue(addr, is_write, tag, mem_cycle_);
}

void DramSystem::tick_core_cycle() {
  ++core_cycle_;
  accum_ += mem_khz_;
  while (accum_ >= core_khz_) {
    accum_ -= core_khz_;
    // Event-driven mode: a memory tick strictly before the controller's
    // next event is a guaranteed no-op — skip the call (the memoized
    // query makes this O(1)). When the controller is command-saturated,
    // every query recomputes just to answer "tick now"; a streak of such
    // answers switches to unconditionally ticking for a burst, which
    // changes nothing semantically (ticking is always correct) but stops
    // the query traffic while the bus is busy.
    if (event_driven_) {
      if (gate_burst_ > 0) {
        --gate_burst_;
      } else if (controller_.next_event_cycle(mem_cycle_) > mem_cycle_) {
        gate_streak_ = 0;
        gate_burst_len_ = kGateBurst;
        ++mem_cycle_;
        continue;
      } else if (++gate_streak_ >= kGateBurst) {
        // Saturated: tick without querying for a burst, doubling the
        // burst while the saturation persists (every query in between
        // still answered "tick now").
        gate_streak_ = 0;
        gate_burst_ = gate_burst_len_;
        gate_burst_len_ = std::min(gate_burst_len_ * 2, kGateBurstCap);
      }
    }
    controller_.tick(mem_cycle_);
    ++mem_cycle_;
  }
  // Drain controller completions into the core-clock domain.
  for (const auto& c : controller_.completions()) {
    Completion cc = c;
    cc.finish = core_cycle_;  // visible to the core now
    out_.push_back(cc);
  }
  controller_.completions().clear();
}

Cycle DramSystem::idle_core_cycles() const {
  // Saturation burst (see tick_core_cycle): the controller is issuing on
  // nearly every cycle, so the answer would be 0 anyway — return it
  // without touching the controller's next-event scan. Understating idle
  // is always exact (a skip is optional), and the burst expires within
  // at most kGateBurstCap memory ticks (it starts at kGateBurst and
  // doubles only while every query in between still answers "tick now"),
  // after which the precise query resumes.
  if (event_driven_ && gate_burst_ > 0) return 0;
  const Cycle event = controller_.next_event_cycle(mem_cycle_);
  if (event == kNoEvent) return kNoEvent;
  // The controller must run tick(event), which takes `event - mem_cycle_ + 1`
  // memory ticks; clamp so the fixed-point math below cannot overflow.
  const std::uint64_t need =
      std::min<std::uint64_t>(event - mem_cycle_ + 1, 1ull << 32);
  // Smallest k with floor((accum_ + k*mem_khz_) / core_khz_) >= need, i.e.
  // the first core tick that produces the event's memory tick. Everything
  // before it is skippable.
  const std::uint64_t k =
      (need * core_khz_ - accum_ + mem_khz_ - 1) / mem_khz_;
  return k - 1;  // k >= 1 because accum_ < core_khz_ <= need * core_khz_
}

void DramSystem::advance_idle_core_cycles(Cycle cycles) {
  // Contract: every memory tick in the window is a controller no-op (the
  // caller checked idle_core_cycles()), so only the clocks advance.
  core_cycle_ += cycles;
  accum_ += cycles * mem_khz_;
  mem_cycle_ += accum_ / core_khz_;
  accum_ %= core_khz_;
}

Cycle DramSystem::core_cycles_until_mem(Cycle mem_cycle) const {
  // Same fixed-point inversion as idle_core_cycles(), but asking for the
  // core tick that *executes* `mem_cycle` rather than the span before it.
  const std::uint64_t need =
      mem_cycle <= mem_cycle_
          ? 1
          : std::min<std::uint64_t>(mem_cycle - mem_cycle_ + 1, 1ull << 32);
  return (need * core_khz_ - accum_ + mem_khz_ - 1) / mem_khz_;
}

std::vector<Completion> DramSystem::drain_completions() {
  std::vector<Completion> v;
  v.swap(out_);
  return v;
}

Cycle DramSystem::mem_to_core(Cycle mem_cycles) const {
  return static_cast<Cycle>(
      std::ceil(static_cast<double>(mem_cycles) * core_clock_mhz_ /
                (static_cast<double>(mem_khz_) / 1000.0)));
}

void DramSystem::save(serial::Sink& s) const {
  controller_.save(s);
  s.u32(gate_streak_);
  s.u32(gate_burst_);
  s.u32(gate_burst_len_);
  s.u64(core_cycle_);
  s.u64(mem_cycle_);
  s.u64(accum_);
  s.u64(out_.size());
  for (const Completion& c : out_) {
    s.u64(c.tag);
    s.u64(c.addr);
    s.b(c.is_write);
    s.u64(c.arrival);
    s.u64(c.finish);
  }
}

void DramSystem::load(serial::Source& s) {
  controller_.load(s);
  gate_streak_ = s.u32();
  gate_burst_ = s.u32();
  gate_burst_len_ = s.u32();
  core_cycle_ = s.u64();
  mem_cycle_ = s.u64();
  accum_ = s.u64();
  out_.clear();
  const std::size_t n = s.count(33);
  for (std::size_t i = 0; i < n; ++i) {
    Completion c;
    c.tag = s.u64();
    c.addr = s.u64();
    c.is_write = s.b();
    c.arrival = s.u64();
    c.finish = s.u64();
    out_.push_back(c);
  }
}

}  // namespace secddr::dram
