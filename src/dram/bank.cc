// Bank is header-only; this translation unit anchors the module in the
// build so the library always has at least the header's checks compiled.
#include "dram/bank.h"

namespace secddr::dram {
static_assert(Bank::kClosed == -1);
}  // namespace secddr::dram
