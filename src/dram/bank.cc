#include "dram/bank.h"

namespace secddr::dram {

int BankQueue::first_match(std::uint64_t row, std::uint64_t* visited) const {
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (visited) ++*visited;
    if (q[i].d.row == row) return static_cast<int>(i);
  }
  return -1;
}

int BankQueue::first_mismatch(std::uint64_t row,
                              std::uint64_t* visited) const {
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (visited) ++*visited;
    if (q[i].d.row != row) return static_cast<int>(i);
  }
  return -1;
}

void BankQueue::recount(std::int64_t open_row) {
  match_count = 0;
  if (open_row == Bank::kClosed) return;
  const std::uint64_t row = static_cast<std::uint64_t>(open_row);
  for (const Request& r : q)
    if (r.d.row == row) ++match_count;
}

}  // namespace secddr::dram
