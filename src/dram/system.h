// Top-level single-channel DRAM system: couples the address mapping and
// controller and owns the memory-clock domain.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/controller.h"

namespace secddr::dram {

/// A DRAM channel driven from a faster core clock. The caller ticks the
/// system once per *core* cycle; internally the memory clock advances at
/// `clock_mhz / core_mhz` of that rate using an exact rational accumulator.
class DramSystem {
 public:
  DramSystem(const Geometry& geometry, const Timings& timings,
             double core_clock_mhz,
             SchedulingPolicy policy = SchedulingPolicy::kFrFcfs,
             const PowerConfig& power = {});

  /// Enqueue a line transaction. Returns false when the queue is full.
  bool enqueue(Addr addr, bool is_write, std::uint64_t tag);

  /// Event-driven mode: tick_core_cycle() consults the controller's
  /// memoized next-event query and elides memory ticks that are provable
  /// no-ops (identical results, O(1) instead of a queue scan). Off by
  /// default so the plain path stays the bit-exact reference
  /// implementation the determinism tests compare against.
  void set_event_driven(bool on) { event_driven_ = on; }

  /// Advances one core cycle; may advance zero or more memory cycles.
  void tick_core_cycle();

  /// Number of upcoming core cycles guaranteed to be no-ops: every memory
  /// tick they trigger lies strictly before the controller's next event.
  /// Derived by inverting the rational clock accumulator, so it is exact
  /// for any core:memory ratio. kNoEvent when nothing is scheduled.
  Cycle idle_core_cycles() const;

  /// Fast-forwards `cycles` core cycles previously reported idle by
  /// idle_core_cycles(): advances both clock domains (and the
  /// accumulator) without running the controller's no-op ticks.
  void advance_idle_core_cycles(Cycle cycles);

  /// Completions observed since last drain, with finish times converted to
  /// core cycles.
  std::vector<Completion> drain_completions();
  /// Zero-copy variant: the completion buffer itself (core-cycle finish
  /// stamps); the caller iterates and then calls clear_completions(),
  /// which keeps the buffer's capacity (drain_completions() would free it
  /// every cycle).
  const std::vector<Completion>& pending_completions() const { return out_; }
  void clear_completions() { out_.clear(); }

  Cycle core_cycle() const { return core_cycle_; }
  Cycle memory_cycle() const { return mem_cycle_; }
  const ControllerStats& stats() const { return controller_.stats(); }
  const ScanStats& scan_stats() const { return controller_.scan_stats(); }
  /// Stats cut over after warmup. Power accounting first catches up to
  /// the current memory cycle so the cumulative energy totals start at
  /// the same window boundary in every loop mode (lazy event-driven
  /// processing would otherwise shift pre-warmup windows past the reset).
  void reset_stats() {
    controller_.catch_up_power(mem_cycle_);
    controller_.reset_stats();
  }
  /// Cumulative power/thermal report as of the current memory cycle
  /// (`enabled == false` and empty when power accounting is off).
  PowerReport power_report() { return controller_.power_report(mem_cycle_); }
  const Timings& timings() const { return controller_.timings(); }
  const Geometry& geometry() const { return controller_.geometry(); }
  std::size_t pending() const { return controller_.pending(); }
  bool can_accept_read() const { return controller_.can_accept_read(); }
  bool can_accept_write() const { return controller_.can_accept_write(); }

  /// Converts a memory-clock cycle count to core cycles (rounding up).
  Cycle mem_to_core(Cycle mem_cycles) const;

  /// Checkpoint hooks: controller state + both clock domains (including
  /// the rational accumulator), the event-gate backoff, and the
  /// core-domain completion buffer.
  void save(serial::Sink& s) const;
  void load(serial::Source& s);

  // --- lookahead-window queries (epoch-decoupled execution) -----------
  /// Number of core ticks from now until the one that executes memory
  /// cycle `mem_cycle` (>= 1; the current partial core tick counts).
  /// Exact inversion of the rational accumulator, like idle_core_cycles().
  Cycle core_cycles_until_mem(Cycle mem_cycle) const;
  /// Controller lookahead facts, re-exported for the channel's
  /// ready-bound computation (see SecurityEngine::ready_bound).
  Cycle inflight_read_finish() const {
    return controller_.inflight_read_finish();
  }
  std::size_t queued_reads() const { return controller_.queued_reads(); }
  bool has_queued_write_to_line(Addr addr) const {
    return controller_.has_queued_write_to_line(addr);
  }

  /// True while a completion sits in the controller or the core-domain
  /// buffer waiting for the next tick to surface and finish-stamp it
  /// (e.g. a write-forward produced by an enqueue after this cycle's
  /// tick). Skipping cycles in that state would stamp it late.
  bool has_undrained_completions() const {
    return controller_.has_undrained_completions() || !out_.empty();
  }

 private:
  Controller controller_;
  double core_clock_mhz_;
  bool event_driven_ = false;
  /// Saturation backoff for the event gate (see tick_core_cycle). The
  /// burst doubles (up to the cap) each time a full burst ends and the
  /// controller is still issuing every cycle, so sustained saturation
  /// spends a vanishing fraction of ticks on next-event queries; any
  /// "future event" answer resets the length.
  static constexpr unsigned kGateBurst = 16;
  static constexpr unsigned kGateBurstCap = 256;
  unsigned gate_streak_ = 0;
  unsigned gate_burst_ = 0;
  unsigned gate_burst_len_ = kGateBurst;
  Cycle core_cycle_ = 0;
  Cycle mem_cycle_ = 0;
  // mem_cycles owed = core_cycle * mem_mhz / core_mhz, tracked exactly with
  // integer micro-hertz to avoid floating-point drift over long runs.
  std::uint64_t mem_khz_, core_khz_;
  std::uint64_t accum_ = 0;
  std::vector<Completion> out_;
};

}  // namespace secddr::dram
