#include "dram/timings.h"

#include <cmath>

namespace secddr::dram {
namespace {

// Scales a cycle count defined at `from_mhz` to `to_mhz`, holding the
// wall-clock duration constant (rounding up as JEDEC does).
unsigned scale(unsigned cycles, double from_mhz, double to_mhz) {
  return static_cast<unsigned>(
      std::ceil(static_cast<double>(cycles) * to_mhz / from_mhz));
}

}  // namespace

Timings Timings::ddr4_3200() { return Timings{}; }

Timings Timings::ddr4_2400() {
  Timings t = ddr4_3200();
  const double from = t.clock_mhz;
  t.name = "DDR4-2400";
  t.clock_mhz = 1200.0;
  for (unsigned* p : {&t.tCL, &t.tRCD, &t.tRP, &t.tRAS, &t.tCCD_L, &t.tCWL,
                      &t.tWTR_L, &t.tRRD_L, &t.tFAW, &t.tWR, &t.tRTP, &t.tRFC,
                      &t.tREFI})
    *p = scale(*p, from, t.clock_mhz);
  // Short column/burst parameters are burst-length bound, not wall-clock
  // bound; they stay at their cycle minimums.
  return t;
}

Timings Timings::ddr5_4800() {
  Timings t;
  t.name = "DDR5-4800";
  t.clock_mhz = 2400.0;
  t.tCL = 34;
  t.tRCD = 34;
  t.tRP = 34;
  t.tRAS = 76;
  t.tCCD_S = 8;
  t.tCCD_L = 16;
  t.tCWL = 32;
  t.tWTR_S = 8;
  t.tWTR_L = 24;
  t.tRRD_S = 8;
  t.tRRD_L = 12;
  t.tFAW = 40;
  t.tWR = 36;
  t.tRTP = 18;
  t.tRFC = 840;
  t.tREFI = 18720;
  t.read_burst_cycles = 8;   // BL16
  t.write_burst_cycles = 8;  // BL16 -> 9 with eWCRC (BL18)
  return t;
}

Timings Timings::with_ewcrc_burst() const {
  Timings t = *this;
  // DDR4: BL8 -> BL10 adds one data-bus cycle; DDR5: BL16 -> BL18 likewise.
  t.write_burst_cycles += 1;
  return t;
}

}  // namespace secddr::dram
