#include "dram/controller.h"

#include <algorithm>
#include <cassert>

namespace secddr::dram {

Controller::Controller(const Geometry& geometry, const Timings& timings,
                       unsigned read_queue_size, unsigned write_queue_size,
                       SchedulingPolicy policy)
    : geometry_(geometry),
      timings_(timings),
      mapping_(geometry),
      policy_(policy),
      rq_size_(read_queue_size),
      wq_size_(write_queue_size),
      drain_low_(write_queue_size / 4),
      drain_high_(write_queue_size * 3 / 4),
      banks_(geometry.total_banks()),
      ranks_(geometry.ranks) {
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    // Stagger refresh across ranks so they do not lock the channel together.
    ranks_[r].next_refresh_due =
        timings_.tREFI / (geometry_.ranks + 1) * (r + 1);
  }
  col_checked_[0].assign(geometry_.total_banks(), 0);
  col_checked_[1].assign(geometry_.total_banks(), 0);
  act_checked_.assign(geometry_.total_banks(), 0);
}

bool Controller::enqueue(Addr addr, bool is_write, std::uint64_t tag,
                         Cycle now) {
  Entry e{addr, mapping_.decode(addr), tag, now, false};
  if (is_write) {
    if (write_q_.size() >= wq_size_) return false;
    // Write merging: a newer write to the same line supersedes the queued
    // one. The superseded write completes (exactly once) here; the
    // surviving entry carries the new tag and completes when it issues,
    // so each logical write is counted and completed exactly once.
    for (auto& w : write_q_) {
      if (line_base(w.addr) == line_base(addr)) {
        ++stats_.writes_enqueued;
        ++stats_.writes_completed;
        completions_.push_back({w.tag, w.addr, true, w.arrival, now});
        w.tag = tag;
        w.arrival = now;
        return true;
      }
    }
    write_q_.push_back(e);
    ++stats_.writes_enqueued;
    observe_event_candidate(entry_event_bound(e, true));
    // Crossing the drain watermark flips the next tick into write
    // service, making every queued write column a candidate.
    if (!draining_writes_ && write_q_.size() >= drain_high_)
      observe_event_candidate(now);
    return true;
  }
  if (read_q_.size() >= rq_size_) return false;
  // Write forwarding: serve the read from the pending write data. The
  // read completes here and never enters the read queue, so it does not
  // count as enqueued.
  for (const auto& w : write_q_) {
    if (line_base(w.addr) == line_base(addr)) {
      ++stats_.write_forwards;
      ++stats_.reads_completed;
      const Cycle finish = now + timings_.tCL;
      stats_.total_read_latency += finish - now;
      completions_.push_back({tag, addr, false, now, finish});
      return true;
    }
  }
  read_q_.push_back(e);
  ++stats_.reads_enqueued;
  observe_event_candidate(entry_event_bound(e, false));
  return true;
}

Cycle Controller::column_ready_at(const Entry& e, bool is_write) const {
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  Cycle at = is_write ? bank.next_write : bank.next_read;

  // Column-to-column spacing (tCCD_S/tCCD_L).
  if (have_last_col_) {
    const bool same_bg =
        last_col_bg_ == e.d.bank_group && last_col_rank_ == e.d.rank;
    at = std::max(at, last_col_cmd_ + (same_bg ? timings_.tCCD_L
                                               : timings_.tCCD_S));
  }

  // Data-bus availability, including direction/rank turnaround: data starts
  // `lat` after the command, so the command may go `lat` before the bus
  // frees.
  Cycle bus_ready = bus_free_at_;
  if (bus_free_at_ > 0 && (bus_last_was_write_ != is_write ||
                           bus_last_rank_ != e.d.rank))
    bus_ready += timings_.turnaround;
  const unsigned lat = is_write ? timings_.tCWL : timings_.tCL;
  return std::max(at, bus_ready > lat ? bus_ready - lat : 0);
}

bool Controller::column_cmd_allowed(const Entry& e, bool is_write,
                                    Cycle now) const {
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  if (!bank.is_open() ||
      bank.open_row != static_cast<std::int64_t>(e.d.row))
    return false;
  return now >= column_ready_at(e, is_write);
}

Cycle Controller::act_ready_at(const Entry& e) const {
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  const RankState& rank = ranks_[e.d.rank];
  // A refresh-gated bank is woken by the refresh events themselves.
  if (rank.refresh_pending) return kNoEvent;
  Cycle at = bank.next_activate;
  if (rank.act_window.size() >= 4)
    at = std::max(at, rank.act_window.front() + timings_.tFAW);
  if (rank.have_last_act)
    at = std::max(at, rank.last_act + (rank.last_act_bg == e.d.bank_group
                                           ? timings_.tRRD_L
                                           : timings_.tRRD_S));
  return at;
}

bool Controller::act_allowed(const Entry& e, Cycle now) const {
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  if (bank.is_open()) return false;
  // act_ready_at() is kNoEvent while a refresh gates the rank; `now` can
  // never reach it, so the refresh case needs no separate check here.
  return now >= act_ready_at(e);
}

void Controller::apply_write_to_read_penalty(const Entry& e, Cycle data_end) {
  // After write data ends, reads to the same rank must wait tWTR_S/L.
  for (unsigned bg = 0; bg < geometry_.bank_groups; ++bg) {
    const unsigned wtr =
        bg == e.d.bank_group ? timings_.tWTR_L : timings_.tWTR_S;
    for (unsigned b = 0; b < geometry_.banks_per_group; ++b) {
      const unsigned idx = e.d.rank * geometry_.banks_per_rank() +
                           bg * geometry_.banks_per_group + b;
      banks_[idx].next_read = std::max(banks_[idx].next_read, data_end + wtr);
    }
  }
}

bool Controller::try_issue_column(std::deque<Entry>& q, bool is_write,
                                  Cycle now) {
  // FR-FCFS: oldest row-hit first; strict FCFS considers only the head.
  std::vector<Cycle>& checked = col_checked_[is_write ? 1 : 0];
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (policy_ == SchedulingPolicy::kFcfs && it != q.begin()) break;
    // Cheap rejects first: only open row hits are column candidates, and
    // same-bank row hits share every timing constraint, so one failed
    // check per (bank, direction) covers the whole scan. The odd stamp
    // marks "checked and disallowed at `now`" (compute_next_event_cycle
    // shares the arrays with even stamps, so the passes never alias).
    const unsigned flat = it->d.flat_bank(geometry_);
    {
      const Bank& bank = banks_[flat];
      if (!bank.is_open() ||
          bank.open_row != static_cast<std::int64_t>(it->d.row))
        continue;
      if (checked[flat] == 2 * now + 1) continue;
    }
    if (!column_cmd_allowed(*it, is_write, now)) {
      checked[flat] = 2 * now + 1;
      continue;
    }
    Entry e = *it;
    q.erase(it);

    Bank& bank = banks_[e.d.flat_bank(geometry_)];
    if (e.activated_for)
      ++stats_.row_misses;
    else
      ++stats_.row_hits;

    const unsigned burst = is_write ? timings_.write_burst_cycles
                                    : timings_.read_burst_cycles;
    const Cycle data_start = now + (is_write ? timings_.tCWL : timings_.tCL);
    const Cycle data_end = data_start + burst;
    bus_free_at_ = data_end;
    bus_last_was_write_ = is_write;
    bus_last_rank_ = e.d.rank;
    stats_.data_bus_busy_cycles += burst;
    last_col_cmd_ = now;
    have_last_col_ = true;
    last_col_bg_ = e.d.bank_group;
    last_col_rank_ = e.d.rank;

    if (is_write) {
      bank.next_precharge =
          std::max(bank.next_precharge, data_end + timings_.tWR);
      apply_write_to_read_penalty(e, data_end);
      ++stats_.writes_completed;
      completions_.push_back({e.tag, e.addr, true, e.arrival, data_end});
    } else {
      bank.next_precharge =
          std::max(bank.next_precharge, now + timings_.tRTP);
      inflight_reads_.push_back({e, data_end});
    }
    return true;
  }
  return false;
}

bool Controller::try_issue_bank_prep(std::deque<Entry>& q, Cycle now) {
  // Issue ACT or PRE for the oldest request whose bank is not ready.
  std::size_t scanned = 0;
  for (auto& e : q) {
    if (policy_ == SchedulingPolicy::kFcfs && scanned++ > 0) break;
    const unsigned flat = e.d.flat_bank(geometry_);
    Bank& bank = banks_[flat];
    if (bank.is_open() &&
        bank.open_row == static_cast<std::int64_t>(e.d.row))
      continue;  // row hit waiting on timing only
    if (!bank.is_open()) {
      // act_allowed() depends on the entry only through its bank/rank, so
      // a failed check covers every later same-bank entry in this pass
      // (odd stamp; see try_issue_column).
      if (act_checked_[flat] == 2 * now + 1) continue;
      if (act_allowed(e, now)) {
        bank.activate(e.d.row, now, timings_.tRCD, timings_.tRAS);
        RankState& rank = ranks_[e.d.rank];
        rank.act_window.push_back(now);
        while (rank.act_window.size() > 4) rank.act_window.pop_front();
        rank.last_act = now;
        rank.have_last_act = true;
        rank.last_act_bg = e.d.bank_group;
        e.activated_for = true;
        ++stats_.activates;
        return true;
      }
      act_checked_[flat] = 2 * now + 1;
    } else if (now >= bank.next_precharge) {
      // Conflict: close the current row.
      bank.precharge(now, timings_.tRP);
      ++stats_.precharges;
      return true;
    }
  }
  return false;
}

bool Controller::handle_refresh(Cycle now) {
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    RankState& rank = ranks_[r];
    if (!rank.refresh_pending) {
      if (now >= rank.next_refresh_due) rank.refresh_pending = true;
      continue;
    }
    // Precharge all open banks in the rank, then refresh.
    bool all_closed = true;
    for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
      Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
      if (bank.is_open()) {
        all_closed = false;
        if (now >= bank.next_precharge) {
          bank.precharge(now, timings_.tRP);
          ++stats_.precharges;
          return true;
        }
      }
    }
    if (all_closed) {
      bool ready = true;
      for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
        const Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
        if (now < bank.next_activate) {
          ready = false;
          break;
        }
      }
      if (ready) {
        for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
          Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
          bank.next_activate = std::max(bank.next_activate, now + timings_.tRFC);
        }
        rank.refresh_pending = false;
        rank.next_refresh_due += timings_.tREFI;
        ++stats_.refreshes;
        return true;
      }
    }
  }
  return false;
}

Cycle Controller::entry_event_bound(const Entry& e, bool is_write) const {
  // Derived from the same column_ready_at()/act_ready_at() bounds the
  // issue predicates test against, so "allowed" is exactly "now >= bound"
  // and the memoized event times can never drift from the predicates.
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  if (bank.is_open() && bank.open_row == static_cast<std::int64_t>(e.d.row)) {
    // A write row hit is only a candidate while writes are being served;
    // the transitions into write service (drain watermark crossing, read
    // queue emptying) are themselves observed events, so until then the
    // entry schedules nothing.
    if (is_write && !serving_writes()) return kNoEvent;
    return column_ready_at(e, is_write);
  }
  if (bank.is_open()) {
    // Row conflict: a precharge becomes possible.
    return bank.next_precharge;
  }
  // Closed bank: an activate becomes possible (kNoEvent while refresh-gated).
  return act_ready_at(e);
}

Cycle Controller::next_event_cycle(Cycle now) const {
  // The event set can move earlier only via enqueue() (which folds the
  // new entry's bound into the cache); mutations inside tick() only
  // happen once the cached event time has been reached, after which the
  // cache expires here and is recomputed against the post-mutation state.
  if (next_event_valid_ && next_event_cache_ >= now) return next_event_cache_;
  next_event_cache_ = compute_next_event_cycle(now);
  next_event_valid_ = true;
  return next_event_cache_;
}

Cycle Controller::compute_next_event_cycle(Cycle now) const {
  compute_epoch_ += 2;  // fresh even scratch stamp for this pass
  Cycle next = kNoEvent;
  // Every timing constraint below is of the form "allowed once now >= X",
  // so the earliest cycle an entry *could* act is the max of its X values
  // and the min over entries lower-bounds the next state change. Commands
  // this query admits may still lose the one-command-per-cycle arbitration
  // in tick(); that only wakes the caller early, never late.
  const auto consider = [&](Cycle at) { next = std::min(next, std::max(at, now)); };

  // The write-drain hysteresis flip is itself a state change the next
  // tick performs (even though no command issues that cycle), and it
  // changes which columns are servable right after.
  if (draining_writes_ ? write_q_.size() <= drain_low_
                       : write_q_.size() >= drain_high_)
    consider(now);

  for (const auto& fr : inflight_reads_) consider(fr.finish);

  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    const RankState& rank = ranks_[r];
    if (!rank.refresh_pending) {
      consider(rank.next_refresh_due);
      continue;
    }
    // Refresh in progress: open banks precharge as they become eligible;
    // once all are closed the refresh fires when every bank is activatable.
    bool all_closed = true;
    Cycle refresh_ready = now;
    for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
      const Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
      if (bank.is_open()) {
        all_closed = false;
        consider(bank.next_precharge);
      } else {
        refresh_ready = std::max(refresh_ready, bank.next_activate);
      }
    }
    if (all_closed) consider(refresh_ready);
  }

  const auto scan_queue = [&](const std::deque<Entry>& q, bool is_write) {
    // Same-bank entries in the same state share their earliest-allowed
    // time, so one computation per (bank, kind) covers the scan. The
    // stamps double as scratch for try_issue_* (odd values); computes use
    // a fresh even epoch each call so neither pass ever aliases another.
    const Cycle stamp = compute_epoch_;
    std::vector<Cycle>& col_seen = col_checked_[is_write ? 1 : 0];
    for (const auto& e : q) {
      const unsigned flat = e.d.flat_bank(geometry_);
      const Bank& bank = banks_[flat];
      if (bank.is_open() &&
          bank.open_row == static_cast<std::int64_t>(e.d.row)) {
        if (col_seen[flat] == stamp) continue;
        col_seen[flat] = stamp;
      } else {
        // Conflict-precharge and closed-activate bounds are bank-level;
        // a bank is in exactly one of those states during a scan, so the
        // two cases can share the dedup array.
        if (act_checked_[flat] == stamp) continue;
        act_checked_[flat] = stamp;
      }
      const Cycle at = entry_event_bound(e, is_write);
      if (at != kNoEvent) consider(at);
      // Strict FCFS only ever considers the queue head.
      if (policy_ == SchedulingPolicy::kFcfs) break;
    }
  };
  scan_queue(read_q_, false);
  scan_queue(write_q_, true);
  return next;
}

void Controller::tick(Cycle now) {
  // Retire reads whose data has arrived.
  for (std::size_t i = 0; i < inflight_reads_.size();) {
    if (inflight_reads_[i].finish <= now) {
      const auto& fr = inflight_reads_[i];
      ++stats_.reads_completed;
      stats_.total_read_latency += fr.finish - fr.entry.arrival;
      completions_.push_back(
          {fr.entry.tag, fr.entry.addr, false, fr.entry.arrival, fr.finish});
      inflight_reads_[i] = inflight_reads_.back();
      inflight_reads_.pop_back();
    } else {
      ++i;
    }
  }

  // Update write-drain mode.
  if (write_q_.size() >= drain_high_) draining_writes_ = true;
  if (write_q_.size() <= drain_low_) draining_writes_ = false;
  const bool serve_writes = serving_writes();

  // One command slot per cycle: refresh first, then columns, then prep.
  if (handle_refresh(now)) return;
  if (serve_writes) {
    if (try_issue_column(write_q_, true, now)) return;
    if (try_issue_column(read_q_, false, now)) return;  // opportunistic reads
    if (try_issue_bank_prep(write_q_, now)) return;
    if (try_issue_bank_prep(read_q_, now)) return;
  } else {
    if (try_issue_column(read_q_, false, now)) return;
    if (try_issue_bank_prep(read_q_, now)) return;
    // Idle read path: prep writes in the background.
    if (try_issue_bank_prep(write_q_, now)) return;
  }
}

}  // namespace secddr::dram
