#include "dram/controller.h"

#include <algorithm>
#include <cassert>

namespace secddr::dram {

Controller::Controller(const Geometry& geometry, const Timings& timings,
                       unsigned read_queue_size, unsigned write_queue_size,
                       SchedulingPolicy policy, const PowerConfig& power)
    : geometry_(geometry),
      timings_(timings),
      mapping_(geometry),
      policy_(policy),
      rq_size_(read_queue_size),
      wq_size_(write_queue_size),
      drain_low_(write_queue_size / 4),
      drain_high_(write_queue_size * 3 / 4),
      banks_(geometry.total_banks()),
      ranks_(geometry.ranks),
      power_cfg_(power) {
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    // Stagger refresh across ranks so they do not lock the channel together.
    ranks_[r].next_refresh_due =
        timings_.tREFI / (geometry_.ranks + 1) * (r + 1);
  }
  for (unsigned dir = 0; dir < 2; ++dir) {
    queues_[dir].resize(geometry_.total_banks());
    active_[dir].init(geometry_.total_banks());
    col_idx_[dir].init(geometry_.total_banks());
    pre_idx_[dir].init(geometry_.total_banks());
    closed_idx_[dir].resize(geometry_.ranks);
    for (auto& idx : closed_idx_[dir]) idx.init(geometry_.total_banks());
  }
  col_bus_floor_.assign(geometry_.ranks, 0);
  act_floor_.assign(geometry_.ranks, ActFloor{});

  if (power_cfg_.window_cycles == 0) power_cfg_.window_cycles = 1;
  if (power_cfg_.throttle_period == 0) power_cfg_.throttle_period = 1;
  power_on_ = power_cfg_.enabled;
  any_policy_ = power_cfg_.any_policy();
  remap_active_ = power_cfg_.enabled && power_cfg_.remap;
  throttle_period_ = power_cfg_.throttle_period;
  energy_model_ = analysis::EnergyModel(power_cfg_.energy);
  if (power_on_) {
    window_counts_.assign(geometry_.ranks, analysis::CommandCounts{});
    bank_activity_.assign(geometry_.total_banks(), 0);
    rank_energy_fj_.assign(geometry_.ranks, 0);
    const std::uint64_t period_fs =
        static_cast<std::uint64_t>(1e9 / timings_.clock_mhz + 0.5);
    thermal_.assign(geometry_.ranks,
                    analysis::ThermalNode(power_cfg_.thermal,
                                          power_cfg_.window_cycles, period_fs));
    if (remap_active_) {
      remap_.resize(geometry_.total_banks());
      remap_inv_.resize(geometry_.total_banks());
      for (unsigned i = 0; i < geometry_.total_banks(); ++i)
        remap_[i] = remap_inv_[i] = i;
    }
  }
}

DecodedAddr Controller::map_addr(Addr addr) const {
  DecodedAddr d = mapping_.decode(addr);
  if (remap_active_) {
    const unsigned phys = remap_[d.flat_bank(geometry_)];
    const unsigned in_rank = phys % geometry_.banks_per_rank();
    d.rank = phys / geometry_.banks_per_rank();
    d.bank_group = in_rank / geometry_.banks_per_group;
    d.bank = in_rank % geometry_.banks_per_group;
  }
  return d;
}

void Controller::prime_col_floors(bool is_write) const {
  if (have_last_col_) {
    col_ccd_same_ = last_col_cmd_ + timings_.tCCD_L;
    col_ccd_diff_ = last_col_cmd_ + timings_.tCCD_S;
  }
  const unsigned lat = is_write ? timings_.tCWL : timings_.tCL;
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    Cycle bus_ready = bus_free_at_;
    if (bus_free_at_ > 0 &&
        (bus_last_was_write_ != is_write || bus_last_rank_ != r))
      bus_ready += timings_.turnaround;
    col_bus_floor_[r] = bus_ready > lat ? bus_ready - lat : 0;
  }
}

void Controller::prime_act_floors() const {
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    const RankState& rank = ranks_[r];
    ActFloor& f = act_floor_[r];
    f.gated = rank.refresh_pending;
    if (f.gated) continue;
    const Cycle faw = rank.act_window.size() >= 4
                          ? rank.act_window.front() + timings_.tFAW
                          : 0;
    f.same_bg = rank.have_last_act
                    ? std::max(faw, rank.last_act + timings_.tRRD_L)
                    : faw;
    f.diff_bg = rank.have_last_act
                    ? std::max(faw, rank.last_act + timings_.tRRD_S)
                    : faw;
  }
}

void Controller::sync_indexes(unsigned dir, unsigned flat) {
  const BankQueue& bq = queues_[dir][flat];
  const bool nonempty = !bq.q.empty();
  const bool open = banks_[flat].is_open();
  active_[dir].set(flat, nonempty);
  col_idx_[dir].set(flat, nonempty && open && bq.match_count > 0);
  pre_idx_[dir].set(flat, nonempty && open && bq.match_count < bq.q.size());
  closed_idx_[dir][flat / geometry_.banks_per_rank()].set(
      flat, nonempty && !open);
}

void Controller::close_bank(unsigned flat, Cycle now) {
  banks_[flat].precharge(now, timings_.tRP);
  ++stats_.precharges;
  if (power_on_) {
    ++window_counts_[flat / geometry_.banks_per_rank()].pre;
    ++bank_activity_[flat];
  }
  if (observer_) {
    const unsigned in_rank = flat % geometry_.banks_per_rank();
    observer_->on_precharge(flat / geometry_.banks_per_rank(),
                            in_rank / geometry_.banks_per_group,
                            in_rank % geometry_.banks_per_group, now);
  }
  sync_indexes(0, flat);
  sync_indexes(1, flat);
}

int Controller::oldest_bank(unsigned dir) const {
  int best = -1;
  std::uint64_t best_seq = ~std::uint64_t{0};
  for (const unsigned flat : active_[dir].items) {
    const std::uint64_t s = queues_[dir][flat].q.front().seq;
    if (s < best_seq) {
      best_seq = s;
      best = static_cast<int>(flat);
    }
  }
  return best;
}

void Controller::recount_bank(unsigned flat) {
  const std::int64_t row = banks_[flat].open_row;
  queues_[0][flat].recount(row);
  queues_[1][flat].recount(row);
  sync_indexes(0, flat);
  sync_indexes(1, flat);
}

bool Controller::enqueue(Addr addr, bool is_write, std::uint64_t tag,
                         Cycle now) {
  // Close elapsed accounting windows before any bookkeeping so commands
  // recorded this cycle land in the window that contains `now`. With
  // policies enabled, window boundaries are event candidates and the
  // boundary tick has already run, making this a no-op; with policies
  // off it is pure (lazily caught-up) accounting either way.
  if (power_on_) power_advance(now);
  Request e{addr, map_addr(addr), tag, now, next_seq_, false};
  const unsigned flat = e.d.flat_bank(geometry_);
  if (is_write) {
    if (q_size_[1] >= wq_size_) return false;
    // Write merging: a newer write to the same line supersedes the queued
    // one. The superseded write completes (exactly once) here; the
    // surviving entry carries the new tag and completes when it issues,
    // so each logical write is counted and completed exactly once. A
    // same-line write lives in the same bank FIFO by construction, so
    // only that FIFO needs scanning.
    for (auto& w : queues_[1][flat].q) {
      if (line_base(w.addr) == line_base(addr)) {
        ++stats_.writes_enqueued;
        ++stats_.writes_completed;
        completions_.push_back({w.tag, w.addr, true, w.arrival, now});
        w.tag = tag;
        w.arrival = now;
        return true;
      }
    }
    ++next_seq_;
    const Bank& bank = banks_[flat];
    if (bank.is_open() &&
        bank.open_row == static_cast<std::int64_t>(e.d.row))
      ++queues_[1][flat].match_count;
    queues_[1][flat].q.push_back(e);
    ++q_size_[1];
    sync_indexes(1, flat);
    ++stats_.writes_enqueued;
    observe_event_candidate(entry_event_bound(e, true));
    // Crossing the drain watermark flips the next tick into write
    // service, making every queued write column a candidate.
    if (!draining_writes_ && q_size_[1] >= drain_high_)
      observe_event_candidate(now);
    return true;
  }
  if (q_size_[0] >= rq_size_) return false;
  // Write forwarding: serve the read from the pending write data. The
  // read completes here and never enters the read queue, so it does not
  // count as enqueued. Same line => same bank FIFO.
  for (const auto& w : queues_[1][flat].q) {
    if (line_base(w.addr) == line_base(addr)) {
      ++stats_.write_forwards;
      ++stats_.reads_completed;
      const Cycle finish = now + timings_.tCL;
      stats_.total_read_latency += finish - now;
      completions_.push_back({tag, addr, false, now, finish});
      return true;
    }
  }
  ++next_seq_;
  const Bank& bank = banks_[flat];
  if (bank.is_open() && bank.open_row == static_cast<std::int64_t>(e.d.row))
    ++queues_[0][flat].match_count;
  queues_[0][flat].q.push_back(e);
  ++q_size_[0];
  sync_indexes(0, flat);
  ++stats_.reads_enqueued;
  observe_event_candidate(entry_event_bound(e, false));
  return true;
}

bool Controller::has_queued_write_to_line(Addr addr) const {
  // Same line => same bank FIFO (the invariant enqueue() relies on for
  // merge/forward scans), so one FIFO scan decides.
  const unsigned flat = map_addr(addr).flat_bank(geometry_);
  for (const auto& w : queues_[1][flat].q)
    if (line_base(w.addr) == line_base(addr)) return true;
  return false;
}

Cycle Controller::column_ready_at(const Request& e, bool is_write) const {
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  Cycle at = is_write ? bank.next_write : bank.next_read;

  // Column-to-column spacing (tCCD_S/tCCD_L).
  if (have_last_col_) {
    const bool same_bg =
        last_col_bg_ == e.d.bank_group && last_col_rank_ == e.d.rank;
    at = std::max(at, last_col_cmd_ + (same_bg ? timings_.tCCD_L
                                               : timings_.tCCD_S));
  }

  // Data-bus availability, including direction/rank turnaround: data starts
  // `lat` after the command, so the command may go `lat` before the bus
  // frees.
  Cycle bus_ready = bus_free_at_;
  if (bus_free_at_ > 0 && (bus_last_was_write_ != is_write ||
                           bus_last_rank_ != e.d.rank))
    bus_ready += timings_.turnaround;
  const unsigned lat = is_write ? timings_.tCWL : timings_.tCL;
  return std::max(at, bus_ready > lat ? bus_ready - lat : 0);
}

Cycle Controller::act_ready_at(const Request& e) const {
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  const RankState& rank = ranks_[e.d.rank];
  // A refresh-gated bank is woken by the refresh events themselves.
  if (rank.refresh_pending) return kNoEvent;
  Cycle at = bank.next_activate;
  if (rank.act_window.size() >= 4)
    at = std::max(at, rank.act_window.front() + timings_.tFAW);
  if (rank.have_last_act)
    at = std::max(at, rank.last_act + (rank.last_act_bg == e.d.bank_group
                                           ? timings_.tRRD_L
                                           : timings_.tRRD_S));
  return at;
}

void Controller::apply_write_to_read_penalty(const Request& e,
                                             Cycle data_end) {
  // After write data ends, reads to the same rank must wait tWTR_S/L.
  for (unsigned bg = 0; bg < geometry_.bank_groups; ++bg) {
    const unsigned wtr =
        bg == e.d.bank_group ? timings_.tWTR_L : timings_.tWTR_S;
    for (unsigned b = 0; b < geometry_.banks_per_group; ++b) {
      const unsigned idx = e.d.rank * geometry_.banks_per_rank() +
                           bg * geometry_.banks_per_group + b;
      banks_[idx].next_read = std::max(banks_[idx].next_read, data_end + wtr);
    }
  }
}

void Controller::issue_column(unsigned flat, std::size_t pos, bool is_write,
                              Cycle now) {
  const unsigned dir = is_write ? 1 : 0;
  BankQueue& bq = queues_[dir][flat];
  Request e = bq.q[pos];
  bq.q.erase(bq.q.begin() + static_cast<std::ptrdiff_t>(pos));
  --bq.match_count;  // a column candidate always targets the open row
  --q_size_[dir];
  sync_indexes(dir, flat);

  Bank& bank = banks_[flat];
  if (e.activated_for)
    ++stats_.row_misses;
  else
    ++stats_.row_hits;
  if (power_on_) {
    analysis::CommandCounts& wc = window_counts_[e.d.rank];
    if (is_write)
      ++wc.wr;
    else
      ++wc.rd;
    ++bank_activity_[flat];
  }
  if (observer_) observer_->on_column(e.d, is_write, now);

  const unsigned burst = is_write ? timings_.write_burst_cycles
                                  : timings_.read_burst_cycles;
  const Cycle data_start = now + (is_write ? timings_.tCWL : timings_.tCL);
  const Cycle data_end = data_start + burst;
  bus_free_at_ = data_end;
  bus_last_was_write_ = is_write;
  bus_last_rank_ = e.d.rank;
  stats_.data_bus_busy_cycles += burst;
  last_col_cmd_ = now;
  have_last_col_ = true;
  last_col_bg_ = e.d.bank_group;
  last_col_rank_ = e.d.rank;

  if (is_write) {
    bank.next_precharge =
        std::max(bank.next_precharge, data_end + timings_.tWR);
    apply_write_to_read_penalty(e, data_end);
    ++stats_.writes_completed;
    completions_.push_back({e.tag, e.addr, true, e.arrival, data_end});
  } else {
    bank.next_precharge =
        std::max(bank.next_precharge, now + timings_.tRTP);
    inflight_reads_.push_back({e, data_end});
    inflight_min_finish_ = std::min(inflight_min_finish_, data_end);
  }
}

bool Controller::try_issue_column(bool is_write, Cycle now) {
  const unsigned dir = is_write ? 1 : 0;
  ++scan_stats_.issue_scans;
  scan_stats_.queue_depth_sum += q_size_[dir];

  if (policy_ == SchedulingPolicy::kFcfs) {
    // Strict FCFS considers only the globally oldest entry.
    const int flat = oldest_bank(dir);
    scan_stats_.entries_visited += active_[dir].items.size();
    if (flat < 0) return false;
    const Request& e = queues_[dir][static_cast<unsigned>(flat)].q.front();
    const Bank& bank = banks_[static_cast<unsigned>(flat)];
    if (!bank.is_open() ||
        bank.open_row != static_cast<std::int64_t>(e.d.row) ||
        now < column_ready_at(e, is_write))
      return false;
    issue_column(static_cast<unsigned>(flat), 0, is_write, now);
    ++scan_stats_.commands_issued;
    return true;
  }

  // FR-FCFS: the oldest row hit whose column command is allowed. Row hits
  // of the same bank share every timing constraint, so each bank
  // contributes (at most) its oldest open-row entry and the winner is the
  // minimum arrival seq across allowed banks — exactly the entry a
  // front-to-back scan of one global arrival-ordered deque would pick.
  if (col_idx_[dir].items.empty()) return false;
  bool primed = false;
  int best_flat = -1;
  std::size_t best_pos = 0;
  std::uint64_t best_seq = ~std::uint64_t{0};
  for (const unsigned flat : col_idx_[dir].items) {
    ++scan_stats_.entries_visited;
    const Bank& bank = banks_[flat];
    const BankQueue& bq = queues_[dir][flat];
    const Request& rep = bq.q.front();
    // Bank-level pre-filter: the full bound is a max including this term,
    // so a bank not yet column-ready by its own timing needs no floors.
    if (now < (is_write ? bank.next_write : bank.next_read)) continue;
    if (!primed) {
      prime_col_floors(is_write);
      primed = true;
    }
    if (now < column_ready_primed(bank, rep.d, is_write)) continue;
    const int pos = bq.first_match(
        static_cast<std::uint64_t>(bank.open_row),
        &scan_stats_.entries_visited);
    assert(pos >= 0);
    const std::uint64_t s = bq.q[static_cast<std::size_t>(pos)].seq;
    if (s < best_seq) {
      best_seq = s;
      best_flat = static_cast<int>(flat);
      best_pos = static_cast<std::size_t>(pos);
    }
  }
  if (best_flat < 0) return false;
  issue_column(static_cast<unsigned>(best_flat), best_pos, is_write, now);
  ++scan_stats_.commands_issued;
  return true;
}

bool Controller::try_issue_bank_prep(bool is_write, Cycle now) {
  const unsigned dir = is_write ? 1 : 0;
  ++scan_stats_.issue_scans;
  scan_stats_.queue_depth_sum += q_size_[dir];

  const auto do_act = [&](unsigned flat, Request& e) {
    Bank& bank = banks_[flat];
    bank.activate(e.d.row, now, timings_.tRCD, timings_.tRAS);
    RankState& rank = ranks_[e.d.rank];
    rank.act_window.push_back(now);
    while (rank.act_window.size() > 4) rank.act_window.pop_front();
    rank.last_act = now;
    rank.have_last_act = true;
    rank.last_act_bg = e.d.bank_group;
    e.activated_for = true;
    ++stats_.activates;
    if (power_on_) {
      ++window_counts_[e.d.rank].act;
      ++bank_activity_[flat];
    }
    if (observer_) observer_->on_activate(e.d, now);
    recount_bank(flat);
    ++scan_stats_.commands_issued;
  };
  const auto do_pre = [&](unsigned flat) {
    close_bank(flat, now);
    ++scan_stats_.commands_issued;
  };

  if (policy_ == SchedulingPolicy::kFcfs) {
    const int flat_i = oldest_bank(dir);
    scan_stats_.entries_visited += active_[dir].items.size();
    if (flat_i < 0) return false;
    const unsigned flat = static_cast<unsigned>(flat_i);
    Request& e = queues_[dir][flat].q.front();
    Bank& bank = banks_[flat];
    if (bank.is_open() &&
        bank.open_row == static_cast<std::int64_t>(e.d.row))
      return false;  // row hit waiting on timing only
    if (!bank.is_open()) {
      if (now < act_ready_at(e)) return false;
      do_act(flat, e);
      return true;
    }
    if (now < bank.next_precharge) return false;
    do_pre(flat);
    return true;
  }

  // FR-FCFS: ACT or PRE for the oldest request whose bank is not ready.
  // Per bank the candidate is its oldest non-row-hit entry (the whole
  // FIFO when the bank is closed); the action's predicate is bank-level,
  // so the arbitration is again min seq across allowed banks. Closed
  // banks are grouped per rank: when the rank's tFAW/tRRD floor alone
  // blocks every ACT (one comparison), the whole group is skipped.
  enum class Action { kAct, kPre };
  prime_act_floors();
  int best_flat = -1;
  Action best_action = Action::kAct;
  std::uint64_t best_seq = ~std::uint64_t{0};
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    const BankIndex& idx = closed_idx_[dir][r];
    if (idx.items.empty()) continue;
    ++scan_stats_.entries_visited;
    const ActFloor& f = act_floor_[r];
    if (f.gated || (now < f.same_bg && now < f.diff_bg)) continue;
    for (const unsigned flat : idx.items) {
      ++scan_stats_.entries_visited;
      const Request& head = queues_[dir][flat].q.front();
      if (head.seq >= best_seq) continue;
      if (now < act_ready_primed(banks_[flat], head.d)) continue;
      best_seq = head.seq;
      best_flat = static_cast<int>(flat);
      best_action = Action::kAct;
    }
  }
  for (const unsigned flat : pre_idx_[dir].items) {
    ++scan_stats_.entries_visited;
    const Bank& bank = banks_[flat];
    if (now < bank.next_precharge) continue;
    const BankQueue& bq = queues_[dir][flat];
    const int pos = bq.first_mismatch(
        static_cast<std::uint64_t>(bank.open_row),
        &scan_stats_.entries_visited);
    assert(pos >= 0);
    const std::uint64_t s = bq.q[static_cast<std::size_t>(pos)].seq;
    if (s < best_seq) {
      best_seq = s;
      best_flat = static_cast<int>(flat);
      best_action = Action::kPre;
    }
  }
  if (best_flat < 0) return false;
  const unsigned flat = static_cast<unsigned>(best_flat);
  if (best_action == Action::kAct)
    do_act(flat, queues_[dir][flat].q.front());
  else
    do_pre(flat);
  return true;
}

bool Controller::handle_refresh(Cycle now) {
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    RankState& rank = ranks_[r];
    if (!rank.refresh_pending) {
      if (now >= rank.next_refresh_due) rank.refresh_pending = true;
      continue;
    }
    // Precharge all open banks in the rank, then refresh.
    bool all_closed = true;
    for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
      const unsigned flat = r * geometry_.banks_per_rank() + b;
      if (banks_[flat].is_open()) {
        all_closed = false;
        if (now >= banks_[flat].next_precharge) {
          close_bank(flat, now);
          return true;
        }
      }
    }
    if (all_closed) {
      bool ready = true;
      for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
        const Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
        if (now < bank.next_activate) {
          ready = false;
          break;
        }
      }
      if (ready) {
        for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
          Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
          bank.next_activate = std::max(bank.next_activate, now + timings_.tRFC);
        }
        rank.refresh_pending = false;
        rank.next_refresh_due += timings_.tREFI;
        ++stats_.refreshes;
        if (power_on_) ++window_counts_[r].ref;
        if (observer_) observer_->on_refresh(r, now);
        return true;
      }
    }
  }
  return false;
}

Cycle Controller::entry_event_bound(const Request& e, bool is_write) const {
  // Derived from the same column_ready_at()/act_ready_at() bounds the
  // issue predicates test against, so "allowed" is exactly "now >= bound"
  // and the memoized event times can never drift from the predicates.
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  if (bank.is_open() && bank.open_row == static_cast<std::int64_t>(e.d.row)) {
    // A write row hit is only a candidate while writes are being served;
    // the transitions into write service (drain watermark crossing, read
    // queue emptying) are themselves observed events, so until then the
    // entry schedules nothing.
    if (is_write && !serving_writes()) return kNoEvent;
    return column_ready_at(e, is_write);
  }
  if (bank.is_open()) {
    // Row conflict: a precharge becomes possible.
    return bank.next_precharge;
  }
  // Closed bank: an activate becomes possible (kNoEvent while refresh-gated).
  return act_ready_at(e);
}

Cycle Controller::next_event_cycle(Cycle now) const {
  // The event set can move earlier only via enqueue() (which folds the
  // new entry's bound into the cache); mutations inside tick() only
  // happen once the cached event time has been reached, after which the
  // cache expires here and is recomputed against the post-mutation state.
  if (next_event_valid_ && next_event_cache_ >= now) return next_event_cache_;
  next_event_cache_ = compute_next_event_cycle(now);
  next_event_valid_ = true;
  return next_event_cache_;
}

Cycle Controller::compute_next_event_cycle(Cycle now) const {
  Cycle next = kNoEvent;
  // Every timing constraint below is of the form "allowed once now >= X",
  // so the earliest cycle an entry *could* act is the max of its X values
  // and the min over entries lower-bounds the next state change. Commands
  // this query admits may still lose the one-command-per-cycle arbitration
  // in tick(); that only wakes the caller early, never late.
  const auto consider = [&](Cycle at) { next = std::min(next, std::max(at, now)); };
  // `consider` clamps to >= now, so once the running minimum hits `now`
  // nothing can lower it further — the remaining scans are skipped. The
  // returned value is identical either way.

  // Command-bound variant: while the thermal throttle is engaged, tick()
  // only issues on cycles divisible by the throttle period, so command
  // bounds round up to the next allowed cycle. Retirement, refresh, and
  // the window-boundary candidates stay unrounded (never throttled), and
  // the boundary candidate below covers the disengagement case where a
  // command becomes issuable before its rounded bound.
  const auto consider_cmd = [&](Cycle at) {
    at = std::max(at, now);
    if (throttle_engaged_)
      at = (at + throttle_period_ - 1) / throttle_period_ * throttle_period_;
    next = std::min(next, at);
  };

  // The write-drain hysteresis flip is itself a state change the next
  // tick performs (even though no command issues that cycle), and it
  // changes which columns are servable right after.
  if (draining_writes_ ? q_size_[1] <= drain_low_ : q_size_[1] >= drain_high_)
    return now;

  // With a policy enabled, the accounting-window boundary is a state
  // change in its own right (throttle trip/release, remap swap), so the
  // event loop must tick it. With policies off, boundaries are lazy pure
  // accounting and schedule nothing.
  if (any_policy_)
    consider(power_window_start_ + power_cfg_.window_cycles);

  if (inflight_min_finish_ != kNoEvent) {
    consider(inflight_min_finish_);
    if (next == now) return now;
  }

  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    const RankState& rank = ranks_[r];
    if (!rank.refresh_pending) {
      consider(rank.next_refresh_due);
      continue;
    }
    // Refresh in progress: open banks precharge as they become eligible;
    // once all are closed the refresh fires when every bank is activatable.
    bool all_closed = true;
    Cycle refresh_ready = now;
    for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
      const Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
      if (bank.is_open()) {
        all_closed = false;
        consider(bank.next_precharge);
      } else {
        refresh_ready = std::max(refresh_ready, bank.next_activate);
      }
    }
    if (all_closed) consider(refresh_ready);
  }
  if (next == now) return now;

  if (policy_ == SchedulingPolicy::kFcfs) {
    // Strict FCFS only ever considers the globally oldest entry of each
    // direction's queue.
    for (unsigned dir = 0; dir < 2; ++dir) {
      const int flat = oldest_bank(dir);
      if (flat < 0) continue;
      const Cycle at = entry_event_bound(
          queues_[dir][static_cast<unsigned>(flat)].q.front(), dir == 1);
      if (at != kNoEvent) consider_cmd(at);
    }
    return next;
  }

  // FR-FCFS: per (bank, direction) there are at most two distinct bounds —
  // the shared column time of its row hits and the bank-level
  // precharge/activate time of its other entries — so the scan is
  // O(active banks), no per-entry work and no dedup scratch needed.
  bool act_primed = false;
  for (unsigned dir = 0; dir < 2; ++dir) {
    const bool is_write = dir == 1;
    for (unsigned r = 0; r < geometry_.ranks; ++r) {
      if (closed_idx_[dir][r].items.empty()) continue;
      if (!act_primed) {
        prime_act_floors();
        act_primed = true;
      }
      // A refresh-gated rank contributes no ACT bounds at all (the
      // refresh's own events wake the controller), exactly as
      // act_ready_primed would report per bank.
      if (act_floor_[r].gated) continue;
      for (const unsigned flat : closed_idx_[dir][r].items)
        consider_cmd(act_ready_primed(banks_[flat],
                                      queues_[dir][flat].q.front().d));
      if (next == now) return now;
    }
    for (const unsigned flat : pre_idx_[dir].items)
      consider_cmd(banks_[flat].next_precharge);
    if (next == now) return now;
    // Column candidates live in their own index (write hits schedule
    // nothing while writes are not being served; the transitions into
    // write service are observed events themselves).
    if (is_write && !serving_writes()) continue;
    if (col_idx_[dir].items.empty()) continue;
    prime_col_floors(is_write);
    for (const unsigned flat : col_idx_[dir].items)
      consider_cmd(column_ready_primed(
          banks_[flat], queues_[dir][flat].q.front().d, is_write));
  }
  return next;
}

void Controller::tick(Cycle now) {
  // Close elapsed accounting windows first: command taps below must land
  // in the window containing `now`, and the boundary's policy decisions
  // (throttle trip/release, remap swap) must precede this cycle's issue.
  if (power_on_) power_advance(now);

  // Retire reads whose data has arrived. The pass visits every entry, so
  // the surviving minimum finish is recomputed for free.
  if (inflight_min_finish_ <= now) {
    Cycle min_finish = kNoEvent;
    for (std::size_t i = 0; i < inflight_reads_.size();) {
      if (inflight_reads_[i].finish <= now) {
        const auto& fr = inflight_reads_[i];
        ++stats_.reads_completed;
        stats_.total_read_latency += fr.finish - fr.entry.arrival;
        completions_.push_back(
            {fr.entry.tag, fr.entry.addr, false, fr.entry.arrival, fr.finish});
        inflight_reads_[i] = inflight_reads_.back();
        inflight_reads_.pop_back();
      } else {
        min_finish = std::min(min_finish, inflight_reads_[i].finish);
        ++i;
      }
    }
    inflight_min_finish_ = min_finish;
  }

  // Update write-drain mode.
  if (q_size_[1] >= drain_high_) draining_writes_ = true;
  if (q_size_[1] <= drain_low_) draining_writes_ = false;
  const bool serve_writes = serving_writes();

  // One command slot per cycle: refresh first, then columns, then prep.
  if (handle_refresh(now)) return;
  // Thermal throttle: while engaged, command issue is gated to one cycle
  // in `throttle_period` (refresh above is exempt — retention is not
  // negotiable). Retirement and drain bookkeeping already ran.
  if (throttle_engaged_ && now % throttle_period_ != 0) return;
  if (serve_writes) {
    if (try_issue_column(true, now)) return;
    if (try_issue_column(false, now)) return;  // opportunistic reads
    if (try_issue_bank_prep(true, now)) return;
    if (try_issue_bank_prep(false, now)) return;
  } else {
    if (try_issue_column(false, now)) return;
    if (try_issue_bank_prep(false, now)) return;
    // Idle read path: prep writes in the background.
    if (try_issue_bank_prep(true, now)) return;
  }
}

void Controller::power_advance(Cycle now) {
  // `power_window_start_` never exceeds the last boundary <= every
  // processed cycle, so the subtraction cannot underflow.
  while (now - power_window_start_ >= power_cfg_.window_cycles)
    close_power_window();
}

void Controller::close_power_window() {
  const std::uint64_t w = power_cfg_.window_cycles;
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    const analysis::EnergyBreakdown eb =
        energy_model_.window_energy(window_counts_[r], w);
    const std::uint64_t fj = eb.total_fj();
    thermal_[r].apply_window(fj);
    rank_energy_fj_[r] += fj;
    energy_total_ += eb;
    counts_total_ += window_counts_[r];
    window_counts_[r] = analysis::CommandCounts{};
  }
  ++power_windows_;
  if (power_cfg_.throttle) {
    std::int64_t hottest = thermal_[0].temp_mc();
    for (unsigned r = 1; r < geometry_.ranks; ++r)
      hottest = std::max(hottest, thermal_[r].temp_mc());
    if (!throttle_engaged_ && hottest >= power_cfg_.trip_mc)
      throttle_engaged_ = true;
    else if (throttle_engaged_ && hottest <= power_cfg_.release_mc)
      throttle_engaged_ = false;
    if (throttle_engaged_) ++throttled_windows_;
  }
  if (remap_active_) {
    ++windows_since_swap_;
    maybe_remap();
  }
  std::fill(bank_activity_.begin(), bank_activity_.end(), 0);
  power_window_start_ += w;
}

void Controller::maybe_remap() {
  if (windows_since_swap_ < power_cfg_.remap_min_windows) return;
  if (geometry_.ranks < 2) return;
  // Hottest and coolest rank by full-precision Q16 temperature; ties go
  // to the lowest rank index (deterministic).
  unsigned hot = 0, cold = 0;
  for (unsigned r = 1; r < geometry_.ranks; ++r) {
    if (thermal_[r].temp_q16() > thermal_[hot].temp_q16()) hot = r;
    if (thermal_[r].temp_q16() < thermal_[cold].temp_q16()) cold = r;
  }
  if (hot == cold) return;
  if (thermal_[hot].temp_mc() - thermal_[cold].temp_mc() <
      power_cfg_.remap_delta_mc)
    return;
  // Candidate banks must have empty FIFOs in both directions: queued
  // entries were decoded under the old permutation, and the write
  // merge/forward scans rely on "same line => same bank FIFO". Swapping
  // only idle banks keeps every in-flight invariant untouched (bank
  // timing state is physical and travels with the physical bank).
  const unsigned bpr = geometry_.banks_per_rank();
  const auto idle = [&](unsigned flat) {
    return queues_[0][flat].q.empty() && queues_[1][flat].q.empty();
  };
  int src = -1;
  std::uint64_t src_activity = 0;
  for (unsigned b = 0; b < bpr; ++b) {
    const unsigned flat = hot * bpr + b;
    if (!idle(flat)) continue;
    if (src < 0 || bank_activity_[flat] > src_activity) {
      src = static_cast<int>(flat);
      src_activity = bank_activity_[flat];
    }
  }
  if (src < 0 || src_activity == 0) return;  // nothing hot worth moving
  int dst = -1;
  std::uint64_t dst_activity = 0;
  for (unsigned b = 0; b < bpr; ++b) {
    const unsigned flat = cold * bpr + b;
    if (!idle(flat)) continue;
    if (dst < 0 || bank_activity_[flat] < dst_activity) {
      dst = static_cast<int>(flat);
      dst_activity = bank_activity_[flat];
    }
  }
  if (dst < 0) return;
  const unsigned lsrc = remap_inv_[static_cast<unsigned>(src)];
  const unsigned ldst = remap_inv_[static_cast<unsigned>(dst)];
  std::swap(remap_[lsrc], remap_[ldst]);
  remap_inv_[static_cast<unsigned>(src)] = ldst;
  remap_inv_[static_cast<unsigned>(dst)] = lsrc;
  ++remap_swaps_;
  windows_since_swap_ = 0;
}

void Controller::reset_power_stats() {
  energy_total_ = analysis::EnergyBreakdown{};
  counts_total_ = analysis::CommandCounts{};
  power_windows_ = 0;
  throttled_windows_ = 0;
  remap_swaps_ = 0;
  std::fill(rank_energy_fj_.begin(), rank_energy_fj_.end(), 0);
  for (analysis::ThermalNode& t : thermal_) t.reset_peak();
}

PowerReport Controller::power_report(Cycle now) {
  PowerReport r;
  r.enabled = power_on_;
  if (!power_on_) return r;
  power_advance(now);
  r.energy = energy_total_;
  r.counts = counts_total_;
  r.windows = power_windows_;
  r.throttled_windows = throttled_windows_;
  r.remap_swaps = remap_swaps_;
  r.ranks.reserve(geometry_.ranks);
  for (unsigned i = 0; i < geometry_.ranks; ++i)
    r.ranks.push_back(
        {rank_energy_fj_[i], thermal_[i].temp_mc(), thermal_[i].peak_mc()});
  return r;
}

namespace {

void save_request(serial::Sink& s, const Request& e) {
  // `d` is a pure function of the address; the loader re-decodes it.
  s.u64(e.addr);
  s.u64(e.tag);
  s.u64(e.arrival);
  s.u64(e.seq);
  s.b(e.activated_for);
}

}  // namespace

Request Controller::load_request(serial::Source& s) const {
  Request e;
  e.addr = s.u64();
  // Re-decode through the (already restored) bank permutation, so `d`
  // matches what enqueue() computed in the donor process.
  e.d = map_addr(e.addr);
  e.tag = s.u64();
  e.arrival = s.u64();
  e.seq = s.u64();
  e.activated_for = s.b();
  return e;
}

void Controller::save(serial::Sink& s) const {
  // Power/thermal block first: load_request() re-decodes queued requests
  // through the remap table, so the table must already be restored when
  // the queues below are read back.
  if (power_on_) {
    s.u64(power_window_start_);
    for (const analysis::CommandCounts& c : window_counts_) {
      s.u64(c.act);
      s.u64(c.pre);
      s.u64(c.rd);
      s.u64(c.wr);
      s.u64(c.ref);
    }
    for (const std::uint64_t a : bank_activity_) s.u64(a);
    for (unsigned r = 0; r < geometry_.ranks; ++r) {
      s.i64(thermal_[r].temp_q16());
      s.i64(thermal_[r].peak_q16());
      s.u64(rank_energy_fj_[r]);
    }
    s.u64(energy_total_.act_fj);
    s.u64(energy_total_.pre_fj);
    s.u64(energy_total_.rd_fj);
    s.u64(energy_total_.wr_fj);
    s.u64(energy_total_.ref_fj);
    s.u64(energy_total_.background_fj);
    s.u64(counts_total_.act);
    s.u64(counts_total_.pre);
    s.u64(counts_total_.rd);
    s.u64(counts_total_.wr);
    s.u64(counts_total_.ref);
    s.u64(power_windows_);
    s.u64(throttled_windows_);
    s.u64(remap_swaps_);
    s.u64(windows_since_swap_);
    s.b(throttle_engaged_);
    if (remap_active_)
      for (const std::uint32_t p : remap_) s.u32(p);
  }
  s.u64(banks_.size());
  for (const Bank& b : banks_) {
    s.i64(b.open_row);
    s.u64(b.next_activate);
    s.u64(b.next_read);
    s.u64(b.next_write);
    s.u64(b.next_precharge);
  }
  s.u64(ranks_.size());
  for (const RankState& r : ranks_) {
    s.u64(r.act_window.size());
    for (const Cycle c : r.act_window) s.u64(c);
    s.u64(r.last_act);
    s.b(r.have_last_act);
    s.u32(r.last_act_bg);
    s.u64(r.next_refresh_due);
    s.b(r.refresh_pending);
  }
  for (unsigned dir = 0; dir < 2; ++dir) {
    for (const BankQueue& bq : queues_[dir]) {
      s.u64(bq.q.size());
      for (const Request& e : bq.q) save_request(s, e);
      s.u32(bq.match_count);
    }
    s.u32(q_size_[dir]);
  }
  s.u64(next_seq_);
  s.b(draining_writes_);
  s.u64(inflight_reads_.size());
  for (const InflightRead& fr : inflight_reads_) {
    save_request(s, fr.entry);
    s.u64(fr.finish);
  }
  s.u64(inflight_min_finish_);
  s.u64(completions_.size());
  for (const Completion& c : completions_) {
    s.u64(c.tag);
    s.u64(c.addr);
    s.b(c.is_write);
    s.u64(c.arrival);
    s.u64(c.finish);
  }
  s.u64(bus_free_at_);
  s.b(bus_last_was_write_);
  s.u32(bus_last_rank_);
  s.u64(last_col_cmd_);
  s.b(have_last_col_);
  s.u32(last_col_bg_);
  s.u32(last_col_rank_);
  s.u64(stats_.reads_enqueued);
  s.u64(stats_.writes_enqueued);
  s.u64(stats_.reads_completed);
  s.u64(stats_.writes_completed);
  s.u64(stats_.row_hits);
  s.u64(stats_.row_misses);
  s.u64(stats_.activates);
  s.u64(stats_.precharges);
  s.u64(stats_.refreshes);
  s.u64(stats_.write_forwards);
  s.u64(stats_.data_bus_busy_cycles);
  s.u64(stats_.total_read_latency);
  s.u64(scan_stats_.issue_scans);
  s.u64(scan_stats_.entries_visited);
  s.u64(scan_stats_.queue_depth_sum);
  s.u64(scan_stats_.commands_issued);
}

void Controller::load(serial::Source& s) {
  if (power_on_) {
    power_window_start_ = s.u64();
    for (analysis::CommandCounts& c : window_counts_) {
      c.act = s.u64();
      c.pre = s.u64();
      c.rd = s.u64();
      c.wr = s.u64();
      c.ref = s.u64();
    }
    for (std::uint64_t& a : bank_activity_) a = s.u64();
    for (unsigned r = 0; r < geometry_.ranks; ++r) {
      const std::int64_t t_q16 = s.i64();
      const std::int64_t peak_q16 = s.i64();
      thermal_[r].set_state(t_q16, peak_q16);
      rank_energy_fj_[r] = s.u64();
    }
    energy_total_.act_fj = s.u64();
    energy_total_.pre_fj = s.u64();
    energy_total_.rd_fj = s.u64();
    energy_total_.wr_fj = s.u64();
    energy_total_.ref_fj = s.u64();
    energy_total_.background_fj = s.u64();
    counts_total_.act = s.u64();
    counts_total_.pre = s.u64();
    counts_total_.rd = s.u64();
    counts_total_.wr = s.u64();
    counts_total_.ref = s.u64();
    power_windows_ = s.u64();
    throttled_windows_ = s.u64();
    remap_swaps_ = s.u64();
    windows_since_swap_ = s.u64();
    throttle_engaged_ = s.b();
    if (remap_active_) {
      for (std::uint32_t& p : remap_) {
        p = s.u32();
        if (p >= geometry_.total_banks())
          throw std::runtime_error("controller remap entry out of range");
      }
      for (unsigned i = 0; i < geometry_.total_banks(); ++i)
        remap_inv_[remap_[i]] = i;
    }
  }
  if (s.u64() != banks_.size())
    throw std::runtime_error("controller bank count mismatch");
  for (Bank& b : banks_) {
    b.open_row = s.i64();
    b.next_activate = s.u64();
    b.next_read = s.u64();
    b.next_write = s.u64();
    b.next_precharge = s.u64();
  }
  if (s.u64() != ranks_.size())
    throw std::runtime_error("controller rank count mismatch");
  for (RankState& r : ranks_) {
    r.act_window.clear();
    const std::size_t acts = s.count(8);
    for (std::size_t i = 0; i < acts; ++i) r.act_window.push_back(s.u64());
    r.last_act = s.u64();
    r.have_last_act = s.b();
    r.last_act_bg = s.u32();
    r.next_refresh_due = s.u64();
    r.refresh_pending = s.b();
  }
  for (unsigned dir = 0; dir < 2; ++dir) {
    for (BankQueue& bq : queues_[dir]) {
      bq.q.clear();
      const std::size_t n = s.count(33);
      for (std::size_t i = 0; i < n; ++i)
        bq.q.push_back(load_request(s));
      bq.match_count = s.u32();
    }
    q_size_[dir] = s.u32();
  }
  next_seq_ = s.u64();
  draining_writes_ = s.b();
  inflight_reads_.clear();
  const std::size_t inflight = s.count(41);
  for (std::size_t i = 0; i < inflight; ++i) {
    InflightRead fr;
    fr.entry = load_request(s);
    fr.finish = s.u64();
    inflight_reads_.push_back(fr);
  }
  inflight_min_finish_ = s.u64();
  completions_.clear();
  const std::size_t comps = s.count(33);
  for (std::size_t i = 0; i < comps; ++i) {
    Completion c;
    c.tag = s.u64();
    c.addr = s.u64();
    c.is_write = s.b();
    c.arrival = s.u64();
    c.finish = s.u64();
    completions_.push_back(c);
  }
  bus_free_at_ = s.u64();
  bus_last_was_write_ = s.b();
  bus_last_rank_ = s.u32();
  last_col_cmd_ = s.u64();
  have_last_col_ = s.b();
  last_col_bg_ = s.u32();
  last_col_rank_ = s.u32();
  stats_.reads_enqueued = s.u64();
  stats_.writes_enqueued = s.u64();
  stats_.reads_completed = s.u64();
  stats_.writes_completed = s.u64();
  stats_.row_hits = s.u64();
  stats_.row_misses = s.u64();
  stats_.activates = s.u64();
  stats_.precharges = s.u64();
  stats_.refreshes = s.u64();
  stats_.write_forwards = s.u64();
  stats_.data_bus_busy_cycles = s.u64();
  stats_.total_read_latency = s.u64();
  scan_stats_.issue_scans = s.u64();
  scan_stats_.entries_visited = s.u64();
  scan_stats_.queue_depth_sum = s.u64();
  scan_stats_.commands_issued = s.u64();

  // Re-derive everything the serialized state determines: the candidate
  // indexes (membership from FIFO + bank state; item order is
  // behavior-neutral) and the next-event memo.
  const unsigned total = geometry_.total_banks();
  for (unsigned dir = 0; dir < 2; ++dir) {
    active_[dir].init(total);
    col_idx_[dir].init(total);
    pre_idx_[dir].init(total);
    for (auto& idx : closed_idx_[dir]) idx.init(total);
    for (unsigned flat = 0; flat < total; ++flat) sync_indexes(dir, flat);
  }
  next_event_valid_ = false;
}

}  // namespace secddr::dram
