#include "dram/controller.h"

#include <algorithm>
#include <cassert>

namespace secddr::dram {

Controller::Controller(const Geometry& geometry, const Timings& timings,
                       unsigned read_queue_size, unsigned write_queue_size,
                       SchedulingPolicy policy)
    : geometry_(geometry),
      timings_(timings),
      mapping_(geometry),
      policy_(policy),
      rq_size_(read_queue_size),
      wq_size_(write_queue_size),
      drain_low_(write_queue_size / 4),
      drain_high_(write_queue_size * 3 / 4),
      banks_(geometry.total_banks()),
      ranks_(geometry.ranks) {
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    // Stagger refresh across ranks so they do not lock the channel together.
    ranks_[r].next_refresh_due =
        timings_.tREFI / (geometry_.ranks + 1) * (r + 1);
  }
}

bool Controller::enqueue(Addr addr, bool is_write, std::uint64_t tag,
                         Cycle now) {
  Entry e{addr, mapping_.decode(addr), tag, now, false};
  if (is_write) {
    if (write_q_.size() >= wq_size_) return false;
    // Write merging: a newer write to the same line replaces the old one.
    for (auto& w : write_q_) {
      if (line_base(w.addr) == line_base(addr)) {
        w.tag = tag;
        completions_.push_back({tag, addr, true, now, now});
        ++stats_.writes_enqueued;
        ++stats_.writes_completed;
        return true;
      }
    }
    write_q_.push_back(e);
    ++stats_.writes_enqueued;
    return true;
  }
  if (read_q_.size() >= rq_size_) return false;
  ++stats_.reads_enqueued;
  // Write forwarding: serve the read from the pending write data.
  for (const auto& w : write_q_) {
    if (line_base(w.addr) == line_base(addr)) {
      ++stats_.write_forwards;
      ++stats_.reads_completed;
      const Cycle finish = now + timings_.tCL;
      stats_.total_read_latency += finish - now;
      completions_.push_back({tag, addr, false, now, finish});
      return true;
    }
  }
  read_q_.push_back(e);
  return true;
}

bool Controller::column_cmd_allowed(const Entry& e, bool is_write,
                                    Cycle now) const {
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  if (!bank.is_open() ||
      bank.open_row != static_cast<std::int64_t>(e.d.row))
    return false;
  if (now < (is_write ? bank.next_write : bank.next_read)) return false;

  // Column-to-column spacing (tCCD_S/tCCD_L).
  if (have_last_col_) {
    const bool same_bg =
        last_col_bg_ == e.d.bank_group && last_col_rank_ == e.d.rank;
    const unsigned ccd = same_bg ? timings_.tCCD_L : timings_.tCCD_S;
    if (now < last_col_cmd_ + ccd) return false;
  }

  // Data-bus availability, including direction/rank turnaround.
  const Cycle data_start =
      now + (is_write ? timings_.tCWL : timings_.tCL);
  Cycle bus_ready = bus_free_at_;
  if (bus_free_at_ > 0 && (bus_last_was_write_ != is_write ||
                           bus_last_rank_ != e.d.rank))
    bus_ready += timings_.turnaround;
  return data_start >= bus_ready;
}

bool Controller::act_allowed(const Entry& e, Cycle now) const {
  const Bank& bank = banks_[e.d.flat_bank(geometry_)];
  if (bank.is_open()) return false;
  if (now < bank.next_activate) return false;
  const RankState& rank = ranks_[e.d.rank];
  if (rank.refresh_pending) return false;
  if (rank.act_window.size() >= 4 &&
      now < rank.act_window.front() + timings_.tFAW)
    return false;
  if (rank.have_last_act) {
    const unsigned rrd = rank.last_act_bg == e.d.bank_group ? timings_.tRRD_L
                                                            : timings_.tRRD_S;
    if (now < rank.last_act + rrd) return false;
  }
  return true;
}

void Controller::apply_write_to_read_penalty(const Entry& e, Cycle data_end) {
  // After write data ends, reads to the same rank must wait tWTR_S/L.
  for (unsigned bg = 0; bg < geometry_.bank_groups; ++bg) {
    const unsigned wtr =
        bg == e.d.bank_group ? timings_.tWTR_L : timings_.tWTR_S;
    for (unsigned b = 0; b < geometry_.banks_per_group; ++b) {
      const unsigned idx = e.d.rank * geometry_.banks_per_rank() +
                           bg * geometry_.banks_per_group + b;
      banks_[idx].next_read = std::max(banks_[idx].next_read, data_end + wtr);
    }
  }
}

bool Controller::try_issue_column(std::deque<Entry>& q, bool is_write,
                                  Cycle now) {
  // FR-FCFS: oldest row-hit first; strict FCFS considers only the head.
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (policy_ == SchedulingPolicy::kFcfs && it != q.begin()) break;
    if (!column_cmd_allowed(*it, is_write, now)) continue;
    Entry e = *it;
    q.erase(it);

    Bank& bank = banks_[e.d.flat_bank(geometry_)];
    if (e.activated_for)
      ++stats_.row_misses;
    else
      ++stats_.row_hits;

    const unsigned burst = is_write ? timings_.write_burst_cycles
                                    : timings_.read_burst_cycles;
    const Cycle data_start = now + (is_write ? timings_.tCWL : timings_.tCL);
    const Cycle data_end = data_start + burst;
    bus_free_at_ = data_end;
    bus_last_was_write_ = is_write;
    bus_last_rank_ = e.d.rank;
    stats_.data_bus_busy_cycles += burst;
    last_col_cmd_ = now;
    have_last_col_ = true;
    last_col_bg_ = e.d.bank_group;
    last_col_rank_ = e.d.rank;

    if (is_write) {
      bank.next_precharge =
          std::max(bank.next_precharge, data_end + timings_.tWR);
      apply_write_to_read_penalty(e, data_end);
      ++stats_.writes_completed;
      completions_.push_back({e.tag, e.addr, true, e.arrival, data_end});
    } else {
      bank.next_precharge =
          std::max(bank.next_precharge, now + timings_.tRTP);
      inflight_reads_.push_back({e, data_end});
    }
    return true;
  }
  return false;
}

bool Controller::try_issue_bank_prep(std::deque<Entry>& q, Cycle now) {
  // Issue ACT or PRE for the oldest request whose bank is not ready.
  std::size_t scanned = 0;
  for (auto& e : q) {
    if (policy_ == SchedulingPolicy::kFcfs && scanned++ > 0) break;
    Bank& bank = banks_[e.d.flat_bank(geometry_)];
    if (bank.is_open() &&
        bank.open_row == static_cast<std::int64_t>(e.d.row))
      continue;  // row hit waiting on timing only
    if (!bank.is_open()) {
      if (act_allowed(e, now)) {
        bank.activate(e.d.row, now, timings_.tRCD, timings_.tRAS);
        RankState& rank = ranks_[e.d.rank];
        rank.act_window.push_back(now);
        while (rank.act_window.size() > 4) rank.act_window.pop_front();
        rank.last_act = now;
        rank.have_last_act = true;
        rank.last_act_bg = e.d.bank_group;
        e.activated_for = true;
        ++stats_.activates;
        return true;
      }
    } else if (now >= bank.next_precharge) {
      // Conflict: close the current row.
      bank.precharge(now, timings_.tRP);
      ++stats_.precharges;
      return true;
    }
  }
  return false;
}

bool Controller::handle_refresh(Cycle now) {
  for (unsigned r = 0; r < geometry_.ranks; ++r) {
    RankState& rank = ranks_[r];
    if (!rank.refresh_pending) {
      if (now >= rank.next_refresh_due) rank.refresh_pending = true;
      continue;
    }
    // Precharge all open banks in the rank, then refresh.
    bool all_closed = true;
    for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
      Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
      if (bank.is_open()) {
        all_closed = false;
        if (now >= bank.next_precharge) {
          bank.precharge(now, timings_.tRP);
          ++stats_.precharges;
          return true;
        }
      }
    }
    if (all_closed) {
      bool ready = true;
      for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
        const Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
        if (now < bank.next_activate) {
          ready = false;
          break;
        }
      }
      if (ready) {
        for (unsigned b = 0; b < geometry_.banks_per_rank(); ++b) {
          Bank& bank = banks_[r * geometry_.banks_per_rank() + b];
          bank.next_activate = std::max(bank.next_activate, now + timings_.tRFC);
        }
        rank.refresh_pending = false;
        rank.next_refresh_due += timings_.tREFI;
        ++stats_.refreshes;
        return true;
      }
    }
  }
  return false;
}

void Controller::tick(Cycle now) {
  // Retire reads whose data has arrived.
  for (std::size_t i = 0; i < inflight_reads_.size();) {
    if (inflight_reads_[i].finish <= now) {
      const auto& fr = inflight_reads_[i];
      ++stats_.reads_completed;
      stats_.total_read_latency += fr.finish - fr.entry.arrival;
      completions_.push_back(
          {fr.entry.tag, fr.entry.addr, false, fr.entry.arrival, fr.finish});
      inflight_reads_[i] = inflight_reads_.back();
      inflight_reads_.pop_back();
    } else {
      ++i;
    }
  }

  // Update write-drain mode.
  if (write_q_.size() >= drain_high_) draining_writes_ = true;
  if (write_q_.size() <= drain_low_) draining_writes_ = false;
  const bool serve_writes =
      draining_writes_ || (read_q_.empty() && !write_q_.empty());

  // One command slot per cycle: refresh first, then columns, then prep.
  if (handle_refresh(now)) return;
  if (serve_writes) {
    if (try_issue_column(write_q_, true, now)) return;
    if (try_issue_column(read_q_, false, now)) return;  // opportunistic reads
    if (try_issue_bank_prep(write_q_, now)) return;
    if (try_issue_bank_prep(read_q_, now)) return;
  } else {
    if (try_issue_column(read_q_, false, now)) return;
    if (try_issue_bank_prep(read_q_, now)) return;
    // Idle read path: prep writes in the background.
    if (try_issue_bank_prep(write_q_, now)) return;
  }
}

}  // namespace secddr::dram
