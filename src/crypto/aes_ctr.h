// AES counter-mode keystream generation.
//
// Used for (a) counter-mode data encryption in the secure-memory model and
// (b) the one-time pads (OTPt / OTPw) that encrypt MACs and eWCRCs on the
// DDR bus in SecDDR. The pad is a pure function of (key, nonce), so both
// ends of the channel derive identical pads from their synchronized
// transaction counters without exchanging any state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes.h"

namespace secddr::crypto {

/// Generates `n` keystream bytes for the 16-byte `nonce` (the counter block
/// is nonce with its last 4 bytes acting as the block counter, big-endian).
std::vector<std::uint8_t> ctr_keystream(const Aes& aes, const Block& nonce,
                                        std::size_t n);

/// XORs the keystream for `nonce` into `data` (encrypt == decrypt).
void ctr_xcrypt(const Aes& aes, const Block& nonce, std::uint8_t* data,
                std::size_t n);

/// Builds a counter block from a 64-bit major counter, a domain-separation
/// tag, and a small field (e.g. rank id). Layout:
///   bytes 0..7  = major (LE), 8 = domain, 9 = field, 10..11 = 0,
///   bytes 12..15 = per-call block counter (zeroed here).
Block make_nonce(std::uint64_t major, std::uint8_t domain, std::uint8_t field);

}  // namespace secddr::crypto
