// AES block cipher (FIPS-197), 128- and 256-bit keys.
//
// This is the cryptographic workhorse of SecDDR's functional stack: the
// E-MAC one-time pads, the eWCRC pads, AES-CMAC data MACs, counter-mode
// data encryption, and AES-XTS all build on this primitive. The
// implementation is byte-oriented (no T-tables) for clarity and is
// validated against the FIPS-197 appendix vectors.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace secddr::crypto {

/// One 16-byte AES block.
using Block = std::array<std::uint8_t, 16>;

/// 128-bit key.
using Key128 = std::array<std::uint8_t, 16>;
/// 256-bit key.
using Key256 = std::array<std::uint8_t, 32>;

/// AES cipher context holding the expanded key schedule.
class Aes {
 public:
  /// Expands a 128-bit key (10 rounds).
  explicit Aes(const Key128& key);
  /// Expands a 256-bit key (14 rounds).
  explicit Aes(const Key256& key);

  /// Encrypts one block in place.
  void encrypt_block(Block& b) const;
  /// Decrypts one block in place.
  void decrypt_block(Block& b) const;

  /// Convenience value-returning forms.
  Block encrypt(const Block& b) const {
    Block t = b;
    encrypt_block(t);
    return t;
  }
  Block decrypt(const Block& b) const {
    Block t = b;
    decrypt_block(t);
    return t;
  }

  /// Number of rounds (10 for AES-128, 14 for AES-256).
  int rounds() const { return nr_; }

 private:
  void expand(const std::uint8_t* key, int nk);

  // Round keys as words, w[4*(nr+1)].
  std::array<std::uint32_t, 60> w_{};
  int nr_ = 0;
};

/// XOR of two blocks.
inline Block xor_blocks(const Block& a, const Block& b) {
  Block r;
  for (std::size_t i = 0; i < 16; ++i) r[i] = a[i] ^ b[i];
  return r;
}

}  // namespace secddr::crypto
