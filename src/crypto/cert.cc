#include "crypto/cert.h"

#include <algorithm>

namespace secddr::crypto {

CertificateAuthority::CertificateAuthority(const DhGroup& group,
                                           std::uint64_t seed)
    : group_(group), rng_(seed), keys_(schnorr_generate(group, rng_)) {}

std::vector<std::uint8_t> CertificateAuthority::message_for(
    const DhGroup& group, const std::string& subject, const BigUInt& pub) {
  std::vector<std::uint8_t> msg;
  const std::string tag = "secddr-cert-v1";
  const auto pub_bytes = pub.to_bytes_be(group.byte_length);
  msg.reserve(tag.size() + subject.size() + 2 + pub_bytes.size());
  const auto append = [&msg](const auto& bytes) {
    for (const auto b : bytes) msg.push_back(static_cast<std::uint8_t>(b));
  };
  append(tag);
  msg.push_back(0);
  append(subject);
  msg.push_back(0);
  append(pub_bytes);
  return msg;
}

Certificate CertificateAuthority::issue(const std::string& subject,
                                        const BigUInt& endorsement_pub) {
  Certificate cert;
  cert.subject = subject;
  cert.endorsement_pub = endorsement_pub;
  cert.ca_sig = schnorr_sign(
      group_, keys_.priv, message_for(group_, subject, endorsement_pub), rng_);
  return cert;
}

void CertificateAuthority::revoke(const std::string& subject) {
  revocation_list_.push_back(subject);
}

bool CertificateAuthority::verify(const Certificate& cert) const {
  if (std::find(revocation_list_.begin(), revocation_list_.end(),
                cert.subject) != revocation_list_.end())
    return false;
  return schnorr_verify(
      group_, keys_.pub,
      message_for(group_, cert.subject, cert.endorsement_pub), cert.ca_sig);
}

}  // namespace secddr::crypto
