#include "crypto/bignum.h"

#include <cassert>
#include <cstdlib>

namespace secddr::crypto {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void BigUInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt::BigUInt(std::uint64_t v) {
  if (v) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

BigUInt BigUInt::from_hex(std::string_view hex) {
  BigUInt r;
  for (char c : hex) {
    if (c == '_' || c == ' ' || c == '\n' || c == '\t') continue;
    const int d = hex_digit(c);
    assert(d >= 0 && "invalid hex digit");
    r = (r << 4) + BigUInt(static_cast<std::uint64_t>(d));
  }
  return r;
}

BigUInt BigUInt::from_bytes_be(const std::uint8_t* data, std::size_t n) {
  BigUInt r;
  r.limbs_.assign((n + 3) / 4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t byte_from_lsb = n - 1 - i;
    r.limbs_[byte_from_lsb / 4] |= static_cast<std::uint32_t>(data[i])
                                   << (8 * (byte_from_lsb % 4));
  }
  r.trim();
  return r;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4)
      s.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
  }
  const std::size_t first = s.find_first_not_of('0');
  return s.substr(first);
}

std::vector<std::uint8_t> BigUInt::to_bytes_be(std::size_t min_len) const {
  std::vector<std::uint8_t> out;
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t total = std::max(nbytes, min_len);
  out.assign(total, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const std::uint32_t limb = limbs_[i / 4];
    out[total - 1 - i] = static_cast<std::uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigUInt::low_u64() const {
  std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigUInt::compare(const BigUInt& a, const BigUInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt operator+(const BigUInt& a, const BigUInt& b) {
  BigUInt r;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  r.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    r.limbs_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  if (carry) r.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return r;
}

BigUInt operator-(const BigUInt& a, const BigUInt& b) {
  assert(a >= b && "BigUInt subtraction underflow");
  BigUInt r;
  r.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) d -= b.limbs_[i];
    if (d < 0) {
      d += (1ll << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.limbs_[i] = static_cast<std::uint32_t>(d);
  }
  r.trim();
  return r;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt();
  BigUInt r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(r.limbs_[i + j]) + ai * b.limbs_[j] + carry;
      r.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(r.limbs_[k]) + carry;
      r.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  r.trim();
  return r;
}

BigUInt BigUInt::operator<<(unsigned bits) const {
  if (is_zero()) return BigUInt();
  const unsigned limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  BigUInt r;
  r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    r.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    r.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  r.trim();
  return r;
}

BigUInt BigUInt::operator>>(unsigned bits) const {
  const unsigned limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigUInt();
  BigUInt r;
  r.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    r.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  r.trim();
  return r;
}

void BigUInt::divmod(const BigUInt& num, const BigUInt& den, BigUInt& q,
                     BigUInt& r) {
  assert(!den.is_zero() && "division by zero");
  if (compare(num, den) < 0) {
    q = BigUInt();
    r = num;
    return;
  }
  if (den.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const std::uint64_t d = den.limbs_[0];
    q.limbs_.assign(num.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | num.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    r = BigUInt(rem);
    return;
  }

  // Knuth Algorithm D. Normalize so the top divisor limb has its MSB set.
  unsigned shift = 0;
  {
    std::uint32_t top = den.limbs_.back();
    while (!(top & 0x80000000u)) {
      top <<= 1;
      ++shift;
    }
  }
  const BigUInt u = num << shift;
  const BigUInt v = den << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // extra high limb
  const std::vector<std::uint32_t>& vn = v.limbs_;

  q.limbs_.assign(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t top =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = top / vn[n - 1];
    std::uint64_t rhat = top % vn[n - 1];
    while (qhat >= (1ull << 32) ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= (1ull << 32)) break;
    }
    // Multiply-subtract.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t =
          static_cast<std::int64_t>(un[i + j]) -
          static_cast<std::int64_t>(static_cast<std::uint32_t>(p)) - borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigUInt rem;
  rem.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  rem.trim();
  r = rem >> shift;
}

BigUInt operator/(const BigUInt& a, const BigUInt& b) {
  BigUInt q, r;
  BigUInt::divmod(a, b, q, r);
  return q;
}

BigUInt operator%(const BigUInt& a, const BigUInt& b) {
  BigUInt q, r;
  BigUInt::divmod(a, b, q, r);
  return r;
}

BigUInt BigUInt::mod_mul(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  return (a * b) % m;
}

BigUInt BigUInt::mod_exp(const BigUInt& base, const BigUInt& exp,
                         const BigUInt& m) {
  assert(!m.is_zero());
  if (m == BigUInt(1)) return BigUInt();
  BigUInt result(1);
  BigUInt b = base % m;
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = 0; i < nbits; ++i) {
    if (exp.bit(i)) result = mod_mul(result, b, m);
    b = mod_mul(b, b, m);
  }
  return result;
}

BigUInt BigUInt::random_below(Xoshiro256& rng, const BigUInt& bound) {
  assert(!bound.is_zero());
  const std::size_t nbits = bound.bit_length();
  const std::size_t nlimbs = (nbits + 31) / 32;
  for (;;) {
    BigUInt r;
    r.limbs_.resize(nlimbs);
    for (auto& limb : r.limbs_) limb = static_cast<std::uint32_t>(rng.next());
    // Mask the top limb down to the bound's bit length.
    const unsigned top_bits = static_cast<unsigned>(nbits % 32);
    if (top_bits)
      r.limbs_.back() &= (1u << top_bits) - 1;
    r.trim();
    if (compare(r, bound) < 0) return r;
  }
}

bool BigUInt::probable_prime(const BigUInt& n, Xoshiro256& rng, int rounds) {
  if (n < BigUInt(2)) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    const BigUInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // n - 1 = d * 2^s with d odd.
  const BigUInt n_minus_1 = n - BigUInt(1);
  BigUInt d = n_minus_1;
  unsigned s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    const BigUInt a = BigUInt(2) + random_below(rng, n - BigUInt(4));
    BigUInt x = mod_exp(a, d, n);
    if (x == BigUInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (unsigned i = 1; i < s; ++i) {
      x = mod_mul(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace secddr::crypto
