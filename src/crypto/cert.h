// Minimal certificate chain for DIMM attestation.
//
// The memory vendor (or a third party) acts as the certificate authority:
// it signs each module's endorsement public key EKp. The processor checks
// the certificate against the CA's public key before trusting the module's
// key-exchange signature (paper §III-F).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/schnorr.h"

namespace secddr::crypto {

/// Certificate binding a module identity to its endorsement public key.
struct Certificate {
  std::string subject;     ///< e.g. "dimm-vendor:serial-0042:rank0"
  BigUInt endorsement_pub; ///< EKp of the ECC chip
  SchnorrSignature ca_sig; ///< CA's signature over (subject, EKp)
  bool revoked = false;    ///< set when the CA revokes the module
};

/// Certificate authority: a Schnorr keypair plus a revocation list.
class CertificateAuthority {
 public:
  CertificateAuthority(const DhGroup& group, std::uint64_t seed);

  /// Issues a certificate for the given endorsement public key.
  Certificate issue(const std::string& subject, const BigUInt& endorsement_pub);

  /// Marks a subject as revoked; subsequent verifications fail.
  void revoke(const std::string& subject);

  /// Verifies signature and revocation status.
  bool verify(const Certificate& cert) const;

  const BigUInt& public_key() const { return keys_.pub; }
  const DhGroup& group() const { return group_; }

  /// The byte string the CA signs for a certificate.
  static std::vector<std::uint8_t> message_for(const DhGroup& group,
                                               const std::string& subject,
                                               const BigUInt& pub);

 private:
  const DhGroup& group_;
  Xoshiro256 rng_;
  SchnorrKeyPair keys_;
  std::vector<std::string> revocation_list_;
};

}  // namespace secddr::crypto
