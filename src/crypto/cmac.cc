#include "crypto/cmac.h"

#include <cstring>

#include "common/types.h"

namespace secddr::crypto {
namespace {

// Doubling in GF(2^128) with the CMAC big-endian convention (Rb = 0x87).
Block dbl(const Block& in) {
  Block out;
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
    carry = static_cast<std::uint8_t>(in[i] >> 7);
  }
  if (carry) out[15] ^= 0x87;
  return out;
}

}  // namespace

Cmac::Cmac(const Key128& key) : aes_(key) {
  Block l{};
  aes_.encrypt_block(l);
  k1_ = dbl(l);
  k2_ = dbl(k1_);
}

Block Cmac::tag(const std::uint8_t* data, std::size_t n) const {
  const std::size_t nblocks = n == 0 ? 1 : (n + 15) / 16;
  const bool complete = n != 0 && n % 16 == 0;

  Block x{};
  for (std::size_t i = 0; i + 1 < nblocks; ++i) {
    Block m;
    std::memcpy(m.data(), data + 16 * i, 16);
    x = aes_.encrypt(xor_blocks(x, m));
  }

  Block last{};
  const std::size_t tail = n - 16 * (nblocks - 1);
  if (complete) {
    std::memcpy(last.data(), data + n - 16, 16);
    last = xor_blocks(last, k1_);
  } else {
    if (tail > 0) std::memcpy(last.data(), data + 16 * (nblocks - 1), tail);
    last[tail] = 0x80;
    last = xor_blocks(last, k2_);
  }
  return aes_.encrypt(xor_blocks(x, last));
}

std::uint64_t Cmac::tag64(const std::uint8_t* data, std::size_t n) const {
  const Block t = tag(data, n);
  return load_le64(t.data());
}

}  // namespace secddr::crypto
