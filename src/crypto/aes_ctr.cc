#include "crypto/aes_ctr.h"

#include <cstring>

namespace secddr::crypto {
namespace {

void increment_be32(Block& b) {
  for (int i = 15; i >= 12; --i) {
    if (++b[i] != 0) break;
  }
}

}  // namespace

std::vector<std::uint8_t> ctr_keystream(const Aes& aes, const Block& nonce,
                                        std::size_t n) {
  std::vector<std::uint8_t> out(n);
  Block ctr = nonce;
  std::size_t off = 0;
  while (off < n) {
    Block ks = aes.encrypt(ctr);
    const std::size_t take = std::min<std::size_t>(16, n - off);
    std::memcpy(out.data() + off, ks.data(), take);
    off += take;
    increment_be32(ctr);
  }
  return out;
}

void ctr_xcrypt(const Aes& aes, const Block& nonce, std::uint8_t* data,
                std::size_t n) {
  Block ctr = nonce;
  std::size_t off = 0;
  while (off < n) {
    Block ks = aes.encrypt(ctr);
    const std::size_t take = std::min<std::size_t>(16, n - off);
    for (std::size_t i = 0; i < take; ++i) data[off + i] ^= ks[i];
    off += take;
    increment_be32(ctr);
  }
}

Block make_nonce(std::uint64_t major, std::uint8_t domain, std::uint8_t field) {
  Block b{};
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(major >> (8 * i));
  b[8] = domain;
  b[9] = field;
  return b;
}

}  // namespace secddr::crypto
