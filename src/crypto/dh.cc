#include "crypto/dh.h"

#include <cassert>

namespace secddr::crypto {
namespace {

constexpr const char* kModp1536Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

constexpr const char* kModp2048Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

DhGroup make_group(const char* hex) {
  DhGroup g;
  g.p = BigUInt::from_hex(hex);
  g.q = (g.p - BigUInt(1)) >> 1;
  g.g = BigUInt(2);
  g.gq = BigUInt(4);
  g.byte_length = (g.p.bit_length() + 7) / 8;
  return g;
}

}  // namespace

const DhGroup& DhGroup::modp1536() {
  static const DhGroup group = make_group(kModp1536Hex);
  return group;
}

const DhGroup& DhGroup::modp2048() {
  static const DhGroup group = make_group(kModp2048Hex);
  return group;
}

DhKeyPair dh_generate(const DhGroup& group, Xoshiro256& rng) {
  DhKeyPair kp;
  // x in [2, q): rejection below avoids tiny exponents.
  do {
    kp.priv = BigUInt::random_below(rng, group.q);
  } while (kp.priv < BigUInt(2));
  kp.pub = BigUInt::mod_exp(group.g, kp.priv, group.p);
  return kp;
}

bool dh_check_public(const DhGroup& group, const BigUInt& pub) {
  if (pub < BigUInt(2)) return false;
  return pub <= group.p - BigUInt(2);
}

std::vector<std::uint8_t> dh_shared_secret(const DhGroup& group,
                                           const BigUInt& priv,
                                           const BigUInt& peer_pub) {
  assert(dh_check_public(group, peer_pub));
  const BigUInt s = BigUInt::mod_exp(peer_pub, priv, group.p);
  return s.to_bytes_be(group.byte_length);
}

}  // namespace secddr::crypto
