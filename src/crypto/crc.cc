#include "crypto/crc.h"

namespace secddr::crypto {

std::uint16_t crc16_update(std::uint16_t crc, const std::uint8_t* data,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= static_cast<std::uint16_t>(data[i]) << 8;
    for (int b = 0; b < 8; ++b) {
      if (crc & 0x8000)
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      else
        crc = static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint16_t crc16(const std::uint8_t* data, std::size_t n) {
  return crc16_update(0xFFFF, data, n);
}

std::uint8_t crc8(const std::uint8_t* data, std::size_t n) {
  std::uint8_t crc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      if (crc & 0x80)
        crc = static_cast<std::uint8_t>((crc << 1) ^ 0x07);
      else
        crc = static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

}  // namespace secddr::crypto
