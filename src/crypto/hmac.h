// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF derives the per-rank transaction key Kt from the Diffie-Hellman
// shared secret during SecDDR attestation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace secddr::crypto {

/// HMAC-SHA256 of `data` under `key`.
Sha256Digest hmac_sha256(const std::uint8_t* key, std::size_t key_len,
                         const std::uint8_t* data, std::size_t data_len);

Sha256Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                         const std::vector<std::uint8_t>& data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(const std::vector<std::uint8_t>& salt,
                          const std::vector<std::uint8_t>& ikm);

/// HKDF-Expand: derives `out_len` bytes (out_len <= 255*32) from PRK/info.
std::vector<std::uint8_t> hkdf_expand(const Sha256Digest& prk,
                                      const std::vector<std::uint8_t>& info,
                                      std::size_t out_len);

/// One-shot HKDF (extract + expand).
std::vector<std::uint8_t> hkdf(const std::vector<std::uint8_t>& salt,
                               const std::vector<std::uint8_t>& ikm,
                               const std::vector<std::uint8_t>& info,
                               std::size_t out_len);

}  // namespace secddr::crypto
