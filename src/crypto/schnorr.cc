#include "crypto/schnorr.h"

#include "crypto/sha256.h"

namespace secddr::crypto {
namespace {

// e = SHA256(r_padded || msg) reduced mod q.
BigUInt challenge(const DhGroup& group, const BigUInt& r,
                  const std::vector<std::uint8_t>& msg) {
  Sha256 h;
  const auto r_bytes = r.to_bytes_be(group.byte_length);
  h.update(r_bytes.data(), r_bytes.size());
  h.update(msg.data(), msg.size());
  const Sha256Digest d = h.finish();
  return BigUInt::from_bytes_be(d.data(), d.size()) % group.q;
}

}  // namespace

SchnorrKeyPair schnorr_generate(const DhGroup& group, Xoshiro256& rng) {
  SchnorrKeyPair kp;
  do {
    kp.priv = BigUInt::random_below(rng, group.q);
  } while (kp.priv.is_zero());
  kp.pub = BigUInt::mod_exp(group.gq, kp.priv, group.p);
  return kp;
}

SchnorrSignature schnorr_sign(const DhGroup& group, const BigUInt& priv,
                              const std::vector<std::uint8_t>& msg,
                              Xoshiro256& rng) {
  SchnorrSignature sig;
  BigUInt k;
  do {
    k = BigUInt::random_below(rng, group.q);
  } while (k.is_zero());
  const BigUInt r = BigUInt::mod_exp(group.gq, k, group.p);
  sig.e = challenge(group, r, msg);
  sig.s = (k + sig.e * priv) % group.q;
  return sig;
}

bool schnorr_verify(const DhGroup& group, const BigUInt& pub,
                    const std::vector<std::uint8_t>& msg,
                    const SchnorrSignature& sig) {
  if (sig.s >= group.q || sig.e >= group.q) return false;
  if (!dh_check_public(group, pub)) return false;
  // r' = gq^s * pub^(-e) = gq^s * pub^(q - e); pub has order q.
  const BigUInt gs = BigUInt::mod_exp(group.gq, sig.s, group.p);
  const BigUInt ye =
      BigUInt::mod_exp(pub, (group.q - sig.e) % group.q, group.p);
  const BigUInt r = BigUInt::mod_mul(gs, ye, group.p);
  return challenge(group, r, msg) == sig.e;
}

}  // namespace secddr::crypto
