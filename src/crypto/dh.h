// Finite-field Diffie-Hellman over RFC 3526 safe-prime MODP groups.
//
// Used by the SecDDR attestation protocol: processor and the DIMM's ECC
// chip run an endorsement-signed DH exchange at each power-up to agree on
// the per-rank transaction key Kt (paper §III-F).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "crypto/bignum.h"

namespace secddr::crypto {

/// A safe-prime group: p = 2q + 1 with q prime; g generates a large
/// subgroup; gq = g^2 generates the order-q subgroup (used by Schnorr).
struct DhGroup {
  BigUInt p;   ///< modulus (safe prime)
  BigUInt q;   ///< (p-1)/2, prime
  BigUInt g;   ///< DH generator (2 for RFC 3526 groups)
  BigUInt gq;  ///< order-q generator (4)
  std::size_t byte_length;  ///< serialized element width

  /// RFC 3526 group 5 (1536-bit). Fast enough for tests.
  static const DhGroup& modp1536();
  /// RFC 3526 group 14 (2048-bit). Default for the attestation protocol.
  static const DhGroup& modp2048();
};

/// A DH keypair: private exponent x in [2, q), public y = g^x mod p.
struct DhKeyPair {
  BigUInt priv;
  BigUInt pub;
};

/// Generates a keypair with the given PRNG.
DhKeyPair dh_generate(const DhGroup& group, Xoshiro256& rng);

/// True iff `pub` is a valid public element: 2 <= pub <= p - 2.
bool dh_check_public(const DhGroup& group, const BigUInt& pub);

/// Computes the shared secret (peer_pub ^ priv mod p), serialized to the
/// group's byte length for deterministic KDF input.
std::vector<std::uint8_t> dh_shared_secret(const DhGroup& group,
                                           const BigUInt& priv,
                                           const BigUInt& peer_pub);

}  // namespace secddr::crypto
