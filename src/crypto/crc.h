// Cyclic redundancy codes used on the DDR interface.
//
// DDR4/5 devices protect write bursts with a per-device write CRC; AI-ECC's
// eWCRC extends the CRC input with the write address. We provide CRC-16
// (CCITT polynomial, the 16-bit WCRC an x8 device transmits over its two
// extra burst beats) and the 8-bit ATM-HEC CRC that DDR4 uses per lane.
#pragma once

#include <cstddef>
#include <cstdint>

namespace secddr::crypto {

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection, no xorout.
std::uint16_t crc16(const std::uint8_t* data, std::size_t n);

/// Continues a CRC-16 computation from a previous value.
std::uint16_t crc16_update(std::uint16_t crc, const std::uint8_t* data,
                           std::size_t n);

/// CRC-8 with the DDR4 write-CRC polynomial x^8+x^2+x+1 (0x07), init 0.
std::uint8_t crc8(const std::uint8_t* data, std::size_t n);

}  // namespace secddr::crypto
