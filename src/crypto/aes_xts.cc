#include "crypto/aes_xts.h"

#include <cassert>
#include <cstring>

namespace secddr::crypto {
namespace {

// Multiplies the tweak by alpha in GF(2^128) with the XTS little-endian
// convention (poly x^128 + x^7 + x^2 + x + 1).
void gf_mul_alpha(Block& t) {
  std::uint8_t carry = 0;
  for (int i = 0; i < 16; ++i) {
    const std::uint8_t next_carry = static_cast<std::uint8_t>(t[i] >> 7);
    t[i] = static_cast<std::uint8_t>((t[i] << 1) | carry);
    carry = next_carry;
  }
  if (carry) t[0] ^= 0x87;
}

}  // namespace

AesXts::AesXts(const Key128& data_key, const Key128& tweak_key)
    : data_aes_(data_key), tweak_aes_(tweak_key) {}

void AesXts::xcrypt(std::uint64_t sector, std::uint8_t* data, std::size_t n,
                    bool enc) const {
  assert(n >= 16 && n % 16 == 0);
  Block tweak{};
  for (int i = 0; i < 8; ++i)
    tweak[i] = static_cast<std::uint8_t>(sector >> (8 * i));
  tweak_aes_.encrypt_block(tweak);

  for (std::size_t off = 0; off < n; off += 16) {
    Block b;
    std::memcpy(b.data(), data + off, 16);
    b = xor_blocks(b, tweak);
    if (enc)
      data_aes_.encrypt_block(b);
    else
      data_aes_.decrypt_block(b);
    b = xor_blocks(b, tweak);
    std::memcpy(data + off, b.data(), 16);
    gf_mul_alpha(tweak);
  }
}

void AesXts::encrypt(std::uint64_t sector, std::uint8_t* data,
                     std::size_t n) const {
  xcrypt(sector, data, n, true);
}

void AesXts::decrypt(std::uint64_t sector, std::uint8_t* data,
                     std::size_t n) const {
  xcrypt(sector, data, n, false);
}

}  // namespace secddr::crypto
