// AES-XTS (IEEE 1619 / NIST SP 800-38E) for cache-line-sized data units.
//
// SecDDR's higher-performance variant (SecDDR+XTS) and the commercial
// encrypt-only baselines (Intel TME, AMD SEV) use XEX-style tweakable
// encryption keyed by the physical address, with no stored counters.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/aes.h"

namespace secddr::crypto {

/// XTS-AES context with two independent AES-128 keys (data key + tweak key).
class AesXts {
 public:
  AesXts(const Key128& data_key, const Key128& tweak_key);

  /// Encrypts `n` bytes in place; `n` must be a multiple of 16 and >= 16
  /// (cache lines are 64 bytes, so ciphertext stealing is not needed).
  /// `sector` is the data-unit number (SecDDR uses the line address).
  void encrypt(std::uint64_t sector, std::uint8_t* data, std::size_t n) const;

  /// Decrypts `n` bytes in place.
  void decrypt(std::uint64_t sector, std::uint8_t* data, std::size_t n) const;

 private:
  void xcrypt(std::uint64_t sector, std::uint8_t* data, std::size_t n,
              bool enc) const;

  Aes data_aes_;
  Aes tweak_aes_;
};

}  // namespace secddr::crypto
