// SHA-256 (FIPS 180-4). Used by HMAC/HKDF key derivation and by the
// Schnorr attestation signatures.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace secddr::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();
  /// Absorbs `n` bytes.
  void update(const std::uint8_t* data, std::size_t n);
  void update(std::string_view s) {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  /// Finalizes and returns the digest; the object must not be reused.
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* p);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_ = 0;
};

/// One-shot hash.
Sha256Digest sha256(const std::uint8_t* data, std::size_t n);
Sha256Digest sha256(std::string_view s);
Sha256Digest sha256(const std::vector<std::uint8_t>& v);

}  // namespace secddr::crypto
