// Arbitrary-precision unsigned integers for the attestation protocol.
//
// The paper's attestation uses public-key primitives implemented in the ECC
// chip (elliptic-curve multiplier + SHA unit). We substitute finite-field
// Diffie-Hellman over RFC 3526 safe-prime groups and Schnorr signatures,
// which exercise the identical protocol structure (see DESIGN.md §2). This
// header provides the modular arithmetic they need.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"

namespace secddr::crypto {

/// Unsigned big integer with 32-bit limbs (little-endian limb order).
/// Value semantics; always normalized (no high zero limbs).
class BigUInt {
 public:
  BigUInt() = default;
  /// Constructs from a 64-bit value.
  explicit BigUInt(std::uint64_t v);

  /// Parses a (case-insensitive) hex string, most significant digit first.
  static BigUInt from_hex(std::string_view hex);
  /// Parses big-endian bytes.
  static BigUInt from_bytes_be(const std::uint8_t* data, std::size_t n);
  static BigUInt from_bytes_be(const std::vector<std::uint8_t>& v) {
    return from_bytes_be(v.data(), v.size());
  }

  /// Lower-case hex, no leading zeros ("0" for zero).
  std::string to_hex() const;
  /// Big-endian bytes, minimal length (empty for zero) unless `min_len`
  /// asks for left-padding.
  std::vector<std::uint8_t> to_bytes_be(std::size_t min_len = 0) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit `i` (LSB = 0).
  bool bit(std::size_t i) const;
  /// Low 64 bits.
  std::uint64_t low_u64() const;

  // Comparisons.
  static int compare(const BigUInt& a, const BigUInt& b);
  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) == 0;
  }
  friend bool operator<(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) >= 0;
  }
  friend bool operator!=(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) != 0;
  }

  // Arithmetic (aborts on subtraction underflow and division by zero).
  friend BigUInt operator+(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b);
  BigUInt operator<<(unsigned bits) const;
  BigUInt operator>>(unsigned bits) const;

  /// Quotient and remainder in one pass (Knuth algorithm D).
  static void divmod(const BigUInt& num, const BigUInt& den, BigUInt& q,
                     BigUInt& r);

  /// (a * b) mod m.
  static BigUInt mod_mul(const BigUInt& a, const BigUInt& b, const BigUInt& m);
  /// (base ^ exp) mod m; m must be non-zero.
  static BigUInt mod_exp(const BigUInt& base, const BigUInt& exp,
                         const BigUInt& m);

  /// Uniform value in [0, bound) using the given PRNG; bound must be > 0.
  static BigUInt random_below(Xoshiro256& rng, const BigUInt& bound);

  /// Miller-Rabin probable-prime test with `rounds` random bases.
  static bool probable_prime(const BigUInt& n, Xoshiro256& rng,
                             int rounds = 16);

 private:
  void trim();
  std::vector<std::uint32_t> limbs_;
};

}  // namespace secddr::crypto
