#include "crypto/hmac.h"

#include <cassert>
#include <cstring>

namespace secddr::crypto {

Sha256Digest hmac_sha256(const std::uint8_t* key, std::size_t key_len,
                         const std::uint8_t* data, std::size_t data_len) {
  std::array<std::uint8_t, 64> k{};
  if (key_len > 64) {
    const Sha256Digest kd = sha256(key, key_len);
    std::memcpy(k.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k.data(), key, key_len);
  }
  std::array<std::uint8_t, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad.data(), 64);
  inner.update(data, data_len);
  const Sha256Digest inner_d = inner.finish();
  Sha256 outer;
  outer.update(opad.data(), 64);
  outer.update(inner_d.data(), inner_d.size());
  return outer.finish();
}

Sha256Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                         const std::vector<std::uint8_t>& data) {
  return hmac_sha256(key.data(), key.size(), data.data(), data.size());
}

Sha256Digest hkdf_extract(const std::vector<std::uint8_t>& salt,
                          const std::vector<std::uint8_t>& ikm) {
  return hmac_sha256(salt, ikm);
}

std::vector<std::uint8_t> hkdf_expand(const Sha256Digest& prk,
                                      const std::vector<std::uint8_t>& info,
                                      std::size_t out_len) {
  assert(out_len <= 255 * 32);
  std::vector<std::uint8_t> out;
  out.reserve(out_len);
  std::vector<std::uint8_t> t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    std::vector<std::uint8_t> msg = t;
    msg.insert(msg.end(), info.begin(), info.end());
    msg.push_back(counter++);
    const Sha256Digest d =
        hmac_sha256(prk.data(), prk.size(), msg.data(), msg.size());
    t.assign(d.begin(), d.end());
    const std::size_t take = std::min<std::size_t>(32, out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

std::vector<std::uint8_t> hkdf(const std::vector<std::uint8_t>& salt,
                               const std::vector<std::uint8_t>& ikm,
                               const std::vector<std::uint8_t>& info,
                               std::size_t out_len) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, out_len);
}

}  // namespace secddr::crypto
