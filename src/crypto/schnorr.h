// Schnorr signatures over the order-q subgroup of an RFC 3526 group.
//
// Plays the role of the paper's endorsement-key signature: the memory
// vendor embeds an endorsement keypair (EKp/EKs) in the ECC chip, and the
// chip signs its key-exchange messages so the processor can authenticate
// the module (paper §III-F).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "crypto/bignum.h"
#include "crypto/dh.h"

namespace secddr::crypto {

/// Schnorr signature (e, s) with e = H(r || m) mod q and s = k + e*x mod q.
struct SchnorrSignature {
  BigUInt e;
  BigUInt s;
};

/// Signing/verification keypair: private x in [1, q), public y = gq^x mod p.
struct SchnorrKeyPair {
  BigUInt priv;
  BigUInt pub;
};

SchnorrKeyPair schnorr_generate(const DhGroup& group, Xoshiro256& rng);

/// Signs `msg` with the private key.
SchnorrSignature schnorr_sign(const DhGroup& group, const BigUInt& priv,
                              const std::vector<std::uint8_t>& msg,
                              Xoshiro256& rng);

/// Verifies a signature against the public key.
bool schnorr_verify(const DhGroup& group, const BigUInt& pub,
                    const std::vector<std::uint8_t>& msg,
                    const SchnorrSignature& sig);

}  // namespace secddr::crypto
