// AES-CMAC (RFC 4493 / NIST SP 800-38B).
//
// SecDDR's per-line data MAC is MAC = H_k(addr, ciphertext); we realize H
// as AES-CMAC truncated to 64 bits, matching the 8-byte MAC budget the
// paper stores in the ECC chips.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/aes.h"

namespace secddr::crypto {

/// CMAC context over AES-128.
class Cmac {
 public:
  explicit Cmac(const Key128& key);

  /// Full 128-bit tag of `data`.
  Block tag(const std::uint8_t* data, std::size_t n) const;

  /// Tag truncated to the first 8 bytes (the SecDDR MAC width).
  std::uint64_t tag64(const std::uint8_t* data, std::size_t n) const;

 private:
  Aes aes_;
  Block k1_{};
  Block k2_{};
};

}  // namespace secddr::crypto
