// Workload models for the evaluation suite (paper §IV-A).
//
// The paper simulates 200M-instruction SimPoints of SPEC CPU2017-rate and
// GAPBS with Scarab+Pin. Neither the benchmarks nor SimPoints are
// redistributable, so each workload is modeled as a synthetic trace
// calibrated to its published memory behaviour: LLC MPKI (Fig. 7), access
// pattern (graph/pointer-chasing vs streaming vs mixed), write fraction,
// and footprint. DESIGN.md §2 documents the substitution; Fig. 7's
// regeneration doubles as the calibration check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace secddr::workloads {

/// Dominant cold-miss access pattern of a workload.
enum class Pattern {
  kRandom,     ///< uniform over the footprint: graphs, mcf, omnetpp, xz
  kStreaming,  ///< sequential sweeps: lbm, bwaves, roms, fotonik3d, wrf
  kMixed,      ///< locality-rich with occasional cold excursions
};

struct WorkloadDesc {
  std::string name;
  double mpki;           ///< target LLC misses per kilo-instruction
  double mem_per_kinst;  ///< memory instructions per kilo-instruction
  double write_frac;     ///< store share of memory accesses
  std::uint64_t footprint_bytes;
  Pattern pattern;
  bool memory_intensive;  ///< LLC MPKI >= 10 (paper's definition)
  std::uint64_t seed;
};

/// The 29-workload suite: 23 SPEC CPU2017-rate + 6 GAPBS kernels, in the
/// paper's figure order.
const std::vector<WorkloadDesc>& suite();

/// Lookup by name; nullptr if unknown.
const WorkloadDesc* find(const std::string& name);

/// The memory-intensive subset (MPKI >= 10).
std::vector<WorkloadDesc> memory_intensive();

}  // namespace secddr::workloads
