#include "workloads/workload.h"

namespace secddr::workloads {
namespace {

constexpr std::uint64_t MB = 1ull << 20;
constexpr std::uint64_t GB = 1ull << 30;

std::vector<WorkloadDesc> build_suite() {
  // MPKI values follow the shape of Fig. 7 (callouts: mcf 150.1, lbm 56.7,
  // sssp 50.5); memory-intensive flags follow the paper's MPKI >= 10 rule.
  // Patterns and write mixes follow each benchmark's published character:
  // the §V-A discussion calls out pr/bc/sssp/omnetpp/xz as random-access
  // winners and lbm as the write-intensive streaming outlier.
  std::vector<WorkloadDesc> v = {
      // SPEC CPU2017 rate
      {"perlbench", 0.6, 330, 0.28, 32 * MB, Pattern::kMixed, false, 101},
      {"gcc", 4.0, 340, 0.27, 128 * MB, Pattern::kMixed, false, 102},
      {"mcf", 150.1, 380, 0.18, 1536 * MB, Pattern::kRandom, true, 103},
      {"omnetpp", 20.0, 360, 0.22, 512 * MB, Pattern::kRandom, true, 104},
      {"xalancbmk", 2.5, 350, 0.22, 96 * MB, Pattern::kMixed, false, 105},
      {"x264", 1.2, 300, 0.30, 64 * MB, Pattern::kMixed, false, 106},
      {"deepsjeng", 4.5, 320, 0.25, 256 * MB, Pattern::kMixed, false, 107},
      {"leela", 2.0, 310, 0.24, 48 * MB, Pattern::kMixed, false, 108},
      {"exchange2", 0.1, 200, 0.30, 8 * MB, Pattern::kMixed, false, 109},
      {"xz", 12.0, 340, 0.30, 768 * MB, Pattern::kRandom, true, 110},
      {"bwaves", 25.0, 380, 0.33, 1 * GB, Pattern::kStreaming, true, 111},
      // cactuBSSN and wrf are stencil codes: large sweeps with enough
      // irregularity that a stream prefetcher cannot hide everything.
      {"cactuBSSN", 9.0, 360, 0.34, 512 * MB, Pattern::kMixed, false, 112},
      {"namd", 1.5, 330, 0.28, 48 * MB, Pattern::kMixed, false, 113},
      {"parest", 3.0, 340, 0.27, 128 * MB, Pattern::kMixed, false, 114},
      {"povray", 0.05, 280, 0.30, 8 * MB, Pattern::kMixed, false, 115},
      {"lbm", 56.7, 390, 0.47, 1 * GB, Pattern::kStreaming, true, 116},
      {"wrf", 7.0, 350, 0.30, 512 * MB, Pattern::kMixed, false, 117},
      {"blender", 2.2, 320, 0.26, 128 * MB, Pattern::kMixed, false, 118},
      {"cam4", 5.5, 340, 0.29, 384 * MB, Pattern::kMixed, false, 119},
      {"imagick", 0.9, 310, 0.27, 32 * MB, Pattern::kMixed, false, 120},
      {"nab", 1.8, 330, 0.26, 64 * MB, Pattern::kMixed, false, 121},
      {"fotonik3d", 22.0, 370, 0.30, 1 * GB, Pattern::kStreaming, true, 122},
      {"roms", 18.0, 370, 0.33, 1 * GB, Pattern::kStreaming, true, 123},
      // GAPBS
      {"bfs", 30.0, 360, 0.16, 1 * GB, Pattern::kRandom, true, 124},
      {"pr", 42.0, 380, 0.15, 1536 * MB, Pattern::kRandom, true, 125},
      {"tc", 14.0, 350, 0.10, 768 * MB, Pattern::kRandom, true, 126},
      {"cc", 28.0, 370, 0.14, 1 * GB, Pattern::kRandom, true, 127},
      {"bc", 45.0, 380, 0.16, 1536 * MB, Pattern::kRandom, true, 128},
      {"sssp", 50.5, 380, 0.17, 1536 * MB, Pattern::kRandom, true, 129},
  };
  return v;
}

}  // namespace

const std::vector<WorkloadDesc>& suite() {
  static const std::vector<WorkloadDesc> s = build_suite();
  return s;
}

const WorkloadDesc* find(const std::string& name) {
  for (const auto& w : suite())
    if (w.name == name) return &w;
  return nullptr;
}

std::vector<WorkloadDesc> memory_intensive() {
  std::vector<WorkloadDesc> out;
  for (const auto& w : suite())
    if (w.memory_intensive) out.push_back(w);
  return out;
}

}  // namespace secddr::workloads
