// Synthetic trace generator implementing sim::TraceSource.
//
// Per access, the generator samples a working set:
//   hot  (L1-resident region)        -> L1 hits,
//   warm (LLC-share-sized region)    -> LLC hits,
//   cold (footprint, pattern-driven) -> LLC misses,
// with the cold probability chosen so the demand LLC MPKI approximates
// the workload's target. Cold addresses follow the workload's pattern:
// uniform random (graphs), a sequential sweep (streaming), or a mix.
//
// Virtual 4KB pages map to physical frames through a bijective
// xorshift-multiply permutation of the page index — the paper's "random
// policy for virtual page to physical frame mapping" — which bounds
// prefetch streams and row-buffer locality at page granularity and
// neutralizes the 128-counter packing advantage exactly as §V-A observes.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "sim/trace.h"
#include "workloads/workload.h"

namespace secddr::workloads {

/// One core's trace. Four rate-style copies use the same descriptor with
/// different `core_id`s: disjoint address spaces, different seeds.
class SyntheticTrace final : public sim::TraceSource {
 public:
  /// `core_stride_bytes` separates per-core address spaces (must exceed
  /// the footprint).
  SyntheticTrace(const WorkloadDesc& desc, unsigned core_id,
                 std::uint64_t core_stride_bytes = 2ull << 30);

  bool next(sim::TraceRecord& out) override;

  const WorkloadDesc& desc() const { return desc_; }

 private:
  Addr page_scramble(Addr vaddr) const;
  Addr cold_address();
  Addr pick(Addr region_bytes, Addr region_base);

  WorkloadDesc desc_;
  Xoshiro256 rng_;
  Addr base_;
  std::uint64_t footprint_pages_;  ///< power of two
  unsigned page_bits_;
  std::uint64_t perm_keys_[2];  ///< odd multipliers of the permutation

  double p_cold_;
  double mean_gap_;
  Addr stream_cursor_ = 0;
  Addr warm_cursor_ = 0;
};

}  // namespace secddr::workloads
