#include "workloads/generator.h"

#include <algorithm>
#include <cassert>

#include "common/bitops.h"

namespace secddr::workloads {
namespace {

constexpr Addr kPageBytes = 4096;
constexpr Addr kHotBytes = 16 * 1024;    ///< fits the 32KB L1
constexpr Addr kWarmBytes = 256 * 1024;  ///< fits a core's LLC share

}  // namespace

SyntheticTrace::SyntheticTrace(const WorkloadDesc& desc, unsigned core_id,
                               std::uint64_t core_stride_bytes)
    : desc_(desc),
      rng_(desc.seed * 0x9e3779b97f4a7c15ull + core_id),
      base_(static_cast<Addr>(core_id) * core_stride_bytes) {
  assert(desc.footprint_bytes <= core_stride_bytes);
  // Round the footprint up to a power-of-two page count so the Feistel
  // permutation is a clean bijection.
  std::uint64_t pages = std::max<std::uint64_t>(desc.footprint_bytes / kPageBytes, 4);
  while (!is_pow2(pages)) pages = (pages | (pages - 1)) + 1;
  footprint_pages_ = pages;
  page_bits_ = ilog2(pages);
  for (auto& k : perm_keys_) k = rng_.next() | 1;  // odd => invertible

  p_cold_ = std::min(0.95, desc.mpki / desc.mem_per_kinst);
  mean_gap_ = std::max(0.0, 1000.0 / desc.mem_per_kinst - 1.0);
  // Cold sweeps must not start inside the cache-resident hot/warm sets,
  // or early "cold" accesses would silently hit.
  stream_cursor_ = kWarmBytes;
}

Addr SyntheticTrace::page_scramble(Addr vaddr) const {
  // Bijective permutation of the page index: xorshift and odd-multiply
  // steps are each invertible mod 2^page_bits, so their composition is a
  // deterministic random permutation standing in for the OS allocator.
  const std::uint64_t mask = footprint_pages_ - 1;
  const unsigned shift = page_bits_ / 2 + 1;
  std::uint64_t p = (vaddr / kPageBytes) & mask;
  p ^= p >> shift;
  p = (p * perm_keys_[0]) & mask;
  p ^= p >> shift;
  p = (p * perm_keys_[1]) & mask;
  p ^= p >> shift;
  return base_ + p * kPageBytes + (vaddr & (kPageBytes - 1));
}

Addr SyntheticTrace::pick(Addr region_bytes, Addr region_base) {
  const Addr lines = region_bytes / kLineSize;
  const Addr v = region_base + rng_.next_below(lines) * kLineSize;
  return page_scramble(v);
}

Addr SyntheticTrace::cold_address() {
  const Addr footprint = footprint_pages_ * kPageBytes;
  switch (desc_.pattern) {
    case Pattern::kRandom:
      return pick(footprint, 0);
    case Pattern::kStreaming: {
      const Addr v = stream_cursor_;
      stream_cursor_ += kLineSize;
      if (stream_cursor_ >= footprint) stream_cursor_ = kWarmBytes;
      return page_scramble(v);
    }
    case Pattern::kMixed: {
      if (rng_.chance(0.5)) {
        const Addr v = stream_cursor_;
        stream_cursor_ += kLineSize;
        if (stream_cursor_ >= footprint) stream_cursor_ = kWarmBytes;
        return page_scramble(v);
      }
      return pick(footprint, 0);
    }
  }
  return base_;
}

bool SyntheticTrace::next(sim::TraceRecord& out) {
  out.gap = mean_gap_ < 0.5
                ? 0
                : static_cast<std::uint32_t>(rng_.next_geometric(mean_gap_ + 1) - 1);
  out.is_write = rng_.chance(desc_.write_frac);

  const double u = rng_.next_double();
  if (u < p_cold_) {
    out.addr = cold_address();
  } else if (u < p_cold_ + (1.0 - p_cold_) * 0.7) {
    out.addr = pick(kHotBytes, 0);  // hot set at the footprint base
  } else {
    // Warm set: cyclic sweep (loop-style reuse) so it becomes and stays
    // LLC-resident after one pass — uniform draws would pay
    // coupon-collector compulsory misses for the whole run.
    out.addr = page_scramble(warm_cursor_);
    warm_cursor_ = (warm_cursor_ + kLineSize) % kWarmBytes;
  }
  return true;
}

}  // namespace secddr::workloads
