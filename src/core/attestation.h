// Processor-side attestation driver (paper §III-F).
//
// At each power-up (or after a legitimate DIMM replacement) the processor:
//   1. fetches the rank's certificate and validates it against the CA
//      (including the revocation list),
//   2. runs an endorsement-signed Diffie-Hellman exchange with the rank's
//      ECC chip, authenticating the module and deriving the shared
//      transaction key Kt,
//   3. chooses the initial transaction counter C0 (random, or monotonic
//      from a non-volatile register) and sends it in plaintext — tampering
//      with it only causes a detectable counter mismatch,
//   4. clears memory to rule out replay of pre-boot state.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.h"
#include "core/dimm.h"
#include "crypto/cert.h"
#include "crypto/dh.h"

namespace secddr::core {

struct AttestationResult {
  bool ok = false;
  std::string failure;  ///< reason when !ok
  crypto::Key128 kt{};
  std::uint64_t c0 = 0;
};

class AttestationDriver {
 public:
  /// `monotonic` switches C0 from random to a monotonically increasing
  /// processor-lifetime value (both are sound; §III-F).
  AttestationDriver(const crypto::DhGroup& group,
                    const crypto::CertificateAuthority& ca, std::uint64_t seed,
                    bool monotonic = false);

  /// Runs the full flow against one rank. On success the caller installs
  /// `kt`/`c0` into its memory controller; the device side is installed by
  /// the exchange itself.
  AttestationResult attest_rank(Dimm& dimm, unsigned rank);

 private:
  const crypto::DhGroup& group_;
  const crypto::CertificateAuthority& ca_;
  Xoshiro256 rng_;
  bool monotonic_;
  std::uint64_t monotonic_counter_ = 1;
};

}  // namespace secddr::core
