// Processor-side SecDDR memory controller (functional).
//
// Owns the per-rank E-MAC engines and transaction counters, the data
// encryption engine (AES-XTS by default, counter-mode optional), the data
// MAC engine, and a mirror of each bank's open row. Every line write emits
// ACT (if needed) + WR with E-MAC and encrypted eWCRC; every read emits
// ACT (if needed) + RD and verifies the response MAC. Verification happens
// ONLY here — the DIMM stores MACs but never checks them (§III-A).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/bus.h"
#include "core/dimm.h"
#include "core/emac.h"
#include "crypto/aes_xts.h"
#include "dram/address.h"

namespace secddr::core {

/// Data-encryption scheme of the processor's memory encryption engine.
enum class DataEncryption {
  kXts,  ///< AES-XTS keyed by line address (TME/SEV style)
  kCtr,  ///< counter-mode with per-line write counters
};

/// What the controller detected on an operation.
enum class Violation {
  kNone,
  kMacMismatch,      ///< read MAC verification failed
  kWriteAlert,       ///< device signaled eWCRC mismatch (ALERT_n)
  kDroppedResponse,  ///< read never answered (timeout)
};

const char* to_string(Violation v);

struct ControllerStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t activates = 0;
  std::uint64_t mac_mismatches = 0;
  std::uint64_t write_alerts = 0;
  std::uint64_t dropped_responses = 0;

  std::uint64_t violations() const {
    return mac_mismatches + write_alerts + dropped_responses;
  }
};

class MemoryController {
 public:
  /// `enable_ewcrc=false` models plain SecDDR without AI-ECC's address
  /// protection — used by the attack tests to demonstrate why the paper
  /// needs the encrypted eWCRC (§III-B, Fig. 3).
  MemoryController(DataEncryption enc, Bus& bus, Dimm& dimm,
                   std::uint64_t seed, bool enable_ewcrc = true);

  /// Installs the per-rank channel state from attestation (§III-F).
  void install_keys(unsigned rank, const crypto::Key128& kt, std::uint64_t c0);
  bool rank_ready(unsigned rank) const;
  std::uint64_t transaction_counter(unsigned rank) const;

  /// Secure line write; returns the violation observed (if any).
  Violation write_line(Addr addr, const CacheLine& plaintext);

  struct ReadResult {
    Violation violation = Violation::kNone;
    CacheLine data;  ///< decrypted plaintext (valid when violation==kNone)
    bool ok() const { return violation == Violation::kNone; }
  };
  ReadResult read_line(Addr addr);

  const ControllerStats& stats() const { return stats_; }
  Addr capacity() const { return mapping_.geometry().capacity_bytes(); }
  const dram::AddressMapping& mapping() const { return mapping_; }

  /// Mutable controller state (keys excluded — they are fused after
  /// attestation). Snapshot/restore lets the fuzzer reset a session to
  /// its post-attestation pristine state without re-running the signed
  /// key exchange, and is the seed of the serializable-simulator-state
  /// direction in ROADMAP.md.
  struct State {
    std::vector<std::uint64_t> counters;      ///< per-rank Ct
    std::vector<std::uint64_t> cmd_counters;  ///< per-rank CCA pads
    std::vector<std::int64_t> open_row_mirror;
    std::unordered_map<Addr, std::uint64_t> line_counters;
    ControllerStats stats;
  };
  State snapshot_state() const;
  void restore_state(const State& s);

 private:
  void ensure_row_open(const dram::DecodedAddr& d);
  /// Rolls back the CTR-mode per-line write counter after a write the
  /// device rejected (see write_line).
  void revert_line_counter(Addr addr);
  /// §VIII CCCA obfuscation of a column command's fields (no-op unless
  /// the DIMM is configured for it).
  void obfuscate_column_fields(unsigned rank, unsigned& bg, unsigned& bank,
                               unsigned& column);
  CacheLine encrypt(Addr addr, const CacheLine& pt, bool bump_counter);
  CacheLine decrypt(Addr addr, const CacheLine& ct) const;

  DataEncryption enc_;
  Bus& bus_;
  Dimm& dimm_;
  bool ewcrc_enabled_;
  dram::AddressMapping mapping_;

  crypto::AesXts xts_;
  crypto::Aes ctr_aes_;
  MacEngine mac_;
  std::unordered_map<Addr, std::uint64_t> line_counters_;  ///< CTR mode

  std::vector<std::optional<EmacEngine>> rank_channels_;
  std::vector<std::int64_t> open_row_mirror_;  ///< per (rank, bg, bank)

  ControllerStats stats_;
};

}  // namespace secddr::core
