#include "core/emac.h"

#include <cstring>

namespace secddr::core {

EmacEngine::EmacEngine(const crypto::Key128& kt, unsigned rank,
                       std::uint64_t initial_counter)
    : aes_(kt), rank_(rank),
      ctr_(initial_counter + (initial_counter & 1)) {}

std::uint64_t EmacEngine::peek_counter(Dir dir) const {
  // ctr_ is kept even: reads use it directly, writes use the odd ctr_+1.
  return dir == Dir::kRead ? ctr_ : ctr_ + 1;
}

std::uint64_t EmacEngine::next_counter(Dir dir) {
  const std::uint64_t c = peek_counter(dir);
  // Asymmetric advancement (see header): reads +2, writes +4.
  ctr_ += dir == Dir::kRead ? 2 : 4;
  return c;
}

std::uint64_t EmacEngine::otp(std::uint64_t c) const {
  crypto::Block b{};
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(c >> (8 * i));
  b[8] = static_cast<std::uint8_t>(rank_);
  b[9] = 'T';  // domain tag: transaction pad
  aes_.encrypt_block(b);
  return load_le64(b.data());
}

std::uint16_t EmacEngine::otp_w(std::uint64_t c,
                                std::uint64_t address_code) const {
  crypto::Block b{};
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(c >> (8 * i));
  b[8] = static_cast<std::uint8_t>(rank_);
  b[9] = 'W';  // domain tag: write-CRC pad
  for (int i = 0; i < 6; ++i)
    b[10 + i] = static_cast<std::uint8_t>(address_code >> (8 * i));
  aes_.encrypt_block(b);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint64_t EmacEngine::next_cmd_pad() {
  crypto::Block b{};
  const std::uint64_t c = cmd_ctr_++;
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(c >> (8 * i));
  b[8] = static_cast<std::uint8_t>(rank_);
  b[9] = 'C';  // domain tag: command-obfuscation pad
  aes_.encrypt_block(b);
  return load_le64(b.data());
}

std::uint64_t MacEngine::compute(Addr addr, const CacheLine& ciphertext) const {
  std::uint8_t msg[8 + kLineSize];
  store_le64(msg, addr);
  std::memcpy(msg + 8, ciphertext.bytes.data(), kLineSize);
  return cmac_.tag64(msg, sizeof msg);
}

}  // namespace secddr::core
