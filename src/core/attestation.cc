#include "core/attestation.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "crypto/schnorr.h"

namespace secddr::core {

AttestationDriver::AttestationDriver(const crypto::DhGroup& group,
                                     const crypto::CertificateAuthority& ca,
                                     std::uint64_t seed, bool monotonic)
    : group_(group), ca_(ca), rng_(seed), monotonic_(monotonic) {}

AttestationResult AttestationDriver::attest_rank(Dimm& dimm, unsigned rank) {
  AttestationResult result;

  // 1. Certificate chain: CA signature + revocation + subject binding.
  const crypto::Certificate& cert = dimm.certificate(rank);
  if (!ca_.verify(cert)) {
    result.failure = "certificate rejected by CA (forged or revoked)";
    return result;
  }
  const std::string expected_subject =
      dimm.module_id() + ":rank" + std::to_string(rank);
  if (cert.subject != expected_subject) {
    result.failure = "certificate subject does not match module/rank";
    return result;
  }

  // 2. Signed Diffie-Hellman exchange.
  const crypto::DhKeyPair eph = crypto::dh_generate(group_, rng_);
  const Dimm::KxResponse resp = dimm.key_exchange(rank, eph.pub);
  if (!crypto::dh_check_public(group_, resp.pub)) {
    result.failure = "device DH public value out of range";
    return result;
  }
  std::vector<std::uint8_t> transcript =
      resp.pub.to_bytes_be(group_.byte_length);
  const auto ppub = eph.pub.to_bytes_be(group_.byte_length);
  transcript.insert(transcript.end(), ppub.begin(), ppub.end());
  transcript.insert(transcript.end(), dimm.module_id().begin(),
                    dimm.module_id().end());
  transcript.push_back(static_cast<std::uint8_t>(rank));
  if (!crypto::schnorr_verify(group_, cert.endorsement_pub, transcript,
                              resp.sig)) {
    result.failure = "endorsement signature invalid (man-in-the-middle?)";
    return result;
  }

  // 3. Derive Kt identically to the device and install the counter.
  const auto shared = crypto::dh_shared_secret(group_, eph.priv, resp.pub);
  const auto okm = crypto::hkdf(
      {}, shared, {'s', 'e', 'c', 'd', 'd', 'r', '-', 'k', 't'}, 16);
  std::copy(okm.begin(), okm.end(), result.kt.begin());

  // Even initial value: the channel keeps Ct even between transactions.
  result.c0 = (monotonic_ ? monotonic_counter_++ * (1ull << 20) : rng_.next()) &
              ~1ull;
  dimm.set_transaction_counter(rank, result.c0);

  result.ok = true;
  return result;
}

}  // namespace secddr::core
