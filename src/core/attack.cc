#include "core/attack.h"

namespace secddr::core {
namespace {

std::uint64_t bank_key(unsigned rank, unsigned bg, unsigned bank) {
  return (static_cast<std::uint64_t>(rank) << 16) |
         (static_cast<std::uint64_t>(bg) << 8) | bank;
}

std::uint64_t pack_loc(unsigned rank, unsigned bg, unsigned bank,
                       std::uint64_t row, unsigned col) {
  return (bank_key(rank, bg, bank) << 40) | (row << 10) | col;
}

std::uint64_t pack_col_target(unsigned rank, unsigned bg, unsigned bank,
                              unsigned col) {
  return (bank_key(rank, bg, bank) << 10) | col;
}

}  // namespace

// ------------------------------------------------------------- Tracking

bool TrackingInterposer::on_activate(ActivateCmd& cmd) {
  open_rows_[bank_key(cmd.rank, cmd.bank_group, cmd.bank)] = cmd.row;
  return true;
}

std::optional<std::uint64_t> TrackingInterposer::open_row_for(
    unsigned rank, unsigned bg, unsigned bank) const {
  const auto it = open_rows_.find(bank_key(rank, bg, bank));
  if (it == open_rows_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> TrackingInterposer::locate(unsigned rank,
                                                        unsigned bg,
                                                        unsigned bank,
                                                        unsigned col) const {
  const auto row = open_row_for(rank, bg, bank);
  if (!row) return std::nullopt;  // pre-attachment ACT: cannot attribute
  return pack_loc(rank, bg, bank, *row, col);
}

// ------------------------------------------------------------- Snooping

bool SnoopInterposer::on_write(WriteCmd& cmd) {
  if (const auto loc = locate(cmd.rank, cmd.bank_group, cmd.bank, cmd.column))
    history_[*loc].push_back({cmd.data, cmd.emac, true});
  return true;
}

bool SnoopInterposer::on_read_resp(const ReadCmd& cmd, ReadResp& resp) {
  if (const auto loc = locate(cmd.rank, cmd.bank_group, cmd.bank, cmd.column))
    history_[*loc].push_back({resp.data, resp.emac, false});
  return true;
}

const std::vector<SnoopInterposer::Observation>* SnoopInterposer::history_for(
    unsigned rank, unsigned bg, unsigned bank, unsigned row,
    unsigned col) const {
  const auto it = history_.find(pack_loc(rank, bg, bank, row, col));
  return it == history_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------- Replay

void BusReplayInterposer::arm(unsigned rank, unsigned bg, unsigned bank,
                              unsigned row, unsigned col, std::size_t index) {
  target_ = pack_loc(rank, bg, bank, row, col);
  index_ = index;
}

bool BusReplayInterposer::on_read_resp(const ReadCmd& cmd, ReadResp& resp) {
  const auto loc = locate(cmd.rank, cmd.bank_group, cmd.bank, cmd.column);
  if (target_ && loc && *loc == *target_) {
    const auto it = history_.find(*loc);
    if (it != history_.end() && index_ < it->second.size()) {
      resp.data = it->second[index_].data;
      resp.emac = it->second[index_].emac;
      ++replays_;
      target_.reset();
      return true;  // do not also record the forged response
    }
  }
  return SnoopInterposer::on_read_resp(cmd, resp);
}

// ------------------------------------------------------------- Redirects

void RowRedirectInterposer::arm(unsigned rank, unsigned bg, unsigned bank,
                                std::uint64_t from_row, std::uint64_t to_row) {
  armed_ = true;
  rank_ = rank;
  bg_ = bg;
  bank_ = bank;
  from_row_ = from_row;
  to_row_ = to_row;
}

bool RowRedirectInterposer::on_activate(ActivateCmd& cmd) {
  if (armed_ && cmd.rank == rank_ && cmd.bank_group == bg_ &&
      cmd.bank == bank_ && cmd.row == from_row_) {
    cmd.row = to_row_;
    armed_ = false;
    ++redirects_;
  }
  return TrackingInterposer::on_activate(cmd);
}

void ColumnRedirectInterposer::arm(unsigned rank, unsigned bg, unsigned bank,
                                   unsigned from_col, unsigned to_col) {
  armed_ = true;
  rank_ = rank;
  bg_ = bg;
  bank_ = bank;
  from_col_ = from_col;
  to_col_ = to_col;
}

bool ColumnRedirectInterposer::on_write(WriteCmd& cmd) {
  if (armed_ && cmd.rank == rank_ && cmd.bank_group == bg_ &&
      cmd.bank == bank_ && cmd.column == from_col_) {
    cmd.column = to_col_;
    armed_ = false;
  }
  return true;
}

// ------------------------------------------------------------- Drop/convert

void DropWriteInterposer::arm(unsigned rank, unsigned bg, unsigned bank,
                              unsigned col) {
  target_ = pack_col_target(rank, bg, bank, col);
}

bool DropWriteInterposer::on_write(WriteCmd& cmd) {
  if (target_ && pack_col_target(cmd.rank, cmd.bank_group, cmd.bank,
                                 cmd.column) == *target_) {
    target_.reset();
    ++drops_;
    return false;
  }
  return true;
}

void WriteToReadInterposer::arm(unsigned rank, unsigned bg, unsigned bank,
                                unsigned col) {
  target_ = pack_col_target(rank, bg, bank, col);
}

bool WriteToReadInterposer::convert_write_to_read(const WriteCmd& cmd) {
  if (target_ && pack_col_target(cmd.rank, cmd.bank_group, cmd.bank,
                                 cmd.column) == *target_) {
    target_.reset();
    return true;
  }
  return false;
}

// ------------------------------------------------------------- Bit flips

void BitFlipInterposer::arm(Field field, unsigned bit) {
  field_ = field;
  bit_ = bit;
}

bool BitFlipInterposer::on_write(WriteCmd& cmd) {
  if (!field_) return true;
  switch (*field_) {
    case Field::kWriteData:
      flip_line_bit(cmd.data, bit_);
      break;
    case Field::kWriteEmac:
      flip_u64_bit(cmd.emac, bit_);
      break;
    case Field::kWriteCrc:
      flip_u16_bit(cmd.ecc_crc, bit_);
      break;
    default:
      return true;
  }
  field_.reset();
  return true;
}

bool BitFlipInterposer::on_read_resp(const ReadCmd&, ReadResp& resp) {
  if (!field_) return true;
  switch (*field_) {
    case Field::kReadData:
      flip_line_bit(resp.data, bit_);
      break;
    case Field::kReadEmac:
      flip_u64_bit(resp.emac, bit_);
      break;
    default:
      return true;
  }
  field_.reset();
  return true;
}

// ------------------------------------------------------------- On-DIMM

void OnDimmReplayInterposer::arm(unsigned rank, std::uint64_t line_key) {
  target_ = {rank, line_key};
}

void OnDimmReplayInterposer::on_inner_write(unsigned rank,
                                            std::uint64_t line_key,
                                            CacheLine& data,
                                            std::uint64_t& mac) {
  seen_[(static_cast<std::uint64_t>(rank) << 56) | line_key].push_back(
      {data, mac});
}

void OnDimmReplayInterposer::on_inner_read(unsigned rank,
                                           std::uint64_t line_key,
                                           CacheLine& data,
                                           std::uint64_t& mac) {
  const std::uint64_t k = (static_cast<std::uint64_t>(rank) << 56) | line_key;
  if (target_ && target_->first == rank && target_->second == line_key) {
    const auto it = seen_.find(k);
    if (it != seen_.end() && !it->second.empty()) {
      data = it->second.front().data;
      mac = it->second.front().mac;
      ++replays_;
      target_.reset();
      return;
    }
  }
  seen_[k].push_back({data, mac});
}

}  // namespace secddr::core
