#include "core/ewcrc.h"

#include "crypto/crc.h"

namespace secddr::core {

std::uint64_t WriteAddress::code() const {
  // rank(2b) | bg(3b) | bank(3b) | column(10b) | row(30b): ample for the
  // functional geometry and stable across both ends of the channel.
  std::uint64_t v = rank & 0x3;
  v = (v << 3) | (bank_group & 0x7);
  v = (v << 3) | (bank & 0x7);
  v = (v << 10) | (column & 0x3FF);
  v = (v << 30) | (row & 0x3FFFFFFFull);
  return v;
}

std::uint16_t ewcrc_slice(const WriteAddress& addr, const std::uint8_t* slice,
                          std::size_t n) {
  std::uint8_t code_bytes[8];
  store_le64(code_bytes, addr.code());
  std::uint16_t crc = crypto::crc16(code_bytes, sizeof code_bytes);
  return crypto::crc16_update(crc, slice, n);
}

std::array<std::uint16_t, kDataChips> ewcrc_data_chips(
    const WriteAddress& addr, const CacheLine& line) {
  std::array<std::uint16_t, kDataChips> out{};
  for (unsigned chip = 0; chip < kDataChips; ++chip)
    out[chip] = ewcrc_slice(addr, line.bytes.data() + chip * kChipSliceBytes,
                            kChipSliceBytes);
  return out;
}

std::uint16_t ewcrc_ecc_chip(const WriteAddress& addr, std::uint64_t emac) {
  std::uint8_t slice[8];
  store_le64(slice, emac);
  return ewcrc_slice(addr, slice, sizeof slice);
}

}  // namespace secddr::core
