// The functional DDR command/data bus between the memory controller and
// the DIMM, with interposer hooks for the attacker framework.
//
// The threat model (paper §II-A) lets the adversary tamper with anything
// on the bus and on the DIMM's interconnects, but not inside packages.
// Two hook positions model this:
//   - BusInterposer: between processor and DIMM (the memory channel).
//   - OnDimmInterposer: between the DIMM's buffer chips and the DRAM
//     chips (a malicious DIMM / on-DIMM trojan). Whether the plaintext
//     MAC is visible there depends on where the security logic sits
//     (ECC chip = untrusted-DIMM design vs ECC data buffer = trusted-DIMM
//     design, §III-E / §VI-C).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/types.h"
#include "core/ewcrc.h"

namespace secddr::core {

/// ACTIVATE: opens `row` in (rank, bank_group, bank).
struct ActivateCmd {
  unsigned rank = 0;
  unsigned bank_group = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;
};

/// WRITE with full burst payload (BL10: data + CRC beats) and the E-MAC
/// on the ECC lanes.
struct WriteCmd {
  unsigned rank = 0;
  unsigned bank_group = 0;
  unsigned bank = 0;
  unsigned column = 0;
  CacheLine data;          ///< ciphertext
  std::uint64_t emac = 0;  ///< encrypted MAC (ECC chip slice)
  std::array<std::uint16_t, kDataChips> data_crc{};  ///< plain eWCRCs
  std::uint16_t ecc_crc = 0;  ///< ECC chip eWCRC, encrypted with OTPw
};

/// READ column command.
struct ReadCmd {
  unsigned rank = 0;
  unsigned bank_group = 0;
  unsigned bank = 0;
  unsigned column = 0;
};

/// READ response burst.
struct ReadResp {
  CacheLine data;
  std::uint64_t emac = 0;
};

/// Outcome of a write burst at the device, as signaled back over the
/// channel (ALERT_n). Travels through the bus, so an interposer can mask
/// or forge it like any other wire.
struct WriteStatus {
  bool stored = false;
  bool alert = false;  ///< eWCRC mismatch signaled on ALERT_n
};

/// Attacker hook on the memory channel. Default: faithful passthrough.
/// Returning false from a command hook drops the command entirely.
class BusInterposer {
 public:
  virtual ~BusInterposer() = default;
  virtual bool on_activate(ActivateCmd&) { return true; }
  virtual bool on_write(WriteCmd&) { return true; }
  /// May convert a read into nothing (drop) — response is then lost.
  virtual bool on_read(ReadCmd&) { return true; }
  /// Returning false swallows the response: the device answered (and
  /// consumed its counter) but the burst never reaches the controller.
  virtual bool on_read_resp(const ReadCmd&, ReadResp&) { return true; }
  /// The ALERT_n signal on its way back to the controller: an attacker
  /// can mask a real alert or forge one on a clean write.
  virtual void on_write_status(const WriteCmd&, WriteStatus&) {}
  /// A write the attacker converts to a read (suppressing the response)
  /// leaves memory unmodified without dropping a command slot (§III-B).
  virtual bool convert_write_to_read(const WriteCmd&) { return false; }
};

/// Attacker hook on the DIMM-internal interconnect, after the buffer
/// chips. `mac` is the value on the ECC lanes at that point: the E-MAC
/// when the security logic is in the ECC chip (untrusted-DIMM design), or
/// the *decrypted* MAC when it is in the ECC data buffer (trusted-DIMM
/// design) — which is exactly why the trusted-DIMM placement cannot
/// survive on-DIMM adversaries.
class OnDimmInterposer {
 public:
  virtual ~OnDimmInterposer() = default;
  virtual void on_inner_write(unsigned rank, std::uint64_t line_key,
                              CacheLine& data, std::uint64_t& mac) {
    (void)rank;
    (void)line_key;
    (void)data;
    (void)mac;
  }
  virtual void on_inner_read(unsigned rank, std::uint64_t line_key,
                             CacheLine& data, std::uint64_t& mac) {
    (void)rank;
    (void)line_key;
    (void)data;
    (void)mac;
  }
};

/// The channel: forwards commands through the (optional) interposer.
/// Owned by the session; the controller talks only to this.
class Bus {
 public:
  void set_interposer(BusInterposer* interposer) { interposer_ = interposer; }
  BusInterposer* interposer() const { return interposer_; }

  /// Applies the hook; returns the possibly-mutated command, or nullopt
  /// if the attacker dropped it.
  std::optional<ActivateCmd> deliver(ActivateCmd cmd);
  std::optional<WriteCmd> deliver(WriteCmd cmd);
  std::optional<ReadCmd> deliver(ReadCmd cmd);
  /// Returns false when the attacker swallowed the response burst.
  bool deliver_resp(const ReadCmd& cmd, ReadResp& resp);
  /// Routes ALERT_n back through the interposer (maskable/forgeable).
  void deliver_status(const WriteCmd& cmd, WriteStatus& status);
  /// True if the attacker wants this write converted into a read.
  bool wants_write_to_read(const WriteCmd& cmd);

 private:
  BusInterposer* interposer_ = nullptr;
};

}  // namespace secddr::core
