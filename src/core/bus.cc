#include "core/bus.h"

namespace secddr::core {

std::optional<ActivateCmd> Bus::deliver(ActivateCmd cmd) {
  if (interposer_ && !interposer_->on_activate(cmd)) return std::nullopt;
  return cmd;
}

std::optional<WriteCmd> Bus::deliver(WriteCmd cmd) {
  if (interposer_ && !interposer_->on_write(cmd)) return std::nullopt;
  return cmd;
}

std::optional<ReadCmd> Bus::deliver(ReadCmd cmd) {
  if (interposer_ && !interposer_->on_read(cmd)) return std::nullopt;
  return cmd;
}

bool Bus::deliver_resp(const ReadCmd& cmd, ReadResp& resp) {
  return !interposer_ || interposer_->on_read_resp(cmd, resp);
}

void Bus::deliver_status(const WriteCmd& cmd, WriteStatus& status) {
  if (interposer_) interposer_->on_write_status(cmd, status);
}

bool Bus::wants_write_to_read(const WriteCmd& cmd) {
  return interposer_ && interposer_->convert_write_to_read(cmd);
}

}  // namespace secddr::core
