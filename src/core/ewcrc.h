// Extended write CRC (eWCRC) after AI-ECC [Kim et al., ISCA'16], §III-B.
//
// DDR4 write CRC protects each device's slice of the write burst; AI-ECC
// extends the CRC input with the rank/bank-group/bank/row/column so a
// device can detect a write whose command or address was corrupted in
// flight. SecDDR additionally encrypts the ECC chip's eWCRC with a pad
// that binds the address (EmacEngine::otp_w), because a plain CRC is not
// cryptographic: an attacker who can see it could engineer a redirect
// that still passes.
//
// Layout modeled here (x8 devices): the 64B line is sliced 8 bytes per
// data chip; the ECC chip's slice is the 8-byte E-MAC. Each chip checks a
// 16-bit CRC transmitted over the two extra burst beats (BL8 -> BL10).
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"

namespace secddr::core {

/// The address fields a write carries on the CCCA bus.
struct WriteAddress {
  unsigned rank = 0;
  unsigned bank_group = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;  ///< row currently open in the bank (from ACT)
  unsigned column = 0;

  /// Packs the fields into the code word fed to the CRC and to OTPw.
  std::uint64_t code() const;

  friend bool operator==(const WriteAddress&, const WriteAddress&) = default;
};

/// Number of x8 data chips per rank (the ECC chip is separate).
inline constexpr unsigned kDataChips = 8;
/// Bytes of the line carried by each data chip.
inline constexpr unsigned kChipSliceBytes = kLineSize / kDataChips;

/// eWCRC over one chip's slice: CRC-16(address code || slice bytes).
std::uint16_t ewcrc_slice(const WriteAddress& addr, const std::uint8_t* slice,
                          std::size_t n);

/// Per-data-chip eWCRCs for a full line.
std::array<std::uint16_t, kDataChips> ewcrc_data_chips(
    const WriteAddress& addr, const CacheLine& line);

/// The ECC chip's eWCRC: its slice is the 8-byte (encrypted) MAC.
std::uint16_t ewcrc_ecc_chip(const WriteAddress& addr, std::uint64_t emac);

}  // namespace secddr::core
