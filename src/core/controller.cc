#include "core/controller.h"

#include <cassert>

#include "crypto/aes_ctr.h"

namespace secddr::core {
namespace {

crypto::Key128 derive_key(Xoshiro256& rng) {
  crypto::Key128 k;
  for (auto& b : k) b = static_cast<std::uint8_t>(rng.next());
  return k;
}

}  // namespace

const char* to_string(Violation v) {
  switch (v) {
    case Violation::kNone:
      return "none";
    case Violation::kMacMismatch:
      return "mac-mismatch";
    case Violation::kWriteAlert:
      return "write-alert";
    case Violation::kDroppedResponse:
      return "dropped-response";
  }
  return "?";
}

MemoryController::MemoryController(DataEncryption enc, Bus& bus, Dimm& dimm,
                                   std::uint64_t seed, bool enable_ewcrc)
    : enc_(enc),
      bus_(bus),
      dimm_(dimm),
      ewcrc_enabled_(enable_ewcrc),
      mapping_(dimm.config().geometry, /*xor_banks=*/false),
      xts_([&] {
        Xoshiro256 r(seed);
        return crypto::AesXts(derive_key(r), derive_key(r));
      }()),
      ctr_aes_([&] {
        Xoshiro256 r(seed + 1);
        return crypto::Aes(derive_key(r));
      }()),
      mac_([&] {
        Xoshiro256 r(seed + 2);
        return MacEngine(derive_key(r));
      }()),
      rank_channels_(dimm.config().geometry.ranks),
      open_row_mirror_(static_cast<std::size_t>(dimm.config().geometry.ranks) *
                           dimm.config().geometry.bank_groups *
                           dimm.config().geometry.banks_per_group,
                       -1) {}

void MemoryController::install_keys(unsigned rank, const crypto::Key128& kt,
                                    std::uint64_t c0) {
  rank_channels_[rank].emplace(kt, rank, c0);
}

bool MemoryController::rank_ready(unsigned rank) const {
  return rank_channels_[rank].has_value();
}

std::uint64_t MemoryController::transaction_counter(unsigned rank) const {
  assert(rank_channels_[rank].has_value());
  return rank_channels_[rank]->counter();
}

void MemoryController::ensure_row_open(const dram::DecodedAddr& d) {
  const auto& g = mapping_.geometry();
  const std::size_t idx =
      (static_cast<std::size_t>(d.rank) * g.bank_groups + d.bank_group) *
          g.banks_per_group +
      d.bank;
  if (open_row_mirror_[idx] == static_cast<std::int64_t>(d.row)) return;
  ++stats_.activates;
  ActivateCmd act{d.rank, d.bank_group, d.bank, d.row};
  if (dimm_.config().cca_obfuscation) {
    // §VIII extension: only the (physical) rank select stays plaintext.
    const std::uint64_t pad = rank_channels_[d.rank]->next_cmd_pad();
    act.bank_group ^= static_cast<unsigned>(pad) & (g.bank_groups - 1);
    act.bank ^= static_cast<unsigned>(pad >> 8) & (g.banks_per_group - 1);
    act.row ^= (pad >> 16) & (g.rows_per_bank - 1);
  }
  // The controller believes its own command regardless of tampering.
  open_row_mirror_[idx] = static_cast<std::int64_t>(d.row);
  if (auto delivered = bus_.deliver(act)) dimm_.activate(*delivered);
}

void MemoryController::obfuscate_column_fields(unsigned rank, unsigned& bg,
                                               unsigned& bank,
                                               unsigned& column) {
  if (!dimm_.config().cca_obfuscation) return;
  const auto& g = mapping_.geometry();
  const std::uint64_t pad = rank_channels_[rank]->next_cmd_pad();
  bg ^= static_cast<unsigned>(pad) & (g.bank_groups - 1);
  bank ^= static_cast<unsigned>(pad >> 8) & (g.banks_per_group - 1);
  column ^= static_cast<unsigned>(pad >> 16) & (g.columns_per_row - 1);
}

CacheLine MemoryController::encrypt(Addr addr, const CacheLine& pt,
                                    bool bump_counter) {
  CacheLine ct = pt;
  if (enc_ == DataEncryption::kXts) {
    xts_.encrypt(line_index(addr), ct.bytes.data(), ct.bytes.size());
  } else {
    std::uint64_t& c = line_counters_[line_base(addr)];
    if (bump_counter) ++c;
    // Nonce binds (line, per-line write counter): temporal uniqueness.
    crypto::Block nonce = crypto::make_nonce(line_index(addr), 'D', 0);
    for (int i = 0; i < 4; ++i)
      nonce[12 + i] = static_cast<std::uint8_t>(c >> (8 * i));
    crypto::ctr_xcrypt(ctr_aes_, nonce, ct.bytes.data(), ct.bytes.size());
  }
  return ct;
}

void MemoryController::revert_line_counter(Addr addr) {
  if (enc_ != DataEncryption::kCtr) return;
  const auto it = line_counters_.find(line_base(addr));
  assert(it != line_counters_.end() && it->second > 0);
  --it->second;
}

CacheLine MemoryController::decrypt(Addr addr, const CacheLine& ct) const {
  CacheLine pt = ct;
  if (enc_ == DataEncryption::kXts) {
    xts_.decrypt(line_index(addr), pt.bytes.data(), pt.bytes.size());
  } else {
    const auto it = line_counters_.find(line_base(addr));
    const std::uint64_t c = it == line_counters_.end() ? 0 : it->second;
    crypto::Block nonce = crypto::make_nonce(line_index(addr), 'D', 0);
    for (int i = 0; i < 4; ++i)
      nonce[12 + i] = static_cast<std::uint8_t>(c >> (8 * i));
    crypto::ctr_xcrypt(ctr_aes_, nonce, pt.bytes.data(), pt.bytes.size());
  }
  return pt;
}

Violation MemoryController::write_line(Addr addr, const CacheLine& plaintext) {
  assert(line_base(addr) == addr && "line-aligned addresses only");
  assert(addr < capacity());
  const dram::DecodedAddr d = mapping_.decode(addr);
  assert(rank_channels_[d.rank].has_value() && "attestation first");
  EmacEngine& chan = *rank_channels_[d.rank];
  ++stats_.writes;

  ensure_row_open(d);

  const CacheLine ct = encrypt(addr, plaintext, /*bump_counter=*/true);
  const std::uint64_t mac = mac_.compute(addr, ct);
  // Counter discipline (mirrors the device): the write counter is
  // consumed when the controller believes the burst reached the arrays —
  // i.e. unless ALERT_n reports a rejected burst. A masked alert then
  // desynchronizes the two ends (controller advanced, device did not)
  // and every later read of the rank fails verification.
  const std::uint64_t c = chan.peek_counter(Dir::kWrite);

  WriteCmd cmd;
  cmd.rank = d.rank;
  cmd.bank_group = d.bank_group;
  cmd.bank = d.bank;
  cmd.column = d.column;
  cmd.data = ct;
  cmd.emac = chan.encrypt_mac(mac, c);
  if (ewcrc_enabled_) {
    const WriteAddress intended{d.rank, d.bank_group, d.bank, d.row, d.column};
    cmd.data_crc = ewcrc_data_chips(intended, ct);
    cmd.ecc_crc = static_cast<std::uint16_t>(ewcrc_ecc_chip(intended, mac) ^
                                             chan.otp_w(c, intended.code()));
  }
  obfuscate_column_fields(d.rank, cmd.bank_group, cmd.bank, cmd.column);

  if (bus_.wants_write_to_read(cmd)) {
    // Attacker converted WR -> RD and swallowed the response. The device
    // consumes a READ-parity counter; the controller consumed a write one.
    // Without the even/odd discipline this would stay in sync (§III-B).
    (void)chan.next_counter(Dir::kWrite);
    ReadCmd as_read{cmd.rank, cmd.bank_group, cmd.bank, cmd.column};
    (void)dimm_.read(as_read);
    return Violation::kNone;  // undetected *at this point*, by design
  }

  auto delivered = bus_.deliver(cmd);
  if (!delivered) {
    // Dropped in flight: the controller cannot know, so it advances and
    // the resulting desync is detected on the next read of the rank.
    (void)chan.next_counter(Dir::kWrite);
    return Violation::kNone;
  }

  WriteStatus st = dimm_.write(*delivered);
  bus_.deliver_status(cmd, st);  // ALERT_n is a wire like any other
  if (st.alert) {
    // Rejected burst: neither end consumed its counter, and the line's
    // CTR write counter rolls back so the stored (old) ciphertext still
    // decrypts correctly — a failed write must leave the line readable
    // with its pre-write contents, not silently garbled.
    revert_line_counter(addr);
    ++stats_.write_alerts;
    return Violation::kWriteAlert;
  }
  (void)chan.next_counter(Dir::kWrite);
  return Violation::kNone;
}

MemoryController::State MemoryController::snapshot_state() const {
  State s;
  for (const auto& chan : rank_channels_) {
    s.counters.push_back(chan ? chan->counter() : 0);
    s.cmd_counters.push_back(chan ? chan->cmd_counter() : 0);
  }
  s.open_row_mirror = open_row_mirror_;
  s.line_counters = line_counters_;
  s.stats = stats_;
  return s;
}

void MemoryController::restore_state(const State& s) {
  assert(s.counters.size() == rank_channels_.size());
  for (std::size_t r = 0; r < rank_channels_.size(); ++r) {
    if (!rank_channels_[r]) continue;
    rank_channels_[r]->set_counter(s.counters[r]);
    rank_channels_[r]->set_cmd_counter(s.cmd_counters[r]);
  }
  open_row_mirror_ = s.open_row_mirror;
  line_counters_ = s.line_counters;
  stats_ = s.stats;
}

MemoryController::ReadResult MemoryController::read_line(Addr addr) {
  assert(line_base(addr) == addr && "line-aligned addresses only");
  assert(addr < capacity());
  const dram::DecodedAddr d = mapping_.decode(addr);
  assert(rank_channels_[d.rank].has_value() && "attestation first");
  EmacEngine& chan = *rank_channels_[d.rank];
  ++stats_.reads;

  ensure_row_open(d);

  const std::uint64_t c = chan.peek_counter(Dir::kRead);
  ReadCmd cmd{d.rank, d.bank_group, d.bank, d.column};
  obfuscate_column_fields(d.rank, cmd.bank_group, cmd.bank, cmd.column);

  ReadResult result;
  auto delivered = bus_.deliver(cmd);
  std::optional<ReadResp> resp;
  if (delivered) resp = dimm_.read(*delivered);
  if (resp && !bus_.deliver_resp(cmd, *resp)) resp.reset();
  if (!resp) {
    // No burst arrived, so the controller does not consume: a dropped
    // *command* (device never consumed either) leaves the ends in sync
    // after this — already reported — violation, while a swallowed
    // *response* (device consumed) desyncs and fails every later read.
    ++stats_.dropped_responses;
    result.violation = Violation::kDroppedResponse;
    return result;
  }
  (void)chan.next_counter(Dir::kRead);

  const std::uint64_t mac = chan.decrypt_mac(resp->emac, c);
  const std::uint64_t expected = mac_.compute(addr, resp->data);
  if (mac != expected) {
    ++stats_.mac_mismatches;
    result.violation = Violation::kMacMismatch;
    return result;
  }
  result.data = decrypt(addr, resp->data);
  return result;
}

}  // namespace secddr::core
