// SecureMemorySession: the library's top-level public API.
//
// Builds a complete SecDDR deployment — certificate authority, provisioned
// DIMM, memory channel, processor-side controller — runs attestation on
// every rank, and exposes secure line read/write plus the experiment hooks
// (attacker interposers, sleep/wake, DIMM substitution) used by the
// examples and tests.
//
//   SessionConfig cfg;
//   auto session = SecureMemorySession::create(cfg);
//   session->write(0x1000, line);
//   auto r = session->read(0x1000);   // r.ok(), r.data
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/attestation.h"
#include "core/attack.h"
#include "core/bus.h"
#include "core/controller.h"
#include "core/dimm.h"
#include "crypto/cert.h"
#include "crypto/dh.h"

namespace secddr::core {

struct SessionConfig {
  DimmConfig dimm;
  DataEncryption encryption = DataEncryption::kXts;
  /// 1536-bit group keeps attestation fast; modp2048 is the deployment
  /// default documented in DESIGN.md.
  const crypto::DhGroup* group = &crypto::DhGroup::modp1536();
  std::uint64_t seed = 1;
  std::string module_id = "dimm:serial-0001";
  /// Actively zero the data region after attestation (§III-F). Writes the
  /// whole geometry through the secure path — enable for small test
  /// geometries only.
  bool clear_memory = false;
  /// Monotonic (vs random) initial counters.
  bool monotonic_counters = false;
};

class SecureMemorySession {
 public:
  /// Provisions, attests every rank, optionally clears memory.
  /// Returns nullptr (with `failure` filled if non-null) when attestation
  /// fails — e.g. a revoked or forged module.
  static std::unique_ptr<SecureMemorySession> create(
      const SessionConfig& config, std::string* failure = nullptr);

  /// Secure line accessors (line-aligned addresses).
  Violation write(Addr addr, const CacheLine& plaintext);
  MemoryController::ReadResult read(Addr addr);

  /// Byte capacity of the data space.
  Addr capacity() const { return controller_->capacity(); }

  // ---- Experiment hooks ----

  /// Installs/removes the bus-level attacker.
  void set_bus_interposer(BusInterposer* interposer) {
    bus_.set_interposer(interposer);
  }
  /// Installs/removes the on-DIMM attacker.
  void set_on_dimm_interposer(OnDimmInterposer* interposer) {
    dimm_->set_on_dimm_interposer(interposer);
  }

  /// Suspend to RAM (self-refresh): device state persists, counters hold.
  void sleep() { asleep_ = true; }
  /// Resume. No re-attestation: SecDDR relies on counter continuity.
  void wake() { asleep_ = false; }
  bool asleep() const { return asleep_; }

  /// Cold-boot style DIMM substitution: replace the module's volatile
  /// state with an earlier snapshot (the attacker froze and preserved the
  /// DIMM). Counters travel with the snapshot — that is the attack's flaw.
  Dimm::Snapshot snapshot_dimm() const { return dimm_->snapshot(); }
  void substitute_dimm(const Dimm::Snapshot& s) { dimm_->restore(s); }

  /// Both ends of the channel at once. Restoring a full snapshot resets
  /// the deployment to a consistent earlier state without repeating the
  /// (expensive) attestation — the fuzzer executes thousands of mutated
  /// runs against one attested session this way.
  struct Snapshot {
    Dimm::Snapshot dimm;
    MemoryController::State controller;
  };
  Snapshot snapshot() const {
    return {dimm_->snapshot(), controller_->snapshot_state()};
  }
  void restore(const Snapshot& s) {
    dimm_->restore(s.dimm);
    controller_->restore_state(s.controller);
  }

  /// Re-attests all ranks (legitimate DIMM replacement path); optionally
  /// clears memory as the paper requires.
  bool reattest(bool clear_memory);

  Dimm& dimm() { return *dimm_; }
  MemoryController& controller() { return *controller_; }
  crypto::CertificateAuthority& ca() { return *ca_; }
  const ControllerStats& stats() const { return controller_->stats(); }

 private:
  SecureMemorySession() = default;
  bool attest_all(std::string* failure);
  void clear_data_region();

  SessionConfig config_;
  std::unique_ptr<crypto::CertificateAuthority> ca_;
  std::unique_ptr<Dimm> dimm_;
  Bus bus_;
  std::unique_ptr<MemoryController> controller_;
  std::unique_ptr<AttestationDriver> attestation_;
  bool asleep_ = false;
};

}  // namespace secddr::core
