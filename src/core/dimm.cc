#include "core/dimm.h"

#include <cassert>

#include "common/secded.h"
#include "crypto/hmac.h"

namespace secddr::core {

Dimm::Dimm(const DimmConfig& config, std::string module_id,
           const crypto::DhGroup& group, std::uint64_t seed)
    : config_(config),
      module_id_(std::move(module_id)),
      group_(group),
      rng_(seed),
      ranks_(config.geometry.ranks),
      open_rows_(static_cast<std::size_t>(config.geometry.ranks) *
                     config.geometry.bank_groups *
                     config.geometry.banks_per_group,
                 -1) {}

std::uint64_t Dimm::line_key(unsigned bg, unsigned bank, std::uint64_t row,
                             unsigned col) const {
  const auto& g = config_.geometry;
  std::uint64_t v = bg;
  v = v * g.banks_per_group + bank;
  v = v * g.rows_per_bank + row;
  v = v * g.columns_per_row + col;
  return v;
}

std::int64_t& Dimm::open_row(unsigned rank, unsigned bg, unsigned bank) {
  const auto& g = config_.geometry;
  const std::size_t idx =
      (static_cast<std::size_t>(rank) * g.bank_groups + bg) *
          g.banks_per_group +
      bank;
  return open_rows_[idx];
}

WriteAddress Dimm::observed_address(unsigned rank, unsigned bg, unsigned bank,
                                    unsigned col) const {
  const auto& g = config_.geometry;
  const std::size_t idx =
      (static_cast<std::size_t>(rank) * g.bank_groups + bg) *
          g.banks_per_group +
      bank;
  WriteAddress a;
  a.rank = rank;
  a.bank_group = bg;
  a.bank = bank;
  a.row = static_cast<std::uint64_t>(open_rows_[idx] < 0 ? 0 : open_rows_[idx]);
  a.column = col;
  return a;
}

void Dimm::store_line(RankState& rs, std::uint64_t key,
                      const CacheLine& data) {
  rs.data[key] = data;
  if (config_.secded_enabled) {
    std::array<std::uint8_t, 8> ecc{};
    for (int w = 0; w < 8; ++w)
      ecc[w] = secded_encode(load_le64(data.bytes.data() + 8 * w));
    rs.ecc[key] = ecc;
  }
}

CacheLine Dimm::load_line(RankState& rs, std::uint64_t key) {
  CacheLine data;
  const auto it = rs.data.find(key);
  if (it == rs.data.end()) return data;  // never-written lines read zero
  data = it->second;
  if (config_.secded_enabled) {
    const auto eit = rs.ecc.find(key);
    if (eit != rs.ecc.end()) {
      for (int w = 0; w < 8; ++w) {
        std::uint64_t word = load_le64(data.bytes.data() + 8 * w);
        std::uint8_t check = eit->second[w];
        if (secded_decode(word, check) == SecdedStatus::kCorrected) {
          // Correct the array copy too (scrubbing on access).
          store_le64(data.bytes.data() + 8 * w, word);
          it->second = data;
          eit->second[w] = check;
          ++ecc_corrections_;
        }
      }
    }
  }
  return data;
}

// ---------------------------------------------------------------- keys

void Dimm::provision(crypto::CertificateAuthority& ca) {
  for (unsigned r = 0; r < config_.geometry.ranks; ++r) {
    RankState& rank = ranks_[r];
    rank.endorsement = crypto::schnorr_generate(group_, rng_);
    rank.cert = ca.issue(module_id_ + ":rank" + std::to_string(r),
                         rank.endorsement.pub);
    rank.provisioned = true;
  }
}

const crypto::Certificate& Dimm::certificate(unsigned rank) const {
  assert(ranks_[rank].provisioned);
  return ranks_[rank].cert;
}

Dimm::KxResponse Dimm::key_exchange(unsigned rank,
                                    const crypto::BigUInt& processor_pub) {
  assert(ranks_[rank].provisioned && "DIMM must be provisioned first");
  RankState& rs = ranks_[rank];
  const crypto::DhKeyPair eph = crypto::dh_generate(group_, rng_);

  // Sign the key-exchange transcript with the endorsement key (§III-F):
  // device_pub || processor_pub || module_id || rank.
  std::vector<std::uint8_t> transcript = eph.pub.to_bytes_be(group_.byte_length);
  const auto ppub = processor_pub.to_bytes_be(group_.byte_length);
  transcript.insert(transcript.end(), ppub.begin(), ppub.end());
  transcript.insert(transcript.end(), module_id_.begin(), module_id_.end());
  transcript.push_back(static_cast<std::uint8_t>(rank));

  KxResponse resp;
  resp.pub = eph.pub;
  resp.sig = crypto::schnorr_sign(group_, rs.endorsement.priv, transcript, rng_);

  // Derive and install Kt. The device keeps only Kt (it never computes
  // data MACs).
  const auto shared = crypto::dh_shared_secret(group_, eph.priv, processor_pub);
  const auto okm = crypto::hkdf({}, shared,
                                {'s', 'e', 'c', 'd', 'd', 'r', '-', 'k', 't'},
                                16);
  crypto::Key128 kt{};
  std::copy(okm.begin(), okm.end(), kt.begin());
  rs.emac.emplace(kt, rank, /*initial_counter=*/0);
  return resp;
}

void Dimm::set_transaction_counter(unsigned rank, std::uint64_t c0) {
  assert(ranks_[rank].emac.has_value());
  ranks_[rank].emac->set_counter(c0);
}

std::uint64_t Dimm::transaction_counter(unsigned rank) const {
  assert(ranks_[rank].emac.has_value());
  return ranks_[rank].emac->counter();
}

bool Dimm::keys_established(unsigned rank) const {
  return ranks_[rank].emac.has_value();
}

// ---------------------------------------------------------------- DDR

void Dimm::activate(const ActivateCmd& original) {
  ActivateCmd cmd = original;
  assert(cmd.rank < config_.geometry.ranks);
  if (config_.cca_obfuscation) {
    // §VIII extension: the RCD-side logic strips the command pad.
    RankState& rs = ranks_[cmd.rank];
    assert(rs.emac.has_value());
    const std::uint64_t pad = rs.emac->next_cmd_pad();
    const auto& g = config_.geometry;
    cmd.bank_group ^= static_cast<unsigned>(pad) & (g.bank_groups - 1);
    cmd.bank ^= static_cast<unsigned>(pad >> 8) & (g.banks_per_group - 1);
    cmd.row ^= (pad >> 16) & (g.rows_per_bank - 1);
  }
  assert(cmd.row < config_.geometry.rows_per_bank);
  open_row(cmd.rank, cmd.bank_group, cmd.bank) =
      static_cast<std::int64_t>(cmd.row);
}

WriteStatus Dimm::write(const WriteCmd& original) {
  WriteCmd cmd = original;
  RankState& rs = ranks_[cmd.rank];
  assert(rs.emac.has_value() && "keys must be established before traffic");
  if (config_.cca_obfuscation) {
    const std::uint64_t pad = rs.emac->next_cmd_pad();
    const auto& g = config_.geometry;
    cmd.bank_group ^= static_cast<unsigned>(pad) & (g.bank_groups - 1);
    cmd.bank ^= static_cast<unsigned>(pad >> 8) & (g.banks_per_group - 1);
    cmd.column ^= static_cast<unsigned>(pad >> 16) & (g.columns_per_row - 1);
  }
  if (open_row(cmd.rank, cmd.bank_group, cmd.bank) < 0)
    return {false, true};  // no open row: the burst has no destination

  const WriteAddress addr =
      observed_address(cmd.rank, cmd.bank_group, cmd.bank, cmd.column);
  const std::uint64_t key =
      line_key(cmd.bank_group, cmd.bank, addr.row, cmd.column);

  // Counter discipline: the transaction counter advances only when the
  // burst commits to the arrays. A rejected burst (eWCRC alert) must not
  // consume — otherwise an attacker who injects a forged write (rejected
  // here, but consuming under the old advance-on-receipt rule) could
  // re-synchronize the two ends after dropping a victim write, and an
  // attacker masking ALERT_n would leave the stale line self-consistent.
  // The fuzzer found both compositions; tests/regress pins them.
  const std::uint64_t c = rs.emac->peek_counter(Dir::kWrite);

  CacheLine data = cmd.data;
  std::uint64_t mac_on_wire = cmd.emac;  // encrypted at this point
  std::uint16_t ecc_crc = cmd.ecc_crc;   // encrypted with OTPw

  if (config_.placement == LogicPlacement::kEccDataBuffer) {
    // Trusted-DIMM design: the ECC data buffer decrypts before the beats
    // reach the chips, so the on-DIMM interconnect carries plaintext.
    mac_on_wire = rs.emac->decrypt_mac(mac_on_wire, c);
    ecc_crc = static_cast<std::uint16_t>(
        ecc_crc ^ rs.emac->otp_w(c, addr.code()));
    if (on_dimm_) on_dimm_->on_inner_write(cmd.rank, key, data, mac_on_wire);
    // Chip-side checks (plain eWCRC everywhere).
    if (config_.ewcrc_enabled) {
      for (unsigned chip = 0; chip < kDataChips; ++chip) {
        const std::uint16_t expect = ewcrc_slice(
            addr, data.bytes.data() + chip * kChipSliceBytes, kChipSliceBytes);
        if (expect != cmd.data_crc[chip]) return {false, true};
      }
      if (ewcrc_ecc_chip(addr, mac_on_wire) != ecc_crc) return {false, true};
    }
    (void)rs.emac->next_counter(Dir::kWrite);
    store_line(rs, key, data);
    rs.macs[key] = mac_on_wire;
    return {true, false};
  }

  // Untrusted-DIMM design: the interconnect carries the *encrypted* MAC;
  // all decryption happens inside the ECC chip package.
  if (on_dimm_) on_dimm_->on_inner_write(cmd.rank, key, data, mac_on_wire);

  const std::uint64_t mac_plain = rs.emac->decrypt_mac(mac_on_wire, c);
  if (config_.ewcrc_enabled) {
    for (unsigned chip = 0; chip < kDataChips; ++chip) {
      const std::uint16_t expect = ewcrc_slice(
          addr, data.bytes.data() + chip * kChipSliceBytes, kChipSliceBytes);
      if (expect != cmd.data_crc[chip]) return {false, true};
    }
    const std::uint16_t crc_plain = static_cast<std::uint16_t>(
        ecc_crc ^ rs.emac->otp_w(c, addr.code()));
    if (ewcrc_ecc_chip(addr, mac_plain) != crc_plain) return {false, true};
  }

  (void)rs.emac->next_counter(Dir::kWrite);
  store_line(rs, key, data);
  rs.macs[key] = mac_plain;  // MACs rest unencrypted (§III-A)
  return {true, false};
}

std::optional<ReadResp> Dimm::read(const ReadCmd& original) {
  ReadCmd cmd = original;
  RankState& rs = ranks_[cmd.rank];
  assert(rs.emac.has_value() && "keys must be established before traffic");
  if (config_.cca_obfuscation) {
    const std::uint64_t pad = rs.emac->next_cmd_pad();
    const auto& g = config_.geometry;
    cmd.bank_group ^= static_cast<unsigned>(pad) & (g.bank_groups - 1);
    cmd.bank ^= static_cast<unsigned>(pad >> 8) & (g.banks_per_group - 1);
    cmd.column ^= static_cast<unsigned>(pad >> 16) & (g.columns_per_row - 1);
  }
  if (open_row(cmd.rank, cmd.bank_group, cmd.bank) < 0) return std::nullopt;

  const WriteAddress addr =
      observed_address(cmd.rank, cmd.bank_group, cmd.bank, cmd.column);
  const std::uint64_t key =
      line_key(cmd.bank_group, cmd.bank, addr.row, cmd.column);

  const std::uint64_t c = rs.emac->next_counter(Dir::kRead);

  // On-device ECC corrects single-bit array faults before transmission.
  CacheLine data = load_line(rs, key);
  std::uint64_t mac = 0;
  if (auto it = rs.macs.find(key); it != rs.macs.end()) mac = it->second;

  ReadResp resp;
  if (config_.placement == LogicPlacement::kEccDataBuffer) {
    // Plaintext MAC crosses the on-DIMM interconnect, then the DB encrypts.
    if (on_dimm_) on_dimm_->on_inner_read(cmd.rank, key, data, mac);
    resp.data = data;
    resp.emac = rs.emac->encrypt_mac(mac, c);
  } else {
    // ECC chip encrypts on-die; the interconnect only sees the E-MAC.
    std::uint64_t emac = rs.emac->encrypt_mac(mac, c);
    if (on_dimm_) on_dimm_->on_inner_read(cmd.rank, key, data, emac);
    resp.data = data;
    resp.emac = emac;
  }
  return resp;
}

// ---------------------------------------------------------------- state

Dimm::Snapshot Dimm::snapshot() const {
  Snapshot s;
  for (const auto& r : ranks_) {
    s.data.push_back(r.data);
    s.macs.push_back(r.macs);
    s.counters.push_back(r.emac ? r.emac->counter() : 0);
    s.cmd_counters.push_back(r.emac ? r.emac->cmd_counter() : 0);
  }
  s.open_rows = open_rows_;
  s.ecc_corrections = ecc_corrections_;
  return s;
}

void Dimm::restore(const Snapshot& s) {
  assert(s.data.size() == ranks_.size());
  open_rows_ = s.open_rows;
  ecc_corrections_ = s.ecc_corrections;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r].data = s.data[r];
    ranks_[r].macs = s.macs[r];
    if (ranks_[r].emac) {
      ranks_[r].emac->set_counter(s.counters[r]);
      ranks_[r].emac->set_cmd_counter(s.cmd_counters[r]);
    }
    if (config_.secded_enabled) {
      // Regenerate check bytes over the restored arrays.
      ranks_[r].ecc.clear();
      for (const auto& [key, line] : ranks_[r].data) {
        std::array<std::uint8_t, 8> ecc{};
        for (int w = 0; w < 8; ++w)
          ecc[w] = secded_encode(load_le64(line.bytes.data() + 8 * w));
        ranks_[r].ecc[key] = ecc;
      }
    }
  }
}

bool Dimm::inject_fault(unsigned rank, std::uint64_t key, unsigned bit) {
  RankState& rs = ranks_[rank];
  const auto it = rs.data.find(key);
  if (it == rs.data.end()) return false;
  it->second[(bit / 8) % kLineSize] ^=
      static_cast<std::uint8_t>(1u << (bit % 8));
  return true;
}

bool Dimm::inject_mac_fault(unsigned rank, std::uint64_t key, unsigned bit) {
  RankState& rs = ranks_[rank];
  const auto it = rs.macs.find(key);
  if (it == rs.macs.end()) return false;
  it->second ^= 1ull << (bit % 64);
  return true;
}

bool Dimm::peek_line(unsigned rank, std::uint64_t key, CacheLine* data,
                     std::uint64_t* mac) const {
  const RankState& rs = ranks_[rank];
  const auto it = rs.data.find(key);
  if (it == rs.data.end()) return false;
  if (data) *data = it->second;
  if (mac) {
    const auto mit = rs.macs.find(key);
    *mac = mit == rs.macs.end() ? 0 : mit->second;
  }
  return true;
}

}  // namespace secddr::core
