// Attack framework: every adversary discussed in the paper, as bus- or
// on-DIMM interposers (§II-A threat model, §III attack analysis).
//
// The attacker can observe all CCCA/data traffic (tracking open rows by
// snooping ACTIVATEs, exactly as the paper assumes a precise adversary),
// record (data, E-MAC) pairs, and tamper with or drop any command.
//
// These single-shot adversaries are also the mutation vocabulary of the
// coverage-guided campaign fuzzer in src/fuzz/ (see the "Adversarial
// campaigns" section of README.md): fuzz::FaultInjector composes the
// same tracking/flip primitives into randomized multi-fault plans, and
// every escape it ever finds lands as a regression trace under
// tests/regress/.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/bus.h"

namespace secddr::core {

/// Wire-level bit-flip primitives shared by the single-shot adversaries
/// below and the fuzz::FaultInjector mutators.
inline void flip_line_bit(CacheLine& line, unsigned bit) {
  line[(bit / 8) % kLineSize] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}
inline void flip_u64_bit(std::uint64_t& v, unsigned bit) { v ^= 1ull << (bit % 64); }
inline void flip_u16_bit(std::uint16_t& v, unsigned bit) {
  v ^= static_cast<std::uint16_t>(1u << (bit % 16));
}

/// Base for bus attackers: tracks per-bank open rows from ACTIVATEs so
/// derived attacks can resolve column commands to full line locations.
///
/// A bank whose ACTIVATE predates this interposer's attachment has an
/// *unknown* open row — distinct from any real row. The original tracker
/// reported row 0 in that case, which aliases genuine row-0 locations
/// and mis-aims replays when an attacker arms mid-stream; the
/// TrackerGroundTruth property tests pin the fixed behavior against the
/// timing controller's actual command stream.
class TrackingInterposer : public BusInterposer {
 public:
  bool on_activate(ActivateCmd& cmd) override;

  /// Row the attacker believes is open in (rank, bg, bank); nullopt when
  /// no ACTIVATE to that bank has been observed yet.
  std::optional<std::uint64_t> open_row_for(unsigned rank, unsigned bg,
                                            unsigned bank) const;

 protected:
  /// Location key (rank, bg, bank, row, col) for a column command;
  /// nullopt when the open row is unknown (an attacker cannot attribute
  /// the access to a line, so derived attacks must not act on it).
  std::optional<std::uint64_t> locate(unsigned rank, unsigned bg,
                                      unsigned bank, unsigned col) const;

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> open_rows_;
};

/// Records every (data, E-MAC) pair seen on the bus, per location.
/// The "memoize changes to a specific location over time" step of a
/// replay attack (§II-C1).
class SnoopInterposer : public TrackingInterposer {
 public:
  struct Observation {
    CacheLine data;
    std::uint64_t emac;
    bool from_write;
  };

  bool on_write(WriteCmd& cmd) override;
  bool on_read_resp(const ReadCmd& cmd, ReadResp& resp) override;

  const std::vector<Observation>* history_for(unsigned rank, unsigned bg,
                                              unsigned bank, unsigned row,
                                              unsigned col) const;

 protected:
  std::unordered_map<std::uint64_t, std::vector<Observation>> history_;
};

/// Bus replay (data in motion, §II-C2): substitutes a previously captured
/// (data, E-MAC) pair into a later read response for the same location.
class BusReplayInterposer : public SnoopInterposer {
 public:
  /// Replays the `index`-th recorded observation on the next read of the
  /// location (indices are in capture order; 0 = oldest).
  void arm(unsigned rank, unsigned bg, unsigned bank, unsigned row,
           unsigned col, std::size_t index = 0);

  bool on_read_resp(const ReadCmd& cmd, ReadResp& resp) override;

  std::uint64_t replays_performed() const { return replays_; }

 private:
  std::optional<std::uint64_t> target_;
  std::size_t index_ = 0;
  std::uint64_t replays_ = 0;
};

/// The Fig. 3 attack: corrupts the row address of the next ACTIVATE to a
/// given bank so a subsequent write lands in the wrong row, leaving the
/// stale (data, MAC) pair in place.
class RowRedirectInterposer : public TrackingInterposer {
 public:
  void arm(unsigned rank, unsigned bg, unsigned bank, std::uint64_t from_row,
           std::uint64_t to_row);
  bool on_activate(ActivateCmd& cmd) override;

  std::uint64_t redirects_performed() const { return redirects_; }

 private:
  bool armed_ = false;
  unsigned rank_ = 0, bg_ = 0, bank_ = 0;
  std::uint64_t from_row_ = 0, to_row_ = 0;
  std::uint64_t redirects_ = 0;
};

/// Column-address variant of the same attack: redirects the next write to
/// a different column of the open row.
class ColumnRedirectInterposer : public TrackingInterposer {
 public:
  void arm(unsigned rank, unsigned bg, unsigned bank, unsigned from_col,
           unsigned to_col);
  bool on_write(WriteCmd& cmd) override;

 private:
  bool armed_ = false;
  unsigned rank_ = 0, bg_ = 0, bank_ = 0, from_col_ = 0, to_col_ = 0;
};

/// Drops the next write to a location (stale data via omission, §III-B).
class DropWriteInterposer : public TrackingInterposer {
 public:
  void arm(unsigned rank, unsigned bg, unsigned bank, unsigned col);
  bool on_write(WriteCmd& cmd) override;

  std::uint64_t drops_performed() const { return drops_; }

 private:
  std::optional<std::uint64_t> target_;  // (rank,bg,bank,col) packed
  std::uint64_t drops_ = 0;
};

/// Converts the next matching write into a read and swallows the
/// response. Defeated only by the even/odd counter discipline (§III-B).
class WriteToReadInterposer : public TrackingInterposer {
 public:
  void arm(unsigned rank, unsigned bg, unsigned bank, unsigned col);
  bool convert_write_to_read(const WriteCmd& cmd) override;

 private:
  std::optional<std::uint64_t> target_;
};

/// Flips chosen bits on the wire (models both natural faults and crude
/// active tampering).
class BitFlipInterposer : public BusInterposer {
 public:
  enum class Field { kWriteData, kWriteEmac, kWriteCrc, kReadData, kReadEmac };
  void arm(Field field, unsigned bit);

  bool on_write(WriteCmd& cmd) override;
  bool on_read_resp(const ReadCmd& cmd, ReadResp& resp) override;

 private:
  std::optional<Field> field_;
  unsigned bit_ = 0;
};

/// On-DIMM adversary (malicious DIMM / interconnect trojan): records and
/// replays (data, MAC-lane) pairs *inside* the module, between the buffer
/// chips and the DRAM chips. Against the untrusted-DIMM design the lane
/// carries E-MACs and the replay is caught; against the trusted-DIMM
/// design it carries plaintext MACs and the replay succeeds — the §VI-C
/// argument for putting the logic in the ECC chip.
class OnDimmReplayInterposer : public OnDimmInterposer {
 public:
  /// Replays the first recorded pair for `line_key` into later reads.
  void arm(unsigned rank, std::uint64_t line_key);

  void on_inner_write(unsigned rank, std::uint64_t line_key, CacheLine& data,
                      std::uint64_t& mac) override;
  void on_inner_read(unsigned rank, std::uint64_t line_key, CacheLine& data,
                     std::uint64_t& mac) override;

  std::uint64_t replays_performed() const { return replays_; }

 private:
  struct Pair {
    CacheLine data;
    std::uint64_t mac;
  };
  std::unordered_map<std::uint64_t, std::deque<Pair>> seen_;
  std::optional<std::pair<unsigned, std::uint64_t>> target_;
  std::uint64_t replays_ = 0;
};

}  // namespace secddr::core
