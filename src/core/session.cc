#include "core/session.h"

#include <cassert>

namespace secddr::core {

std::unique_ptr<SecureMemorySession> SecureMemorySession::create(
    const SessionConfig& config, std::string* failure) {
  // Cannot use std::make_unique with the private constructor.
  std::unique_ptr<SecureMemorySession> s(new SecureMemorySession());
  s->config_ = config;
  s->ca_ = std::make_unique<crypto::CertificateAuthority>(*config.group,
                                                          config.seed ^ 0xCA);
  s->dimm_ = std::make_unique<Dimm>(config.dimm, config.module_id,
                                    *config.group, config.seed ^ 0xD1);
  s->dimm_->provision(*s->ca_);
  s->controller_ = std::make_unique<MemoryController>(
      config.encryption, s->bus_, *s->dimm_, config.seed ^ 0xC0,
      config.dimm.ewcrc_enabled);
  s->attestation_ = std::make_unique<AttestationDriver>(
      *config.group, *s->ca_, config.seed ^ 0xA7, config.monotonic_counters);

  if (!s->attest_all(failure)) return nullptr;
  if (config.clear_memory) s->clear_data_region();
  return s;
}

bool SecureMemorySession::attest_all(std::string* failure) {
  for (unsigned r = 0; r < config_.dimm.geometry.ranks; ++r) {
    const AttestationResult res = attestation_->attest_rank(*dimm_, r);
    if (!res.ok) {
      if (failure) *failure = "rank " + std::to_string(r) + ": " + res.failure;
      return false;
    }
    controller_->install_keys(r, res.kt, res.c0);
  }
  return true;
}

void SecureMemorySession::clear_data_region() {
  const CacheLine zero{};
  for (Addr a = 0; a < capacity(); a += kLineSize) {
    const Violation v = controller_->write_line(a, zero);
    assert(v == Violation::kNone);
    (void)v;
  }
}

Violation SecureMemorySession::write(Addr addr, const CacheLine& plaintext) {
  assert(!asleep_ && "no traffic while suspended");
  return controller_->write_line(addr, plaintext);
}

MemoryController::ReadResult SecureMemorySession::read(Addr addr) {
  assert(!asleep_ && "no traffic while suspended");
  return controller_->read_line(addr);
}

bool SecureMemorySession::reattest(bool clear_memory) {
  std::string failure;
  if (!attest_all(&failure)) return false;
  if (clear_memory) clear_data_region();
  return true;
}

}  // namespace secddr::core
