// Functional DIMM model: RCD (per-bank open-row routing), data chips,
// and the per-rank ECC chip that hosts SecDDR's security logic
// (paper §III-E, Fig. 5). A trusted-DIMM variant places the logic in the
// ECC data buffer instead (§VI-C, Fig. 11) — functionally identical on a
// benign channel, but the on-DIMM interconnect then carries plaintext
// MACs, which the attack tests exploit exactly as the paper argues.
//
// The ECC chip's security logic is intentionally tiny (matching the
// paper's cost argument): a key register, a counter, an AES unit for the
// pads, and a CRC checker. There is no memory-side MAC verification.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/bus.h"
#include "core/emac.h"
#include "crypto/cert.h"
#include "crypto/dh.h"
#include "crypto/schnorr.h"
#include "dram/timings.h"

namespace secddr::core {

/// Where the DIMM-side security logic lives.
enum class LogicPlacement {
  kEccChip,        ///< untrusted DIMM: logic on the DRAM die (Fig. 5)
  kEccDataBuffer,  ///< trusted DIMM: logic in the ECC DB (Fig. 11)
};

struct DimmConfig {
  dram::Geometry geometry{.ranks = 2,
                          .bank_groups = 4,
                          .banks_per_group = 4,
                          .rows_per_bank = 256,
                          .columns_per_row = 64};
  LogicPlacement placement = LogicPlacement::kEccChip;
  /// When false, models SecDDR *without* AI-ECC's write CRC: devices store
  /// whatever burst arrives. Used to demonstrate the Fig. 3 stale-data
  /// attack that motivates the encrypted eWCRC.
  bool ewcrc_enabled = true;
  /// §VIII extension: XOR-encrypt bank-group/bank/row/column fields on
  /// the bus with a synchronized command-counter pad so the channel is
  /// traffic-oblivious (an on-bus observer cannot link commands to
  /// addresses). The rank stays plaintext (chip select is physical).
  bool cca_obfuscation = false;
  /// Rank-level SEC-DED ECC over stored data (64-bit words): natural
  /// single-bit faults are corrected on the device before the data (and
  /// its MAC) ever reach the bus — the reliability half of placing MACs
  /// in the ECC chips (§II-B).
  bool secded_enabled = false;
};

class Dimm {
 public:
  Dimm(const DimmConfig& config, std::string module_id,
       const crypto::DhGroup& group, std::uint64_t seed);

  // ---- Vendor provisioning & attestation (per rank, §III-F) ----

  /// Generates per-rank endorsement keypairs and obtains certificates.
  void provision(crypto::CertificateAuthority& ca);
  const crypto::Certificate& certificate(unsigned rank) const;

  struct KxResponse {
    crypto::BigUInt pub;          ///< device's DH public value
    crypto::SchnorrSignature sig; ///< endorsement signature over transcript
  };
  /// Runs the device side of the signed key exchange and installs Kt.
  KxResponse key_exchange(unsigned rank, const crypto::BigUInt& processor_pub);

  /// Installs the initial transaction counter (sent in plaintext; §III-F).
  void set_transaction_counter(unsigned rank, std::uint64_t c0);
  std::uint64_t transaction_counter(unsigned rank) const;
  bool keys_established(unsigned rank) const;

  // ---- DDR protocol ----

  void activate(const ActivateCmd& cmd);
  WriteStatus write(const WriteCmd& cmd);
  /// Returns nullopt if the target bank has no open row.
  std::optional<ReadResp> read(const ReadCmd& cmd);

  // ---- Attack-framework support ----

  void set_on_dimm_interposer(OnDimmInterposer* interposer) {
    on_dimm_ = interposer;
  }

  /// Full device state (arrays + counters + open rows), for
  /// DIMM-substitution / cold-boot experiments and for the fuzzer's
  /// restore-to-pristine-state executor. Keys survive (they are in
  /// silicon).
  struct Snapshot {
    std::vector<std::unordered_map<std::uint64_t, CacheLine>> data;
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> macs;
    std::vector<std::uint64_t> counters;
    std::vector<std::uint64_t> cmd_counters;  ///< CCA-obfuscation pads
    std::vector<std::int64_t> open_rows;
    std::uint64_t ecc_corrections = 0;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

  const DimmConfig& config() const { return config_; }
  const std::string& module_id() const { return module_id_; }

  /// Raw array peek for white-box tests (returns false if never written).
  bool peek_line(unsigned rank, std::uint64_t line_key, CacheLine* data,
                 std::uint64_t* mac) const;

  /// Fault injection: flips one stored data bit (models a soft error or
  /// a disturbance fault). Returns false if the line was never written.
  bool inject_fault(unsigned rank, std::uint64_t line_key, unsigned bit);
  /// Flips one bit of a stored MAC in the ECC-chip array (disturbance
  /// fault on the metadata chips). Returns false if never written.
  bool inject_mac_fault(unsigned rank, std::uint64_t line_key, unsigned bit);
  /// Single-bit errors corrected by the on-device SEC-DED logic.
  std::uint64_t ecc_corrections() const { return ecc_corrections_; }

  /// The device-array key for a DRAM coordinate (public so attackers /
  /// the fuzzer can aim inject_fault at computed neighbors).
  std::uint64_t line_key_for(unsigned bg, unsigned bank, std::uint64_t row,
                             unsigned col) const {
    return line_key(bg, bank, row, col);
  }
  /// Currently open row of a bank (-1 when closed) — oracle ground truth.
  std::int64_t open_row_state(unsigned rank, unsigned bg, unsigned bank) const {
    const auto& g = config_.geometry;
    return open_rows_[(static_cast<std::size_t>(rank) * g.bank_groups + bg) *
                          g.banks_per_group +
                      bank];
  }

 private:
  struct RankState {
    std::unordered_map<std::uint64_t, CacheLine> data;  ///< data-chip arrays
    std::unordered_map<std::uint64_t, std::uint64_t> macs;  ///< ECC chip array
    /// SEC-DED check bytes, one per 64-bit word of the line.
    std::unordered_map<std::uint64_t, std::array<std::uint8_t, 8>> ecc;
    std::optional<EmacEngine> emac;  ///< installed after key exchange
    crypto::SchnorrKeyPair endorsement;
    crypto::Certificate cert;
    bool provisioned = false;
  };

  std::uint64_t line_key(unsigned bg, unsigned bank, std::uint64_t row,
                         unsigned col) const;
  std::int64_t& open_row(unsigned rank, unsigned bg, unsigned bank);
  WriteAddress observed_address(unsigned rank, unsigned bg, unsigned bank,
                                unsigned col) const;

  /// Stores a line (computing ECC when enabled) / loads with correction.
  void store_line(RankState& rs, std::uint64_t key, const CacheLine& data);
  CacheLine load_line(RankState& rs, std::uint64_t key);

  DimmConfig config_;
  std::string module_id_;
  const crypto::DhGroup& group_;
  Xoshiro256 rng_;
  std::vector<RankState> ranks_;
  std::vector<std::int64_t> open_rows_;  ///< per (rank, bg, bank)
  OnDimmInterposer* on_dimm_ = nullptr;
  std::uint64_t ecc_corrections_ = 0;
};

}  // namespace secddr::core
