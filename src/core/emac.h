// E-MAC engine: the heart of SecDDR (paper §III-A).
//
// Data MACs protect data at rest; to also protect them in motion the MAC
// is XORed with a one-time pad derived from the shared transaction key Kt
// and a per-rank transaction counter Ct that both ends increment on every
// transaction and never store on the bus. Reads consume even counter
// values and writes odd ones (§III-B). We realize that rule with
// asymmetric advancement — a read uses Ct and advances it by 2, a write
// uses Ct+1 and advances it by 4 — so that converting a write command
// into a read leaves the two ends permanently offset (a read consumed 2
// where a write should have consumed 4) and every later read fails
// verification. A symmetric "round up to the right parity" rule would
// quietly re-synchronize one transaction later and never detect the
// conversion.
//
// One engine instance lives in the processor's memory controller and one
// in the ECC chip (or ECC data buffer, for trusted DIMMs) of each rank.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "crypto/aes.h"
#include "crypto/cmac.h"

namespace secddr::core {

/// Direction of a transaction; determines counter parity.
enum class Dir : std::uint8_t { kRead = 0, kWrite = 1 };

class EmacEngine {
 public:
  /// `kt` is the transaction key agreed during attestation; `rank`
  /// separates the pads of independent per-rank channels.
  EmacEngine(const crypto::Key128& kt, unsigned rank,
             std::uint64_t initial_counter = 0);

  /// Consumes and returns the counter value for the next transaction in
  /// the given direction (even for reads, odd for writes).
  std::uint64_t next_counter(Dir dir);

  /// The counter value next_counter(dir) would return, without consuming.
  std::uint64_t peek_counter(Dir dir) const;

  /// Raw counter state (for attestation / substitution analysis).
  /// The stored counter is always even; set_counter normalizes.
  std::uint64_t counter() const { return ctr_; }
  void set_counter(std::uint64_t v) { ctr_ = v + (v & 1); }

  /// 64-bit one-time pad for transaction counter `c`: AES_Kt(c, rank, 'T').
  std::uint64_t otp(std::uint64_t c) const;

  /// E-MAC = MAC xor OTPt. Encryption and decryption are the same XOR.
  std::uint64_t encrypt_mac(std::uint64_t mac, std::uint64_t c) const {
    return mac ^ otp(c);
  }
  std::uint64_t decrypt_mac(std::uint64_t emac, std::uint64_t c) const {
    return emac ^ otp(c);
  }

  /// 16-bit pad for the ECC chip's encrypted eWCRC. Unlike OTPt it also
  /// binds the write address, so a redirected Activate/column garbles the
  /// decrypted CRC with overwhelming probability (§III-B).
  std::uint16_t otp_w(std::uint64_t c, std::uint64_t address_code) const;

  /// Pad for CCCA obfuscation (the paper's §VIII extension: "encrypt the
  /// address and command for traffic obliviousness"). A separate command
  /// counter advances once per DDR command on both ends; command/address
  /// fields are XORed with this pad on the bus. A dropped or injected
  /// command desynchronizes the stream and garbles every later decode.
  std::uint64_t next_cmd_pad();
  std::uint64_t cmd_counter() const { return cmd_ctr_; }
  /// Raw command-counter state (snapshot/restore of engine state).
  void set_cmd_counter(std::uint64_t v) { cmd_ctr_ = v; }

  unsigned rank() const { return rank_; }

 private:
  crypto::Aes aes_;
  unsigned rank_;
  std::uint64_t ctr_;
  std::uint64_t cmd_ctr_ = 0;
};

/// Processor-side data MAC: CMAC_Kmac(addr || ciphertext), truncated to
/// 64 bits (the ECC-chip MAC budget). Only the processor ever verifies it.
class MacEngine {
 public:
  explicit MacEngine(const crypto::Key128& kmac) : cmac_(kmac) {}

  std::uint64_t compute(Addr addr, const CacheLine& ciphertext) const;

 private:
  crypto::Cmac cmac_;
};

}  // namespace secddr::core
