#include "baseline/integrity_tree.h"

#include <cassert>
#include <cstring>

#include "common/bitops.h"

namespace secddr::baseline {

IntegrityTree::IntegrityTree(const TreeConfig& config)
    : config_(config), cmac_(config.mac_key), data_aes_(config.data_key) {
  assert(config.arity >= 2);
  mem_.data.resize(config.lines);
  mem_.line_macs.resize(config.lines);
  mem_.counters.assign(config.lines, 0);

  // Build levels bottom-up until a single group remains under the root.
  std::uint64_t count = config.lines;
  while (count > config_.arity) {
    count = ceil_div(count, config_.arity);
    mem_.levels.emplace_back(count, 0);
  }
  // Initialize hashes over the all-zero counters.
  for (std::uint64_t i = 0; i < (mem_.levels.empty()
                                     ? 0
                                     : mem_.levels[0].size());
       ++i)
    mem_.levels[0][i] = hash_group(0, i);
  for (std::size_t l = 1; l < mem_.levels.size(); ++l)
    for (std::uint64_t i = 0; i < mem_.levels[l].size(); ++i)
      mem_.levels[l][i] = hash_group(static_cast<unsigned>(l), i);
  root_ = hash_group(static_cast<unsigned>(mem_.levels.size()), 0);
  // Initial state: properly encrypted zero lines, sealed with MACs
  // (a boot-time memory clear, §III-F).
  const CacheLine zero{};
  for (std::uint64_t i = 0; i < config.lines; ++i) {
    mem_.data[i] = crypt(i, 0, zero);
    mem_.line_macs[i] = line_mac(i, mem_.data[i], 0);
  }
}

std::uint64_t IntegrityTree::hash_group(unsigned level,
                                        std::uint64_t group_index) const {
  // Hash of one group of `arity` children: counters at level 0, child
  // node hashes above.
  std::vector<std::uint8_t> msg;
  msg.reserve(10 + config_.arity * 8);
  msg.push_back(static_cast<std::uint8_t>(level));
  std::uint8_t gi[8];
  store_le64(gi, group_index);
  msg.insert(msg.end(), gi, gi + 8);
  const std::uint64_t first = group_index * config_.arity;
  for (unsigned k = 0; k < config_.arity; ++k) {
    const std::uint64_t child = first + k;
    std::uint64_t v = 0;
    if (level == 0) {
      if (child < mem_.counters.size()) v = mem_.counters[child];
    } else {
      const auto& below = mem_.levels[level - 1];
      if (child < below.size()) v = below[child];
    }
    std::uint8_t b[8];
    store_le64(b, v);
    msg.insert(msg.end(), b, b + 8);
  }
  return cmac_.tag64(msg.data(), msg.size());
}

std::uint64_t IntegrityTree::line_mac(std::uint64_t index, const CacheLine& ct,
                                      std::uint64_t counter) const {
  std::uint8_t msg[16 + kLineSize];
  store_le64(msg, index);
  store_le64(msg + 8, counter);
  std::memcpy(msg + 16, ct.bytes.data(), kLineSize);
  return cmac_.tag64(msg, sizeof msg);
}

CacheLine IntegrityTree::crypt(std::uint64_t index, std::uint64_t counter,
                               const CacheLine& in) const {
  CacheLine out = in;
  crypto::Block nonce = crypto::make_nonce(index, 'B', 0);
  for (int i = 0; i < 4; ++i)
    nonce[12 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
  crypto::ctr_xcrypt(data_aes_, nonce, out.bytes.data(), out.bytes.size());
  return out;
}

void IntegrityTree::update_path(std::uint64_t index) {
  unsigned touched = 1;  // the counter itself
  std::uint64_t group = index / config_.arity;
  for (std::size_t l = 0; l < mem_.levels.size(); ++l) {
    mem_.levels[l][group] = hash_group(static_cast<unsigned>(l), group);
    group /= config_.arity;
    ++touched;
  }
  root_ = hash_group(static_cast<unsigned>(mem_.levels.size()), 0);
  ++touched;
  last_nodes_touched_ = touched;
}

bool IntegrityTree::verify_path(std::uint64_t index) {
  // Recompute each group hash along the path and compare against the
  // stored parent; the final comparison is against the on-chip root.
  unsigned touched = 1;
  std::uint64_t group = index / config_.arity;
  for (std::size_t l = 0; l < mem_.levels.size(); ++l) {
    ++touched;
    if (hash_group(static_cast<unsigned>(l), group) != mem_.levels[l][group]) {
      last_nodes_touched_ = touched;
      return false;
    }
    group /= config_.arity;
  }
  ++touched;
  last_nodes_touched_ = touched;
  return hash_group(static_cast<unsigned>(mem_.levels.size()), 0) == root_;
}

void IntegrityTree::write(std::uint64_t index, const CacheLine& plaintext) {
  assert(index < config_.lines);
  const std::uint64_t counter = ++mem_.counters[index];
  const CacheLine ct = crypt(index, counter, plaintext);
  mem_.data[index] = ct;
  mem_.line_macs[index] = line_mac(index, ct, counter);
  update_path(index);
}

IntegrityTree::ReadResult IntegrityTree::read(std::uint64_t index) {
  assert(index < config_.lines);
  ReadResult r;
  const CacheLine& ct = mem_.data[index];
  const std::uint64_t counter = mem_.counters[index];
  if (mem_.line_macs[index] != line_mac(index, ct, counter)) return r;
  if (!verify_path(index)) return r;  // stale or tampered counter
  r.ok = true;
  r.data = crypt(index, counter, ct);
  return r;
}

}  // namespace secddr::baseline
