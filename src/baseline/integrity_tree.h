// Functional counter-based integrity tree — the baseline defense SecDDR
// replaces (paper §II-C3).
//
// An SGX/TDX-style tree over per-line encryption counters: each data line
// is encrypted with a per-line counter and guarded by a MAC that binds
// (index, ciphertext, counter); the counters are protected by an N-ary
// hash tree whose root never leaves the processor. Every field the tree
// reads from untrusted memory is exposed through `UntrustedMemory` so
// tests can mount at-rest replay attacks and show the tree catching them
// — the protection SecDDR instead gets from counter-encrypted MACs plus
// the physical impracticality of in-package array writes.
//
// The per-operation `nodes_touched` counter makes the paper's motivation
// quantitative: traversal cost grows with capacity and shrinks with
// arity, which is exactly the Fig. 8 trade-off.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "crypto/aes_ctr.h"
#include "crypto/cmac.h"

namespace secddr::baseline {

struct TreeConfig {
  unsigned arity = 8;
  std::uint64_t lines = 4096;  ///< protected data lines
  crypto::Key128 mac_key{1, 2, 3, 4};
  crypto::Key128 data_key{5, 6, 7, 8};
};

class IntegrityTree {
 public:
  explicit IntegrityTree(const TreeConfig& config);

  /// Everything an adversary with DRAM access can see and modify.
  struct UntrustedMemory {
    std::vector<CacheLine> data;            ///< ciphertext lines
    std::vector<std::uint64_t> line_macs;   ///< MAC(idx, ct, counter)
    std::vector<std::uint64_t> counters;    ///< per-line write counters
    /// Hash-tree levels over the counters, bottom-up; the root lives on
    /// chip and is NOT here.
    std::vector<std::vector<std::uint64_t>> levels;
  };

  /// Encrypts and stores a line, updating the path to the root.
  void write(std::uint64_t index, const CacheLine& plaintext);

  struct ReadResult {
    bool ok = false;
    CacheLine data;
  };
  /// Verifies MAC + full tree path, then decrypts. ok=false on any
  /// integrity or freshness violation.
  ReadResult read(std::uint64_t index);

  /// The attacker's view (mutable!).
  UntrustedMemory& memory() { return mem_; }

  /// Tree nodes (all levels incl. leaf counters) touched by the last
  /// read or write — the traversal cost SecDDR eliminates.
  unsigned last_nodes_touched() const { return last_nodes_touched_; }
  unsigned tree_depth() const { return static_cast<unsigned>(mem_.levels.size()); }

 private:
  std::uint64_t hash_group(unsigned level, std::uint64_t group_index) const;
  void update_path(std::uint64_t index);
  bool verify_path(std::uint64_t index);
  std::uint64_t line_mac(std::uint64_t index, const CacheLine& ct,
                         std::uint64_t counter) const;
  CacheLine crypt(std::uint64_t index, std::uint64_t counter,
                  const CacheLine& in) const;

  TreeConfig config_;
  crypto::Cmac cmac_;
  crypto::Aes data_aes_;
  UntrustedMemory mem_;
  std::uint64_t root_ = 0;  ///< on-chip, tamper-proof
  unsigned last_nodes_touched_ = 0;
};

}  // namespace secddr::baseline
