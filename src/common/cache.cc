#include "common/cache.h"

#include <cassert>

#include "common/bitops.h"

namespace secddr {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes, unsigned assoc)
    : sets_count_(size_bytes / (static_cast<std::uint64_t>(assoc) * kLineSize)),
      assoc_(assoc),
      ways_(sets_count_ * assoc) {
  assert(sets_count_ > 0);
  assert(size_bytes % (static_cast<std::uint64_t>(assoc) * kLineSize) == 0);
}

SetAssocCache::Way* SetAssocCache::find(Addr addr) {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[set * assoc_];
  for (unsigned w = 0; w < assoc_; ++w)
    if (base[w].valid && base[w].tag == tag) return &base[w];
  return nullptr;
}

const SetAssocCache::Way* SetAssocCache::find(Addr addr) const {
  return const_cast<SetAssocCache*>(this)->find(addr);
}

bool SetAssocCache::probe(Addr addr) const { return find(addr) != nullptr; }

SetAssocCache::Result SetAssocCache::fill(Addr addr, bool dirty) {
  const std::uint64_t set = set_of(addr);
  Way* base = &ways_[set * assoc_];
  Way* victim = &base[0];
  for (unsigned w = 0; w < assoc_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  Result r;
  if (victim->valid) {
    r.evicted = true;
    r.victim_addr = addr_of(set, victim->tag);
    r.victim_dirty = victim->dirty;
    ++stats_.evictions;
    if (victim->dirty) ++stats_.dirty_evictions;
  }
  victim->valid = true;
  victim->dirty = dirty;
  victim->tag = tag_of(addr);
  victim->lru = ++lru_clock_;
  return r;
}

SetAssocCache::Result SetAssocCache::access(Addr addr, bool mark_dirty) {
  ++stats_.accesses;
  if (Way* w = find(addr)) {
    w->lru = ++lru_clock_;
    w->dirty = w->dirty || mark_dirty;
    Result r;
    r.hit = true;
    return r;
  }
  ++stats_.misses;
  return fill(addr, mark_dirty);
}

SetAssocCache::Result SetAssocCache::install(Addr addr, bool dirty) {
  if (Way* w = find(addr)) {
    w->lru = ++lru_clock_;
    w->dirty = w->dirty || dirty;
    Result r;
    r.hit = true;
    return r;
  }
  return fill(addr, dirty);
}

bool SetAssocCache::touch(Addr addr, bool mark_dirty) {
  if (Way* w = find(addr)) {
    w->lru = ++lru_clock_;
    w->dirty = w->dirty || mark_dirty;
    return true;
  }
  return false;
}

bool SetAssocCache::invalidate(Addr addr) {
  if (Way* w = find(addr)) {
    const bool dirty = w->dirty;
    w->valid = false;
    w->dirty = false;
    return dirty;
  }
  return false;
}

void SetAssocCache::flush_all() {
  for (auto& w : ways_) {
    w.valid = false;
    w.dirty = false;
  }
}

}  // namespace secddr
