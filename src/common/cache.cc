#include "common/cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/bitops.h"

namespace secddr {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes, unsigned assoc)
    : sets_count_(size_bytes / (static_cast<std::uint64_t>(assoc) * kLineSize)),
      assoc_(assoc),
      full_mask_(assoc >= 32 ? ~0u : (1u << assoc) - 1u),
      tags_(sets_count_ * assoc),
      lru_(sets_count_ * assoc),
      valid_(sets_count_, 0),
      dirty_(sets_count_, 0) {
  // The per-set way bitmasks are 32 bits; fail loudly in Release too —
  // a silent UB shift would corrupt hit/victim decisions in an
  // associativity sweep instead of stopping it.
  if (assoc < 1 || assoc > 32) {
    std::fprintf(stderr,
                 "SetAssocCache: associativity %u unsupported (1..32)\n",
                 assoc);
    std::abort();
  }
  assert(sets_count_ > 0);
  assert(size_bytes % (static_cast<std::uint64_t>(assoc) * kLineSize) == 0);
}

bool SetAssocCache::probe(Addr addr) const {
  return find_way(set_of(addr), tag_of(addr)) >= 0;
}

SetAssocCache::Result SetAssocCache::fill(Addr addr, bool dirty) {
  const std::uint64_t set = set_of(addr);
  const std::uint32_t mask = valid_[set];
  unsigned victim;
  if (mask != full_mask_) {
    // First invalid way in index order (as the AoS loop picked).
    victim = static_cast<unsigned>(std::countr_one(mask));
  } else {
    // Oldest LRU stamp; strict < keeps the lowest index on ties.
    const std::uint64_t* l = &lru_[set * assoc_];
    victim = 0;
    for (unsigned w = 1; w < assoc_; ++w)
      if (l[w] < l[victim]) victim = w;
  }
  Result r;
  const std::uint32_t bit = 1u << victim;
  if ((mask & bit) != 0) {
    r.evicted = true;
    r.victim_addr = addr_of(set, tags_[set * assoc_ + victim]);
    r.victim_dirty = (dirty_[set] & bit) != 0;
    ++stats_.evictions;
    if (r.victim_dirty) ++stats_.dirty_evictions;
  }
  valid_[set] |= bit;
  if (dirty)
    dirty_[set] |= bit;
  else
    dirty_[set] &= ~bit;
  tags_[set * assoc_ + victim] = tag_of(addr);
  lru_[set * assoc_ + victim] = ++lru_clock_;
  return r;
}

SetAssocCache::Result SetAssocCache::access(Addr addr, bool mark_dirty) {
  ++stats_.accesses;
  const std::uint64_t set = set_of(addr);
  const int w = find_way(set, tag_of(addr));
  if (w >= 0) {
    lru_[set * assoc_ + static_cast<unsigned>(w)] = ++lru_clock_;
    if (mark_dirty) dirty_[set] |= 1u << static_cast<unsigned>(w);
    Result r;
    r.hit = true;
    return r;
  }
  ++stats_.misses;
  return fill(addr, mark_dirty);
}

SetAssocCache::Result SetAssocCache::install(Addr addr, bool dirty) {
  const std::uint64_t set = set_of(addr);
  const int w = find_way(set, tag_of(addr));
  if (w >= 0) {
    lru_[set * assoc_ + static_cast<unsigned>(w)] = ++lru_clock_;
    if (dirty) dirty_[set] |= 1u << static_cast<unsigned>(w);
    Result r;
    r.hit = true;
    return r;
  }
  return fill(addr, dirty);
}

bool SetAssocCache::touch(Addr addr, bool mark_dirty) {
  const std::uint64_t set = set_of(addr);
  const int w = find_way(set, tag_of(addr));
  if (w < 0) return false;
  lru_[set * assoc_ + static_cast<unsigned>(w)] = ++lru_clock_;
  if (mark_dirty) dirty_[set] |= 1u << static_cast<unsigned>(w);
  return true;
}

bool SetAssocCache::invalidate(Addr addr) {
  const std::uint64_t set = set_of(addr);
  const int w = find_way(set, tag_of(addr));
  if (w < 0) return false;
  const std::uint32_t bit = 1u << static_cast<unsigned>(w);
  const bool was_dirty = (dirty_[set] & bit) != 0;
  valid_[set] &= ~bit;
  dirty_[set] &= ~bit;
  return was_dirty;
}

void SetAssocCache::flush_all() {
  std::fill(valid_.begin(), valid_.end(), 0u);
  std::fill(dirty_.begin(), dirty_.end(), 0u);
}

void SetAssocCache::save(serial::Sink& s) const {
  s.u64(sets_count_);
  s.u32(assoc_);
  for (const std::uint64_t t : tags_) s.u64(t);
  for (const std::uint64_t l : lru_) s.u64(l);
  for (const std::uint32_t v : valid_) s.u32(v);
  for (const std::uint32_t d : dirty_) s.u32(d);
  s.u64(lru_clock_);
  s.u64(stats_.accesses);
  s.u64(stats_.misses);
  s.u64(stats_.evictions);
  s.u64(stats_.dirty_evictions);
}

void SetAssocCache::load(serial::Source& s) {
  if (s.u64() != sets_count_ || s.u32() != assoc_)
    throw std::runtime_error("cache geometry mismatch");
  for (std::uint64_t& t : tags_) t = s.u64();
  for (std::uint64_t& l : lru_) l = s.u64();
  for (std::uint32_t& v : valid_) v = s.u32();
  for (std::uint32_t& d : dirty_) d = s.u32();
  lru_clock_ = s.u64();
  stats_.accesses = s.u64();
  stats_.misses = s.u64();
  stats_.evictions = s.u64();
  stats_.dirty_evictions = s.u64();
}

}  // namespace secddr
