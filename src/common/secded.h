// Hamming SEC-DED (single-error-correct, double-error-detect) code for
// 64-bit words — the rank-level ECC whose storage the paper's baseline
// (TDX/SafeGuard style) shares with the MACs in the ECC chips.
//
// The functional DIMM can apply this code to stored data so that natural
// single-bit faults are corrected transparently *before* MAC
// verification: reliability and integrity protection coexist, which is
// the premise of placing MACs in the ECC chips at all (§II-B).
#pragma once

#include <cstdint>

namespace secddr {

/// Check byte for a 64-bit word: 7 Hamming bits + 1 overall parity.
std::uint8_t secded_encode(std::uint64_t data);

enum class SecdedStatus {
  kOk,             ///< no error
  kCorrected,      ///< single-bit error corrected (data or check bit)
  kUncorrectable,  ///< double-bit error detected
};

/// Checks and corrects `data` (and `check`) in place.
SecdedStatus secded_decode(std::uint64_t& data, std::uint8_t& check);

}  // namespace secddr
