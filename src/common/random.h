// Deterministic, fast PRNG (xoshiro256**) used by workload generators,
// property tests, and nonce generation in the functional crypto stack.
#pragma once

#include <cstdint>

namespace secddr {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms; never use std::rand in this codebase.
class Xoshiro256 {
 public:
  /// Seeds the state via SplitMix64 so that any 64-bit seed is acceptable.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next 64 uniformly random bits.
  std::uint64_t next();

  /// Uniform value in [0, bound); bound must be non-zero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Geometric-ish positive integer with the given mean (>= 1).
  std::uint64_t next_geometric(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace secddr
