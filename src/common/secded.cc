#include "common/secded.h"

#include <bit>

namespace secddr {
namespace {

// Code word layout: positions 1..71; power-of-two positions hold the
// Hamming check bits, the rest hold the 64 data bits in order. Position 0
// (bit 7 of the check byte) holds the overall parity for DED.

constexpr bool is_pow2_pos(unsigned p) { return (p & (p - 1)) == 0; }

// Data bit index (0..63) for each non-power-of-two position 3..71.
constexpr int data_index_of_position(unsigned pos) {
  int idx = 0;
  for (unsigned p = 3; p < pos; ++p)
    if (!is_pow2_pos(p)) ++idx;
  return idx;
}

// Hamming syndrome over the code word with data bits placed.
std::uint8_t hamming_bits(std::uint64_t data) {
  std::uint8_t syndrome = 0;
  for (unsigned pos = 3; pos <= 71; ++pos) {
    if (is_pow2_pos(pos)) continue;
    const int idx = data_index_of_position(pos);
    if ((data >> idx) & 1) syndrome ^= static_cast<std::uint8_t>(pos);
  }
  return syndrome;  // bits 0..6 = check bits c1,c2,c4,...,c64
}

}  // namespace

std::uint8_t secded_encode(std::uint64_t data) {
  const std::uint8_t hamming = hamming_bits(data) & 0x7F;
  // Overall parity covers data + the 7 hamming bits.
  const unsigned ones =
      static_cast<unsigned>(std::popcount(data)) +
      static_cast<unsigned>(std::popcount(static_cast<unsigned>(hamming)));
  const std::uint8_t parity = static_cast<std::uint8_t>(ones & 1);
  return static_cast<std::uint8_t>(hamming | (parity << 7));
}

SecdedStatus secded_decode(std::uint64_t& data, std::uint8_t& check) {
  const std::uint8_t stored_hamming = check & 0x7F;
  const std::uint8_t stored_parity = static_cast<std::uint8_t>(check >> 7);
  const std::uint8_t computed_hamming = hamming_bits(data) & 0x7F;
  const std::uint8_t syndrome = stored_hamming ^ computed_hamming;

  const unsigned ones =
      static_cast<unsigned>(std::popcount(data)) +
      static_cast<unsigned>(std::popcount(static_cast<unsigned>(stored_hamming)));
  const bool parity_ok = (ones & 1) == stored_parity;

  if (syndrome == 0 && parity_ok) return SecdedStatus::kOk;

  if (!parity_ok) {
    // Odd number of flipped bits: single-bit error, correctable.
    if (syndrome == 0) {
      // The overall parity bit itself flipped.
      check ^= 0x80;
      return SecdedStatus::kCorrected;
    }
    if (is_pow2_pos(syndrome)) {
      // A Hamming check bit flipped.
      check ^= syndrome;
      return SecdedStatus::kCorrected;
    }
    if (syndrome >= 3 && syndrome <= 71) {
      data ^= 1ull << data_index_of_position(syndrome);
      return SecdedStatus::kCorrected;
    }
    return SecdedStatus::kUncorrectable;  // syndrome out of range
  }
  // Parity consistent but syndrome non-zero: even number of flips.
  return SecdedStatus::kUncorrectable;
}

}  // namespace secddr
