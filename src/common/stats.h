// Aggregation helpers for benchmark harnesses and simulator statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace secddr {

/// Arithmetic mean of `v`; 0 for empty input.
double mean(const std::vector<double>& v);

/// Geometric mean of `v`; all entries must be positive. 0 for empty input.
double geomean(const std::vector<double>& v);

/// Welford running mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ratio as a percentage string with one decimal, e.g. "18.8%".
std::string percent(double ratio);

}  // namespace secddr
