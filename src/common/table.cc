#include "common/table.h"

#include <cstdio>
#include <sstream>

namespace secddr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      os << cell;
      if (c + 1 < headers_.size())
        os << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace secddr
