#include "common/random.h"

#include <cassert>
#include <cmath>

namespace secddr {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  assert(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_geometric(double mean) {
  assert(mean >= 1.0);
  // Inverse-CDF sampling of a geometric distribution with the given mean.
  const double p = 1.0 / mean;
  const double u = next_double();
  const double v = std::log1p(-u) / std::log1p(-p);
  const std::uint64_t k = static_cast<std::uint64_t>(v) + 1;
  return k == 0 ? 1 : k;
}

}  // namespace secddr
