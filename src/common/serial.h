// Byte-exact little-endian serialization primitives for durable
// checkpoints (fleet/checkpoint.h) and the worker-pipe wire format.
//
// Sink appends fixed-width little-endian fields to a growing byte
// buffer; Source reads them back with bounds checking. Every component
// with mutable simulation state exposes save(Sink&) / load(Source&)
// hooks built on these; the container format (magic/version/CRC blocks)
// lives in fleet/checkpoint.h, keeping this layer dependency-free.
//
// Source throws std::runtime_error on underrun or a corrupt element
// count; the checkpoint codec catches and rewraps it with file/offset
// context. Doubles travel as their IEEE-754 bit patterns, so restored
// statistics are bit-identical, not merely close.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace secddr::serial {

class Sink {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Source {
 public:
  Source(const std::uint8_t* data, std::size_t n) : p_(data), end_(data + n) {}
  explicit Source(const std::vector<std::uint8_t>& v)
      : Source(v.data(), v.size()) {}

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }
  bool b() { return u8() != 0; }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = static_cast<std::uint32_t>(p_[0]) |
                            static_cast<std::uint32_t>(p_[1]) << 8 |
                            static_cast<std::uint32_t>(p_[2]) << 16 |
                            static_cast<std::uint32_t>(p_[3]) << 24;
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | static_cast<std::uint64_t>(u32()) << 32;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  void bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, p_, n);
    p_ += n;
  }

  /// Reads an element count and validates it against the bytes actually
  /// left (each element occupies >= `min_bytes_per_item`), so a corrupt
  /// count can never trigger a pathological allocation.
  std::size_t count(std::size_t min_bytes_per_item = 1) {
    const std::uint64_t n = u64();
    if (min_bytes_per_item > 0 &&
        n > remaining() / min_bytes_per_item)
      throw std::runtime_error("serialized element count exceeds payload");
    return static_cast<std::size_t>(n);
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n)
      throw std::runtime_error("serialized payload truncated");
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace secddr::serial
