#include "common/stats.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace secddr {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) {
    assert(x > 0.0);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

void RunningStat::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string percent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", ratio * 100.0);
  return buf;
}

}  // namespace secddr
