// Small bit-manipulation helpers used by address mapping and crypto.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace secddr {

/// Floor of log2(x); x must be non-zero.
constexpr unsigned ilog2(std::uint64_t x) {
  assert(x != 0);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// True iff x is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Extracts `count` bits of `v` starting at bit `pos` (LSB = 0).
constexpr std::uint64_t bits(std::uint64_t v, unsigned pos, unsigned count) {
  return (v >> pos) & ((count >= 64) ? ~0ull : ((1ull << count) - 1));
}

/// Rounds `v` up to the next multiple of `align` (align must be pow2).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace secddr
