#include "common/types.h"

namespace secddr {

std::string to_hex(const std::uint8_t* data, std::size_t n) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(kDigits[data[i] >> 4]);
    s.push_back(kDigits[data[i] & 0xf]);
  }
  return s;
}

}  // namespace secddr
