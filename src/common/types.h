// Fundamental value types shared by every SecDDR subsystem.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace secddr {

/// Physical byte address.
using Addr = std::uint64_t;
/// Simulation time in cycles (domain depends on the component).
using Cycle = std::uint64_t;

/// Sentinel returned by next-event queries when a component has nothing
/// scheduled and will only act in response to another component.
inline constexpr Cycle kNoEvent = ~static_cast<Cycle>(0);

/// Cache line size used throughout the system (bytes).
inline constexpr std::size_t kLineSize = 64;
/// Bits needed to index a byte within a line.
inline constexpr unsigned kLineBits = 6;

/// Returns the line-aligned base address of `a`.
constexpr Addr line_base(Addr a) { return a & ~static_cast<Addr>(kLineSize - 1); }
/// Returns the line index (address divided by the line size).
constexpr Addr line_index(Addr a) { return a >> kLineBits; }

/// A 64-byte cache line as a value type. Used by the functional protocol
/// stack where actual bytes flow between processor and DIMM.
struct CacheLine {
  std::array<std::uint8_t, kLineSize> bytes{};

  CacheLine() = default;
  /// Builds a line whose bytes are all `fill`.
  static CacheLine filled(std::uint8_t fill) {
    CacheLine l;
    l.bytes.fill(fill);
    return l;
  }

  std::uint8_t& operator[](std::size_t i) { return bytes[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return bytes[i]; }

  friend bool operator==(const CacheLine& a, const CacheLine& b) {
    return a.bytes == b.bytes;
  }

  /// XORs `other` into this line.
  CacheLine& operator^=(const CacheLine& other) {
    for (std::size_t i = 0; i < kLineSize; ++i) bytes[i] ^= other.bytes[i];
    return *this;
  }
};

/// Reads a little-endian 64-bit value from `p`.
inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Writes a little-endian 64-bit value to `p`.
inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof v);
}

/// Hex string of a byte range (for diagnostics and tests).
std::string to_hex(const std::uint8_t* data, std::size_t n);

template <std::size_t N>
std::string to_hex(const std::array<std::uint8_t, N>& a) {
  return to_hex(a.data(), N);
}

}  // namespace secddr
