// Generic set-associative write-back cache model with true-LRU replacement.
//
// Used for the private L1s, the shared LLC, and the 128KB security-metadata
// cache (Table I). This is a tag store only: the timing simulator never
// moves data bytes, it tracks presence and dirtiness.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serial.h"
#include "common/types.h"

namespace secddr {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  double miss_rate() const {
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

/// Tag-store cache. All addresses are byte addresses; lines are 64B.
class SetAssocCache {
 public:
  /// `size_bytes` must be a multiple of `assoc * kLineSize`.
  SetAssocCache(std::uint64_t size_bytes, unsigned assoc);

  /// Result of an allocating access/install.
  struct Result {
    bool hit = false;
    bool evicted = false;
    Addr victim_addr = 0;
    bool victim_dirty = false;
  };

  /// True if the line is present (no LRU update, no stats).
  bool probe(Addr addr) const;

  /// Demand access: counts stats, updates LRU, allocates on miss.
  Result access(Addr addr, bool mark_dirty);

  /// Fill without demand-stat accounting (e.g. prefetch or metadata
  /// install); still evicts and updates LRU.
  Result install(Addr addr, bool dirty);

  /// LRU/dirty update iff present; returns whether the line was present.
  bool touch(Addr addr, bool mark_dirty);

  /// Removes the line if present; returns whether it was dirty.
  bool invalidate(Addr addr);

  /// Drops every line (e.g. DIMM replacement); dirty contents are lost.
  void flush_all();

  const CacheStats& stats() const { return stats_; }
  std::uint64_t size_bytes() const { return sets_count_ * assoc_ * kLineSize; }
  unsigned associativity() const { return assoc_; }

  /// Checkpoint hooks: the full mutable state (tags, LRU stamps, validity,
  /// dirtiness, stats). load() requires a cache constructed with the same
  /// geometry and throws std::runtime_error on mismatch.
  void save(serial::Sink& s) const;
  void load(serial::Source& s);

 private:
  // Structure-of-arrays layout: probes — the per-cycle hot path — scan
  // only the dense tag array (a 16-way set is two cache lines instead of
  // six), with validity in a per-set bitmask. Dirty bits and LRU stamps
  // are touched only on hits and fills.
  std::uint64_t set_of(Addr addr) const { return line_index(addr) % sets_count_; }
  std::uint64_t tag_of(Addr addr) const { return line_index(addr) / sets_count_; }
  Addr addr_of(std::uint64_t set, std::uint64_t tag) const {
    return (tag * sets_count_ + set) << kLineBits;
  }
  /// Way index of `tag` within `set`, or -1.
  int find_way(std::uint64_t set, std::uint64_t tag) const {
    const std::uint32_t mask = valid_[set];
    const std::uint64_t* t = &tags_[set * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
      if (((mask >> w) & 1u) != 0 && t[w] == tag) return static_cast<int>(w);
    return -1;
  }
  Result fill(Addr addr, bool dirty);

  std::uint64_t sets_count_;
  unsigned assoc_;
  std::uint32_t full_mask_;
  std::vector<std::uint64_t> tags_;   ///< sets_count_ * assoc_
  std::vector<std::uint64_t> lru_;    ///< sets_count_ * assoc_ (larger = newer)
  std::vector<std::uint32_t> valid_;  ///< per-set way bitmask
  std::vector<std::uint32_t> dirty_;  ///< per-set way bitmask
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace secddr
