// Console table printer used by the bench harnesses so that every figure
// and table of the paper prints as an aligned, diffable text table.
#pragma once

#include <string>
#include <vector>

namespace secddr {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// `headers` defines the column count; every row must match it.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row. Cells beyond the header count are dropped; missing
  /// cells render empty.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `prec` decimals.
  static std::string num(double v, int prec = 3);

  /// Renders the table (header, separator, rows) to a string.
  std::string str() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace secddr
