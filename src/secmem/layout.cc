#include "secmem/layout.h"

#include <cassert>

#include "common/bitops.h"

namespace secddr::secmem {

MetadataLayout::MetadataLayout(const SecurityParams& params,
                               std::uint64_t data_bytes)
    : params_(params), data_bytes_(data_bytes) {
  assert(data_bytes % kLineSize == 0);
  const std::uint64_t data_lines = data_bytes / kLineSize;
  Addr cursor = data_bytes;

  if (params.enc == Encryption::kCounterMode) {
    counter_lines_ = ceil_div(data_lines, params.counters_per_line);
    counter_base_ = cursor;
    cursor += counter_lines_ * kLineSize;
  }
  if (!params.macs_in_ecc && params.verify_mac) {
    // 8-byte MACs, 8 per 64B line, gathered contiguously (paper §V-A).
    mac_lines_ = ceil_div(data_lines, 8);
    mac_base_ = cursor;
    cursor += mac_lines_ * kLineSize;
  }

  if (params.rap == Rap::kIntegrityTree) {
    // Tree leaves: counter lines (counter tree) or MAC lines (hash tree).
    std::uint64_t level_count = params.hash_tree_over_macs
                                    ? mac_lines_
                                    : counter_lines_;
    assert(level_count > 0 && "integrity tree needs counters or MAC lines");
    for (;;) {
      level_count = ceil_div(level_count, params.tree_arity);
      if (level_count <= 1) break;  // single node = on-chip root
      level_base_.push_back(cursor);
      level_nodes_.push_back(level_count);
      cursor += level_count * kLineSize;
    }
  }
  end_ = cursor;
  metadata_bytes_ = end_ - data_bytes;
}

std::uint64_t MetadataLayout::leaf_index(Addr data_addr) const {
  if (params_.hash_tree_over_macs)
    return line_index(data_addr) / 8;
  return line_index(data_addr) / params_.counters_per_line;
}

Addr MetadataLayout::counter_line_addr(Addr data_addr) const {
  assert(has_counters());
  assert(data_addr < data_bytes_);
  return counter_base_ +
         (line_index(data_addr) / params_.counters_per_line) * kLineSize;
}

Addr MetadataLayout::mac_line_addr(Addr data_addr) const {
  assert(has_mac_region());
  assert(data_addr < data_bytes_);
  return mac_base_ + (line_index(data_addr) / 8) * kLineSize;
}

Addr MetadataLayout::tree_node_addr(unsigned level, Addr data_addr) const {
  assert(level >= 1 && level <= tree_levels());
  std::uint64_t idx = leaf_index(data_addr);
  for (unsigned l = 0; l < level; ++l) idx /= params_.tree_arity;
  assert(idx < level_nodes_[level - 1]);
  return level_base_[level - 1] + idx * kLineSize;
}

}  // namespace secddr::secmem
