// Security configuration space of the evaluation (paper §IV-B).
//
// Five primary systems are compared, plus the InvisiMem authenticated
// channel (§VI) and the arity/packing sensitivity sweep (Fig. 8):
//   1. Baseline: 64-ary counter integrity tree + counter-mode encryption
//      (Intel TDX-like; the normalization basis of Figs. 6/10/12).
//   2. SecDDR+CTR: E-MAC/eWCRC replay protection + counter-mode.
//   3. Encrypt-only CTR.
//   4. SecDDR+XTS.
//   5. Encrypt-only XTS.
#pragma once

#include <cstdint>
#include <string>

namespace secddr::secmem {

/// Replay-attack-protection mechanism.
enum class Rap {
  kNone,           ///< encrypt-only (integrity assumed, not ensured)
  kIntegrityTree,  ///< N-ary tree walked/updated on counter (or MAC) misses
  kSecDdr,         ///< E-MAC channel + eWCRC (no extra memory traffic)
  kAuthChannel,    ///< InvisiMem-style mutually authenticated channel
};

/// Data encryption mode.
enum class Encryption {
  kCounterMode,  ///< per-line counters stored in memory, cached on chip
  kXts,          ///< AES-XTS: no counters, fixed latency per access
};

/// Parameters of one evaluated configuration.
struct SecurityParams {
  Rap rap = Rap::kIntegrityTree;
  Encryption enc = Encryption::kCounterMode;

  /// Integrity-tree arity (nodes per parent): 8 / 64 / 128 in Fig. 8.
  unsigned tree_arity = 64;
  /// Encryption counters packed per 64B counter line (8 / 64 / 128).
  unsigned counters_per_line = 64;
  /// Hash-Merkle-tree mode (the Fig. 8 "8-ary" design): the tree hashes
  /// data MACs, MACs live in memory lines instead of the ECC chips.
  bool hash_tree_over_macs = false;
  /// MACs ride the ECC pins (TDX/SafeGuard style): no MAC traffic.
  bool macs_in_ecc = true;
  /// Integrity verification happens at all (false for encrypt-only).
  bool verify_mac = true;

  /// Crypto latencies in core cycles (Table I: "40 processor-cycles
  /// encryption and MAC").
  unsigned aes_latency = 40;
  unsigned mac_latency = 40;

  /// Metadata cache capacity (Table I: 128KB). Swept by the ablation
  /// bench to quantify the tree's sensitivity to on-chip metadata reach.
  std::uint64_t metadata_cache_bytes = 128 * 1024;
  unsigned metadata_cache_assoc = 8;

  /// InvisiMem: number of extra MAC computations on the read critical path
  /// (one DIMM-side generate + one processor-side verify).
  unsigned auth_channel_macs = 2;

  /// SecDDR: eWCRC extends the write burst (applied to the DRAM timings by
  /// the harness via Timings::with_ewcrc_burst()).
  bool ewcrc = false;

  std::string name;

  // ---- Named configurations of the paper ----
  static SecurityParams baseline_tree_ctr(unsigned arity = 64,
                                          unsigned counters_per_line = 64);
  static SecurityParams secddr_ctr(unsigned counters_per_line = 64);
  static SecurityParams encrypt_only_ctr(unsigned counters_per_line = 64);
  static SecurityParams secddr_xts();
  static SecurityParams encrypt_only_xts();
  static SecurityParams invisimem(Encryption enc);
  /// Fig. 8's 8-ary hash-based Merkle tree (AES-XTS, MACs in memory).
  static SecurityParams hash_tree8_xts();
};

}  // namespace secddr::secmem
