// The shared on-chip metadata cache (Table I: 128KB, 64B lines, 8-way).
//
// Holds encryption-counter lines, integrity-tree nodes, and — in hash-tree
// mode — in-memory MAC lines. A hit on a tree node terminates the upward
// verification walk (the cached copy is trusted); Fig. 7 reports this
// cache's miss rate per workload.
#pragma once

#include <cstdint>

#include "common/cache.h"

namespace secddr::secmem {

class MetadataCache {
 public:
  MetadataCache(std::uint64_t size_bytes = 128 * 1024, unsigned assoc = 8)
      : cache_(size_bytes, assoc) {}

  /// Demand lookup (counts in the Fig. 7 miss rate). No allocation: fills
  /// happen via install() when the memory responds.
  bool lookup(Addr addr) {
    ++stats_.accesses;
    const bool hit = cache_.touch(addr, false);
    if (!hit) ++stats_.misses;
    return hit;
  }

  /// Marks a cached line dirty (counter increment / tree-node update).
  /// Returns false if the line is not present.
  bool mark_dirty(Addr addr) { return cache_.touch(addr, true); }

  /// Installs a line fetched from memory. The victim (if dirty) must be
  /// written back by the caller.
  SetAssocCache::Result install(Addr addr, bool dirty) {
    return cache_.install(addr, dirty);
  }

  bool probe(Addr addr) const { return cache_.probe(addr); }

  /// Checkpoint hooks: cache contents + demand stats.
  void save(serial::Sink& s) const {
    cache_.save(s);
    s.u64(stats_.accesses);
    s.u64(stats_.misses);
  }
  void load(serial::Source& s) {
    cache_.load(s);
    stats_.accesses = s.u64();
    stats_.misses = s.u64();
  }

  double miss_rate() const {
    return stats_.accesses ? static_cast<double>(stats_.misses) /
                                 static_cast<double>(stats_.accesses)
                           : 0.0;
  }
  std::uint64_t accesses() const { return stats_.accesses; }
  std::uint64_t misses() const { return stats_.misses; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  SetAssocCache cache_;
  CacheStats stats_;
};

}  // namespace secddr::secmem
