#include "secmem/params.h"

namespace secddr::secmem {

SecurityParams SecurityParams::baseline_tree_ctr(unsigned arity,
                                                 unsigned counters_per_line) {
  SecurityParams p;
  p.rap = Rap::kIntegrityTree;
  p.enc = Encryption::kCounterMode;
  p.tree_arity = arity;
  p.counters_per_line = counters_per_line;
  p.name = "tree" + std::to_string(arity) + "+ctr" +
           std::to_string(counters_per_line);
  return p;
}

SecurityParams SecurityParams::secddr_ctr(unsigned counters_per_line) {
  SecurityParams p;
  p.rap = Rap::kSecDdr;
  p.enc = Encryption::kCounterMode;
  p.counters_per_line = counters_per_line;
  p.ewcrc = true;
  p.name = "secddr+ctr" + std::to_string(counters_per_line);
  return p;
}

SecurityParams SecurityParams::encrypt_only_ctr(unsigned counters_per_line) {
  SecurityParams p;
  p.rap = Rap::kNone;
  p.enc = Encryption::kCounterMode;
  p.counters_per_line = counters_per_line;
  p.verify_mac = false;
  p.name = "enconly+ctr" + std::to_string(counters_per_line);
  return p;
}

SecurityParams SecurityParams::secddr_xts() {
  SecurityParams p;
  p.rap = Rap::kSecDdr;
  p.enc = Encryption::kXts;
  p.ewcrc = true;
  p.name = "secddr+xts";
  return p;
}

SecurityParams SecurityParams::encrypt_only_xts() {
  SecurityParams p;
  p.rap = Rap::kNone;
  p.enc = Encryption::kXts;
  p.verify_mac = false;
  p.name = "enconly+xts";
  return p;
}

SecurityParams SecurityParams::invisimem(Encryption enc) {
  SecurityParams p;
  p.rap = Rap::kAuthChannel;
  p.enc = enc;
  p.name = enc == Encryption::kXts ? "invisimem+xts" : "invisimem+ctr";
  return p;
}

SecurityParams SecurityParams::hash_tree8_xts() {
  SecurityParams p;
  p.rap = Rap::kIntegrityTree;
  p.enc = Encryption::kXts;
  p.tree_arity = 8;
  p.hash_tree_over_macs = true;
  p.macs_in_ecc = false;
  p.name = "tree8-hash+xts";
  return p;
}

}  // namespace secddr::secmem
