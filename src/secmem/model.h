// The secure-memory timing engine.
//
// Every LLC miss and dirty eviction is routed through this engine, which
// turns one data access into the data transaction plus whatever metadata
// traffic and crypto latency the configured mechanism requires:
//
//   encrypt-only XTS   : data only; +AES on reads.
//   encrypt-only CTR   : + counter-line fetches (RMW on writes).
//   SecDDR (CTR/XTS)   : like encrypt-only + MAC verify latency on reads;
//                        eWCRC lengthens the write burst (DRAM timing).
//   InvisiMem          : like encrypt-only + 2x MAC latency per read
//                        (DIMM-side generate + processor-side verify).
//   integrity tree     : counter (or MAC-line) fetch misses trigger a
//                        parallel upward walk that stops at the first
//                        cached (= trusted) node; writes must update every
//                        level to the root, fetching missing nodes.
//
// A hit in the 128KB metadata cache terminates verification; the root is
// on-chip and never fetched. Dirty metadata evictions become DRAM writes.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/serial.h"
#include "common/types.h"
#include "dram/system.h"
#include "secmem/layout.h"
#include "secmem/metadata_cache.h"
#include "secmem/params.h"

namespace secddr::secmem {

/// A data read whose plaintext is ready for the LLC fill at cycle `at`.
struct ReadReady {
  std::uint64_t tag;
  Cycle at;
};

struct EngineStats {
  std::uint64_t data_reads = 0;
  std::uint64_t data_writes = 0;
  std::uint64_t counter_fetches = 0;
  std::uint64_t mac_line_fetches = 0;
  std::uint64_t tree_node_fetches = 0;
  std::uint64_t meta_writebacks = 0;
  std::uint64_t reads_with_tree_walk = 0;

  std::uint64_t meta_reads() const {
    return counter_fetches + mac_line_fetches + tree_node_fetches;
  }

  /// Accumulates another channel's counters (multi-channel aggregation).
  EngineStats& operator+=(const EngineStats& o) {
    data_reads += o.data_reads;
    data_writes += o.data_writes;
    counter_fetches += o.counter_fetches;
    mac_line_fetches += o.mac_line_fetches;
    tree_node_fetches += o.tree_node_fetches;
    meta_writebacks += o.meta_writebacks;
    reads_with_tree_walk += o.reads_with_tree_walk;
    return *this;
  }
};

/// See file comment. One engine instance per simulated channel.
class SecurityEngine {
 public:
  SecurityEngine(const SecurityParams& params, const MetadataLayout& layout,
                 dram::DramSystem& dram);

  /// Starts a data-line read; `tag` is reported via ready() when the
  /// decrypted and verified line is available.
  void start_read(Addr addr, std::uint64_t tag, Cycle now);

  /// Posted data-line write (LLC dirty eviction / metadata update source).
  void start_write(Addr addr, Cycle now);

  /// Advances internal state: drains DRAM completions, retries issues.
  void tick(Cycle now);

  /// Event query for the event-driven loop: the engine acts on its own
  /// only while deferred DRAM issues are waiting (retried every tick);
  /// everything else is driven by DRAM completions, which the DRAM
  /// system's own next-event query covers. A deferred issue whose target
  /// queue is full is a guaranteed no-op retry until the controller
  /// drains an entry — a DRAM event — so it reports kNoEvent too. `now`
  /// is the engine's last tick time.
  Cycle next_event_cycle(Cycle now) const {
    if (issue_q_.empty()) return kNoEvent;
    const PendingIssue& p = issue_q_.front();
    const bool would_fail =
        p.is_write ? !dram_.can_accept_write() : !dram_.can_accept_read();
    return would_fail ? kNoEvent : now + 1;
  }

  /// Batched advance for epoch-decoupled execution: runs this channel's
  /// core ticks (from, to] locally — DRAM clock plus engine tick per
  /// cycle — applying the same event-driven skip the serial loop uses
  /// (provable no-op spans advance only the clocks). The caller promises
  /// no start_read/start_write lands inside the window and drains
  /// ready() afterwards; ready_bound() is how it sizes such a window.
  void tick_until(Cycle from, Cycle to);

  /// Earliest core cycle (> now) at which a future tick could push into
  /// ready(), assuming no new start_read/start_write arrives: the safe
  /// horizon for this channel in the epoch-decoupled backend. Only read
  /// completions finish transactions, so the bound is the min over
  ///   - an undrained completion buffer (surfaces next tick),
  ///   - the earliest in-flight read's data arrival (exact, via the
  ///     accumulator inversion),
  ///   - queued/deferred reads: conservatively the core tick reaching
  ///     mem_cycle + tCL, or now + 2 when write-forwarding is possible
  ///     (a deferred read enqueued at now+1 can complete at now+2).
  /// kNoEvent when no read exists anywhere in the pipeline. Metadata
  /// chains (arrival -> writeback -> forward) cannot beat these bounds:
  /// an arrival at cycle t only issues new DRAM traffic at t >= bound.
  Cycle ready_bound(Cycle now) const;

  /// Ready reads since the last drain (caller clears).
  std::vector<ReadReady>& ready() { return ready_; }

  const EngineStats& stats() const { return stats_; }
  /// Clears statistics after warmup; metadata-cache contents survive.
  void reset_stats() {
    stats_ = EngineStats{};
    meta_cache_.reset_stats();
  }
  MetadataCache& metadata_cache() { return meta_cache_; }
  const MetadataLayout& layout() const { return layout_; }
  const SecurityParams& params() const { return params_; }

  /// Outstanding transactions of any kind (for drain loops).
  std::size_t outstanding() const {
    return txns_.size() + issue_q_.size() + dram_.pending();
  }

  /// Checkpoint hooks: metadata cache, open transactions, outstanding
  /// metadata fetches, the deferred-issue queue, undrained ready reads,
  /// and stats. The hash maps are emitted in sorted key order so the
  /// checkpoint bytes are deterministic; both maps are only ever accessed
  /// by key, so re-insertion order cannot affect behavior. Does NOT cover
  /// the DRAM system (the owner serializes it separately).
  void save(serial::Sink& s) const;
  void load(serial::Source& s);

 private:
  enum class Role : std::uint8_t { kCounter, kMacLine, kTreeNode };
  enum class TagKind : std::uint64_t {
    kDataRead = 1,
    kDataWrite = 2,
    kMetaFetch = 3,
    kMetaWriteback = 4,
  };

  struct Txn {
    std::uint64_t tag = 0;  ///< caller tag (reads only)
    Addr addr = 0;
    bool is_write = false;
    Cycle start = 0;
    bool data_pending = false;
    Cycle data_done = 0;
    unsigned meta_outstanding = 0;
    Cycle meta_done = 0;  ///< max arrival over tree/mac fetches
    bool counter_pending = false;
    Cycle counter_done = 0;
    bool mac_line_pending = false;
    Cycle mac_line_done = 0;
    bool tree_walked = false;
    bool write_data_issued = false;
  };

  struct MetaFetch {
    std::vector<std::pair<std::uint64_t, Role>> waiters;  ///< (txn id, role)
  };

  static std::uint64_t make_tag(TagKind kind, std::uint64_t id) {
    return (static_cast<std::uint64_t>(kind) << 56) | id;
  }

  void issue_dram(Addr addr, bool is_write, std::uint64_t tag);
  void request_meta_line(Txn& txn, std::uint64_t txn_id, Addr line, Role role,
                         Cycle now);
  void gather_read_needs(Txn& txn, std::uint64_t txn_id, Cycle now);
  void gather_write_needs(Txn& txn, std::uint64_t txn_id, Cycle now);
  /// `finish` is the DRAM completion's finish cycle (stamps done times);
  /// `now` is the engine tick observing it (drives dependent finishes).
  void on_meta_arrival(Addr line, Cycle finish, Cycle now);
  void maybe_finish(std::uint64_t txn_id, Cycle now);
  Cycle read_ready_time(const Txn& txn) const;
  void writeback_victim(const SetAssocCache::Result& victim);

  SecurityParams params_;
  MetadataLayout layout_;
  dram::DramSystem& dram_;
  MetadataCache meta_cache_;

  std::unordered_map<std::uint64_t, Txn> txns_;
  std::uint64_t next_txn_id_ = 1;
  std::unordered_map<Addr, MetaFetch> meta_fetches_;

  struct PendingIssue {
    Addr addr;
    bool is_write;
    std::uint64_t tag;
  };
  std::deque<PendingIssue> issue_q_;

  std::vector<ReadReady> ready_;
  EngineStats stats_;
};

}  // namespace secddr::secmem
