#include "secmem/model.h"

#include <algorithm>
#include <cassert>

namespace secddr::secmem {

SecurityEngine::SecurityEngine(const SecurityParams& params,
                               const MetadataLayout& layout,
                               dram::DramSystem& dram)
    : params_(params),
      layout_(layout),
      dram_(dram),
      meta_cache_(params.metadata_cache_bytes, params.metadata_cache_assoc) {}

void SecurityEngine::issue_dram(Addr addr, bool is_write, std::uint64_t tag) {
  // Preserve ordering: if anything is already queued, queue behind it.
  if (!issue_q_.empty() || !dram_.enqueue(addr, is_write, tag))
    issue_q_.push_back({addr, is_write, tag});
}

void SecurityEngine::writeback_victim(const SetAssocCache::Result& victim) {
  if (victim.evicted && victim.victim_dirty) {
    ++stats_.meta_writebacks;
    issue_dram(victim.victim_addr, true,
               make_tag(TagKind::kMetaWriteback, 0));
  }
}

void SecurityEngine::request_meta_line(Txn& txn, std::uint64_t txn_id,
                                       Addr line, Role role, Cycle now) {
  const bool hit = meta_cache_.lookup(line);
  if (hit) {
    if (txn.is_write) meta_cache_.mark_dirty(line);
    switch (role) {
      case Role::kCounter:
        txn.counter_done = now;
        break;
      case Role::kMacLine:
        txn.mac_line_done = now;
        break;
      case Role::kTreeNode:
        break;  // cached node: trusted, walk already terminated by caller
    }
    return;
  }

  // Miss: join (or start) an outstanding fetch for this line.
  switch (role) {
    case Role::kCounter:
      txn.counter_pending = true;
      break;
    case Role::kMacLine:
      txn.mac_line_pending = true;
      break;
    case Role::kTreeNode:
      txn.tree_walked = true;
      break;
  }
  ++txn.meta_outstanding;
  auto [it, inserted] = meta_fetches_.try_emplace(line);
  it->second.waiters.emplace_back(txn_id, role);
  if (inserted) {
    switch (role) {
      case Role::kCounter:
        ++stats_.counter_fetches;
        break;
      case Role::kMacLine:
        ++stats_.mac_line_fetches;
        break;
      case Role::kTreeNode:
        ++stats_.tree_node_fetches;
        break;
    }
    issue_dram(line, false, make_tag(TagKind::kMetaFetch, line));
  }
}

void SecurityEngine::gather_read_needs(Txn& txn, std::uint64_t txn_id,
                                       Cycle now) {
  const bool tree = params_.rap == Rap::kIntegrityTree;

  if (params_.enc == Encryption::kCounterMode) {
    const Addr ctr = layout_.counter_line_addr(txn.addr);
    const bool ctr_cached = meta_cache_.probe(ctr);
    request_meta_line(txn, txn_id, ctr, Role::kCounter, now);
    // Counter-tree verification: only needed when the counter line itself
    // was not already trusted on chip.
    if (tree && !params_.hash_tree_over_macs && !ctr_cached) {
      for (unsigned level = 1; level <= layout_.tree_levels(); ++level) {
        const Addr node = layout_.tree_node_addr(level, txn.addr);
        if (meta_cache_.probe(node)) {
          meta_cache_.lookup(node);  // count the terminating hit
          break;
        }
        request_meta_line(txn, txn_id, node, Role::kTreeNode, now);
      }
    }
  }

  if (!params_.macs_in_ecc && params_.verify_mac) {
    const Addr mac = layout_.mac_line_addr(txn.addr);
    const bool mac_cached = meta_cache_.probe(mac);
    request_meta_line(txn, txn_id, mac, Role::kMacLine, now);
    if (tree && params_.hash_tree_over_macs && !mac_cached) {
      for (unsigned level = 1; level <= layout_.tree_levels(); ++level) {
        const Addr node = layout_.tree_node_addr(level, txn.addr);
        if (meta_cache_.probe(node)) {
          meta_cache_.lookup(node);
          break;
        }
        request_meta_line(txn, txn_id, node, Role::kTreeNode, now);
      }
    }
  }

  if (txn.tree_walked) ++stats_.reads_with_tree_walk;
}

void SecurityEngine::gather_write_needs(Txn& txn, std::uint64_t txn_id,
                                        Cycle now) {
  const bool tree = params_.rap == Rap::kIntegrityTree;

  if (params_.enc == Encryption::kCounterMode) {
    // Counter increment: read-modify-write of the counter line.
    request_meta_line(txn, txn_id, layout_.counter_line_addr(txn.addr),
                      Role::kCounter, now);
  }
  if (!params_.macs_in_ecc && params_.verify_mac) {
    request_meta_line(txn, txn_id, layout_.mac_line_addr(txn.addr),
                      Role::kMacLine, now);
  }
  if (tree) {
    // A write updates every tree level up to the on-chip root: present
    // nodes are dirtied in place, absent nodes are fetched (RMW).
    for (unsigned level = 1; level <= layout_.tree_levels(); ++level) {
      const Addr node = layout_.tree_node_addr(level, txn.addr);
      if (meta_cache_.lookup(node)) {
        meta_cache_.mark_dirty(node);
      } else {
        txn.tree_walked = true;
        ++txn.meta_outstanding;
        auto [it, inserted] = meta_fetches_.try_emplace(node);
        it->second.waiters.emplace_back(txn_id, Role::kTreeNode);
        if (inserted) {
          ++stats_.tree_node_fetches;
          issue_dram(node, false, make_tag(TagKind::kMetaFetch, node));
        }
      }
    }
  }
}

void SecurityEngine::start_read(Addr addr, std::uint64_t tag, Cycle now) {
  const std::uint64_t txn_id = next_txn_id_++;
  Txn& txn = txns_[txn_id];
  txn.tag = tag;
  txn.addr = addr;
  txn.is_write = false;
  txn.start = now;
  txn.data_pending = true;
  ++stats_.data_reads;
  issue_dram(addr, false, make_tag(TagKind::kDataRead, txn_id));
  gather_read_needs(txn, txn_id, now);
  maybe_finish(txn_id, now);
}

void SecurityEngine::start_write(Addr addr, Cycle now) {
  const std::uint64_t txn_id = next_txn_id_++;
  Txn& txn = txns_[txn_id];
  txn.addr = addr;
  txn.is_write = true;
  txn.start = now;
  ++stats_.data_writes;
  gather_write_needs(txn, txn_id, now);
  maybe_finish(txn_id, now);
}

Cycle SecurityEngine::read_ready_time(const Txn& txn) const {
  // Decryption path.
  Cycle t;
  if (params_.enc == Encryption::kXts) {
    t = txn.data_done + params_.aes_latency;
  } else {
    // Counter-mode: the OTP needs the counter; a cached counter lets the
    // pad precompute overlap the DRAM access.
    t = std::max(txn.data_done, txn.counter_done + params_.aes_latency);
  }

  // Integrity verification paths (never speculative, §IV-B).
  if (params_.verify_mac) {
    Cycle mac_base = txn.data_done;
    if (!params_.macs_in_ecc)
      mac_base = std::max(mac_base, txn.mac_line_done);
    t = std::max(t, mac_base + params_.mac_latency);
  }
  if (params_.rap == Rap::kIntegrityTree &&
      (txn.tree_walked || txn.counter_pending || txn.mac_line_pending ||
       txn.meta_done > txn.start)) {
    // Tree levels verify in parallel once all fetches arrive.
    t = std::max(t, txn.meta_done + params_.mac_latency);
  }
  if (params_.rap == Rap::kAuthChannel) {
    t = std::max(t, txn.data_done +
                        params_.auth_channel_macs * params_.mac_latency);
  }
  return t;
}

void SecurityEngine::maybe_finish(std::uint64_t txn_id, Cycle now) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  if (txn.meta_outstanding > 0) return;

  if (txn.is_write) {
    if (!txn.write_data_issued) {
      txn.write_data_issued = true;
      issue_dram(txn.addr, true, make_tag(TagKind::kDataWrite, txn_id));
      // Posted: the transaction is complete once the write is handed to
      // the controller; metadata dirtiness already recorded.
      txns_.erase(it);
    }
    return;
  }
  if (txn.data_pending) return;
  ready_.push_back({txn.tag, std::max(now, read_ready_time(txn))});
  txns_.erase(it);
}

void SecurityEngine::on_meta_arrival(Addr line, Cycle finish, Cycle now) {
  auto fit = meta_fetches_.find(line);
  if (fit == meta_fetches_.end()) return;
  const auto waiters = std::move(fit->second.waiters);
  meta_fetches_.erase(fit);

  const auto victim = meta_cache_.install(line, false);
  writeback_victim(victim);

  for (const auto& [txn_id, role] : waiters) {
    auto it = txns_.find(txn_id);
    if (it == txns_.end()) continue;
    Txn& txn = it->second;
    assert(txn.meta_outstanding > 0);
    --txn.meta_outstanding;
    // Stamp done times with the DRAM completion's finish cycle (like the
    // data path does with data_done), not the engine tick that happened
    // to observe it, so verify latency is independent of tick granularity.
    txn.meta_done = std::max(txn.meta_done, finish);
    switch (role) {
      case Role::kCounter:
        txn.counter_done = finish;
        break;
      case Role::kMacLine:
        txn.mac_line_done = finish;
        break;
      case Role::kTreeNode:
        break;
    }
    if (txn.is_write) meta_cache_.mark_dirty(line);
    maybe_finish(txn_id, now);
  }
}

void SecurityEngine::tick(Cycle now) {
  // Retry deferred issues in order.
  while (!issue_q_.empty()) {
    const auto& p = issue_q_.front();
    if (!dram_.enqueue(p.addr, p.is_write, p.tag)) break;
    issue_q_.pop_front();
  }

  for (const auto& c : dram_.pending_completions()) {
    const auto kind = static_cast<TagKind>(c.tag >> 56);
    const std::uint64_t id = c.tag & ((1ull << 56) - 1);
    switch (kind) {
      case TagKind::kDataRead: {
        auto it = txns_.find(id);
        if (it == txns_.end()) break;
        it->second.data_pending = false;
        it->second.data_done = c.finish;
        maybe_finish(id, now);
        break;
      }
      case TagKind::kMetaFetch:
        on_meta_arrival(static_cast<Addr>(id), c.finish, now);
        break;
      case TagKind::kDataWrite:
      case TagKind::kMetaWriteback:
        break;  // posted
    }
  }
  dram_.clear_completions();
}

void SecurityEngine::tick_until(Cycle from, Cycle to) {
  Cycle t = from;
  while (t < to) {
    // The serial event-driven skip, applied channel-locally: when the
    // engine has no self-driven event and no completion is waiting to
    // surface, every core tick up to the DRAM's next event advances only
    // the clocks. Exactness is inherited from idle_core_cycles().
    if (next_event_cycle(t) == kNoEvent && !dram_.has_undrained_completions()) {
      const Cycle idle = dram_.idle_core_cycles();
      if (idle > 0) {
        const Cycle span = std::min(idle, to - t);
        dram_.advance_idle_core_cycles(span);
        t += span;
        continue;
      }
    }
    ++t;
    dram_.tick_core_cycle();
    tick(t);
    // Window contract: the caller sized `to` with ready_bound(), so no
    // fill may surface before the final tick (the backend drains ready()
    // only at epoch boundaries; an early push would reorder fills).
    assert((ready_.empty() || t == to) &&
           "read became ready before the epoch horizon");
  }
}

Cycle SecurityEngine::ready_bound(Cycle now) const {
  // A buffered completion surfaces (and can finish a read) next tick.
  if (dram_.has_undrained_completions()) return now + 1;
  Cycle bound = kNoEvent;
  const Cycle inflight = dram_.inflight_read_finish();
  if (inflight != kNoEvent)
    bound = now + dram_.core_cycles_until_mem(inflight);
  bool deferred_read = false;
  for (const auto& p : issue_q_)
    if (!p.is_write) {
      deferred_read = true;
      break;
    }
  if (dram_.queued_reads() > 0 || deferred_read) {
    // A queued read issues no earlier than the current memory cycle and
    // its data arrives tCL later at best (bursts only push it out); a
    // deferred read enqueues at the next tick at the earliest, with the
    // same floor — unless write data can forward it, which completes at
    // enqueue and surfaces one tick later (>= now + 2: enqueue happens
    // inside tick now+1 at the earliest).
    bool forward = false;
    for (const auto& p : issue_q_) {
      if (p.is_write) continue;
      if (dram_.has_queued_write_to_line(p.addr)) {
        forward = true;
        break;
      }
      // A deferred write ahead of the read lands in the queue first and
      // then forwards it (same line, FIFO retry order).
      for (const auto& w : issue_q_) {
        if (&w == &p) break;
        if (w.is_write && line_base(w.addr) == line_base(p.addr)) {
          forward = true;
          break;
        }
      }
      if (forward) break;
    }
    const Cycle column = now + dram_.core_cycles_until_mem(
                                   dram_.memory_cycle() + dram_.timings().tCL);
    bound = std::min(bound, forward ? std::min(column, now + 2) : column);
  }
  return bound;
}

void SecurityEngine::save(serial::Sink& s) const {
  meta_cache_.save(s);

  std::vector<std::uint64_t> txn_ids;
  txn_ids.reserve(txns_.size());
  for (const auto& [id, txn] : txns_) txn_ids.push_back(id);
  std::sort(txn_ids.begin(), txn_ids.end());
  s.u64(txn_ids.size());
  for (const std::uint64_t id : txn_ids) {
    const Txn& t = txns_.at(id);
    s.u64(id);
    s.u64(t.tag);
    s.u64(t.addr);
    s.b(t.is_write);
    s.u64(t.start);
    s.b(t.data_pending);
    s.u64(t.data_done);
    s.u32(t.meta_outstanding);
    s.u64(t.meta_done);
    s.b(t.counter_pending);
    s.u64(t.counter_done);
    s.b(t.mac_line_pending);
    s.u64(t.mac_line_done);
    s.b(t.tree_walked);
    s.b(t.write_data_issued);
  }
  s.u64(next_txn_id_);

  std::vector<Addr> fetch_lines;
  fetch_lines.reserve(meta_fetches_.size());
  for (const auto& [line, f] : meta_fetches_) fetch_lines.push_back(line);
  std::sort(fetch_lines.begin(), fetch_lines.end());
  s.u64(fetch_lines.size());
  for (const Addr line : fetch_lines) {
    const MetaFetch& f = meta_fetches_.at(line);
    s.u64(line);
    s.u64(f.waiters.size());
    for (const auto& [txn_id, role] : f.waiters) {
      s.u64(txn_id);
      s.u8(static_cast<std::uint8_t>(role));
    }
  }

  s.u64(issue_q_.size());
  for (const PendingIssue& p : issue_q_) {
    s.u64(p.addr);
    s.b(p.is_write);
    s.u64(p.tag);
  }
  s.u64(ready_.size());
  for (const ReadReady& r : ready_) {
    s.u64(r.tag);
    s.u64(r.at);
  }
  s.u64(stats_.data_reads);
  s.u64(stats_.data_writes);
  s.u64(stats_.counter_fetches);
  s.u64(stats_.mac_line_fetches);
  s.u64(stats_.tree_node_fetches);
  s.u64(stats_.meta_writebacks);
  s.u64(stats_.reads_with_tree_walk);
}

void SecurityEngine::load(serial::Source& s) {
  meta_cache_.load(s);

  txns_.clear();
  const std::size_t ntxn = s.count(8);
  for (std::size_t i = 0; i < ntxn; ++i) {
    const std::uint64_t id = s.u64();
    Txn& t = txns_[id];
    t.tag = s.u64();
    t.addr = s.u64();
    t.is_write = s.b();
    t.start = s.u64();
    t.data_pending = s.b();
    t.data_done = s.u64();
    t.meta_outstanding = s.u32();
    t.meta_done = s.u64();
    t.counter_pending = s.b();
    t.counter_done = s.u64();
    t.mac_line_pending = s.b();
    t.mac_line_done = s.u64();
    t.tree_walked = s.b();
    t.write_data_issued = s.b();
  }
  next_txn_id_ = s.u64();

  meta_fetches_.clear();
  const std::size_t nfetch = s.count(8);
  for (std::size_t i = 0; i < nfetch; ++i) {
    const Addr line = s.u64();
    MetaFetch& f = meta_fetches_[line];
    const std::size_t nwait = s.count(9);
    f.waiters.reserve(nwait);
    for (std::size_t w = 0; w < nwait; ++w) {
      const std::uint64_t txn_id = s.u64();
      f.waiters.emplace_back(txn_id, static_cast<Role>(s.u8()));
    }
  }

  issue_q_.clear();
  const std::size_t nissue = s.count(17);
  for (std::size_t i = 0; i < nissue; ++i) {
    PendingIssue p;
    p.addr = s.u64();
    p.is_write = s.b();
    p.tag = s.u64();
    issue_q_.push_back(p);
  }
  ready_.clear();
  const std::size_t nready = s.count(16);
  for (std::size_t i = 0; i < nready; ++i) {
    ReadReady r;
    r.tag = s.u64();
    r.at = s.u64();
    ready_.push_back(r);
  }
  stats_.data_reads = s.u64();
  stats_.data_writes = s.u64();
  stats_.counter_fetches = s.u64();
  stats_.mac_line_fetches = s.u64();
  stats_.tree_node_fetches = s.u64();
  stats_.meta_writebacks = s.u64();
  stats_.reads_with_tree_walk = s.u64();
}

}  // namespace secddr::secmem
