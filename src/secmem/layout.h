// Physical layout of security metadata in DRAM.
//
// Data occupies [0, data_bytes). Above it we reserve, in order:
//   - the encryption-counter region (counter-mode only),
//   - the MAC region (only when MACs are not carried in the ECC chips),
//   - one region per integrity-tree level, bottom-up; the final single
//     node is the on-chip root and is NOT stored in memory.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "secmem/params.h"

namespace secddr::secmem {

/// Computes and answers all metadata address questions for one config.
class MetadataLayout {
 public:
  MetadataLayout(const SecurityParams& params, std::uint64_t data_bytes);

  std::uint64_t data_bytes() const { return data_bytes_; }
  bool has_counters() const { return counter_lines_ != 0; }
  bool has_mac_region() const { return mac_lines_ != 0; }
  unsigned tree_levels() const {
    return static_cast<unsigned>(level_base_.size());
  }

  /// Address of the counter line covering `data_addr`.
  Addr counter_line_addr(Addr data_addr) const;
  /// Address of the in-memory MAC line covering `data_addr` (hash-tree mode).
  Addr mac_line_addr(Addr data_addr) const;
  /// Address of the tree node at `level` (1-based, 1 = just above leaves)
  /// on the path of `data_addr`.
  Addr tree_node_addr(unsigned level, Addr data_addr) const;

  std::uint64_t counter_lines() const { return counter_lines_; }
  std::uint64_t mac_lines() const { return mac_lines_; }
  std::uint64_t tree_nodes(unsigned level) const {
    return level_nodes_[level - 1];
  }
  /// Total metadata footprint in bytes (excludes the on-chip root).
  std::uint64_t metadata_bytes() const { return metadata_bytes_; }
  /// First byte past all regions (for capacity checks).
  std::uint64_t end_of_memory() const { return end_; }

  /// True if `addr` falls in any metadata region (diagnostics).
  bool is_metadata(Addr addr) const { return addr >= data_bytes_ && addr < end_; }

 private:
  /// Leaf index of `data_addr` in the tree's leaf space.
  std::uint64_t leaf_index(Addr data_addr) const;

  SecurityParams params_;
  std::uint64_t data_bytes_;
  std::uint64_t counter_lines_ = 0;
  std::uint64_t mac_lines_ = 0;
  Addr counter_base_ = 0;
  Addr mac_base_ = 0;
  std::vector<Addr> level_base_;
  std::vector<std::uint64_t> level_nodes_;
  std::uint64_t metadata_bytes_ = 0;
  std::uint64_t end_ = 0;
};

}  // namespace secddr::secmem
