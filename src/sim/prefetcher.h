// Stream prefetcher (Table I: "Stream Prefetcher").
//
// Detects ascending/descending line streams within 4KB pages at the LLC
// and issues prefetches a configurable degree ahead. Prefetched fills go
// through the full security path (decryption/verification) like any other
// memory read, but never block the core.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serial.h"
#include "common/types.h"

namespace secddr::sim {

struct PrefetcherConfig {
  unsigned streams = 16;   ///< tracked streams (across all cores)
  unsigned degree = 2;     ///< prefetches issued per trigger
  unsigned distance = 4;   ///< how far ahead of the demand stream
  unsigned train_threshold = 2;  ///< sequential hits before prefetching
};

class StreamPrefetcher {
 public:
  explicit StreamPrefetcher(const PrefetcherConfig& config = {});

  /// Trains on a demand LLC access and appends prefetch line addresses
  /// (line-aligned) to `out`.
  void train(Addr line_addr, std::vector<Addr>& out);

  std::uint64_t prefetches_issued() const { return issued_; }

  /// Checkpoint hooks: tracked streams + LRU clock + issue counter.
  void save(serial::Sink& s) const;
  void load(serial::Source& s);

 private:
  struct Stream {
    bool valid = false;
    Addr page = 0;
    Addr last_line = 0;
    int direction = 0;  ///< +1 / -1
    unsigned confidence = 0;
    std::uint64_t lru = 0;
  };

  PrefetcherConfig config_;
  std::vector<Stream> streams_;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace secddr::sim
