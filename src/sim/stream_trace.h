// Streaming reader for binary trace files (trace_codec.h format).
//
// StreamFileTrace decodes one block at a time while a background
// prefetch thread double-buffers the next compressed blocks off disk,
// so resident memory stays bounded by a few blocks regardless of trace
// length and file I/O never sits on the simulation hot path. Loop mode
// rewinds to the first block (blocks are independently decodable).
//
// open_trace() is the format dispatcher: binary magic -> this reader,
// anything else -> the legacy text sim::FileTrace.
#pragma once

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/trace_codec.h"

namespace secddr::sim {

class StreamFileTrace final : public TraceSource {
 public:
  /// Validates the header synchronously (throws TraceFormatError on bad
  /// magic / version / checksum / truncation), then starts the prefetch
  /// thread. `loop` restarts from the first block at end-of-trace so
  /// short recordings can feed long simulations; an empty trace still
  /// ends immediately.
  explicit StreamFileTrace(const std::string& path, bool loop = false);
  ~StreamFileTrace() override;

  StreamFileTrace(const StreamFileTrace&) = delete;
  StreamFileTrace& operator=(const StreamFileTrace&) = delete;

  /// Throws TraceFormatError when the prefetcher or the decoder hits a
  /// structural violation (truncated block, bad checksum, ...).
  bool next(TraceRecord& out) override;

  std::uint32_t block_records() const { return header_.block_records; }
  std::uint64_t records_streamed() const { return records_streamed_; }

  /// Bytes currently held by this reader (decoded block + queued
  /// compressed blocks). The bounded-memory tests assert this stays a
  /// small multiple of the block size while streaming multi-million
  /// record traces.
  std::size_t resident_bytes() const;

 private:
  /// One prefetched compressed block, or an end/error marker.
  struct Block {
    std::vector<std::uint8_t> payload;
    std::uint32_t record_count = 0;
    std::uint32_t crc = 0;
    std::uint64_t offset = 0;  ///< file offset of the block header
    bool end = false;
    std::exception_ptr error;
  };

  void prefetch_loop();
  /// Enqueues `b`, blocking while the double buffer is full. Returns
  /// false when the reader is being destroyed.
  bool push_block(Block b);
  Block pop_block();

  std::string path_;
  bool loop_;
  trace_codec::Header header_;
  std::FILE* file_ = nullptr;  ///< owned by the prefetch thread after start

  // Consumer-side state (only touched from next()).
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
  bool done_ = false;
  std::uint64_t records_streamed_ = 0;

  // Producer/consumer handoff: a depth-2 queue is the double buffer.
  static constexpr std::size_t kQueueDepth = 2;
  mutable std::mutex mu_;
  std::condition_variable can_produce_;
  std::condition_variable can_consume_;
  std::deque<Block> queue_;
  std::size_t queued_bytes_ = 0;
  bool stop_ = false;
  std::thread prefetcher_;
};

/// Opens `path` as a binary StreamFileTrace when it starts with the
/// trace_codec magic, else as a legacy text FileTrace. Throws
/// std::runtime_error if the file cannot be opened or parsed.
std::unique_ptr<TraceSource> open_trace(const std::string& path,
                                        bool loop = false);

/// Like open_trace, but an unopenable file returns nullptr instead of
/// throwing — the race-free "use the trace if it exists, else fall
/// back" probe (SECDDR_TRACE_DIR). Parse errors still throw: a present
/// but corrupt trace must never silently fall back.
std::unique_ptr<TraceSource> open_trace_if_present(const std::string& path,
                                                   bool loop = false);

/// True when `path` exists and starts with the binary-trace magic.
bool is_binary_trace(const std::string& path);

}  // namespace secddr::sim
