// Trace-driven out-of-order-approximation core model.
//
// USIMM-style: a 224-entry ROB with 6-wide retire (Table I). Loads issue
// to the memory hierarchy as soon as they enter the ROB (exposing
// memory-level parallelism up to the ROB size) and block retirement at the
// head until their data returns. Stores are posted. Non-memory
// instructions retire at the pipeline width. This preserves the property
// the evaluation depends on: IPC is sensitive to both memory latency and
// bandwidth, scaled by each workload's memory intensity.
#pragma once

#include <cstdint>
#include <deque>

#include "common/types.h"
#include "sim/trace.h"

namespace secddr::sim {

/// The core's window into the memory hierarchy (implemented by
/// MemorySystem). Issue methods return false when resources (MSHRs) are
/// exhausted; the core retries next cycle.
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;
  /// Issues a load; `*done` is set (possibly in a later cycle) when data
  /// is ready. `done` must stay valid until set.
  virtual bool issue_load(unsigned core_id, Addr addr, bool* done) = 0;
  /// Posts a store (write-allocate into L1).
  virtual bool issue_store(unsigned core_id, Addr addr) = 0;
};

struct CoreConfig {
  unsigned rob_size = 224;
  unsigned retire_width = 6;
};

struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t load_stall_cycles = 0;  ///< head-of-ROB blocked on a load

  double ipc() const {
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

class Core {
 public:
  Core(unsigned id, const CoreConfig& config, TraceSource& trace,
       MemoryPort& memory);

  /// Runs one core cycle (fetch + issue + retire). No-op once finished.
  void tick();

  /// Event query for the event-driven simulation loop. `now` is the cycle
  /// of the most recent tick(); returns the earliest cycle at which the
  /// core could make progress: `now + 1` when it can fetch, has an
  /// un-issued memory op to (re)try, or can retire, and kNoEvent when it
  /// is finished or the ROB head is blocked on an outstanding load (the
  /// memory system's completion queue bounds that wait). While the query
  /// reports kNoEvent, tick() would change nothing except the stall
  /// accounting that advance_idle() replays.
  Cycle next_event_cycle(Cycle now) const;

  /// Accounts `cycles` skipped ticks taken while next_event_cycle()
  /// reported no work: bumps `stats_.cycles` and, when the ROB head is an
  /// outstanding load, `stats_.load_stall_cycles` — exactly what `cycles`
  /// calls to tick() would have recorded. No-op once finished.
  /// Also used for skipped blocked_on_issue() ticks, whose only other
  /// effect (the failing issue call) MemorySystem replays.
  void advance_idle(Cycle cycles);

  /// True when the core's only possible activity next cycle is retrying
  /// the issue of one memory op (fetch and retire are both stalled);
  /// *addr receives that op's address. The memory system decides whether
  /// the retry is guaranteed to keep failing (see
  /// MemorySystem::issue_blocked_for), making the cycle skippable.
  bool blocked_on_issue(Addr* addr) const;

  /// Stops fetching after this many instructions (0 = trace length).
  /// Raising the budget resumes a budget-finished core.
  void set_instruction_budget(std::uint64_t budget) {
    budget_ = budget;
    if (!trace_exhausted_ &&
        (budget_ == 0 || fetched_instructions_ < budget_))
      finished_ = false;
  }

  /// Clears statistics (e.g. after cache warmup) without touching
  /// architectural progress.
  void reset_stats() { stats_ = CoreStats{}; }

  bool finished() const { return finished_; }
  const CoreStats& stats() const { return stats_; }
  unsigned id() const { return id_; }

 private:
  enum class Kind : std::uint8_t { kBatch, kLoad, kStore };
  struct RobEntry {
    Kind kind;
    std::uint32_t remaining;  ///< instructions left in a batch (1 for mem)
    Addr addr;
    bool issued;
    bool done;  ///< set by the memory system for loads
  };

  void fetch();
  void issue_pending();
  void retire();
  bool budget_reached() const {
    return budget_ != 0 && fetched_instructions_ >= budget_;
  }

  unsigned id_;
  CoreConfig config_;
  TraceSource& trace_;
  MemoryPort& memory_;

  std::deque<RobEntry> rob_;
  /// Index of the first ROB entry issue_pending() has not yet issued.
  /// Issue is strictly in program order, so everything before the cursor
  /// is issued and the cursor only moves forward (minus head retires).
  std::size_t issue_cursor_ = 0;
  std::uint64_t rob_occupancy_ = 0;  ///< instructions currently in the ROB
  std::uint64_t fetched_instructions_ = 0;
  std::uint64_t budget_ = 0;
  bool trace_exhausted_ = false;
  bool finished_ = false;
  bool have_pending_record_ = false;
  TraceRecord pending_record_{};

  CoreStats stats_;
};

}  // namespace secddr::sim
