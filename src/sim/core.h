// Trace-driven out-of-order-approximation core model.
//
// USIMM-style: a 224-entry ROB with 6-wide retire (Table I). Loads issue
// to the memory hierarchy as soon as they enter the ROB (exposing
// memory-level parallelism up to the ROB size) and block retirement at the
// head until their data returns. Stores are posted. Non-memory
// instructions retire at the pipeline width. This preserves the property
// the evaluation depends on: IPC is sensitive to both memory latency and
// bandwidth, scaled by each workload's memory intensity.
#pragma once

#include <cstdint>
#include <deque>

#include "common/serial.h"
#include "common/types.h"
#include "sim/trace.h"

namespace secddr::sim {

/// The core's window into the memory hierarchy (implemented by
/// MemorySystem). Issue methods return false when resources (MSHRs) are
/// exhausted; the core retries next cycle.
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;
  /// Issues a load; `*done` is set (possibly in a later cycle) when data
  /// is ready. `done` must stay valid until set.
  virtual bool issue_load(unsigned core_id, Addr addr, bool* done) = 0;
  /// Posts a store (write-allocate into L1).
  virtual bool issue_store(unsigned core_id, Addr addr) = 0;
};

struct CoreConfig {
  unsigned rob_size = 224;
  unsigned retire_width = 6;
};

struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t load_stall_cycles = 0;  ///< head-of-ROB blocked on a load

  double ipc() const {
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

class Core {
 public:
  Core(unsigned id, const CoreConfig& config, TraceSource& trace,
       MemoryPort& memory);

  /// Runs one core cycle (fetch + issue + retire). No-op once finished.
  void tick();

  /// Event query for the event-driven simulation loop. `now` is the cycle
  /// of the most recent tick(); returns the earliest cycle at which the
  /// core could make progress that advance_idle() cannot replay:
  /// `now + 1` when it has an un-issued memory op to (re)try or the next
  /// tick's effect is not expressible in closed form, `now + 1 + k` when
  /// the next `k` ticks are pure compute (the ROB holds only non-memory
  /// batches and fetch can only supply more of them — see
  /// compute_replayable_ticks), and kNoEvent when it is finished or the
  /// ROB head is blocked on an outstanding load (the memory system's
  /// completion queue bounds that wait). While the query reports a cycle
  /// past `now + 1` (or kNoEvent), tick() up to that cycle would change
  /// nothing except the retirement/stall accounting that advance_idle()
  /// replays.
  Cycle next_event_cycle(Cycle now) const;

  /// Accounts `cycles` skipped ticks taken while next_event_cycle()
  /// reported them replayable — exactly what `cycles` calls to tick()
  /// would have recorded. Blocked states bump `stats_.cycles` and, when
  /// the ROB head is an outstanding load, `stats_.load_stall_cycles`;
  /// pure-compute states replay fetch + bulk retirement in closed form
  /// (instructions, trace gap, ROB occupancy). No-op once finished.
  /// Also used for skipped blocked_on_issue() ticks, whose only other
  /// effect (the failing issue call) MemorySystem replays.
  void advance_idle(Cycle cycles);

  /// True when the core's only possible activity next cycle is retrying
  /// the issue of one memory op (fetch and retire are both stalled);
  /// *addr receives that op's address. The memory system decides whether
  /// the retry is guaranteed to keep failing (see
  /// MemorySystem::issue_blocked_for), making the cycle skippable.
  bool blocked_on_issue(Addr* addr) const;

  /// Stops fetching after this many instructions (0 = trace length).
  /// Raising the budget resumes a budget-finished core.
  void set_instruction_budget(std::uint64_t budget) {
    budget_ = budget;
    if (!trace_exhausted_ &&
        (budget_ == 0 || fetched_instructions_ < budget_))
      finished_ = false;
  }

  /// Clears statistics (e.g. after cache warmup) without touching
  /// architectural progress.
  void reset_stats() { stats_ = CoreStats{}; }

  bool finished() const { return finished_; }
  const CoreStats& stats() const { return stats_; }
  unsigned id() const { return id_; }

  // --- checkpoint hooks -----------------------------------------------
  /// Full architectural state: ROB contents (including done flags as
  /// values), fetch/budget progress, the pending trace record, and stats.
  void save(serial::Sink& s) const;
  /// Restores the saved state. The bound trace source must be freshly
  /// positioned at its first record: load() fast-forwards it by the
  /// consumed-record count, re-deriving the identical stream position in
  /// a fresh process (all trace sources are deterministic). Throws
  /// std::runtime_error if the trace ends before the saved position.
  void load(serial::Source& s);
  /// Trace records successfully consumed so far (what load() replays).
  std::uint64_t trace_records_consumed() const { return trace_records_; }
  /// ROB index of the entry whose done flag is `flag`, or -1 when the
  /// pointer is not into this core's ROB. The MemorySystem serializes its
  /// MSHR waiter pointers as (core, index) pairs through these two hooks.
  std::int64_t done_flag_index(const bool* flag) const;
  bool* done_flag_at(std::uint64_t idx) { return &rob_[idx].done; }

 private:
  enum class Kind : std::uint8_t { kBatch, kLoad, kStore };
  struct RobEntry {
    Kind kind;
    std::uint32_t remaining;  ///< instructions left in a batch (1 for mem)
    Addr addr;
    bool issued;
    bool done;  ///< set by the memory system for loads
  };

  void fetch();
  void issue_pending();
  void retire();
  bool budget_reached() const {
    return budget_ != 0 && fetched_instructions_ >= budget_;
  }
  /// True when the ROB holds only non-memory batches (every entry issued
  /// and done) — the state whose ticks are pure retirement math.
  bool pure_compute() const { return mem_ops_in_rob_ == 0 && !rob_.empty(); }
  /// Outcome of simulate_compute(): how far the scalar compute model
  /// advanced and what it consumed/retired along the way.
  struct ComputeReplay {
    Cycle ticks = 0;               ///< replayable ticks advanced
    std::uint64_t retired = 0;     ///< instructions retired across them
    std::uint64_t consumed = 0;    ///< batch instructions fetched from the
                                   ///< pending record's gap
    std::uint64_t occupancy = 0;   ///< ROB occupancy afterwards
  };
  /// Single source of truth for the pure-compute closed form: advances a
  /// scalar model (ROB occupancy, pending-record gap, fetch budget) by at
  /// most `max_ticks` ticks, stopping at the first tick that would not be
  /// exactly replayable (a memory op or unknown trace record would enter
  /// the ROB, or retirement would empty it). Both the planner
  /// (compute_replayable_ticks) and the replayer (advance_compute) run
  /// this same stepper, so they cannot drift apart.
  ComputeReplay simulate_compute(Cycle max_ticks) const;
  /// How many upcoming ticks are pure compute and exactly replayable in
  /// closed form. 0 when the next trace record is unknown or the very
  /// next tick breaks the state.
  Cycle compute_replayable_ticks() const {
    return simulate_compute(kNoEvent).ticks;
  }
  /// Replays `ticks` pure-compute ticks (ticks <= compute_replayable_ticks
  /// by contract): per tick, fetch tops the ROB up from the pending
  /// record's batch gap and retirement drains `retire_width` instructions,
  /// all in closed form. Afterwards the ROB is re-canonicalized as a
  /// single batch entry — retirement treats contiguous batch instructions
  /// identically regardless of entry grouping, so behaviour is unchanged.
  void advance_compute(Cycle ticks);

  unsigned id_;
  CoreConfig config_;
  TraceSource& trace_;
  MemoryPort& memory_;

  std::deque<RobEntry> rob_;
  /// Index of the first ROB entry issue_pending() has not yet issued.
  /// Issue is strictly in program order, so everything before the cursor
  /// is issued and the cursor only moves forward (minus head retires).
  std::size_t issue_cursor_ = 0;
  std::uint64_t rob_occupancy_ = 0;  ///< instructions currently in the ROB
  std::size_t mem_ops_in_rob_ = 0;   ///< load/store entries in the ROB
  std::uint64_t fetched_instructions_ = 0;
  std::uint64_t trace_records_ = 0;  ///< successful trace_.next() calls
  std::uint64_t budget_ = 0;
  bool trace_exhausted_ = false;
  bool finished_ = false;
  bool have_pending_record_ = false;
  TraceRecord pending_record_{};

  CoreStats stats_;
};

}  // namespace secddr::sim
