#include "sim/prefetcher.h"

namespace secddr::sim {
namespace {
constexpr Addr kPageMask = ~static_cast<Addr>(4096 - 1);
}

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig& config)
    : config_(config), streams_(config.streams) {}

void StreamPrefetcher::train(Addr line_addr, std::vector<Addr>& out) {
  const Addr line = line_base(line_addr);
  const Addr page = line & kPageMask;

  Stream* match = nullptr;
  Stream* victim = &streams_[0];
  for (auto& s : streams_) {
    if (s.valid && s.page == page) {
      match = &s;
      break;
    }
    if (!s.valid || s.lru < victim->lru) victim = &s;
  }

  if (!match) {
    *victim = Stream{true, page, line, 0, 0, ++lru_clock_};
    return;
  }

  match->lru = ++lru_clock_;
  const std::int64_t delta =
      (static_cast<std::int64_t>(line) - static_cast<std::int64_t>(match->last_line)) /
      static_cast<std::int64_t>(kLineSize);
  if (delta == 1 || delta == -1) {
    const int dir = delta > 0 ? 1 : -1;
    match->confidence = (match->direction == dir) ? match->confidence + 1 : 1;
    match->direction = dir;
  } else if (delta != 0) {
    match->confidence = 0;
    match->direction = 0;
  }
  match->last_line = line;

  if (match->confidence >= config_.train_threshold && match->direction != 0) {
    for (unsigned i = 0; i < config_.degree; ++i) {
      const std::int64_t ahead =
          static_cast<std::int64_t>(config_.distance + i) * match->direction;
      const std::int64_t target = static_cast<std::int64_t>(line) +
                                  ahead * static_cast<std::int64_t>(kLineSize);
      if (target < 0) continue;
      const Addr t = static_cast<Addr>(target);
      if ((t & kPageMask) != page) continue;  // stop at the page boundary
      out.push_back(t);
      ++issued_;
    }
  }
}

void StreamPrefetcher::save(serial::Sink& s) const {
  s.u64(streams_.size());
  for (const Stream& st : streams_) {
    s.b(st.valid);
    s.u64(st.page);
    s.u64(st.last_line);
    s.i64(st.direction);
    s.u32(st.confidence);
    s.u64(st.lru);
  }
  s.u64(lru_clock_);
  s.u64(issued_);
}

void StreamPrefetcher::load(serial::Source& s) {
  if (s.u64() != streams_.size())
    throw std::runtime_error("prefetcher stream count mismatch");
  for (Stream& st : streams_) {
    st.valid = s.b();
    st.page = s.u64();
    st.last_line = s.u64();
    st.direction = static_cast<int>(s.i64());
    st.confidence = s.u32();
    st.lru = s.u64();
  }
  lru_clock_ = s.u64();
  issued_ = s.u64();
}

}  // namespace secddr::sim
