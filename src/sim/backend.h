// Multi-channel memory backend: the single seam the cache hierarchy talks
// to, owning `channels` x (DRAM channel + security engine + metadata
// layout slice).
//
// SecDDR's E-MAC/eWCRC protection is per-DDR-interface, so every channel
// carries its own SecurityEngine (and metadata cache) in front of its own
// DramSystem. Global physical addresses are routed by the address-
// interleaved ChannelSelector; each channel then operates on its dense
// local address space, with its metadata region carved above its local
// data slice — channel-local metadata never crosses the interface it
// protects.
//
// `channels == 1` (the default) is the identity configuration: one
// engine, one controller, addresses unchanged — bit-identical to the
// pre-backend single-channel pipeline (asserted by the
// SimFastPathDeterminism golden tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/serial.h"
#include "dram/address.h"
#include "dram/system.h"
#include "secmem/layout.h"
#include "secmem/model.h"

namespace secddr::sim {

/// Everything the backend needs to build its channels. The geometry's
/// `ranks`..`columns_per_row` describe one channel; `geometry.channels`
/// replicates it.
struct BackendConfig {
  dram::Geometry geometry;
  dram::Timings timings = dram::Timings::ddr4_3200();
  dram::SchedulingPolicy scheduling = dram::SchedulingPolicy::kFrFcfs;
  secmem::SecurityParams security = secmem::SecurityParams::baseline_tree_ctr();
  double core_mhz = 3200.0;
  /// Size of the (global) data region; each channel lays its metadata out
  /// above its `data_bytes / channels` local slice.
  std::uint64_t data_bytes = 8ull << 30;
  bool event_driven = true;
  /// Per-channel dynamic power/thermal accounting + policies (off by
  /// default; accounting alone never perturbs timing).
  dram::PowerConfig power;
  /// Opt-in per-channel tick parallelism: > 1 spreads the channels'
  /// controller + security-engine tick loops across that many persistent
  /// worker threads (clamped to the channel count; 1 = serial). Channels
  /// share no state between LLC handoff points and results are gathered
  /// in fixed channel order behind a barrier, so threaded and serial runs
  /// produce bit-identical RunResults.
  unsigned mem_threads = 1;
};

/// See file comment.
class MemoryBackend {
 public:
  explicit MemoryBackend(const BackendConfig& config);
  ~MemoryBackend();
  MemoryBackend(const MemoryBackend&) = delete;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  unsigned channels() const { return static_cast<unsigned>(channels_.size()); }
  /// Worker threads actually ticking channels (1 = serial path).
  unsigned mem_threads() const { return workers_ + 1; }

  /// Starts a secure data-line read; `tag` is reported via ready() when
  /// the decrypted and verified line is available. Routed to the owning
  /// channel's engine.
  void start_read(Addr addr, std::uint64_t tag, Cycle now);
  /// Posted secure data-line write, routed to the owning channel.
  void start_write(Addr addr, Cycle now);

  /// Advances one core cycle: every channel's DRAM clock domain and
  /// engine tick, gathering finished reads into ready().
  void tick(Cycle now);

  // --- epoch-decoupled execution --------------------------------------
  /// Advances every channel through core cycles (from, to] in one epoch:
  /// each worker runs its channels to the horizon with a channel-local
  /// clock (event-driven skips applied locally), rejoining the barrier
  /// once per window instead of once per cycle. The caller guarantees no
  /// start_read/start_write lands inside the window and that `to` does
  /// not exceed ready_window(from) — that makes the run-ahead
  /// rollback-free and bit-identical to per-cycle ticking. Finished
  /// reads are gathered into ready() in fixed channel order at the end.
  void run_window(Cycle from, Cycle to);
  /// Safe horizon: the earliest core cycle (> now) at which any channel
  /// could push into ready(), i.e. produce output the MemorySystem can
  /// observe (min over channels of SecurityEngine::ready_bound).
  /// Absent new inputs, ticking everything up to this cycle is
  /// externally invisible, so it bounds a rollback-free epoch. kNoEvent
  /// when no channel holds a read anywhere in its pipeline.
  Cycle ready_window(Cycle now) const;
  /// Barrier-crossing telemetry: epochs dispatched and core cycles they
  /// covered since the last reset_stats(). cycles/epochs is the mean
  /// window width (1 in per-cycle mode; the whole point of the epoch
  /// refactor is driving this up). barrier_crossings counts the epochs
  /// that actually woke the worker threads (wide windows only;
  /// single-cycle epochs run on the caller).
  std::uint64_t dispatch_epochs() const { return dispatch_epochs_; }
  std::uint64_t dispatch_cycles() const { return dispatch_cycles_; }
  std::uint64_t barrier_crossings() const { return barrier_crossings_; }

  /// Ready reads since the last drain, across all channels (caller clears).
  std::vector<secmem::ReadReady>& ready() { return ready_; }

  /// Engine-event query for the event-driven loop: min over channels (a
  /// deferred issue retry on any channel means the next tick can act).
  Cycle next_event_cycle(Cycle now) const;
  /// True while any channel holds a completion that must surface on the
  /// very next tick (skipping would stamp it late).
  bool has_undrained_completions() const;
  /// Upcoming core cycles every channel's DRAM guarantees are no-ops
  /// (min over channels); kNoEvent when all are fully idle.
  Cycle idle_core_cycles() const;
  /// Fast-forwards `cycles` ticks previously reported idle: advances every
  /// channel's clock domains without running no-op ticks.
  void advance_idle(Cycle cycles);

  /// True when no channel holds outstanding work of any kind — the drain
  /// condition for tests and harness drain loops.
  bool drain_ready() const { return outstanding() == 0; }
  /// Outstanding transactions summed over channels.
  std::size_t outstanding() const;

  // --- statistics -----------------------------------------------------
  /// Aggregate over channels (integer sums; equals channel 0's stats when
  /// channels == 1).
  secmem::EngineStats engine_stats() const;
  dram::ControllerStats dram_stats() const;
  std::vector<secmem::EngineStats> engine_stats_per_channel() const;
  std::vector<dram::ControllerStats> dram_stats_per_channel() const;
  /// Per-channel power/thermal reports (empty-report entries when power
  /// accounting is disabled). Non-const: catches lazy window accounting
  /// up to each channel's current memory cycle (behavior-neutral).
  std::vector<dram::PowerReport> power_reports();
  /// Metadata-cache traffic summed over the per-channel caches.
  std::uint64_t metadata_accesses() const;
  double metadata_miss_rate() const;
  /// Clears statistics after warmup; cache/queue state is preserved.
  void reset_stats();

  /// Checkpoint hooks: every channel's DRAM system + security engine (in
  /// channel order), the gathered ready list, and the epoch telemetry.
  /// Safe to call between epochs only (workers are parked then; all
  /// channel state is owned by the caller thread). load() requires a
  /// backend built from the identical config.
  void save(serial::Sink& s) const;
  void load(serial::Source& s);

  // --- per-channel access (tests, analyses) ---------------------------
  const dram::ChannelSelector& selector() const { return selector_; }
  secmem::SecurityEngine& engine(unsigned channel = 0) {
    return *channels_[channel].engine;
  }
  dram::DramSystem& dram(unsigned channel = 0) {
    return *channels_[channel].dram;
  }
  const secmem::MetadataLayout& layout(unsigned channel = 0) const {
    return *channels_[channel].layout;
  }

 private:
  struct Channel {
    std::unique_ptr<secmem::MetadataLayout> layout;
    std::unique_ptr<dram::DramSystem> dram;
    std::unique_ptr<secmem::SecurityEngine> engine;
  };

  /// Runs channels [begin, end) through core cycles (from, to]: plain
  /// per-cycle ticks for width-1 windows and the per-cycle reference
  /// loop, the engines' batched tick_until (channel-local clock +
  /// event-driven skips) for wider epoch windows.
  void tick_range(unsigned begin, unsigned end, Cycle from, Cycle to);
  /// Common epoch dispatch behind tick()/run_window(): publishes the
  /// window, crosses the barrier once, gathers ready() in channel order.
  void dispatch(Cycle from, Cycle to);
  void worker_loop(unsigned worker);

  dram::ChannelSelector selector_;
  std::vector<Channel> channels_;
  std::vector<secmem::ReadReady> ready_;
  bool event_driven_ = false;
  std::uint64_t dispatch_epochs_ = 0;
  std::uint64_t dispatch_cycles_ = 0;
  std::uint64_t barrier_crossings_ = 0;

  // --- opt-in per-channel tick threading ------------------------------
  // Epoch-window barrier: dispatch() publishes the window bounds and
  // bumps `epoch_` (release); each worker runs its contiguous channel
  // range through the whole window and stamps its `done` slot with the
  // epoch (release); dispatch() waits until every slot caught up
  // (acquire), then drains the engines' ready lists in fixed channel
  // order. Between epochs the workers only watch `epoch_`, so all other
  // backend methods stay plain serial code; the acquire/release pairs
  // order every cross-thread channel access. Both wait sides spin
  // briefly then park on the atomic (C++20 wait/notify) — see
  // bounded_wait in backend.cc.
  struct alignas(64) DoneSlot {
    std::atomic<std::uint64_t> v{0};
  };
  unsigned workers_ = 0;  ///< extra threads beyond the caller (0 = serial)
  std::vector<std::thread> threads_;
  std::vector<std::pair<unsigned, unsigned>> ranges_;  ///< per worker+caller
  std::unique_ptr<DoneSlot[]> done_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  Cycle tick_from_ = 0;  ///< window bounds, published before the epoch
  Cycle tick_to_ = 0;    ///< release-store
};

}  // namespace secddr::sim
