#include "sim/system.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace secddr::sim {

System::System(const SystemConfig& config, std::vector<TraceSource*> traces)
    : config_(config) {
  assert(traces.size() == config.mem.cores);
  BackendConfig bc;
  bc.geometry = config.geometry;
  bc.timings = config.timings;
  bc.scheduling = config.scheduling;
  bc.security = config.security;
  bc.core_mhz = config.core_mhz;
  bc.data_bytes = config.data_bytes;
  bc.event_driven = config.event_driven;
  bc.mem_threads = config.mem_threads;
  bc.power = config.power;
  backend_ = std::make_unique<MemoryBackend>(bc);
  memory_ = std::make_unique<MemorySystem>(config.mem, *backend_);
  cores_.reserve(traces.size());
  for (unsigned c = 0; c < config.mem.cores; ++c)
    cores_.push_back(
        std::make_unique<Core>(c, config.core, *traces[c], *memory_));
}

void System::begin(std::uint64_t instructions_per_core, Cycle max_cycles,
                   std::uint64_t warmup_instructions) {
  st_ = RunState{};
  st_.active = true;
  st_.instructions = instructions_per_core;
  st_.warmup = warmup_instructions;
  st_.max_cycles = max_cycles;
  st_.phase = warmup_instructions > 0 ? 0 : 1;
  const std::uint64_t budget =
      st_.phase == 0 ? warmup_instructions
                     : warmup_instructions + instructions_per_core;
  for (auto& core : cores_) core->set_instruction_budget(budget);
}

bool System::finish_phase(bool at_limit) {
  // hit_limit aggregates across phases: a warmup that ran into the limit
  // must be reported even when the (freshly counted) measured phase
  // finishes under it — otherwise the result silently covers fewer warmup
  // instructions than requested. Every channel is ticked on every memory
  // tick up to the limit cycle itself, so no completion can be stranded
  // in a non-ticked channel when the limit hits.
  st_.hit_limit = st_.hit_limit || at_limit;
  if (st_.phase == 0) {
    for (auto& core : cores_) core->reset_stats();
    memory_->reset_stats();
    backend_->reset_stats();
    for (auto& core : cores_)
      core->set_instruction_budget(st_.warmup + st_.instructions);
    st_.phase = 1;
    st_.cycle = 0;
    st_.deny_streak = 0;
    st_.attempt_pause = 0;
    return true;
  }
  st_.active = false;
  return false;
}

bool System::step(Cycle budget) {
  if (!st_.active) return false;
  const Cycle limit = st_.max_cycles;
  while (budget > 0) {
    if (st_.cycle >= limit) return finish_phase(true);
    bool all_done = true;
    for (auto& core : cores_) {
      core->tick();
      all_done = all_done && core->finished();
    }
    memory_->tick();
    --budget;
    // Boundary stop after a phase transition (even with budget left):
    // this is the exact post-warmup state a warm-start checkpoint wants.
    if (all_done) return finish_phase(false);
    ++st_.cycle;
    if (!config_.event_driven) continue;
    if (st_.attempt_pause > 0) {
      --st_.attempt_pause;
      continue;
    }

    // Epoch-decoupled fast path: find the span no core can act in,
    // clamp it to the memory system's safe horizon, and run the whole
    // window as one backend epoch. Core-side cycles are provable
    // no-ops and get replayed (advance_idle() / account_blocked_
    // retries() reproduce the cycle and load-stall counters, failing-
    // issue cache-stat bumps, bulk compute-batch retirement); memory-
    // side cycles are *executed*, each channel running to the horizon
    // on its local clock, with fills and completion flags drained at
    // the boundary — which window_bound() proves is where the serial
    // per-cycle loop would first have observed them. Results stay
    // bit-identical to the per-cycle loop.
    //
    // The core bound is checked first: under the epoch model the
    // memory side always grants a window of >= 1, so only a core veto
    // (someone acts next cycle) can deny — the opposite polarity of
    // the pre-epoch loop, where DRAM saturation denied the skip.
    Cycle skip = limit - st_.cycle;
    std::uint64_t blocked_cores = 0;
    for (auto& core : cores_) {
      if (skip == 0) break;
      Addr blocked_addr;
      if (core->blocked_on_issue(&blocked_addr)) {
        // Retrying an issue every cycle; skippable only if the retry
        // provably keeps failing until a memory event.
        if (!memory_->issue_blocked_for(core->id(), blocked_addr)) {
          skip = 0;
          break;
        }
        ++blocked_cores;
        continue;
      }
      skip = std::min(skip, core->next_event_cycle(st_.cycle - 1) - st_.cycle);
    }
    if (skip == 0) {
      // Saturation backoff: when the cores keep vetoing windows (someone
      // can act on the very next cycle), pause the window queries for a
      // while — attempting a window is optional, so this cannot change
      // results, it only sheds query overhead while nothing is batchable.
      if (++st_.deny_streak >= 16) {
        st_.attempt_pause = 16;
        st_.deny_streak = 0;
      }
      continue;
    }
    st_.deny_streak = 0;
    skip = std::min(skip, memory_->window_bound());
    // Slice clamp: never run past the budget. A shorter window is just a
    // different (still safe) epoch partition, so results are unchanged.
    skip = std::min(skip, budget);
    if (skip == 0) continue;  // the tick itself spent the last cycle
    for (auto& core : cores_) core->advance_idle(skip);
    memory_->account_blocked_retries(blocked_cores * skip);
    memory_->advance_window(skip);
    st_.cycle += skip;
    budget -= skip;
  }
  return true;
}

RunResult System::result() const {
  RunResult r;
  r.cycles = st_.cycle;
  r.hit_cycle_limit = st_.hit_limit;
  std::uint64_t total_instr = 0;
  for (const auto& core : cores_) {
    r.cores.push_back(core->stats());
    r.total_ipc += core->stats().ipc();
    total_instr += core->stats().instructions;
  }
  r.mem = memory_->stats();
  r.engine = backend_->engine_stats();
  r.dram = backend_->dram_stats();
  r.engine_per_channel = backend_->engine_stats_per_channel();
  r.dram_per_channel = backend_->dram_stats_per_channel();
  r.power_per_channel = backend_->power_reports();
  r.llc_mpki = total_instr ? 1000.0 *
                                 static_cast<double>(r.mem.llc_demand_misses) /
                                 static_cast<double>(total_instr)
                           : 0.0;
  r.metadata_accesses = backend_->metadata_accesses();
  r.metadata_miss_rate = backend_->metadata_miss_rate();
  return r;
}

RunResult System::run(std::uint64_t instructions_per_core, Cycle max_cycles,
                      std::uint64_t warmup_instructions) {
  begin(instructions_per_core, max_cycles, warmup_instructions);
  while (step(kNoEvent)) {
  }
  return result();
}

void System::save(serial::Sink& s) const {
  backend_->save(s);
  // Cores before the memory hierarchy: load() must rebuild the ROBs
  // before it can decode MSHR waiter tokens back into done-flag pointers.
  for (const auto& core : cores_) core->save(s);
  memory_->save(s, [this](bool* flag) -> std::uint64_t {
    for (std::size_t c = 0; c < cores_.size(); ++c) {
      const std::int64_t idx = cores_[c]->done_flag_index(flag);
      if (idx >= 0)
        return (static_cast<std::uint64_t>(c) << 32) |
               static_cast<std::uint64_t>(idx);
    }
    throw std::runtime_error("completion flag points outside every ROB");
  });
  s.b(st_.active);
  s.u64(st_.instructions);
  s.u64(st_.warmup);
  s.u64(st_.max_cycles);
  s.u32(st_.phase);
  s.u64(st_.cycle);
  s.u32(st_.deny_streak);
  s.u32(st_.attempt_pause);
  s.b(st_.hit_limit);
}

void System::load(serial::Source& s) {
  backend_->load(s);
  for (auto& core : cores_) core->load(s);
  memory_->load(s, [this](std::uint64_t token) -> bool* {
    const std::size_t c = static_cast<std::size_t>(token >> 32);
    if (c >= cores_.size())
      throw std::runtime_error("completion-flag token names a bad core");
    return cores_[c]->done_flag_at(token & 0xFFFFFFFFull);
  });
  st_.active = s.b();
  st_.instructions = s.u64();
  st_.warmup = s.u64();
  st_.max_cycles = s.u64();
  st_.phase = s.u32();
  st_.cycle = s.u64();
  st_.deny_streak = s.u32();
  st_.attempt_pause = s.u32();
  st_.hit_limit = s.b();
}

std::uint64_t System::config_hash() const {
  serial::Sink s;
  s.u32(config_.core.rob_size);
  s.u32(config_.core.retire_width);
  s.u32(config_.mem.cores);
  s.u64(config_.mem.l1_bytes);
  s.u32(config_.mem.l1_assoc);
  s.u32(config_.mem.l1_latency);
  s.u64(config_.mem.llc_bytes);
  s.u32(config_.mem.llc_assoc);
  s.u32(config_.mem.llc_latency);
  s.u32(config_.mem.mshrs);
  s.b(config_.mem.prefetch);
  s.u32(config_.mem.prefetcher.streams);
  s.u32(config_.mem.prefetcher.degree);
  s.u32(config_.mem.prefetcher.distance);
  s.u32(config_.mem.prefetcher.train_threshold);
  s.f64(config_.core_mhz);
  s.u32(config_.geometry.channels);
  s.u8(static_cast<std::uint8_t>(config_.geometry.channel_interleave));
  s.u32(config_.geometry.ranks);
  s.u32(config_.geometry.bank_groups);
  s.u32(config_.geometry.banks_per_group);
  s.u64(config_.geometry.rows_per_bank);
  s.u32(config_.geometry.columns_per_row);
  s.f64(config_.timings.clock_mhz);
  s.u32(config_.timings.tCL);
  s.u32(config_.timings.tRCD);
  s.u32(config_.timings.tRP);
  s.u32(config_.timings.tRAS);
  s.u32(config_.timings.tCCD_S);
  s.u32(config_.timings.tCCD_L);
  s.u32(config_.timings.tCWL);
  s.u32(config_.timings.tWTR_S);
  s.u32(config_.timings.tWTR_L);
  s.u32(config_.timings.tRRD_S);
  s.u32(config_.timings.tRRD_L);
  s.u32(config_.timings.tFAW);
  s.u32(config_.timings.tWR);
  s.u32(config_.timings.tRTP);
  s.u32(config_.timings.tRFC);
  s.u32(config_.timings.tREFI);
  s.u32(config_.timings.turnaround);
  s.u32(config_.timings.read_burst_cycles);
  s.u32(config_.timings.write_burst_cycles);
  s.u8(static_cast<std::uint8_t>(config_.scheduling));
  s.u8(static_cast<std::uint8_t>(config_.security.rap));
  s.u8(static_cast<std::uint8_t>(config_.security.enc));
  s.u32(config_.security.tree_arity);
  s.u32(config_.security.counters_per_line);
  s.b(config_.security.hash_tree_over_macs);
  s.b(config_.security.macs_in_ecc);
  s.b(config_.security.verify_mac);
  s.u32(config_.security.aes_latency);
  s.u32(config_.security.mac_latency);
  s.u64(config_.security.metadata_cache_bytes);
  s.u32(config_.security.metadata_cache_assoc);
  s.u32(config_.security.auth_channel_macs);
  s.b(config_.security.ewcrc);
  s.u64(config_.data_bytes);
  // Power/thermal block: accounting changes RunResult bytes and the
  // policies change timing, so every field is result-affecting.
  s.b(config_.power.enabled);
  s.u64(config_.power.window_cycles);
  s.u64(config_.power.energy.act_fj);
  s.u64(config_.power.energy.pre_fj);
  s.u64(config_.power.energy.rd_fj);
  s.u64(config_.power.energy.wr_fj);
  s.u64(config_.power.energy.ref_fj);
  s.u64(config_.power.energy.background_fj_per_cycle);
  s.u32(config_.power.thermal.r_mk_per_w);
  s.u64(config_.power.thermal.c_nj_per_k);
  s.i64(config_.power.thermal.ambient_mc);
  s.b(config_.power.throttle);
  s.i64(config_.power.trip_mc);
  s.i64(config_.power.release_mc);
  s.u64(config_.power.throttle_period);
  s.b(config_.power.remap);
  s.i64(config_.power.remap_delta_mc);
  s.u64(config_.power.remap_min_windows);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit
  for (std::size_t i = 0; i < s.size(); ++i) {
    h ^= s.data()[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace secddr::sim
