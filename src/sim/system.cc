#include "sim/system.h"

#include <cassert>

namespace secddr::sim {

System::System(const SystemConfig& config, std::vector<TraceSource*> traces)
    : config_(config) {
  assert(traces.size() == config.mem.cores);
  BackendConfig bc;
  bc.geometry = config.geometry;
  bc.timings = config.timings;
  bc.scheduling = config.scheduling;
  bc.security = config.security;
  bc.core_mhz = config.core_mhz;
  bc.data_bytes = config.data_bytes;
  bc.event_driven = config.event_driven;
  bc.mem_threads = config.mem_threads;
  backend_ = std::make_unique<MemoryBackend>(bc);
  memory_ = std::make_unique<MemorySystem>(config.mem, *backend_);
  cores_.reserve(traces.size());
  for (unsigned c = 0; c < config.mem.cores; ++c)
    cores_.push_back(
        std::make_unique<Core>(c, config.core, *traces[c], *memory_));
}

RunResult System::run(std::uint64_t instructions_per_core, Cycle max_cycles,
                      std::uint64_t warmup_instructions) {
  auto run_phase = [&](std::uint64_t budget, Cycle limit) -> Cycle {
    for (auto& core : cores_) core->set_instruction_budget(budget);
    Cycle cycle = 0;
    // Saturation backoff: when the cores keep vetoing windows (someone
    // can act on the very next cycle), pause the window queries for a
    // while — attempting a window is optional, so this cannot change
    // results, it only sheds query overhead while nothing is batchable.
    unsigned deny_streak = 0, attempt_pause = 0;
    for (; cycle < limit; ++cycle) {
      bool all_done = true;
      for (auto& core : cores_) {
        core->tick();
        all_done = all_done && core->finished();
      }
      memory_->tick();
      if (all_done) break;
      if (!config_.event_driven) continue;
      if (attempt_pause > 0) {
        --attempt_pause;
        continue;
      }

      // Epoch-decoupled fast path: find the span no core can act in,
      // clamp it to the memory system's safe horizon, and run the whole
      // window as one backend epoch. Core-side cycles are provable
      // no-ops and get replayed (advance_idle() / account_blocked_
      // retries() reproduce the cycle and load-stall counters, failing-
      // issue cache-stat bumps, bulk compute-batch retirement); memory-
      // side cycles are *executed*, each channel running to the horizon
      // on its local clock, with fills and completion flags drained at
      // the boundary — which window_bound() proves is where the serial
      // per-cycle loop would first have observed them. Results stay
      // bit-identical to the per-cycle loop.
      //
      // The core bound is checked first: under the epoch model the
      // memory side always grants a window of >= 1, so only a core veto
      // (someone acts next cycle) can deny — the opposite polarity of
      // the pre-epoch loop, where DRAM saturation denied the skip.
      Cycle skip = limit - (cycle + 1);
      std::uint64_t blocked_cores = 0;
      for (auto& core : cores_) {
        if (skip == 0) break;
        Addr blocked_addr;
        if (core->blocked_on_issue(&blocked_addr)) {
          // Retrying an issue every cycle; skippable only if the retry
          // provably keeps failing until a memory event.
          if (!memory_->issue_blocked_for(core->id(), blocked_addr)) {
            skip = 0;
            break;
          }
          ++blocked_cores;
          continue;
        }
        skip = std::min(skip, core->next_event_cycle(cycle) - (cycle + 1));
      }
      if (skip == 0) {
        if (++deny_streak >= 16) {
          attempt_pause = 16;
          deny_streak = 0;
        }
        continue;
      }
      deny_streak = 0;
      skip = std::min(skip, memory_->window_bound());
      for (auto& core : cores_) core->advance_idle(skip);
      memory_->account_blocked_retries(blocked_cores * skip);
      memory_->advance_window(skip);
      cycle += skip;  // the for-increment supplies the final +1
    }
    return cycle;
  };

  // hit_cycle_limit aggregates across phases: a warmup that ran into the
  // limit must be reported even when the (freshly counted) measured phase
  // finishes under it — otherwise the result silently covers fewer warmup
  // instructions than requested. Every channel is ticked on every memory
  // tick up to the limit cycle itself, so no completion can be stranded
  // in a non-ticked channel when the limit hits.
  bool hit_limit = false;
  if (warmup_instructions > 0) {
    hit_limit = run_phase(warmup_instructions, max_cycles) >= max_cycles;
    for (auto& core : cores_) core->reset_stats();
    memory_->reset_stats();
    backend_->reset_stats();
  }
  const Cycle cycle =
      run_phase(warmup_instructions + instructions_per_core, max_cycles);

  RunResult r;
  r.cycles = cycle;
  r.hit_cycle_limit = hit_limit || cycle >= max_cycles;
  std::uint64_t total_instr = 0;
  for (auto& core : cores_) {
    r.cores.push_back(core->stats());
    r.total_ipc += core->stats().ipc();
    total_instr += core->stats().instructions;
  }
  r.mem = memory_->stats();
  r.engine = backend_->engine_stats();
  r.dram = backend_->dram_stats();
  r.engine_per_channel = backend_->engine_stats_per_channel();
  r.dram_per_channel = backend_->dram_stats_per_channel();
  r.llc_mpki = total_instr ? 1000.0 *
                                 static_cast<double>(r.mem.llc_demand_misses) /
                                 static_cast<double>(total_instr)
                           : 0.0;
  r.metadata_accesses = backend_->metadata_accesses();
  r.metadata_miss_rate = backend_->metadata_miss_rate();
  return r;
}

}  // namespace secddr::sim
