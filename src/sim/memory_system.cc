#include "sim/memory_system.h"

#include <cassert>

namespace secddr::sim {

MemorySystem::MemorySystem(const MemConfig& config, MemoryBackend& backend)
    : config_(config),
      backend_(backend),
      llc_(config.llc_bytes, config.llc_assoc),
      prefetcher_(config.prefetcher),
      mshrs_(config.mshrs) {
  l1s_.reserve(config.cores);
  for (unsigned c = 0; c < config.cores; ++c)
    l1s_.emplace_back(config.l1_bytes, config.l1_assoc);
  stats_.llc_demand_misses_per_core.assign(config.cores, 0);
  blocked_memo_.resize(config.cores);
  mshr_map_.init(config.mshrs);
  mshr_free_.reserve(config.mshrs);
  // Descending so the LIFO free list hands out the lowest index first.
  for (unsigned i = config.mshrs; i-- > 0;) mshr_free_.push_back(i);
}

int MemorySystem::find_mshr(Addr line) const {
  return mshr_map_.find(line);
}

int MemorySystem::alloc_mshr(Addr line) {
  if (mshr_free_.empty()) return -1;
  ++fill_version_;
  const unsigned idx = mshr_free_.back();
  mshr_free_.pop_back();
  mshr_map_.insert(line, idx);
  return static_cast<int>(idx);
}

void MemorySystem::release_mshr(std::size_t idx) {
  ++fill_version_;
  Mshr& m = mshrs_[idx];
  mshr_map_.erase(m.line);
  mshr_free_.push_back(static_cast<unsigned>(idx));
  m.valid = false;
  m.waiters.clear();
}

void MemorySystem::complete_at(Cycle at, bool* flag) {
  if (flag == nullptr) return;
  done_q_.push({at, flag});
}

bool MemorySystem::access_llc(unsigned core_id, Addr line, bool dirty,
                              bool* done) {
  ++stats_.llc_demand_accesses;
  const int inflight = find_mshr(line);
  if (inflight >= 0) {
    // The line is (or is being) fetched: join the fill.
    llc_.touch(line, dirty);
    if (done) mshrs_[static_cast<std::size_t>(inflight)].waiters.push_back(done);
    mshrs_[static_cast<std::size_t>(inflight)].demand = true;
    return true;
  }
  if (llc_.probe(line)) {
    llc_.touch(line, dirty);
    complete_at(now_ + config_.llc_latency, done);
    return true;
  }

  // LLC miss: allocate an MSHR and start the secure read.
  const int free = alloc_mshr(line);
  if (free < 0) return false;  // caller retries next cycle

  ++stats_.llc_demand_misses;
  ++stats_.llc_demand_misses_per_core[core_id];

  Mshr& m = mshrs_[static_cast<std::size_t>(free)];
  m.valid = true;
  m.line = line;
  m.demand = true;
  m.waiters.clear();
  if (done) m.waiters.push_back(done);

  // Install now; arrival is defined by the MSHR. Dirty victims write back
  // through the security engine.
  const auto victim = llc_.install(line, dirty);
  if (victim.evicted && victim.victim_dirty) {
    ++stats_.llc_writebacks;
    backend_.start_write(victim.victim_addr, now_);
  }
  backend_.start_read(line, static_cast<std::uint64_t>(free), now_);

  if (config_.prefetch) issue_prefetches(line);
  return true;
}

void MemorySystem::issue_prefetches(Addr line) {
  std::vector<Addr> candidates;
  prefetcher_.train(line, candidates);
  for (Addr p : candidates) {
    if (llc_.probe(p) || find_mshr(p) >= 0) continue;
    // Keep at least a quarter of the MSHRs for demand traffic.
    if (mshr_free_.size() <= config_.mshrs / 4) return;
    const int free = alloc_mshr(p);
    if (free < 0) return;
    Mshr& m = mshrs_[static_cast<std::size_t>(free)];
    m.valid = true;
    m.line = p;
    m.demand = false;
    m.waiters.clear();
    ++stats_.prefetch_fills;
    const auto victim = llc_.install(p, false);
    if (victim.evicted && victim.victim_dirty) {
      ++stats_.llc_writebacks;
      backend_.start_write(victim.victim_addr, now_);
    }
    backend_.start_read(p, static_cast<std::uint64_t>(free), now_);
  }
}

bool MemorySystem::issue_load(unsigned core_id, Addr addr, bool* done) {
  assert(core_id < l1s_.size());
  const Addr line = line_base(addr);
  // Memoized failing retry: while the line is provably blocked (missing
  // everywhere, no free MSHR — nothing has bumped fill_version_ since),
  // the retry's only effect is this exact stat bump, so the cache/MSHR
  // lookups can be skipped wholesale.
  BlockedMemo& memo = blocked_memo_[core_id];
  if (memo.blocked && memo.version == fill_version_ && memo.line == line) {
    ++stats_.l1_accesses;
    ++stats_.l1_misses;
    ++stats_.llc_demand_accesses;
    return false;
  }
  ++stats_.l1_accesses;
  SetAssocCache& l1 = l1s_[core_id];
  if (l1.probe(line)) {
    l1.touch(line, false);
    complete_at(now_ + config_.l1_latency, done);
    return true;
  }
  ++stats_.l1_misses;
  if (!access_llc(core_id, line, false, done)) {
    // access_llc fails only when the line missed everywhere and no MSHR
    // was free — exactly the blocked predicate.
    memo.version = fill_version_;
    memo.line = line;
    memo.blocked = true;
    return false;
  }
  const auto victim = l1.install(line, false);
  if (victim.evicted && victim.victim_dirty) {
    // L1 dirty eviction folds into the (inclusive) LLC.
    if (!llc_.touch(victim.victim_addr, true)) {
      ++fill_version_;  // the install below can unblock a waiting core
      const auto v2 = llc_.install(victim.victim_addr, true);
      if (v2.evicted && v2.victim_dirty) {
        ++stats_.llc_writebacks;
        backend_.start_write(v2.victim_addr, now_);
      }
    }
  }
  return true;
}

bool MemorySystem::issue_store(unsigned core_id, Addr addr) {
  assert(core_id < l1s_.size());
  const Addr line = line_base(addr);
  // Same memoized failing-retry fast path as issue_load.
  BlockedMemo& memo = blocked_memo_[core_id];
  if (memo.blocked && memo.version == fill_version_ && memo.line == line) {
    ++stats_.l1_accesses;
    ++stats_.l1_misses;
    ++stats_.llc_demand_accesses;
    return false;
  }
  ++stats_.l1_accesses;
  SetAssocCache& l1 = l1s_[core_id];
  if (l1.probe(line)) {
    l1.touch(line, true);
    return true;
  }
  ++stats_.l1_misses;
  // Write-allocate: fetch the line (RFO) then dirty it in the L1.
  if (!access_llc(core_id, line, true, nullptr)) {
    memo.version = fill_version_;
    memo.line = line;
    memo.blocked = true;
    return false;
  }
  const auto victim = l1.install(line, true);
  if (victim.evicted && victim.victim_dirty) {
    if (!llc_.touch(victim.victim_addr, true)) {
      ++fill_version_;  // the install below can unblock a waiting core
      const auto v2 = llc_.install(victim.victim_addr, true);
      if (v2.evicted && v2.victim_dirty) {
        ++stats_.llc_writebacks;
        backend_.start_write(v2.victim_addr, now_);
      }
    }
  }
  return true;
}

void MemorySystem::drain_boundary() {
  // Secure reads that are ready fill the LLC and wake their waiters.
  for (const auto& r : backend_.ready()) {
    const std::size_t idx = static_cast<std::size_t>(r.tag);
    assert(idx < mshrs_.size() && mshrs_[idx].valid);
    Mshr& m = mshrs_[idx];
    const Cycle at = std::max(r.at, now_) + config_.l1_latency;
    for (bool* w : m.waiters) complete_at(at, w);
    release_mshr(idx);
  }
  backend_.ready().clear();

  while (!done_q_.empty() && done_q_.top().at <= now_) {
    *done_q_.top().flag = true;
    done_q_.pop();
  }
}

void MemorySystem::tick() {
  ++now_;
  backend_.tick(now_);
  drain_boundary();
}

Cycle MemorySystem::window_bound() const {
  Cycle bound = backend_.ready_window(now_);
  // A completion flag scheduled for `at` must be raised by the tick that
  // advances now_ to `at` (at > now_ is an invariant: matured entries
  // are drained before this query can run), so the window may end there
  // but not later.
  if (!done_q_.empty())
    bound = std::min(bound, done_q_.top().at);
  return bound == kNoEvent ? kNoEvent : bound - now_;
}

void MemorySystem::advance_window(Cycle ticks) {
  const Cycle from = now_;
  now_ += ticks;
  backend_.run_window(from, now_);
  // Nothing became observable before the final tick (that is what
  // window_bound() guarantees), so draining once at the boundary sees
  // exactly what per-cycle draining would have seen, with the same now_.
  drain_boundary();
}

bool MemorySystem::issue_blocked_for(unsigned core_id, Addr addr) const {
  // Memoized per core against fill_version_: the predicate's inputs (MSHR
  // occupancy, the line's presence anywhere) only change at version bumps
  // — the blocked core itself issues nothing while blocked, so its L1
  // cannot change underneath the cache.
  BlockedMemo& memo = blocked_memo_[core_id];
  const Addr line = line_base(addr);
  if (memo.version == fill_version_ && memo.line == line)
    return memo.blocked;
  memo.version = fill_version_;
  memo.line = line;
  memo.blocked = mshr_free_.empty() && !l1s_[core_id].probe(line) &&
                 find_mshr(line) < 0 && !llc_.probe(line);
  return memo.blocked;
}

Cycle MemorySystem::idle_cycles() const {
  // An engine (on any channel) retries deferred DRAM issues on every tick.
  if (backend_.next_event_cycle(now_) != kNoEvent) return 0;
  // A completion produced after this cycle's DRAM tick (write forwarding
  // or merging during an engine-issued enqueue) must surface on the very
  // next tick so its finish stamp matches the per-cycle loop.
  if (backend_.has_undrained_completions()) return 0;
  Cycle skip = kNoEvent;
  // A completion flag scheduled for cycle `at` is raised by the tick that
  // advances now_ to `at`; that tick must run (at > now_ is an invariant:
  // matured entries are drained before this query can be called).
  if (!done_q_.empty()) skip = done_q_.top().at - now_ - 1;
  return std::min(skip, backend_.idle_core_cycles());
}

void MemorySystem::advance_idle(Cycle cycles) {
  now_ += cycles;
  backend_.advance_idle(cycles);
}

void MemorySystem::save(serial::Sink& s, const FlagEncoder& encode_flag) const {
  for (const SetAssocCache& l1 : l1s_) l1.save(s);
  llc_.save(s);
  prefetcher_.save(s);

  s.u64(mshrs_.size());
  for (const Mshr& m : mshrs_) {
    s.b(m.valid);
    s.u64(m.line);
    s.b(m.demand);
    s.u64(m.waiters.size());
    for (bool* w : m.waiters) s.u64(encode_flag(w));
  }
  s.u64(mshr_free_.size());
  for (const unsigned idx : mshr_free_) s.u32(idx);
  s.u64(fill_version_);

  // Drain a copy of the priority queue: among equal maturity times the
  // pop order only decides which independent flag is raised first within
  // the same tick, so any heap-internal order is behaviorally identical.
  auto q = done_q_;
  s.u64(q.size());
  while (!q.empty()) {
    s.u64(q.top().at);
    s.u64(encode_flag(q.top().flag));
    q.pop();
  }

  s.u64(now_);
  s.u64(stats_.l1_accesses);
  s.u64(stats_.l1_misses);
  s.u64(stats_.llc_demand_accesses);
  s.u64(stats_.llc_demand_misses);
  s.u64(stats_.llc_writebacks);
  s.u64(stats_.prefetch_fills);
  s.u64(stats_.llc_demand_misses_per_core.size());
  for (const std::uint64_t v : stats_.llc_demand_misses_per_core) s.u64(v);
}

void MemorySystem::load(serial::Source& s, const FlagDecoder& decode_flag) {
  for (SetAssocCache& l1 : l1s_) l1.load(s);
  llc_.load(s);
  prefetcher_.load(s);

  if (s.u64() != mshrs_.size())
    throw std::runtime_error("MSHR count mismatch");
  mshr_map_.init(static_cast<unsigned>(mshrs_.size()));
  for (std::size_t i = 0; i < mshrs_.size(); ++i) {
    Mshr& m = mshrs_[i];
    m.valid = s.b();
    m.line = s.u64();
    m.demand = s.b();
    m.waiters.clear();
    const std::size_t nw = s.count(8);
    for (std::size_t w = 0; w < nw; ++w)
      m.waiters.push_back(decode_flag(s.u64()));
    if (m.valid) mshr_map_.insert(m.line, static_cast<unsigned>(i));
  }
  mshr_free_.clear();
  const std::size_t nfree = s.count(4);
  for (std::size_t i = 0; i < nfree; ++i) mshr_free_.push_back(s.u32());
  fill_version_ = s.u64();

  while (!done_q_.empty()) done_q_.pop();
  const std::size_t nq = s.count(16);
  for (std::size_t i = 0; i < nq; ++i) {
    const Cycle at = s.u64();
    done_q_.push({at, decode_flag(s.u64())});
  }

  now_ = s.u64();
  stats_.l1_accesses = s.u64();
  stats_.l1_misses = s.u64();
  stats_.llc_demand_accesses = s.u64();
  stats_.llc_demand_misses = s.u64();
  stats_.llc_writebacks = s.u64();
  stats_.prefetch_fills = s.u64();
  stats_.llc_demand_misses_per_core.clear();
  const std::size_t npc = s.count(8);
  for (std::size_t i = 0; i < npc; ++i)
    stats_.llc_demand_misses_per_core.push_back(s.u64());

  // The memo is a pure accelerator: a fresh (empty) memo recomputes the
  // predicate on first query and records the identical statistics a hit
  // would have, so resetting it cannot change results.
  blocked_memo_.assign(config_.cores, BlockedMemo{});
}

}  // namespace secddr::sim
