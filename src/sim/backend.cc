#include "sim/backend.h"

#include <algorithm>
#include <cassert>

namespace secddr::sim {

MemoryBackend::MemoryBackend(const BackendConfig& config)
    : selector_(config.geometry) {
  const unsigned n = config.geometry.channels;
  assert(n >= 1);
  // Per-channel tick threading: the caller ticks range 0 itself; workers
  // 1..W-1 tick the rest. Contiguous ranges keep each worker's channels
  // adjacent in memory.
  const unsigned want = config.mem_threads > 0 ? config.mem_threads : 1;
  const unsigned w = std::min(want, n);
  if (w > 1) {
    workers_ = w - 1;
    for (unsigned i = 0; i < w; ++i)
      ranges_.emplace_back(i * n / w, (i + 1) * n / w);
    done_ = std::make_unique<DoneSlot[]>(workers_);
  }
  // Each channel's local data slice must be dense: the selector removes
  // the channel bits, so the data region has to be a whole number of
  // interleave stripes per channel.
  [[maybe_unused]] const std::uint64_t stripe = Addr{1} << selector_.shift();
  assert(config.data_bytes % (static_cast<std::uint64_t>(n) * stripe) == 0 &&
         "data_bytes must be a multiple of channels * interleave stripe");
  const std::uint64_t local_data = config.data_bytes / n;

  // Apply the eWCRC write-burst extension where the config requires it —
  // per channel, since each DDR interface carries its own CRC beat.
  dram::Timings timings = config.timings;
  if (config.security.ewcrc) timings = timings.with_ewcrc_burst();

  channels_.reserve(n);
  for (unsigned c = 0; c < n; ++c) {
    Channel ch;
    ch.layout =
        std::make_unique<secmem::MetadataLayout>(config.security, local_data);
    assert(ch.layout->end_of_memory() <=
               config.geometry.channel_capacity_bytes() &&
           "per-channel data slice + metadata must fit in the channel");
    ch.dram = std::make_unique<dram::DramSystem>(
        config.geometry, timings, config.core_mhz, config.scheduling);
    ch.dram->set_event_driven(config.event_driven);
    ch.engine = std::make_unique<secmem::SecurityEngine>(
        config.security, *ch.layout, *ch.dram);
    channels_.push_back(std::move(ch));
  }
  // Spawn workers only after every channel exists.
  for (unsigned i = 0; i < workers_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

MemoryBackend::~MemoryBackend() {
  if (workers_ > 0) {
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto& t : threads_) t.join();
  }
}

void MemoryBackend::tick_channel(Channel& ch, Cycle now) {
  ch.dram->tick_core_cycle();
  ch.engine->tick(now);
}

namespace {
// Spin briefly, then yield: between ticks (event-driven skips, drain
// phases) a pure spin would burn a core doing nothing. Shared by the
// caller-side and worker-side waits so their backoff stays symmetric.
template <typename Pred>
void spin_until(Pred&& done) {
  unsigned spins = 0;
  while (!done()) {
    if (++spins >= 4096) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}
}  // namespace

void MemoryBackend::worker_loop(unsigned worker) {
  const auto [begin, end] = ranges_[worker + 1];
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e = seen;
    spin_until([&] {
      e = epoch_.load(std::memory_order_acquire);
      return e != seen;
    });
    if (stop_.load(std::memory_order_acquire)) return;
    const Cycle now = tick_now_;
    for (unsigned c = begin; c < end; ++c) tick_channel(channels_[c], now);
    seen = e;
    done_[worker].v.store(e, std::memory_order_release);
  }
}

void MemoryBackend::start_read(Addr addr, std::uint64_t tag, Cycle now) {
  const unsigned c = selector_.channel_of(addr);
  channels_[c].engine->start_read(selector_.to_local(addr), tag, now);
}

void MemoryBackend::start_write(Addr addr, Cycle now) {
  const unsigned c = selector_.channel_of(addr);
  channels_[c].engine->start_write(selector_.to_local(addr), now);
}

void MemoryBackend::tick(Cycle now) {
  if (workers_ == 0) {
    for (Channel& ch : channels_) tick_channel(ch, now);
  } else {
    tick_now_ = now;
    const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_release) + 1;
    const auto [begin, end] = ranges_[0];
    for (unsigned c = begin; c < end; ++c) tick_channel(channels_[c], now);
    for (unsigned w = 0; w < workers_; ++w)
      spin_until(
          [&] { return done_[w].v.load(std::memory_order_acquire) == e; });
  }
  // Fixed channel-order aggregation barrier: ready results are gathered
  // serially in channel order whatever thread produced them, so the
  // MemorySystem observes the exact sequence the serial path produces.
  for (Channel& ch : channels_) {
    auto& r = ch.engine->ready();
    if (!r.empty()) {
      ready_.insert(ready_.end(), r.begin(), r.end());
      r.clear();
    }
  }
}

Cycle MemoryBackend::next_event_cycle(Cycle now) const {
  Cycle next = kNoEvent;
  for (const Channel& ch : channels_)
    next = std::min(next, ch.engine->next_event_cycle(now));
  return next;
}

bool MemoryBackend::has_undrained_completions() const {
  for (const Channel& ch : channels_)
    if (ch.dram->has_undrained_completions()) return true;
  return false;
}

Cycle MemoryBackend::idle_core_cycles() const {
  Cycle idle = kNoEvent;
  for (const Channel& ch : channels_)
    idle = std::min(idle, ch.dram->idle_core_cycles());
  return idle;
}

void MemoryBackend::advance_idle(Cycle cycles) {
  for (Channel& ch : channels_) ch.dram->advance_idle_core_cycles(cycles);
}

std::size_t MemoryBackend::outstanding() const {
  std::size_t n = ready_.size();
  for (const Channel& ch : channels_) n += ch.engine->outstanding();
  return n;
}

secmem::EngineStats MemoryBackend::engine_stats() const {
  secmem::EngineStats total;
  for (const Channel& ch : channels_) total += ch.engine->stats();
  return total;
}

dram::ControllerStats MemoryBackend::dram_stats() const {
  dram::ControllerStats total;
  for (const Channel& ch : channels_) total += ch.dram->stats();
  return total;
}

std::vector<secmem::EngineStats> MemoryBackend::engine_stats_per_channel()
    const {
  std::vector<secmem::EngineStats> v;
  v.reserve(channels_.size());
  for (const Channel& ch : channels_) v.push_back(ch.engine->stats());
  return v;
}

std::vector<dram::ControllerStats> MemoryBackend::dram_stats_per_channel()
    const {
  std::vector<dram::ControllerStats> v;
  v.reserve(channels_.size());
  for (const Channel& ch : channels_) v.push_back(ch.dram->stats());
  return v;
}

std::uint64_t MemoryBackend::metadata_accesses() const {
  std::uint64_t n = 0;
  for (const Channel& ch : channels_)
    n += ch.engine->metadata_cache().accesses();
  return n;
}

double MemoryBackend::metadata_miss_rate() const {
  std::uint64_t accesses = 0, misses = 0;
  for (const Channel& ch : channels_) {
    accesses += ch.engine->metadata_cache().accesses();
    misses += ch.engine->metadata_cache().misses();
  }
  return accesses ? static_cast<double>(misses) /
                        static_cast<double>(accesses)
                  : 0.0;
}

void MemoryBackend::reset_stats() {
  for (Channel& ch : channels_) {
    ch.engine->reset_stats();
    ch.dram->reset_stats();
  }
}

}  // namespace secddr::sim
