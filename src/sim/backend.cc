#include "sim/backend.h"

#include <algorithm>
#include <cassert>

namespace secddr::sim {

MemoryBackend::MemoryBackend(const BackendConfig& config)
    : selector_(config.geometry), event_driven_(config.event_driven) {
  const unsigned n = config.geometry.channels;
  assert(n >= 1);
  // Per-channel tick threading: the caller ticks range 0 itself; workers
  // 1..W-1 tick the rest. Contiguous ranges keep each worker's channels
  // adjacent in memory.
  const unsigned want = config.mem_threads > 0 ? config.mem_threads : 1;
  const unsigned w = std::min(want, n);
  if (w > 1) {
    workers_ = w - 1;
    for (unsigned i = 0; i < w; ++i)
      ranges_.emplace_back(i * n / w, (i + 1) * n / w);
    done_ = std::make_unique<DoneSlot[]>(workers_);
  }
  // Each channel's local data slice must be dense: the selector removes
  // the channel bits, so the data region has to be a whole number of
  // interleave stripes per channel.
  [[maybe_unused]] const std::uint64_t stripe = Addr{1} << selector_.shift();
  assert(config.data_bytes % (static_cast<std::uint64_t>(n) * stripe) == 0 &&
         "data_bytes must be a multiple of channels * interleave stripe");
  const std::uint64_t local_data = config.data_bytes / n;

  // Apply the eWCRC write-burst extension where the config requires it —
  // per channel, since each DDR interface carries its own CRC beat.
  dram::Timings timings = config.timings;
  if (config.security.ewcrc) timings = timings.with_ewcrc_burst();

  channels_.reserve(n);
  for (unsigned c = 0; c < n; ++c) {
    Channel ch;
    ch.layout =
        std::make_unique<secmem::MetadataLayout>(config.security, local_data);
    assert(ch.layout->end_of_memory() <=
               config.geometry.channel_capacity_bytes() &&
           "per-channel data slice + metadata must fit in the channel");
    ch.dram = std::make_unique<dram::DramSystem>(
        config.geometry, timings, config.core_mhz, config.scheduling,
        config.power);
    ch.dram->set_event_driven(config.event_driven);
    ch.engine = std::make_unique<secmem::SecurityEngine>(
        config.security, *ch.layout, *ch.dram);
    channels_.push_back(std::move(ch));
  }
  // Spawn workers only after every channel exists.
  for (unsigned i = 0; i < workers_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

MemoryBackend::~MemoryBackend() {
  if (workers_ > 0) {
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (auto& t : threads_) t.join();
  }
}

void MemoryBackend::tick_range(unsigned begin, unsigned end, Cycle from,
                               Cycle to) {
  for (unsigned c = begin; c < end; ++c) {
    Channel& ch = channels_[c];
    if (!event_driven_ || to - from == 1) {
      // Per-cycle reference path (and single-cycle epochs): identical to
      // the pre-epoch tick sequence, kept plain so the bit-exact
      // reference loop stays untouched.
      for (Cycle t = from + 1; t <= to; ++t) {
        ch.dram->tick_core_cycle();
        ch.engine->tick(t);
      }
    } else {
      ch.engine->tick_until(from, to);
    }
  }
}

namespace {
// Bounded spin, then park on the atomic (C++20 wait/notify): short
// epochs resolve within the spin so no syscall happens on the hot path,
// while latency-idle phases park the thread instead of burning a core.
// The notify side is unconditional — libstdc++ skips the futex syscall
// when nobody is parked, so it costs one uncontended load per epoch.
template <typename Load>
void bounded_wait(std::atomic<std::uint64_t>& a, Load&& stale) {
  constexpr unsigned kSpins = 4096;
  for (;;) {
    std::uint64_t v = 0;
    for (unsigned spins = 0; spins < kSpins; ++spins) {
      v = a.load(std::memory_order_acquire);
      if (!stale(v)) return;
    }
    a.wait(v, std::memory_order_acquire);
  }
}
}  // namespace

void MemoryBackend::worker_loop(unsigned worker) {
  const auto [begin, end] = ranges_[worker + 1];
  std::uint64_t seen = 0;
  for (;;) {
    bounded_wait(epoch_, [&](std::uint64_t v) { return v == seen; });
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    tick_range(begin, end, tick_from_, tick_to_);
    seen = e;
    done_[worker].v.store(e, std::memory_order_release);
    done_[worker].v.notify_all();
  }
}

void MemoryBackend::start_read(Addr addr, std::uint64_t tag, Cycle now) {
  const unsigned c = selector_.channel_of(addr);
  channels_[c].engine->start_read(selector_.to_local(addr), tag, now);
}

void MemoryBackend::start_write(Addr addr, Cycle now) {
  const unsigned c = selector_.channel_of(addr);
  channels_[c].engine->start_write(selector_.to_local(addr), now);
}

void MemoryBackend::tick(Cycle now) { dispatch(now - 1, now); }

void MemoryBackend::run_window(Cycle from, Cycle to) {
  assert(to > from);
  dispatch(from, to);
}

void MemoryBackend::dispatch(Cycle from, Cycle to) {
  ++dispatch_epochs_;
  dispatch_cycles_ += to - from;
  if (workers_ == 0 || to - from == 1) {
    // Single-cycle epochs (the per-cycle loop, and event-driven cycles
    // where someone acts next tick) run on the caller: waking workers
    // for one tick per channel costs more than the tick. The workers
    // stay parked — they only cross the barrier for wide windows, which
    // is what cuts crossings by orders of magnitude vs the per-cycle
    // barrier. Execution order is the serial channel order either way,
    // so results are unchanged.
    tick_range(0, channels(), from, to);
  } else {
    ++barrier_crossings_;
    tick_from_ = from;
    tick_to_ = to;
    const std::uint64_t e = epoch_.fetch_add(1, std::memory_order_release) + 1;
    epoch_.notify_all();
    const auto [begin, end] = ranges_[0];
    tick_range(begin, end, from, to);
    for (unsigned w = 0; w < workers_; ++w)
      bounded_wait(done_[w].v, [&](std::uint64_t v) { return v != e; });
  }
  // Fixed channel-order aggregation barrier: ready results are gathered
  // serially in channel order whatever thread produced them, so the
  // MemorySystem observes the exact sequence the serial path produces.
  for (Channel& ch : channels_) {
    auto& r = ch.engine->ready();
    if (!r.empty()) {
      ready_.insert(ready_.end(), r.begin(), r.end());
      r.clear();
    }
  }
}

Cycle MemoryBackend::ready_window(Cycle now) const {
  Cycle bound = kNoEvent;
  for (const Channel& ch : channels_)
    bound = std::min(bound, ch.engine->ready_bound(now));
  return bound;
}

Cycle MemoryBackend::next_event_cycle(Cycle now) const {
  Cycle next = kNoEvent;
  for (const Channel& ch : channels_)
    next = std::min(next, ch.engine->next_event_cycle(now));
  return next;
}

bool MemoryBackend::has_undrained_completions() const {
  for (const Channel& ch : channels_)
    if (ch.dram->has_undrained_completions()) return true;
  return false;
}

Cycle MemoryBackend::idle_core_cycles() const {
  Cycle idle = kNoEvent;
  for (const Channel& ch : channels_)
    idle = std::min(idle, ch.dram->idle_core_cycles());
  return idle;
}

void MemoryBackend::advance_idle(Cycle cycles) {
  for (Channel& ch : channels_) ch.dram->advance_idle_core_cycles(cycles);
}

std::size_t MemoryBackend::outstanding() const {
  std::size_t n = ready_.size();
  for (const Channel& ch : channels_) n += ch.engine->outstanding();
  return n;
}

secmem::EngineStats MemoryBackend::engine_stats() const {
  secmem::EngineStats total;
  for (const Channel& ch : channels_) total += ch.engine->stats();
  return total;
}

dram::ControllerStats MemoryBackend::dram_stats() const {
  dram::ControllerStats total;
  for (const Channel& ch : channels_) total += ch.dram->stats();
  return total;
}

std::vector<secmem::EngineStats> MemoryBackend::engine_stats_per_channel()
    const {
  std::vector<secmem::EngineStats> v;
  v.reserve(channels_.size());
  for (const Channel& ch : channels_) v.push_back(ch.engine->stats());
  return v;
}

std::vector<dram::ControllerStats> MemoryBackend::dram_stats_per_channel()
    const {
  std::vector<dram::ControllerStats> v;
  v.reserve(channels_.size());
  for (const Channel& ch : channels_) v.push_back(ch.dram->stats());
  return v;
}

std::vector<dram::PowerReport> MemoryBackend::power_reports() {
  std::vector<dram::PowerReport> v;
  v.reserve(channels_.size());
  for (Channel& ch : channels_) v.push_back(ch.dram->power_report());
  return v;
}

std::uint64_t MemoryBackend::metadata_accesses() const {
  std::uint64_t n = 0;
  for (const Channel& ch : channels_)
    n += ch.engine->metadata_cache().accesses();
  return n;
}

double MemoryBackend::metadata_miss_rate() const {
  std::uint64_t accesses = 0, misses = 0;
  for (const Channel& ch : channels_) {
    accesses += ch.engine->metadata_cache().accesses();
    misses += ch.engine->metadata_cache().misses();
  }
  return accesses ? static_cast<double>(misses) /
                        static_cast<double>(accesses)
                  : 0.0;
}

void MemoryBackend::save(serial::Sink& s) const {
  s.u32(channels());
  for (const Channel& ch : channels_) {
    ch.dram->save(s);
    ch.engine->save(s);
  }
  s.u64(ready_.size());
  for (const secmem::ReadReady& r : ready_) {
    s.u64(r.tag);
    s.u64(r.at);
  }
  s.u64(dispatch_epochs_);
  s.u64(dispatch_cycles_);
  s.u64(barrier_crossings_);
}

void MemoryBackend::load(serial::Source& s) {
  if (s.u32() != channels())
    throw std::runtime_error("backend channel count mismatch");
  for (Channel& ch : channels_) {
    ch.dram->load(s);
    ch.engine->load(s);
  }
  ready_.clear();
  const std::size_t n = s.count(16);
  for (std::size_t i = 0; i < n; ++i) {
    secmem::ReadReady r;
    r.tag = s.u64();
    r.at = s.u64();
    ready_.push_back(r);
  }
  dispatch_epochs_ = s.u64();
  dispatch_cycles_ = s.u64();
  barrier_crossings_ = s.u64();
}

void MemoryBackend::reset_stats() {
  dispatch_epochs_ = 0;
  dispatch_cycles_ = 0;
  barrier_crossings_ = 0;
  for (Channel& ch : channels_) {
    ch.engine->reset_stats();
    ch.dram->reset_stats();
  }
}

}  // namespace secddr::sim
