#include "sim/backend.h"

#include <cassert>

namespace secddr::sim {

MemoryBackend::MemoryBackend(const BackendConfig& config)
    : selector_(config.geometry) {
  const unsigned n = config.geometry.channels;
  assert(n >= 1);
  // Each channel's local data slice must be dense: the selector removes
  // the channel bits, so the data region has to be a whole number of
  // interleave stripes per channel.
  [[maybe_unused]] const std::uint64_t stripe = Addr{1} << selector_.shift();
  assert(config.data_bytes % (static_cast<std::uint64_t>(n) * stripe) == 0 &&
         "data_bytes must be a multiple of channels * interleave stripe");
  const std::uint64_t local_data = config.data_bytes / n;

  // Apply the eWCRC write-burst extension where the config requires it —
  // per channel, since each DDR interface carries its own CRC beat.
  dram::Timings timings = config.timings;
  if (config.security.ewcrc) timings = timings.with_ewcrc_burst();

  channels_.reserve(n);
  for (unsigned c = 0; c < n; ++c) {
    Channel ch;
    ch.layout =
        std::make_unique<secmem::MetadataLayout>(config.security, local_data);
    assert(ch.layout->end_of_memory() <=
               config.geometry.channel_capacity_bytes() &&
           "per-channel data slice + metadata must fit in the channel");
    ch.dram = std::make_unique<dram::DramSystem>(
        config.geometry, timings, config.core_mhz, config.scheduling);
    ch.dram->set_event_driven(config.event_driven);
    ch.engine = std::make_unique<secmem::SecurityEngine>(
        config.security, *ch.layout, *ch.dram);
    channels_.push_back(std::move(ch));
  }
}

void MemoryBackend::start_read(Addr addr, std::uint64_t tag, Cycle now) {
  const unsigned c = selector_.channel_of(addr);
  channels_[c].engine->start_read(selector_.to_local(addr), tag, now);
}

void MemoryBackend::start_write(Addr addr, Cycle now) {
  const unsigned c = selector_.channel_of(addr);
  channels_[c].engine->start_write(selector_.to_local(addr), now);
}

void MemoryBackend::tick(Cycle now) {
  for (Channel& ch : channels_) {
    ch.dram->tick_core_cycle();
    ch.engine->tick(now);
    auto& r = ch.engine->ready();
    if (!r.empty()) {
      ready_.insert(ready_.end(), r.begin(), r.end());
      r.clear();
    }
  }
}

Cycle MemoryBackend::next_event_cycle(Cycle now) const {
  Cycle next = kNoEvent;
  for (const Channel& ch : channels_)
    next = std::min(next, ch.engine->next_event_cycle(now));
  return next;
}

bool MemoryBackend::has_undrained_completions() const {
  for (const Channel& ch : channels_)
    if (ch.dram->has_undrained_completions()) return true;
  return false;
}

Cycle MemoryBackend::idle_core_cycles() const {
  Cycle idle = kNoEvent;
  for (const Channel& ch : channels_)
    idle = std::min(idle, ch.dram->idle_core_cycles());
  return idle;
}

void MemoryBackend::advance_idle(Cycle cycles) {
  for (Channel& ch : channels_) ch.dram->advance_idle_core_cycles(cycles);
}

std::size_t MemoryBackend::outstanding() const {
  std::size_t n = ready_.size();
  for (const Channel& ch : channels_) n += ch.engine->outstanding();
  return n;
}

secmem::EngineStats MemoryBackend::engine_stats() const {
  secmem::EngineStats total;
  for (const Channel& ch : channels_) total += ch.engine->stats();
  return total;
}

dram::ControllerStats MemoryBackend::dram_stats() const {
  dram::ControllerStats total;
  for (const Channel& ch : channels_) total += ch.dram->stats();
  return total;
}

std::vector<secmem::EngineStats> MemoryBackend::engine_stats_per_channel()
    const {
  std::vector<secmem::EngineStats> v;
  v.reserve(channels_.size());
  for (const Channel& ch : channels_) v.push_back(ch.engine->stats());
  return v;
}

std::vector<dram::ControllerStats> MemoryBackend::dram_stats_per_channel()
    const {
  std::vector<dram::ControllerStats> v;
  v.reserve(channels_.size());
  for (const Channel& ch : channels_) v.push_back(ch.dram->stats());
  return v;
}

std::uint64_t MemoryBackend::metadata_accesses() const {
  std::uint64_t n = 0;
  for (const Channel& ch : channels_)
    n += ch.engine->metadata_cache().accesses();
  return n;
}

double MemoryBackend::metadata_miss_rate() const {
  std::uint64_t accesses = 0, misses = 0;
  for (const Channel& ch : channels_) {
    accesses += ch.engine->metadata_cache().accesses();
    misses += ch.engine->metadata_cache().misses();
  }
  return accesses ? static_cast<double>(misses) /
                        static_cast<double>(accesses)
                  : 0.0;
}

void MemoryBackend::reset_stats() {
  for (Channel& ch : channels_) {
    ch.engine->reset_stats();
    ch.dram->reset_stats();
  }
}

}  // namespace secddr::sim
