#include "sim/trace_codec.h"

#include <algorithm>
#include <cstring>

namespace secddr::sim {
namespace trace_codec {
namespace {

/// Zigzag folds sign into bit 0 so small negative deltas (descending
/// address streams) encode as short varints too.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFF];
  return crc ^ 0xFFFFFFFFu;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::uint8_t** p, const std::uint8_t* end,
                         const std::string& path,
                         std::uint64_t block_offset) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (const std::uint8_t* q = *p; q != end; ++q) {
    if (shift >= 70)
      throw TraceFormatError(path, block_offset,
                             "malformed block: varint longer than 10 bytes");
    v |= static_cast<std::uint64_t>(*q & 0x7F) << shift;
    shift += 7;
    if (!(*q & 0x80)) {
      *p = q + 1;
      return v;
    }
  }
  throw TraceFormatError(path, block_offset,
                         "malformed block: varint overruns the payload");
}

bool has_magic(const std::uint8_t* buf, std::size_t n) {
  return n >= sizeof kMagic && std::memcmp(buf, kMagic, sizeof kMagic) == 0;
}

std::array<std::uint8_t, kHeaderBytes> encode_header(
    std::uint32_t block_records) {
  std::array<std::uint8_t, kHeaderBytes> h{};
  std::memcpy(h.data(), kMagic, sizeof kMagic);
  put_u32(h.data() + 8, kVersion);
  put_u32(h.data() + 12, block_records);
  put_u32(h.data() + 16, 0);  // reserved
  put_u32(h.data() + 20, crc32(h.data(), 20));
  return h;
}

Header decode_header(const std::uint8_t* buf, std::size_t n,
                     const std::string& path) {
  if (n < kHeaderBytes)
    throw TraceFormatError(path, n,
                           "truncated header: " + std::to_string(n) + " of " +
                               std::to_string(kHeaderBytes) + " bytes");
  if (!has_magic(buf, n))
    throw TraceFormatError(path, 0, "bad magic: not a secddr binary trace");
  const std::uint32_t stored = get_u32(buf + 20);
  const std::uint32_t computed = crc32(buf, 20);
  if (stored != computed)
    throw TraceFormatError(path, 20,
                           "bad header checksum: stored " +
                               std::to_string(stored) + ", computed " +
                               std::to_string(computed));
  Header h;
  h.version = get_u32(buf + 8);
  h.block_records = get_u32(buf + 12);
  if (h.version != kVersion)
    throw TraceFormatError(path, 8,
                           "unsupported trace version " +
                               std::to_string(h.version) + " (expected " +
                               std::to_string(kVersion) + ")");
  if (h.block_records == 0)
    throw TraceFormatError(path, 12, "header block_records is zero");
  return h;
}

std::vector<std::uint8_t> encode_block(const TraceRecord* rec, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n * 4);  // typical: 1-2 gap bytes + 2-3 delta bytes
  Addr prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    put_varint(out, (static_cast<std::uint64_t>(rec[i].gap) << 1) |
                        (rec[i].is_write ? 1 : 0));
    put_varint(out, zigzag(static_cast<std::int64_t>(rec[i].addr - prev)));
    prev = rec[i].addr;
  }
  return out;
}

void decode_block(const std::uint8_t* payload, std::size_t n,
                  std::uint32_t record_count, std::vector<TraceRecord>& out,
                  const std::string& path, std::uint64_t block_offset) {
  const std::uint8_t* p = payload;
  const std::uint8_t* end = payload + n;
  Addr prev = 0;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    const std::uint64_t gw = get_varint(&p, end, path, block_offset);
    if ((gw >> 1) > UINT32_MAX)
      throw TraceFormatError(path, block_offset,
                             "malformed block: record gap out of range");
    const std::uint64_t delta = get_varint(&p, end, path, block_offset);
    prev += static_cast<Addr>(unzigzag(delta));
    out.push_back({static_cast<std::uint32_t>(gw >> 1), (gw & 1) != 0, prev});
  }
  if (p != end)
    throw TraceFormatError(
        path, block_offset,
        "malformed block: " + std::to_string(end - p) +
            " trailing payload bytes after the last record");
}

}  // namespace trace_codec

// ---------------------------------------------------------------- writer

TraceWriter::TraceWriter(const std::string& path,
                         std::uint32_t block_records)
    : path_(path),
      file_(std::fopen(path.c_str(), "wb")),
      block_records_(std::clamp(block_records, 1u,
                                trace_codec::kMaxBlockRecords)) {
  if (!file_) throw std::runtime_error("TraceWriter: cannot create " + path);
  buf_.reserve(block_records_);
  const auto header = trace_codec::encode_header(block_records_);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("TraceWriter: write failed on " + path);
  }
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructor swallows I/O failures; call close() for durability.
  }
}

void TraceWriter::append(const TraceRecord& r) {
  if (closed_)
    throw std::logic_error("TraceWriter: append after close on " + path_);
  buf_.push_back(r);
  if (buf_.size() >= block_records_) flush_block();
}

void TraceWriter::flush_block() {
  if (buf_.empty()) return;
  const std::vector<std::uint8_t> payload =
      trace_codec::encode_block(buf_.data(), buf_.size());
  // The block_records clamp bounds the worst-case payload under
  // kMaxPayloadBytes (static_assert in the header), so the u32 field
  // below cannot truncate and the reader's guard cannot reject it.
  std::uint8_t bh[trace_codec::kBlockHeaderBytes];
  trace_codec::put_u32(bh, static_cast<std::uint32_t>(payload.size()));
  trace_codec::put_u32(bh + 4, static_cast<std::uint32_t>(buf_.size()));
  trace_codec::put_u32(bh + 8,
                       trace_codec::crc32(payload.data(), payload.size()));
  if (std::fwrite(bh, 1, sizeof bh, file_) != sizeof bh ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size())
    throw std::runtime_error("TraceWriter: write failed on " + path_);
  total_ += buf_.size();
  buf_.clear();
}

void TraceWriter::close() {
  if (closed_) return;
  // One shot even on failure: a half-written file cannot be salvaged by
  // retrying, and the destructor must not re-enter a failing close.
  closed_ = true;
  try {
    flush_block();
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
  // Footer: zero-sized block marker + checksummed total record count.
  std::uint8_t footer[trace_codec::kBlockHeaderBytes +
                      trace_codec::kFooterTotalBytes] = {};
  std::uint8_t* total = footer + trace_codec::kBlockHeaderBytes;
  trace_codec::put_u64(total, total_);
  trace_codec::put_u32(footer + 8,
                       trace_codec::crc32(total,
                                          trace_codec::kFooterTotalBytes));
  const bool ok =
      std::fwrite(footer, 1, sizeof footer, file_) == sizeof footer;
  const bool closed_ok = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!ok || !closed_ok)
    throw std::runtime_error("TraceWriter: write failed on " + path_);
}

std::uint64_t record_trace(TraceSource& src, const std::string& path,
                           std::uint64_t max_records,
                           std::uint32_t block_records) {
  TraceWriter writer(path, block_records);
  TraceRecord r;
  std::uint64_t n = 0;
  while (n < max_records && src.next(r)) {
    writer.append(r);
    ++n;
  }
  writer.close();
  return n;
}

}  // namespace secddr::sim
