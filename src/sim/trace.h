// Instruction-trace abstraction for the trace-driven core model.
//
// A trace is a stream of memory operations, each preceded by `gap`
// non-memory instructions. This is the interface the synthetic SPEC/GAPBS
// workload generators implement (substituting for the paper's Pin-based
// SimPoint traces, see DESIGN.md §2). To turn any TraceSource — a
// synthetic generator, or your own Pin/DynamoRIO conversion — into an
// on-disk trace, use sim::record_trace / TraceWriter (trace_codec.h);
// sim::open_trace (stream_trace.h) replays recorded files, and the
// SECDDR_TRACE_DIR knob (bench/harness.h) drives whole sweeps from them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace secddr::sim {

struct TraceRecord {
  std::uint32_t gap = 0;  ///< non-memory instructions before this access
  bool is_write = false;
  Addr addr = 0;
};

/// Pull-based trace source. Returning false ends the core's execution.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual bool next(TraceRecord& out) = 0;
};

/// Fixed trace for unit tests.
class VectorTrace final : public TraceSource {
 public:
  explicit VectorTrace(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  bool next(TraceRecord& out) override {
    if (pos_ >= records_.size()) return false;
    out = records_[pos_++];
    return true;
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
};

}  // namespace secddr::sim
