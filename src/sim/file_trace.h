// Trace file I/O: lets users bring their own memory traces (e.g. from a
// Pin tool or a DynamoRIO client) instead of the synthetic workloads.
//
// Text format, one record per line, '#' comments allowed:
//   <gap> <R|W> <hex-address>
// e.g.
//   12 R 0x7f001040
//   0  W 0x7f001080
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace secddr::sim {

/// Streams records from a trace file; optionally loops forever so short
/// traces can feed long simulations.
class FileTrace final : public TraceSource {
 public:
  /// Throws std::runtime_error if the file cannot be opened or parsed.
  explicit FileTrace(const std::string& path, bool loop = false);

  bool next(TraceRecord& out) override;

  std::size_t record_count() const { return records_.size(); }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
  bool loop_;
};

/// Writes records in the FileTrace format. Returns false on I/O error.
bool write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records);

}  // namespace secddr::sim
