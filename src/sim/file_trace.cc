#include "sim/file_trace.h"

#include <cinttypes>
#include <cstring>
#include <stdexcept>

namespace secddr::sim {

FileTrace::FileTrace(const std::string& path, bool loop) : loop_(loop) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) throw std::runtime_error("FileTrace: cannot open " + path);
  char line[256];
  std::size_t lineno = 0;
  while (std::fgets(line, sizeof line, f)) {
    ++lineno;
    // A line that fills the buffer without its newline would silently
    // continue as a "second line" on the next fgets and could mis-parse
    // as two records. The only legal unterminated line is the file's
    // last one (peek distinguishes it from an overlong line).
    const std::size_t len = std::strlen(line);
    if (len + 1 == sizeof line && line[len - 1] != '\n') {
      const int peek = std::fgetc(f);
      if (peek != EOF) {
        std::fclose(f);
        throw std::runtime_error(
            "FileTrace: parse error at " + path + ":" +
            std::to_string(lineno) + ": line exceeds " +
            std::to_string(sizeof line - 2) + " bytes");
      }
    }
    // Strip comments and blank lines.
    if (char* hash = std::strchr(line, '#')) *hash = '\0';
    std::uint32_t gap = 0;
    char rw = 0;
    std::uint64_t addr = 0;
    const int n = std::sscanf(line, " %" SCNu32 " %c %" SCNx64, &gap, &rw, &addr);
    if (n <= 0) continue;  // blank/comment line
    if (n != 3 || (rw != 'R' && rw != 'W' && rw != 'r' && rw != 'w')) {
      std::fclose(f);
      throw std::runtime_error("FileTrace: parse error at " + path + ":" +
                               std::to_string(lineno));
    }
    records_.push_back({gap, rw == 'W' || rw == 'w', addr});
  }
  std::fclose(f);
}

bool FileTrace::next(TraceRecord& out) {
  if (pos_ >= records_.size()) {
    if (!loop_ || records_.empty()) return false;
    pos_ = 0;
  }
  out = records_[pos_++];
  return true;
}

bool write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "# secddr trace: <gap> <R|W> <hex-address>\n");
  for (const auto& r : records)
    std::fprintf(f, "%u %c 0x%llx\n", r.gap, r.is_write ? 'W' : 'R',
                 static_cast<unsigned long long>(r.addr));
  return std::fclose(f) == 0;
}

}  // namespace secddr::sim
