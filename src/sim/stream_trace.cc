#include "sim/stream_trace.h"

#include <cerrno>
#include <cstring>

#include "sim/file_trace.h"

namespace secddr::sim {

using trace_codec::get_u32;
using trace_codec::get_u64;

StreamFileTrace::StreamFileTrace(const std::string& path, bool loop)
    : path_(path), loop_(loop) {
  file_ = std::fopen(path.c_str(), "rb");
  if (!file_)
    throw std::runtime_error("StreamFileTrace: cannot open " + path);
  std::uint8_t hdr[trace_codec::kHeaderBytes];
  const std::size_t n = std::fread(hdr, 1, sizeof hdr, file_);
  try {
    header_ = trace_codec::decode_header(hdr, n, path_);
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
  prefetcher_ = std::thread(&StreamFileTrace::prefetch_loop, this);
}

StreamFileTrace::~StreamFileTrace() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  can_produce_.notify_all();
  can_consume_.notify_all();
  if (prefetcher_.joinable()) prefetcher_.join();
  if (file_) std::fclose(file_);
}

bool StreamFileTrace::push_block(Block b) {
  std::unique_lock<std::mutex> lock(mu_);
  can_produce_.wait(lock,
                    [&] { return stop_ || queue_.size() < kQueueDepth; });
  if (stop_) return false;
  queued_bytes_ += b.payload.capacity();
  queue_.push_back(std::move(b));
  lock.unlock();
  can_consume_.notify_one();
  return true;
}

StreamFileTrace::Block StreamFileTrace::pop_block() {
  std::unique_lock<std::mutex> lock(mu_);
  can_consume_.wait(lock, [&] { return !queue_.empty(); });
  Block b = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= b.payload.capacity();
  lock.unlock();
  can_produce_.notify_one();
  return b;
}

void StreamFileTrace::prefetch_loop() {
  std::uint64_t offset = trace_codec::kHeaderBytes;
  std::uint64_t pass_records = 0;
  auto fail = [&](std::uint64_t at, const std::string& what) {
    Block b;
    b.error = std::make_exception_ptr(TraceFormatError(path_, at, what));
    push_block(std::move(b));
  };
  auto rewind_or_end = [&]() -> bool {
    // Returns true to continue producing (loop rewound), false to stop.
    if (loop_ && pass_records > 0) {
      if (std::fseek(file_, static_cast<long>(trace_codec::kHeaderBytes),
                     SEEK_SET) != 0) {
        fail(offset, "seek failed while rewinding loop");
        return false;
      }
      offset = trace_codec::kHeaderBytes;
      pass_records = 0;
      return true;
    }
    Block b;
    b.end = true;
    push_block(std::move(b));
    return false;
  };

  for (;;) {
    std::uint8_t bh[trace_codec::kBlockHeaderBytes];
    const std::size_t n = std::fread(bh, 1, sizeof bh, file_);
    if (n == 0 && std::feof(file_)) {
      // Footerless end-of-blocks: the footer is optional, a clean EOF at
      // a block boundary is a valid end of trace.
      if (!rewind_or_end()) return;
      continue;
    }
    if (n < sizeof bh) {
      fail(offset, "truncated block header: " + std::to_string(n) + " of " +
                       std::to_string(sizeof bh) + " bytes" +
                       (std::ferror(file_) ? " (read error)" : ""));
      return;
    }
    const std::uint32_t payload_bytes = get_u32(bh);
    const std::uint32_t record_count = get_u32(bh + 4);
    const std::uint32_t crc = get_u32(bh + 8);

    if (payload_bytes == 0 && record_count == 0) {
      // Footer: checksummed total record count, then end of file.
      std::uint8_t total_buf[trace_codec::kFooterTotalBytes];
      const std::size_t tn = std::fread(total_buf, 1, sizeof total_buf, file_);
      if (tn < sizeof total_buf) {
        fail(offset, "truncated footer: " + std::to_string(tn) + " of " +
                         std::to_string(sizeof total_buf) + " bytes");
        return;
      }
      const std::uint32_t computed =
          trace_codec::crc32(total_buf, sizeof total_buf);
      if (computed != crc) {
        fail(offset, "bad footer checksum: stored " + std::to_string(crc) +
                         ", computed " + std::to_string(computed));
        return;
      }
      const std::uint64_t total = get_u64(total_buf);
      if (total != pass_records) {
        fail(offset, "record-count footer mismatch: footer says " +
                         std::to_string(total) + ", blocks held " +
                         std::to_string(pass_records));
        return;
      }
      if (!rewind_or_end()) return;
      continue;
    }
    if (payload_bytes == 0 || record_count == 0) {
      fail(offset, "corrupt block header: payload_bytes=" +
                       std::to_string(payload_bytes) +
                       " record_count=" + std::to_string(record_count));
      return;
    }
    if (payload_bytes > trace_codec::kMaxPayloadBytes) {
      fail(offset, "corrupt block header: oversized payload (" +
                       std::to_string(payload_bytes) + " bytes)");
      return;
    }
    // The format promises 1..block_records per block; without this check
    // a crafted record_count could legally decode into a multi-gigabyte
    // records_ vector and defeat the bounded-memory contract.
    if (record_count > header_.block_records) {
      fail(offset, "corrupt block header: record_count " +
                       std::to_string(record_count) +
                       " exceeds header block_records " +
                       std::to_string(header_.block_records));
      return;
    }

    Block b;
    b.payload.resize(payload_bytes);
    b.record_count = record_count;
    b.crc = crc;
    b.offset = offset;
    const std::size_t pn =
        std::fread(b.payload.data(), 1, payload_bytes, file_);
    if (pn < payload_bytes) {
      fail(offset, "truncated block payload: " + std::to_string(pn) + " of " +
                       std::to_string(payload_bytes) + " bytes" +
                       (std::ferror(file_) ? " (read error)" : ""));
      return;
    }
    offset += sizeof bh + payload_bytes;
    pass_records += record_count;
    if (!push_block(std::move(b))) return;  // reader destroyed
  }
}

bool StreamFileTrace::next(TraceRecord& out) {
  while (pos_ >= records_.size()) {
    if (done_) return false;
    Block b = pop_block();
    if (b.error) {
      done_ = true;
      std::rethrow_exception(b.error);
    }
    if (b.end) {
      done_ = true;
      return false;
    }
    const std::uint32_t computed =
        trace_codec::crc32(b.payload.data(), b.payload.size());
    if (computed != b.crc) {
      done_ = true;
      throw TraceFormatError(path_, b.offset,
                             "bad block checksum: stored " +
                                 std::to_string(b.crc) + ", computed " +
                                 std::to_string(computed));
    }
    records_.clear();
    pos_ = 0;
    try {
      trace_codec::decode_block(b.payload.data(), b.payload.size(),
                                b.record_count, records_, path_, b.offset);
    } catch (...) {
      // Drop whatever the failing block decoded: a caller that catches
      // the error and calls next() again must not be served its records.
      records_.clear();
      done_ = true;
      throw;
    }
  }
  out = records_[pos_++];
  ++records_streamed_;
  return true;
}

std::size_t StreamFileTrace::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_bytes_ + records_.capacity() * sizeof(TraceRecord);
}

std::unique_ptr<TraceSource> open_trace(const std::string& path, bool loop) {
  auto src = open_trace_if_present(path, loop);
  if (!src) throw std::runtime_error("open_trace: cannot open " + path);
  return src;
}

std::unique_ptr<TraceSource> open_trace_if_present(const std::string& path,
                                                   bool loop) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    // Only genuine absence means "fall back"; a present-but-unreadable
    // file (permissions, I/O error) must fail loudly, or a sweep would
    // silently report synthetic results as a trace replay.
    if (errno == ENOENT || errno == ENOTDIR) return nullptr;
    throw std::runtime_error("open_trace: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  std::uint8_t buf[sizeof trace_codec::kMagic];
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  if (trace_codec::has_magic(buf, n))
    return std::make_unique<StreamFileTrace>(path, loop);
  return std::make_unique<FileTrace>(path, loop);
}

bool is_binary_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("open_trace: cannot open " + path);
  std::uint8_t buf[sizeof trace_codec::kMagic];
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  return trace_codec::has_magic(buf, n);
}

}  // namespace secddr::sim
