// Versioned binary on-disk trace format + writer.
//
// Layout (all fields little-endian, independent of host byte order):
//
//   Header (24 bytes)
//     0   char[8]  magic            "SECDDRTB"
//     8   u32      version          currently 1
//     12  u32      block_records    writer's max records per block (>= 1)
//     16  u32      reserved         0
//     20  u32      header_crc       CRC-32 of bytes [0, 20)
//
//   Data block (repeated; independently decodable)
//     +0  u32      payload_bytes    > 0
//     +4  u32      record_count     1 .. block_records
//     +8  u32      payload_crc      CRC-32 of the payload
//     +12 u8[payload_bytes]         varint-encoded records (below)
//
//   Footer (optional; TraceWriter always emits it)
//     +0  u32      0                payload_bytes == 0 marks the footer
//     +4  u32      0
//     +8  u32      footer_crc       CRC-32 of the 8-byte total_records
//     +12 u64      total_records    must equal the sum of record_count
//
// Block payload: per record, LEB128 varint of (gap << 1 | is_write),
// then a zigzag varint of (addr - prev_addr). prev_addr resets to 0 at
// every block start, so any block decodes without its predecessors —
// that is what lets StreamFileTrace rewind to the first block for loop
// mode and lets the prefetch thread hand blocks over independently.
//
// Every structural violation throws TraceFormatError carrying the file
// path and byte offset; tests/trace_codec_test.cc is the battery.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace secddr::sim {

/// Structurally invalid binary trace file: bad magic, unsupported
/// version, checksum mismatch, truncation, malformed block. `offset()`
/// is the byte position of the violating structure.
class TraceFormatError : public std::runtime_error {
 public:
  TraceFormatError(std::string path, std::uint64_t offset,
                   const std::string& what)
      : std::runtime_error(path + ": " + what + " (offset " +
                           std::to_string(offset) + ")"),
        path_(std::move(path)),
        offset_(offset) {}

  const std::string& path() const { return path_; }
  std::uint64_t offset() const { return offset_; }

 private:
  std::string path_;
  std::uint64_t offset_;
};

namespace trace_codec {

inline constexpr std::uint8_t kMagic[8] = {'S', 'E', 'C', 'D',
                                           'D', 'R', 'T', 'B'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::size_t kBlockHeaderBytes = 12;
inline constexpr std::size_t kFooterTotalBytes = 8;
inline constexpr std::uint32_t kDefaultBlockRecords = 4096;
/// Upper bound on a writer's block_records (TraceWriter clamps to it):
/// keeps the worst-case encoded block (15 bytes/record: 5-byte gap
/// varint + 10-byte delta varint) comfortably under kMaxPayloadBytes,
/// so a flushed block can never overflow the u32 payload_bytes field or
/// be rejected by the reader's allocation guard.
inline constexpr std::uint32_t kMaxBlockRecords = 1u << 20;
/// Allocation guard while reading: a corrupt payload_bytes field must
/// not trigger a gigabyte malloc. Generous vs the worst real block
/// (kMaxBlockRecords * max ~15 encoded bytes/record).
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;
static_assert(15ull * kMaxBlockRecords <= kMaxPayloadBytes);

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), init/xorout 0xFFFFFFFF.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Little-endian field accessors shared by the writer, the stream
/// reader, and byte-patching tests (host-endianness independent).
inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

/// Appends the LEB128 varint encoding of `v` (1..10 bytes).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Decodes one varint from [*p, end). Advances *p past it. Throws
/// TraceFormatError (overrun / >10 bytes) with `block_offset` context.
std::uint64_t get_varint(const std::uint8_t** p, const std::uint8_t* end,
                         const std::string& path, std::uint64_t block_offset);

struct Header {
  std::uint32_t version = kVersion;
  std::uint32_t block_records = kDefaultBlockRecords;
};

/// True when `buf` starts with the binary-trace magic (the open_trace
/// dispatch test; anything else is treated as the legacy text format).
bool has_magic(const std::uint8_t* buf, std::size_t n);

/// Serializes a header for a writer using `block_records` per block.
std::array<std::uint8_t, kHeaderBytes> encode_header(
    std::uint32_t block_records);

/// Validates magic, header checksum, then version; throws TraceFormatError.
Header decode_header(const std::uint8_t* buf, std::size_t n,
                     const std::string& path);

/// Encodes `n` records into a block payload (delta + varint).
std::vector<std::uint8_t> encode_block(const TraceRecord* rec, std::size_t n);

/// Decodes exactly `record_count` records from a verified payload,
/// appending to `out`. Throws if the payload ends early, a record field
/// is out of range, or bytes remain after the last record.
void decode_block(const std::uint8_t* payload, std::size_t n,
                  std::uint32_t record_count, std::vector<TraceRecord>& out,
                  const std::string& path, std::uint64_t block_offset);

}  // namespace trace_codec

/// Streaming writer for the binary format: buffers up to `block_records`
/// records, flushing each full block to disk, so recording a trace never
/// holds more than one block in memory. close() (or the destructor)
/// flushes the tail block and the record-count footer.
class TraceWriter {
 public:
  /// Throws std::runtime_error if the file cannot be created.
  /// `block_records` is clamped to [1, trace_codec::kMaxBlockRecords].
  explicit TraceWriter(
      const std::string& path,
      std::uint32_t block_records = trace_codec::kDefaultBlockRecords);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceRecord& r);

  /// Flushes the tail block + footer and closes the file. Throws
  /// std::runtime_error on I/O failure. Idempotent; the destructor calls
  /// it best-effort (swallowing errors), so call it explicitly when the
  /// trace must be durable.
  void close();

  std::uint64_t records_written() const { return total_ + buf_.size(); }

 private:
  void flush_block();

  std::string path_;
  std::FILE* file_;
  std::uint32_t block_records_;
  std::vector<TraceRecord> buf_;
  std::uint64_t total_ = 0;  ///< records already flushed to disk
  bool closed_ = false;
};

/// Records up to `max_records` from `src` (e.g. a workloads::SyntheticTrace)
/// into a binary trace file; stops early if the source ends. Returns the
/// number of records written. This is how DESIGN.md §2's synthetic
/// substitutes become on-disk traces the stream reader can replay.
std::uint64_t record_trace(
    TraceSource& src, const std::string& path, std::uint64_t max_records,
    std::uint32_t block_records = trace_codec::kDefaultBlockRecords);

}  // namespace secddr::sim
