#include "sim/core.h"

#include <algorithm>

namespace secddr::sim {

Core::Core(unsigned id, const CoreConfig& config, TraceSource& trace,
           MemoryPort& memory)
    : id_(id), config_(config), trace_(trace), memory_(memory) {}

void Core::fetch() {
  // Fill the ROB from the trace. Batches of non-memory instructions may be
  // split so the budget and ROB occupancy stay exact.
  while (rob_occupancy_ < config_.rob_size) {
    // Budget boundary: stop fetching but keep a partially consumed record
    // pending so its remaining gap and memory op survive into the next
    // phase — a raised budget resumes exactly where this one stopped.
    if (budget_reached()) return;
    if (!have_pending_record_) {
      if (trace_exhausted_) return;
      if (!trace_.next(pending_record_)) {
        trace_exhausted_ = true;
        return;
      }
      have_pending_record_ = true;
    }

    TraceRecord& rec = pending_record_;
    if (rec.gap > 0) {
      const std::uint64_t room = config_.rob_size - rob_occupancy_;
      std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(rec.gap, room));
      if (budget_ != 0)
        take = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            take, budget_ - fetched_instructions_));
      rob_.push_back({Kind::kBatch, take, 0, true, true});
      rob_occupancy_ += take;
      fetched_instructions_ += take;
      rec.gap -= take;
      continue;
    }

    // The memory operation itself (one instruction).
    rob_.push_back({rec.is_write ? Kind::kStore : Kind::kLoad, 1, rec.addr,
                    false, false});
    rob_occupancy_ += 1;
    fetched_instructions_ += 1;
    have_pending_record_ = false;
  }
}

void Core::issue_pending() {
  // Issue every un-issued memory op in the window (oldest first),
  // resuming at the cursor instead of rescanning the whole ROB.
  while (issue_cursor_ < rob_.size()) {
    RobEntry& e = rob_[issue_cursor_];
    if (!e.issued) {
      if (e.kind == Kind::kLoad) {
        if (!memory_.issue_load(id_, e.addr, &e.done)) return;
        e.issued = true;
        ++stats_.loads;
      } else if (e.kind == Kind::kStore) {
        if (!memory_.issue_store(id_, e.addr)) return;
        e.issued = true;
        e.done = true;  // stores are posted
        ++stats_.stores;
      }
    }
    ++issue_cursor_;
  }
}

void Core::retire() {
  unsigned budget = config_.retire_width;
  bool stalled_on_load = false;
  while (budget > 0 && !rob_.empty()) {
    RobEntry& head = rob_.front();
    if (head.kind == Kind::kBatch) {
      const std::uint32_t take = std::min<std::uint32_t>(budget, head.remaining);
      head.remaining -= take;
      rob_occupancy_ -= take;
      stats_.instructions += take;
      budget -= take;
      if (head.remaining == 0) {
        rob_.pop_front();
        if (issue_cursor_ > 0) --issue_cursor_;
      }
      continue;
    }
    if (!head.issued || !head.done) {
      stalled_on_load = head.kind == Kind::kLoad;
      break;
    }
    rob_occupancy_ -= 1;
    stats_.instructions += 1;
    --budget;
    rob_.pop_front();
    if (issue_cursor_ > 0) --issue_cursor_;
  }
  if (stalled_on_load) ++stats_.load_stall_cycles;
}

void Core::tick() {
  if (finished_) return;
  ++stats_.cycles;
  fetch();
  issue_pending();
  retire();
  // A record retained across the budget boundary belongs to the next
  // phase and does not keep this one alive.
  const bool no_more_fetch = trace_exhausted_ || budget_reached();
  if (no_more_fetch && rob_.empty() &&
      (budget_reached() || !have_pending_record_))
    finished_ = true;
}

Cycle Core::next_event_cycle(Cycle now) const {
  if (finished_) return kNoEvent;
  // Fetch can make progress (or discover trace exhaustion).
  if (rob_occupancy_ < config_.rob_size && !budget_reached() &&
      (have_pending_record_ || !trace_exhausted_))
    return now + 1;
  // An un-issued memory op retries (and touches cache stats) every cycle.
  if (issue_cursor_ < rob_.size()) return now + 1;
  // Retirement can make progress.
  if (!rob_.empty()) {
    if (rob_.front().done) return now + 1;
    return kNoEvent;  // head blocked on an outstanding load
  }
  return now + 1;  // empty ROB: the next tick marks the core finished
}

bool Core::blocked_on_issue(Addr* addr) const {
  if (finished_ || issue_cursor_ >= rob_.size()) return false;
  // Fetch can still make progress?
  if (rob_occupancy_ < config_.rob_size && !budget_reached() &&
      (have_pending_record_ || !trace_exhausted_))
    return false;
  if (rob_.front().done) return false;  // retirement can make progress
  *addr = rob_[issue_cursor_].addr;
  return true;
}

void Core::advance_idle(Cycle cycles) {
  if (finished_) return;
  stats_.cycles += cycles;
  // The only idle state with work in flight: ROB head blocked on a load,
  // which retire() counts as a load-stall cycle on every tick.
  if (!rob_.empty() && rob_.front().kind == Kind::kLoad &&
      !rob_.front().done)
    stats_.load_stall_cycles += cycles;
}

}  // namespace secddr::sim
