#include "sim/core.h"

#include <algorithm>
#include <cassert>

namespace secddr::sim {

Core::Core(unsigned id, const CoreConfig& config, TraceSource& trace,
           MemoryPort& memory)
    : id_(id), config_(config), trace_(trace), memory_(memory) {}

void Core::fetch() {
  // Fill the ROB from the trace. Batches of non-memory instructions may be
  // split so the budget and ROB occupancy stay exact.
  while (rob_occupancy_ < config_.rob_size) {
    // Budget boundary: stop fetching but keep a partially consumed record
    // pending so its remaining gap and memory op survive into the next
    // phase — a raised budget resumes exactly where this one stopped.
    if (budget_reached()) return;
    if (!have_pending_record_) {
      if (trace_exhausted_) return;
      if (!trace_.next(pending_record_)) {
        trace_exhausted_ = true;
        return;
      }
      ++trace_records_;
      have_pending_record_ = true;
    }

    TraceRecord& rec = pending_record_;
    if (rec.gap > 0) {
      const std::uint64_t room = config_.rob_size - rob_occupancy_;
      std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(rec.gap, room));
      if (budget_ != 0)
        take = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            take, budget_ - fetched_instructions_));
      rob_.push_back({Kind::kBatch, take, 0, true, true});
      rob_occupancy_ += take;
      fetched_instructions_ += take;
      rec.gap -= take;
      continue;
    }

    // The memory operation itself (one instruction).
    rob_.push_back({rec.is_write ? Kind::kStore : Kind::kLoad, 1, rec.addr,
                    false, false});
    rob_occupancy_ += 1;
    ++mem_ops_in_rob_;
    fetched_instructions_ += 1;
    have_pending_record_ = false;
  }
}

void Core::issue_pending() {
  // Issue every un-issued memory op in the window (oldest first),
  // resuming at the cursor instead of rescanning the whole ROB.
  while (issue_cursor_ < rob_.size()) {
    RobEntry& e = rob_[issue_cursor_];
    if (!e.issued) {
      if (e.kind == Kind::kLoad) {
        if (!memory_.issue_load(id_, e.addr, &e.done)) return;
        e.issued = true;
        ++stats_.loads;
      } else if (e.kind == Kind::kStore) {
        if (!memory_.issue_store(id_, e.addr)) return;
        e.issued = true;
        e.done = true;  // stores are posted
        ++stats_.stores;
      }
    }
    ++issue_cursor_;
  }
}

void Core::retire() {
  unsigned budget = config_.retire_width;
  bool stalled_on_load = false;
  while (budget > 0 && !rob_.empty()) {
    RobEntry& head = rob_.front();
    if (head.kind == Kind::kBatch) {
      const std::uint32_t take = std::min<std::uint32_t>(budget, head.remaining);
      head.remaining -= take;
      rob_occupancy_ -= take;
      stats_.instructions += take;
      budget -= take;
      if (head.remaining == 0) {
        rob_.pop_front();
        if (issue_cursor_ > 0) --issue_cursor_;
      }
      continue;
    }
    if (!head.issued || !head.done) {
      stalled_on_load = head.kind == Kind::kLoad;
      break;
    }
    rob_occupancy_ -= 1;
    stats_.instructions += 1;
    --budget;
    --mem_ops_in_rob_;
    rob_.pop_front();
    if (issue_cursor_ > 0) --issue_cursor_;
  }
  if (stalled_on_load) ++stats_.load_stall_cycles;
}

void Core::tick() {
  if (finished_) return;
  ++stats_.cycles;
  fetch();
  issue_pending();
  retire();
  // A record retained across the budget boundary belongs to the next
  // phase and does not keep this one alive.
  const bool no_more_fetch = trace_exhausted_ || budget_reached();
  if (no_more_fetch && rob_.empty() &&
      (budget_reached() || !have_pending_record_))
    finished_ = true;
}

Core::ComputeReplay Core::simulate_compute(Cycle max_ticks) const {
  // Caller guarantees pure_compute(): the ROB holds only issued+done
  // batch entries. Simulate upcoming ticks on three scalars — ROB
  // occupancy R, the pending record's remaining batch gap, and the fetch
  // budget — collapsing steady-state runs (full window, whole-retire-width
  // takes) in closed form. A tick is replayable iff fetch would add only
  // batch instructions (no memory op, no unknown trace record) and
  // retirement leaves the ROB nonempty (the emptying tick may flip
  // `finished_`, which the simulation loop must observe itself).
  const std::uint64_t C = config_.rob_size, W = config_.retire_width;
  std::uint64_t R = rob_occupancy_;
  std::uint64_t fetched = fetched_instructions_;
  std::uint64_t gap = have_pending_record_ ? pending_record_.gap : 0;
  const bool unknown_next = !have_pending_record_ && !trace_exhausted_;
  ComputeReplay out;
  while (out.ticks < max_ticks) {
    const std::uint64_t bud =
        budget_ ? (budget_ > fetched ? budget_ - fetched : 0)
                : ~std::uint64_t{0};
    const std::uint64_t supply = std::min(gap, bud);
    const std::uint64_t room = C - R;
    if (room == W && supply >= 2 * W && C > W) {
      // Steady state: fetch refills exactly what retirement drains, so
      // every tick in the run is identical. Leave >= one supply-W tail
      // for the per-tick checks below.
      const std::uint64_t runs = std::min<std::uint64_t>(
          supply / W - 1, max_ticks - out.ticks);
      out.ticks += runs;
      out.retired += runs * W;
      out.consumed += runs * W;
      gap -= runs * W;
      fetched += runs * W;
      continue;
    }
    const std::uint64_t take = std::min(room, supply);
    // Fetch would consume the record's last batch instruction with ROB
    // room (and budget) left: the memory op itself enters this tick.
    if (have_pending_record_ && take == gap && take < room &&
        (budget_ == 0 || fetched + take < budget_))
      break;
    // Fetch would read a trace record we cannot see.
    if (unknown_next && room > 0) break;
    const std::uint64_t r1 = R + take;
    if (r1 <= W) break;  // this tick empties the ROB (and may finish)
    R = r1 - W;
    gap -= take;
    fetched += take;
    ++out.ticks;
    out.retired += W;
    out.consumed += take;
  }
  out.occupancy = R;
  return out;
}

void Core::advance_compute(Cycle ticks) {
  // Run the same stepper the planner ran; by contract `ticks` does not
  // exceed the planner's count, so the stepper cannot stop early.
  const ComputeReplay r = simulate_compute(ticks);
  assert(r.ticks == ticks && "advance_compute past the replayable window");
  stats_.cycles += r.ticks;
  stats_.instructions += r.retired;
  fetched_instructions_ += r.consumed;
  if (r.consumed > 0) pending_record_.gap -= r.consumed;
  // Re-canonicalize: one batch entry carries the surviving occupancy.
  // Retirement consumes contiguous batch instructions identically however
  // they are grouped into entries, so this cannot change behaviour.
  rob_occupancy_ = r.occupancy;
  rob_.clear();
  rob_.push_back(
      {Kind::kBatch, static_cast<std::uint32_t>(r.occupancy), 0, true, true});
  issue_cursor_ = rob_.size();
}

Cycle Core::next_event_cycle(Cycle now) const {
  if (finished_) return kNoEvent;
  // Pure compute: the next k ticks are fetch + bulk retirement that
  // advance_idle() replays in closed form.
  if (pure_compute()) return now + 1 + compute_replayable_ticks();
  // Fetch can make progress (or discover trace exhaustion).
  if (rob_occupancy_ < config_.rob_size && !budget_reached() &&
      (have_pending_record_ || !trace_exhausted_))
    return now + 1;
  // An un-issued memory op retries (and touches cache stats) every cycle.
  if (issue_cursor_ < rob_.size()) return now + 1;
  // Retirement can make progress.
  if (!rob_.empty()) {
    if (rob_.front().done) return now + 1;
    return kNoEvent;  // head blocked on an outstanding load
  }
  return now + 1;  // empty ROB: the next tick marks the core finished
}

bool Core::blocked_on_issue(Addr* addr) const {
  if (finished_ || issue_cursor_ >= rob_.size()) return false;
  // Fetch can still make progress?
  if (rob_occupancy_ < config_.rob_size && !budget_reached() &&
      (have_pending_record_ || !trace_exhausted_))
    return false;
  if (rob_.front().done) return false;  // retirement can make progress
  *addr = rob_[issue_cursor_].addr;
  return true;
}

void Core::advance_idle(Cycle cycles) {
  if (finished_ || cycles == 0) return;
  if (pure_compute()) {
    advance_compute(cycles);
    return;
  }
  stats_.cycles += cycles;
  // The only idle state with work in flight: ROB head blocked on a load,
  // which retire() counts as a load-stall cycle on every tick.
  if (!rob_.empty() && rob_.front().kind == Kind::kLoad &&
      !rob_.front().done)
    stats_.load_stall_cycles += cycles;
}

void Core::save(serial::Sink& s) const {
  s.u64(rob_.size());
  for (const RobEntry& e : rob_) {
    s.u8(static_cast<std::uint8_t>(e.kind));
    s.u32(e.remaining);
    s.u64(e.addr);
    s.b(e.issued);
    s.b(e.done);
  }
  s.u64(issue_cursor_);
  s.u64(rob_occupancy_);
  s.u64(mem_ops_in_rob_);
  s.u64(fetched_instructions_);
  s.u64(trace_records_);
  s.u64(budget_);
  s.b(trace_exhausted_);
  s.b(finished_);
  s.b(have_pending_record_);
  s.u32(pending_record_.gap);
  s.b(pending_record_.is_write);
  s.u64(pending_record_.addr);
  s.u64(stats_.instructions);
  s.u64(stats_.cycles);
  s.u64(stats_.loads);
  s.u64(stats_.stores);
  s.u64(stats_.load_stall_cycles);
}

void Core::load(serial::Source& s) {
  rob_.clear();
  const std::size_t n = s.count(15);
  for (std::size_t i = 0; i < n; ++i) {
    RobEntry e;
    e.kind = static_cast<Kind>(s.u8());
    e.remaining = s.u32();
    e.addr = s.u64();
    e.issued = s.b();
    e.done = s.b();
    rob_.push_back(e);
  }
  issue_cursor_ = s.u64();
  rob_occupancy_ = s.u64();
  mem_ops_in_rob_ = s.u64();
  fetched_instructions_ = s.u64();
  trace_records_ = s.u64();
  budget_ = s.u64();
  trace_exhausted_ = s.b();
  finished_ = s.b();
  have_pending_record_ = s.b();
  pending_record_.gap = s.u32();
  pending_record_.is_write = s.b();
  pending_record_.addr = s.u64();
  stats_.instructions = s.u64();
  stats_.cycles = s.u64();
  stats_.loads = s.u64();
  stats_.stores = s.u64();
  stats_.load_stall_cycles = s.u64();

  // Re-derive the trace position: the bound source starts at its first
  // record, and every source is deterministic, so consuming the same
  // count lands on the identical next record.
  TraceRecord scratch;
  for (std::uint64_t i = 0; i < trace_records_; ++i)
    if (!trace_.next(scratch))
      throw std::runtime_error(
          "trace ended before the checkpointed position");
}

std::int64_t Core::done_flag_index(const bool* flag) const {
  for (std::size_t i = 0; i < rob_.size(); ++i)
    if (&rob_[i].done == flag) return static_cast<std::int64_t>(i);
  return -1;
}

}  // namespace secddr::sim
