#include "sim/core.h"

#include <algorithm>

namespace secddr::sim {

Core::Core(unsigned id, const CoreConfig& config, TraceSource& trace,
           MemoryPort& memory)
    : id_(id), config_(config), trace_(trace), memory_(memory) {}

void Core::fetch() {
  // Fill the ROB from the trace. Batches of non-memory instructions may be
  // split so the budget and ROB occupancy stay exact.
  while (rob_occupancy_ < config_.rob_size) {
    if (!have_pending_record_) {
      if (trace_exhausted_ ||
          (budget_ != 0 && fetched_instructions_ >= budget_))
        return;
      if (!trace_.next(pending_record_)) {
        trace_exhausted_ = true;
        return;
      }
      have_pending_record_ = true;
    }

    TraceRecord& rec = pending_record_;
    if (rec.gap > 0) {
      const std::uint64_t room = config_.rob_size - rob_occupancy_;
      std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(rec.gap, room));
      if (budget_ != 0)
        take = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            take, budget_ - fetched_instructions_));
      if (take == 0) return;
      rob_.push_back({Kind::kBatch, take, 0, true, true});
      rob_occupancy_ += take;
      fetched_instructions_ += take;
      rec.gap -= take;
      if (budget_ != 0 && fetched_instructions_ >= budget_) {
        have_pending_record_ = false;  // drop the memory op past the budget
        return;
      }
      continue;
    }

    // The memory operation itself (one instruction).
    rob_.push_back({rec.is_write ? Kind::kStore : Kind::kLoad, 1, rec.addr,
                    false, false});
    rob_occupancy_ += 1;
    fetched_instructions_ += 1;
    have_pending_record_ = false;
  }
}

void Core::issue_pending() {
  // Issue every un-issued memory op in the window (oldest first).
  for (auto& e : rob_) {
    if (e.issued) continue;
    if (e.kind == Kind::kLoad) {
      if (!memory_.issue_load(id_, e.addr, &e.done)) return;
      e.issued = true;
      ++stats_.loads;
    } else if (e.kind == Kind::kStore) {
      if (!memory_.issue_store(id_, e.addr)) return;
      e.issued = true;
      e.done = true;  // stores are posted
      ++stats_.stores;
    }
  }
}

void Core::retire() {
  unsigned budget = config_.retire_width;
  bool stalled_on_load = false;
  while (budget > 0 && !rob_.empty()) {
    RobEntry& head = rob_.front();
    if (head.kind == Kind::kBatch) {
      const std::uint32_t take = std::min<std::uint32_t>(budget, head.remaining);
      head.remaining -= take;
      rob_occupancy_ -= take;
      stats_.instructions += take;
      budget -= take;
      if (head.remaining == 0) rob_.pop_front();
      continue;
    }
    if (!head.issued || !head.done) {
      stalled_on_load = head.kind == Kind::kLoad;
      break;
    }
    rob_occupancy_ -= 1;
    stats_.instructions += 1;
    --budget;
    rob_.pop_front();
  }
  if (stalled_on_load) ++stats_.load_stall_cycles;
}

void Core::tick() {
  if (finished_) return;
  ++stats_.cycles;
  fetch();
  issue_pending();
  retire();
  const bool no_more_fetch =
      trace_exhausted_ || (budget_ != 0 && fetched_instructions_ >= budget_);
  if (no_more_fetch && rob_.empty() && !have_pending_record_)
    finished_ = true;
}

}  // namespace secddr::sim
