// The memory hierarchy: private L1 data caches, a shared LLC with MSHRs
// and a stream prefetcher, and the secure-memory engine in front of DRAM.
//
// All LLC fills and dirty writebacks flow through the SecurityEngine, so
// every configuration's metadata traffic and crypto latency lands on the
// same DRAM model the paper's Ramulator setup used.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/cache.h"
#include "common/types.h"
#include "dram/system.h"
#include "secmem/model.h"
#include "sim/core.h"
#include "sim/prefetcher.h"

namespace secddr::sim {

struct MemConfig {
  unsigned cores = 4;
  std::uint64_t l1_bytes = 32 * 1024;
  unsigned l1_assoc = 4;
  unsigned l1_latency = 4;  ///< core cycles
  std::uint64_t llc_bytes = 4ull * 1024 * 1024;
  unsigned llc_assoc = 16;
  unsigned llc_latency = 30;  ///< core cycles
  unsigned mshrs = 64;
  bool prefetch = true;
  PrefetcherConfig prefetcher;
};

struct MemStats {
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t llc_demand_accesses = 0;
  std::uint64_t llc_demand_misses = 0;
  std::uint64_t llc_writebacks = 0;
  std::uint64_t prefetch_fills = 0;
  std::vector<std::uint64_t> llc_demand_misses_per_core;
};

class MemorySystem final : public MemoryPort {
 public:
  MemorySystem(const MemConfig& config, secmem::SecurityEngine& engine,
               dram::DramSystem& dram);

  // MemoryPort:
  bool issue_load(unsigned core_id, Addr addr, bool* done) override;
  bool issue_store(unsigned core_id, Addr addr) override;

  /// Advances one core cycle (drives the DRAM clock domain too).
  void tick();

  const MemStats& stats() const { return stats_; }
  secmem::SecurityEngine& engine() { return engine_; }
  Cycle now() const { return now_; }

  /// Clears statistics after warmup; cache/MSHR state is preserved.
  void reset_stats() {
    stats_ = MemStats{};
    stats_.llc_demand_misses_per_core.assign(config_.cores, 0);
  }

  /// Outstanding fills (for drain loops in tests).
  std::size_t outstanding_fills() const { return active_mshrs_; }

 private:
  struct Mshr {
    bool valid = false;
    Addr line = 0;
    bool demand = false;
    std::vector<bool*> waiters;
  };
  struct PendingDone {
    Cycle at;
    bool* flag;
    bool operator>(const PendingDone& o) const { return at > o.at; }
  };

  /// Returns false if the access could not be started (MSHR pressure).
  bool access_llc(unsigned core_id, Addr line, bool dirty, bool* done);
  void issue_prefetches(Addr line);
  int find_mshr(Addr line) const;
  void complete_at(Cycle at, bool* flag);

  MemConfig config_;
  secmem::SecurityEngine& engine_;
  dram::DramSystem& dram_;

  std::vector<SetAssocCache> l1s_;
  SetAssocCache llc_;
  StreamPrefetcher prefetcher_;
  std::vector<Mshr> mshrs_;
  unsigned active_mshrs_ = 0;

  std::priority_queue<PendingDone, std::vector<PendingDone>,
                      std::greater<PendingDone>>
      done_q_;

  Cycle now_ = 0;
  MemStats stats_;
};

}  // namespace secddr::sim
