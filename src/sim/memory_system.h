// The memory hierarchy: private L1 data caches, a shared LLC with MSHRs
// and a stream prefetcher, in front of the multi-channel MemoryBackend.
//
// All LLC fills and dirty writebacks flow through the backend (which
// routes them to the owning channel's SecurityEngine), so every
// configuration's metadata traffic and crypto latency lands on the same
// DRAM model the paper's Ramulator setup used.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/cache.h"
#include "common/serial.h"
#include "common/types.h"
#include "sim/backend.h"
#include "sim/core.h"
#include "sim/prefetcher.h"

namespace secddr::sim {

struct MemConfig {
  unsigned cores = 4;
  std::uint64_t l1_bytes = 32 * 1024;
  unsigned l1_assoc = 4;
  unsigned l1_latency = 4;  ///< core cycles
  std::uint64_t llc_bytes = 4ull * 1024 * 1024;
  unsigned llc_assoc = 16;
  unsigned llc_latency = 30;  ///< core cycles
  unsigned mshrs = 64;
  bool prefetch = true;
  PrefetcherConfig prefetcher;
};

struct MemStats {
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t llc_demand_accesses = 0;
  std::uint64_t llc_demand_misses = 0;
  std::uint64_t llc_writebacks = 0;
  std::uint64_t prefetch_fills = 0;
  std::vector<std::uint64_t> llc_demand_misses_per_core;
};

class MemorySystem final : public MemoryPort {
 public:
  MemorySystem(const MemConfig& config, MemoryBackend& backend);

  // MemoryPort:
  bool issue_load(unsigned core_id, Addr addr, bool* done) override;
  bool issue_store(unsigned core_id, Addr addr) override;

  /// Advances one core cycle (drives every channel's DRAM clock too).
  void tick();

  /// Number of upcoming cycles guaranteed to be no-op ticks: no pending
  /// load completion matures, no channel's security engine has deferred
  /// issues to retry, and no channel's DRAM controller has an event.
  /// kNoEvent when fully idle (cores then bound the skip).
  Cycle idle_cycles() const;

  /// Fast-forwards `cycles` ticks previously reported idle by
  /// idle_cycles(): advances this clock and the DRAM clock domains.
  void advance_idle(Cycle cycles);

  // --- epoch-decoupled execution --------------------------------------
  /// Largest number of ticks advance_window() may batch into one epoch:
  /// no channel can surface a finished read and no pending completion
  /// flag matures strictly before the window's final tick, so executing
  /// the whole window channel-locally and draining at the boundary is
  /// bit-identical to per-cycle ticking. Always >= 1 when finite
  /// (unlike idle_cycles(), which reports ticks that need not run at
  /// all); kNoEvent when nothing is outstanding anywhere.
  Cycle window_bound() const;

  /// Runs the next `ticks` cycles as one backend epoch (`ticks` must not
  /// exceed window_bound()): every channel advances to the horizon with
  /// its local clock, then ready fills and matured completion flags are
  /// drained at the boundary exactly as the final per-cycle tick would.
  void advance_window(Cycle ticks);

  /// True when an issue of `addr` by `core_id` is guaranteed to keep
  /// failing until a memory event: the line misses everywhere (its L1,
  /// the LLC, the in-flight MSHRs) and no MSHR is free. All of that state
  /// only changes on core activity or MSHR-fill events, so the per-cycle
  /// retry is a pure stat bump that account_blocked_retries() replays.
  bool issue_blocked_for(unsigned core_id, Addr addr) const;

  /// Replays the statistics `retries` skipped failing issue calls would
  /// have recorded (one L1 access+miss and one LLC access each).
  void account_blocked_retries(std::uint64_t retries) {
    stats_.l1_accesses += retries;
    stats_.l1_misses += retries;
    stats_.llc_demand_accesses += retries;
  }

  const MemStats& stats() const { return stats_; }
  MemoryBackend& backend() { return backend_; }
  Cycle now() const { return now_; }

  /// Clears statistics after warmup; cache/MSHR state is preserved.
  void reset_stats() {
    stats_ = MemStats{};
    stats_.llc_demand_misses_per_core.assign(config_.cores, 0);
  }

  /// Outstanding fills (for drain loops in tests).
  std::size_t outstanding_fills() const {
    return mshrs_.size() - mshr_free_.size();
  }

  // --- checkpoint hooks -----------------------------------------------
  // MSHR waiter pointers and pending-done flags point into the cores'
  // ROBs, so the owner supplies the codec: the encoder maps a live flag
  // pointer to a stable (core, rob-index) token, the decoder maps the
  // token back into the restored ROBs. Does NOT cover the backend (the
  // owner serializes it separately). The lookup-acceleration structures
  // (MSHR hash table, blocked-issue memo) are re-derived on load; the
  // memo reset is exact because hit and recompute paths record identical
  // statistics.
  using FlagEncoder = std::function<std::uint64_t(bool*)>;
  using FlagDecoder = std::function<bool*(std::uint64_t)>;
  void save(serial::Sink& s, const FlagEncoder& encode_flag) const;
  void load(serial::Source& s, const FlagDecoder& decode_flag);

 private:
  struct Mshr {
    bool valid = false;
    Addr line = 0;
    bool demand = false;
    std::vector<bool*> waiters;
  };
  struct PendingDone {
    Cycle at;
    bool* flag;
    bool operator>(const PendingDone& o) const { return at > o.at; }
  };

  /// Returns false if the access could not be started (MSHR pressure).
  bool access_llc(unsigned core_id, Addr line, bool dirty, bool* done);
  /// Epoch-boundary drain shared by tick() and advance_window(): ready
  /// fills wake their waiters, matured completion flags are raised.
  void drain_boundary();
  void issue_prefetches(Addr line);
  int find_mshr(Addr line) const;
  int alloc_mshr(Addr line);
  void release_mshr(std::size_t idx);
  void complete_at(Cycle at, bool* flag);

  MemConfig config_;
  MemoryBackend& backend_;

  std::vector<SetAssocCache> l1s_;
  SetAssocCache llc_;
  StreamPrefetcher prefetcher_;
  /// line -> MSHR index map, open-addressed with linear probing and
  /// backward-shift deletion. At most `mshrs` entries live at <= 25% load,
  /// so lookups are one or two cache lines — this sits on the per-cycle
  /// issue path where std::unordered_map's node allocations showed up in
  /// profiles.
  struct MshrTable {
    struct Slot {
      Addr line = 0;
      unsigned idx = 0;
      bool used = false;
    };
    std::vector<Slot> slots;
    std::uint64_t mask = 0;

    void init(unsigned mshrs) {
      std::size_t cap = 8;
      while (cap < 4ull * mshrs) cap <<= 1;
      slots.assign(cap, Slot{});
      mask = cap - 1;
    }
    static std::uint64_t hash(Addr line) {
      return (line * 0x9E3779B97F4A7C15ull) >> 17;
    }
    int find(Addr line) const {
      for (std::uint64_t i = hash(line) & mask;; i = (i + 1) & mask) {
        const Slot& s = slots[i];
        if (!s.used) return -1;
        if (s.line == line) return static_cast<int>(s.idx);
      }
    }
    void insert(Addr line, unsigned idx) {
      for (std::uint64_t i = hash(line) & mask;; i = (i + 1) & mask) {
        if (!slots[i].used) {
          slots[i] = {line, idx, true};
          return;
        }
      }
    }
    void erase(Addr line) {
      std::uint64_t i = hash(line) & mask;
      for (;; i = (i + 1) & mask) {
        if (!slots[i].used) return;
        if (slots[i].line == line) break;
      }
      // Backward-shift deletion keeps every remaining probe chain intact
      // without tombstones.
      std::uint64_t j = i;
      for (;;) {
        slots[i].used = false;
        for (;;) {
          j = (j + 1) & mask;
          if (!slots[j].used) return;
          const std::uint64_t k = hash(slots[j].line) & mask;
          // Element at j may fill the hole at i unless its ideal slot k
          // lies cyclically within (i, j].
          const bool stays = i <= j ? (k > i && k <= j)
                                    : (k > i || k <= j);
          if (!stays) break;
        }
        slots[i] = slots[j];
        i = j;
      }
    }
  };

  std::vector<Mshr> mshrs_;
  MshrTable mshr_map_;               ///< line -> MSHR index
  std::vector<unsigned> mshr_free_;  ///< free indices (LIFO)

  /// Bumped whenever the inputs of issue_blocked_for can change in the
  /// unblocking direction (MSHR alloc/release, LLC line installs), so the
  /// per-core memo below stays exact. Starts at 1 so default-initialized
  /// memo slots can never produce a false hit.
  std::uint64_t fill_version_ = 1;
  struct BlockedMemo {
    std::uint64_t version = 0;
    Addr line = 0;
    bool blocked = false;
  };
  mutable std::vector<BlockedMemo> blocked_memo_;

  std::priority_queue<PendingDone, std::vector<PendingDone>,
                      std::greater<PendingDone>>
      done_q_;

  Cycle now_ = 0;
  MemStats stats_;
};

}  // namespace secddr::sim
