// Whole-system simulator: cores + memory hierarchy + security engine +
// DRAM, equivalent to the paper's Scarab + Ramulator setup (Table I).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serial.h"
#include "sim/backend.h"
#include "sim/core.h"
#include "sim/memory_system.h"
#include "sim/trace.h"

namespace secddr::sim {

struct SystemConfig {
  CoreConfig core;
  MemConfig mem;
  double core_mhz = 3200.0;
  /// Memory topology: `geometry.channels` (default 1) shards the backend
  /// into that many independent DDR channels, each with its own
  /// controller and security engine; `geometry.channel_interleave` picks
  /// the channel-bit position.
  dram::Geometry geometry;
  dram::Timings timings = dram::Timings::ddr4_3200();
  dram::SchedulingPolicy scheduling = dram::SchedulingPolicy::kFrFcfs;
  secmem::SecurityParams security = secmem::SecurityParams::baseline_tree_ctr();
  /// Size of the data region; metadata is laid out above it.
  std::uint64_t data_bytes = 8ull << 30;
  /// Advance the simulation loop directly to the next component event
  /// instead of ticking every core cycle. Produces bit-identical
  /// RunResults (asserted by the SimFastPathDeterminism tests); turn off
  /// to cross-check or to profile the per-cycle loop (bench/speed.cc).
  bool event_driven = true;
  /// Opt-in per-channel memory threading (see BackendConfig::mem_threads):
  /// > 1 ticks the channels on that many threads, clamped to the channel
  /// count. Threaded and serial runs are bit-identical.
  unsigned mem_threads = 1;
  /// Per-channel dynamic power/thermal accounting + thermal-aware
  /// policies (dram::PowerConfig; everything off by default). Enabling
  /// accounting alone never changes timing; the throttle/remap policies
  /// do (deterministically, identically in every loop mode).
  dram::PowerConfig power;
};

struct RunResult {
  std::vector<CoreStats> cores;
  Cycle cycles = 0;  ///< core cycles until the last core finished
  double total_ipc = 0.0;  ///< sum of per-core IPC
  double llc_mpki = 0.0;   ///< demand LLC misses per kilo-instruction
  double metadata_miss_rate = 0.0;
  std::uint64_t metadata_accesses = 0;
  MemStats mem;
  secmem::EngineStats engine;      ///< aggregated over channels
  dram::ControllerStats dram;      ///< aggregated over channels
  /// Per-channel breakdowns (one entry per channel; index = channel id).
  std::vector<secmem::EngineStats> engine_per_channel;
  std::vector<dram::ControllerStats> dram_per_channel;
  /// Per-channel energy/thermal reports (entries carry `enabled = false`
  /// when power accounting is off, keeping the default result bytes
  /// stable).
  std::vector<dram::PowerReport> power_per_channel;
  /// True when any phase (warmup or measured) ran into `max_cycles`.
  bool hit_cycle_limit = false;
};

/// Owns every component and runs the simulation loop.
///
/// The loop is exposed two ways: `run()` drives a whole experiment in one
/// call, and the `begin()` / `step()` / `result()` stepper executes the
/// identical loop in bounded slices so a driver can interleave many
/// Systems, checkpoint between slices, or stop exactly at the
/// warmup->measured boundary (warm-start). Slicing is bit-identical to an
/// uninterrupted run: a slice boundary only clamps the event-driven skip
/// window, and any window no larger than the components' safe horizon
/// produces the same results as per-cycle ticking (the PR 7 epoch
/// invariant) — `run()` itself is just begin + step-to-completion.
class System {
 public:
  /// `traces` supplies one trace per core (config.mem.cores entries).
  System(const SystemConfig& config,
         std::vector<TraceSource*> traces);

  /// Runs until every core has retired `instructions_per_core` (or its
  /// trace ends), or `max_cycles` elapses. When `warmup_instructions` is
  /// non-zero, that many instructions per core execute first to warm the
  /// caches and metadata state; all statistics are then reset before the
  /// measured region (SimPoint-style warmup).
  RunResult run(std::uint64_t instructions_per_core,
                Cycle max_cycles = 2'000'000'000,
                std::uint64_t warmup_instructions = 0);

  // --- sliced execution -------------------------------------------------
  /// Arms the run() loop without executing any cycles.
  void begin(std::uint64_t instructions_per_core,
             Cycle max_cycles = 2'000'000'000,
             std::uint64_t warmup_instructions = 0);
  /// Executes at most `budget` cycles of the armed run. Returns false
  /// once the run is complete (then call result()). Additionally returns
  /// early — with work remaining — right after the warmup->measured
  /// transition, so the caller can checkpoint the exact post-warmup
  /// state.
  bool step(Cycle budget);
  /// True between begin() and the step() that returned false.
  bool running() const { return st_.active; }
  /// Cycle index within the current phase (what result().cycles reports
  /// once the measured phase ends).
  Cycle phase_cycle() const { return st_.cycle; }
  /// Assembles the RunResult exactly as run() returns it.
  RunResult result() const;

  // --- checkpoint hooks -------------------------------------------------
  /// Serializes the complete simulation state: backend (DRAM + engines
  /// per channel), cores (ROBs, trace positions), memory hierarchy
  /// (caches, MSHRs — waiter pointers encoded as (core, rob-index)
  /// tokens), and the stepper's RunState. Call between step() slices
  /// only (never mid-cycle).
  void save(serial::Sink& s) const;
  /// Restores state saved by save() into a System built from the
  /// identical config whose traces are freshly positioned at their first
  /// record. Throws std::runtime_error on any structural mismatch.
  void load(serial::Source& s);
  /// FNV-1a hash over every result-affecting config field. Excludes
  /// event_driven / mem_threads (bit-identical execution strategies) and
  /// cosmetic names, so a checkpoint restores into any equivalent
  /// configuration.
  std::uint64_t config_hash() const;

  MemoryBackend& backend() { return *backend_; }
  /// Channel-0 conveniences (single-channel tests/analyses).
  secmem::SecurityEngine& engine() { return backend_->engine(0); }
  dram::DramSystem& dram() { return backend_->dram(0); }

 private:
  /// Progress of an armed run: which phase is executing and where the
  /// per-phase loop stands (the per-phase locals of the pre-stepper
  /// run(), hoisted so slices can resume them).
  struct RunState {
    bool active = false;
    std::uint64_t instructions = 0;  ///< measured instructions per core
    std::uint64_t warmup = 0;
    Cycle max_cycles = 0;
    unsigned phase = 1;  ///< 0 = warmup, 1 = measured
    Cycle cycle = 0;     ///< within the current phase
    unsigned deny_streak = 0;
    unsigned attempt_pause = 0;
    bool hit_limit = false;
  };

  /// Closes the current phase (at the cycle limit or with every core
  /// finished). Performs the warmup->measured transition (stat resets +
  /// raised budgets); returns false when the measured phase just ended.
  bool finish_phase(bool at_limit);

  SystemConfig config_;
  std::unique_ptr<MemoryBackend> backend_;
  std::unique_ptr<MemorySystem> memory_;
  std::vector<std::unique_ptr<Core>> cores_;
  RunState st_;
};

}  // namespace secddr::sim
