// Whole-system simulator: cores + memory hierarchy + security engine +
// DRAM, equivalent to the paper's Scarab + Ramulator setup (Table I).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/backend.h"
#include "sim/core.h"
#include "sim/memory_system.h"
#include "sim/trace.h"

namespace secddr::sim {

struct SystemConfig {
  CoreConfig core;
  MemConfig mem;
  double core_mhz = 3200.0;
  /// Memory topology: `geometry.channels` (default 1) shards the backend
  /// into that many independent DDR channels, each with its own
  /// controller and security engine; `geometry.channel_interleave` picks
  /// the channel-bit position.
  dram::Geometry geometry;
  dram::Timings timings = dram::Timings::ddr4_3200();
  dram::SchedulingPolicy scheduling = dram::SchedulingPolicy::kFrFcfs;
  secmem::SecurityParams security = secmem::SecurityParams::baseline_tree_ctr();
  /// Size of the data region; metadata is laid out above it.
  std::uint64_t data_bytes = 8ull << 30;
  /// Advance the simulation loop directly to the next component event
  /// instead of ticking every core cycle. Produces bit-identical
  /// RunResults (asserted by the SimFastPathDeterminism tests); turn off
  /// to cross-check or to profile the per-cycle loop (bench/speed.cc).
  bool event_driven = true;
  /// Opt-in per-channel memory threading (see BackendConfig::mem_threads):
  /// > 1 ticks the channels on that many threads, clamped to the channel
  /// count. Threaded and serial runs are bit-identical.
  unsigned mem_threads = 1;
};

struct RunResult {
  std::vector<CoreStats> cores;
  Cycle cycles = 0;  ///< core cycles until the last core finished
  double total_ipc = 0.0;  ///< sum of per-core IPC
  double llc_mpki = 0.0;   ///< demand LLC misses per kilo-instruction
  double metadata_miss_rate = 0.0;
  std::uint64_t metadata_accesses = 0;
  MemStats mem;
  secmem::EngineStats engine;      ///< aggregated over channels
  dram::ControllerStats dram;      ///< aggregated over channels
  /// Per-channel breakdowns (one entry per channel; index = channel id).
  std::vector<secmem::EngineStats> engine_per_channel;
  std::vector<dram::ControllerStats> dram_per_channel;
  /// True when any phase (warmup or measured) ran into `max_cycles`.
  bool hit_cycle_limit = false;
};

/// Owns every component and runs the simulation loop.
class System {
 public:
  /// `traces` supplies one trace per core (config.mem.cores entries).
  System(const SystemConfig& config,
         std::vector<TraceSource*> traces);

  /// Runs until every core has retired `instructions_per_core` (or its
  /// trace ends), or `max_cycles` elapses. When `warmup_instructions` is
  /// non-zero, that many instructions per core execute first to warm the
  /// caches and metadata state; all statistics are then reset before the
  /// measured region (SimPoint-style warmup).
  RunResult run(std::uint64_t instructions_per_core,
                Cycle max_cycles = 2'000'000'000,
                std::uint64_t warmup_instructions = 0);

  MemoryBackend& backend() { return *backend_; }
  /// Channel-0 conveniences (single-channel tests/analyses).
  secmem::SecurityEngine& engine() { return backend_->engine(0); }
  dram::DramSystem& dram() { return backend_->dram(0); }

 private:
  SystemConfig config_;
  std::unique_ptr<MemoryBackend> backend_;
  std::unique_ptr<MemorySystem> memory_;
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace secddr::sim
