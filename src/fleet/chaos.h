// Deterministic fault-injection harness for the fleet service.
//
// A ChaosPlan is a list of named faults — kill during a checkpoint
// write, kill between tmp and rename, corrupt a published generation,
// publish a torn generation (simulating a crash before fsync), hang a
// worker, tear a result frame mid-pipe, drop a checkpoint announcement,
// or plain-kill at a slice boundary. Each fault fires at the Nth time
// its (point, node) is reached inside a worker process, exactly once
// per fleet run: before executing, the fault durably marks a sentinel
// file (`chaos_<idx>.fired` in the state directory) so a worker
// respawned after the fault does not re-fire it. That makes every
// chaos schedule deterministic and every scenario terminating.
//
// Workers inherit the armed plan through fork() (run_fleet arms it in
// the child from FleetOptions::chaos), so the plan needs no wire
// format. The hooks are called from the shard driver (slice points),
// the worker pipe writer (frame points), and — via the
// checkpoint::WriteObserver seam — from the durable checkpoint writer
// (tmp/rename/publish points). tests/fleet_chaos_test.cc asserts every
// scenario ends in either bit-identical recovery or clean quarantine;
// `fleetd --chaos` runs a seeded plan as a self-checking smoke.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/checkpoint.h"

namespace secddr::fleet {

enum class ChaosPoint : std::uint8_t {
  /// SIGKILL after the checkpoint tmp file is only partially written
  /// (torn tmp; nothing published).
  kKillDuringCheckpointWrite = 0,
  /// SIGKILL after the tmp file is complete and fsync'd, before the
  /// rename publishes it.
  kKillBeforeRename = 1,
  /// Flip one byte of the just-published generation file, then SIGKILL
  /// (recovery must fall back to the previous generation).
  kCorruptPublishedGeneration = 2,
  /// Truncate the tmp file after it was fully written but before the
  /// fsync+rename publish it, then SIGKILL after the rename — the
  /// published generation is torn, exactly what a power cut before
  /// fsync could leave behind on the pre-fsync writer.
  kPublishTornGeneration = 3,
  /// Stop making progress at a slice boundary (sleep forever); the
  /// coordinator watchdog must detect and SIGKILL the worker.
  kHangAtSlice = 4,
  /// Write only a prefix of the node's result frame to the pipe, then
  /// SIGKILL (torn tail must be discarded, result re-earned).
  kTornResultFrame = 5,
  /// Suppress one checkpoint-announcement frame (the durable file is
  /// still written; the coordinator must not depend on announcements).
  kDropCheckpointAnnounce = 6,
  /// Plain SIGKILL at a slice boundary (failure-budget fuel).
  kKillAtSlice = 7,
};

const char* chaos_point_name(ChaosPoint p);

struct ChaosFault {
  ChaosPoint point = ChaosPoint::kKillAtSlice;
  unsigned node = 0;       ///< global fleet node id the fault targets
  unsigned occurrence = 1; ///< fire at the Nth in-process reach of (point, node)
  /// kCorruptPublishedGeneration: byte offset to XOR (mod file size).
  std::uint32_t flip_offset = 48;
};

struct ChaosPlan {
  std::vector<ChaosFault> faults;

  bool empty() const { return faults.empty(); }

  /// Deterministic plan exercising every fault class once, spread over
  /// `nodes` round-robin from a seed-derived starting node, in a
  /// seed-permuted order. Checkpoint-file faults fire at their second
  /// reach so a previous good generation exists and recovery (not
  /// quarantine) is the required outcome.
  static ChaosPlan seeded(std::uint64_t seed, unsigned nodes);

  /// One line per fault, for logs.
  std::string describe() const;
};

namespace chaos {

/// Arms the process-global plan; sentinel files land in `state_dir`.
/// Single-threaded use only (each fleet worker is single-threaded).
void arm(const ChaosPlan& plan, std::string state_dir);
void disarm();
bool armed();

/// Slice-boundary hook (kHangAtSlice / kKillAtSlice). Does not return
/// when a fault fires.
void at_slice(unsigned node);

/// True when a due kDropCheckpointAnnounce fault fired (the caller must
/// suppress the announcement frame).
bool drop_checkpoint_announce(unsigned node);

/// kTornResultFrame: when due, writes a strict prefix of `frame` to
/// `fd` and SIGKILLs the process. Returns normally otherwise.
void maybe_tear_result_frame(unsigned node, int fd, const std::uint8_t* frame,
                             std::size_t n);

/// Checkpoint-write fault driver for `node`'s next durable write, or
/// nullptr when no checkpoint-point fault is armed. The pointer aliases
/// a process-global and is valid until the next call.
checkpoint::WriteObserver* write_observer(unsigned node);

}  // namespace chaos
}  // namespace secddr::fleet
