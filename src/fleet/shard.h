// Shard driver: runs a set of nodes inside one worker process,
// round-robin in bounded cycle slices, writing a durable checkpoint per
// node at every slice boundary.
//
// Slicing is bit-identical to running each node to completion in one
// call (System::step's guarantee), so a fleet's results do not depend on
// how nodes are sharded, interleaved, or how often they checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/node.h"

namespace secddr::fleet {

/// Callbacks the driver raises as it makes progress. `node` is the
/// node's global fleet id.
struct ShardEvents {
  /// A durable checkpoint for `node` was just written to `path`
  /// (phase-relative cycle `cycle`).
  std::function<void(unsigned node, Cycle cycle, const std::string& path)>
      on_checkpoint;
  /// `node` finished; `result` is its final RunResult.
  std::function<void(unsigned node, const sim::RunResult& result)> on_result;
};

class ShardDriver {
 public:
  /// `ids[i]` is the global fleet id of `configs[i]`. Checkpoints land
  /// in `state_dir/node_<id>.ckpt` every `checkpoint_every` executed
  /// cycles per node (also at the warmup boundary — System::step returns
  /// there, capturing the exact warm-start state).
  ShardDriver(std::vector<NodeConfig> configs, std::vector<unsigned> ids,
              Cycle checkpoint_every, std::string state_dir);

  /// Path of a node's durable checkpoint.
  static std::string checkpoint_path(const std::string& state_dir,
                                     unsigned node_id);

  /// Builds every node, resuming any with an existing checkpoint file,
  /// then drives all of them to completion. Events fire as progress is
  /// made; results are reported exactly once per node.
  void run(const ShardEvents& events);

 private:
  std::vector<NodeConfig> configs_;
  std::vector<unsigned> ids_;
  Cycle checkpoint_every_;
  std::string state_dir_;
};

}  // namespace secddr::fleet
