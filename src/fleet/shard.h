// Shard driver: runs a set of nodes inside one worker process,
// round-robin in bounded cycle slices, writing a durable generational
// checkpoint per node at every slice boundary.
//
// Slicing is bit-identical to running each node to completion in one
// call (System::step's guarantee), so a fleet's results do not depend on
// how nodes are sharded, interleaved, or how often they checkpoint.
//
// Failure discipline: a node whose on-disk checkpoint generations all
// fail to decode is reported through on_quarantine and skipped — the
// rest of the shard still runs. Chaos faults (fleet/chaos.h), when
// armed, fire at the slice boundary and inside the checkpoint writer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/node.h"

namespace secddr::fleet {

/// Callbacks the driver raises as it makes progress. `node` is the
/// node's global fleet id.
struct ShardEvents {
  /// Liveness + progress: raised at the start of each slice (before any
  /// work) and again after the slice executed, with the node's current
  /// phase-relative cycle. The coordinator's watchdog feeds on these.
  std::function<void(unsigned node, Cycle cycle)> on_heartbeat;
  /// A durable checkpoint generation for `node` was just published at
  /// `path` (phase-relative cycle `cycle`, generation `gen`).
  std::function<void(unsigned node, Cycle cycle, std::uint64_t gen,
                     const std::string& path)>
      on_checkpoint;
  /// `node` finished; `result` is its final RunResult.
  std::function<void(unsigned node, const sim::RunResult& result)> on_result;
  /// `node` cannot run: every checkpoint generation on disk failed to
  /// decode. The node is skipped; the shard continues.
  std::function<void(unsigned node, const std::string& reason)> on_quarantine;
};

struct ShardOptions {
  /// Cycles each node executes between durable checkpoints.
  Cycle checkpoint_every = 25'000;
  /// Checkpoint generations retained per node (older ones are GC'd).
  unsigned keep_generations = 3;
  /// Directory holding node_<i>.ckpt.<gen> files.
  std::string state_dir = "fleet_state";
};

class ShardDriver {
 public:
  /// `ids[i]` is the global fleet id of `configs[i]`. Checkpoints land
  /// in `state_dir/node_<id>.ckpt.<gen>` every `checkpoint_every`
  /// executed cycles per node (also at the warmup boundary —
  /// System::step returns there, capturing the exact warm-start state).
  ShardDriver(std::vector<NodeConfig> configs, std::vector<unsigned> ids,
              ShardOptions options);

  /// Base path of a node's durable checkpoint family; generation g
  /// lives at checkpoint::generation_path(base, g).
  static std::string checkpoint_path(const std::string& state_dir,
                                     unsigned node_id);

  /// Builds every node, resuming each from its newest decodable
  /// checkpoint generation (quarantining nodes with only corrupt state),
  /// then drives the rest to completion. Events fire as progress is
  /// made; results are reported exactly once per node.
  void run(const ShardEvents& events);

 private:
  std::vector<NodeConfig> configs_;
  std::vector<unsigned> ids_;
  ShardOptions options_;
};

}  // namespace secddr::fleet
