#include "fleet/node.h"

#include <cstdio>
#include <stdexcept>

#include "fleet/checkpoint.h"
#include "sim/stream_trace.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr::fleet {

Node::Node(const NodeConfig& config) : config_(config) { rebuild(); }

void Node::rebuild() {
  system_.reset();  // drop trace references before the sources go away
  traces_.clear();
  const unsigned cores = config_.system.mem.cores;
  if (!config_.trace_files.empty()) {
    if (config_.trace_files.size() != cores)
      throw std::runtime_error(config_.name +
                               ": trace_files must supply one trace per core");
    for (const std::string& path : config_.trace_files)
      traces_.push_back(sim::open_trace(path, config_.loop_traces));
  } else {
    const workloads::WorkloadDesc* desc = workloads::find(config_.workload);
    if (!desc)
      throw std::runtime_error(config_.name + ": unknown workload '" +
                               config_.workload + "'");
    for (unsigned c = 0; c < cores; ++c)
      traces_.push_back(std::make_unique<workloads::SyntheticTrace>(*desc, c));
  }
  std::vector<sim::TraceSource*> raw;
  raw.reserve(traces_.size());
  for (auto& t : traces_) raw.push_back(t.get());
  system_ = std::make_unique<sim::System>(config_.system, std::move(raw));
  system_->begin(config_.instructions, config_.max_cycles, config_.warmup);
}

std::vector<std::uint8_t> Node::checkpoint() const {
  return checkpoint::encode_system(*system_);
}

void Node::checkpoint_to_file(const std::string& path,
                              checkpoint::WriteObserver* observer) const {
  serial::Sink s;
  system_->save(s);
  checkpoint::write_file(path, system_->config_hash(), s.take(), observer);
}

void Node::restore(const std::uint8_t* data, std::size_t n,
                   const std::string& path_label) {
  rebuild();
  checkpoint::decode_system(*system_, data, n, path_label);
}

bool Node::restore_from_file(const std::string& path) {
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (!probe) return false;
  std::fclose(probe);
  rebuild();
  checkpoint::restore_system_file(*system_, path);
  return true;
}

std::uint64_t Node::restore_latest(const std::string& base) {
  const std::vector<checkpoint::GenerationFile> gens =
      checkpoint::list_generations(base);
  std::string detail;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    try {
      rebuild();  // a failed decode leaves partial state; start clean
      checkpoint::restore_system_file(*system_, it->path);
      return it->gen;
    } catch (const CheckpointFormatError& e) {
      if (!detail.empty()) detail += "; ";
      detail += e.what();
    }
  }
  if (!gens.empty())
    throw CheckpointUnrecoverableError(base, gens.size(), detail);
  return 0;
}

}  // namespace secddr::fleet
