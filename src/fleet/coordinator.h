// Fleet coordinator: forks worker processes, assigns each a shard of
// nodes, collects per-node results over pipes, and aggregates fleet
// statistics — with supervised crash recovery.
//
// Supervision discipline:
//  * Liveness. Workers stream CRC-framed heartbeats (per-node cycle
//    progress) on their result pipe; the coordinator's watchdog
//    declares a worker hung after `watchdog_deadline_ms` without a
//    frame, SIGKILLs it, and recovers it like any other abnormal death
//    — run_fleet never blocks unboundedly in poll()/read().
//  * Durability. Workers keep `keep_generations` fsync'd checkpoint
//    generations per node; a respawned worker resumes each node from
//    the newest generation that decodes, so a crash *during*
//    checkpointing falls back to the previous good state.
//  * Failure policy. Abnormal deaths respawn on a deterministic
//    (jitterless) exponential backoff schedule. Every death is
//    attributed to the node the worker last reported driving; a node
//    that exhausts `node_failure_budget` — or whose on-disk state is
//    entirely corrupt — is quarantined, and the fleet run finishes
//    with an explicit partial result (per-node ok|recovered|quarantined
//    status) instead of dying.
//
// Because slicing and checkpoint/restore are bit-identical to
// uninterrupted execution, the aggregates over non-quarantined nodes
// match an undisturbed run at any worker count and under any crash
// schedule — the fleetd smoke and tests/fleet_chaos_test.cc assert
// exactly that across the whole chaos battery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/chaos.h"
#include "fleet/node.h"

namespace secddr::fleet {

struct FleetOptions {
  /// Worker processes; node i is assigned to worker i % workers.
  unsigned workers = 1;
  /// Cycles each node executes between durable checkpoints.
  Cycle checkpoint_every = 25'000;
  /// Checkpoint generations retained per node (node_<i>.ckpt.<gen>).
  unsigned keep_generations = 3;
  /// Directory for checkpoint generations (created if missing). Stale
  /// checkpoints from a previous fleet are resumed, so point different
  /// experiments at different directories (or reset_state_dir between
  /// runs).
  std::string state_dir = "fleet_state";
  /// Crash-recovery test hook: SIGKILL the first worker that reports a
  /// checkpoint (once), forcing the respawn + resume path mid-run.
  bool kill_after_first_checkpoint = false;
  /// Abnormal-death respawn budget across the whole run; exceeding it
  /// aborts the fleet (a crash storm the per-node budget somehow does
  /// not contain would otherwise loop forever).
  unsigned max_respawns = 32;
  /// Watchdog: a worker producing no frame for this long is declared
  /// hung, SIGKILLed, and recovered. 0 disables (poll blocks forever).
  unsigned watchdog_deadline_ms = 30'000;
  /// Deterministic respawn backoff: the k-th consecutive failure of a
  /// worker slot delays its respawn by backoff_ms << (k-1), capped at
  /// backoff_max_ms. 0 respawns immediately.
  unsigned respawn_backoff_ms = 50;
  unsigned respawn_backoff_max_ms = 2'000;
  /// Abnormal deaths attributed to one node before it is quarantined.
  unsigned node_failure_budget = 3;
  /// Fault-injection plan, armed inside every worker (fleet/chaos.h).
  /// Empty = no chaos.
  ChaosPlan chaos;
};

/// Fixed histogram geometry for the fleet aggregates (bucket i counts
/// nodes with value in [i*width, (i+1)*width); the last bucket absorbs
/// everything above).
inline constexpr unsigned kFleetHistBuckets = 16;
inline constexpr double kIpcBucketWidth = 0.5;      ///< node total IPC
inline constexpr double kLatencyBucketWidth = 50.0; ///< avg read latency

/// Terminal per-node status of a fleet run.
enum class NodeStatus : std::uint8_t {
  kOk = 0,         ///< finished without its worker ever dying under it
  kRecovered = 1,  ///< finished after >= 1 resume from a durable checkpoint
  kQuarantined = 2 ///< failure budget exhausted or state unrecoverable;
                   ///< excluded from aggregates, RunResult left default
};
const char* node_status_name(NodeStatus s);

/// One abnormal worker death, attributed to a node (telemetry).
struct FailureEvent {
  unsigned node = 0;
  /// Progress beyond the node's last announced durable checkpoint at
  /// the time of death — the cycles the respawn had to re-execute.
  std::uint64_t lost_cycles = 0;
  /// Backoff delay applied before the replacement worker was spawned
  /// (the deterministic part of the recovery latency); 0 when the death
  /// needed no respawn.
  long long backoff_ms = 0;
  bool hung = false;  ///< death came from the watchdog, not a crash
};

struct FleetResult {
  std::vector<std::string> names;          ///< index = node id
  std::vector<sim::RunResult> per_node;    ///< index = node id
  std::vector<NodeStatus> status;          ///< index = node id
  std::vector<std::string> quarantine_reasons;  ///< "" unless quarantined

  // Recovery telemetry (legitimately differs between an interrupted and
  // an undisturbed run; excluded from encode_fleet).
  unsigned respawns = 0;   ///< workers respawned after abnormal death
  unsigned hung_kills = 0; ///< watchdog-initiated SIGKILLs
  std::vector<FailureEvent> failures;  ///< one per abnormal death

  // Aggregates, derived from per_node in fixed node order (independent
  // of worker count, scheduling, and crash history). Quarantined nodes
  // are excluded — a partial result is explicit, never wrong.
  unsigned quarantined = 0;                    ///< quarantined node count
  double total_ipc = 0.0;                      ///< sum over nodes
  std::uint64_t instructions = 0;              ///< sum over nodes+cores
  std::uint64_t llc_demand_misses = 0;
  std::uint64_t dram_reads_completed = 0;
  std::uint64_t dram_writes_completed = 0;
  std::uint64_t engine_meta_reads = 0;
  std::uint64_t engine_meta_writebacks = 0;
  unsigned nodes_hit_cycle_limit = 0;
  std::vector<std::uint64_t> ipc_hist;      ///< kFleetHistBuckets entries
  std::vector<std::uint64_t> latency_hist;  ///< kFleetHistBuckets entries
};

/// Recomputes the aggregate fields from per_node/status (names/per_node
/// must be fully populated; an empty status vector means all kOk).
void finalize_aggregates(FleetResult& r);

/// Canonical byte form of everything determinism guarantees: names,
/// per-node RunResults, which nodes were quarantined, and the derived
/// aggregates — but NOT the crash history (respawns, hung kills,
/// failure events, ok-vs-recovered), which legitimately differs between
/// an interrupted and an undisturbed run. Byte equality here is the
/// fleet's bit-identity gate.
std::vector<std::uint8_t> encode_fleet(const FleetResult& r);

/// Runs the whole fleet to completion (see file comment). Throws
/// std::runtime_error on protocol corruption, worker setup failure, or
/// an exhausted global respawn budget.
FleetResult run_fleet(const std::vector<NodeConfig>& nodes,
                      const FleetOptions& options);

/// Creates `dir` if missing and deletes every fleet artifact in it
/// (checkpoint generations, tmp residue, chaos sentinels) so a fresh
/// run cannot resume a previous experiment's state.
void reset_state_dir(const std::string& dir);

// --- Pipe wire format ---------------------------------------------------
// Every worker->coordinator message travels as one frame: u32 body
// length, u32 CRC-32 of the body, body. Each worker owns a private pipe
// (single writer), so frames never interleave; the CRC guards the torn
// tail a SIGKILL mid-write can leave.

/// Allocation/starvation guard: a frame length above this is protocol
/// corruption (a torn length field would otherwise make the reassembler
/// wait forever for bytes that never come).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;

/// Wire form of one frame (header + body), ready to write.
std::vector<std::uint8_t> encode_frame(const std::vector<std::uint8_t>& body);

/// Reassembles frames from an arbitrarily chunked byte stream — pipes
/// and sockets deliver short reads at any boundary, including inside
/// the 8-byte header (regression: tests/fleet_chaos_test.cc feeds a
/// socketpair one byte at a time). Incomplete tails stay buffered; a
/// CRC mismatch or oversized length throws std::runtime_error.
class FrameBuffer {
 public:
  void append(const std::uint8_t* data, std::size_t n);
  /// Extracts the next complete frame body; false when none is fully
  /// buffered yet.
  bool next(std::vector<std::uint8_t>& body);
  /// Unconsumed bytes (a non-zero value at EOF is a torn tail).
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  ///< parse position; compacted lazily
};

}  // namespace secddr::fleet
