// Fleet coordinator: forks worker processes, assigns each a shard of
// nodes, collects per-node results over pipes, and aggregates fleet
// statistics — with crash recovery.
//
// Workers checkpoint every node durably (ShardDriver) and report
// progress over a private pipe in CRC-framed messages. When a worker
// dies (crash or kill -9), the coordinator reaps it and respawns a
// replacement for the nodes whose results are still missing; the
// replacement resumes each from its last checkpoint file. Because
// slicing and checkpoint/restore are bit-identical to uninterrupted
// execution, the final aggregates match an undisturbed run at any
// worker count — the fleetd smoke test asserts exactly that, including
// across a forced mid-run SIGKILL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/node.h"

namespace secddr::fleet {

struct FleetOptions {
  /// Worker processes; node i is assigned to worker i % workers.
  unsigned workers = 1;
  /// Cycles each node executes between durable checkpoints.
  Cycle checkpoint_every = 25'000;
  /// Directory for node_<i>.ckpt files (created if missing). Stale
  /// checkpoints from a previous fleet are resumed, so point different
  /// experiments at different directories (or clean between runs).
  std::string state_dir = "fleet_state";
  /// Crash-recovery test hook: SIGKILL the first worker that reports a
  /// checkpoint (once), forcing the respawn + resume path mid-run.
  bool kill_after_first_checkpoint = false;
  /// Abnormal-death respawn budget; exceeding it aborts the fleet run
  /// (a shard that keeps crashing would otherwise loop forever).
  unsigned max_respawns = 8;
};

/// Fixed histogram geometry for the fleet aggregates (bucket i counts
/// nodes with value in [i*width, (i+1)*width); the last bucket absorbs
/// everything above).
inline constexpr unsigned kFleetHistBuckets = 16;
inline constexpr double kIpcBucketWidth = 0.5;      ///< node total IPC
inline constexpr double kLatencyBucketWidth = 50.0; ///< avg read latency

struct FleetResult {
  std::vector<std::string> names;          ///< index = node id
  std::vector<sim::RunResult> per_node;    ///< index = node id
  unsigned respawns = 0;  ///< workers respawned after abnormal death

  // Aggregates, derived from per_node in fixed node order (independent
  // of worker count, scheduling, and crash history).
  double total_ipc = 0.0;                      ///< sum over nodes
  std::uint64_t instructions = 0;              ///< sum over nodes+cores
  std::uint64_t llc_demand_misses = 0;
  std::uint64_t dram_reads_completed = 0;
  std::uint64_t dram_writes_completed = 0;
  std::uint64_t engine_meta_reads = 0;
  std::uint64_t engine_meta_writebacks = 0;
  unsigned nodes_hit_cycle_limit = 0;
  std::vector<std::uint64_t> ipc_hist;      ///< kFleetHistBuckets entries
  std::vector<std::uint64_t> latency_hist;  ///< kFleetHistBuckets entries
};

/// Recomputes the aggregate fields from per_node (names/per_node must be
/// fully populated).
void finalize_aggregates(FleetResult& r);

/// Canonical byte form of everything determinism guarantees: names,
/// per-node RunResults, and the derived aggregates — but NOT the crash
/// history (respawns), which legitimately differs between an interrupted
/// and an undisturbed run. Byte equality here is the fleet's
/// bit-identity gate.
std::vector<std::uint8_t> encode_fleet(const FleetResult& r);

/// Runs the whole fleet to completion (see file comment). Throws
/// std::runtime_error on protocol corruption, worker setup failure, or
/// an exhausted respawn budget.
FleetResult run_fleet(const std::vector<NodeConfig>& nodes,
                      const FleetOptions& options);

}  // namespace secddr::fleet
