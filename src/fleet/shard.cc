#include "fleet/shard.h"

#include <cassert>
#include <memory>
#include <utility>

namespace secddr::fleet {

ShardDriver::ShardDriver(std::vector<NodeConfig> configs,
                         std::vector<unsigned> ids, Cycle checkpoint_every,
                         std::string state_dir)
    : configs_(std::move(configs)),
      ids_(std::move(ids)),
      checkpoint_every_(checkpoint_every == 0 ? 1 : checkpoint_every),
      state_dir_(std::move(state_dir)) {
  assert(configs_.size() == ids_.size());
}

std::string ShardDriver::checkpoint_path(const std::string& state_dir,
                                         unsigned node_id) {
  return state_dir + "/node_" + std::to_string(node_id) + ".ckpt";
}

void ShardDriver::run(const ShardEvents& events) {
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(configs_.size());
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    auto node = std::make_unique<Node>(configs_[i]);
    node->restore_from_file(checkpoint_path(state_dir_, ids_[i]));
    nodes.push_back(std::move(node));
  }

  std::vector<bool> reported(nodes.size(), false);
  bool any_running = true;
  while (any_running) {
    any_running = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (reported[i]) continue;
      Node& node = *nodes[i];
      const bool more = node.finished() ? false : node.step(checkpoint_every_);
      if (more) {
        // Durable first, then announce: a crash between the two only
        // costs the announcement, never the state.
        const std::string path = checkpoint_path(state_dir_, ids_[i]);
        node.checkpoint_to_file(path);
        if (events.on_checkpoint)
          events.on_checkpoint(ids_[i], node.system().phase_cycle(), path);
        any_running = true;
      } else {
        reported[i] = true;
        if (events.on_result) events.on_result(ids_[i], node.result());
      }
    }
  }
}

}  // namespace secddr::fleet
