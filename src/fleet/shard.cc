#include "fleet/shard.h"

#include <cassert>
#include <memory>
#include <utility>

#include "fleet/chaos.h"
#include "fleet/checkpoint.h"

namespace secddr::fleet {

ShardDriver::ShardDriver(std::vector<NodeConfig> configs,
                         std::vector<unsigned> ids, ShardOptions options)
    : configs_(std::move(configs)),
      ids_(std::move(ids)),
      options_(std::move(options)) {
  assert(configs_.size() == ids_.size());
  if (options_.checkpoint_every == 0) options_.checkpoint_every = 1;
  if (options_.keep_generations == 0) options_.keep_generations = 1;
}

std::string ShardDriver::checkpoint_path(const std::string& state_dir,
                                         unsigned node_id) {
  return state_dir + "/node_" + std::to_string(node_id) + ".ckpt";
}

void ShardDriver::run(const ShardEvents& events) {
  std::vector<std::unique_ptr<Node>> nodes(configs_.size());
  std::vector<bool> reported(configs_.size(), false);
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    const std::string base = checkpoint_path(options_.state_dir, ids_[i]);
    auto node = std::make_unique<Node>(configs_[i]);
    try {
      node->restore_latest(base);
    } catch (const CheckpointUnrecoverableError& e) {
      // State exists but none of it decodes: silently restarting from
      // zero would fabricate history, so hand the node back as
      // quarantined and keep the rest of the shard alive.
      reported[i] = true;
      if (events.on_quarantine) events.on_quarantine(ids_[i], e.what());
      continue;
    }
    nodes[i] = std::move(node);
  }

  bool any_running = true;
  while (any_running) {
    any_running = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (reported[i]) continue;
      Node& node = *nodes[i];
      // Liveness first: the heartbeat names the node this worker is
      // about to drive, so a crash anywhere in the slice is attributed
      // to the right node by the coordinator.
      if (events.on_heartbeat)
        events.on_heartbeat(ids_[i], node.system().phase_cycle());
      chaos::at_slice(ids_[i]);
      const bool more =
          node.finished() ? false : node.step(options_.checkpoint_every);
      if (events.on_heartbeat)
        events.on_heartbeat(ids_[i], node.system().phase_cycle());
      if (more) {
        // Durable first, then announce: a crash between the two only
        // costs the announcement, never the state.
        const std::string base = checkpoint_path(options_.state_dir, ids_[i]);
        const std::uint64_t gen = checkpoint::next_generation(base);
        const std::string path = checkpoint::generation_path(base, gen);
        node.checkpoint_to_file(path, chaos::write_observer(ids_[i]));
        checkpoint::gc_generations(base, options_.keep_generations);
        if (events.on_checkpoint)
          events.on_checkpoint(ids_[i], node.system().phase_cycle(), gen,
                               path);
        any_running = true;
      } else {
        reported[i] = true;
        if (events.on_result) events.on_result(ids_[i], node.result());
      }
    }
  }
}

}  // namespace secddr::fleet
