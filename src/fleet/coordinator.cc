#include "fleet/coordinator.h"

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "fleet/checkpoint.h"
#include "fleet/shard.h"
#include "sim/trace_codec.h"

namespace secddr::fleet {

namespace {

using sim::trace_codec::crc32;

// Worker -> coordinator message types (see the wire-format comment in
// coordinator.h for the framing).
enum : std::uint8_t {
  kMsgCheckpoint = 1,  ///< node u32, phase cycle u64, generation u64
  kMsgResult = 2,      ///< node u32, serialized RunResult
  kMsgDone = 3,        ///< shard completed every node it still owned
  kMsgHeartbeat = 4,   ///< node u32, phase cycle u64
  kMsgQuarantine = 5,  ///< node u32, reason string (u64 length + bytes)
};

bool write_all_fd(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // coordinator went away; the worker finishes quietly
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void write_frame(int fd, const std::vector<std::uint8_t>& body) {
  const std::vector<std::uint8_t> frame = encode_frame(body);
  (void)write_all_fd(fd, frame.data(), frame.size());
}

/// Worker main: drive the shard, stream events, then report done.
[[noreturn]] void worker_main(const std::vector<NodeConfig>& configs,
                              const std::vector<unsigned>& ids,
                              const FleetOptions& opt, int fd) {
  try {
    if (!opt.chaos.empty()) chaos::arm(opt.chaos, opt.state_dir);
    ShardOptions shard_opt;
    shard_opt.checkpoint_every = opt.checkpoint_every;
    shard_opt.keep_generations = opt.keep_generations;
    shard_opt.state_dir = opt.state_dir;
    ShardDriver driver(configs, ids, shard_opt);
    ShardEvents events;
    events.on_heartbeat = [fd](unsigned node, Cycle cycle) {
      serial::Sink s;
      s.u8(kMsgHeartbeat);
      s.u32(node);
      s.u64(cycle);
      write_frame(fd, s.data());
    };
    events.on_checkpoint = [fd](unsigned node, Cycle cycle, std::uint64_t gen,
                                const std::string&) {
      if (chaos::drop_checkpoint_announce(node)) return;
      serial::Sink s;
      s.u8(kMsgCheckpoint);
      s.u32(node);
      s.u64(cycle);
      s.u64(gen);
      write_frame(fd, s.data());
    };
    events.on_result = [fd](unsigned node, const sim::RunResult& result) {
      serial::Sink s;
      s.u8(kMsgResult);
      s.u32(node);
      checkpoint::save_result(s, result);
      const std::vector<std::uint8_t> frame = encode_frame(s.data());
      chaos::maybe_tear_result_frame(node, fd, frame.data(), frame.size());
      (void)write_all_fd(fd, frame.data(), frame.size());
    };
    events.on_quarantine = [fd](unsigned node, const std::string& reason) {
      serial::Sink s;
      s.u8(kMsgQuarantine);
      s.u32(node);
      s.u64(reason.size());
      s.bytes(reason.data(), reason.size());
      write_frame(fd, s.data());
    };
    driver.run(events);
    serial::Sink s;
    s.u8(kMsgDone);
    write_frame(fd, s.data());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet worker: %s\n", e.what());
    ::_exit(1);
  }
  ::_exit(0);
}

long long now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Worker {
  pid_t pid = -1;
  int fd = -1;  ///< read end of the worker's pipe
  std::vector<unsigned> node_ids;
  FrameBuffer frames;
  bool done_seen = false;
  bool alive = false;
  bool hung_kill_sent = false;  ///< watchdog SIGKILL issued, EOF pending
  unsigned failures = 0;        ///< consecutive abnormal deaths of this slot
  long long respawn_at_ms = -1; ///< pending respawn deadline; -1 = none
  long long last_frame_ms = 0;  ///< watchdog progress timestamp
  int last_active = -1;         ///< node id named by the latest frame
};

}  // namespace

const char* node_status_name(NodeStatus s) {
  switch (s) {
    case NodeStatus::kOk:
      return "ok";
    case NodeStatus::kRecovered:
      return "recovered";
    case NodeStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> frame(8 + body.size());
  sim::trace_codec::put_u32(frame.data(),
                            static_cast<std::uint32_t>(body.size()));
  sim::trace_codec::put_u32(frame.data() + 4, crc32(body.data(), body.size()));
  if (!body.empty()) std::memcpy(frame.data() + 8, body.data(), body.size());
  return frame;
}

void FrameBuffer::append(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameBuffer::next(std::vector<std::uint8_t>& body) {
  if (buf_.size() - off_ < 8) return false;
  const std::uint32_t len = sim::trace_codec::get_u32(buf_.data() + off_);
  if (len > kMaxFrameBytes)
    throw std::runtime_error("fleet: oversized worker frame (" +
                             std::to_string(len) + " bytes)");
  if (buf_.size() - off_ - 8 < len) return false;  // incomplete frame
  const std::uint8_t* p = buf_.data() + off_ + 8;
  if (crc32(p, len) != sim::trace_codec::get_u32(buf_.data() + off_ + 4))
    throw std::runtime_error("fleet: corrupt worker frame");
  body.assign(p, p + len);
  off_ += 8 + len;
  // Compact once the consumed prefix dominates, keeping append cheap.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  return true;
}

void finalize_aggregates(FleetResult& r) {
  r.status.resize(r.per_node.size(), NodeStatus::kOk);
  r.quarantine_reasons.resize(r.per_node.size());
  r.quarantined = 0;
  r.total_ipc = 0.0;
  r.instructions = 0;
  r.llc_demand_misses = 0;
  r.dram_reads_completed = 0;
  r.dram_writes_completed = 0;
  r.engine_meta_reads = 0;
  r.engine_meta_writebacks = 0;
  r.nodes_hit_cycle_limit = 0;
  r.ipc_hist.assign(kFleetHistBuckets, 0);
  r.latency_hist.assign(kFleetHistBuckets, 0);
  for (std::size_t i = 0; i < r.per_node.size(); ++i) {
    if (r.status[i] == NodeStatus::kQuarantined) {
      // Explicit partial result: a quarantined node contributes nothing
      // rather than contributing something wrong.
      ++r.quarantined;
      continue;
    }
    const sim::RunResult& n = r.per_node[i];
    r.total_ipc += n.total_ipc;
    for (const sim::CoreStats& c : n.cores) r.instructions += c.instructions;
    r.llc_demand_misses += n.mem.llc_demand_misses;
    r.dram_reads_completed += n.dram.reads_completed;
    r.dram_writes_completed += n.dram.writes_completed;
    r.engine_meta_reads += n.engine.meta_reads();
    r.engine_meta_writebacks += n.engine.meta_writebacks;
    if (n.hit_cycle_limit) ++r.nodes_hit_cycle_limit;
    auto bucket = [](double v, double width) {
      const double b = v / width;
      const unsigned idx = b < 0 ? 0u : static_cast<unsigned>(b);
      return idx < kFleetHistBuckets ? idx : kFleetHistBuckets - 1;
    };
    ++r.ipc_hist[bucket(n.total_ipc, kIpcBucketWidth)];
    ++r.latency_hist[bucket(n.dram.avg_read_latency(), kLatencyBucketWidth)];
  }
}

std::vector<std::uint8_t> encode_fleet(const FleetResult& r) {
  serial::Sink s;
  s.u64(r.per_node.size());
  for (std::size_t i = 0; i < r.per_node.size(); ++i) {
    const std::string& name = r.names[i];
    s.u64(name.size());
    s.bytes(name.data(), name.size());
    checkpoint::save_result(s, r.per_node[i]);
    // Quarantine is part of the deterministic outcome (it changes the
    // aggregates); ok-vs-recovered is crash history and stays out.
    s.u8(i < r.status.size() && r.status[i] == NodeStatus::kQuarantined ? 1
                                                                        : 0);
  }
  s.u32(r.quarantined);
  s.f64(r.total_ipc);
  s.u64(r.instructions);
  s.u64(r.llc_demand_misses);
  s.u64(r.dram_reads_completed);
  s.u64(r.dram_writes_completed);
  s.u64(r.engine_meta_reads);
  s.u64(r.engine_meta_writebacks);
  s.u32(r.nodes_hit_cycle_limit);
  for (std::uint64_t v : r.ipc_hist) s.u64(v);
  for (std::uint64_t v : r.latency_hist) s.u64(v);
  return s.take();
}

void reset_state_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
    throw std::runtime_error(dir + ": cannot create fleet state directory");
  DIR* d = ::opendir(dir.c_str());
  if (!d) throw std::runtime_error(dir + ": cannot scan fleet state directory");
  std::vector<std::string> victims;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("node_", 0) == 0 || name.rfind("chaos_", 0) == 0)
      victims.push_back(dir + "/" + name);
  }
  ::closedir(d);
  for (const std::string& v : victims) std::remove(v.c_str());
}

FleetResult run_fleet(const std::vector<NodeConfig>& nodes,
                      const FleetOptions& options) {
  if (nodes.empty()) throw std::runtime_error("fleet has no nodes");
  const unsigned workers = std::max(1u, options.workers);
  if (::mkdir(options.state_dir.c_str(), 0777) != 0 && errno != EEXIST)
    throw std::runtime_error(options.state_dir +
                             ": cannot create fleet state directory");

  FleetResult result;
  result.names.reserve(nodes.size());
  for (const NodeConfig& n : nodes) result.names.push_back(n.name);
  result.per_node.resize(nodes.size());
  result.status.assign(nodes.size(), NodeStatus::kOk);
  result.quarantine_reasons.resize(nodes.size());
  std::vector<bool> have_result(nodes.size(), false);
  std::vector<bool> resumed(nodes.size(), false);
  std::vector<unsigned> node_failures(nodes.size(), 0);
  std::vector<std::uint64_t> last_progress_cycle(nodes.size(), 0);
  std::vector<std::uint64_t> last_ckpt_cycle(nodes.size(), 0);

  auto quarantined = [&](unsigned id) {
    return result.status[id] == NodeStatus::kQuarantined;
  };
  auto accounted = [&](unsigned id) {
    return have_result[id] || quarantined(id);
  };
  auto quarantine = [&](unsigned id, const std::string& reason) {
    if (accounted(id)) return;
    result.status[id] = NodeStatus::kQuarantined;
    result.quarantine_reasons[id] = reason;
    result.per_node[id] = sim::RunResult{};
  };

  std::vector<Worker> fleet(workers);
  for (unsigned i = 0; i < nodes.size(); ++i)
    fleet[i % workers].node_ids.push_back(i);

  auto spawn = [&](Worker& w) {
    // Respawns drop the nodes already accounted for (result arrived or
    // quarantined).
    std::vector<NodeConfig> configs;
    std::vector<unsigned> ids;
    for (unsigned id : w.node_ids)
      if (!accounted(id)) {
        configs.push_back(nodes[id]);
        ids.push_back(id);
      }
    if (configs.empty()) return;
    int fds[2];
    if (::pipe(fds) != 0) throw std::runtime_error("fleet: pipe() failed");
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fleet: fork() failed");
    if (pid == 0) {
      ::close(fds[0]);
      worker_main(configs, ids, options, fds[1]);  // never returns
    }
    ::close(fds[1]);
    w.pid = pid;
    w.fd = fds[0];
    w.frames = FrameBuffer{};
    w.done_seen = false;
    w.alive = true;
    w.hung_kill_sent = false;
    w.last_frame_ms = now_ms();
    w.last_active = -1;
  };

  for (Worker& w : fleet) spawn(w);

  bool killed_once = false;
  unsigned respawns = 0;

  auto handle_frame = [&](Worker& w, const std::vector<std::uint8_t>& body) {
    serial::Source s(body.data(), body.size());
    const std::uint8_t type = s.u8();
    switch (type) {
      case kMsgHeartbeat: {
        const std::uint32_t id = s.u32();
        const std::uint64_t cycle = s.u64();
        if (id >= nodes.size())
          throw std::runtime_error("fleet: heartbeat for unknown node");
        w.last_active = static_cast<int>(id);
        last_progress_cycle[id] = cycle;
        break;
      }
      case kMsgCheckpoint: {
        const std::uint32_t id = s.u32();
        const std::uint64_t cycle = s.u64();
        (void)s.u64();  // generation (telemetry/debug only)
        if (id >= nodes.size())
          throw std::runtime_error("fleet: checkpoint for unknown node");
        w.last_active = static_cast<int>(id);
        last_progress_cycle[id] = cycle;
        last_ckpt_cycle[id] = cycle;
        if (options.kill_after_first_checkpoint && !killed_once) {
          killed_once = true;
          ::kill(w.pid, SIGKILL);
        }
        break;
      }
      case kMsgResult: {
        const std::uint32_t id = s.u32();
        if (id >= nodes.size())
          throw std::runtime_error("fleet: result for unknown node");
        w.last_active = static_cast<int>(id);
        result.per_node[id] = checkpoint::load_result(s);
        have_result[id] = true;
        break;
      }
      case kMsgQuarantine: {
        const std::uint32_t id = s.u32();
        if (id >= nodes.size())
          throw std::runtime_error("fleet: quarantine for unknown node");
        const std::size_t len = s.count(1);
        std::string reason(len, '\0');
        if (len > 0) s.bytes(reason.data(), len);
        quarantine(id, reason);
        break;
      }
      case kMsgDone:
        w.done_seen = true;
        break;
      default:
        throw std::runtime_error("fleet: unknown worker message");
    }
  };

  auto all_accounted = [&] {
    for (unsigned id = 0; id < nodes.size(); ++id)
      if (!accounted(id)) return false;
    return true;
  };

  /// Abnormal death of `w` with unaccounted nodes: attribute, budget,
  /// schedule the backoff respawn.
  auto handle_abnormal_death = [&](Worker& w) {
    // Attribute the death to the node the worker last reported driving
    // (heartbeats precede every slice), falling back to its first
    // unaccounted node when the report is stale.
    unsigned victim = 0;
    bool found = false;
    if (w.last_active >= 0) {
      const unsigned id = static_cast<unsigned>(w.last_active);
      for (unsigned owned : w.node_ids)
        if (owned == id && !accounted(id)) {
          victim = id;
          found = true;
        }
    }
    if (!found)
      for (unsigned id : w.node_ids)
        if (!accounted(id)) {
          victim = id;
          found = true;
          break;
        }
    if (!found) return;  // nothing left to recover
    ++node_failures[victim];
    FailureEvent ev;
    ev.node = victim;
    ev.lost_cycles =
        last_progress_cycle[victim] > last_ckpt_cycle[victim]
            ? last_progress_cycle[victim] - last_ckpt_cycle[victim]
            : 0;
    ev.hung = w.hung_kill_sent;
    result.failures.push_back(ev);
    if (w.hung_kill_sent) ++result.hung_kills;
    if (node_failures[victim] > options.node_failure_budget)
      quarantine(victim,
                 "failure budget exhausted (" +
                     std::to_string(node_failures[victim]) +
                     " abnormal worker deaths attributed to this node)");
    for (unsigned id : w.node_ids)
      if (!accounted(id)) resumed[id] = true;
    bool needs_respawn = false;
    for (unsigned id : w.node_ids)
      if (!accounted(id)) needs_respawn = true;
    if (!needs_respawn) return;
    if (++respawns > options.max_respawns)
      throw std::runtime_error("fleet: respawn budget exhausted");
    ++w.failures;
    // Deterministic exponential backoff, no jitter: identical failure
    // histories produce identical schedules.
    long long delay = options.respawn_backoff_ms;
    for (unsigned k = 1; k < w.failures && delay < options.respawn_backoff_max_ms;
         ++k)
      delay *= 2;
    delay = std::min<long long>(delay, options.respawn_backoff_max_ms);
    result.failures.back().backoff_ms = delay;
    w.respawn_at_ms = now_ms() + delay;
  };

  while (!all_accounted()) {
    const long long now = now_ms();

    // Due respawns.
    for (Worker& w : fleet)
      if (!w.alive && w.respawn_at_ms >= 0 && now >= w.respawn_at_ms) {
        w.respawn_at_ms = -1;
        spawn(w);
      }

    // Watchdog: a worker with no frame inside the deadline is hung —
    // livelocked workers never EOF, so poll alone would block forever.
    if (options.watchdog_deadline_ms > 0)
      for (Worker& w : fleet)
        if (w.alive && !w.hung_kill_sent &&
            now - w.last_frame_ms >=
                static_cast<long long>(options.watchdog_deadline_ms))
          if (::kill(w.pid, SIGKILL) == 0) w.hung_kill_sent = true;

    // Poll timeout: the nearest watchdog or respawn deadline.
    long long timeout = -1;
    auto consider = [&](long long at) {
      const long long t = std::max<long long>(0, at - now);
      if (timeout < 0 || t < timeout) timeout = t;
    };
    if (options.watchdog_deadline_ms > 0)
      for (const Worker& w : fleet)
        if (w.alive && !w.hung_kill_sent)
          consider(w.last_frame_ms + options.watchdog_deadline_ms);
    for (const Worker& w : fleet)
      if (!w.alive && w.respawn_at_ms >= 0) consider(w.respawn_at_ms);

    std::vector<pollfd> pfds;
    std::vector<Worker*> owners;
    for (Worker& w : fleet)
      if (w.alive) {
        pfds.push_back({w.fd, POLLIN, 0});
        owners.push_back(&w);
      }
    if (pfds.empty() && timeout < 0)
      throw std::runtime_error("fleet: results missing with no live worker");
    const int ptimeout =
        timeout < 0 ? -1
                    : static_cast<int>(std::min<long long>(timeout, 60'000));
    const int ready =
        ::poll(pfds.empty() ? nullptr : pfds.data(), pfds.size(), ptimeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("fleet: poll() failed");
    }
    if (ready == 0) continue;  // a deadline fired; re-evaluate at the top

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Worker& w = *owners[i];
      std::uint8_t chunk[1 << 16];
      const ssize_t n = ::read(w.fd, chunk, sizeof chunk);
      if (n > 0) {
        w.last_frame_ms = now_ms();
        w.frames.append(chunk, static_cast<std::size_t>(n));
        std::vector<std::uint8_t> body;
        while (w.frames.next(body)) handle_frame(w, body);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      // EOF: the worker exited (a torn trailing frame, if any, stays
      // unparsed in the buffer and is discarded).
      ::close(w.fd);
      w.alive = false;
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      const bool unfinished = [&] {
        for (unsigned id : w.node_ids)
          if (!accounted(id)) return true;
        return false;
      }();
      if (!unfinished) {
        w.failures = 0;  // the slot retired cleanly
        continue;
      }
      if (WIFEXITED(status))
        throw std::runtime_error(
            w.done_seen ? "fleet: worker reported done with results missing"
                        : "fleet: worker failed (exit " +
                              std::to_string(WEXITSTATUS(status)) + ")");
      // Killed by a signal (crash, chaos, or our own watchdog): resume
      // the missing nodes from their durable checkpoint generations in
      // a fresh worker, after the backoff.
      handle_abnormal_death(w);
    }
  }

  // Reap the stragglers (workers that still owe only their done marker).
  for (Worker& w : fleet)
    if (w.alive) {
      ::close(w.fd);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.alive = false;
    }

  result.respawns = respawns;
  for (unsigned id = 0; id < nodes.size(); ++id)
    if (result.status[id] != NodeStatus::kQuarantined && resumed[id])
      result.status[id] = NodeStatus::kRecovered;
  finalize_aggregates(result);
  return result;
}

}  // namespace secddr::fleet
