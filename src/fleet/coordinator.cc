#include "fleet/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "fleet/checkpoint.h"
#include "fleet/shard.h"
#include "sim/trace_codec.h"

namespace secddr::fleet {

namespace {

using sim::trace_codec::crc32;

// Worker -> coordinator message types. Every message travels as one
// frame: u32 body length, u32 CRC-32 of the body, body. Each worker owns
// a private pipe (single writer), so frames never interleave; the CRC
// guards the torn tail a SIGKILL mid-write can leave.
enum : std::uint8_t {
  kMsgCheckpoint = 1,  ///< node u32, phase cycle u64
  kMsgResult = 2,      ///< node u32, serialized RunResult
  kMsgDone = 3,        ///< shard completed every node
};

void write_frame(int fd, const std::vector<std::uint8_t>& body) {
  std::uint8_t hdr[8];
  sim::trace_codec::put_u32(hdr, static_cast<std::uint32_t>(body.size()));
  sim::trace_codec::put_u32(hdr + 4, crc32(body.data(), body.size()));
  std::vector<std::uint8_t> frame(hdr, hdr + 8);
  frame.insert(frame.end(), body.begin(), body.end());
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // coordinator went away; the worker just finishes quietly
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Worker main: drive the shard, stream events, then report done.
[[noreturn]] void worker_main(const std::vector<NodeConfig>& configs,
                              const std::vector<unsigned>& ids,
                              const FleetOptions& opt, int fd) {
  try {
    ShardDriver driver(configs, ids, opt.checkpoint_every, opt.state_dir);
    ShardEvents events;
    events.on_checkpoint = [fd](unsigned node, Cycle cycle,
                                const std::string&) {
      serial::Sink s;
      s.u8(kMsgCheckpoint);
      s.u32(node);
      s.u64(cycle);
      write_frame(fd, s.data());
    };
    events.on_result = [fd](unsigned node, const sim::RunResult& result) {
      serial::Sink s;
      s.u8(kMsgResult);
      s.u32(node);
      checkpoint::save_result(s, result);
      write_frame(fd, s.data());
    };
    driver.run(events);
    serial::Sink s;
    s.u8(kMsgDone);
    write_frame(fd, s.data());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet worker: %s\n", e.what());
    ::_exit(1);
  }
  ::_exit(0);
}

struct Worker {
  pid_t pid = -1;
  int fd = -1;  ///< read end of the worker's pipe
  std::vector<unsigned> node_ids;
  std::vector<std::uint8_t> buf;  ///< unparsed frame bytes
  bool done_seen = false;
  bool alive = false;
};

}  // namespace

void finalize_aggregates(FleetResult& r) {
  r.total_ipc = 0.0;
  r.instructions = 0;
  r.llc_demand_misses = 0;
  r.dram_reads_completed = 0;
  r.dram_writes_completed = 0;
  r.engine_meta_reads = 0;
  r.engine_meta_writebacks = 0;
  r.nodes_hit_cycle_limit = 0;
  r.ipc_hist.assign(kFleetHistBuckets, 0);
  r.latency_hist.assign(kFleetHistBuckets, 0);
  for (const sim::RunResult& n : r.per_node) {
    r.total_ipc += n.total_ipc;
    for (const sim::CoreStats& c : n.cores) r.instructions += c.instructions;
    r.llc_demand_misses += n.mem.llc_demand_misses;
    r.dram_reads_completed += n.dram.reads_completed;
    r.dram_writes_completed += n.dram.writes_completed;
    r.engine_meta_reads += n.engine.meta_reads();
    r.engine_meta_writebacks += n.engine.meta_writebacks;
    if (n.hit_cycle_limit) ++r.nodes_hit_cycle_limit;
    auto bucket = [](double v, double width) {
      const double b = v / width;
      const unsigned i = b < 0 ? 0u : static_cast<unsigned>(b);
      return i < kFleetHistBuckets ? i : kFleetHistBuckets - 1;
    };
    ++r.ipc_hist[bucket(n.total_ipc, kIpcBucketWidth)];
    ++r.latency_hist[bucket(n.dram.avg_read_latency(), kLatencyBucketWidth)];
  }
}

std::vector<std::uint8_t> encode_fleet(const FleetResult& r) {
  serial::Sink s;
  s.u64(r.per_node.size());
  for (std::size_t i = 0; i < r.per_node.size(); ++i) {
    const std::string& name = r.names[i];
    s.u64(name.size());
    s.bytes(name.data(), name.size());
    checkpoint::save_result(s, r.per_node[i]);
  }
  s.f64(r.total_ipc);
  s.u64(r.instructions);
  s.u64(r.llc_demand_misses);
  s.u64(r.dram_reads_completed);
  s.u64(r.dram_writes_completed);
  s.u64(r.engine_meta_reads);
  s.u64(r.engine_meta_writebacks);
  s.u32(r.nodes_hit_cycle_limit);
  for (std::uint64_t v : r.ipc_hist) s.u64(v);
  for (std::uint64_t v : r.latency_hist) s.u64(v);
  return s.take();
}

FleetResult run_fleet(const std::vector<NodeConfig>& nodes,
                      const FleetOptions& options) {
  if (nodes.empty()) throw std::runtime_error("fleet has no nodes");
  const unsigned workers = std::max(1u, options.workers);
  if (::mkdir(options.state_dir.c_str(), 0777) != 0 && errno != EEXIST)
    throw std::runtime_error(options.state_dir +
                             ": cannot create fleet state directory");

  FleetResult result;
  result.names.reserve(nodes.size());
  for (const NodeConfig& n : nodes) result.names.push_back(n.name);
  result.per_node.resize(nodes.size());
  std::vector<bool> have_result(nodes.size(), false);

  std::vector<Worker> fleet(workers);
  for (unsigned i = 0; i < nodes.size(); ++i)
    fleet[i % workers].node_ids.push_back(i);

  auto spawn = [&](Worker& w) {
    // Respawns drop the nodes whose results already arrived.
    std::vector<NodeConfig> configs;
    std::vector<unsigned> ids;
    for (unsigned id : w.node_ids)
      if (!have_result[id]) {
        configs.push_back(nodes[id]);
        ids.push_back(id);
      }
    if (configs.empty()) return;
    int fds[2];
    if (::pipe(fds) != 0) throw std::runtime_error("fleet: pipe() failed");
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fleet: fork() failed");
    if (pid == 0) {
      ::close(fds[0]);
      worker_main(configs, ids, options, fds[1]);  // never returns
    }
    ::close(fds[1]);
    w.pid = pid;
    w.fd = fds[0];
    w.buf.clear();
    w.done_seen = false;
    w.alive = true;
  };

  for (Worker& w : fleet) spawn(w);

  bool killed_once = false;
  unsigned respawns = 0;

  auto handle_frame = [&](Worker& w, const std::uint8_t* body,
                          std::size_t n) {
    serial::Source s(body, n);
    const std::uint8_t type = s.u8();
    switch (type) {
      case kMsgCheckpoint: {
        (void)s.u32();  // node id
        (void)s.u64();  // phase cycle
        if (options.kill_after_first_checkpoint && !killed_once) {
          killed_once = true;
          ::kill(w.pid, SIGKILL);
        }
        break;
      }
      case kMsgResult: {
        const std::uint32_t id = s.u32();
        if (id >= nodes.size())
          throw std::runtime_error("fleet: result for unknown node");
        result.per_node[id] = checkpoint::load_result(s);
        have_result[id] = true;
        break;
      }
      case kMsgDone:
        w.done_seen = true;
        break;
      default:
        throw std::runtime_error("fleet: unknown worker message");
    }
  };

  auto drain_buffer = [&](Worker& w) {
    std::size_t off = 0;
    while (w.buf.size() - off >= 8) {
      const std::uint32_t len = sim::trace_codec::get_u32(w.buf.data() + off);
      if (w.buf.size() - off - 8 < len) break;  // incomplete frame
      const std::uint8_t* body = w.buf.data() + off + 8;
      if (crc32(body, len) != sim::trace_codec::get_u32(w.buf.data() + off + 4))
        throw std::runtime_error("fleet: corrupt worker frame");
      handle_frame(w, body, len);
      off += 8 + len;
    }
    w.buf.erase(w.buf.begin(), w.buf.begin() + static_cast<std::ptrdiff_t>(off));
  };

  auto all_results = [&] {
    for (bool b : have_result)
      if (!b) return false;
    return true;
  };

  while (!all_results()) {
    std::vector<pollfd> pfds;
    std::vector<Worker*> owners;
    for (Worker& w : fleet)
      if (w.alive) {
        pfds.push_back({w.fd, POLLIN, 0});
        owners.push_back(&w);
      }
    if (pfds.empty())
      throw std::runtime_error("fleet: results missing with no live worker");
    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("fleet: poll() failed");
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Worker& w = *owners[i];
      std::uint8_t chunk[1 << 16];
      const ssize_t n = ::read(w.fd, chunk, sizeof chunk);
      if (n > 0) {
        w.buf.insert(w.buf.end(), chunk, chunk + n);
        drain_buffer(w);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      // EOF: the worker exited (a torn trailing frame, if any, stays
      // unparsed in the buffer and is discarded).
      ::close(w.fd);
      w.alive = false;
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      const bool unfinished = [&] {
        for (unsigned id : w.node_ids)
          if (!have_result[id]) return true;
        return false;
      }();
      if (!unfinished) continue;
      if (WIFEXITED(status))
        throw std::runtime_error(
            w.done_seen ? "fleet: worker reported done with results missing"
                        : "fleet: worker failed (exit " +
                              std::to_string(WEXITSTATUS(status)) + ")");
      // Killed by a signal: resume the missing nodes from their durable
      // checkpoints in a fresh worker.
      if (++respawns > options.max_respawns)
        throw std::runtime_error("fleet: respawn budget exhausted");
      spawn(w);
    }
  }

  // Reap the stragglers (workers that still owe only their done marker).
  for (Worker& w : fleet)
    if (w.alive) {
      ::close(w.fd);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.alive = false;
    }

  result.respawns = respawns;
  finalize_aggregates(result);
  return result;
}

}  // namespace secddr::fleet
