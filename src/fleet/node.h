// One simulated node of the fleet: a System plus the trace sources that
// feed it, buildable from a plain config in any process.
//
// A Node owns everything a restore needs to reconstruct: restore()
// rebuilds the traces and the System from the config, then loads the
// checkpoint payload — so a worker respawned after a crash (a fresh
// process) resumes bit-identically from the last durable checkpoint.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/checkpoint.h"
#include "sim/system.h"

namespace secddr::fleet {

/// Everything needed to (re)build one node. Traces come either from
/// binary/text trace files (one per core, PR 5 wire format) or, when
/// `trace_files` is empty, from the named synthetic workload of the
/// evaluation suite (deterministic per (workload, core) — the same spec
/// rebuilds the identical stream in any process).
struct NodeConfig {
  std::string name;
  sim::SystemConfig system;
  std::vector<std::string> trace_files;  ///< one per core when non-empty
  bool loop_traces = false;
  std::string workload;  ///< workloads::suite() name when trace_files empty
  std::uint64_t instructions = 100'000;
  std::uint64_t warmup = 0;
  Cycle max_cycles = 2'000'000'000;
};

class Node {
 public:
  /// Builds the traces + System and arms the run (System::begin).
  /// Throws std::runtime_error on an unknown workload or unreadable
  /// trace file.
  explicit Node(const NodeConfig& config);

  /// Executes at most `budget` cycles; false once the run completed.
  bool step(Cycle budget) { return system_->step(budget); }
  bool finished() const { return !system_->running(); }
  sim::RunResult result() const { return system_->result(); }
  const NodeConfig& config() const { return config_; }
  sim::System& system() { return *system_; }

  /// Serialized checkpoint (container format, see fleet/checkpoint.h).
  std::vector<std::uint8_t> checkpoint() const;
  /// Atomically + durably writes checkpoint() to `path`. The observer
  /// (normally nullptr) is the chaos harness's crash-injection seam.
  void checkpoint_to_file(
      const std::string& path,
      fleet::checkpoint::WriteObserver* observer = nullptr) const;
  /// Rebuilds traces + System from the config, then loads the
  /// checkpoint. Valid at any point in the node's life (the rebuild
  /// repositions every trace at its first record, which System::load
  /// requires). Throws CheckpointFormatError on corruption or a config
  /// mismatch.
  void restore(const std::uint8_t* data, std::size_t n,
               const std::string& path_label);
  /// read + restore; returns false (leaving the node untouched) when the
  /// file does not exist. Corrupt files still throw — a present but
  /// unreadable checkpoint must never silently restart the node.
  bool restore_from_file(const std::string& path);
  /// Restores the newest decodable generation of `base` (see
  /// checkpoint::list_generations): generations are walked newest-first
  /// and any that throws CheckpointFormatError is skipped, so a crash
  /// during checkpointing (torn tmp published, corrupt current) falls
  /// back to the previous good state. Returns the restored generation,
  /// or 0 for a clean cold start (no generation present). Throws
  /// CheckpointUnrecoverableError when generations exist but none
  /// restores — the caller must quarantine, never silently restart.
  std::uint64_t restore_latest(const std::string& base);

 private:
  void rebuild();

  NodeConfig config_;
  std::vector<std::unique_ptr<sim::TraceSource>> traces_;
  std::unique_ptr<sim::System> system_;
};

}  // namespace secddr::fleet
