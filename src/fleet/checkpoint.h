// Versioned, checksummed on-disk checkpoint container for the fleet
// service — the durable form of System::save()/load().
//
// Layout (all fields little-endian, independent of host byte order):
//
//   Header (32 bytes)
//     0   char[8]  magic            "SECDDRCK"
//     8   u32      version          currently 1
//     12  u32      reserved         0
//     16  u64      config_hash      System::config_hash() of the producer
//     24  u32      reserved         0
//     28  u32      header_crc       CRC-32 of bytes [0, 28)
//
//   Data block (repeated; the payload chunked into <= kBlockBytes)
//     +0  u32      payload_bytes    > 0
//     +4  u32      block_index      0, 1, 2, ... (detects reordering)
//     +8  u32      payload_crc      CRC-32 of the payload
//     +12 u8[payload_bytes]
//
//   Footer (mandatory)
//     +0  u32      0                payload_bytes == 0 marks the footer
//     +4  u32      0
//     +8  u32      footer_crc       CRC-32 of the 8-byte total field
//     +12 u64      total_bytes      must equal the sum of payload_bytes
//
// Same discipline as sim/trace_codec (whose CRC-32 this reuses): every
// structural violation throws CheckpointFormatError carrying the file
// path and byte offset; tests/fleet_checkpoint_test.cc is the battery.
// Files are written atomically AND durably: the payload is written to a
// tmp file, fsync'd, renamed over the final name, and the parent
// directory is fsync'd — so a crash (or power cut) at any point leaves
// either the old file or the complete new one, never a torn
// "committed" checkpoint. The fleet keeps N generations per node
// (`<base>.<gen>`); restore walks them newest-first, skipping any that
// fails to decode, so a corrupt newest generation falls back to the
// previous good state instead of aborting.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/system.h"

namespace secddr::fleet {

/// Structurally invalid checkpoint: bad magic, unsupported version,
/// checksum mismatch, truncation, config mismatch. `offset()` is the
/// byte position of the violating structure.
class CheckpointFormatError : public std::runtime_error {
 public:
  CheckpointFormatError(std::string path, std::uint64_t offset,
                        const std::string& what)
      : std::runtime_error(path + ": " + what + " (offset " +
                           std::to_string(offset) + ")"),
        path_(std::move(path)),
        offset_(offset) {}

  const std::string& path() const { return path_; }
  std::uint64_t offset() const { return offset_; }

 private:
  std::string path_;
  std::uint64_t offset_;
};

/// Every present generation of a node's checkpoint failed to decode:
/// there is state on disk but none of it restores. The fleet treats
/// this as grounds for quarantine (restarting from zero would silently
/// discard the node's history), distinct from the clean cold start a
/// missing checkpoint means.
class CheckpointUnrecoverableError : public std::runtime_error {
 public:
  CheckpointUnrecoverableError(std::string base, std::size_t generations,
                               const std::string& detail)
      : std::runtime_error(base + ": all " + std::to_string(generations) +
                           " checkpoint generation(s) unrecoverable — " +
                           detail),
        base_(std::move(base)),
        generations_(generations) {}

  const std::string& base() const { return base_; }
  std::size_t generations() const { return generations_; }

 private:
  std::string base_;
  std::size_t generations_;
};

namespace checkpoint {

inline constexpr std::uint8_t kMagic[8] = {'S', 'E', 'C', 'D',
                                           'D', 'R', 'C', 'K'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kBlockHeaderBytes = 12;
inline constexpr std::size_t kFooterTotalBytes = 8;
/// Chunk size for the payload blocks (each independently CRC'd).
inline constexpr std::size_t kBlockBytes = 1u << 20;
/// Allocation guard while reading: a corrupt payload_bytes field must
/// not trigger a pathological malloc.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;

/// Wraps a serialized state payload in the container format.
std::vector<std::uint8_t> encode(std::uint64_t config_hash,
                                 const std::vector<std::uint8_t>& payload);

/// Validates and unwraps a container; returns the payload and stores the
/// header's config hash. `path` labels any CheckpointFormatError thrown.
std::vector<std::uint8_t> decode(const std::uint8_t* data, std::size_t n,
                                 const std::string& path,
                                 std::uint64_t* config_hash);

/// Observation points inside write_file, in call order. The production
/// writer passes nullptr; the chaos harness injects crashes and
/// corruption here (fleet/chaos.h). A callback may not return (SIGKILL)
/// or may mutate the named file — write_file re-reads nothing, so a
/// truncation at on_tmp_written survives into the published file,
/// exactly modeling data lost to a crash before fsync.
struct WriteObserver {
  virtual ~WriteObserver() = default;
  /// The tmp file holds a strict prefix of the bytes.
  virtual void on_tmp_partial(const std::string& tmp) { (void)tmp; }
  /// All bytes written to the tmp file, before fsync.
  virtual void on_tmp_written(const std::string& tmp) { (void)tmp; }
  /// Tmp file fsync'd, before the rename publishes it.
  virtual void on_before_rename(const std::string& tmp) { (void)tmp; }
  /// Renamed into place and the parent directory fsync'd.
  virtual void on_published(const std::string& path) { (void)path; }
};

/// Atomically and durably writes `path`: tmp file, fsync(file), rename,
/// fsync(parent directory). Throws std::runtime_error on I/O failure.
void write_file(const std::string& path, std::uint64_t config_hash,
                const std::vector<std::uint8_t>& payload,
                WriteObserver* observer = nullptr);

// --- Generational checkpoints ------------------------------------------
// A node's durable state is a family `<base>.<gen>` with gen = 1, 2, ...
// The writer publishes the next generation, then garbage-collects so at
// most `keep` generations remain; restore walks newest-first.

/// Path of generation `gen` of `base`.
std::string generation_path(const std::string& base, std::uint64_t gen);

struct GenerationFile {
  std::uint64_t gen = 0;
  std::string path;
};

/// Every `<base>.<gen>` present on disk, ascending by generation.
/// Missing directory or no matches -> empty (a clean cold start).
std::vector<GenerationFile> list_generations(const std::string& base);

/// Generation the next write should use (newest present + 1, else 1).
std::uint64_t next_generation(const std::string& base);

/// Deletes all but the newest `keep` generations of `base`.
void gc_generations(const std::string& base, unsigned keep);

/// Reads and validates a checkpoint file. Throws CheckpointFormatError
/// on structural violations, std::runtime_error when unreadable.
std::vector<std::uint8_t> read_file(const std::string& path,
                                    std::uint64_t* config_hash);

// --- System-level convenience ------------------------------------------

/// System::save() wrapped in the container, stamped with config_hash().
std::vector<std::uint8_t> encode_system(const sim::System& sys);
/// Restores a container produced by encode_system into `sys` (built from
/// an equivalent config; its traces freshly positioned). Throws
/// CheckpointFormatError when the config hashes disagree (offset 16).
void decode_system(sim::System& sys, const std::uint8_t* data, std::size_t n,
                   const std::string& path);

/// encode_system + write_file.
void save_system_file(const sim::System& sys, const std::string& path);
/// read_file + decode_system.
void restore_system_file(sim::System& sys, const std::string& path);

// --- RunResult codec ----------------------------------------------------
// Canonical byte form of a RunResult: doubles travel as IEEE-754 bit
// patterns, so "bit-identical results" can be asserted (and aggregates
// compared) as plain byte equality.
void save_result(serial::Sink& s, const sim::RunResult& r);
sim::RunResult load_result(serial::Source& s);
std::vector<std::uint8_t> encode_result(const sim::RunResult& r);

}  // namespace checkpoint
}  // namespace secddr::fleet
