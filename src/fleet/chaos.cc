#include "fleet/chaos.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace secddr::fleet {

const char* chaos_point_name(ChaosPoint p) {
  switch (p) {
    case ChaosPoint::kKillDuringCheckpointWrite:
      return "kill-during-checkpoint-write";
    case ChaosPoint::kKillBeforeRename:
      return "kill-before-rename";
    case ChaosPoint::kCorruptPublishedGeneration:
      return "corrupt-published-generation";
    case ChaosPoint::kPublishTornGeneration:
      return "publish-torn-generation";
    case ChaosPoint::kHangAtSlice:
      return "hang-at-slice";
    case ChaosPoint::kTornResultFrame:
      return "torn-result-frame";
    case ChaosPoint::kDropCheckpointAnnounce:
      return "drop-checkpoint-announce";
    case ChaosPoint::kKillAtSlice:
      return "kill-at-slice";
  }
  return "unknown";
}

namespace {

/// splitmix64: tiny, seed-stable, good enough to permute a fault list.
std::uint64_t mix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ChaosPlan ChaosPlan::seeded(std::uint64_t seed, unsigned nodes) {
  if (nodes == 0) nodes = 1;
  std::vector<ChaosPoint> points = {
      ChaosPoint::kKillDuringCheckpointWrite,
      ChaosPoint::kKillBeforeRename,
      ChaosPoint::kCorruptPublishedGeneration,
      ChaosPoint::kPublishTornGeneration,
      ChaosPoint::kHangAtSlice,
      ChaosPoint::kTornResultFrame,
      ChaosPoint::kDropCheckpointAnnounce,
      ChaosPoint::kKillAtSlice,
  };
  std::uint64_t s = seed ? seed : 1;
  // Fisher-Yates permutation of the fault classes, seed-derived.
  for (std::size_t i = points.size(); i > 1; --i)
    std::swap(points[i - 1], points[mix64(s) % i]);
  const unsigned first = static_cast<unsigned>(mix64(s) % nodes);
  ChaosPlan plan;
  for (std::size_t j = 0; j < points.size(); ++j) {
    ChaosFault f;
    f.point = points[j];
    f.node = (first + static_cast<unsigned>(j)) % nodes;
    // Checkpoint-file faults fire at the second write so a previous
    // good generation exists and the required outcome is recovery.
    const bool ckpt_fault =
        f.point == ChaosPoint::kCorruptPublishedGeneration ||
        f.point == ChaosPoint::kPublishTornGeneration;
    f.occurrence = ckpt_fault ? 2 : 1;
    f.flip_offset = 40 + static_cast<std::uint32_t>(mix64(s) % 64);
    plan.faults.push_back(f);
  }
  return plan;
}

std::string ChaosPlan::describe() const {
  std::string out;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ChaosFault& f = faults[i];
    out += "  fault " + std::to_string(i) + ": " +
           chaos_point_name(f.point) + " node=" + std::to_string(f.node) +
           " occurrence=" + std::to_string(f.occurrence) + "\n";
  }
  return out;
}

namespace chaos {
namespace {

struct State {
  ChaosPlan plan;
  std::string dir;
  /// In-process reach counters, indexed [point][node-hash-free]: the
  /// fleet's node ids are small and dense, a flat map keyed by
  /// (point, node) packed into one u32 is plenty.
  std::vector<std::pair<std::uint32_t, unsigned>> reach;
  bool armed = false;
};

State g_state;

std::uint32_t reach_key(ChaosPoint p, unsigned node) {
  return static_cast<std::uint32_t>(p) << 24 | (node & 0xffffffu);
}

unsigned bump_reach(ChaosPoint p, unsigned node) {
  const std::uint32_t key = reach_key(p, node);
  for (auto& kv : g_state.reach)
    if (kv.first == key) return ++kv.second;
  g_state.reach.push_back({key, 1});
  return 1;
}

std::string sentinel_path(std::size_t fault_idx) {
  return g_state.dir + "/chaos_" + std::to_string(fault_idx) + ".fired";
}

bool fired(std::size_t fault_idx) {
  return ::access(sentinel_path(fault_idx).c_str(), F_OK) == 0;
}

/// Durably records that fault `idx` is about to execute, so a respawned
/// worker (which re-arms the same inherited plan) never re-fires it.
void mark_fired(std::size_t fault_idx) {
  const std::string path = sentinel_path(fault_idx);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// The fault due at this reach of (point, node), marked fired — or
/// nullptr. At most one fault fires per reach.
const ChaosFault* take(ChaosPoint p, unsigned node) {
  if (!g_state.armed) return nullptr;
  const unsigned count = bump_reach(p, node);
  for (std::size_t i = 0; i < g_state.plan.faults.size(); ++i) {
    const ChaosFault& f = g_state.plan.faults[i];
    if (f.point != p || f.node != node || f.occurrence != count) continue;
    if (fired(i)) continue;
    mark_fired(i);
    return &f;
  }
  return nullptr;
}

[[noreturn]] void die() {
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable; placates [[noreturn]]
}

[[noreturn]] void hang() {
  // Livelock, not exit: the pipe stays open, poll() never reports EOF,
  // and only the coordinator's watchdog can end this worker.
  for (;;) ::usleep(100'000);
}

/// XORs one byte of `path` at `offset` (mod file size).
void flip_byte(const std::string& path, std::uint32_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (!f) return;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size > 0) {
    const long pos = static_cast<long>(offset % static_cast<std::uint64_t>(size));
    std::fseek(f, pos, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, pos, SEEK_SET);
    std::fputc((c == EOF ? 0 : c) ^ 0x40, f);
    std::fflush(f);
    ::fsync(::fileno(f));
  }
  std::fclose(f);
}

/// WriteObserver wiring the four checkpoint-write fault points into one
/// durable write of `node`'s checkpoint.
class CheckpointChaos final : public checkpoint::WriteObserver {
 public:
  void set_node(unsigned node) {
    node_ = node;
    die_at_publish_ = false;
  }

  void on_tmp_partial(const std::string&) override {
    if (take(ChaosPoint::kKillDuringCheckpointWrite, node_)) die();
  }

  void on_tmp_written(const std::string& tmp) override {
    if (take(ChaosPoint::kPublishTornGeneration, node_)) {
      // Model the data a crash-before-fsync would lose: the tail of
      // the file never reaches disk, yet the rename still publishes it.
      std::FILE* f = std::fopen(tmp.c_str(), "r+b");
      if (f) {
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        std::fclose(f);
        if (size > 1) (void)::truncate(tmp.c_str(), size / 2);
      }
      die_at_publish_ = true;
    }
  }

  void on_before_rename(const std::string&) override {
    if (take(ChaosPoint::kKillBeforeRename, node_)) die();
  }

  void on_published(const std::string& path) override {
    if (die_at_publish_) die();
    if (const ChaosFault* f =
            take(ChaosPoint::kCorruptPublishedGeneration, node_)) {
      flip_byte(path, f->flip_offset);
      die();
    }
  }

 private:
  unsigned node_ = 0;
  bool die_at_publish_ = false;
};

CheckpointChaos g_ckpt_chaos;

}  // namespace

void arm(const ChaosPlan& plan, std::string state_dir) {
  g_state.plan = plan;
  g_state.dir = std::move(state_dir);
  g_state.reach.clear();
  g_state.armed = !plan.empty();
}

void disarm() {
  g_state = State{};
}

bool armed() { return g_state.armed; }

void at_slice(unsigned node) {
  if (!g_state.armed) return;
  if (take(ChaosPoint::kHangAtSlice, node)) hang();
  if (take(ChaosPoint::kKillAtSlice, node)) die();
}

bool drop_checkpoint_announce(unsigned node) {
  return g_state.armed &&
         take(ChaosPoint::kDropCheckpointAnnounce, node) != nullptr;
}

void maybe_tear_result_frame(unsigned node, int fd, const std::uint8_t* frame,
                             std::size_t n) {
  if (!g_state.armed) return;
  if (!take(ChaosPoint::kTornResultFrame, node)) return;
  // A strict prefix — the coordinator must discard this tail at EOF.
  std::size_t torn = n / 2;
  if (torn == 0 && n > 0) torn = n - 1;
  std::size_t off = 0;
  while (off < torn) {
    const ssize_t w = ::write(fd, frame + off, torn - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(w);
  }
  die();
}

checkpoint::WriteObserver* write_observer(unsigned node) {
  if (!g_state.armed) return nullptr;
  g_ckpt_chaos.set_node(node);
  return &g_ckpt_chaos;
}

}  // namespace chaos
}  // namespace secddr::fleet
