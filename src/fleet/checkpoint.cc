#include "fleet/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/trace_codec.h"

namespace secddr::fleet::checkpoint {

namespace {

using sim::trace_codec::crc32;
using sim::trace_codec::get_u32;
using sim::trace_codec::get_u64;
using sim::trace_codec::put_u32;
using sim::trace_codec::put_u64;

}  // namespace

std::vector<std::uint8_t> encode(std::uint64_t config_hash,
                                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() +
              kBlockHeaderBytes * (payload.size() / kBlockBytes + 2) +
              kFooterTotalBytes);
  out.resize(kHeaderBytes);
  std::memcpy(out.data(), kMagic, 8);
  put_u32(out.data() + 8, kVersion);
  put_u32(out.data() + 12, 0);
  put_u64(out.data() + 16, config_hash);
  put_u32(out.data() + 24, 0);
  put_u32(out.data() + 28, crc32(out.data(), 28));

  std::uint32_t index = 0;
  for (std::size_t off = 0; off < payload.size(); off += kBlockBytes) {
    const std::size_t n = std::min(kBlockBytes, payload.size() - off);
    std::uint8_t hdr[kBlockHeaderBytes];
    put_u32(hdr, static_cast<std::uint32_t>(n));
    put_u32(hdr + 4, index++);
    put_u32(hdr + 8, crc32(payload.data() + off, n));
    out.insert(out.end(), hdr, hdr + kBlockHeaderBytes);
    out.insert(out.end(), payload.begin() + static_cast<std::ptrdiff_t>(off),
               payload.begin() + static_cast<std::ptrdiff_t>(off + n));
  }

  std::uint8_t total[kFooterTotalBytes];
  put_u64(total, payload.size());
  std::uint8_t foot[kBlockHeaderBytes];
  put_u32(foot, 0);
  put_u32(foot + 4, 0);
  put_u32(foot + 8, crc32(total, kFooterTotalBytes));
  out.insert(out.end(), foot, foot + kBlockHeaderBytes);
  out.insert(out.end(), total, total + kFooterTotalBytes);
  return out;
}

std::vector<std::uint8_t> decode(const std::uint8_t* data, std::size_t n,
                                 const std::string& path,
                                 std::uint64_t* config_hash) {
  if (n < kHeaderBytes)
    throw CheckpointFormatError(path, 0, "truncated header");
  if (std::memcmp(data, kMagic, 8) != 0)
    throw CheckpointFormatError(path, 0, "bad magic");
  if (get_u32(data + 28) != crc32(data, 28))
    throw CheckpointFormatError(path, 28, "header checksum mismatch");
  const std::uint32_t version = get_u32(data + 8);
  if (version != kVersion)
    throw CheckpointFormatError(
        path, 8, "unsupported version " + std::to_string(version));
  if (config_hash) *config_hash = get_u64(data + 16);

  std::vector<std::uint8_t> payload;
  std::size_t off = kHeaderBytes;
  std::uint32_t expect_index = 0;
  for (;;) {
    if (n - off < kBlockHeaderBytes)
      throw CheckpointFormatError(path, off, "truncated block header");
    const std::uint32_t payload_bytes = get_u32(data + off);
    if (payload_bytes == 0) break;  // footer
    if (payload_bytes > kMaxPayloadBytes)
      throw CheckpointFormatError(path, off, "oversized block");
    const std::uint32_t index = get_u32(data + off + 4);
    if (index != expect_index)
      throw CheckpointFormatError(path, off + 4, "block index mismatch");
    ++expect_index;
    const std::uint32_t payload_crc = get_u32(data + off + 8);
    if (n - off - kBlockHeaderBytes < payload_bytes)
      throw CheckpointFormatError(path, off, "truncated block payload");
    const std::uint8_t* body = data + off + kBlockHeaderBytes;
    if (crc32(body, payload_bytes) != payload_crc)
      throw CheckpointFormatError(path, off + 8, "block checksum mismatch");
    payload.insert(payload.end(), body, body + payload_bytes);
    off += kBlockHeaderBytes + payload_bytes;
  }
  // Footer: payload_bytes == 0 already consumed conceptually.
  if (get_u32(data + off + 4) != 0)
    throw CheckpointFormatError(path, off + 4, "malformed footer");
  if (n - off < kBlockHeaderBytes + kFooterTotalBytes)
    throw CheckpointFormatError(path, off, "truncated footer");
  const std::uint8_t* total_field = data + off + kBlockHeaderBytes;
  if (crc32(total_field, kFooterTotalBytes) != get_u32(data + off + 8))
    throw CheckpointFormatError(path, off + 8, "footer checksum mismatch");
  if (get_u64(total_field) != payload.size())
    throw CheckpointFormatError(path, off + kBlockHeaderBytes,
                                "footer total disagrees with blocks");
  if (off + kBlockHeaderBytes + kFooterTotalBytes != n)
    throw CheckpointFormatError(path, off + kBlockHeaderBytes +
                                          kFooterTotalBytes,
                                "trailing bytes after footer");
  return payload;
}

namespace {

/// Full write with EINTR/short-write handling.
bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// fsync of the directory containing `path`, so the rename that put the
/// file there is itself durable (a rename only lives in the directory).
bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                          : slash == 0               ? std::string("/")
                                                     : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return false;
  const bool ok = ::fsync(dfd) == 0;
  ::close(dfd);
  return ok;
}

}  // namespace

void write_file(const std::string& path, std::uint64_t config_hash,
                const std::vector<std::uint8_t>& payload,
                WriteObserver* observer) {
  const std::vector<std::uint8_t> bytes = encode(config_hash, payload);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) throw std::runtime_error(tmp + ": cannot create checkpoint");
  auto fail = [&](const std::string& what) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw std::runtime_error(what);
  };
  // Two bounded writes so the torn-tmp observation point sits between
  // real write() calls — the file genuinely holds a strict prefix there.
  const std::size_t half = bytes.size() / 2;
  if (!write_all(fd, bytes.data(), half))
    fail(tmp + ": checkpoint write failed");
  if (observer) observer->on_tmp_partial(tmp);
  if (!write_all(fd, bytes.data() + half, bytes.size() - half))
    fail(tmp + ": checkpoint write failed");
  if (observer) observer->on_tmp_written(tmp);
  // Durability, step 1: the bytes must be on disk before the rename can
  // publish them — otherwise a power cut after the rename leaves a
  // torn file under the committed name.
  if (::fsync(fd) != 0) fail(tmp + ": checkpoint fsync failed");
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error(tmp + ": checkpoint close failed");
  }
  if (observer) observer->on_before_rename(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error(path + ": checkpoint rename failed");
  }
  // Durability, step 2: the rename lives in the directory entry.
  if (!fsync_parent_dir(path))
    throw std::runtime_error(path + ": checkpoint directory fsync failed");
  if (observer) observer->on_published(path);
}

std::string generation_path(const std::string& base, std::uint64_t gen) {
  return base + "." + std::to_string(gen);
}

std::vector<GenerationFile> list_generations(const std::string& base) {
  const std::size_t slash = base.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : base.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? base : base.substr(slash + 1)) + ".";
  std::vector<GenerationFile> out;
  DIR* d = ::opendir(dir.c_str());
  if (!d) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0)
      continue;
    const std::string tail = name.substr(prefix.size());
    if (tail.find_first_not_of("0123456789") != std::string::npos)
      continue;  // .tmp residue etc.
    GenerationFile g;
    g.gen = std::strtoull(tail.c_str(), nullptr, 10);
    g.path = dir + "/" + name;
    out.push_back(std::move(g));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const GenerationFile& a, const GenerationFile& b) {
              return a.gen < b.gen;
            });
  return out;
}

std::uint64_t next_generation(const std::string& base) {
  const std::vector<GenerationFile> gens = list_generations(base);
  return gens.empty() ? 1 : gens.back().gen + 1;
}

void gc_generations(const std::string& base, unsigned keep) {
  const std::vector<GenerationFile> gens = list_generations(base);
  if (keep == 0) keep = 1;
  if (gens.size() <= keep) return;
  for (std::size_t i = 0; i + keep < gens.size(); ++i)
    std::remove(gens[i].path.c_str());
}

std::vector<std::uint8_t> read_file(const std::string& path,
                                    std::uint64_t* config_hash) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error(path + ": cannot open checkpoint");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + got);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw std::runtime_error(path + ": checkpoint read failed");
  return decode(bytes.data(), bytes.size(), path, config_hash);
}

std::vector<std::uint8_t> encode_system(const sim::System& sys) {
  serial::Sink s;
  sys.save(s);
  return encode(sys.config_hash(), s.take());
}

void decode_system(sim::System& sys, const std::uint8_t* data, std::size_t n,
                   const std::string& path) {
  std::uint64_t hash = 0;
  const std::vector<std::uint8_t> payload = decode(data, n, path, &hash);
  if (hash != sys.config_hash())
    throw CheckpointFormatError(path, 16,
                                "checkpoint was produced by a different "
                                "simulation configuration");
  serial::Source src(payload);
  try {
    sys.load(src);
  } catch (const std::runtime_error& e) {
    throw CheckpointFormatError(
        path, kHeaderBytes + (payload.size() - src.remaining()), e.what());
  }
  if (!src.done())
    throw CheckpointFormatError(path, kHeaderBytes + payload.size(),
                                "trailing bytes in system state");
}

void save_system_file(const sim::System& sys, const std::string& path) {
  serial::Sink s;
  sys.save(s);
  write_file(path, sys.config_hash(), s.take());
}

void restore_system_file(sim::System& sys, const std::string& path) {
  std::uint64_t hash = 0;
  const std::vector<std::uint8_t> payload = read_file(path, &hash);
  if (hash != sys.config_hash())
    throw CheckpointFormatError(path, 16,
                                "checkpoint was produced by a different "
                                "simulation configuration");
  serial::Source src(payload);
  try {
    sys.load(src);
  } catch (const std::runtime_error& e) {
    throw CheckpointFormatError(
        path, kHeaderBytes + (payload.size() - src.remaining()), e.what());
  }
  if (!src.done())
    throw CheckpointFormatError(path, kHeaderBytes + payload.size(),
                                "trailing bytes in system state");
}

namespace {

void save_core_stats(serial::Sink& s, const sim::CoreStats& c) {
  s.u64(c.instructions);
  s.u64(c.cycles);
  s.u64(c.loads);
  s.u64(c.stores);
  s.u64(c.load_stall_cycles);
}

sim::CoreStats load_core_stats(serial::Source& s) {
  sim::CoreStats c;
  c.instructions = s.u64();
  c.cycles = s.u64();
  c.loads = s.u64();
  c.stores = s.u64();
  c.load_stall_cycles = s.u64();
  return c;
}

void save_engine_stats(serial::Sink& s, const secmem::EngineStats& e) {
  s.u64(e.data_reads);
  s.u64(e.data_writes);
  s.u64(e.counter_fetches);
  s.u64(e.mac_line_fetches);
  s.u64(e.tree_node_fetches);
  s.u64(e.meta_writebacks);
  s.u64(e.reads_with_tree_walk);
}

secmem::EngineStats load_engine_stats(serial::Source& s) {
  secmem::EngineStats e;
  e.data_reads = s.u64();
  e.data_writes = s.u64();
  e.counter_fetches = s.u64();
  e.mac_line_fetches = s.u64();
  e.tree_node_fetches = s.u64();
  e.meta_writebacks = s.u64();
  e.reads_with_tree_walk = s.u64();
  return e;
}

void save_dram_stats(serial::Sink& s, const dram::ControllerStats& d) {
  s.u64(d.reads_enqueued);
  s.u64(d.writes_enqueued);
  s.u64(d.reads_completed);
  s.u64(d.writes_completed);
  s.u64(d.row_hits);
  s.u64(d.row_misses);
  s.u64(d.activates);
  s.u64(d.precharges);
  s.u64(d.refreshes);
  s.u64(d.write_forwards);
  s.u64(d.data_bus_busy_cycles);
  s.u64(d.total_read_latency);
}

dram::ControllerStats load_dram_stats(serial::Source& s) {
  dram::ControllerStats d;
  d.reads_enqueued = s.u64();
  d.writes_enqueued = s.u64();
  d.reads_completed = s.u64();
  d.writes_completed = s.u64();
  d.row_hits = s.u64();
  d.row_misses = s.u64();
  d.activates = s.u64();
  d.precharges = s.u64();
  d.refreshes = s.u64();
  d.write_forwards = s.u64();
  d.data_bus_busy_cycles = s.u64();
  d.total_read_latency = s.u64();
  return d;
}

void save_power_report(serial::Sink& s, const dram::PowerReport& p) {
  s.b(p.enabled);
  s.u64(p.energy.act_fj);
  s.u64(p.energy.pre_fj);
  s.u64(p.energy.rd_fj);
  s.u64(p.energy.wr_fj);
  s.u64(p.energy.ref_fj);
  s.u64(p.energy.background_fj);
  s.u64(p.counts.act);
  s.u64(p.counts.pre);
  s.u64(p.counts.rd);
  s.u64(p.counts.wr);
  s.u64(p.counts.ref);
  s.u64(p.windows);
  s.u64(p.throttled_windows);
  s.u64(p.remap_swaps);
  s.u64(p.ranks.size());
  for (const dram::RankPowerReport& rk : p.ranks) {
    s.u64(rk.energy_fj);
    s.i64(rk.temp_mc);
    s.i64(rk.peak_mc);
  }
}

dram::PowerReport load_power_report(serial::Source& s) {
  dram::PowerReport p;
  p.enabled = s.b();
  p.energy.act_fj = s.u64();
  p.energy.pre_fj = s.u64();
  p.energy.rd_fj = s.u64();
  p.energy.wr_fj = s.u64();
  p.energy.ref_fj = s.u64();
  p.energy.background_fj = s.u64();
  p.counts.act = s.u64();
  p.counts.pre = s.u64();
  p.counts.rd = s.u64();
  p.counts.wr = s.u64();
  p.counts.ref = s.u64();
  p.windows = s.u64();
  p.throttled_windows = s.u64();
  p.remap_swaps = s.u64();
  const std::size_t ranks = s.count(24);
  for (std::size_t i = 0; i < ranks; ++i) {
    dram::RankPowerReport rk;
    rk.energy_fj = s.u64();
    rk.temp_mc = s.i64();
    rk.peak_mc = s.i64();
    p.ranks.push_back(rk);
  }
  return p;
}

}  // namespace

void save_result(serial::Sink& s, const sim::RunResult& r) {
  s.u64(r.cores.size());
  for (const sim::CoreStats& c : r.cores) save_core_stats(s, c);
  s.u64(r.cycles);
  s.f64(r.total_ipc);
  s.f64(r.llc_mpki);
  s.f64(r.metadata_miss_rate);
  s.u64(r.metadata_accesses);
  s.u64(r.mem.l1_accesses);
  s.u64(r.mem.l1_misses);
  s.u64(r.mem.llc_demand_accesses);
  s.u64(r.mem.llc_demand_misses);
  s.u64(r.mem.llc_writebacks);
  s.u64(r.mem.prefetch_fills);
  s.u64(r.mem.llc_demand_misses_per_core.size());
  for (std::uint64_t v : r.mem.llc_demand_misses_per_core) s.u64(v);
  save_engine_stats(s, r.engine);
  save_dram_stats(s, r.dram);
  s.u64(r.engine_per_channel.size());
  for (const secmem::EngineStats& e : r.engine_per_channel)
    save_engine_stats(s, e);
  s.u64(r.dram_per_channel.size());
  for (const dram::ControllerStats& d : r.dram_per_channel)
    save_dram_stats(s, d);
  s.u64(r.power_per_channel.size());
  for (const dram::PowerReport& p : r.power_per_channel)
    save_power_report(s, p);
  s.b(r.hit_cycle_limit);
}

sim::RunResult load_result(serial::Source& s) {
  sim::RunResult r;
  const std::size_t cores = s.count(40);
  for (std::size_t i = 0; i < cores; ++i)
    r.cores.push_back(load_core_stats(s));
  r.cycles = s.u64();
  r.total_ipc = s.f64();
  r.llc_mpki = s.f64();
  r.metadata_miss_rate = s.f64();
  r.metadata_accesses = s.u64();
  r.mem.l1_accesses = s.u64();
  r.mem.l1_misses = s.u64();
  r.mem.llc_demand_accesses = s.u64();
  r.mem.llc_demand_misses = s.u64();
  r.mem.llc_writebacks = s.u64();
  r.mem.prefetch_fills = s.u64();
  const std::size_t per_core = s.count(8);
  for (std::size_t i = 0; i < per_core; ++i)
    r.mem.llc_demand_misses_per_core.push_back(s.u64());
  r.engine = load_engine_stats(s);
  r.dram = load_dram_stats(s);
  const std::size_t engines = s.count(56);
  for (std::size_t i = 0; i < engines; ++i)
    r.engine_per_channel.push_back(load_engine_stats(s));
  const std::size_t drams = s.count(96);
  for (std::size_t i = 0; i < drams; ++i)
    r.dram_per_channel.push_back(load_dram_stats(s));
  const std::size_t powers = s.count(121);
  for (std::size_t i = 0; i < powers; ++i)
    r.power_per_channel.push_back(load_power_report(s));
  r.hit_cycle_limit = s.b();
  return r;
}

std::vector<std::uint8_t> encode_result(const sim::RunResult& r) {
  serial::Sink s;
  save_result(s, r);
  return s.take();
}

}  // namespace secddr::fleet::checkpoint
