// AES-engine area/power model reproducing Table II (paper §V-B).
//
// Methodology (following the paper, which follows [14], [58]): the 45nm
// composite-field AES engine of Mathew et al. [33] delivers 53Gbps at
// 2.1GHz; power scales linearly with frequency (DRAM core: 500MHz) and
// quadratically with voltage (1.2V DDR4 / 1.1V DDR5). The number of
// engines per ECC chip is set by the chip's transfer rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace secddr::analysis {

/// One row of Table II (plus the DDR5 discussion row).
struct PowerRow {
  std::string config;        ///< e.g. "x4 4Gb DDR4-3200"
  unsigned aes_units = 0;    ///< engines per ECC chip
  double chip_rate_gbps = 0; ///< device transfer rate to cover
  double aes_power_mw = 0;   ///< total engine power per ECC chip
  double dram_chip_power_mw = 0;
  double rank_power_mw = 0;  ///< half of the dual-rank DIMM's power
  unsigned ecc_chips_per_rank = 0;
  double overhead_per_rank = 0;  ///< engines / rank power
};

struct AesEngineSpec {
  double throughput_gbps = 53.0;  ///< at reference frequency [33]
  double ref_ghz = 2.1;
  double power_mw_at_ref = 148.68;  ///< per engine at 2.1GHz, 1.2V
  double ref_volt = 1.2;
};

class AesPowerModel {
 public:
  explicit AesPowerModel(const AesEngineSpec& spec = {});

  /// Engines needed to sustain `chip_rate_gbps` at `dram_core_ghz`.
  unsigned engines_needed(double chip_rate_gbps, double dram_core_ghz) const;

  /// Per-engine power at the given operating point.
  double engine_power_mw(double dram_core_ghz, double volt) const;

  /// Builds one table row.
  PowerRow row(const std::string& config, double bits_per_pin,
               double data_rate_mtps, double dram_core_ghz, double volt,
               double dram_chip_power_mw, double dimm_power_mw,
               unsigned ecc_chips_per_rank) const;

  /// The three configurations of Table II / §V-B.
  std::vector<PowerRow> table2() const;

  /// Attestation-logic area/power (EC multiplier + SHA-256, §V-B).
  struct AttestationLogic {
    double multiplier_mm2 = 0.0209;
    double sha_mm2 = 0.0625;
    double multiplier_mw_at_500mhz = 14.2;
    double sha_mw_at_500mhz = 21.0;
  };
  static AttestationLogic attestation_logic() { return {}; }

  /// Total SecDDR die-area estimate (paper: < 1.5mm^2 at 45nm).
  double total_area_mm2(unsigned aes_units) const;

 private:
  AesEngineSpec spec_;
};

}  // namespace secddr::analysis
