#include "analysis/security.h"

#include <cmath>

namespace secddr::analysis {
namespace {
constexpr double kSecondsPerDay = 86400.0;
constexpr double kDaysPerYear = 365.25;
}  // namespace

EwcrcSecurityModel::EwcrcSecurityModel(const EwcrcSecurityParams& params)
    : params_(params) {}

double EwcrcSecurityModel::error_interval_days() const {
  const double bits_per_second = params_.signals * params_.data_rate_mtps *
                                 1e6 * params_.signal_rate_fraction;
  const double errors_per_second = bits_per_second * params_.ber;
  return 1.0 / errors_per_second / kSecondsPerDay;
}

double EwcrcSecurityModel::bruteforce_attempts(double success_prob) const {
  const double p = std::pow(2.0, -static_cast<double>(params_.crc_bits));
  return std::log1p(-success_prob) / std::log1p(-p);
}

double EwcrcSecurityModel::bruteforce_years(double success_prob) const {
  return bruteforce_attempts(success_prob) * error_interval_days() /
         kDaysPerYear;
}

double EwcrcSecurityModel::parallel_attack_years(
    double success_prob, unsigned nodes, unsigned channels_per_node) const {
  return bruteforce_years(success_prob) /
         (static_cast<double>(nodes) * channels_per_node);
}

EwcrcSecurityModel EwcrcSecurityModel::with_ber(double ber) const {
  EwcrcSecurityParams p = params_;
  p.ber = ber;
  return EwcrcSecurityModel(p);
}

double counter_overflow_years(double transactions_per_second) {
  return std::pow(2.0, 64) / transactions_per_second / kSecondsPerDay /
         kDaysPerYear;
}

double substitution_counter_match_probability() {
  return std::pow(2.0, -64);
}

}  // namespace secddr::analysis
