// Compact transient thermal model: one RC node per DRAM rank.
//
// Physics: a lumped node with thermal capacitance C coupled to ambient
// through resistance R. Injecting energy E over a window of length dt
// (piecewise-constant power P = E/dt) and decaying toward ambient gives
// the exact discrete solution
//
//   T[n+1] = T_amb + alpha * (T[n] - T_amb) + P * R * (1 - alpha),
//   alpha  = exp(-dt / (R * C))
//
// which agrees with the continuous exponential solution at every window
// boundary. The recurrence is evaluated in fixed point so temperature
// trajectories are bit-identical across platforms, loop modes, and
// checkpoint restores:
//
//   temperature      Q16 (degrees C * 2^16, int64)
//   alpha            Q30, via an integer exp() (range-reduce by halving,
//                    6-term alternating Taylor series in Q62, square back)
//   injection gain   Q64 (degrees C per femtojoule):
//                    gain = R * (1 - alpha) / dt   [R in mK/W, dt in fs]
//
// No floating point touches the simulation path; doubles appear only in
// tests, which check the fixed-point step against the closed form.
#pragma once

#include <cstdint>

namespace secddr::analysis {

/// RC parameters for one rank node. Defaults model a DRAM device on a
/// DIMM: ~4 K/W junction-to-ambient, ~0.1 J/K lumped capacitance
/// (seconds-scale time constant), 45 C ambient inside the chassis.
struct ThermalParams {
  std::uint32_t r_mk_per_w = 4000;         ///< resistance, milli-Kelvin per W
  std::uint64_t c_nj_per_k = 100'000'000;  ///< capacitance, nanojoule per K
  std::int64_t ambient_mc = 45'000;        ///< ambient, milli-degrees C
};

/// One rank's transient temperature state. The step constants (alpha,
/// gain) are derived from config at construction and never serialized;
/// only the mutable state (current + peak temperature) round-trips.
class ThermalNode {
 public:
  ThermalNode() = default;

  /// `window_cycles` memory-clock cycles per accounting window,
  /// `period_fs` femtoseconds per memory-clock cycle.
  ThermalNode(const ThermalParams& params, std::uint64_t window_cycles,
              std::uint64_t period_fs);

  /// Advance one window: decay toward ambient, inject `energy_fj`.
  void apply_window(std::uint64_t energy_fj);

  std::int64_t temp_q16() const { return t_q16_; }
  std::int64_t peak_q16() const { return peak_q16_; }
  std::int64_t temp_mc() const { return q16_to_mc(t_q16_); }
  std::int64_t peak_mc() const { return q16_to_mc(peak_q16_); }

  void reset_peak() { peak_q16_ = t_q16_; }

  /// Restore serialized mutable state (derived constants come from the
  /// config the owner reconstructs the node with).
  void set_state(std::int64_t t_q16, std::int64_t peak_q16) {
    t_q16_ = t_q16;
    peak_q16_ = peak_q16;
  }

  std::uint64_t alpha_q30() const { return alpha_q30_; }
  std::uint64_t gain_q64() const { return gain_q64_; }

  static std::int64_t mc_to_q16(std::int64_t mc) { return mc * 65536 / 1000; }
  static std::int64_t q16_to_mc(std::int64_t q16) { return q16 * 1000 / 65536; }

  /// Integer exp(-x): x in Q32 (unsigned), result in Q30.
  static std::uint64_t exp_neg_q32_to_q30(std::uint64_t x_q32);

 private:
  std::uint64_t alpha_q30_ = 1ull << 30;  ///< decay per window
  std::uint64_t gain_q64_ = 0;            ///< degrees C per fJ injected
  std::int64_t amb_q16_ = 45 * 65536;
  std::int64_t t_q16_ = 45 * 65536;
  std::int64_t peak_q16_ = 45 * 65536;
};

}  // namespace secddr::analysis
