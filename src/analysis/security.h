// Quantitative security analysis of the encrypted eWCRC (paper §III-B).
//
// The eWCRC is a 16-bit non-cryptographic code, but because it is
// encrypted with an address-bound pad, the attacker can only brute-force:
// each attempt is a corrupted CCCA transaction that fails the check with
// probability 1 - 2^-16, and failed attempts look like channel errors.
// Natural CCCA errors are rare (JEDEC worst-case BER 1e-16), so an
// attacker who must stay under the natural error rate to avoid detection
// needs millennia.
#pragma once

#include <cstdint>

namespace secddr::analysis {

struct EwcrcSecurityParams {
  double ber = 1e-16;          ///< bit error rate on CCCA signals
  unsigned signals = 26;       ///< CCCA + data signals, x8 device
  double data_rate_mtps = 3200.0;
  /// Effective per-signal toggle rate as a fraction of the data rate.
  /// 1/8 reproduces the paper's 11.13-day error interval at BER 1e-16
  /// (the CCCA bus runs at half the data rate and the paper's arithmetic
  /// further de-rates by the burst length).
  double signal_rate_fraction = 0.125;
  unsigned crc_bits = 16;
};

class EwcrcSecurityModel {
 public:
  explicit EwcrcSecurityModel(const EwcrcSecurityParams& params = {});

  /// Mean time between natural CCCA errors on one channel, in days.
  double error_interval_days() const;

  /// Attempts to reach `success_prob` of one forged eWCRC passing.
  double bruteforce_attempts(double success_prob) const;

  /// Years to perform those attempts while hiding under the natural error
  /// rate (one attempt per expected natural error).
  double bruteforce_years(double success_prob) const;

  /// Same attack parallelized over `nodes * channels_per_node` channels.
  double parallel_attack_years(double success_prob, unsigned nodes,
                               unsigned channels_per_node) const;

  /// Copy with a different BER (the paper quotes 1e-16, 1e-21, 1e-22).
  EwcrcSecurityModel with_ber(double ber) const;

  const EwcrcSecurityParams& params() const { return params_; }

 private:
  EwcrcSecurityParams params_;
};

/// Transaction-counter lifetime (§III-C): years until a 64-bit counter
/// overflows at `transactions_per_second` per rank.
double counter_overflow_years(double transactions_per_second);

/// DIMM-substitution detection: probability that a snapshot counter
/// happens to match the live one (2^-64 for random counters).
double substitution_counter_match_probability();

}  // namespace secddr::analysis
