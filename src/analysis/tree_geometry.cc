#include "analysis/tree_geometry.h"

#include "common/bitops.h"
#include "common/types.h"

namespace secddr::analysis {

std::uint64_t TreeGeometry::leaf_lines() const {
  const std::uint64_t data_lines = data_bytes / kLineSize;
  return hash_tree_over_macs ? ceil_div(data_lines, 8)
                             : ceil_div(data_lines, counters_per_line);
}

std::vector<std::uint64_t> TreeGeometry::levels() const {
  std::vector<std::uint64_t> out;
  std::uint64_t count = leaf_lines();
  for (;;) {
    count = ceil_div(count, arity);
    if (count <= 1) break;  // single node = on-chip root
    out.push_back(count);
  }
  return out;
}

std::uint64_t TreeGeometry::metadata_bytes() const {
  std::uint64_t total = leaf_lines() * kLineSize;
  for (const std::uint64_t n : levels()) total += n * kLineSize;
  return total;
}

std::uint64_t TreeGeometry::leaf_reach_bytes() const {
  return hash_tree_over_macs
             ? 8ull * kLineSize
             : static_cast<std::uint64_t>(counters_per_line) * kLineSize;
}

}  // namespace secddr::analysis
