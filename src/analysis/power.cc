#include "analysis/power.h"

#include <cmath>

namespace secddr::analysis {

AesPowerModel::AesPowerModel(const AesEngineSpec& spec) : spec_(spec) {}

unsigned AesPowerModel::engines_needed(double chip_rate_gbps,
                                       double dram_core_ghz) const {
  const double scaled = spec_.throughput_gbps * dram_core_ghz / spec_.ref_ghz;
  return static_cast<unsigned>(std::ceil(chip_rate_gbps / scaled));
}

double AesPowerModel::engine_power_mw(double dram_core_ghz,
                                      double volt) const {
  const double freq_scale = dram_core_ghz / spec_.ref_ghz;
  const double volt_scale = (volt * volt) / (spec_.ref_volt * spec_.ref_volt);
  return spec_.power_mw_at_ref * freq_scale * volt_scale;
}

PowerRow AesPowerModel::row(const std::string& config, double bits_per_pin,
                            double data_rate_mtps, double dram_core_ghz,
                            double volt, double dram_chip_power_mw,
                            double dimm_power_mw,
                            unsigned ecc_chips_per_rank) const {
  PowerRow r;
  r.config = config;
  r.chip_rate_gbps = bits_per_pin * data_rate_mtps / 1000.0;
  r.aes_units = engines_needed(r.chip_rate_gbps, dram_core_ghz);
  r.aes_power_mw = r.aes_units * engine_power_mw(dram_core_ghz, volt);
  r.dram_chip_power_mw = dram_chip_power_mw;
  r.rank_power_mw = dimm_power_mw / 2.0;  // dual-rank DIMM
  r.ecc_chips_per_rank = ecc_chips_per_rank;
  r.overhead_per_rank =
      (r.aes_power_mw * ecc_chips_per_rank) / r.rank_power_mw;
  return r;
}

std::vector<PowerRow> AesPowerModel::table2() const {
  // Table II: DDR4-3200 at 500MHz DRAM core, 1.2V. The x4 build uses
  // 2-of-18 ECC chips per rank, the x8 build 1-of-9. DIMM powers follow
  // the Micron power calculator figures the paper cites [38].
  std::vector<PowerRow> rows;
  rows.push_back(row("x4 4Gb DDR4-3200", 4, 3200, 0.5, 1.2, 290.0, 13230.0, 2));
  rows.push_back(row("x8 8Gb DDR4-3200", 8, 3200, 0.5, 1.2, 351.9, 9120.0, 1));
  // §V-B DDR5 discussion: x4 DDR5-8800 at 1.1V; DDR5 DIMMs draw ~13% less
  // than the DDR4-3200 x4 build [47].
  rows.push_back(row("x4 DDR5-8800", 4, 8800, 0.5, 1.1, 290.0,
                     13230.0 * 0.87, 2));
  return rows;
}

double AesPowerModel::total_area_mm2(unsigned aes_units) const {
  const auto att = attestation_logic();
  // 0.15mm^2 per AES engine [33] + attestation units, 45nm.
  return 0.15 * aes_units + att.multiplier_mm2 + att.sha_mm2;
}

}  // namespace secddr::analysis
