#include "analysis/thermal.h"

namespace secddr::analysis {

namespace {
using u128 = unsigned __int128;
}  // namespace

std::uint64_t ThermalNode::exp_neg_q32_to_q30(std::uint64_t x_q32) {
  if (x_q32 == 0) return 1ull << 30;
  // exp(-45) < 2^-64: indistinguishable from zero at Q30.
  if (x_q32 >= (45ull << 32)) return 0;
  // Range-reduce by halving until the series argument y < 1/8, where the
  // 6-term alternating Taylor tail is < y^7/7! < 2^-33 (below Q62 noise
  // after the squarings below).
  unsigned halvings = 0;
  while ((x_q32 >> halvings) >= (1ull << 29)) ++halvings;
  const std::uint64_t y_q32 = x_q32 >> halvings;
  // exp(-y) = 1 - y + y^2/2 - y^3/6 + ... accumulated in Q62.
  std::uint64_t term_q62 = y_q32 << 30;
  std::uint64_t acc_q62 = (1ull << 62) - term_q62;
  for (unsigned k = 2; k <= 6; ++k) {
    term_q62 = static_cast<std::uint64_t>((u128(term_q62) * y_q32) >> 32) / k;
    if (term_q62 == 0) break;
    if ((k & 1u) == 0) {
      acc_q62 += term_q62;
    } else {
      acc_q62 -= term_q62;
    }
  }
  // Undo the halvings: exp(-x) = exp(-x/2)^2. acc stays <= 2^62 so the
  // 128-bit square never overflows.
  for (unsigned i = 0; i < halvings; ++i) {
    acc_q62 = static_cast<std::uint64_t>((u128(acc_q62) * acc_q62) >> 62);
  }
  return acc_q62 >> 32;
}

ThermalNode::ThermalNode(const ThermalParams& params,
                         std::uint64_t window_cycles,
                         std::uint64_t period_fs) {
  amb_q16_ = mc_to_q16(params.ambient_mc);
  t_q16_ = amb_q16_;
  peak_q16_ = amb_q16_;
  const u128 dt_fs = u128(window_cycles) * period_fs;
  const u128 rc_fs = u128(params.r_mk_per_w) * params.c_nj_per_k * 1000;
  if (dt_fs == 0 || rc_fs == 0) {
    // Degenerate config: inert node (alpha = 1, gain = 0).
    alpha_q30_ = 1ull << 30;
    gain_q64_ = 0;
    return;
  }
  u128 x_q32 = (dt_fs << 32) / rc_fs;
  if (x_q32 > (u128(45) << 32)) x_q32 = u128(45) << 32;
  alpha_q30_ = exp_neg_q32_to_q30(static_cast<std::uint64_t>(x_q32));
  std::uint64_t one_minus_q30 = (1ull << 30) - alpha_q30_;
  // Clamp so a nonzero window always injects: Q30 rounding could
  // otherwise make (1 - alpha) zero for very short windows, losing the
  // monotonicity property (more energy => never cooler).
  if (one_minus_q30 == 0) one_minus_q30 = 1;
  // gain [C/fJ] = (R/1000) * (1-alpha) / (dt_fs * 1e-15) * 1e-15 J/fJ
  //             = R * (1-alpha) / (1000 * dt_fs), scaled to Q64:
  // r_mk * one_minus <= 2^32 * 2^30 = 2^62; << 34 fits in 128 bits.
  gain_q64_ = static_cast<std::uint64_t>(
      ((u128(params.r_mk_per_w) * one_minus_q30) << 34) / (u128(1000) * dt_fs));
}

void ThermalNode::apply_window(std::uint64_t energy_fj) {
  // Invariant: t >= ambient always (injection >= 0, decay is a pure
  // contraction toward ambient), so the delta stays unsigned.
  const std::uint64_t delta_q16 = static_cast<std::uint64_t>(t_q16_ - amb_q16_);
  const std::uint64_t decayed_q16 =
      static_cast<std::uint64_t>((u128(delta_q16) * alpha_q30_) >> 30);
  // energy * gain is Q64; >> 48 lands on Q16.
  const std::uint64_t inject_q16 =
      static_cast<std::uint64_t>((u128(energy_fj) * gain_q64_) >> 48);
  t_q16_ = amb_q16_ + static_cast<std::int64_t>(decayed_q16 + inject_q16);
  if (t_q16_ > peak_q16_) peak_q16_ = t_q16_;
}

}  // namespace secddr::analysis
