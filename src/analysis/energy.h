// Dynamic DRAM energy model: maps the command counts the controller
// already tracks (ACT/PRE/RD/WR/REF) plus standby time onto energy, per
// accounting window and per rank.
//
// All energies are integer femtojoules so window totals are exact sums —
// bit-identical across platforms, loop modes, and thread counts, and the
// conservation property (total == Σ count x per-op + cycles x background)
// is an exact integer identity the power test battery asserts.
//
// The defaults approximate a dual-rank DDR4-3200 module from Micron
// IDD-class figures (the same calculator family the paper cites for
// Table II [38]): an ACT/PRE pair ~3nJ rank-wide, a 64B column burst
// ~5nJ including IO, a per-rank REF ~850nJ over tRFC, and ~0.5W of
// standby/background power per rank (0.3nJ per 0.625ns memory cycle).
#pragma once

#include <cstdint>

namespace secddr::analysis {

/// Per-operation energies in femtojoules at rank granularity.
struct DramEnergyParams {
  std::uint64_t act_fj = 1'700'000;    ///< ACTIVATE (row open + restore)
  std::uint64_t pre_fj = 1'300'000;    ///< PRECHARGE
  std::uint64_t rd_fj = 4'700'000;     ///< READ burst incl. IO
  std::uint64_t wr_fj = 5'200'000;     ///< WRITE burst incl. IO + termination
  std::uint64_t ref_fj = 850'000'000;  ///< per-rank REFRESH (tRFC)
  /// Standby + leakage per rank per memory-clock cycle.
  std::uint64_t background_fj_per_cycle = 300'000;
};

/// DRAM commands issued to one rank during one accounting window.
struct CommandCounts {
  std::uint64_t act = 0;
  std::uint64_t pre = 0;
  std::uint64_t rd = 0;
  std::uint64_t wr = 0;
  std::uint64_t ref = 0;

  CommandCounts& operator+=(const CommandCounts& o) {
    act += o.act;
    pre += o.pre;
    rd += o.rd;
    wr += o.wr;
    ref += o.ref;
    return *this;
  }
};

/// Window energy split by source (fJ).
struct EnergyBreakdown {
  std::uint64_t act_fj = 0;
  std::uint64_t pre_fj = 0;
  std::uint64_t rd_fj = 0;
  std::uint64_t wr_fj = 0;
  std::uint64_t ref_fj = 0;
  std::uint64_t background_fj = 0;

  std::uint64_t total_fj() const {
    return act_fj + pre_fj + rd_fj + wr_fj + ref_fj + background_fj;
  }
  std::uint64_t dynamic_fj() const { return total_fj() - background_fj; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o) {
    act_fj += o.act_fj;
    pre_fj += o.pre_fj;
    rd_fj += o.rd_fj;
    wr_fj += o.wr_fj;
    ref_fj += o.ref_fj;
    background_fj += o.background_fj;
    return *this;
  }
};

/// Pure integer counts -> energy mapping (no state).
class EnergyModel {
 public:
  explicit EnergyModel(const DramEnergyParams& params = {})
      : params_(params) {}

  /// Energy one rank consumed over a window of `cycles` memory-clock
  /// cycles in which it received `counts` commands.
  EnergyBreakdown window_energy(const CommandCounts& counts,
                                std::uint64_t cycles) const;

  const DramEnergyParams& params() const { return params_; }

 private:
  DramEnergyParams params_;
};

}  // namespace secddr::analysis
