#include "analysis/energy.h"

namespace secddr::analysis {

EnergyBreakdown EnergyModel::window_energy(const CommandCounts& counts,
                                           std::uint64_t cycles) const {
  EnergyBreakdown e;
  e.act_fj = counts.act * params_.act_fj;
  e.pre_fj = counts.pre * params_.pre_fj;
  e.rd_fj = counts.rd * params_.rd_fj;
  e.wr_fj = counts.wr * params_.wr_fj;
  e.ref_fj = counts.ref * params_.ref_fj;
  e.background_fj = cycles * params_.background_fj_per_cycle;
  return e;
}

}  // namespace secddr::analysis
