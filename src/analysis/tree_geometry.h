// Integrity-tree geometry calculator.
//
// Answers the scalability questions of §II-D / Fig. 8 analytically: for a
// protected capacity, counter packing, and arity, how many levels must a
// miss walk, and how much metadata exists per level. Cross-checked in
// tests against secmem::MetadataLayout.
#pragma once

#include <cstdint>
#include <vector>

namespace secddr::analysis {

struct TreeGeometry {
  std::uint64_t data_bytes = 0;
  unsigned counters_per_line = 64;
  unsigned arity = 64;
  bool hash_tree_over_macs = false;  ///< leaves are MAC lines (8 MACs/line)

  std::uint64_t leaf_lines() const;
  /// Nodes per stored level, bottom-up (excludes the on-chip root).
  std::vector<std::uint64_t> levels() const;
  /// Stored levels a worst-case (cold) verification walk touches.
  unsigned walk_depth() const { return static_cast<unsigned>(levels().size()); }
  /// Total metadata bytes (leaves + stored levels).
  std::uint64_t metadata_bytes() const;
  /// Data bytes covered by one 64B leaf line (the "reach" of a cached
  /// counter line).
  std::uint64_t leaf_reach_bytes() const;
};

}  // namespace secddr::analysis
