#include "fuzz/mutate.h"

#include "fuzz/executor.h"

namespace secddr::fuzz {

namespace {

/// Addresses are drawn from twice the functional capacity so the
/// executor's fold-into-range mapping is itself exercised.
std::uint64_t address_space() { return 2 * Executor::functional_capacity(); }

}  // namespace

sim::TraceRecord Mutator::random_op() {
  sim::TraceRecord r;
  r.gap = rng_.next_below(kMaxGap + 1);
  r.is_write = rng_.chance(0.5);
  r.addr = rng_.next_below(address_space());
  return r;
}

FaultOp Mutator::random_fault() {
  FaultOp op;
  op.cls = static_cast<FaultClass>(rng_.next_below(kFaultClassCount));
  // Low trigger counts hit short traces; the geometric tail still probes
  // deep into the probe sweep.
  op.trigger = static_cast<std::uint32_t>(rng_.next_geometric(4.0));
  op.bit = static_cast<std::uint32_t>(rng_.next_below(512));
  op.aux = static_cast<std::uint32_t>(rng_.next_below(64));
  return op;
}

void Mutator::mutate_ops(std::vector<sim::TraceRecord>* ops) {
  if (ops->empty()) {
    ops->push_back(random_op());
    return;
  }
  const std::size_t i = rng_.next_below(ops->size());
  switch (rng_.next_below(6)) {
    case 0:  // flip direction
      (*ops)[i].is_write = !(*ops)[i].is_write;
      break;
    case 1:  // re-address
      (*ops)[i].addr = rng_.next_below(address_space());
      break;
    case 2:  // duplicate
      if (ops->size() < kMaxOps) ops->insert(ops->begin() + i, (*ops)[i]);
      break;
    case 3:  // delete
      ops->erase(ops->begin() + i);
      break;
    case 4:  // swap with a neighbor
      if (ops->size() > 1) {
        const std::size_t j = (i + 1) % ops->size();
        std::swap((*ops)[i], (*ops)[j]);
      }
      break;
    case 5:  // retime / append
      if (rng_.chance(0.5))
        (*ops)[i].gap = rng_.next_below(kMaxGap + 1);
      else if (ops->size() < kMaxOps)
        ops->push_back(random_op());
      break;
  }
}

void Mutator::mutate_plan(FaultPlan* plan) {
  if (plan->empty()) {
    plan->push_back(random_fault());
    return;
  }
  const std::size_t i = rng_.next_below(plan->size());
  switch (rng_.next_below(4)) {
    case 0:  // add
      if (plan->size() < kMaxPlanOps) plan->push_back(random_fault());
      break;
    case 1:  // delete
      plan->erase(plan->begin() + i);
      break;
    case 2:  // retarget the trigger
      (*plan)[i].trigger =
          static_cast<std::uint32_t>(rng_.next_geometric(4.0));
      break;
    case 3:  // retarget bit/aux
      (*plan)[i].bit = static_cast<std::uint32_t>(rng_.next_below(512));
      (*plan)[i].aux = static_cast<std::uint32_t>(rng_.next_below(64));
      break;
  }
}

void Mutator::mutate(FuzzInput* in) {
  const unsigned n = 1 + static_cast<unsigned>(rng_.next_below(4));
  for (unsigned k = 0; k < n; ++k) {
    switch (rng_.next_below(8)) {
      case 0:  // hop profile (rare relative to the others)
        in->profile = static_cast<unsigned>(rng_.next_below(kProfileCount));
        break;
      case 1:
      case 2:
      case 3:
        mutate_plan(&in->plan);
        break;
      default:
        mutate_ops(&in->ops);
        break;
    }
  }
}

FuzzInput Mutator::random_input() {
  FuzzInput in;
  in.profile = static_cast<unsigned>(rng_.next_below(kProfileCount));
  const std::size_t n = 2 + rng_.next_below(10);
  for (std::size_t i = 0; i < n; ++i) in.ops.push_back(random_op());
  in.plan.push_back(random_fault());
  return in;
}

std::vector<FuzzInput> seed_corpus() {
  std::vector<FuzzInput> corpus;
  // A small fixed victim trace: two lines in different rows (so ACTIVATEs
  // flow), written then read back, with a rewrite in between — enough
  // traffic for every trigger kind to have events to count.
  const auto base_ops = [] {
    std::vector<sim::TraceRecord> ops;
    const Addr a = 0x0000, b = 0x4000;  // distinct rows in the tiny geometry
    ops.push_back({0, true, a});
    ops.push_back({0, true, b});
    ops.push_back({0, false, a});
    ops.push_back({0, true, a});
    ops.push_back({0, false, b});
    ops.push_back({0, false, a});
    return ops;
  };
  // One classic single-fault experiment per class against full SecDDR.
  for (unsigned c = 0; c < kFaultClassCount; ++c) {
    FuzzInput in;
    in.profile = 0;
    in.ops = base_ops();
    in.plan.push_back({static_cast<FaultClass>(c), 1, 3, 0});
    corpus.push_back(std::move(in));
  }
  // Weakened-profile probes: each accounted escape class against the
  // profile that accounts for it (the paper's negative results).
  for (unsigned p = 0; p < kProfileCount; ++p) {
    for (unsigned c = 0; c < kFaultClassCount; ++c) {
      if (!accounted_escape(p, static_cast<FaultClass>(c))) continue;
      FuzzInput in;
      in.profile = p;
      in.ops = base_ops();
      in.plan.push_back({static_cast<FaultClass>(c), 1, 0, 0});
      corpus.push_back(std::move(in));
    }
  }
  // Every remaining profile gets one bit-flip probe so each deployment's
  // master session is exercised from trial zero.
  for (unsigned p = 1; p < kProfileCount; ++p) {
    FuzzInput in;
    in.profile = p;
    in.ops = base_ops();
    in.plan.push_back({FaultClass::kFlipReadData, 1, 17, 0});
    corpus.push_back(std::move(in));
  }
  return corpus;
}

}  // namespace secddr::fuzz
