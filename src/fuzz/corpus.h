// Corpus: coverage-distinct inputs + on-disk input format + minimizer.
//
// An input earns a corpus slot when its execution produced a coverage
// signature no earlier input produced (classic coverage-guided corpus
// growth, at signature granularity).
//
// On disk an input is a pair of sidecar files:
//   <name>.fplan   text: profile + fault plan (fuzz.h serialize_plan)
//   <name>.strace  binary trace (PR 5 codec): the victim ops
// tests/regress/ holds minimized escapes in exactly this format, and the
// campaign's SECDDR_FUZZ_SAVE_DIR writes new escapes the same way.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "fuzz/executor.h"
#include "fuzz/fuzz.h"

namespace secddr::fuzz {

class Corpus {
 public:
  /// Adds `in` when `signature` is new. Returns true on insertion.
  bool add_if_new(const FuzzInput& in, std::uint64_t signature);

  std::size_t size() const { return inputs_.size(); }
  std::size_t coverage() const { return signatures_.size(); }
  const FuzzInput& operator[](std::size_t i) const { return inputs_[i]; }
  bool seen(std::uint64_t signature) const {
    return signatures_.count(signature) != 0;
  }

 private:
  std::vector<FuzzInput> inputs_;
  std::unordered_set<std::uint64_t> signatures_;
};

/// Writes `in` as `<stem>.fplan` + `<stem>.strace`. Returns false (and
/// fills `err`) on I/O failure.
bool save_input(const FuzzInput& in, const std::string& stem,
                std::string* err = nullptr);

/// Loads an input saved by save_input. A missing .strace is an error —
/// a plan without its victim trace is not replayable.
bool load_input(const std::string& stem, FuzzInput* out,
                std::string* err = nullptr);

/// Greedy one-pass-to-fixpoint minimizer: repeatedly tries dropping one
/// plan op or one trace record, keeping the drop whenever `predicate`
/// still holds (typically "still an escape" / "still this verdict").
/// Deterministic; the checked-in regression traces are its output.
template <typename Pred>
FuzzInput minimize(FuzzInput in, Pred&& predicate) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < in.plan.size();) {
      FuzzInput trial = in;
      trial.plan.erase(trial.plan.begin() + i);
      if (predicate(trial)) {
        in = std::move(trial);
        shrunk = true;
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < in.ops.size();) {
      FuzzInput trial = in;
      trial.ops.erase(trial.ops.begin() + i);
      if (predicate(trial)) {
        in = std::move(trial);
        shrunk = true;
      } else {
        ++i;
      }
    }
  }
  return in;
}

}  // namespace secddr::fuzz
