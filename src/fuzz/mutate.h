// Mutation engine: perturbs FuzzInputs.
//
// Two mutation surfaces, mirroring the tentpole's two attack substrates:
//
//  * the victim trace (`ops`) — recorded-trace mutations: flip a record's
//    direction, re-address it within the fuzz geometry, duplicate /
//    delete / swap records, append fresh ones, stretch or shrink gaps;
//  * the fault plan — add / delete / retarget count-triggered FaultOps
//    drawn from the full threat-model vocabulary (fuzz.h).
//
// All randomness flows from one Xoshiro256 stream, so a campaign seed
// reproduces every mutation bit-for-bit (the printed-seed guarantee).
#pragma once

#include <vector>

#include "common/random.h"
#include "fuzz/fuzz.h"

namespace secddr::fuzz {

/// Bounds keeping every input cheap to execute (sweep-runner throughput
/// comes from small inputs x many executions, not big inputs).
inline constexpr std::size_t kMaxOps = 96;
inline constexpr std::size_t kMaxPlanOps = 8;
inline constexpr std::uint64_t kMaxGap = 200;

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : rng_(seed) {}

  /// Applies 1..4 random mutations to `in` (at least one always lands).
  void mutate(FuzzInput* in);

  /// A fresh small random input: a handful of ops, one random fault.
  FuzzInput random_input();

  Xoshiro256& rng() { return rng_; }

 private:
  void mutate_ops(std::vector<sim::TraceRecord>* ops);
  void mutate_plan(FaultPlan* plan);
  sim::TraceRecord random_op();
  FaultOp random_fault();

  Xoshiro256 rng_;
};

/// The seed corpus: one classic single-fault experiment per fault class
/// (profile 0), plus the weakened-profile probes — every accounted
/// escape class against its profile. Gives the campaign immediate
/// coverage of each detection mechanism before mutation takes over.
std::vector<FuzzInput> seed_corpus();

}  // namespace secddr::fuzz
