// Coverage-guided adversarial trace fuzzer: shared vocabulary.
//
// A FuzzInput is one adversarial experiment against a live SecDDR
// session: a memory-access trace (the victim's behavior, in the same
// TraceRecord form the recorded-trace subsystem uses) plus a FaultPlan —
// a list of count-triggered fault injections drawn from the paper's
// threat model (§II-A): wire bit flips on CCCA/data/MAC lanes, dropped /
// replayed / spliced / converted commands, address redirection, forged
// or masked ALERT_n, forged write injection, on-DIMM replay, and
// Rowhammer-style neighbor-row disturbance.
//
// The executor (executor.h) runs an input against a snapshot-restored
// session and classifies the outcome with a strict oracle: every
// injected corruption must be *detected* (MAC / eWCRC / counter check),
// *corrected* (on-device SEC-DED), or crisply *accounted for* as outside
// the threat model of the profile under test; a read that verifies OK
// but returns data the controller never wrote is an *escape*. The
// campaign driver (campaign.h) mutates inputs (mutate.h), keeps a corpus
// of coverage-distinct ones (corpus.h), and pins every escape ever found
// as a minimized regression trace under tests/regress/.
//
// See README.md "Adversarial campaigns" for the mutation-class ->
// detection-mechanism table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dimm.h"
#include "core/session.h"
#include "sim/trace.h"

namespace secddr::fuzz {

/// One mutation class of the fault-injection shim. Count-based triggers
/// (the N-th event of the class's kind) keep every class meaningful even
/// under CCA obfuscation, where field *values* on the bus are pads.
enum class FaultClass : std::uint8_t {
  kFlipWriteData,      ///< flip a data-lane bit of the N-th write burst
  kFlipWriteEmac,      ///< flip an ECC-lane (E-MAC) bit of the N-th write
  kFlipWriteCrc,       ///< flip an encrypted-eWCRC bit of the N-th write
  kFlipReadData,       ///< flip a data bit of the N-th read response
  kFlipReadEmac,       ///< flip an E-MAC bit of the N-th read response
  kDropWrite,          ///< drop the N-th write command entirely
  kDropRead,           ///< drop the N-th read command entirely
  kDropActivate,       ///< drop the N-th ACTIVATE
  kSwallowReadResp,    ///< swallow the N-th read response burst
  kMaskAlert,          ///< clear the N-th asserted ALERT_n
  kForgeAlert,         ///< assert ALERT_n on the N-th clean write status
  kSpliceReadResp,     ///< replace the N-th response with recorded burst #aux
  kWriteToRead,        ///< convert the N-th write into a read (§III-B)
  kFlipActRow,         ///< flip row bit `bit` of the N-th ACTIVATE (Fig. 3)
  kFlipActBank,        ///< flip a bank/bank-group bit of the N-th ACTIVATE
  kFlipWriteColumn,    ///< flip column bit of the N-th write command
  kFlipReadColumn,     ///< flip column bit of the N-th read command
  kInjectForgedWrite,  ///< inject a forged write burst before the N-th read
  kOnDimmReplay,       ///< replay recorded inner burst at the N-th inner read
  kRowHammer,          ///< disturb a neighbor-row bit at the N-th ACTIVATE
  kMacDisturb,         ///< flip a stored-MAC bit before the N-th read
  kCount
};

inline constexpr unsigned kFaultClassCount =
    static_cast<unsigned>(FaultClass::kCount);

const char* to_string(FaultClass c);
/// Inverse of to_string; false when `name` is unknown.
bool fault_class_from_string(const std::string& name, FaultClass* out);

/// One triggered fault. `trigger` is the 1-based occurrence count of the
/// class's event kind; `bit` selects the flipped/disturbed bit; `aux` is
/// class-specific (splice ring index, Rowhammer column, ...).
struct FaultOp {
  FaultClass cls = FaultClass::kFlipWriteData;
  std::uint32_t trigger = 1;
  std::uint32_t bit = 0;
  std::uint32_t aux = 0;

  friend bool operator==(const FaultOp& a, const FaultOp& b) {
    return a.cls == b.cls && a.trigger == b.trigger && a.bit == b.bit &&
           a.aux == b.aux;
  }
};

using FaultPlan = std::vector<FaultOp>;

/// One complete fuzz experiment. `ops` drives the victim's accesses (the
/// same records a recorded .strace trace holds — the mutation engine
/// perturbs recorded traces and fault plans alike); `profile` selects
/// the deployment configuration under test.
struct FuzzInput {
  unsigned profile = 0;
  FaultPlan plan;
  std::vector<sim::TraceRecord> ops;
};

/// Deployment profile: which defenses are on. The weakened profiles are
/// the paper's negative arguments (no eWCRC -> Fig. 3; trusted-DIMM
/// placement -> §VI-C) and define the *accounted* escape classes.
struct FuzzProfile {
  const char* name;
  core::DataEncryption enc;
  bool ewcrc;
  core::LogicPlacement placement;
  bool secded;
  bool cca;
};

inline constexpr unsigned kProfileCount = 6;
const FuzzProfile& profile(unsigned id);
/// Session configuration for a profile (tiny fixed geometry; see
/// Executor::functional_geometry()).
core::SessionConfig make_profile_config(unsigned id);

/// True when an undetected corruption in `profile` caused by fault class
/// `cls` is outside the profile's threat model (the paper's own negative
/// results), i.e. an *accounted* escape rather than a real one.
bool accounted_escape(unsigned profile, FaultClass cls);

/// Text serialization of (profile, plan) — the .fplan sidecar of a saved
/// input (the ops travel separately as a binary .strace trace).
std::string serialize_plan(const FuzzInput& in);
/// Parses a .fplan body; fills profile+plan of `out` (ops untouched).
bool parse_plan(const std::string& text, FuzzInput* out, std::string* err);

}  // namespace secddr::fuzz
