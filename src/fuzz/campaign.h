// Campaign driver: the coverage-guided fuzz loop.
//
// Loop: pick a parent (corpus member or fresh random input), mutate,
// execute, keep coverage-novel children, report every escape. Inputs are
// generated *sequentially* from one master RNG and executed in parallel
// batches whose results are merged in generation order, so the campaign
// is bit-reproducible from its seed at any SECDDR_FUZZ_JOBS — the
// determinism tests diff the whole campaign log across job counts, loop
// modes, and SECDDR_MEM_THREADS.
//
// Environment knobs (CampaignOptions::from_env; flags accept 0/1):
//   SECDDR_FUZZ_TRIALS        mutated executions        (default 10000)
//   SECDDR_FUZZ_SEED          campaign seed             (default 0x5ecdd6)
//   SECDDR_FUZZ_JOBS          worker threads            (default: SECDDR_JOBS
//                             or hardware concurrency)
//   SECDDR_FUZZ_PROFILES      substring filter on profile names
//   SECDDR_FUZZ_SIM           1 = timing leg on         (default 0)
//   SECDDR_FUZZ_EVENT_DRIVEN  timing-leg loop mode      (default 1)
//   SECDDR_MEM_THREADS        timing-leg channel threads (default 1)
//   SECDDR_FUZZ_SAVE_DIR      write escapes + their minimized forms here
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/executor.h"
#include "fuzz/mutate.h"

namespace secddr::fuzz {

struct CampaignOptions {
  std::uint64_t trials = 10000;
  std::uint64_t seed = 0x5ecdd6;
  unsigned jobs = 0;  ///< 0 = auto (hardware concurrency)
  std::string profile_filter;  ///< substring on profile names; empty = all
  ExecutorOptions exec;        ///< timing leg + loop mode
  std::string save_dir;        ///< empty = don't save escapes

  static CampaignOptions from_env();
};

struct EscapeReport {
  std::uint64_t trial = 0;  ///< generation index of the escaping input
  FuzzInput input;          ///< as executed
  FuzzInput minimized;      ///< after greedy minimization
  Outcome outcome;
};

struct CampaignResult {
  std::uint64_t executions = 0;
  /// Verdict histogram, indexed by Verdict.
  std::array<std::uint64_t, 5> verdicts{};
  std::size_t corpus_size = 0;
  std::size_t coverage = 0;  ///< distinct signatures seen
  std::vector<EscapeReport> escapes;
  /// Deterministic campaign transcript (no wall-clock content): one line
  /// per coverage-novel input and per escape, plus the final tallies.
  std::string log;

  bool clean() const { return escapes.empty(); }
};

class Campaign {
 public:
  explicit Campaign(const CampaignOptions& opts);

  /// Runs the whole campaign. Deterministic for fixed (options, build).
  CampaignResult run();

 private:
  CampaignOptions opts_;
  std::vector<unsigned> profiles_;  ///< ids passing the filter
};

/// Replays one saved input (corpus.h sidecar format) and returns its
/// outcome — the regression-trace replay entry point.
Outcome replay_saved(const std::string& stem, const ExecutorOptions& exec = {});

}  // namespace secddr::fuzz
