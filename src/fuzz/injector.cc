#include "fuzz/injector.h"

namespace secddr::fuzz {

namespace {

unsigned log2u(std::uint64_t v) {
  unsigned b = 0;
  while ((std::uint64_t{1} << b) < v) ++b;
  return b;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, core::Dimm& dimm)
    : dimm_(dimm) {
  ops_.reserve(plan.size());
  for (const FaultOp& op : plan) ops_.push_back({op, false});
}

bool FaultInjector::on_activate(core::ActivateCmd& cmd) {
  ++acts_;
  const auto& g = dimm_.config().geometry;
  // Rowhammer-style disturbance: the N-th ACTIVATE flips a stored bit in
  // the physically adjacent row of the same bank (aggressor row observed
  // on the wire; under CCA obfuscation it lands on a pad-selected row,
  // which is exactly what a blind disturbance attack does).
  fire(FaultClass::kRowHammer, acts_, [&](const FaultOp& op) {
    const std::uint64_t victim = cmd.row ^ 1;  // rows are a power of two
    (void)dimm_.inject_fault(
        cmd.rank,
        dimm_.line_key_for(cmd.bank_group, cmd.bank, victim,
                           op.aux % g.columns_per_row),
        op.bit);
  });
  fire(FaultClass::kFlipActRow, acts_, [&](const FaultOp& op) {
    cmd.row ^= std::uint64_t{1} << (op.bit % log2u(g.rows_per_bank));
  });
  fire(FaultClass::kFlipActBank, acts_, [&](const FaultOp& op) {
    const unsigned bg_bits = log2u(g.bank_groups);
    const unsigned bank_bits = log2u(g.banks_per_group);
    const unsigned b = op.bit % (bg_bits + bank_bits ? bg_bits + bank_bits : 1);
    if (b < bg_bits)
      cmd.bank_group ^= 1u << b;
    else
      cmd.bank ^= 1u << (b - bg_bits);
  });
  bool dropped = false;
  fire(FaultClass::kDropActivate, acts_, [&](const FaultOp&) { dropped = true; });
  // A dropped ACTIVATE never reaches the device, so the attacker's model
  // of the device's open rows must not change either.
  if (dropped) return false;
  return core::TrackingInterposer::on_activate(cmd);
}

bool FaultInjector::on_write(core::WriteCmd& cmd) {
  ++writes_;
  // Snoop the clean burst (replay/splice source + forgery template).
  ring_.push_back({cmd.data, cmd.emac});
  last_write_ = cmd;
  const auto& g = dimm_.config().geometry;
  fire(FaultClass::kFlipWriteData, writes_, [&](const FaultOp& op) {
    core::flip_line_bit(cmd.data, op.bit);
  });
  fire(FaultClass::kFlipWriteEmac, writes_, [&](const FaultOp& op) {
    core::flip_u64_bit(cmd.emac, op.bit);
  });
  fire(FaultClass::kFlipWriteCrc, writes_, [&](const FaultOp& op) {
    core::flip_u16_bit(cmd.ecc_crc, op.bit);
  });
  fire(FaultClass::kFlipWriteColumn, writes_, [&](const FaultOp& op) {
    cmd.column ^= 1u << (op.bit % log2u(g.columns_per_row));
  });
  bool dropped = false;
  fire(FaultClass::kDropWrite, writes_, [&](const FaultOp&) { dropped = true; });
  return !dropped;
}

bool FaultInjector::on_read(core::ReadCmd& cmd) {
  ++reads_;
  const auto& g = dimm_.config().geometry;
  // Forged-write injection happens *before* the read is delivered — the
  // composition that, under an advance-on-receipt device counter rule,
  // re-synchronized a desynced channel (tests/regress/drop_inject_resync).
  fire(FaultClass::kInjectForgedWrite, reads_,
       [&](const FaultOp& op) { inject_forged_write(op); });
  // Disturbance fault on the ECC-chip MAC array of the line about to be
  // read (aimable only when the attacker knows the open row).
  fire(FaultClass::kMacDisturb, reads_, [&](const FaultOp& op) {
    if (const auto row = open_row_for(cmd.rank, cmd.bank_group, cmd.bank))
      (void)dimm_.inject_mac_fault(
          cmd.rank,
          dimm_.line_key_for(cmd.bank_group, cmd.bank, *row, cmd.column),
          op.bit);
  });
  fire(FaultClass::kFlipReadColumn, reads_, [&](const FaultOp& op) {
    cmd.column ^= 1u << (op.bit % log2u(g.columns_per_row));
  });
  bool dropped = false;
  fire(FaultClass::kDropRead, reads_, [&](const FaultOp&) { dropped = true; });
  return !dropped;
}

bool FaultInjector::on_read_resp(const core::ReadCmd&, core::ReadResp& resp) {
  ++resps_;
  const Burst clean{resp.data, resp.emac};
  // Splice: substitute a previously recorded burst — a replay when the
  // ring entry came from the same location, a cross-location splice
  // otherwise. The mutation engine does not distinguish; the oracle does.
  fire(FaultClass::kSpliceReadResp, resps_, [&](const FaultOp& op) {
    if (!ring_.empty()) {
      const Burst& b = ring_[op.aux % ring_.size()];
      resp.data = b.data;
      resp.emac = b.emac;
    }
  });
  fire(FaultClass::kFlipReadData, resps_, [&](const FaultOp& op) {
    core::flip_line_bit(resp.data, op.bit);
  });
  fire(FaultClass::kFlipReadEmac, resps_, [&](const FaultOp& op) {
    core::flip_u64_bit(resp.emac, op.bit);
  });
  ring_.push_back(clean);
  bool swallowed = false;
  fire(FaultClass::kSwallowReadResp, resps_,
       [&](const FaultOp&) { swallowed = true; });
  return !swallowed;
}

void FaultInjector::on_write_status(const core::WriteCmd&,
                                    core::WriteStatus& status) {
  if (status.alert) {
    ++alerts_;
    fire(FaultClass::kMaskAlert, alerts_,
         [&](const FaultOp&) { status.alert = false; });
  } else {
    ++clean_status_;
    fire(FaultClass::kForgeAlert, clean_status_,
         [&](const FaultOp&) { status.alert = true; });
  }
}

bool FaultInjector::convert_write_to_read(const core::WriteCmd&) {
  ++converts_;
  bool convert = false;
  fire(FaultClass::kWriteToRead, converts_,
       [&](const FaultOp&) { convert = true; });
  return convert;
}

void FaultInjector::on_inner_write(unsigned rank, std::uint64_t line_key,
                                   CacheLine& data, std::uint64_t& mac) {
  inner_first_.emplace((std::uint64_t{rank} << 56) | line_key,
                       Burst{data, mac});
}

void FaultInjector::on_inner_read(unsigned rank, std::uint64_t line_key,
                                  CacheLine& data, std::uint64_t& mac) {
  ++inner_reads_;
  const std::uint64_t k = (std::uint64_t{rank} << 56) | line_key;
  fire(FaultClass::kOnDimmReplay, inner_reads_, [&](const FaultOp&) {
    const auto it = inner_first_.find(k);
    if (it != inner_first_.end()) {
      data = it->second.data;
      mac = it->second.emac;
    }
  });
  inner_first_.emplace(k, Burst{data, mac});
}

void FaultInjector::inject_forged_write(const FaultOp& op) {
  if (!last_write_) return;  // nothing observed to forge from yet
  core::WriteCmd forged = *last_write_;
  // The attacker cannot produce a valid E-MAC; a garbled one models the
  // best it can do. With eWCRC on, the device rejects the burst — the
  // interesting question is whether that rejection consumes a counter.
  core::flip_u64_bit(forged.emac, op.bit);
  core::flip_u16_bit(forged.ecc_crc, op.bit);
  const core::WriteStatus st = dimm_.write(forged);
  if (st.alert) ++injected_alerts_;
}

}  // namespace secddr::fuzz
