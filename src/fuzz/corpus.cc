#include "fuzz/corpus.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/stream_trace.h"
#include "sim/trace_codec.h"

namespace secddr::fuzz {

bool Corpus::add_if_new(const FuzzInput& in, std::uint64_t signature) {
  if (!signatures_.insert(signature).second) return false;
  inputs_.push_back(in);
  return true;
}

bool save_input(const FuzzInput& in, const std::string& stem,
                std::string* err) {
  const auto fail = [&](const std::string& why) {
    if (err) *err = why;
    return false;
  };
  {
    std::ofstream f(stem + ".fplan", std::ios::trunc);
    if (!f) return fail("cannot create " + stem + ".fplan");
    f << serialize_plan(in);
    if (!f.flush()) return fail("write failed: " + stem + ".fplan");
  }
  try {
    sim::TraceWriter w(stem + ".strace");
    for (const sim::TraceRecord& r : in.ops) w.append(r);
    w.close();
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return true;
}

bool load_input(const std::string& stem, FuzzInput* out, std::string* err) {
  const auto fail = [&](const std::string& why) {
    if (err) *err = why;
    return false;
  };
  std::ifstream f(stem + ".fplan");
  if (!f) return fail("cannot open " + stem + ".fplan");
  std::ostringstream body;
  body << f.rdbuf();
  std::string perr;
  if (!parse_plan(body.str(), out, &perr))
    return fail(stem + ".fplan: " + perr);
  out->ops.clear();
  try {
    auto src = sim::open_trace(stem + ".strace", /*loop=*/false);
    sim::TraceRecord r;
    while (src->next(r)) out->ops.push_back(r);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return true;
}

}  // namespace secddr::fuzz
