// Fuzz executor: runs one FuzzInput and classifies the outcome.
//
// Two legs per execution:
//
//  * Functional leg (always): the input's ops drive a live
//    SecureMemorySession with the FaultInjector installed at both
//    attacker positions. The session is attested ONCE per profile (the
//    expensive certified key exchange) and reset to its pristine
//    post-attestation state via snapshot/restore before every run —
//    that is what gives the campaign sweep-runner throughput.
//  * Timing leg (optional): the same ops replayed through a tiny
//    two-channel sim::System, folding per-channel security-engine and
//    DRAM-controller counters into the coverage signature. Bit-identical
//    across the per-cycle / event-driven loops and SECDDR_MEM_THREADS
//    (the PR 2/4 guarantee), so signatures are loop-mode independent.
//
// Oracle: the executor maintains the controller's *believed* memory
// image (updated only on writes the controller saw succeed). Verdicts:
//
//   kHarmless   no violation, every OK read returned believed data
//   kDetected   >= 1 violation reported (controller) or device alert on
//               an injected command — the corruption was caught
//   kCorrected  no violation/mismatch, but on-device SEC-DED corrected
//               at least one array fault
//   kAccounted  an OK read returned wrong data before any violation was
//               flagged, but the input exercised a weakness the profile
//               explicitly models (accounted_escape)
//   kEscape     an OK read returned data the controller never wrote,
//               BEFORE any controller-observed violation, and no
//               accounting applies — silent acceptance, the failure the
//               whole campaign hunts. (Wrong data served after a flagged
//               violation classifies as detected: a real controller
//               halts the channel at its first violation.)
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "fuzz/fuzz.h"

namespace secddr::fuzz {

enum class Verdict : std::uint8_t {
  kHarmless,
  kDetected,
  kCorrected,
  kAccounted,
  kEscape,
};

const char* to_string(Verdict v);

struct Outcome {
  Verdict verdict = Verdict::kHarmless;
  std::uint64_t signature = 0;  ///< coverage signature (FNV over counters)
  std::uint32_t violations = 0;  ///< controller-reported + injected alerts
  std::uint32_t mismatches = 0;  ///< OK reads with non-believed data
  /// Mismatches that happened while the controller had seen ZERO
  /// violations — truly silent acceptance (drives escape/accounted).
  std::uint32_t silent_mismatches = 0;
  std::uint32_t faults_fired = 0;
  bool timing_ok = true;  ///< timing leg ran within its cycle budget
  std::string note;       ///< first mismatch, for escape reports
};

struct ExecutorOptions {
  /// Fold the timing-leg per-channel counters into the signature.
  bool timing_leg = false;
  /// Timing-leg loop mode / threading (signatures must not depend on
  /// these — pinned by the FuzzDeterminism tests).
  bool event_driven = true;
  unsigned mem_threads = 1;
};

class Executor {
 public:
  explicit Executor(const ExecutorOptions& opts = {});
  ~Executor();

  /// Runs one input. Deterministic: same input + options => same Outcome.
  Outcome run(const FuzzInput& in);

  /// The fixed tiny geometry every fuzz session uses.
  static const dram::Geometry& functional_geometry();
  /// Line capacity (bytes) of that geometry — mutated trace addresses
  /// are folded into this range.
  static std::uint64_t functional_capacity();

  /// Serializes the master session's pristine (post-attestation) snapshot
  /// for `profile` — the state every run() resets to. Map keys are sorted
  /// before encoding, so the bytes are deterministic across processes and
  /// round-trip through the fleet checkpoint codec bit-exactly. Attests
  /// the profile first if this executor has not touched it yet.
  std::vector<std::uint8_t> master_snapshot(unsigned profile);
  /// Replaces the profile's pristine snapshot with a previously exported
  /// one (same profile, possibly a different process). Subsequent run()
  /// calls reset the session to the imported state, so campaign
  /// signatures match the exporting executor's bit-for-bit. Throws
  /// std::runtime_error on a malformed or geometry-mismatched payload.
  void set_master_snapshot(unsigned profile, const std::uint8_t* data,
                           std::size_t n);

  const ExecutorOptions& options() const { return opts_; }

 private:
  struct Master;
  Master& master(unsigned profile);

  ExecutorOptions opts_;
  std::array<std::unique_ptr<Master>, kProfileCount> masters_;
};

}  // namespace secddr::fuzz
