// FaultInjector: the fuzzer's fault-injection shim.
//
// One object sits at both attacker positions — on the memory channel
// (BusInterposer, via core::TrackingInterposer so it inherits the same
// open-row tracking the single-shot attacks use) and on the DIMM's
// internal interconnect (OnDimmInterposer) — and executes a FaultPlan:
// each FaultOp fires exactly once, at the `trigger`-th event of its
// class's kind. Count-based triggers make every class meaningful even
// under CCA obfuscation, where the field values an interposer sees are
// one-time pads.
//
// The injector deliberately composes the attack framework's primitives
// (flip_line_bit & friends, the snoop ring for replay/splice) instead of
// reimplementing them — attacks are the mutation vocabulary (attack.h).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/attack.h"
#include "core/bus.h"
#include "core/dimm.h"
#include "fuzz/fuzz.h"

namespace secddr::fuzz {

class FaultInjector : public core::TrackingInterposer,
                      public core::OnDimmInterposer {
 public:
  /// `dimm` grants the array-level fault classes (Rowhammer disturbance,
  /// MAC disturbance, forged-write injection) their device access.
  FaultInjector(const FaultPlan& plan, core::Dimm& dimm);

  // ---- BusInterposer ----
  bool on_activate(core::ActivateCmd& cmd) override;
  bool on_write(core::WriteCmd& cmd) override;
  bool on_read(core::ReadCmd& cmd) override;
  bool on_read_resp(const core::ReadCmd& cmd, core::ReadResp& resp) override;
  void on_write_status(const core::WriteCmd& cmd,
                       core::WriteStatus& status) override;
  bool convert_write_to_read(const core::WriteCmd& cmd) override;

  // ---- OnDimmInterposer ----
  void on_inner_write(unsigned rank, std::uint64_t line_key,
                      CacheLine& data, std::uint64_t& mac) override;
  void on_inner_read(unsigned rank, std::uint64_t line_key,
                     CacheLine& data, std::uint64_t& mac) override;

  /// Faults that actually fired (an op whose trigger count was never
  /// reached stays latent — the mutation engine prunes those inputs).
  std::uint32_t fired() const { return fired_; }
  /// True when at least one op of `cls` fired (the oracle's accounting
  /// considers only faults that actually happened).
  bool fired_class(FaultClass cls) const {
    for (const PendingOp& p : ops_)
      if (p.fired && p.op.cls == cls) return true;
    return false;
  }
  /// Device-side alerts provoked by *injected* commands (the injector is
  /// the attacker; the controller never sees these, but the oracle
  /// counts them as detections on the device).
  std::uint32_t injected_alerts() const { return injected_alerts_; }

 private:
  struct PendingOp {
    FaultOp op;
    bool fired = false;
  };
  /// Runs `fn(op)` for every un-fired op of class `cls` whose trigger
  /// equals `count`; marks it fired.
  template <typename Fn>
  void fire(FaultClass cls, std::uint32_t count, Fn&& fn) {
    for (PendingOp& p : ops_) {
      if (p.fired || p.op.cls != cls || p.op.trigger != count) continue;
      p.fired = true;
      ++fired_;
      fn(p.op);
    }
  }
  bool armed(FaultClass cls, std::uint32_t count) const {
    for (const PendingOp& p : ops_)
      if (!p.fired && p.op.cls == cls && p.op.trigger == count) return true;
    return false;
  }

  void inject_forged_write(const FaultOp& op);

  core::Dimm& dimm_;
  std::vector<PendingOp> ops_;
  std::uint32_t fired_ = 0;
  std::uint32_t injected_alerts_ = 0;

  // Event counters (each hook kind counts its own stream).
  std::uint32_t acts_ = 0, writes_ = 0, reads_ = 0, resps_ = 0;
  std::uint32_t converts_ = 0, alerts_ = 0, clean_status_ = 0;
  std::uint32_t inner_reads_ = 0;

  /// Ring of every (data, E-MAC) burst observed on the channel, in
  /// order — the splice/replay source (a recorded burst substituted into
  /// a later response, same or different location).
  struct Burst {
    CacheLine data;
    std::uint64_t emac;
  };
  std::vector<Burst> ring_;
  std::optional<core::WriteCmd> last_write_;

  /// Inner-interconnect recordings for the on-DIMM replay trojan.
  std::unordered_map<std::uint64_t, Burst> inner_first_;
};

}  // namespace secddr::fuzz
