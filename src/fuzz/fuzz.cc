#include "fuzz/fuzz.h"

#include <cstdio>
#include <sstream>

namespace secddr::fuzz {

namespace {

constexpr const char* kClassNames[kFaultClassCount] = {
    "flip-write-data",     "flip-write-emac", "flip-write-crc",
    "flip-read-data",      "flip-read-emac",  "drop-write",
    "drop-read",           "drop-activate",   "swallow-read-resp",
    "mask-alert",          "forge-alert",     "splice-read-resp",
    "write-to-read",       "flip-act-row",    "flip-act-bank",
    "flip-write-column",   "flip-read-column", "inject-forged-write",
    "on-dimm-replay",      "row-hammer",      "mac-disturb",
};

constexpr FuzzProfile kProfiles[kProfileCount] = {
    // Full SecDDR deployments (no escape is ever acceptable here).
    {"secddr-xts", core::DataEncryption::kXts, true,
     core::LogicPlacement::kEccChip, false, false},
    {"secddr-ctr", core::DataEncryption::kCtr, true,
     core::LogicPlacement::kEccChip, false, false},
    // Weakened designs the paper argues against (escapes from the
    // matching classes are accounted, never silent-accepted elsewhere).
    {"no-ewcrc", core::DataEncryption::kXts, false,
     core::LogicPlacement::kEccChip, false, false},
    {"trusted-dimm", core::DataEncryption::kXts, true,
     core::LogicPlacement::kEccDataBuffer, false, false},
    // Reliability and obfuscation extensions.
    {"secddr-ctr-secded", core::DataEncryption::kCtr, true,
     core::LogicPlacement::kEccChip, true, false},
    {"secddr-xts-cca", core::DataEncryption::kXts, true,
     core::LogicPlacement::kEccChip, false, true},
};

}  // namespace

const char* to_string(FaultClass c) {
  const auto i = static_cast<unsigned>(c);
  return i < kFaultClassCount ? kClassNames[i] : "?";
}

bool fault_class_from_string(const std::string& name, FaultClass* out) {
  for (unsigned i = 0; i < kFaultClassCount; ++i) {
    if (name == kClassNames[i]) {
      *out = static_cast<FaultClass>(i);
      return true;
    }
  }
  return false;
}

const FuzzProfile& profile(unsigned id) { return kProfiles[id % kProfileCount]; }

core::SessionConfig make_profile_config(unsigned id) {
  const FuzzProfile& p = profile(id);
  core::SessionConfig cfg;
  cfg.dimm.geometry.ranks = 2;
  cfg.dimm.geometry.bank_groups = 2;
  cfg.dimm.geometry.banks_per_group = 2;
  cfg.dimm.geometry.rows_per_bank = 16;
  cfg.dimm.geometry.columns_per_row = 8;
  cfg.dimm.ewcrc_enabled = p.ewcrc;
  cfg.dimm.placement = p.placement;
  cfg.dimm.secded_enabled = p.secded;
  cfg.dimm.cca_obfuscation = p.cca;
  cfg.encryption = p.enc;
  cfg.seed = 7151 + id;
  cfg.module_id = std::string("dimm:fuzz-") + p.name;
  return cfg;
}

bool accounted_escape(unsigned id, FaultClass cls) {
  const FuzzProfile& p = profile(id);
  // Without the encrypted eWCRC the device cannot bind a burst to the
  // address the processor intended, so silent wrong-location writes via
  // redirected/dropped addressing commands are the Fig. 3 result the
  // paper reproduces — expected, not an engine bug.
  if (!p.ewcrc &&
      (cls == FaultClass::kFlipActRow || cls == FaultClass::kFlipActBank ||
       cls == FaultClass::kFlipWriteColumn || cls == FaultClass::kDropActivate))
    return true;
  // Trusted-DIMM placement exposes plaintext MACs on the on-DIMM
  // interconnect; an on-DIMM replay verifies — the §VI-C argument.
  if (p.placement == core::LogicPlacement::kEccDataBuffer &&
      cls == FaultClass::kOnDimmReplay)
    return true;
  return false;
}

std::string serialize_plan(const FuzzInput& in) {
  std::ostringstream os;
  os << "secddr-fplan v1\n";
  os << "profile " << in.profile << " " << profile(in.profile).name << "\n";
  for (const FaultOp& op : in.plan)
    os << "fault " << to_string(op.cls) << " trigger=" << op.trigger
       << " bit=" << op.bit << " aux=" << op.aux << "\n";
  return os.str();
}

bool parse_plan(const std::string& text, FuzzInput* out, std::string* err) {
  const auto fail = [&](const std::string& why) {
    if (err) *err = why;
    return false;
  };
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "secddr-fplan v1")
    return fail("missing 'secddr-fplan v1' header");
  out->plan.clear();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "profile") {
      unsigned id = 0;
      if (!(ls >> id) || id >= kProfileCount)
        return fail("bad profile line: " + line);
      out->profile = id;  // trailing name is informational
    } else if (kind == "fault") {
      std::string cls_name;
      if (!(ls >> cls_name)) return fail("bad fault line: " + line);
      FaultOp op;
      if (!fault_class_from_string(cls_name, &op.cls))
        return fail("unknown fault class: " + cls_name);
      std::string field;
      while (ls >> field) {
        unsigned long v = 0;
        if (std::sscanf(field.c_str(), "trigger=%lu", &v) == 1)
          op.trigger = static_cast<std::uint32_t>(v);
        else if (std::sscanf(field.c_str(), "bit=%lu", &v) == 1)
          op.bit = static_cast<std::uint32_t>(v);
        else if (std::sscanf(field.c_str(), "aux=%lu", &v) == 1)
          op.aux = static_cast<std::uint32_t>(v);
        else
          return fail("unknown fault field: " + field);
      }
      if (op.trigger == 0) return fail("fault trigger must be >= 1");
      out->plan.push_back(op);
    } else {
      return fail("unknown line kind: " + kind);
    }
  }
  return true;
}

}  // namespace secddr::fuzz
