#include "fuzz/executor.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/serial.h"
#include "fuzz/injector.h"
#include "secmem/params.h"
#include "sim/system.h"

namespace secddr::fuzz {

namespace {

/// FNV-1a 64-bit: the coverage signature accumulator.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
};

/// log2-style bucket: collapses raw counter values so the signature
/// reflects *which regime* a counter landed in, not its exact value —
/// cheap coverage that still separates "no alerts" / "one alert" /
/// "alert storm".
std::uint64_t bucket(std::uint64_t v) {
  if (v < 4) return v;  // 0..3 exact
  unsigned b = 2;
  while ((std::uint64_t{1} << (b + 1)) <= v) ++b;
  return 2 + b;  // 4..7 -> 4, 8..15 -> 5, ...
}

/// splitmix64: deterministic per-(address, salt) write patterns.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

CacheLine pattern_line(Addr addr, std::uint32_t salt) {
  CacheLine l;
  for (unsigned w = 0; w < kLineSize / 8; ++w)
    store_le64(l.bytes.data() + 8 * w,
               mix64(addr * 0x10001 + salt * 0x100000007ull + w));
  return l;
}

sim::SystemConfig timing_config(const ExecutorOptions& opts) {
  sim::SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.geometry.channels = 2;
  cfg.geometry.ranks = 1;
  cfg.geometry.bank_groups = 2;
  cfg.geometry.banks_per_group = 2;
  cfg.geometry.rows_per_bank = 512;
  cfg.geometry.columns_per_row = 32;
  cfg.data_bytes = 4ull << 20;
  cfg.security = secmem::SecurityParams::secddr_xts();
  cfg.event_driven = opts.event_driven;
  cfg.mem_threads = opts.mem_threads;
  return cfg;
}

// ---- Master-snapshot wire form (sorted keys => process-stable bytes) ----

void save_u64_map(serial::Sink& s,
                  const std::unordered_map<std::uint64_t, std::uint64_t>& m) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kv(m.begin(), m.end());
  std::sort(kv.begin(), kv.end());
  s.u64(kv.size());
  for (const auto& [k, v] : kv) {
    s.u64(k);
    s.u64(v);
  }
}

std::unordered_map<std::uint64_t, std::uint64_t> load_u64_map(
    serial::Source& src) {
  std::unordered_map<std::uint64_t, std::uint64_t> m;
  const std::size_t n = src.count(16);
  m.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = src.u64();
    m[k] = src.u64();
  }
  return m;
}

void save_line_map(serial::Sink& s,
                   const std::unordered_map<std::uint64_t, CacheLine>& m) {
  std::vector<std::uint64_t> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  s.u64(keys.size());
  for (const std::uint64_t k : keys) {
    s.u64(k);
    const CacheLine& l = m.at(k);
    s.bytes(l.bytes.data(), l.bytes.size());
  }
}

std::unordered_map<std::uint64_t, CacheLine> load_line_map(
    serial::Source& src) {
  std::unordered_map<std::uint64_t, CacheLine> m;
  const std::size_t n = src.count(8 + kLineSize);
  m.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = src.u64();
    CacheLine l;
    src.bytes(l.bytes.data(), l.bytes.size());
    m[k] = l;
  }
  return m;
}

void save_u64_vec(serial::Sink& s, const std::vector<std::uint64_t>& v) {
  s.u64(v.size());
  for (const std::uint64_t x : v) s.u64(x);
}

std::vector<std::uint64_t> load_u64_vec(serial::Source& src) {
  std::vector<std::uint64_t> v(src.count(8));
  for (std::uint64_t& x : v) x = src.u64();
  return v;
}

void save_i64_vec(serial::Sink& s, const std::vector<std::int64_t>& v) {
  s.u64(v.size());
  for (const std::int64_t x : v) s.i64(x);
}

std::vector<std::int64_t> load_i64_vec(serial::Source& src) {
  std::vector<std::int64_t> v(src.count(8));
  for (std::int64_t& x : v) x = src.i64();
  return v;
}

}  // namespace

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kHarmless:
      return "harmless";
    case Verdict::kDetected:
      return "detected";
    case Verdict::kCorrected:
      return "corrected";
    case Verdict::kAccounted:
      return "accounted";
    case Verdict::kEscape:
      return "escape";
  }
  return "?";
}

struct Executor::Master {
  std::unique_ptr<core::SecureMemorySession> session;
  core::SecureMemorySession::Snapshot pristine;
  std::uint64_t pristine_ecc = 0;
};

Executor::Executor(const ExecutorOptions& opts) : opts_(opts) {}
Executor::~Executor() = default;

const dram::Geometry& Executor::functional_geometry() {
  static const dram::Geometry g = make_profile_config(0).dimm.geometry;
  return g;
}

std::uint64_t Executor::functional_capacity() {
  return functional_geometry().capacity_bytes();
}

Executor::Master& Executor::master(unsigned profile_id) {
  auto& slot = masters_[profile_id % kProfileCount];
  if (!slot) {
    slot = std::make_unique<Master>();
    std::string failure;
    slot->session =
        core::SecureMemorySession::create(make_profile_config(profile_id),
                                          &failure);
    assert(slot->session && "fuzz profile attestation must succeed");
    slot->pristine = slot->session->snapshot();
    slot->pristine_ecc = slot->session->dimm().ecc_corrections();
  }
  return *slot;
}

std::vector<std::uint8_t> Executor::master_snapshot(unsigned profile) {
  Master& m = master(profile);
  const core::SecureMemorySession::Snapshot& snap = m.pristine;
  serial::Sink s;
  s.u64(snap.dimm.data.size());
  for (const auto& rank : snap.dimm.data) save_line_map(s, rank);
  s.u64(snap.dimm.macs.size());
  for (const auto& rank : snap.dimm.macs) save_u64_map(s, rank);
  save_u64_vec(s, snap.dimm.counters);
  save_u64_vec(s, snap.dimm.cmd_counters);
  save_i64_vec(s, snap.dimm.open_rows);
  s.u64(snap.dimm.ecc_corrections);
  save_u64_vec(s, snap.controller.counters);
  save_u64_vec(s, snap.controller.cmd_counters);
  save_i64_vec(s, snap.controller.open_row_mirror);
  save_u64_map(s, snap.controller.line_counters);
  s.u64(snap.controller.stats.reads);
  s.u64(snap.controller.stats.writes);
  s.u64(snap.controller.stats.activates);
  s.u64(snap.controller.stats.mac_mismatches);
  s.u64(snap.controller.stats.write_alerts);
  s.u64(snap.controller.stats.dropped_responses);
  s.u64(m.pristine_ecc);
  return s.take();
}

void Executor::set_master_snapshot(unsigned profile, const std::uint8_t* data,
                                   std::size_t n) {
  // Attest (or reuse) the session first: the snapshot carries only the
  // mutable channel state, never the fused keys.
  Master& m = master(profile);
  const std::size_t ranks = m.pristine.dimm.data.size();

  serial::Source src(data, n);
  core::SecureMemorySession::Snapshot snap;
  const std::size_t data_ranks = src.count(8);
  for (std::size_t i = 0; i < data_ranks; ++i)
    snap.dimm.data.push_back(load_line_map(src));
  const std::size_t mac_ranks = src.count(8);
  for (std::size_t i = 0; i < mac_ranks; ++i)
    snap.dimm.macs.push_back(load_u64_map(src));
  snap.dimm.counters = load_u64_vec(src);
  snap.dimm.cmd_counters = load_u64_vec(src);
  snap.dimm.open_rows = load_i64_vec(src);
  snap.dimm.ecc_corrections = src.u64();
  snap.controller.counters = load_u64_vec(src);
  snap.controller.cmd_counters = load_u64_vec(src);
  snap.controller.open_row_mirror = load_i64_vec(src);
  snap.controller.line_counters = load_u64_map(src);
  snap.controller.stats.reads = src.u64();
  snap.controller.stats.writes = src.u64();
  snap.controller.stats.activates = src.u64();
  snap.controller.stats.mac_mismatches = src.u64();
  snap.controller.stats.write_alerts = src.u64();
  snap.controller.stats.dropped_responses = src.u64();
  const std::uint64_t pristine_ecc = src.u64();
  if (!src.done())
    throw std::runtime_error("master snapshot: trailing bytes");
  if (snap.dimm.data.size() != ranks || snap.dimm.macs.size() != ranks ||
      snap.dimm.counters.size() != ranks ||
      snap.dimm.cmd_counters.size() != ranks ||
      snap.dimm.open_rows.size() != m.pristine.dimm.open_rows.size() ||
      snap.controller.counters.size() !=
          m.pristine.controller.counters.size() ||
      snap.controller.cmd_counters.size() !=
          m.pristine.controller.cmd_counters.size() ||
      snap.controller.open_row_mirror.size() !=
          m.pristine.controller.open_row_mirror.size())
    throw std::runtime_error(
        "master snapshot: geometry disagrees with the attested session");
  m.pristine = std::move(snap);
  m.pristine_ecc = pristine_ecc;
}

Outcome Executor::run(const FuzzInput& in) {
  Outcome out;
  Master& m = master(in.profile);
  core::SecureMemorySession& s = *m.session;
  s.restore(m.pristine);

  const Addr cap = functional_capacity();
  const auto map_addr = [&](Addr a) { return line_base(a) % cap; };

  // Setup phase (clean channel): pre-write every line the trace touches
  // so each probe read has a controller-believed value to compare with.
  std::vector<Addr> touched;
  {
    std::vector<bool> seen(cap / kLineSize, false);
    for (const sim::TraceRecord& r : in.ops) {
      const Addr a = map_addr(r.addr);
      if (!seen[a / kLineSize]) {
        seen[a / kLineSize] = true;
        touched.push_back(a);
      }
    }
  }
  std::unordered_map<Addr, CacheLine> believed;
  for (const Addr a : touched) {
    const CacheLine v = pattern_line(a, 0);
    const core::Violation w = s.write(a, v);
    assert(w == core::Violation::kNone && "setup runs on a clean channel");
    (void)w;
    believed[a] = v;
  }

  const core::ControllerStats before = s.stats();

  // Adversarial phase: injector armed at both attacker positions for the
  // mutated ops AND the probe sweep (faults may target probe traffic).
  FaultInjector inj(in.plan, s.dimm());
  s.set_bus_interposer(&inj);
  s.set_on_dimm_interposer(&inj);

  Fnv sig;
  sig.mix(0x5ecddful);
  sig.mix(in.profile);

  std::uint32_t op_index = 0;
  // A mismatch is *silent* only when no controller-observed violation
  // preceded it: a real controller halts the channel at its first
  // violation, so stale data served after one is unreachable. Device
  // alerts on attacker-injected commands do not count — that wire is
  // under attacker control and the controller never saw them.
  std::uint32_t ctrl_violations = 0;
  const auto note_mismatch = [&](Addr a, std::uint32_t idx) {
    if (ctrl_violations == 0) ++out.silent_mismatches;
    if (out.mismatches++ == 0) {
      out.note = "ok-read of 0x" + std::to_string(a) + " at op " +
                 std::to_string(idx) + " returned non-believed data";
    }
    sig.mix(0xBAD0000ull + idx);
  };
  const auto do_read = [&](Addr a) {
    const auto r = s.read(a);
    if (!r.ok()) {
      ++out.violations;
      ++ctrl_violations;
      sig.mix((std::uint64_t{op_index} << 8) |
              static_cast<std::uint64_t>(r.violation));
    } else if (const auto it = believed.find(a);
               it != believed.end() && !(r.data == it->second)) {
      note_mismatch(a, op_index);
    }
    ++op_index;
  };
  for (const sim::TraceRecord& r : in.ops) {
    const Addr a = map_addr(r.addr);
    if (r.is_write) {
      const CacheLine v = pattern_line(a, op_index + 1);
      const core::Violation w = s.write(a, v);
      if (w == core::Violation::kNone)
        believed[a] = v;  // the controller believes this write landed
      else {
        ++out.violations;
        ++ctrl_violations;
        sig.mix((std::uint64_t{op_index} << 8) | 0x80u |
                static_cast<std::uint64_t>(w));
      }
      ++op_index;
    } else {
      do_read(a);
    }
  }
  // Probe phase: read back every touched line.
  for (const Addr a : touched) do_read(a);

  s.set_bus_interposer(nullptr);
  s.set_on_dimm_interposer(nullptr);

  out.violations += inj.injected_alerts();
  out.faults_fired = inj.fired();

  // Engine-event / state-transition coverage: controller stat deltas,
  // device ECC corrections, and the per-rank counter desync pattern.
  const core::ControllerStats after = s.stats();
  sig.mix(bucket(after.reads - before.reads));
  sig.mix(bucket(after.writes - before.writes));
  sig.mix(bucket(after.activates - before.activates));
  sig.mix(bucket(after.mac_mismatches - before.mac_mismatches));
  sig.mix(bucket(after.write_alerts - before.write_alerts));
  sig.mix(bucket(after.dropped_responses - before.dropped_responses));
  const std::uint64_t ecc_delta =
      s.dimm().ecc_corrections() - m.pristine_ecc;
  sig.mix(bucket(ecc_delta));
  const auto& g = functional_geometry();
  for (unsigned r = 0; r < g.ranks; ++r) {
    const std::uint64_t cc = s.controller().transaction_counter(r);
    const std::uint64_t dc = s.dimm().transaction_counter(r);
    sig.mix(cc == dc ? 0 : (cc > dc ? 0x100 + bucket(cc - dc)
                                    : 0x200 + bucket(dc - cc)));
  }
  sig.mix(bucket(inj.injected_alerts()));
  sig.mix(out.faults_fired);
  sig.mix(out.mismatches);
  sig.mix(out.silent_mismatches);

  // Optional timing leg: replay the ops through a tiny two-channel
  // system and fold the per-channel engine/DRAM counters in. RunResult
  // is bit-identical across loop modes and mem-thread counts, so the
  // signature cannot depend on either.
  if (opts_.timing_leg && !in.ops.empty()) {
    const sim::SystemConfig cfg = timing_config(opts_);
    std::vector<std::vector<sim::TraceRecord>> per_core(cfg.mem.cores);
    for (std::size_t i = 0; i < in.ops.size(); ++i) {
      sim::TraceRecord r = in.ops[i];
      r.addr = line_base(r.addr) % cfg.data_bytes;
      per_core[i % cfg.mem.cores].push_back(r);
    }
    std::vector<sim::VectorTrace> traces;
    traces.reserve(cfg.mem.cores);
    for (auto& v : per_core) traces.emplace_back(std::move(v));
    std::vector<sim::TraceSource*> ptrs;
    for (auto& t : traces) ptrs.push_back(&t);
    sim::System sys(cfg, ptrs);
    const sim::RunResult res =
        sys.run(/*instructions_per_core=*/1ull << 40, /*max_cycles=*/8'000'000);
    out.timing_ok = !res.hit_cycle_limit;
    sig.mix(bucket(res.cycles));
    for (const auto& e : res.engine_per_channel) {
      sig.mix(bucket(e.data_reads));
      sig.mix(bucket(e.data_writes));
      sig.mix(bucket(e.counter_fetches));
      sig.mix(bucket(e.mac_line_fetches));
      sig.mix(bucket(e.tree_node_fetches));
      sig.mix(bucket(e.meta_writebacks));
    }
    for (const auto& d : res.dram_per_channel) {
      sig.mix(bucket(d.reads_completed));
      sig.mix(bucket(d.writes_completed));
      sig.mix(bucket(d.row_hits));
      sig.mix(bucket(d.row_misses));
      sig.mix(bucket(d.activates));
      sig.mix(bucket(d.precharges));
      sig.mix(bucket(d.refreshes));
      sig.mix(bucket(d.write_forwards));
    }
  }

  // Verdict. Silent mismatches dominate: data accepted as valid with the
  // channel never having been flagged is THE failure the campaign hunts.
  // A mismatch after a controller-observed violation is unreachable in a
  // halt-on-violation deployment, so it classifies as detected.
  if (out.silent_mismatches > 0) {
    bool accounted = false;
    for (const FaultOp& op : in.plan)
      if (inj.fired_class(op.cls) && accounted_escape(in.profile, op.cls))
        accounted = true;
    out.verdict = accounted ? Verdict::kAccounted : Verdict::kEscape;
  } else if (out.violations > 0) {
    out.verdict = Verdict::kDetected;
  } else if (ecc_delta > 0) {
    out.verdict = Verdict::kCorrected;
  } else {
    out.verdict = Verdict::kHarmless;
  }
  sig.mix(static_cast<std::uint64_t>(out.verdict));
  out.signature = sig.h;
  return out;
}

}  // namespace secddr::fuzz
