#include "fuzz/campaign.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>

namespace secddr::fuzz {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* s = std::getenv(name);
  if (!s || !*s) return fallback;
  return std::strcmp(s, "0") != 0;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

CampaignOptions CampaignOptions::from_env() {
  CampaignOptions o;
  if (const char* s = std::getenv("SECDDR_FUZZ_TRIALS"))
    o.trials = std::strtoull(s, nullptr, 10);
  if (const char* s = std::getenv("SECDDR_FUZZ_SEED"))
    o.seed = std::strtoull(s, nullptr, 0);
  if (const char* s = std::getenv("SECDDR_FUZZ_JOBS"))
    o.jobs = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
  if (o.jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    o.jobs = hw ? hw : 1u;
  }
  if (const char* s = std::getenv("SECDDR_FUZZ_PROFILES")) o.profile_filter = s;
  o.exec.timing_leg = env_flag("SECDDR_FUZZ_SIM", false);
  o.exec.event_driven = env_flag("SECDDR_FUZZ_EVENT_DRIVEN", true);
  if (const char* s = std::getenv("SECDDR_MEM_THREADS"))
    o.exec.mem_threads =
        std::max(1u, static_cast<unsigned>(std::strtoul(s, nullptr, 10)));
  if (const char* s = std::getenv("SECDDR_FUZZ_SAVE_DIR")) o.save_dir = s;
  return o;
}

Campaign::Campaign(const CampaignOptions& opts) : opts_(opts) {
  for (unsigned p = 0; p < kProfileCount; ++p) {
    const std::string name = profile(p).name;
    if (opts_.profile_filter.empty() ||
        name.find(opts_.profile_filter) != std::string::npos)
      profiles_.push_back(p);
  }
  if (profiles_.empty())  // a filter matching nothing means "all"
    for (unsigned p = 0; p < kProfileCount; ++p) profiles_.push_back(p);
}

CampaignResult Campaign::run() {
  CampaignResult res;
  std::ostringstream log;
  log << "secddr-fuzz campaign seed=" << hex64(opts_.seed)
      << " trials=" << opts_.trials << " profiles=";
  for (std::size_t i = 0; i < profiles_.size(); ++i)
    log << (i ? "," : "") << profile(profiles_[i]).name;
  log << "\n";

  Mutator mutator(opts_.seed);
  Corpus corpus;
  // One executor per worker slot (masters are per-profile and expensive
  // to attest; workers reuse theirs across batches). Slot 0 doubles as
  // the merge-thread executor for seeds and minimization.
  std::vector<std::unique_ptr<Executor>> workers;
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned jobs = opts_.jobs ? opts_.jobs : std::max(1u, hw);
  for (unsigned j = 0; j < jobs; ++j)
    workers.push_back(std::make_unique<Executor>(opts_.exec));
  Executor& merge_exec = *workers[0];

  const auto in_profiles = [&](unsigned p) {
    for (const unsigned q : profiles_)
      if (q == p) return true;
    return false;
  };

  std::uint64_t trial_no = 0;
  const auto merge_one = [&](const FuzzInput& in, const Outcome& o) {
    ++res.executions;
    ++res.verdicts[static_cast<std::size_t>(o.verdict)];
    if (corpus.add_if_new(in, o.signature))
      log << "new trial=" << trial_no << " profile=" << profile(in.profile).name
          << " verdict=" << to_string(o.verdict) << " sig=" << hex64(o.signature)
          << " faults=" << o.faults_fired << "\n";
    if (o.verdict == Verdict::kEscape) {
      EscapeReport rep;
      rep.trial = trial_no;
      rep.input = in;
      rep.outcome = o;
      rep.minimized = minimize(in, [&](const FuzzInput& t) {
        return merge_exec.run(t).verdict == Verdict::kEscape;
      });
      log << "ESCAPE trial=" << trial_no
          << " profile=" << profile(in.profile).name << " note=" << o.note
          << "\n  plan: ";
      for (const FaultOp& op : rep.minimized.plan)
        log << to_string(op.cls) << "@" << op.trigger << " ";
      log << "(" << rep.minimized.ops.size() << " ops after minimization)\n";
      if (!opts_.save_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts_.save_dir, ec);
        const std::string stem =
            opts_.save_dir + "/escape-" + std::to_string(trial_no);
        std::string err;
        if (!save_input(rep.input, stem, &err) ||
            !save_input(rep.minimized, stem + "-min", &err))
          log << "  (save failed: " << err << ")\n";
        else
          log << "  saved: " << stem << ".{fplan,strace}\n";
      }
      res.escapes.push_back(std::move(rep));
    }
    ++trial_no;
  };

  // Seed corpus first: the classic single-fault experiments.
  for (const FuzzInput& in : seed_corpus()) {
    if (!in_profiles(in.profile)) continue;
    merge_one(in, merge_exec.run(in));
  }
  log << "seeded corpus=" << corpus.size() << " coverage=" << corpus.coverage()
      << "\n";

  // Mutation loop. Batches are generated sequentially from the master
  // RNG against the corpus state at batch start, executed in parallel,
  // and merged in generation order — the batch size is FIXED (not a
  // function of jobs), so the campaign transcript is identical at any
  // worker count.
  constexpr std::size_t kBatch = 64;
  std::vector<FuzzInput> batch;
  std::vector<Outcome> outcomes;
  for (std::uint64_t done = 0; done < opts_.trials;) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBatch,
                                                         opts_.trials - done));
    batch.clear();
    for (std::size_t i = 0; i < n; ++i) {
      FuzzInput in;
      if (corpus.size() > 0 && mutator.rng().chance(0.85))
        in = corpus[mutator.rng().next_below(corpus.size())];
      else
        in = mutator.random_input();
      mutator.mutate(&in);
      if (!in_profiles(in.profile))
        in.profile = profiles_[mutator.rng().next_below(profiles_.size())];
      batch.push_back(std::move(in));
    }
    outcomes.assign(n, Outcome{});
    std::atomic<std::size_t> next{0};
    const unsigned nthreads =
        static_cast<unsigned>(std::min<std::size_t>(jobs, n));
    std::vector<std::thread> pool;
    for (unsigned j = 0; j < nthreads; ++j) {
      pool.emplace_back([&, j] {
        Executor& ex = *workers[j];
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1))
          outcomes[i] = ex.run(batch[i]);
      });
    }
    for (std::thread& t : pool) t.join();
    for (std::size_t i = 0; i < n; ++i) merge_one(batch[i], outcomes[i]);
    done += n;
  }

  res.corpus_size = corpus.size();
  res.coverage = corpus.coverage();
  log << "done executions=" << res.executions << " corpus=" << res.corpus_size
      << " coverage=" << res.coverage;
  static const char* kVerdictNames[] = {"harmless", "detected", "corrected",
                                        "accounted", "escape"};
  for (std::size_t v = 0; v < res.verdicts.size(); ++v)
    log << " " << kVerdictNames[v] << "=" << res.verdicts[v];
  log << "\n";
  res.log = log.str();
  return res;
}

Outcome replay_saved(const std::string& stem, const ExecutorOptions& exec) {
  FuzzInput in;
  std::string err;
  if (!load_input(stem, &in, &err)) {
    Outcome o;
    o.verdict = Verdict::kEscape;
    o.note = "unreplayable input: " + err;
    return o;
  }
  Executor ex(exec);
  return ex.run(in);
}

}  // namespace secddr::fuzz
