// Table II: AES engine power overhead of SecDDR's on-DIMM logic (§V-B).
#include <cstdio>

#include "analysis/power.h"
#include "common/stats.h"
#include "common/table.h"

using namespace secddr;

int main() {
  std::printf("=== Table II: AES engine power overhead ===\n\n");
  const analysis::AesPowerModel model;

  TablePrinter table({"Config", "AES units/ECC chip", "AES power (mW)",
                      "DRAM chip (mW)", "ECC chips/rank", "Overhead/rank"});
  for (const auto& row : model.table2()) {
    table.add_row({row.config, std::to_string(row.aes_units),
                   TablePrinter::num(row.aes_power_mw, 1),
                   TablePrinter::num(row.dram_chip_power_mw, 1),
                   std::to_string(row.ecc_chips_per_rank),
                   percent(row.overhead_per_rank)});
  }
  table.print();

  std::printf("\nArea estimate: %.2f mm^2 at 45nm with 3 AES engines "
              "(paper bound: < 1.5 mm^2)\n",
              model.total_area_mm2(3));
  const auto att = analysis::AesPowerModel::attestation_logic();
  std::printf("Attestation logic: EC multiplier %.4f mm^2 (%.1f mW at "
              "500MHz), SHA-256 %.4f mm^2 (%.1f mW) — powered off outside "
              "initialization.\n",
              att.multiplier_mm2, att.multiplier_mw_at_500mhz, att.sha_mm2,
              att.sha_mw_at_500mhz);
  std::printf("\nPaper reference: x4 = 2 units, 70.8mW, 2.1%%/rank; "
              "x8 = 3 units, 106.3mW, 2.3%%/rank; DDR5 x4 = 89.3mW, <5%%.\n");
  return 0;
}
