// Table II: AES engine power overhead of SecDDR's on-DIMM logic (§V-B).
//
// Exit-gated against the paper's published numbers: each row's engine
// count must match exactly, engine power must land within 0.5% of the
// paper's mW figure, and the per-rank overhead within 0.05 percentage
// points (the paper prints one decimal; DDR5 is only bounded "< 5%").
// The area estimate must stay under the paper's 1.5 mm^2 bound. Any
// deviation returns 1, so the `table2_power` CTest smoke pins the
// analytical model, not just its ability to print.
#include <cmath>
#include <cstdio>

#include "analysis/power.h"
#include "common/stats.h"
#include "common/table.h"

using namespace secddr;

namespace {

/// Paper-published expectations for one Table II row.
struct Expected {
  unsigned aes_units;
  double aes_power_mw;
  double overhead;  ///< fraction; < 0 means "bounded by |value|" (DDR5)
};

bool check_row(const analysis::PowerRow& row, const Expected& e) {
  bool ok = true;
  if (row.aes_units != e.aes_units) {
    std::fprintf(stderr, "FAIL: %s: %u AES units, paper says %u\n",
                 row.config.c_str(), row.aes_units, e.aes_units);
    ok = false;
  }
  if (std::fabs(row.aes_power_mw - e.aes_power_mw) >
      0.005 * e.aes_power_mw) {
    std::fprintf(stderr, "FAIL: %s: %.3f mW, paper says %.1f (0.5%% tol)\n",
                 row.config.c_str(), row.aes_power_mw, e.aes_power_mw);
    ok = false;
  }
  if (e.overhead >= 0) {
    if (std::fabs(row.overhead_per_rank - e.overhead) > 0.0005) {
      std::fprintf(stderr,
                   "FAIL: %s: overhead %.4f, paper says %.3f (+-0.0005)\n",
                   row.config.c_str(), row.overhead_per_rank, e.overhead);
      ok = false;
    }
  } else if (row.overhead_per_rank >= -e.overhead) {
    std::fprintf(stderr, "FAIL: %s: overhead %.4f exceeds paper bound %.2f\n",
                 row.config.c_str(), row.overhead_per_rank, -e.overhead);
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  std::printf("=== Table II: AES engine power overhead ===\n\n");
  const analysis::AesPowerModel model;

  TablePrinter table({"Config", "AES units/ECC chip", "AES power (mW)",
                      "DRAM chip (mW)", "ECC chips/rank", "Overhead/rank"});
  const auto rows = model.table2();
  for (const auto& row : rows) {
    table.add_row({row.config, std::to_string(row.aes_units),
                   TablePrinter::num(row.aes_power_mw, 1),
                   TablePrinter::num(row.dram_chip_power_mw, 1),
                   std::to_string(row.ecc_chips_per_rank),
                   percent(row.overhead_per_rank)});
  }
  table.print();

  std::printf("\nArea estimate: %.2f mm^2 at 45nm with 3 AES engines "
              "(paper bound: < 1.5 mm^2)\n",
              model.total_area_mm2(3));
  const auto att = analysis::AesPowerModel::attestation_logic();
  std::printf("Attestation logic: EC multiplier %.4f mm^2 (%.1f mW at "
              "500MHz), SHA-256 %.4f mm^2 (%.1f mW) — powered off outside "
              "initialization.\n",
              att.multiplier_mm2, att.multiplier_mw_at_500mhz, att.sha_mm2,
              att.sha_mw_at_500mhz);
  std::printf("\nPaper reference: x4 = 2 units, 70.8mW, 2.1%%/rank; "
              "x8 = 3 units, 106.3mW, 2.3%%/rank; DDR5 x4 = 89.3mW, <5%%.\n");

  // --- paper gate -------------------------------------------------------
  const Expected expected[] = {
      {2, 70.8, 0.021},   // x4 DDR4-3200
      {3, 106.3, 0.023},  // x8 DDR4-3200
      {3, 89.3, -0.05},   // x4 DDR5 (overhead only bounded "< 5%")
  };
  bool ok = true;
  if (rows.size() != 3) {
    std::fprintf(stderr, "FAIL: table2() returned %zu rows, expected 3\n",
                 rows.size());
    ok = false;
  } else {
    for (std::size_t i = 0; i < rows.size(); ++i)
      ok = check_row(rows[i], expected[i]) && ok;
  }
  if (model.total_area_mm2(3) >= 1.5) {
    std::fprintf(stderr, "FAIL: area %.3f mm^2 >= paper bound 1.5\n",
                 model.total_area_mm2(3));
    ok = false;
  }
  if (!ok) return 1;
  std::printf("\nall rows within paper tolerances\n");
  return 0;
}
