// Parallel sweep runner for the figure/table reproduction binaries.
//
// A sweep is an ordered list of independent (workload, security config,
// timings) points. Each point builds its own sim::System, so points can run
// concurrently on a worker pool; results are merged back in input order, so
// the output is byte-identical to a serial run regardless of worker count.
//
// Environment knobs (in addition to the ones in harness.h):
//   SECDDR_JOBS  worker threads for sweeps (default: hardware concurrency;
//                1 forces the serial in-thread path)
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "harness.h"

namespace secddr::bench {

/// One independent simulation point of a sweep.
struct SweepPoint {
  workloads::WorkloadDesc workload;
  secmem::SecurityParams security;
  dram::Timings timings = dram::Timings::ddr4_3200();
};

// (sweep_jobs() lives in harness.h so the SECDDR_MEM_THREADS clamp can
// share it.)

/// Runs `fn(0) .. fn(n-1)` on a pool of `jobs` threads. `jobs <= 1` runs
/// everything on the calling thread. Indices are handed out atomically, so
/// callers must make `fn` write only to per-index slots. The first exception
/// thrown by any worker is rethrown on the calling thread once all workers
/// have drained.
void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& fn);

/// Maps `fn` over [0, n) on the worker pool and returns the results in
/// index order. For sweeps whose points need knobs beyond SweepPoint
/// (scheduler policy, prefetcher, cache sizes, ...).
template <typename Fn>
auto sweep_map(std::size_t n, Fn&& fn, unsigned jobs = 0) {
  using T = decltype(fn(std::size_t{0}));
  static_assert(!std::is_same_v<T, bool>,
                "std::vector<bool> packs bits; concurrent per-index writes "
                "would race — return an int or struct instead");
  if (jobs == 0) jobs = sweep_jobs();
  std::vector<T> out(n);
  parallel_for(n, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Runs every point of the sweep (in parallel when `jobs != 1`) and returns
/// the results in input order. `jobs == 0` means sweep_jobs().
std::vector<sim::RunResult> run_sweep(const std::vector<SweepPoint>& points,
                                      const BenchOptions& opt,
                                      unsigned jobs = 0);

/// Convenience: total IPC of every point, in input order.
std::vector<double> run_sweep_ipc(const std::vector<SweepPoint>& points,
                                  const BenchOptions& opt, unsigned jobs = 0);

/// Builds the cross product workloads x configs (workload-major, matching
/// the serial two-level loop the figure binaries used), applying the
/// harness name filter. Point i*configs.size()+j is workload i, config j
/// among the *selected* workloads.
std::vector<SweepPoint> cross_sweep(
    const std::vector<workloads::WorkloadDesc>& suite,
    const std::vector<secmem::SecurityParams>& configs,
    const BenchOptions& opt);

}  // namespace secddr::bench
