// Figure 6: normalized performance (total IPC) of the five main
// configurations across the SPEC2017/GAPBS suite, normalized to the
// Intel-TDX-like baseline (64-ary counter tree + counter-mode encryption).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

int main() {
  bench::print_header(
      "Figure 6: normalized IPC vs Intel-TDX-like baseline (tree64+ctr)");
  const BenchOptions opt = BenchOptions::from_env();

  const std::vector<std::pair<std::string, SecurityParams>> configs = {
      {"IntegrityTree64", SecurityParams::baseline_tree_ctr()},
      {"SecDDR+CTR", SecurityParams::secddr_ctr()},
      {"Encrypt-only,CTR", SecurityParams::encrypt_only_ctr()},
      {"SecDDR+XTS", SecurityParams::secddr_xts()},
      {"Encrypt-only,XTS", SecurityParams::encrypt_only_xts()},
  };

  TablePrinter table({"workload", "tree64 (base)", "secddr+ctr", "enc-ctr",
                      "secddr+xts", "enc-xts"});
  std::map<std::string, std::vector<double>> normalized;  // config -> values
  std::map<std::string, std::vector<double>> normalized_mi;
  std::map<std::string, double> anecdotes;  // secddr+ctr speedup per workload

  std::vector<secmem::SecurityParams> params;
  for (const auto& [name, sec] : configs) params.push_back(sec);
  const auto points = bench::cross_sweep(workloads::suite(), params, opt);
  const std::vector<double> all_ipc = bench::run_sweep_ipc(points, opt);

  for (std::size_t p = 0; p < points.size(); p += configs.size()) {
    const auto& w = points[p].workload;
    const std::vector<double> ipc(all_ipc.begin() + p,
                                  all_ipc.begin() + p + configs.size());
    const double base = ipc[0];

    std::vector<std::string> row = {w.name, "1.000"};
    for (std::size_t i = 1; i < ipc.size(); ++i) {
      const double norm = ipc[i] / base;
      row.push_back(TablePrinter::num(norm, 3));
      normalized[configs[i].first].push_back(norm);
      if (w.memory_intensive)
        normalized_mi[configs[i].first].push_back(norm);
    }
    anecdotes[w.name] = ipc[1] / base - 1.0;
    table.add_row(row);
    std::fflush(stdout);
  }

  // Geomean rows.
  std::vector<std::string> gm_all = {"gmean - all", "1.000"};
  std::vector<std::string> gm_mi = {"gmean - mem. int.", "1.000"};
  for (std::size_t i = 1; i < configs.size(); ++i) {
    gm_all.push_back(TablePrinter::num(geomean(normalized[configs[i].first]), 3));
    gm_mi.push_back(TablePrinter::num(geomean(normalized_mi[configs[i].first]), 3));
  }
  table.add_row(gm_mi);
  table.add_row(gm_all);
  table.print();

  std::printf("\nHeadline comparisons (paper Section V-A):\n");
  std::printf("  SecDDR+CTR vs tree64 (gmean, all):     measured %+.1f%%   "
              "paper +9.6%%\n",
              (geomean(normalized["SecDDR+CTR"]) - 1.0) * 100);
  std::printf("  SecDDR+CTR vs tree64 (mem-intensive):  measured %+.1f%%   "
              "paper +18.0%%\n",
              (geomean(normalized_mi["SecDDR+CTR"]) - 1.0) * 100);
  std::printf("  SecDDR+XTS vs tree64 (gmean, all):     measured %+.1f%%   "
              "paper +18.8%%\n",
              (geomean(normalized["SecDDR+XTS"]) - 1.0) * 100);
  std::printf("  SecDDR+XTS vs tree64 (mem-intensive):  measured %+.1f%%   "
              "paper +37.7%%\n",
              (geomean(normalized_mi["SecDDR+XTS"]) - 1.0) * 100);
  const double ctr_gap = geomean(normalized["SecDDR+CTR"]) /
                         geomean(normalized["Encrypt-only,CTR"]);
  const double xts_gap = geomean(normalized["SecDDR+XTS"]) /
                         geomean(normalized["Encrypt-only,XTS"]);
  std::printf("  SecDDR+CTR vs encrypt-only CTR:        measured %+.1f%%   "
              "paper within 3%%\n",
              (ctr_gap - 1.0) * 100);
  std::printf("  SecDDR+XTS vs encrypt-only XTS:        measured %+.1f%%   "
              "paper within 1%%\n",
              (xts_gap - 1.0) * 100);

  std::printf("\nPer-workload SecDDR+CTR speedups the paper calls out:\n");
  const std::map<std::string, double> paper = {
      {"pr", 0.647}, {"bc", 0.512}, {"sssp", 0.494},
      {"omnetpp", 0.359}, {"xz", 0.215}, {"lbm", -0.016}};
  for (const auto& [name, pval] : paper) {
    if (anecdotes.count(name))
      std::printf("  %-8s measured %+6.1f%%   paper %+6.1f%%\n", name.c_str(),
                  anecdotes[name] * 100, pval * 100);
  }
  return 0;
}
