// Table I: configuration parameters of the simulated system.
#include <cstdio>

#include "common/table.h"
#include "dram/timings.h"
#include "secmem/params.h"
#include "sim/memory_system.h"
#include "sim/system.h"

using namespace secddr;

int main() {
  std::printf("=== Table I: Configuration Parameters ===\n\n");
  const sim::SystemConfig cfg;
  const dram::Timings t = cfg.timings;

  TablePrinter table({"Component", "Configuration"});
  table.add_row({"Core", "6-wide retire, 224-entry ROB, 3.2GHz, 4 cores "
                         "(trace-driven OoO approximation)"});
  table.add_row({"L1 Cache", "Private 32KB, 64B line, 4-way"});
  table.add_row({"Last Level Cache", "Shared 4MB, 64B line, 16-way"});
  table.add_row({"Prefetcher", "Stream prefetcher (degree 2, distance 4)"});
  table.add_row({"Metadata Cache", "Shared 128KB, 64B line, 8-way"});
  table.add_row({"Security Mechanisms",
                 "40 processor-cycles encryption and MAC"});
  table.add_row({"Main Memory",
                 "16GB DRAM, 1 channel, 2 ranks, 4 bank-groups, 16 banks, "
                 "8Gb x8; 64 read / 64 write queue entries"});
  {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s at %.0fMHz; tCL/tCCDS/tCCDL/tCWL/tWTRS/tWTRL/tRP/tRCD/"
                  "tRAS = %u/%u/%u/%u/%u/%u/%u/%u/%u cycles",
                  t.name.c_str(), t.clock_mhz, t.tCL, t.tCCD_S, t.tCCD_L,
                  t.tCWL, t.tWTR_S, t.tWTR_L, t.tRP, t.tRCD, t.tRAS);
    table.add_row({"Memory Timings", buf});
  }
  table.print();

  std::printf("\nPaper reference (Table I): tCL/tCCDS/tCCDL/tCWL/tWTRS/tWTRL/"
              "tRP/tRCD/tRAS = 22/4/10/16/4/12/22/22/56 at DDR4-3200.\n");
  return 0;
}
