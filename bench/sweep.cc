#include "sweep.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace secddr::bench {

void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (jobs > n) jobs = static_cast<unsigned>(n);

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // drain remaining work
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

std::vector<sim::RunResult> run_sweep(const std::vector<SweepPoint>& points,
                                      const BenchOptions& opt, unsigned jobs) {
  if (jobs == 0) jobs = sweep_jobs();
  std::vector<sim::RunResult> results(points.size());
  parallel_for(points.size(), jobs, [&](std::size_t i) {
    results[i] =
        run_workload(points[i].workload, points[i].security, opt,
                     points[i].timings);
  });
  return results;
}

std::vector<double> run_sweep_ipc(const std::vector<SweepPoint>& points,
                                  const BenchOptions& opt, unsigned jobs) {
  const std::vector<sim::RunResult> results = run_sweep(points, opt, jobs);
  std::vector<double> ipc;
  ipc.reserve(results.size());
  for (const auto& r : results) ipc.push_back(r.total_ipc);
  return ipc;
}

std::vector<SweepPoint> cross_sweep(
    const std::vector<workloads::WorkloadDesc>& suite,
    const std::vector<secmem::SecurityParams>& configs,
    const BenchOptions& opt) {
  std::vector<SweepPoint> points;
  points.reserve(suite.size() * configs.size());
  for (const auto& w : suite) {
    if (!opt.selected(w.name)) continue;
    for (const auto& sec : configs) points.push_back(SweepPoint{w, sec});
  }
  return points;
}

}  // namespace secddr::bench
