// Figure 8: sensitivity to integrity-tree arity and counter packing.
// Nine configurations in three groups (8 / 64 / 128 counters per line),
// each with {integrity tree, SecDDR+CTR, encrypt-only CTR}; the 8-ary
// group's tree is the hash-based Merkle tree over MACs (usable with
// AES-XTS, MACs gathered in memory). All bars are geomeans normalized to
// encrypt-only AES-XTS = 1.00.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

int main() {
  bench::print_header("Figure 8: tree-arity / counter-packing sensitivity");
  const BenchOptions opt = BenchOptions::from_env();

  struct Bar {
    std::string group;
    std::string name;
    SecurityParams sec;
    double paper;
  };
  const std::vector<Bar> bars = {
      {"8 cnt/line", "8-ary hash tree (XTS)", SecurityParams::hash_tree8_xts(), 0.61},
      {"8 cnt/line", "SecDDR", SecurityParams::secddr_ctr(8), 0.86},
      {"8 cnt/line", "Encrypt-only", SecurityParams::encrypt_only_ctr(8), 0.88},
      {"64 cnt/line", "64-ary tree", SecurityParams::baseline_tree_ctr(64, 64), 0.84},
      {"64 cnt/line", "SecDDR", SecurityParams::secddr_ctr(64), 0.92},
      {"64 cnt/line", "Encrypt-only", SecurityParams::encrypt_only_ctr(64), 0.94},
      {"128 cnt/line", "128-ary tree", SecurityParams::baseline_tree_ctr(128, 128), 0.86},
      {"128 cnt/line", "SecDDR", SecurityParams::secddr_ctr(128), 0.92},
      {"128 cnt/line", "Encrypt-only", SecurityParams::encrypt_only_ctr(128), 0.94},
  };

  // One flat sweep: the encrypt-only XTS reference per workload, then every
  // bar x workload point, all run on the worker pool at once.
  std::vector<workloads::WorkloadDesc> selected;
  for (const auto& w : workloads::suite())
    if (opt.selected(w.name)) selected.push_back(w);

  std::vector<bench::SweepPoint> points;
  for (const auto& w : selected)
    points.push_back({w, SecurityParams::encrypt_only_xts()});
  for (const auto& bar : bars)
    for (const auto& w : selected) points.push_back({w, bar.sec});
  const std::vector<double> ipc = bench::run_sweep_ipc(points, opt);
  const std::vector<double> ref(ipc.begin(), ipc.begin() + selected.size());

  TablePrinter table({"group", "config", "normalized IPC (gmean)", "paper"});
  std::vector<double> bar_values;
  for (std::size_t b = 0; b < bars.size(); ++b) {
    const auto& bar = bars[b];
    std::vector<double> normalized;
    for (std::size_t i = 0; i < selected.size(); ++i)
      normalized.push_back(ipc[(b + 1) * selected.size() + i] / ref[i]);
    const double gm = geomean(normalized);
    bar_values.push_back(gm);
    table.add_row({bar.group, bar.name, TablePrinter::num(gm, 2),
                   TablePrinter::num(bar.paper, 2)});
    std::fflush(stdout);
  }
  table.print();

  std::printf("\nKey orderings (paper Section V-A):\n");
  std::printf("  8-ary hash tree is the worst bar:       %s\n",
              bar_values[0] < bar_values[3] && bar_values[0] < bar_values[6]
                  ? "reproduced"
                  : "NOT reproduced");
  std::printf("  SecDDR beats the tree in every group:   %s\n",
              bar_values[1] > bar_values[0] && bar_values[4] > bar_values[3] &&
                      bar_values[7] > bar_values[6]
                  ? "reproduced"
                  : "NOT reproduced");
  std::printf("  64 vs 128 packing similar (random 4KB paging): "
              "measured %.3f vs %.3f (paper 0.92 vs 0.92)\n",
              bar_values[4], bar_values[7]);
  return 0;
}
