// Figure 7: metadata cache behaviour under the tree64+ctr baseline —
// LLC MPKI and metadata-cache miss rate per workload. Doubles as the
// calibration check for the synthetic workload suite.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;

int main() {
  bench::print_header("Figure 7: metadata cache behaviour (baseline config)");
  const BenchOptions opt = BenchOptions::from_env();

  TablePrinter table({"workload", "LLC MPKI (measured)", "MPKI (target)",
                      "metadata miss rate", "metadata accesses"});
  const auto points = bench::cross_sweep(
      workloads::suite(), {secmem::SecurityParams::baseline_tree_ctr()}, opt);
  const auto results = bench::run_sweep(points, opt);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& w = points[i].workload;
    const auto& r = results[i];
    table.add_row({w.name, TablePrinter::num(r.llc_mpki, 1),
                   TablePrinter::num(w.mpki, 1),
                   percent(r.metadata_miss_rate),
                   std::to_string(r.metadata_accesses)});
  }
  table.print();

  std::printf("\nPaper reference: random-access workloads (mcf, omnetpp, "
              "xz, graph kernels) show high metadata miss rates; callouts "
              "mcf 150.1, lbm 56.7, sssp 50.5 MPKI.\n");
  return 0;
}
