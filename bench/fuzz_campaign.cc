// Coverage-guided adversarial campaign runner (ISSUE 6 tentpole driver).
//
//   ./fuzz_campaign                 run SECDDR_FUZZ_TRIALS mutated
//                                   executions (default 10000) and write
//                                   BENCH_fuzz.json; exit 1 on any escape
//   ./fuzz_campaign --emit-regress DIR
//                                   regenerate the checked-in regression
//                                   inputs (tests/regress/) from their
//                                   canonical definitions
//
// All knobs are environment variables — see src/fuzz/campaign.h. The
// campaign seed is printed first so any failure reproduces exactly:
//     SECDDR_FUZZ_SEED=<seed> ./fuzz_campaign
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "fuzz/campaign.h"
#include "fuzz/corpus.h"

using namespace secddr;

namespace {

/// The canonical escape inputs of the PR 6 bugfix sweep. Each one was
/// found by the campaign against the pre-fix engine, minimized, and
/// pinned under tests/regress/; regress_replay_test replays the
/// checked-in copies and fuzz_campaign --emit-regress regenerates them.
struct RegressDef {
  const char* name;
  fuzz::FuzzInput input;
};

std::vector<RegressDef> regress_defs() {
  using fuzz::FaultClass;
  const auto ops = [](std::initializer_list<sim::TraceRecord> l) {
    return std::vector<sim::TraceRecord>(l);
  };
  std::vector<RegressDef> defs;
  // Masked ALERT_n + corrupted write: the device rejects the burst; a
  // man-in-the-middle hides the alert. Pre-fix, the device consumed the
  // write counter anyway, so the channel stayed synchronized and the
  // later read returned the STALE line with a valid MAC — silent.
  defs.push_back({"mask_alert_stale",
                  {0,
                   {{FaultClass::kFlipWriteData, 2, 5, 0},
                    {FaultClass::kMaskAlert, 1, 0, 0}},
                   ops({{0, true, 0x0}, {0, true, 0x0}, {0, false, 0x0}})}});
  // Dropped write + forged-write injection: dropping a write desyncs the
  // counters (controller ahead by one write); pre-fix, an injected forged
  // burst — rejected by eWCRC — still consumed a device counter and
  // RE-SYNCHRONIZED the channel, turning the next read into a silent
  // stale-data acceptance.
  defs.push_back({"drop_inject_resync",
                  {0,
                   {{FaultClass::kDropWrite, 2, 0, 0},
                    {FaultClass::kInjectForgedWrite, 1, 9, 0}},
                   ops({{0, true, 0x0}, {0, true, 0x0}, {0, false, 0x0}})}});
  // CTR-mode rejected write: encrypt bumped the per-line write counter
  // before the outcome was known; pre-fix, an alerting write left the
  // line undecryptable — the next read verified (MAC covers ciphertext)
  // but returned keystream garbage as plaintext.
  defs.push_back({"ctr_alert_garble",
                  {1,
                   {{FaultClass::kFlipWriteData, 2, 3, 0}},
                   ops({{0, true, 0x0}, {0, true, 0x0}, {0, false, 0x0}})}});
  return defs;
}

int emit_regress(const std::string& dir) {
  int rc = 0;
  for (const RegressDef& d : regress_defs()) {
    std::string err;
    if (fuzz::save_input(d.input, dir + "/" + d.name, &err)) {
      std::printf("wrote %s/%s.{fplan,strace}\n", dir.c_str(), d.name);
    } else {
      std::fprintf(stderr, "FAILED %s: %s\n", d.name, err.c_str());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--emit-regress") == 0)
    return emit_regress(argv[2]);
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--emit-regress DIR]\n", argv[0]);
    return 2;
  }

  const fuzz::CampaignOptions opts = fuzz::CampaignOptions::from_env();
  std::printf("=== SecDDR adversarial fuzz campaign ===\n");
  std::printf("seed=0x%llx trials=%llu jobs=%u timing_leg=%d\n",
              static_cast<unsigned long long>(opts.seed),
              static_cast<unsigned long long>(opts.trials), opts.jobs,
              opts.exec.timing_leg ? 1 : 0);
  std::fflush(stdout);

  fuzz::Campaign campaign(opts);
  const auto t0 = std::chrono::steady_clock::now();
  const fuzz::CampaignResult res = campaign.run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double execs_per_sec = secs > 0 ? res.executions / secs : 0;

  std::fputs(res.log.c_str(), stdout);
  std::printf("\n%llu executions in %.2fs (%.0f execs/sec)\n",
              static_cast<unsigned long long>(res.executions), secs,
              execs_per_sec);
  std::printf("corpus=%zu coverage=%zu escapes=%zu\n", res.corpus_size,
              res.coverage, res.escapes.size());

  // Machine-checkable trajectory record (ROADMAP: BENCH_*.json series).
  const char* json_path = std::getenv("SECDDR_FUZZ_JSON");
  if (!json_path) json_path = "BENCH_fuzz.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fuzz_campaign\",\n"
                 "  \"seed\": %llu,\n"
                 "  \"executions\": %llu,\n"
                 "  \"execs_per_sec\": %.1f,\n"
                 "  \"corpus\": %zu,\n"
                 "  \"coverage\": %zu,\n"
                 "  \"harmless\": %llu,\n"
                 "  \"detected\": %llu,\n"
                 "  \"corrected\": %llu,\n"
                 "  \"accounted\": %llu,\n"
                 "  \"escapes\": %llu\n"
                 "}\n",
                 static_cast<unsigned long long>(opts.seed),
                 static_cast<unsigned long long>(res.executions),
                 execs_per_sec, res.corpus_size, res.coverage,
                 static_cast<unsigned long long>(res.verdicts[0]),
                 static_cast<unsigned long long>(res.verdicts[1]),
                 static_cast<unsigned long long>(res.verdicts[2]),
                 static_cast<unsigned long long>(res.verdicts[3]),
                 static_cast<unsigned long long>(res.verdicts[4]));
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  if (!res.clean()) {
    std::fprintf(stderr,
                 "\nFAIL: %zu undetected corruption(s); reproduce with "
                 "SECDDR_FUZZ_SEED=0x%llx\n",
                 res.escapes.size(),
                 static_cast<unsigned long long>(opts.seed));
    return 1;
  }
  std::printf("PASS: no undetected corruptions\n");
  return 0;
}
