// Simulation-loop speed: runs the fig6 sweep (suite x 5 security
// configurations) under both the tick-every-cycle and the event-driven
// loop and reports wall time, simulated core-cycles per second, and the
// speedup. The two runs must produce identical results (exit 1 if not),
// so this doubles as an end-to-end determinism check; the `perf` CTest
// smoke runs it with a bounded budget and no wall-time assertion.
//
// A channel-scaling section then re-runs the most memory-bound suite
// workload (mcf) at channels 1/2/4: the sharded backend must relieve the
// single-command-bus saturation (total IPC at every multi-channel point
// must not fall below the 1-channel baseline; exit 1 otherwise).
//
// A threaded-sweep section re-runs the fig6 sweep at 4 channels, serial
// vs fully threaded (mem_threads = channels, sweep jobs pinned to 1 so
// in-System threading is the only parallelism), with a bit-identity exit
// gate; epoch telemetry (mean window width = core cycles per barrier
// crossing) quantifies the epoch-decoupled backend.
//
// Every section's numbers are also written to a machine-checkable JSON
// file (BENCH_speed.json by default) so the perf trajectory is diffable
// per PR.
//
// Extra knobs:
//   SECDDR_SPEED_MODE=fast|slow   run only one loop (profiling one side)
//   SECDDR_SPEED_PER_POINT=1      per-sweep-point wall/cycle lines on stderr
//   SECDDR_SPEED_JSON=path        JSON output path ('' disables;
//                                 default BENCH_speed.json)
//   SECDDR_SPEED_GATE_THREADS=1   exit 1 unless the threaded 4-channel
//                                 sweep is at least as fast as serial
//                                 (opt-in: meaningless on 1-core hosts)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

namespace {

struct ModeResult {
  double wall_s = 0.0;
  std::uint64_t simulated_cycles = 0;  ///< measured-phase core cycles
  double total_ipc = 0.0;              ///< checksum across modes
  std::uint64_t epochs = 0;        ///< backend epochs dispatched (measured)
  std::uint64_t epoch_cycles = 0;  ///< core cycles those epochs covered
  std::uint64_t barrier_crossings = 0;  ///< epochs that woke the workers
};

/// Runs the sweep in one loop mode. `mem_threads` != 0 overrides the
/// per-System channel-thread count, `jobs` != 0 the sweep worker count.
ModeResult run_mode(const std::vector<bench::SweepPoint>& points,
                    const BenchOptions& opt, bool event_driven,
                    unsigned mem_threads = 0, unsigned jobs = 0) {
  const bool per_point = std::getenv("SECDDR_SPEED_PER_POINT") != nullptr;
  std::atomic<std::uint64_t> epochs{0}, epoch_cycles{0}, crossings{0};
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = bench::sweep_map(
      points.size(),
      [&](std::size_t i) -> sim::RunResult {
        const auto p0 = std::chrono::steady_clock::now();
        const auto traces =
            bench::make_trace_sources(points[i].workload, opt.cores);
        std::vector<sim::TraceSource*> ptrs;
        for (const auto& t : traces) ptrs.push_back(t.get());
        sim::SystemConfig cfg = bench::make_system_config(
            opt, points[i].security, points[i].timings);
        cfg.event_driven = event_driven;
        if (mem_threads != 0) cfg.mem_threads = mem_threads;
        sim::System sys(cfg, ptrs);
        auto r = sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
        epochs.fetch_add(sys.backend().dispatch_epochs(),
                         std::memory_order_relaxed);
        epoch_cycles.fetch_add(sys.backend().dispatch_cycles(),
                               std::memory_order_relaxed);
        crossings.fetch_add(sys.backend().barrier_crossings(),
                            std::memory_order_relaxed);
        if (per_point) {
          const double dt = std::chrono::duration<double>(
              std::chrono::steady_clock::now() - p0).count();
          std::fprintf(stderr, "point %zu %s mode=%d wall=%.3f cycles=%llu\n",
                       i, points[i].workload.name.c_str(), event_driven, dt,
                       (unsigned long long)r.cycles);
        }
        return r;
      },
      jobs);
  const auto t1 = std::chrono::steady_clock::now();
  ModeResult m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& r : results) {
    m.simulated_cycles += r.cycles;
    m.total_ipc += r.total_ipc;
  }
  m.epochs = epochs.load();
  m.epoch_cycles = epoch_cycles.load();
  m.barrier_crossings = crossings.load();
  return m;
}

std::vector<std::string> row_for(const char* name, const ModeResult& m) {
  return {name, TablePrinter::num(m.wall_s, 2),
          TablePrinter::num(static_cast<double>(m.simulated_cycles) / 1e6, 1),
          TablePrinter::num(static_cast<double>(m.simulated_cycles) / 1e6 /
                                (m.wall_s > 0 ? m.wall_s : 1e-9),
                            1)};
}

double mean_window(const ModeResult& m) {
  return m.epochs > 0 ? static_cast<double>(m.epoch_cycles) /
                            static_cast<double>(m.epochs)
                      : 0.0;
}

/// Minimal JSON assembly: every value this bench emits is a number, a
/// bool, or a C-identifier-ish name, so string building suffices.
struct JsonObject {
  std::string body;
  void field(const char* key, double v) {
    add(key, TablePrinter::num(v, 6));
  }
  void field(const char* key, std::uint64_t v) {
    add(key, std::to_string(v));
  }
  void field(const char* key, unsigned v) { add(key, std::to_string(v)); }
  void field(const char* key, bool v) { add(key, v ? "true" : "false"); }
  void field(const char* key, const std::string& v) {
    add(key, "\"" + v + "\"");
  }
  void raw(const char* key, const std::string& v) { add(key, v); }
  std::string done() const { return "{" + body + "}"; }

 private:
  void add(const char* key, const std::string& v) {
    if (!body.empty()) body += ",";
    body += "\"";
    body += key;
    body += "\":";
    body += v;
  }
};

JsonObject mode_json(const ModeResult& m) {
  JsonObject o;
  o.field("wall_s", m.wall_s);
  o.field("sim_cycles", m.simulated_cycles);
  o.field("total_ipc", m.total_ipc);
  o.field("epochs", m.epochs);
  o.field("mean_window_cycles", mean_window(m));
  o.field("barrier_crossings", m.barrier_crossings);
  return o;
}

}  // namespace

int main() {
  bench::print_header(
      "Simulation-loop speed: per-cycle vs event-driven (fig6 sweep)");
  const BenchOptions opt = BenchOptions::from_env();
  const char* mode_env = std::getenv("SECDDR_SPEED_MODE");
  const bool run_slow = !mode_env || std::strcmp(mode_env, "fast") != 0;
  const bool run_fast = !mode_env || std::strcmp(mode_env, "slow") != 0;

  const std::vector<SecurityParams> configs = {
      SecurityParams::baseline_tree_ctr(), SecurityParams::secddr_ctr(),
      SecurityParams::encrypt_only_ctr(), SecurityParams::secddr_xts(),
      SecurityParams::encrypt_only_xts(),
  };
  const auto points = bench::cross_sweep(workloads::suite(), configs, opt);
  std::printf("%zu sweep points, %u worker thread(s)\n\n", points.size(),
              bench::sweep_jobs());

  TablePrinter table({"loop", "wall [s]", "sim Mcycles", "Mcycles/s"});
  ModeResult slow, fast;
  if (run_slow) {
    slow = run_mode(points, opt, /*event_driven=*/false);
    table.add_row(row_for("per-cycle", slow));
  }
  if (run_fast) {
    fast = run_mode(points, opt, /*event_driven=*/true);
    table.add_row(row_for("event-driven", fast));
  }
  table.print();

  if (run_slow && run_fast) {
    if (slow.total_ipc != fast.total_ipc ||
        slow.simulated_cycles != fast.simulated_cycles) {
      std::fprintf(stderr,
                   "FAIL: loops disagree (ipc %.17g vs %.17g, cycles %llu vs "
                   "%llu)\n",
                   slow.total_ipc, fast.total_ipc,
                   static_cast<unsigned long long>(slow.simulated_cycles),
                   static_cast<unsigned long long>(fast.simulated_cycles));
      return 1;
    }
    std::printf("\nevent-driven speedup: %.2fx (identical results)\n",
                slow.wall_s / (fast.wall_s > 0 ? fast.wall_s : 1e-9));
  }

  // Channel scaling (fig6-style point): mcf, the suite's most memory-bound
  // workload, across the multi-channel backend. Each channel adds an
  // independent command/data bus and security engine, so total IPC must
  // not degrade as channels grow; at the paper's saturated 4-core config
  // it improves substantially.
  std::printf("\n=== Channel scaling: mcf x SecDDR-cnt, %u core(s) ===\n",
              opt.cores);
  TablePrinter chan_table(
      {"channels", "total IPC", "vs 1ch", "avg read lat [mem cyc]",
       "bus busy [cyc/chan]"});
  const auto* mcf = workloads::find("mcf");
  if (mcf == nullptr) {
    std::fprintf(stderr, "FAIL: workload 'mcf' missing from the suite\n");
    return 1;
  }
  double ipc_1ch = 0.0;
  unsigned regressed_at = 0;
  double regressed_ipc = 0.0;
  std::vector<std::string> chan_json;
  for (unsigned ch : {1u, 2u, 4u}) {
    BenchOptions copt = opt;
    copt.channels = ch;
    const sim::RunResult r =
        bench::run_workload(*mcf, SecurityParams::secddr_ctr(), copt);
    {
      JsonObject o;
      o.field("channels", ch);
      o.field("total_ipc", r.total_ipc);
      o.field("avg_read_latency_mem_cycles", r.dram.avg_read_latency());
      chan_json.push_back(o.done());
    }
    if (ch == 1) ipc_1ch = r.total_ipc;
    // Every multi-channel point must hold the 1-channel baseline, not
    // just the endpoint — a 2-channel-only regression must fail too.
    if (r.total_ipc < ipc_1ch && regressed_at == 0) {
      regressed_at = ch;
      regressed_ipc = r.total_ipc;
    }
    chan_table.add_row(
        {std::to_string(ch), TablePrinter::num(r.total_ipc, 3),
         TablePrinter::num(ipc_1ch > 0 ? r.total_ipc / ipc_1ch : 0.0, 2),
         TablePrinter::num(r.dram.avg_read_latency(), 1),
         TablePrinter::num(
             static_cast<double>(r.dram.data_bus_busy_cycles) / ch, 0)});
  }
  chan_table.print();
  if (regressed_at != 0) {
    std::fprintf(stderr,
                 "FAIL: %u-channel IPC %.4f below 1-channel IPC %.4f\n",
                 regressed_at, regressed_ipc, ipc_1ch);
    return 1;
  }

  // Scan cost: per-bank request queues organize controller entries so the
  // FR-FCFS issue scans visit O(active banks) records instead of walking
  // the global deques. "global-deque proxy" is the direction's queue
  // depth at each scan — exactly the entries the pre-per-bank scan
  // walked (its stamp dedup only cut repeat *timing checks*, not the
  // walk). Exit gate: per-bank scans must never visit more than the
  // global walk would have.
  std::printf("\n=== Issue-scan cost: entries visited per issued command "
              "===\n");
  TablePrinter scan_table({"workload", "commands", "per-bank [ent/cmd]",
                           "global-deque proxy [ent/cmd]", "reduction"});
  bool scan_regressed = false;
  for (const char* wl_name : {"mcf", "lbm", "omnetpp"}) {
    const auto* wl = workloads::find(wl_name);
    if (wl == nullptr) {
      std::fprintf(stderr, "FAIL: workload '%s' missing\n", wl_name);
      return 1;
    }
    const auto traces = bench::make_trace_sources(*wl, opt.cores);
    std::vector<sim::TraceSource*> ptrs;
    for (const auto& t : traces) ptrs.push_back(t.get());
    sim::System sys(bench::make_system_config(
                        opt, SecurityParams::secddr_ctr(),
                        dram::Timings::ddr4_3200()),
                    ptrs);
    sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
    dram::ScanStats ss;
    for (unsigned c = 0; c < sys.backend().channels(); ++c)
      ss += sys.backend().dram(c).scan_stats();
    if (ss.commands_issued == 0) continue;
    const double per_bank = static_cast<double>(ss.entries_visited) /
                            static_cast<double>(ss.commands_issued);
    const double global_proxy = static_cast<double>(ss.queue_depth_sum) /
                                static_cast<double>(ss.commands_issued);
    scan_table.add_row(
        {wl_name, std::to_string(ss.commands_issued),
         TablePrinter::num(per_bank, 1), TablePrinter::num(global_proxy, 1),
         TablePrinter::num(global_proxy / (per_bank > 0 ? per_bank : 1e-9),
                           2)});
    // Gate only when the queues are actually deep: per_bank additionally
    // counts index/rank records and FIFO-head walks, so on near-empty
    // queues (a couple of entries per scan) it can exceed the raw queue
    // depth even though the per-bank scan is strictly cheaper — the
    // comparison is only meaningful once depth dominates those constants.
    if (global_proxy >= 8.0 && per_bank > global_proxy) {
      std::fprintf(stderr,
                   "FAIL: %s per-bank scan visits %.1f entries/cmd, more "
                   "than the %.1f a global-deque walk would\n",
                   wl_name, per_bank, global_proxy);
      scan_regressed = true;
    }
  }
  scan_table.print();
  if (scan_regressed) return 1;

  // Thread scaling: SECDDR_MEM_THREADS ticks each channel's controller +
  // security engine on its own worker behind a fixed channel-order
  // aggregation barrier. The exit gate is bit-identity: a threaded run
  // must reproduce the serial RunResult exactly (wall clock is reported
  // for information — on a machine with fewer free cores than threads
  // the spin barrier can cost more than it buys; the harness clamps the
  // env knob for that reason, this table forces thread counts to
  // demonstrate identity).
  std::printf("\n=== Memory-thread scaling: mcf x SecDDR-cnt, %u core(s) "
              "===\n",
              opt.cores);
  TablePrinter thr_table({"channels", "mem threads", "wall [s]", "total IPC",
                          "identical"});
  bool thread_mismatch = false;
  std::vector<std::string> thread_json;
  for (unsigned ch : {1u, 2u, 4u}) {
    sim::RunResult serial;
    // 1 channel has nothing to thread; multi-channel runs serial + fully
    // threaded.
    const std::vector<unsigned> thread_counts =
        ch == 1u ? std::vector<unsigned>{1u} : std::vector<unsigned>{1u, ch};
    for (unsigned threads : thread_counts) {
      const auto traces = bench::make_trace_sources(*mcf, opt.cores);
      std::vector<sim::TraceSource*> ptrs;
      for (const auto& t : traces) ptrs.push_back(t.get());
      BenchOptions copt = opt;
      copt.channels = ch;
      sim::SystemConfig cfg = bench::make_system_config(
          copt, SecurityParams::secddr_ctr(), dram::Timings::ddr4_3200());
      cfg.mem_threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      sim::System sys(cfg, ptrs);
      const sim::RunResult r =
          sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      bool identical = true;
      if (threads == 1u) {
        serial = r;
      } else {
        identical = r.cycles == serial.cycles &&
                    r.total_ipc == serial.total_ipc &&
                    r.dram.reads_completed == serial.dram.reads_completed &&
                    r.dram.writes_completed == serial.dram.writes_completed &&
                    r.dram.total_read_latency ==
                        serial.dram.total_read_latency &&
                    r.engine.counter_fetches == serial.engine.counter_fetches;
        if (identical)
          for (std::size_t c = 0; c < r.dram_per_channel.size(); ++c)
            identical = identical &&
                        r.dram_per_channel[c].reads_completed ==
                            serial.dram_per_channel[c].reads_completed &&
                        r.dram_per_channel[c].total_read_latency ==
                            serial.dram_per_channel[c].total_read_latency;
        if (!identical) thread_mismatch = true;
      }
      thr_table.add_row({std::to_string(ch), std::to_string(threads),
                         TablePrinter::num(wall, 2),
                         TablePrinter::num(r.total_ipc, 3),
                         threads == 1u ? "-" : (identical ? "yes" : "NO")});
      {
        JsonObject o;
        o.field("channels", ch);
        o.field("mem_threads", threads);
        o.field("wall_s", wall);
        o.field("total_ipc", r.total_ipc);
        o.field("identical", identical);
        thread_json.push_back(o.done());
      }
    }
  }
  thr_table.print();
  if (thread_mismatch) {
    std::fprintf(stderr,
                 "FAIL: threaded memory backend diverged from the serial "
                 "RunResult\n");
    return 1;
  }

  // Epoch-decoupled threaded sweep: the full fig6 sweep at 4 channels,
  // serial vs mem_threads = 4, sweep jobs pinned to 1 so the in-System
  // channel threads are the only parallelism being measured. Bit-identity
  // is a hard gate; the wall-time gate (threaded at least as fast as
  // serial) is opt-in via SECDDR_SPEED_GATE_THREADS because it cannot
  // hold on hosts without free cores for the channel workers. The mean
  // epoch window (core cycles per barrier crossing) is the tentpole
  // metric: per-cycle barriers pin it to 1, the horizon-bounded windows
  // push it orders of magnitude up.
  std::printf("\n=== Epoch-decoupled sweep: fig6 x 4 channels, serial vs "
              "mem_threads=4 ===\n");
  BenchOptions topt = opt;
  topt.channels = 4;
  const auto tpoints = bench::cross_sweep(workloads::suite(), configs, topt);
  const ModeResult tserial =
      run_mode(tpoints, topt, /*event_driven=*/true, /*mem_threads=*/1,
               /*jobs=*/1);
  const ModeResult tthreaded =
      run_mode(tpoints, topt, /*event_driven=*/true, /*mem_threads=*/4,
               /*jobs=*/1);
  TablePrinter epoch_table({"mem threads", "wall [s]", "mean epoch [cyc]",
                            "epochs", "barrier crossings"});
  epoch_table.add_row({"1", TablePrinter::num(tserial.wall_s, 2),
                       TablePrinter::num(mean_window(tserial), 1),
                       std::to_string(tserial.epochs),
                       std::to_string(tserial.barrier_crossings)});
  epoch_table.add_row({"4", TablePrinter::num(tthreaded.wall_s, 2),
                       TablePrinter::num(mean_window(tthreaded), 1),
                       std::to_string(tthreaded.epochs),
                       std::to_string(tthreaded.barrier_crossings)});
  epoch_table.print();
  const bool sweep_identical =
      tserial.total_ipc == tthreaded.total_ipc &&
      tserial.simulated_cycles == tthreaded.simulated_cycles;
  const double thread_speedup =
      tthreaded.wall_s > 0 ? tserial.wall_s / tthreaded.wall_s : 0.0;
  std::printf("threaded speedup: %.2fx (%s)\n", thread_speedup,
              sweep_identical ? "identical results" : "RESULTS DIVERGED");
  if (!sweep_identical) {
    std::fprintf(stderr,
                 "FAIL: threaded 4-channel sweep diverged from serial "
                 "(ipc %.17g vs %.17g, cycles %llu vs %llu)\n",
                 tserial.total_ipc, tthreaded.total_ipc,
                 static_cast<unsigned long long>(tserial.simulated_cycles),
                 static_cast<unsigned long long>(tthreaded.simulated_cycles));
    return 1;
  }
  const bool gate_threads =
      std::getenv("SECDDR_SPEED_GATE_THREADS") != nullptr &&
      std::strcmp(std::getenv("SECDDR_SPEED_GATE_THREADS"), "0") != 0;
  if (gate_threads && tthreaded.wall_s > tserial.wall_s) {
    std::fprintf(stderr,
                 "FAIL: threaded sweep slower than serial (%.2fs vs %.2fs) "
                 "with SECDDR_SPEED_GATE_THREADS set\n",
                 tthreaded.wall_s, tserial.wall_s);
    return 1;
  }

  // Machine-checkable perf trajectory (see file comment).
  const char* json_env = std::getenv("SECDDR_SPEED_JSON");
  const std::string json_path = json_env ? json_env : "BENCH_speed.json";
  if (!json_path.empty()) {
    JsonObject root;
    root.field("bench", std::string("speed"));
    root.field("instructions", opt.instructions);
    root.field("warmup", opt.warmup);
    root.field("cores", opt.cores);
    root.field("sweep_points", static_cast<std::uint64_t>(points.size()));
    root.field("hardware_concurrency",
               static_cast<unsigned>(std::thread::hardware_concurrency()));
    if (run_slow && run_fast) {
      JsonObject loop;
      loop.raw("per_cycle", mode_json(slow).done());
      loop.raw("event_driven", mode_json(fast).done());
      loop.field("speedup", fast.wall_s > 0 ? slow.wall_s / fast.wall_s : 0.0);
      root.raw("loop", loop.done());
    }
    std::string chans = "[";
    for (std::size_t i = 0; i < chan_json.size(); ++i)
      chans += (i ? "," : "") + chan_json[i];
    root.raw("channel_scaling", chans + "]");
    std::string thr = "[";
    for (std::size_t i = 0; i < thread_json.size(); ++i)
      thr += (i ? "," : "") + thread_json[i];
    root.raw("thread_scaling", thr + "]");
    JsonObject sweep;
    sweep.field("channels", 4u);
    sweep.raw("serial", mode_json(tserial).done());
    sweep.raw("threaded", mode_json(tthreaded).done());
    sweep.field("speedup", thread_speedup);
    sweep.field("identical", sweep_identical);
    root.raw("threaded_sweep", sweep.done());
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      const std::string out = root.done();
      std::fprintf(f, "%s\n", out.c_str());
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "WARN: could not write %s\n", json_path.c_str());
    }
  }
  return 0;
}
