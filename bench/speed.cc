// Simulation-loop speed: runs the fig6 sweep (suite x 5 security
// configurations) under both the tick-every-cycle and the event-driven
// loop and reports wall time, simulated core-cycles per second, and the
// speedup. The two runs must produce identical results (exit 1 if not),
// so this doubles as an end-to-end determinism check; the `perf` CTest
// smoke runs it with a bounded budget and no wall-time assertion.
//
// Extra knobs:
//   SECDDR_SPEED_MODE=fast|slow   run only one loop (profiling one side)
//   SECDDR_SPEED_PER_POINT=1      per-sweep-point wall/cycle lines on stderr
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

namespace {

struct ModeResult {
  double wall_s = 0.0;
  std::uint64_t simulated_cycles = 0;  ///< measured-phase core cycles
  double total_ipc = 0.0;              ///< checksum across modes
};

ModeResult run_mode(const std::vector<bench::SweepPoint>& points,
                    const BenchOptions& opt, bool event_driven) {
  const bool per_point = std::getenv("SECDDR_SPEED_PER_POINT") != nullptr;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results =
      bench::sweep_map(points.size(), [&](std::size_t i) -> sim::RunResult {
        const auto p0 = std::chrono::steady_clock::now();
        const auto traces = bench::make_traces(points[i].workload, opt.cores);
        std::vector<sim::TraceSource*> ptrs;
        for (const auto& t : traces) ptrs.push_back(t.get());
        sim::SystemConfig cfg = bench::make_system_config(
            opt, points[i].security, points[i].timings);
        cfg.event_driven = event_driven;
        sim::System sys(cfg, ptrs);
        auto r = sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
        if (per_point) {
          const double dt = std::chrono::duration<double>(
              std::chrono::steady_clock::now() - p0).count();
          std::fprintf(stderr, "point %zu %s mode=%d wall=%.3f cycles=%llu\n",
                       i, points[i].workload.name.c_str(), event_driven, dt,
                       (unsigned long long)r.cycles);
        }
        return r;
      });
  const auto t1 = std::chrono::steady_clock::now();
  ModeResult m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& r : results) {
    m.simulated_cycles += r.cycles;
    m.total_ipc += r.total_ipc;
  }
  return m;
}

std::vector<std::string> row_for(const char* name, const ModeResult& m) {
  return {name, TablePrinter::num(m.wall_s, 2),
          TablePrinter::num(static_cast<double>(m.simulated_cycles) / 1e6, 1),
          TablePrinter::num(static_cast<double>(m.simulated_cycles) / 1e6 /
                                (m.wall_s > 0 ? m.wall_s : 1e-9),
                            1)};
}

}  // namespace

int main() {
  bench::print_header(
      "Simulation-loop speed: per-cycle vs event-driven (fig6 sweep)");
  const BenchOptions opt = BenchOptions::from_env();
  const char* mode_env = std::getenv("SECDDR_SPEED_MODE");
  const bool run_slow = !mode_env || std::strcmp(mode_env, "fast") != 0;
  const bool run_fast = !mode_env || std::strcmp(mode_env, "slow") != 0;

  const std::vector<SecurityParams> configs = {
      SecurityParams::baseline_tree_ctr(), SecurityParams::secddr_ctr(),
      SecurityParams::encrypt_only_ctr(), SecurityParams::secddr_xts(),
      SecurityParams::encrypt_only_xts(),
  };
  const auto points = bench::cross_sweep(workloads::suite(), configs, opt);
  std::printf("%zu sweep points, %u worker thread(s)\n\n", points.size(),
              bench::sweep_jobs());

  TablePrinter table({"loop", "wall [s]", "sim Mcycles", "Mcycles/s"});
  ModeResult slow, fast;
  if (run_slow) {
    slow = run_mode(points, opt, /*event_driven=*/false);
    table.add_row(row_for("per-cycle", slow));
  }
  if (run_fast) {
    fast = run_mode(points, opt, /*event_driven=*/true);
    table.add_row(row_for("event-driven", fast));
  }
  table.print();

  if (run_slow && run_fast) {
    if (slow.total_ipc != fast.total_ipc ||
        slow.simulated_cycles != fast.simulated_cycles) {
      std::fprintf(stderr,
                   "FAIL: loops disagree (ipc %.17g vs %.17g, cycles %llu vs "
                   "%llu)\n",
                   slow.total_ipc, fast.total_ipc,
                   static_cast<unsigned long long>(slow.simulated_cycles),
                   static_cast<unsigned long long>(fast.simulated_cycles));
      return 1;
    }
    std::printf("\nevent-driven speedup: %.2fx (identical results)\n",
                slow.wall_s / (fast.wall_s > 0 ? fast.wall_s : 1e-9));
  }
  return 0;
}
