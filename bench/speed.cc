// Simulation-loop speed: runs the fig6 sweep (suite x 5 security
// configurations) under both the tick-every-cycle and the event-driven
// loop and reports wall time, simulated core-cycles per second, and the
// speedup. The two runs must produce identical results (exit 1 if not),
// so this doubles as an end-to-end determinism check; the `perf` CTest
// smoke runs it with a bounded budget and no wall-time assertion.
//
// A channel-scaling section then re-runs the most memory-bound suite
// workload (mcf) at channels 1/2/4: the sharded backend must relieve the
// single-command-bus saturation (total IPC at every multi-channel point
// must not fall below the 1-channel baseline; exit 1 otherwise).
//
// Extra knobs:
//   SECDDR_SPEED_MODE=fast|slow   run only one loop (profiling one side)
//   SECDDR_SPEED_PER_POINT=1      per-sweep-point wall/cycle lines on stderr
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

namespace {

struct ModeResult {
  double wall_s = 0.0;
  std::uint64_t simulated_cycles = 0;  ///< measured-phase core cycles
  double total_ipc = 0.0;              ///< checksum across modes
};

ModeResult run_mode(const std::vector<bench::SweepPoint>& points,
                    const BenchOptions& opt, bool event_driven) {
  const bool per_point = std::getenv("SECDDR_SPEED_PER_POINT") != nullptr;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results =
      bench::sweep_map(points.size(), [&](std::size_t i) -> sim::RunResult {
        const auto p0 = std::chrono::steady_clock::now();
        const auto traces =
            bench::make_trace_sources(points[i].workload, opt.cores);
        std::vector<sim::TraceSource*> ptrs;
        for (const auto& t : traces) ptrs.push_back(t.get());
        sim::SystemConfig cfg = bench::make_system_config(
            opt, points[i].security, points[i].timings);
        cfg.event_driven = event_driven;
        sim::System sys(cfg, ptrs);
        auto r = sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
        if (per_point) {
          const double dt = std::chrono::duration<double>(
              std::chrono::steady_clock::now() - p0).count();
          std::fprintf(stderr, "point %zu %s mode=%d wall=%.3f cycles=%llu\n",
                       i, points[i].workload.name.c_str(), event_driven, dt,
                       (unsigned long long)r.cycles);
        }
        return r;
      });
  const auto t1 = std::chrono::steady_clock::now();
  ModeResult m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& r : results) {
    m.simulated_cycles += r.cycles;
    m.total_ipc += r.total_ipc;
  }
  return m;
}

std::vector<std::string> row_for(const char* name, const ModeResult& m) {
  return {name, TablePrinter::num(m.wall_s, 2),
          TablePrinter::num(static_cast<double>(m.simulated_cycles) / 1e6, 1),
          TablePrinter::num(static_cast<double>(m.simulated_cycles) / 1e6 /
                                (m.wall_s > 0 ? m.wall_s : 1e-9),
                            1)};
}

}  // namespace

int main() {
  bench::print_header(
      "Simulation-loop speed: per-cycle vs event-driven (fig6 sweep)");
  const BenchOptions opt = BenchOptions::from_env();
  const char* mode_env = std::getenv("SECDDR_SPEED_MODE");
  const bool run_slow = !mode_env || std::strcmp(mode_env, "fast") != 0;
  const bool run_fast = !mode_env || std::strcmp(mode_env, "slow") != 0;

  const std::vector<SecurityParams> configs = {
      SecurityParams::baseline_tree_ctr(), SecurityParams::secddr_ctr(),
      SecurityParams::encrypt_only_ctr(), SecurityParams::secddr_xts(),
      SecurityParams::encrypt_only_xts(),
  };
  const auto points = bench::cross_sweep(workloads::suite(), configs, opt);
  std::printf("%zu sweep points, %u worker thread(s)\n\n", points.size(),
              bench::sweep_jobs());

  TablePrinter table({"loop", "wall [s]", "sim Mcycles", "Mcycles/s"});
  ModeResult slow, fast;
  if (run_slow) {
    slow = run_mode(points, opt, /*event_driven=*/false);
    table.add_row(row_for("per-cycle", slow));
  }
  if (run_fast) {
    fast = run_mode(points, opt, /*event_driven=*/true);
    table.add_row(row_for("event-driven", fast));
  }
  table.print();

  if (run_slow && run_fast) {
    if (slow.total_ipc != fast.total_ipc ||
        slow.simulated_cycles != fast.simulated_cycles) {
      std::fprintf(stderr,
                   "FAIL: loops disagree (ipc %.17g vs %.17g, cycles %llu vs "
                   "%llu)\n",
                   slow.total_ipc, fast.total_ipc,
                   static_cast<unsigned long long>(slow.simulated_cycles),
                   static_cast<unsigned long long>(fast.simulated_cycles));
      return 1;
    }
    std::printf("\nevent-driven speedup: %.2fx (identical results)\n",
                slow.wall_s / (fast.wall_s > 0 ? fast.wall_s : 1e-9));
  }

  // Channel scaling (fig6-style point): mcf, the suite's most memory-bound
  // workload, across the multi-channel backend. Each channel adds an
  // independent command/data bus and security engine, so total IPC must
  // not degrade as channels grow; at the paper's saturated 4-core config
  // it improves substantially.
  std::printf("\n=== Channel scaling: mcf x SecDDR-cnt, %u core(s) ===\n",
              opt.cores);
  TablePrinter chan_table(
      {"channels", "total IPC", "vs 1ch", "avg read lat [mem cyc]",
       "bus busy [cyc/chan]"});
  const auto* mcf = workloads::find("mcf");
  if (mcf == nullptr) {
    std::fprintf(stderr, "FAIL: workload 'mcf' missing from the suite\n");
    return 1;
  }
  double ipc_1ch = 0.0;
  unsigned regressed_at = 0;
  double regressed_ipc = 0.0;
  for (unsigned ch : {1u, 2u, 4u}) {
    BenchOptions copt = opt;
    copt.channels = ch;
    const sim::RunResult r =
        bench::run_workload(*mcf, SecurityParams::secddr_ctr(), copt);
    if (ch == 1) ipc_1ch = r.total_ipc;
    // Every multi-channel point must hold the 1-channel baseline, not
    // just the endpoint — a 2-channel-only regression must fail too.
    if (r.total_ipc < ipc_1ch && regressed_at == 0) {
      regressed_at = ch;
      regressed_ipc = r.total_ipc;
    }
    chan_table.add_row(
        {std::to_string(ch), TablePrinter::num(r.total_ipc, 3),
         TablePrinter::num(ipc_1ch > 0 ? r.total_ipc / ipc_1ch : 0.0, 2),
         TablePrinter::num(r.dram.avg_read_latency(), 1),
         TablePrinter::num(
             static_cast<double>(r.dram.data_bus_busy_cycles) / ch, 0)});
  }
  chan_table.print();
  if (regressed_at != 0) {
    std::fprintf(stderr,
                 "FAIL: %u-channel IPC %.4f below 1-channel IPC %.4f\n",
                 regressed_at, regressed_ipc, ipc_1ch);
    return 1;
  }

  // Scan cost: per-bank request queues organize controller entries so the
  // FR-FCFS issue scans visit O(active banks) records instead of walking
  // the global deques. "global-deque proxy" is the direction's queue
  // depth at each scan — exactly the entries the pre-per-bank scan
  // walked (its stamp dedup only cut repeat *timing checks*, not the
  // walk). Exit gate: per-bank scans must never visit more than the
  // global walk would have.
  std::printf("\n=== Issue-scan cost: entries visited per issued command "
              "===\n");
  TablePrinter scan_table({"workload", "commands", "per-bank [ent/cmd]",
                           "global-deque proxy [ent/cmd]", "reduction"});
  bool scan_regressed = false;
  for (const char* wl_name : {"mcf", "lbm", "omnetpp"}) {
    const auto* wl = workloads::find(wl_name);
    if (wl == nullptr) {
      std::fprintf(stderr, "FAIL: workload '%s' missing\n", wl_name);
      return 1;
    }
    const auto traces = bench::make_trace_sources(*wl, opt.cores);
    std::vector<sim::TraceSource*> ptrs;
    for (const auto& t : traces) ptrs.push_back(t.get());
    sim::System sys(bench::make_system_config(
                        opt, SecurityParams::secddr_ctr(),
                        dram::Timings::ddr4_3200()),
                    ptrs);
    sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
    dram::ScanStats ss;
    for (unsigned c = 0; c < sys.backend().channels(); ++c)
      ss += sys.backend().dram(c).scan_stats();
    if (ss.commands_issued == 0) continue;
    const double per_bank = static_cast<double>(ss.entries_visited) /
                            static_cast<double>(ss.commands_issued);
    const double global_proxy = static_cast<double>(ss.queue_depth_sum) /
                                static_cast<double>(ss.commands_issued);
    scan_table.add_row(
        {wl_name, std::to_string(ss.commands_issued),
         TablePrinter::num(per_bank, 1), TablePrinter::num(global_proxy, 1),
         TablePrinter::num(global_proxy / (per_bank > 0 ? per_bank : 1e-9),
                           2)});
    // Gate only when the queues are actually deep: per_bank additionally
    // counts index/rank records and FIFO-head walks, so on near-empty
    // queues (a couple of entries per scan) it can exceed the raw queue
    // depth even though the per-bank scan is strictly cheaper — the
    // comparison is only meaningful once depth dominates those constants.
    if (global_proxy >= 8.0 && per_bank > global_proxy) {
      std::fprintf(stderr,
                   "FAIL: %s per-bank scan visits %.1f entries/cmd, more "
                   "than the %.1f a global-deque walk would\n",
                   wl_name, per_bank, global_proxy);
      scan_regressed = true;
    }
  }
  scan_table.print();
  if (scan_regressed) return 1;

  // Thread scaling: SECDDR_MEM_THREADS ticks each channel's controller +
  // security engine on its own worker behind a fixed channel-order
  // aggregation barrier. The exit gate is bit-identity: a threaded run
  // must reproduce the serial RunResult exactly (wall clock is reported
  // for information — on a machine with fewer free cores than threads
  // the spin barrier can cost more than it buys; the harness clamps the
  // env knob for that reason, this table forces thread counts to
  // demonstrate identity).
  std::printf("\n=== Memory-thread scaling: mcf x SecDDR-cnt, %u core(s) "
              "===\n",
              opt.cores);
  TablePrinter thr_table({"channels", "mem threads", "wall [s]", "total IPC",
                          "identical"});
  bool thread_mismatch = false;
  for (unsigned ch : {1u, 2u, 4u}) {
    sim::RunResult serial;
    // 1 channel has nothing to thread; multi-channel runs serial + fully
    // threaded.
    const std::vector<unsigned> thread_counts =
        ch == 1u ? std::vector<unsigned>{1u} : std::vector<unsigned>{1u, ch};
    for (unsigned threads : thread_counts) {
      const auto traces = bench::make_trace_sources(*mcf, opt.cores);
      std::vector<sim::TraceSource*> ptrs;
      for (const auto& t : traces) ptrs.push_back(t.get());
      BenchOptions copt = opt;
      copt.channels = ch;
      sim::SystemConfig cfg = bench::make_system_config(
          copt, SecurityParams::secddr_ctr(), dram::Timings::ddr4_3200());
      cfg.mem_threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      sim::System sys(cfg, ptrs);
      const sim::RunResult r =
          sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      bool identical = true;
      if (threads == 1u) {
        serial = r;
      } else {
        identical = r.cycles == serial.cycles &&
                    r.total_ipc == serial.total_ipc &&
                    r.dram.reads_completed == serial.dram.reads_completed &&
                    r.dram.writes_completed == serial.dram.writes_completed &&
                    r.dram.total_read_latency ==
                        serial.dram.total_read_latency &&
                    r.engine.counter_fetches == serial.engine.counter_fetches;
        if (identical)
          for (std::size_t c = 0; c < r.dram_per_channel.size(); ++c)
            identical = identical &&
                        r.dram_per_channel[c].reads_completed ==
                            serial.dram_per_channel[c].reads_completed &&
                        r.dram_per_channel[c].total_read_latency ==
                            serial.dram_per_channel[c].total_read_latency;
        if (!identical) thread_mismatch = true;
      }
      thr_table.add_row({std::to_string(ch), std::to_string(threads),
                         TablePrinter::num(wall, 2),
                         TablePrinter::num(r.total_ipc, 3),
                         threads == 1u ? "-" : (identical ? "yes" : "NO")});
    }
  }
  thr_table.print();
  if (thread_mismatch) {
    std::fprintf(stderr,
                 "FAIL: threaded memory backend diverged from the serial "
                 "RunResult\n");
    return 1;
  }
  return 0;
}
