// Figure 12: SecDDR vs InvisiMem under counter-mode encryption (64
// counters per line), normalized to the tree64+ctr baseline.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

int main() {
  bench::print_header("Figure 12: SecDDR vs InvisiMem (counter-mode)");
  const BenchOptions opt = BenchOptions::from_env();

  TablePrinter table({"workload", "invisimem-cnt@3200", "invisimem-cnt@2400",
                      "secddr+cnt", "enc-cnt"});
  std::map<std::string, std::vector<double>> norm, norm_mi;

  std::vector<bench::SweepPoint> points;
  for (const auto& w : workloads::suite()) {
    if (!opt.selected(w.name)) continue;
    points.push_back({w, SecurityParams::baseline_tree_ctr()});
    points.push_back(
        {w, SecurityParams::invisimem(secmem::Encryption::kCounterMode)});
    points.push_back(
        {w, SecurityParams::invisimem(secmem::Encryption::kCounterMode),
         dram::Timings::ddr4_2400()});
    points.push_back({w, SecurityParams::secddr_ctr()});
    points.push_back({w, SecurityParams::encrypt_only_ctr()});
  }
  const std::vector<double> ipc = bench::run_sweep_ipc(points, opt);

  for (std::size_t p = 0; p < points.size(); p += 5) {
    const auto& w = points[p].workload;
    const double base = ipc[p];
    const double inv_unreal = ipc[p + 1];
    const double inv_real = ipc[p + 2];
    const double secddr = ipc[p + 3];
    const double enc = ipc[p + 4];

    const std::vector<std::pair<std::string, double>> vals = {
        {"inv3200", inv_unreal / base},
        {"inv2400", inv_real / base},
        {"secddr", secddr / base},
        {"enc", enc / base}};
    std::vector<std::string> row = {w.name};
    for (const auto& [k, v] : vals) {
      row.push_back(TablePrinter::num(v, 3));
      norm[k].push_back(v);
      if (w.memory_intensive) norm_mi[k].push_back(v);
    }
    table.add_row(row);
  }
  std::vector<std::string> gm_mi = {"gmean - mem. int."};
  std::vector<std::string> gm = {"gmean - all"};
  for (const char* k : {"inv3200", "inv2400", "secddr", "enc"}) {
    gm_mi.push_back(TablePrinter::num(geomean(norm_mi[k]), 3));
    gm.push_back(TablePrinter::num(geomean(norm[k]), 3));
  }
  table.add_row(gm_mi);
  table.add_row(gm);
  table.print();

  std::printf("\nHeadline comparisons (paper Section VI-D):\n");
  std::printf("  SecDDR+CNT vs InvisiMem-unrealistic CNT: measured %+.1f%%   "
              "paper +9.4%%\n",
              (geomean(norm["secddr"]) / geomean(norm["inv3200"]) - 1.0) * 100);
  std::printf("  SecDDR+CNT vs InvisiMem-realistic CNT:   measured %+.1f%%   "
              "paper +16.6%%\n",
              (geomean(norm["secddr"]) / geomean(norm["inv2400"]) - 1.0) * 100);
  return 0;
}
