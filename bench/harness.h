// Shared harness for the figure/table reproduction binaries.
//
// Environment knobs (all optional):
//   SECDDR_INSTR        measured instructions per core (default 150000)
//   SECDDR_WARMUP       warmup instructions per core   (default 75000)
//   SECDDR_CORES        simulated cores                (default 4, Table I)
//   SECDDR_CHANNELS     DDR channels (power of two; default 1, Table I)
//   SECDDR_MEM_THREADS  per-channel memory tick threads inside each
//                       sim::System (default 1 = serial; results are
//                       bit-identical either way)
//   SECDDR_THREAD_PRIORITY  jobs|mem: which side of the
//                       jobs x mem_threads <= hardware clamp yields
//                       (default: mem when SECDDR_CHANNELS > 1)
//   SECDDR_FILTER       comma-free substring filter on workload names
//   SECDDR_TRACE_DIR    directory of recorded trace files (see
//                       trace_file_path); when every core of a workload
//                       has one, the sweep streams those instead of the
//                       synthetic generator
//
// Power/thermal knobs (all optional; see README "Power & thermal"):
//   SECDDR_THERMAL            1 enables per-channel energy + RC thermal
//                             accounting (0/unset = off, the default)
//   SECDDR_THERMAL_WINDOW     accounting window, memory cycles (1024)
//   SECDDR_THERMAL_R_MK       junction->ambient resistance, mK/W (4000)
//   SECDDR_THERMAL_C_NJ       node capacitance, nJ/K (100000000)
//   SECDDR_THERMAL_AMBIENT_MC ambient temperature, milli-C (45000)
//   SECDDR_THERMAL_THROTTLE   1 enables the thermal throttle policy
//   SECDDR_THERMAL_TRIP_MC    throttle trip point, milli-C (85000)
//   SECDDR_THERMAL_RELEASE_MC throttle release point, milli-C (83000)
//   SECDDR_THERMAL_PERIOD     throttled issue period, cycles (4)
//   SECDDR_THERMAL_REMAP      1 enables temperature-aware bank remapping
//
// Thread-knob interplay: SECDDR_JOBS parallelizes across sweep points
// (one System per worker) while SECDDR_MEM_THREADS parallelizes the
// channels inside each System, so a sweep can run jobs x mem_threads
// threads at once. The jobs x mem_threads <= hardware clamp picks a
// side via SECDDR_THREAD_PRIORITY:
//   jobs  clamp mem_threads to the share the sweep workers leave over
//         (whole independent Systems scale embarrassingly);
//   mem   clamp sweep jobs instead, keeping the in-System channel
//         threads (epoch-decoupled ticking makes them a real scaling
//         axis, and memory-bound points don't fill a machine with
//         Systems anyway).
// Default: mem when SECDDR_CHANNELS > 1 (there are channels to
// decouple), jobs otherwise.
//
// Every binary prints an aligned text table with the same rows/series as
// the paper's figure, plus the paper's headline numbers for comparison.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fleet/checkpoint.h"
#include "secmem/params.h"
#include "sim/stream_trace.h"
#include "sim/system.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr::bench {

/// Strict positive-decimal env parse (strtoul would wrap "-1" to
/// ULONG_MAX and stop at the 'x' in "2x" without complaint); `fallback`
/// on unset or malformed.
inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long v =
      (*s >= '0' && *s <= '9') ? std::strtoul(s, &end, 10) : 0;
  if (end && *end == '\0' && v >= 1) return static_cast<unsigned>(v);
  std::fprintf(stderr, "%s='%s' is not a positive integer; using default\n",
               name, s);
  return fallback;
}

/// Which side of the jobs x mem_threads <= hardware clamp yields (see
/// the header comment).
enum class ThreadPriority { kJobs, kMem };

inline ThreadPriority thread_priority() {
  if (const char* s = std::getenv("SECDDR_THREAD_PRIORITY")) {
    if (std::strcmp(s, "jobs") == 0) return ThreadPriority::kJobs;
    if (std::strcmp(s, "mem") == 0) return ThreadPriority::kMem;
    std::fprintf(stderr,
                 "SECDDR_THREAD_PRIORITY='%s' is not 'jobs' or 'mem'; "
                 "using default\n",
                 s);
  }
  return env_unsigned("SECDDR_CHANNELS", 1) > 1 ? ThreadPriority::kMem
                                                : ThreadPriority::kJobs;
}

/// Per-System channel tick threads actually usable: the backend clamps
/// SECDDR_MEM_THREADS to the channel count, so that is what a sweep job
/// costs in threads.
inline unsigned mem_threads_requested() {
  return std::min(env_unsigned("SECDDR_MEM_THREADS", 1),
                  env_unsigned("SECDDR_CHANNELS", 1));
}

/// Worker count for bench sweeps: SECDDR_JOBS if set, else hardware
/// concurrency — then clamped so jobs x mem_threads fits the hardware
/// when the mem side has priority. Lives here so the from_env()
/// mem_threads clamp below and the sweep runner share one parse.
inline unsigned sweep_jobs() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  unsigned jobs = env_unsigned("SECDDR_JOBS", hw);
  const unsigned mt = mem_threads_requested();
  if (thread_priority() == ThreadPriority::kMem && mt > 1) {
    const unsigned cap = std::max(1u, hw / mt);
    if (jobs > cap) {
      std::fprintf(stderr,
                   "SECDDR_JOBS=%u clamped to %u: mem_threads=%u has "
                   "priority (SECDDR_THREAD_PRIORITY) and jobs x "
                   "mem_threads exceeds hardware concurrency (%u)\n",
                   jobs, cap, mt, hw);
      jobs = cap;
    }
  }
  return jobs;
}

struct BenchOptions {
  std::uint64_t instructions = 150000;
  std::uint64_t warmup = 75000;
  unsigned cores = 4;
  unsigned channels = 1;
  unsigned mem_threads = 1;
  std::string filter;

  static BenchOptions from_env() {
    BenchOptions o;
    if (const char* s = std::getenv("SECDDR_INSTR")) o.instructions = std::strtoull(s, nullptr, 10);
    if (const char* s = std::getenv("SECDDR_WARMUP")) o.warmup = std::strtoull(s, nullptr, 10);
    if (const char* s = std::getenv("SECDDR_CORES")) o.cores = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    if (const char* s = std::getenv("SECDDR_CHANNELS")) o.channels = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    if (const char* s = std::getenv("SECDDR_MEM_THREADS")) o.mem_threads = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    if (const char* s = std::getenv("SECDDR_FILTER")) o.filter = s;
    // The channel selector needs a power-of-two count; fail loudly here
    // rather than routing addresses with a broken mask in Release builds
    // (where the selector's own assert is compiled out).
    if (o.channels == 0 || (o.channels & (o.channels - 1)) != 0) {
      std::fprintf(stderr, "SECDDR_CHANNELS=%u is not a power of two\n",
                   o.channels);
      std::exit(2);
    }
    if (o.mem_threads == 0) o.mem_threads = 1;
    // Oversubscription guard: sweep workers each build their own System,
    // so jobs x mem_threads barrier threads would thrash the machine.
    // Which side yields is the explicit SECDDR_THREAD_PRIORITY policy:
    // under mem priority sweep_jobs() clamps itself and mem_threads is
    // bounded only by the hardware; under jobs priority (and an explicit
    // SECDDR_JOBS) mem_threads is clamped to the share the sweep
    // workers leave over. Results are unaffected either way (threaded
    // ticking is bit-identical).
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    if (thread_priority() == ThreadPriority::kMem) {
      if (o.mem_threads > hw) {
        std::fprintf(stderr,
                     "SECDDR_MEM_THREADS=%u clamped to hardware "
                     "concurrency %u\n",
                     o.mem_threads, hw);
        o.mem_threads = hw;
      }
      return o;
    }
    const unsigned jobs =
        std::getenv("SECDDR_JOBS") != nullptr ? sweep_jobs() : 1;
    const unsigned max_mem_threads = std::max(1u, hw / std::max(1u, jobs));
    if (o.mem_threads > max_mem_threads) {
      std::fprintf(stderr,
                   "SECDDR_MEM_THREADS=%u clamped to %u: SECDDR_JOBS=%u x "
                   "mem_threads exceeds hardware concurrency (%u)\n",
                   o.mem_threads, max_mem_threads, jobs, hw);
      o.mem_threads = max_mem_threads;
    }
    return o;
  }

  bool selected(const std::string& name) const {
    return filter.empty() || name.find(filter) != std::string::npos;
  }
};

/// Power/thermal config from the SECDDR_THERMAL* environment knobs (see
/// the header comment). Disabled (all-default PowerConfig) unless
/// SECDDR_THERMAL is set to something other than "0".
inline dram::PowerConfig thermal_config_from_env() {
  dram::PowerConfig p;
  const char* on = std::getenv("SECDDR_THERMAL");
  if (on == nullptr || std::strcmp(on, "0") == 0) return p;
  const auto env_u64 = [](const char* name, std::uint64_t fallback) {
    const char* s = std::getenv(name);
    return s ? std::strtoull(s, nullptr, 10) : fallback;
  };
  const auto env_i64 = [](const char* name, std::int64_t fallback) {
    const char* s = std::getenv(name);
    return s ? std::strtoll(s, nullptr, 10) : fallback;
  };
  p.enabled = true;
  p.window_cycles = env_u64("SECDDR_THERMAL_WINDOW", p.window_cycles);
  p.thermal.r_mk_per_w = static_cast<std::uint32_t>(
      env_u64("SECDDR_THERMAL_R_MK", p.thermal.r_mk_per_w));
  p.thermal.c_nj_per_k = env_u64("SECDDR_THERMAL_C_NJ", p.thermal.c_nj_per_k);
  p.thermal.ambient_mc =
      env_i64("SECDDR_THERMAL_AMBIENT_MC", p.thermal.ambient_mc);
  p.throttle = env_u64("SECDDR_THERMAL_THROTTLE", 0) != 0;
  p.trip_mc = env_i64("SECDDR_THERMAL_TRIP_MC", p.trip_mc);
  p.release_mc = env_i64("SECDDR_THERMAL_RELEASE_MC", p.release_mc);
  p.throttle_period = env_u64("SECDDR_THERMAL_PERIOD", p.throttle_period);
  p.remap = env_u64("SECDDR_THERMAL_REMAP", 0) != 0;
  return p;
}

/// Address-space stride between cores' synthetic traces.
inline constexpr std::uint64_t kCoreStrideBytes = 2ull << 30;

/// Data-region size covering `cores` trace address spaces (at least the
/// paper's 8GB). Keeping data_bytes >= cores * stride is what makes every
/// trace address a valid input to the metadata layout.
inline std::uint64_t data_bytes_for(unsigned cores) {
  return std::max<std::uint64_t>(8ull << 30, kCoreStrideBytes * cores);
}

/// Recorded-trace file for core `core` of workload `name` under `dir` —
/// the naming the SECDDR_TRACE_DIR knob and bench/trace_smoke share.
inline std::string trace_file_path(const std::string& dir,
                                   const std::string& name, unsigned core) {
  return dir + "/" + name + ".core" + std::to_string(core) + ".strace";
}

/// Per-core trace sources for one workload: when SECDDR_TRACE_DIR holds
/// a recorded file for every core (trace_file_path naming; binary or
/// legacy text, dispatched on magic), those files are streamed in loop
/// mode so short recordings can feed long simulations. Any missing file
/// falls the whole workload back to the synthetic generator, so a trace
/// directory can cover just part of the suite.
inline std::vector<std::unique_ptr<sim::TraceSource>> make_trace_sources(
    const workloads::WorkloadDesc& desc, unsigned cores) {
  std::vector<std::unique_ptr<sim::TraceSource>> out;
  if (const char* dir = std::getenv("SECDDR_TRACE_DIR")) {
    bool complete = true;
    for (unsigned c = 0; c < cores && complete; ++c) {
      auto src = sim::open_trace_if_present(
          trace_file_path(dir, desc.name, c), /*loop=*/true);
      if (src)
        out.push_back(std::move(src));
      else
        complete = false;  // missing file: synthetic fallback below
    }
    if (complete) return out;
    out.clear();
  }
  for (unsigned c = 0; c < cores; ++c)
    out.push_back(
        std::make_unique<workloads::SyntheticTrace>(desc, c, kCoreStrideBytes));
  return out;
}

/// Table I system configuration for a bench run. Keeps the paper's 2:1
/// capacity:data headroom when SECDDR_CORES grows the data region past the
/// default 16GB module (rows stay a power of two). SECDDR_CHANNELS shards
/// the same total capacity across that many channel slices, each with its
/// own controller and security engine.
inline sim::SystemConfig make_system_config(const BenchOptions& opt,
                                            const secmem::SecurityParams& sec,
                                            dram::Timings timings) {
  sim::SystemConfig cfg;
  cfg.mem.cores = opt.cores;
  cfg.security = sec;
  cfg.timings = timings;
  cfg.data_bytes = data_bytes_for(opt.cores);
  cfg.geometry.channels = opt.channels;
  cfg.mem_threads = opt.mem_threads;
  cfg.power = thermal_config_from_env();
  // Total capacity scales with channels, so shrink the per-channel rows
  // first, then grow until the 2:1 headroom holds again.
  while (cfg.geometry.rows_per_bank > 1 &&
         cfg.geometry.capacity_bytes() / 2 >= 2 * cfg.data_bytes)
    cfg.geometry.rows_per_bank /= 2;
  while (cfg.geometry.capacity_bytes() < 2 * cfg.data_bytes)
    cfg.geometry.rows_per_bank *= 2;
  return cfg;
}

/// Runs one workload (replicated rate-style across cores) under one
/// security configuration and returns the full result.
///
/// Warm-start knob: SECDDR_WARM_CHECKPOINT=<dir> records the post-warmup
/// state of each (workload, config) pair the first time it runs and
/// restores it on every later run of the same pair, skipping the warmup
/// simulation entirely. Keyed by workload name + System::config_hash(),
/// so sweep points that differ only in loop mode or thread count share
/// one warm image; checkpoint/restore is bit-identical to uninterrupted
/// execution, so measured stats match a cold run bit-for-bit (the fleet
/// test battery asserts this). An unusable file (corrupt, or left by a
/// different config) is discarded and re-recorded from a cold run.
inline sim::RunResult run_workload(const workloads::WorkloadDesc& desc,
                                   const secmem::SecurityParams& sec,
                                   const BenchOptions& opt,
                                   dram::Timings timings =
                                       dram::Timings::ddr4_3200()) {
  const auto traces = make_trace_sources(desc, opt.cores);
  std::vector<sim::TraceSource*> ptrs;
  for (const auto& t : traces) ptrs.push_back(t.get());
  sim::System sys(make_system_config(opt, sec, timings), ptrs);

  const char* warm_dir = std::getenv("SECDDR_WARM_CHECKPOINT");
  if (warm_dir == nullptr || opt.warmup == 0)
    return sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);

  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(sys.config_hash()));
  const std::string path =
      std::string(warm_dir) + "/" + desc.name + "_" + hash + ".warm";

  sys.begin(opt.instructions, 4'000'000'000ull, opt.warmup);
  bool warm = false;
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    std::fclose(probe);
    try {
      fleet::checkpoint::restore_system_file(sys, path);
      warm = true;
    } catch (const std::exception& e) {
      // A partial restore can leave the System (and its traces) mid-
      // flight, so fall back to a complete rebuild, not just a re-begin.
      std::fprintf(stderr, "%s: unusable warm checkpoint (%s); running cold\n",
                   path.c_str(), e.what());
      std::remove(path.c_str());
      return run_workload(desc, sec, opt, timings);
    }
  }
  if (!warm) {
    // step() returns at the warmup -> measured boundary: exactly the
    // state every warm restore of this (workload, config) resumes from.
    if (sys.step(kNoEvent))
      fleet::checkpoint::save_system_file(sys, path);
  }
  while (sys.step(kNoEvent)) {
  }
  return sys.result();
}

/// Total-IPC convenience wrapper.
inline double run_ipc(const workloads::WorkloadDesc& desc,
                      const secmem::SecurityParams& sec,
                      const BenchOptions& opt,
                      dram::Timings timings = dram::Timings::ddr4_3200()) {
  return run_workload(desc, sec, opt, timings).total_ipc;
}

inline void print_header(const char* what) {
  std::printf("=== %s ===\n", what);
  const BenchOptions o = BenchOptions::from_env();
  std::printf(
      "(4-core rate traces; %llu measured + %llu warmup instructions/core;"
      " override via SECDDR_INSTR/SECDDR_WARMUP/SECDDR_CORES)\n\n",
      static_cast<unsigned long long>(o.instructions),
      static_cast<unsigned long long>(o.warmup));
}

}  // namespace secddr::bench
