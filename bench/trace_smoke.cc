// Record-and-replay smoke for the trace subsystem (bench_trace_smoke
// CTest): records per-core binary traces for two workloads into a temp
// directory, replays them through the parallel sweep runner via the
// SECDDR_TRACE_DIR knob, and exits non-zero unless every replayed
// RunResult is bit-identical to driving the same records from an
// in-memory VectorTrace.
//
// The recordings are made from a deliberately perturbed generator seed,
// so a silent fallback to the synthetic generator (e.g. a broken file
// lookup) cannot masquerade as a passing replay.
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness.h"
#include "sim/trace_codec.h"
#include "sweep.h"

namespace {

using namespace secddr;
using bench::BenchOptions;

/// Records one core's trace until it covers `instructions`, returning the
/// records (for the VectorTrace reference run) while streaming them to
/// `path` via TraceWriter.
std::vector<sim::TraceRecord> record_core(const workloads::WorkloadDesc& desc,
                                          unsigned core,
                                          std::uint64_t instructions,
                                          const std::string& path) {
  // Record from a perturbed seed: the sweep below runs the *stock*
  // descriptor, so if it silently fell back to the synthetic generator
  // instead of reading these files, its results could not match the
  // recorded-records reference and the gate would fire.
  workloads::WorkloadDesc recording = desc;
  recording.seed ^= 0x5eedu;
  workloads::SyntheticTrace src(recording, core, bench::kCoreStrideBytes);
  sim::TraceWriter writer(path, /*block_records=*/512);
  std::vector<sim::TraceRecord> records;
  std::uint64_t covered = 0;
  sim::TraceRecord r;
  while (covered < instructions && src.next(r)) {
    writer.append(r);
    records.push_back(r);
    covered += static_cast<std::uint64_t>(r.gap) + 1;
  }
  writer.close();
  return records;
}

bool identical(const sim::RunResult& a, const sim::RunResult& b) {
  if (a.cores.size() != b.cores.size()) return false;
  for (std::size_t i = 0; i < a.cores.size(); ++i)
    if (a.cores[i].instructions != b.cores[i].instructions ||
        a.cores[i].cycles != b.cores[i].cycles ||
        a.cores[i].loads != b.cores[i].loads ||
        a.cores[i].stores != b.cores[i].stores ||
        a.cores[i].load_stall_cycles != b.cores[i].load_stall_cycles)
      return false;
  return a.cycles == b.cycles && a.total_ipc == b.total_ipc &&
         a.mem.llc_demand_accesses == b.mem.llc_demand_accesses &&
         a.mem.llc_demand_misses == b.mem.llc_demand_misses &&
         a.mem.llc_writebacks == b.mem.llc_writebacks &&
         a.engine.data_reads == b.engine.data_reads &&
         a.engine.data_writes == b.engine.data_writes &&
         a.engine.counter_fetches == b.engine.counter_fetches &&
         a.dram.reads_completed == b.dram.reads_completed &&
         a.dram.writes_completed == b.dram.writes_completed &&
         a.dram.row_hits == b.dram.row_hits &&
         a.dram.activates == b.dram.activates &&
         a.dram.total_read_latency == b.dram.total_read_latency;
}

}  // namespace

int main() {
  const BenchOptions opt = BenchOptions::from_env();
  const auto sec = secmem::SecurityParams::secddr_ctr();

  std::vector<workloads::WorkloadDesc> descs;
  for (const char* name : {"mcf", "lbm"}) {
    const auto* w = workloads::find(name);
    if (!w) {
      std::fprintf(stderr, "unknown workload %s\n", name);
      return 1;
    }
    descs.push_back(*w);
  }

  char dir_template[] = "/tmp/secddr_trace_smoke.XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (!dir) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  // Record enough to cover warmup + measured budget on every core, so
  // neither the VectorTrace run nor the (looping) stream replay ever
  // exhausts its records.
  const std::uint64_t budget = opt.warmup + opt.instructions + 64;
  std::vector<std::vector<std::vector<sim::TraceRecord>>> recorded;  // [wl][core]
  std::printf("=== trace record + sweep replay smoke ===\n");
  for (const auto& d : descs) {
    auto& per_core = recorded.emplace_back();
    std::uint64_t records = 0;
    for (unsigned c = 0; c < opt.cores; ++c) {
      const std::string path = bench::trace_file_path(dir, d.name, c);
      per_core.push_back(record_core(d, c, budget, path));
      records += per_core.back().size();
    }
    std::printf("recorded %-10s %8" PRIu64 " records across %u cores\n",
                d.name.c_str(), records, opt.cores);
  }

  // Reference runs: the exact recorded records via VectorTrace, through
  // the same config the sweep runner will build.
  std::vector<sim::RunResult> reference;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    std::vector<sim::VectorTrace> traces;
    traces.reserve(opt.cores);
    for (unsigned c = 0; c < opt.cores; ++c)
      traces.emplace_back(recorded[i][c]);
    std::vector<sim::TraceSource*> ptrs;
    for (auto& t : traces) ptrs.push_back(&t);
    sim::System sys(
        bench::make_system_config(opt, sec, dram::Timings::ddr4_3200()), ptrs);
    reference.push_back(sys.run(opt.instructions, 4'000'000'000ull, opt.warmup));
  }

  // Replay: the sweep runner picks the recorded files up via the knob.
  setenv("SECDDR_TRACE_DIR", dir, 1);
  std::vector<bench::SweepPoint> points;
  for (const auto& d : descs) points.push_back({d, sec});
  const auto replayed = bench::run_sweep(points, opt);

  int rc = 0;
  std::printf("\n%-12s %10s %10s  %s\n", "workload", "vector", "replay",
              "bit-identical");
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const bool ok = identical(reference[i], replayed[i]);
    std::printf("%-12s %10.4f %10.4f  %s\n", descs[i].name.c_str(),
                reference[i].total_ipc, replayed[i].total_ipc,
                ok ? "yes" : "NO");
    if (!ok) rc = 1;
  }

  for (const auto& d : descs)
    for (unsigned c = 0; c < opt.cores; ++c)
      std::remove(bench::trace_file_path(dir, d.name, c).c_str());
  rmdir(dir);

  if (rc) std::fprintf(stderr, "\nFAIL: replayed sweep diverged\n");
  return rc;
}
