// Microbenchmarks of the crypto substrate (google-benchmark).
//
// These measure the software implementations; the simulator's 40-cycle
// crypto latencies (Table I) model hardware engines, not this code.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/types.h"
#include "core/emac.h"
#include "core/ewcrc.h"
#include "crypto/aes.h"
#include "crypto/aes_xts.h"
#include "crypto/bignum.h"
#include "crypto/cmac.h"
#include "crypto/crc.h"
#include "crypto/dh.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"

using namespace secddr;

static void BM_AesEncryptBlock(benchmark::State& state) {
  const crypto::Aes aes(crypto::Key128{1, 2, 3});
  crypto::Block b{};
  for (auto _ : state) {
    aes.encrypt_block(b);
    benchmark::DoNotOptimize(b);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

static void BM_XtsEncryptLine(benchmark::State& state) {
  const crypto::AesXts xts(crypto::Key128{1}, crypto::Key128{2});
  CacheLine line = CacheLine::filled(0x5A);
  std::uint64_t sector = 0;
  for (auto _ : state) {
    xts.encrypt(sector++, line.bytes.data(), line.bytes.size());
    benchmark::DoNotOptimize(line);
  }
  state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_XtsEncryptLine);

static void BM_CmacLineMac(benchmark::State& state) {
  const core::MacEngine mac(crypto::Key128{7});
  const CacheLine line = CacheLine::filled(0x3C);
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.compute(a += 64, line));
  }
  state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_CmacLineMac);

static void BM_EmacPad(benchmark::State& state) {
  core::EmacEngine e(crypto::Key128{9}, 0);
  std::uint64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.otp(c += 2));
  }
}
BENCHMARK(BM_EmacPad);

static void BM_EwcrcLine(benchmark::State& state) {
  const core::WriteAddress addr{0, 1, 2, 100, 7};
  const CacheLine line = CacheLine::filled(0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ewcrc_data_chips(addr, line));
  }
  state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_EwcrcLine);

static void BM_Sha256Line(benchmark::State& state) {
  const CacheLine line = CacheLine::filled(0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::sha256(line.bytes.data(), line.bytes.size()));
  }
  state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_Sha256Line);

static void BM_Crc16Line(benchmark::State& state) {
  const CacheLine line = CacheLine::filled(0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::crc16(line.bytes.data(), line.bytes.size()));
  }
  state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_Crc16Line);

static void BM_ModExp1536(benchmark::State& state) {
  const auto& g = crypto::DhGroup::modp1536();
  Xoshiro256 rng(1);
  const crypto::BigUInt x = crypto::BigUInt::random_below(rng, g.q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigUInt::mod_exp(g.g, x, g.p));
  }
}
BENCHMARK(BM_ModExp1536)->Unit(benchmark::kMillisecond);

static void BM_SchnorrSignVerify(benchmark::State& state) {
  const auto& g = crypto::DhGroup::modp1536();
  Xoshiro256 rng(2);
  const auto kp = crypto::schnorr_generate(g, rng);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  for (auto _ : state) {
    const auto sig = crypto::schnorr_sign(g, kp.priv, msg, rng);
    benchmark::DoNotOptimize(crypto::schnorr_verify(g, kp.pub, msg, sig));
  }
}
BENCHMARK(BM_SchnorrSignVerify)->Unit(benchmark::kMillisecond);
