// Ablation studies for the design choices DESIGN.md calls out:
//   (a) the eWCRC write-burst cost in isolation (SecDDR's only bandwidth
//       overhead; the lbm anecdote of §V-A),
//   (b) metadata-cache capacity vs the integrity tree's overhead,
//   (c) the stream prefetcher's contribution per pattern class,
//   (d) FR-FCFS vs strict FCFS scheduling,
//   (e) crypto-engine (MAC) latency sensitivity of SecDDR.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

namespace {

sim::RunResult run_custom(const workloads::WorkloadDesc& w,
                          const SecurityParams& sec, const BenchOptions& opt,
                          dram::Timings timings,
                          bool prefetch = true,
                          dram::SchedulingPolicy policy =
                              dram::SchedulingPolicy::kFrFcfs) {
  const auto traces = bench::make_trace_sources(w, opt.cores);
  std::vector<sim::TraceSource*> ptrs;
  for (const auto& t : traces) ptrs.push_back(t.get());
  sim::SystemConfig cfg = bench::make_system_config(opt, sec, timings);
  cfg.mem.prefetch = prefetch;
  cfg.scheduling = policy;
  sim::System sys(cfg, ptrs);
  return sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
}

}  // namespace

int main() {
  bench::print_header("Ablation studies");
  const BenchOptions opt = BenchOptions::from_env();

  // (a) eWCRC burst cost in isolation: SecDDR+XTS with BL8 vs BL10.
  {
    std::printf("--- (a) eWCRC write-burst cost (BL8 vs BL10), "
                "SecDDR+XTS ---\n");
    TablePrinter t({"workload", "write frac", "IPC bl8", "IPC bl10", "delta"});
    const std::vector<const char*> names = {"lbm", "bwaves", "pr", "povray"};
    const auto ipc = bench::sweep_map(names.size() * 2, [&](std::size_t i) {
      const auto& w = *workloads::find(names[i / 2]);
      SecurityParams sec = SecurityParams::secddr_xts();
      sec.ewcrc = (i % 2 == 1);  // timing knob only; security unchanged
      return run_custom(w, sec, opt, dram::Timings::ddr4_3200()).total_ipc;
    });
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto& w = *workloads::find(names[i]);
      const double bl8 = ipc[2 * i], bl10 = ipc[2 * i + 1];
      t.add_row({w.name, TablePrinter::num(w.write_frac, 2),
                 TablePrinter::num(bl8, 3), TablePrinter::num(bl10, 3),
                 percent(bl10 / bl8 - 1.0)});
    }
    t.print();
    std::printf("Paper: lbm is the only slowdown (-1.6%%) because it is "
                "write-intensive.\n\n");
  }

  // (b) Metadata cache capacity sweep under the 64-ary tree.
  {
    std::printf("--- (b) metadata cache capacity vs integrity-tree cost "
                "(omnetpp) ---\n");
    TablePrinter t({"metadata cache", "IPC", "meta miss rate",
                    "tree fetches / data read"});
    const auto& w = *workloads::find("omnetpp");
    const std::vector<unsigned> sizes = {32u, 64u, 128u, 256u, 512u, 1024u};
    const auto results = bench::sweep_map(sizes.size(), [&](std::size_t i) {
      SecurityParams sec = SecurityParams::baseline_tree_ctr();
      sec.metadata_cache_bytes = sizes[i] * 1024ull;
      return run_custom(w, sec, opt, dram::Timings::ddr4_3200());
    });
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      const double per_read =
          r.engine.data_reads
              ? static_cast<double>(r.engine.tree_node_fetches +
                                    r.engine.counter_fetches) /
                    static_cast<double>(r.engine.data_reads)
              : 0.0;
      t.add_row({std::to_string(sizes[i]) + "KB",
                 TablePrinter::num(r.total_ipc, 3),
                 percent(r.metadata_miss_rate),
                 TablePrinter::num(per_read, 2)});
    }
    t.print();
    std::printf("Growing the cache cannot fix the tree for random-access "
                "footprints (the paper's scalability argument).\n\n");
  }

  // (c) Prefetcher contribution per pattern class.
  {
    std::printf("--- (c) stream prefetcher on/off (encrypt-only XTS) ---\n");
    TablePrinter t({"workload", "pattern", "IPC off", "IPC on", "speedup"});
    const std::vector<const char*> names = {"lbm", "bwaves", "pr", "gcc"};
    const auto ipc = bench::sweep_map(names.size() * 2, [&](std::size_t i) {
      const auto& w = *workloads::find(names[i / 2]);
      return run_custom(w, SecurityParams::encrypt_only_xts(), opt,
                        dram::Timings::ddr4_3200(), /*prefetch=*/i % 2 == 1)
          .total_ipc;
    });
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto& w = *workloads::find(names[i]);
      const double off = ipc[2 * i], on = ipc[2 * i + 1];
      const char* pat = w.pattern == workloads::Pattern::kStreaming
                            ? "streaming"
                            : (w.pattern == workloads::Pattern::kRandom
                                   ? "random"
                                   : "mixed");
      t.add_row({w.name, pat, TablePrinter::num(off, 3),
                 TablePrinter::num(on, 3), percent(on / off - 1.0)});
    }
    t.print();
    std::printf("Streams benefit; random access is prefetch-immune.\n\n");
  }

  // (d) Scheduler policy.
  {
    std::printf("--- (d) FR-FCFS vs strict FCFS (SecDDR+XTS) ---\n");
    TablePrinter t({"workload", "IPC fcfs", "IPC fr-fcfs", "speedup",
                    "row-hit fcfs", "row-hit fr-fcfs"});
    const std::vector<const char*> names = {"mcf", "lbm"};
    const auto results = bench::sweep_map(names.size() * 2, [&](std::size_t i) {
      const auto& w = *workloads::find(names[i / 2]);
      return run_custom(w, SecurityParams::secddr_xts(), opt,
                        dram::Timings::ddr4_3200(), true,
                        i % 2 == 0 ? dram::SchedulingPolicy::kFcfs
                                   : dram::SchedulingPolicy::kFrFcfs);
    });
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto& fcfs = results[2 * i];
      const auto& fr = results[2 * i + 1];
      t.add_row({names[i], TablePrinter::num(fcfs.total_ipc, 3),
                 TablePrinter::num(fr.total_ipc, 3),
                 percent(fr.total_ipc / fcfs.total_ipc - 1.0),
                 percent(fcfs.dram.row_hit_rate()),
                 percent(fr.dram.row_hit_rate())});
    }
    t.print();
    std::printf("\n");
  }

  // (e) MAC-latency sensitivity: SecDDR hides it behind the DRAM access.
  {
    std::printf("--- (e) MAC latency sensitivity (SecDDR+XTS, mcf) ---\n");
    TablePrinter t({"MAC latency (cycles)", "IPC", "vs 40-cycle"});
    const auto& w = *workloads::find("mcf");
    const std::vector<unsigned> lats = {20u, 40u, 80u, 160u};
    const auto ipc = bench::sweep_map(lats.size(), [&](std::size_t i) {
      SecurityParams sec = SecurityParams::secddr_xts();
      sec.mac_latency = lats[i];
      sec.aes_latency = lats[i];
      return run_custom(w, sec, opt, dram::Timings::ddr4_3200()).total_ipc;
    });
    double base = 0;
    for (std::size_t i = 0; i < lats.size(); ++i) {
      if (lats[i] == 40) base = ipc[i];
      t.add_row({std::to_string(lats[i]), TablePrinter::num(ipc[i], 3),
                 base > 0 ? percent(ipc[i] / base - 1.0) : std::string("-")});
    }
    t.print();
    std::printf("SecDDR's read path tolerates slow crypto engines: the pad "
                "is precomputed and the MAC overlaps the fill.\n");
  }
  return 0;
}
