// Ablation studies for the design choices DESIGN.md calls out:
//   (a) the eWCRC write-burst cost in isolation (SecDDR's only bandwidth
//       overhead; the lbm anecdote of §V-A),
//   (b) metadata-cache capacity vs the integrity tree's overhead,
//   (c) the stream prefetcher's contribution per pattern class,
//   (d) FR-FCFS vs strict FCFS scheduling,
//   (e) crypto-engine (MAC) latency sensitivity of SecDDR.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

namespace {

sim::RunResult run_custom(const workloads::WorkloadDesc& w,
                          const SecurityParams& sec, const BenchOptions& opt,
                          dram::Timings timings,
                          bool prefetch = true,
                          dram::SchedulingPolicy policy =
                              dram::SchedulingPolicy::kFrFcfs) {
  std::vector<std::unique_ptr<workloads::SyntheticTrace>> traces;
  std::vector<sim::TraceSource*> ptrs;
  for (unsigned c = 0; c < opt.cores; ++c) {
    traces.push_back(std::make_unique<workloads::SyntheticTrace>(w, c));
    ptrs.push_back(traces.back().get());
  }
  sim::SystemConfig cfg;
  cfg.mem.cores = opt.cores;
  cfg.mem.prefetch = prefetch;
  cfg.security = sec;
  cfg.timings = timings;
  cfg.scheduling = policy;
  cfg.data_bytes = 8ull << 30;
  sim::System sys(cfg, ptrs);
  return sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
}

}  // namespace

int main() {
  bench::print_header("Ablation studies");
  const BenchOptions opt = BenchOptions::from_env();

  // (a) eWCRC burst cost in isolation: SecDDR+XTS with BL8 vs BL10.
  {
    std::printf("--- (a) eWCRC write-burst cost (BL8 vs BL10), "
                "SecDDR+XTS ---\n");
    TablePrinter t({"workload", "write frac", "IPC bl8", "IPC bl10", "delta"});
    for (const char* name : {"lbm", "bwaves", "pr", "povray"}) {
      const auto& w = *workloads::find(name);
      SecurityParams sec = SecurityParams::secddr_xts();
      sec.ewcrc = false;  // timing knob only; security analysis unchanged
      const double bl8 =
          run_custom(w, sec, opt, dram::Timings::ddr4_3200()).total_ipc;
      sec.ewcrc = true;
      const double bl10 =
          run_custom(w, sec, opt, dram::Timings::ddr4_3200()).total_ipc;
      t.add_row({w.name, TablePrinter::num(w.write_frac, 2),
                 TablePrinter::num(bl8, 3), TablePrinter::num(bl10, 3),
                 percent(bl10 / bl8 - 1.0)});
      std::fflush(stdout);
    }
    t.print();
    std::printf("Paper: lbm is the only slowdown (-1.6%%) because it is "
                "write-intensive.\n\n");
  }

  // (b) Metadata cache capacity sweep under the 64-ary tree.
  {
    std::printf("--- (b) metadata cache capacity vs integrity-tree cost "
                "(omnetpp) ---\n");
    TablePrinter t({"metadata cache", "IPC", "meta miss rate",
                    "tree fetches / data read"});
    const auto& w = *workloads::find("omnetpp");
    for (const unsigned kb : {32u, 64u, 128u, 256u, 512u, 1024u}) {
      SecurityParams sec = SecurityParams::baseline_tree_ctr();
      sec.metadata_cache_bytes = kb * 1024ull;
      const auto r = run_custom(w, sec, opt, dram::Timings::ddr4_3200());
      const double per_read =
          r.engine.data_reads
              ? static_cast<double>(r.engine.tree_node_fetches +
                                    r.engine.counter_fetches) /
                    static_cast<double>(r.engine.data_reads)
              : 0.0;
      t.add_row({std::to_string(kb) + "KB", TablePrinter::num(r.total_ipc, 3),
                 percent(r.metadata_miss_rate),
                 TablePrinter::num(per_read, 2)});
      std::fflush(stdout);
    }
    t.print();
    std::printf("Growing the cache cannot fix the tree for random-access "
                "footprints (the paper's scalability argument).\n\n");
  }

  // (c) Prefetcher contribution per pattern class.
  {
    std::printf("--- (c) stream prefetcher on/off (encrypt-only XTS) ---\n");
    TablePrinter t({"workload", "pattern", "IPC off", "IPC on", "speedup"});
    for (const char* name : {"lbm", "bwaves", "pr", "gcc"}) {
      const auto& w = *workloads::find(name);
      const double off = run_custom(w, SecurityParams::encrypt_only_xts(),
                                    opt, dram::Timings::ddr4_3200(), false)
                             .total_ipc;
      const double on = run_custom(w, SecurityParams::encrypt_only_xts(),
                                   opt, dram::Timings::ddr4_3200(), true)
                            .total_ipc;
      const char* pat = w.pattern == workloads::Pattern::kStreaming
                            ? "streaming"
                            : (w.pattern == workloads::Pattern::kRandom
                                   ? "random"
                                   : "mixed");
      t.add_row({w.name, pat, TablePrinter::num(off, 3),
                 TablePrinter::num(on, 3), percent(on / off - 1.0)});
      std::fflush(stdout);
    }
    t.print();
    std::printf("Streams benefit; random access is prefetch-immune.\n\n");
  }

  // (d) Scheduler policy.
  {
    std::printf("--- (d) FR-FCFS vs strict FCFS (SecDDR+XTS) ---\n");
    TablePrinter t({"workload", "IPC fcfs", "IPC fr-fcfs", "speedup",
                    "row-hit fcfs", "row-hit fr-fcfs"});
    for (const char* name : {"mcf", "lbm"}) {
      const auto& w = *workloads::find(name);
      const auto fcfs =
          run_custom(w, SecurityParams::secddr_xts(), opt,
                     dram::Timings::ddr4_3200(), true,
                     dram::SchedulingPolicy::kFcfs);
      const auto fr = run_custom(w, SecurityParams::secddr_xts(), opt,
                                 dram::Timings::ddr4_3200(), true,
                                 dram::SchedulingPolicy::kFrFcfs);
      t.add_row({w.name, TablePrinter::num(fcfs.total_ipc, 3),
                 TablePrinter::num(fr.total_ipc, 3),
                 percent(fr.total_ipc / fcfs.total_ipc - 1.0),
                 percent(fcfs.dram.row_hit_rate()),
                 percent(fr.dram.row_hit_rate())});
      std::fflush(stdout);
    }
    t.print();
    std::printf("\n");
  }

  // (e) MAC-latency sensitivity: SecDDR hides it behind the DRAM access.
  {
    std::printf("--- (e) MAC latency sensitivity (SecDDR+XTS, mcf) ---\n");
    TablePrinter t({"MAC latency (cycles)", "IPC", "vs 40-cycle"});
    const auto& w = *workloads::find("mcf");
    double base = 0;
    for (const unsigned lat : {20u, 40u, 80u, 160u}) {
      SecurityParams sec = SecurityParams::secddr_xts();
      sec.mac_latency = lat;
      sec.aes_latency = lat;
      const double ipc =
          run_custom(w, sec, opt, dram::Timings::ddr4_3200()).total_ipc;
      if (lat == 40) base = ipc;
      t.add_row({std::to_string(lat), TablePrinter::num(ipc, 3),
                 base > 0 ? percent(ipc / base - 1.0) : std::string("-")});
      std::fflush(stdout);
    }
    t.print();
    std::printf("SecDDR's read path tolerates slow crypto engines: the pad "
                "is precomputed and the MAC overlaps the fill.\n");
  }
  return 0;
}
