// §III-B/III-C quantitative security analysis: encrypted-eWCRC brute
// force, counter lifetime, and DIMM-substitution odds.
#include <cstdio>

#include "analysis/security.h"
#include "common/table.h"

using namespace secddr;

int main() {
  std::printf("=== Security analysis of the encrypted eWCRC (paper "
              "Section III-B) ===\n\n");

  const analysis::EwcrcSecurityModel base;  // JEDEC worst-case BER 1e-16
  TablePrinter table({"BER", "Natural CCCA error interval",
                      "Brute-force attempts (p=50%)",
                      "Attack duration (1 channel)",
                      "Parallel: 1000 nodes x 16 ch"});
  for (const double ber : {1e-16, 1e-21, 1e-22}) {
    const auto m = base.with_ber(ber);
    char ber_s[32], days_s[48], att_s[32], yrs_s[48], par_s[48];
    std::snprintf(ber_s, sizeof ber_s, "%.0e", ber);
    std::snprintf(days_s, sizeof days_s, "%.2f days", m.error_interval_days());
    std::snprintf(att_s, sizeof att_s, "%.3g", m.bruteforce_attempts(0.5));
    std::snprintf(yrs_s, sizeof yrs_s, "%.4g years", m.bruteforce_years(0.5));
    std::snprintf(par_s, sizeof par_s, "%.4g years",
                  m.parallel_attack_years(0.5, 1000, 16));
    table.add_row({ber_s, days_s, att_s, yrs_s, par_s});
  }
  table.print();

  std::printf("\nPaper reference: one CCCA error per 11.13 days at BER "
              "1e-16; 4.5e4 attempts for 50%%; 1,385 years at 1e-16; 138M "
              "years at 1e-21; >86,000 years for the parallel attack.\n\n");

  std::printf("Transaction-counter lifetime (Section III-C): %.0f years to "
              "overflow a 64-bit counter at 1 transaction/ns (paper: >500 "
              "years).\n",
              analysis::counter_overflow_years(1e9));
  std::printf("DIMM-substitution counter-match probability: %.3g "
              "(paper: 1/2^64).\n",
              analysis::substitution_counter_match_probability());
  return 0;
}
