// Microbenchmarks of the simulation substrates (google-benchmark):
// DRAM-model command throughput and the functional SecDDR protocol.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/session.h"
#include "dram/system.h"
#include "secmem/model.h"

using namespace secddr;

static void BM_DramRandomReads(benchmark::State& state) {
  dram::Geometry g;
  dram::DramSystem sys(g, dram::Timings::ddr4_3200(), 3200.0);
  Xoshiro256 rng(1);
  std::uint64_t tag = 0, completed = 0;
  for (auto _ : state) {
    if (sys.can_accept_read())
      sys.enqueue(line_base(rng.next() % g.capacity_bytes()), false, ++tag);
    sys.tick_core_cycle();
    completed += sys.drain_completions().size();
  }
  state.counters["reads/Mcycle"] = benchmark::Counter(
      static_cast<double>(completed) * 1e6 /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DramRandomReads)->Unit(benchmark::kMicrosecond);

static void BM_DramRowBufferStream(benchmark::State& state) {
  dram::Geometry g;
  dram::DramSystem sys(g, dram::Timings::ddr4_3200(), 3200.0);
  Addr a = 0;
  std::uint64_t tag = 0;
  for (auto _ : state) {
    if (sys.can_accept_read()) sys.enqueue(a += 64, false, ++tag);
    sys.tick_core_cycle();
    benchmark::DoNotOptimize(sys.drain_completions());
  }
}
BENCHMARK(BM_DramRowBufferStream)->Unit(benchmark::kMicrosecond);

static void BM_SecurityEngineTreeRead(benchmark::State& state) {
  const auto params = secmem::SecurityParams::baseline_tree_ctr();
  const secmem::MetadataLayout layout(params, 1ull << 30);
  dram::Geometry g;
  g.rows_per_bank = 1 << 14;
  dram::DramSystem dramsys(g, dram::Timings::ddr4_3200(), 3200.0);
  secmem::SecurityEngine engine(params, layout, dramsys);
  Xoshiro256 rng(3);
  Cycle now = 0;
  std::uint64_t tag = 0;
  for (auto _ : state) {
    if (engine.outstanding() < 32)
      engine.start_read(line_base(rng.next() % (1ull << 30)), ++tag, now);
    ++now;
    dramsys.tick_core_cycle();
    engine.tick(now);
    engine.ready().clear();
  }
}
BENCHMARK(BM_SecurityEngineTreeRead)->Unit(benchmark::kMicrosecond);

static void BM_FunctionalSecureWriteRead(benchmark::State& state) {
  core::SessionConfig cfg;
  cfg.dimm.geometry.ranks = 1;
  cfg.dimm.geometry.bank_groups = 2;
  cfg.dimm.geometry.banks_per_group = 2;
  cfg.dimm.geometry.rows_per_bank = 64;
  cfg.dimm.geometry.columns_per_row = 32;
  auto session = core::SecureMemorySession::create(cfg);
  Xoshiro256 rng(4);
  const CacheLine line = CacheLine::filled(0xAB);
  for (auto _ : state) {
    const Addr a = line_base(rng.next() % session->capacity());
    session->write(a, line);
    benchmark::DoNotOptimize(session->read(a));
  }
  state.SetBytesProcessed(state.iterations() * 2 * kLineSize);
}
BENCHMARK(BM_FunctionalSecureWriteRead)->Unit(benchmark::kMicrosecond);
