// Energy + thermal envelope: runs memory-bound suite workloads under the
// baseline and SecDDR security configurations with per-channel power
// accounting enabled and reports DRAM energy, average power, and the RC
// thermal-node temperatures — quantifying what the security metadata
// traffic costs in energy, not just cycles.
//
// Three exit-gated sections:
//   1. Accounting neutrality: every accounting-enabled run must be
//      bit-identical (cycles/IPC/DRAM counters) to the same run with
//      power disabled — measurement must never perturb timing.
//   2. Envelope: energy/power/peak-temperature table, baseline vs
//      SecDDR, realistic thermal constants (the numbers ROADMAP cites).
//   3. Throttle demo: a low-thermal-mass configuration whose trip point
//      sits just above the steady-state temperature, so the throttle
//      must engage (throttled_windows > 0) and the run must not finish
//      faster than its unthrottled twin.
//
// Results land in SECDDR_THERMAL_JSON (default BENCH_thermal.json) in
// the same machine-checkable shape as BENCH_speed.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness.h"
#include "sweep.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

namespace {

/// Minimal JSON assembly (same idiom as bench/speed.cc).
struct JsonObject {
  std::string body;
  void field(const char* key, double v) { add(key, TablePrinter::num(v, 6)); }
  void field(const char* key, std::uint64_t v) { add(key, std::to_string(v)); }
  void field(const char* key, unsigned v) { add(key, std::to_string(v)); }
  void field(const char* key, bool v) { add(key, v ? "true" : "false"); }
  void field(const char* key, const std::string& v) {
    add(key, "\"" + v + "\"");
  }
  void raw(const char* key, const std::string& v) { add(key, v); }
  std::string done() const { return "{" + body + "}"; }

 private:
  void add(const char* key, const std::string& v) {
    if (!body.empty()) body += ",";
    body += "\"";
    body += key;
    body += "\":";
    body += v;
  }
};

sim::RunResult run_with_power(const workloads::WorkloadDesc& wl,
                              const SecurityParams& sec,
                              const BenchOptions& opt,
                              const dram::PowerConfig& power) {
  const auto traces = bench::make_trace_sources(wl, opt.cores);
  std::vector<sim::TraceSource*> ptrs;
  for (const auto& t : traces) ptrs.push_back(t.get());
  sim::SystemConfig cfg =
      bench::make_system_config(opt, sec, dram::Timings::ddr4_3200());
  cfg.power = power;
  sim::System sys(cfg, ptrs);
  return sys.run(opt.instructions, 4'000'000'000ull, opt.warmup);
}

/// Non-power result fields that power accounting must never change.
bool timing_identical(const sim::RunResult& a, const sim::RunResult& b) {
  return a.cycles == b.cycles && a.total_ipc == b.total_ipc &&
         a.dram.reads_completed == b.dram.reads_completed &&
         a.dram.writes_completed == b.dram.writes_completed &&
         a.dram.total_read_latency == b.dram.total_read_latency &&
         a.dram.activates == b.dram.activates &&
         a.engine.counter_fetches == b.engine.counter_fetches;
}

/// Channel-summed envelope numbers derived from power_per_channel.
struct Envelope {
  double energy_mj = 0.0;     ///< total DRAM energy, millijoules
  double avg_power_w = 0.0;   ///< summed over channels
  double peak_c = 0.0;        ///< hottest rank, any channel
  double dynamic_frac = 0.0;  ///< dynamic / total energy
  std::uint64_t windows = 0;
  std::uint64_t throttled_windows = 0;
  std::uint64_t remap_swaps = 0;
};

Envelope envelope_of(const sim::RunResult& r, std::uint64_t window_cycles) {
  // DDR4-3200: 1600 MHz memory clock. Accounted time per channel is the
  // closed windows, which is what the energy totals cover.
  constexpr double kMemHz = 1600e6;
  Envelope e;
  std::uint64_t total_fj = 0, dynamic_fj = 0;
  std::int64_t peak_mc = 0;
  for (const auto& p : r.power_per_channel) {
    if (!p.enabled) continue;
    total_fj += p.energy.total_fj();
    dynamic_fj += p.energy.dynamic_fj();
    e.windows = std::max(e.windows, p.windows);
    e.throttled_windows += p.throttled_windows;
    e.remap_swaps += p.remap_swaps;
    const double seconds =
        static_cast<double>(p.windows * window_cycles) / kMemHz;
    if (seconds > 0)
      e.avg_power_w += static_cast<double>(p.energy.total_fj()) * 1e-15 /
                       seconds;
    for (const auto& rank : p.ranks) peak_mc = std::max(peak_mc, rank.peak_mc);
  }
  e.energy_mj = static_cast<double>(total_fj) * 1e-12;
  e.peak_c = static_cast<double>(peak_mc) / 1000.0;
  e.dynamic_frac = total_fj > 0 ? static_cast<double>(dynamic_fj) /
                                      static_cast<double>(total_fj)
                                : 0.0;
  return e;
}

}  // namespace

int main() {
  bench::print_header(
      "DRAM energy + transient thermal envelope (baseline vs SecDDR)");
  const BenchOptions opt = BenchOptions::from_env();

  dram::PowerConfig accounting;
  accounting.enabled = true;  // realistic defaults, no policies

  const struct {
    const char* name;
    SecurityParams params;
  } configs[] = {
      {"baseline-tree", SecurityParams::baseline_tree_ctr()},
      {"secddr-ctr", SecurityParams::secddr_ctr()},
  };
  const std::vector<const char*> wl_names = {"mcf", "lbm", "omnetpp"};

  TablePrinter table({"workload", "security", "energy [mJ]", "avg power [W]",
                      "peak [C]", "dynamic frac", "identical"});
  std::vector<std::string> envelope_json;
  bool neutral = true;
  for (const char* wl_name : wl_names) {
    const auto* wl = workloads::find(wl_name);
    if (wl == nullptr) {
      std::fprintf(stderr, "FAIL: workload '%s' missing\n", wl_name);
      return 1;
    }
    for (const auto& c : configs) {
      const sim::RunResult plain =
          run_with_power(*wl, c.params, opt, dram::PowerConfig{});
      const sim::RunResult powered =
          run_with_power(*wl, c.params, opt, accounting);
      const bool identical = timing_identical(plain, powered);
      if (!identical) neutral = false;
      const Envelope e = envelope_of(powered, accounting.window_cycles);
      table.add_row({wl_name, c.name, TablePrinter::num(e.energy_mj, 3),
                     TablePrinter::num(e.avg_power_w, 2),
                     TablePrinter::num(e.peak_c, 2),
                     TablePrinter::num(e.dynamic_frac, 3),
                     identical ? "yes" : "NO"});
      JsonObject o;
      o.field("workload", std::string(wl_name));
      o.field("security", std::string(c.name));
      o.field("energy_mj", e.energy_mj);
      o.field("avg_power_w", e.avg_power_w);
      o.field("peak_c", e.peak_c);
      o.field("dynamic_frac", e.dynamic_frac);
      o.field("windows", e.windows);
      o.field("cycles", static_cast<std::uint64_t>(powered.cycles));
      o.field("total_ipc", powered.total_ipc);
      o.field("identical", identical);
      envelope_json.push_back(o.done());
    }
  }
  table.print();
  if (!neutral) {
    std::fprintf(stderr,
                 "FAIL: power accounting changed timing (must be a pure "
                 "observer)\n");
    return 1;
  }
  std::printf("\naccounting is timing-neutral (all rows bit-identical)\n");

  // Throttle demo: shrink the thermal capacitance so the node reaches
  // steady state within a bounded run (tau = R*C = 4 K/W * 500 nJ/K =
  // 2 us ~ 3 windows) and put the trip point between ambient and the
  // background-power steady state (~0.5 W/rank * 4 K/W ~ +1.9 K over
  // 45 C ambient), so any sustained traffic must trip it. The release
  // point also sits below the background steady state, so the gate stays
  // engaged — maximal throttled-window coverage for the exit check.
  std::printf("\n=== Thermal throttle demo: mcf x SecDDR-cnt ===\n");
  dram::PowerConfig demo = accounting;
  demo.thermal.c_nj_per_k = 500;
  demo.throttle = true;
  demo.trip_mc = 46'500;
  demo.release_mc = 46'200;
  demo.throttle_period = 4;
  const auto* mcf = workloads::find("mcf");
  if (mcf == nullptr) {
    std::fprintf(stderr, "FAIL: workload 'mcf' missing\n");
    return 1;
  }
  dram::PowerConfig demo_off = demo;
  demo_off.throttle = false;
  const sim::RunResult unthrottled =
      run_with_power(*mcf, SecurityParams::secddr_ctr(), opt, demo_off);
  const sim::RunResult throttled =
      run_with_power(*mcf, SecurityParams::secddr_ctr(), opt, demo);
  const Envelope eu = envelope_of(unthrottled, demo.window_cycles);
  const Envelope et = envelope_of(throttled, demo.window_cycles);
  TablePrinter demo_table({"throttle", "cycles", "total IPC", "peak [C]",
                           "throttled windows", "windows"});
  demo_table.add_row({"off", std::to_string(unthrottled.cycles),
                      TablePrinter::num(unthrottled.total_ipc, 3),
                      TablePrinter::num(eu.peak_c, 2), "-",
                      std::to_string(eu.windows)});
  demo_table.add_row({"on", std::to_string(throttled.cycles),
                      TablePrinter::num(throttled.total_ipc, 3),
                      TablePrinter::num(et.peak_c, 2),
                      std::to_string(et.throttled_windows),
                      std::to_string(et.windows)});
  demo_table.print();
  if (et.throttled_windows == 0) {
    std::fprintf(stderr,
                 "FAIL: throttle never engaged (peak %.3f C, trip %.3f C)\n",
                 et.peak_c, static_cast<double>(demo.trip_mc) / 1000.0);
    return 1;
  }
  if (throttled.cycles < unthrottled.cycles) {
    std::fprintf(stderr,
                 "FAIL: throttled run finished faster than unthrottled "
                 "(%llu < %llu cycles)\n",
                 static_cast<unsigned long long>(throttled.cycles),
                 static_cast<unsigned long long>(unthrottled.cycles));
    return 1;
  }
  std::printf("throttle engaged for %llu/%llu windows; slowdown %.3fx\n",
              static_cast<unsigned long long>(et.throttled_windows),
              static_cast<unsigned long long>(et.windows),
              unthrottled.cycles > 0
                  ? static_cast<double>(throttled.cycles) /
                        static_cast<double>(unthrottled.cycles)
                  : 0.0);

  const char* json_env = std::getenv("SECDDR_THERMAL_JSON");
  const std::string json_path = json_env ? json_env : "BENCH_thermal.json";
  if (!json_path.empty()) {
    JsonObject root;
    root.field("bench", std::string("thermal"));
    root.field("instructions", opt.instructions);
    root.field("warmup", opt.warmup);
    root.field("cores", opt.cores);
    root.field("window_cycles", accounting.window_cycles);
    std::string env = "[";
    for (std::size_t i = 0; i < envelope_json.size(); ++i)
      env += (i ? "," : "") + envelope_json[i];
    root.raw("envelope", env + "]");
    JsonObject th;
    th.field("trip_mc", static_cast<std::uint64_t>(demo.trip_mc));
    th.field("c_nj_per_k", demo.thermal.c_nj_per_k);
    th.field("throttle_period", demo.throttle_period);
    th.field("unthrottled_cycles", static_cast<std::uint64_t>(
                                       unthrottled.cycles));
    th.field("throttled_cycles", static_cast<std::uint64_t>(throttled.cycles));
    th.field("throttled_windows", et.throttled_windows);
    th.field("windows", et.windows);
    th.field("peak_c", et.peak_c);
    root.raw("throttle_demo", th.done());
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      const std::string out = root.done();
      std::fprintf(f, "%s\n", out.c_str());
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "WARN: could not write %s\n", json_path.c_str());
    }
  }
  return 0;
}
