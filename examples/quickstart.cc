// Quickstart: bring up a SecDDR-protected memory system and use it.
//
//   $ ./quickstart
//
// Demonstrates the three-line happy path of the public API — create a
// session (which provisions the DIMM, runs the §III-F attestation on
// every rank, and establishes the per-rank E-MAC channels), then read and
// write cache lines with full replay-attack protection.
#include <cstdio>
#include <cstring>

#include "core/session.h"

using namespace secddr;
using namespace secddr::core;

int main() {
  // Configure a small module so the demo runs instantly; defaults follow
  // a 2-rank DDR4 DIMM organization.
  SessionConfig config;
  config.dimm.geometry.rows_per_bank = 64;
  config.dimm.geometry.columns_per_row = 32;
  config.encryption = DataEncryption::kXts;  // TME/SEV-style, no counters
  config.module_id = "dimm:quickstart-0001";

  std::string failure;
  auto session = SecureMemorySession::create(config, &failure);
  if (!session) {
    std::fprintf(stderr, "attestation failed: %s\n", failure.c_str());
    return 1;
  }
  std::printf("Attested module '%s': %llu bytes of replay-protected "
              "memory.\n",
              config.module_id.c_str(),
              static_cast<unsigned long long>(session->capacity()));

  // Write a secret, read it back.
  CacheLine secret{};
  std::memcpy(secret.bytes.data(), "attack at dawn", 15);
  const Addr addr = 0x1000;
  if (session->write(addr, secret) != Violation::kNone) {
    std::fprintf(stderr, "unexpected write alert\n");
    return 1;
  }
  const auto r = session->read(addr);
  if (!r.ok()) {
    std::fprintf(stderr, "unexpected violation: %s\n",
                 to_string(r.violation));
    return 1;
  }
  std::printf("Read back: \"%s\"\n",
              reinterpret_cast<const char*>(r.data.bytes.data()));

  // What actually rests in DRAM is ciphertext plus an (unencrypted) MAC;
  // the MAC only ever crosses the bus XORed with the one-time pad.
  CacheLine at_rest;
  std::uint64_t stored_mac = 0;
  const auto d = session->controller().mapping().decode(addr);
  const std::uint64_t key =
      ((d.bank_group * config.dimm.geometry.banks_per_group + d.bank) *
           config.dimm.geometry.rows_per_bank +
       d.row) *
          config.dimm.geometry.columns_per_row +
      d.column;
  session->dimm().peek_line(d.rank, key, &at_rest, &stored_mac);
  std::printf("At rest: ciphertext starts %02x %02x %02x %02x..., "
              "MAC=%016llx\n",
              at_rest[0], at_rest[1], at_rest[2], at_rest[3],
              static_cast<unsigned long long>(stored_mac));

  std::printf("Channel counters in lockstep: processor=%llu, device=%llu\n",
              static_cast<unsigned long long>(
                  session->controller().transaction_counter(0)),
              static_cast<unsigned long long>(
                  session->dimm().transaction_counter(0)));
  std::printf("OK\n");
  return 0;
}
