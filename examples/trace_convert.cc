// Trace file converter / inspector for the two sim trace formats.
//
//   trace_convert <input> <output> [--block-records N]
//       Converts between the legacy text format and the binary
//       trace_codec format; the direction is inferred from the input
//       (binary input -> text output, text input -> binary output).
//       Both directions stream record-at-a-time, so converting a
//       multi-gigabyte trace needs only block-sized memory.
//
//   trace_convert --stats <input>
//       Prints record counts, read/write mix, instruction coverage,
//       address range, and bytes/record for either format.
//
//   trace_convert --selftest
//       Round-trips a generated trace through both formats in a temp
//       directory and exits non-zero on any mismatch (CI smoke).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/file_trace.h"
#include "sim/stream_trace.h"
#include "sim/trace_codec.h"

namespace {

using secddr::sim::TraceRecord;

int usage() {
  std::fprintf(stderr,
               "usage: trace_convert <input> <output> [--block-records N]\n"
               "       trace_convert --stats <input>\n"
               "       trace_convert --selftest\n");
  return 2;
}

std::uint64_t file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return 0;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fclose(f);
  return n > 0 ? static_cast<std::uint64_t>(n) : 0;
}

int stats(const std::string& path) {
  const bool binary = secddr::sim::is_binary_trace(path);
  auto src = secddr::sim::open_trace(path);
  std::uint64_t records = 0, writes = 0, instructions = 0;
  std::uint64_t min_addr = ~0ull, max_addr = 0;
  TraceRecord r;
  while (src->next(r)) {
    ++records;
    if (r.is_write) ++writes;
    instructions += r.gap + 1;  // gap non-memory ops + the access itself
    if (r.addr < min_addr) min_addr = r.addr;
    if (r.addr > max_addr) max_addr = r.addr;
  }
  const std::uint64_t bytes = file_bytes(path);
  std::printf("file:          %s\n", path.c_str());
  std::printf("format:        %s\n",
              binary ? "binary (secddr trace v1)" : "text");
  std::printf("file bytes:    %" PRIu64 "\n", bytes);
  std::printf("records:       %" PRIu64 "\n", records);
  if (records == 0) return 0;
  std::printf("reads/writes:  %" PRIu64 " / %" PRIu64 " (%.1f%% writes)\n",
              records - writes, writes, 100.0 * writes / records);
  std::printf("instructions:  %" PRIu64 " (%.1f per record)\n", instructions,
              static_cast<double>(instructions) / records);
  std::printf("address range: 0x%" PRIx64 " .. 0x%" PRIx64 "\n", min_addr,
              max_addr);
  std::printf("bytes/record:  %.2f\n", static_cast<double>(bytes) / records);
  return 0;
}

int convert(const std::string& in, const std::string& out,
            std::uint32_t block_records) {
  const bool binary_in = secddr::sim::is_binary_trace(in);
  auto src = secddr::sim::open_trace(in);
  std::uint64_t records = 0;
  TraceRecord r;
  if (binary_in) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "trace_convert: cannot create %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "# secddr trace: <gap> <R|W> <hex-address>\n");
    while (src->next(r)) {
      std::fprintf(f, "%u %c 0x%llx\n", r.gap, r.is_write ? 'W' : 'R',
                   static_cast<unsigned long long>(r.addr));
      ++records;
    }
    if (std::fclose(f) != 0) {
      std::fprintf(stderr, "trace_convert: write failed on %s\n", out.c_str());
      return 1;
    }
  } else {
    secddr::sim::TraceWriter writer(out, block_records);
    while (src->next(r)) {
      writer.append(r);
      ++records;
    }
    writer.close();
  }
  std::printf("%" PRIu64 " records: %s (%s) -> %s (%s)\n", records,
              in.c_str(), binary_in ? "binary" : "text", out.c_str(),
              binary_in ? "text" : "binary");
  return 0;
}

int selftest() {
  const char* tmp = std::getenv("TMPDIR");
  const std::string base = std::string(tmp && *tmp ? tmp : "/tmp") +
                           "/secddr_trace_convert_selftest";
  const std::string bin = base + ".strace";
  const std::string txt = base + ".txt";
  const std::string bin2 = base + ".2.strace";

  std::vector<TraceRecord> records;
  secddr::Xoshiro256 rng(20260729);
  secddr::Addr addr = 0;
  for (int i = 0; i < 20000; ++i) {
    addr += (rng.next() % (1u << 20)) - (1u << 19);  // mixed-sign deltas
    records.push_back({static_cast<std::uint32_t>(rng.next() % 500),
                       rng.chance(0.3), addr});
  }

  {
    secddr::sim::TraceWriter w(bin, /*block_records=*/257);
    for (const auto& rec : records) w.append(rec);
    w.close();
  }
  if (convert(bin, txt, 257) != 0) return 1;
  if (convert(txt, bin2, 63) != 0) return 1;

  for (const std::string& path : {bin, txt, bin2}) {
    auto src = secddr::sim::open_trace(path);
    TraceRecord r;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (!src->next(r) || r.gap != records[i].gap ||
          r.is_write != records[i].is_write || r.addr != records[i].addr) {
        std::fprintf(stderr, "selftest: mismatch at record %zu of %s\n", i,
                     path.c_str());
        return 1;
      }
    }
    if (src->next(r)) {
      std::fprintf(stderr, "selftest: trailing records in %s\n", path.c_str());
      return 1;
    }
  }
  std::remove(bin.c_str());
  std::remove(txt.c_str());
  std::remove(bin2.c_str());
  std::printf("selftest OK (%zu records, binary->text->binary)\n",
              records.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && args[0] == "--selftest") return selftest();
    if (args.size() == 2 && args[0] == "--stats") return stats(args[1]);
    std::uint32_t block_records = secddr::sim::trace_codec::kDefaultBlockRecords;
    if (args.size() == 4 && args[2] == "--block-records") {
      block_records = static_cast<std::uint32_t>(
          std::strtoul(args[3].c_str(), nullptr, 10));
      if (block_records == 0) return usage();
      args.resize(2);
    }
    if (args.size() == 2 && args[0][0] != '-') return convert(args[0], args[1], block_records);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_convert: %s\n", e.what());
    return 1;
  }
}
