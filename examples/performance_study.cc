// Performance study: a compact version of the paper's evaluation that a
// user can run in under a minute — one memory-intensive graph workload
// (pr) and one compute-bound workload (povray) under all five main
// configurations, with the metadata-traffic breakdown that explains WHY
// the integrity tree loses (paper Section V-A).
//
//   $ ./performance_study            # defaults
//   $ SECDDR_INSTR=500000 ./performance_study
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "../bench/harness.h"

using namespace secddr;
using bench::BenchOptions;
using secmem::SecurityParams;

int main() {
  BenchOptions opt = BenchOptions::from_env();
  // Keep the interactive default snappy.
  if (!std::getenv("SECDDR_INSTR")) opt.instructions = 100000;
  if (!std::getenv("SECDDR_WARMUP")) opt.warmup = 100000;

  std::printf("SecDDR performance study (%u cores, %llu instructions/core)\n\n",
              opt.cores,
              static_cast<unsigned long long>(opt.instructions));

  const std::vector<std::pair<std::string, SecurityParams>> configs = {
      {"integrity tree (64-ary, CTR)", SecurityParams::baseline_tree_ctr()},
      {"SecDDR + CTR", SecurityParams::secddr_ctr()},
      {"encrypt-only CTR", SecurityParams::encrypt_only_ctr()},
      {"SecDDR + XTS", SecurityParams::secddr_xts()},
      {"encrypt-only XTS", SecurityParams::encrypt_only_xts()},
  };

  for (const char* wname : {"pr", "povray"}) {
    const auto* w = workloads::find(wname);
    std::printf("--- workload: %s (%s, target MPKI %.1f) ---\n", w->name.c_str(),
                w->memory_intensive ? "memory-intensive" : "compute-bound",
                w->mpki);
    TablePrinter table({"config", "IPC", "vs tree", "LLC MPKI",
                        "metadata reads / data read", "DRAM row-hit"});
    double base_ipc = 0;
    for (const auto& [name, sec] : configs) {
      const auto r = bench::run_workload(*w, sec, opt);
      if (base_ipc == 0) base_ipc = r.total_ipc;
      const double meta_per_data =
          r.engine.data_reads
              ? static_cast<double>(r.engine.meta_reads()) /
                    static_cast<double>(r.engine.data_reads)
              : 0.0;
      table.add_row({name, TablePrinter::num(r.total_ipc, 2),
                     TablePrinter::num(r.total_ipc / base_ipc, 3),
                     TablePrinter::num(r.llc_mpki, 1),
                     TablePrinter::num(meta_per_data, 2),
                     percent(r.dram.row_hit_rate())});
      std::fflush(stdout);
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Reading the table: the tree turns every metadata-cache miss into\n"
      "extra DRAM reads (the 'metadata reads' column) which random-access\n"
      "workloads pay on nearly every access; SecDDR's E-MAC channel adds\n"
      "zero metadata traffic, so it tracks the encrypt-only upper bound.\n"
      "Compute-bound workloads barely notice any of it.\n");
  return 0;
}
