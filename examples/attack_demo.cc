// Attack demo: mounts every adversary from the paper against a live
// SecDDR session and reports where each one is caught.
//
//   $ ./attack_demo
//
// Also demonstrates the two negative results the paper argues from:
// SecDDR *without* the encrypted eWCRC falls to the Fig. 3 row-redirect
// attack, and the trusted-DIMM logic placement falls to an on-DIMM
// replay trojan (§VI-C).
#include <cstdio>

#include "core/attack.h"
#include "core/session.h"

using namespace secddr;
using namespace secddr::core;

namespace {

SessionConfig demo_config(bool ewcrc = true,
                          LogicPlacement placement = LogicPlacement::kEccChip) {
  SessionConfig cfg;
  cfg.dimm.geometry.ranks = 2;
  cfg.dimm.geometry.bank_groups = 2;
  cfg.dimm.geometry.banks_per_group = 2;
  cfg.dimm.geometry.rows_per_bank = 16;
  cfg.dimm.geometry.columns_per_row = 8;
  cfg.dimm.ewcrc_enabled = ewcrc;
  cfg.dimm.placement = placement;
  cfg.seed = 2024;
  return cfg;
}

/// Attacks that deviate from the paper's predicted outcome (an engine
/// attack going undetected, or a weakened-design demo failing to
/// demonstrate its weakness). Nonzero at exit — the CTest smoke run
/// turns any silent acceptance into a hard failure.
int failures = 0;

void report(const char* attack, const char* expected, bool detected,
            bool expect_detected = true) {
  const bool as_expected = detected == expect_detected;
  if (!as_expected) ++failures;
  std::printf("  %-34s %-44s %s%s\n", attack, expected,
              detected ? "[DETECTED]" : "[undetected]",
              as_expected ? "" : "  <-- UNEXPECTED");
}

}  // namespace

int main() {
  std::printf("SecDDR attack gauntlet (paper Sections II-C, III)\n");
  std::printf("==================================================\n\n");
  std::printf("Full SecDDR (E-MAC + encrypted eWCRC, ECC-chip logic):\n");

  {  // 1. Bus replay of a stale (data, E-MAC) pair.
    auto s = SecureMemorySession::create(demo_config());
    BusReplayInterposer attacker;
    s->set_bus_interposer(&attacker);
    const Addr t = 0x40;
    const auto d = s->controller().mapping().decode(t);
    s->write(t, CacheLine::filled(0x01));
    (void)s->read(t);  // attacker records
    s->write(t, CacheLine::filled(0x02));
    attacker.arm(d.rank, d.bank_group, d.bank, static_cast<unsigned>(d.row),
                 d.column);
    report("bus replay (data in motion)", "MAC mismatch at the read",
           !s->read(t).ok());
  }
  {  // 2. Row-redirected write (Fig. 3).
    auto s = SecureMemorySession::create(demo_config());
    RowRedirectInterposer attacker;
    s->set_bus_interposer(&attacker);
    const Addr t = 0x40, conflict = 0x40 + 8 * 64 * 8;
    const auto d = s->controller().mapping().decode(t);
    s->write(t, CacheLine::filled(0xAA));
    s->write(conflict, CacheLine::filled(0x55));  // closes the row
    attacker.arm(d.rank, d.bank_group, d.bank, d.row, d.row + 1);
    report("row-redirected write (Fig. 3)", "eWCRC alert at the device",
           s->write(t, CacheLine::filled(0xBB)) == Violation::kWriteAlert);
  }
  {  // 3. Dropped write.
    auto s = SecureMemorySession::create(demo_config());
    DropWriteInterposer attacker;
    s->set_bus_interposer(&attacker);
    const Addr t = 0x40;
    const auto d = s->controller().mapping().decode(t);
    s->write(t, CacheLine::filled(0x01));
    attacker.arm(d.rank, d.bank_group, d.bank, d.column);
    s->write(t, CacheLine::filled(0x02));  // swallowed
    report("dropped write", "counter desync fails the next read",
           !s->read(t).ok());
  }
  {  // 4. Write converted to read.
    auto s = SecureMemorySession::create(demo_config());
    WriteToReadInterposer attacker;
    s->set_bus_interposer(&attacker);
    const Addr t = 0x40;
    const auto d = s->controller().mapping().decode(t);
    s->write(t, CacheLine::filled(0x01));
    attacker.arm(d.rank, d.bank_group, d.bank, d.column);
    s->write(t, CacheLine::filled(0x02));  // became a read
    report("write->read conversion", "even/odd counter parity mismatch",
           !s->read(t).ok());
  }
  {  // 5. DIMM substitution (cold boot).
    auto s = SecureMemorySession::create(demo_config());
    const Addr t = 0x40;
    s->write(t, CacheLine::filled(0x01));
    const auto frozen = s->snapshot_dimm();
    s->write(t, CacheLine::filled(0x02));
    s->sleep();
    s->substitute_dimm(frozen);
    s->wake();
    report("DIMM substitution (cold boot)", "stale counters fail every read",
           !s->read(t).ok());
  }
  {  // 6. On-DIMM replay trojan vs untrusted-DIMM design.
    auto s = SecureMemorySession::create(demo_config());
    OnDimmReplayInterposer trojan;
    s->set_on_dimm_interposer(&trojan);
    const Addr t = 0x40;
    s->write(t, CacheLine::filled(0x01));
    (void)s->read(t);
    s->write(t, CacheLine::filled(0x02));
    trojan.arm(0, 1);
    report("on-DIMM replay trojan", "E-MACs on the interconnect: useless",
           !s->read(t).ok());
  }

  std::printf("\nWeakened designs the paper argues against:\n");
  {  // 7. No eWCRC: the Fig. 3 attack succeeds silently.
    auto s = SecureMemorySession::create(demo_config(/*ewcrc=*/false));
    RowRedirectInterposer attacker;
    s->set_bus_interposer(&attacker);
    const Addr t = 0x40, conflict = 0x40 + 8 * 64 * 8;
    const auto d = s->controller().mapping().decode(t);
    const CacheLine stale = CacheLine::filled(0xAA);
    s->write(t, stale);
    s->write(conflict, CacheLine::filled(0x55));
    attacker.arm(d.rank, d.bank_group, d.bank, d.row, d.row + 1);
    s->write(t, CacheLine::filled(0xBB));
    s->write(0x40 + 2 * (8 * 64 * 8), CacheLine::filled(0x66));
    const auto r = s->read(t);
    const bool replayed = r.ok() && r.data == stale;
    report("row redirect, NO eWCRC", "stale data verifies: replay succeeds",
           !replayed, /*expect_detected=*/false);
    if (replayed)
      std::printf("    -> the processor accepted pre-attack data; this is "
                  "why SecDDR needs the encrypted eWCRC.\n");
  }
  {  // 8. Trusted-DIMM placement vs on-DIMM trojan.
    auto s = SecureMemorySession::create(
        demo_config(true, LogicPlacement::kEccDataBuffer));
    OnDimmReplayInterposer trojan;
    s->set_on_dimm_interposer(&trojan);
    const Addr t = 0x40;
    const CacheLine stale = CacheLine::filled(0x01);
    s->write(t, stale);
    (void)s->read(t);
    s->write(t, CacheLine::filled(0x02));
    trojan.arm(0, 1);
    const auto r = s->read(t);
    const bool replayed = r.ok() && r.data == stale;
    report("on-DIMM trojan, trusted-DIMM logic",
           "plaintext MACs on the interconnect: replayable", !replayed,
           /*expect_detected=*/false);
    if (replayed)
      std::printf("    -> this is why SecDDR places its logic in the ECC "
                  "chip for untrusted DIMMs (Section VI-C).\n");
  }

  if (failures > 0) {
    std::printf("\nFAIL: %d attack(s) deviated from the paper's predicted "
                "outcome.\n", failures);
    return 1;
  }
  std::printf("\nDone: every attack behaved as the paper predicts.\n");
  return 0;
}
