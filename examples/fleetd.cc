// fleetd: fleet simulation service driver + self-checking smoke.
//
// Builds a heterogeneous fleet (workloads x security configurations from
// the evaluation suite), runs it through the multi-process coordinator
// (durable checkpoints + crash recovery), then re-runs the identical
// fleet on a single undisturbed worker and requires the aggregated
// results to be byte-identical. Exit status 1 on any divergence — this
// is the fleet's determinism gate, wired into CTest.
//
// Environment knobs (all optional):
//   SECDDR_FLEET_NODES    simulated nodes                 (default 4)
//   SECDDR_FLEET_WORKERS  worker processes                (default 2)
//   SECDDR_FLEET_CKPT     cycles between checkpoints      (default 10000)
//   SECDDR_FLEET_KILL=1   SIGKILL a worker after its first checkpoint,
//                         forcing the respawn + resume path
//   SECDDR_FLEET_STATE    state-directory prefix          (default fleet_state)
//   SECDDR_FLEET_JSON     aggregate output ('' disables;  default BENCH_fleet.json)
//   SECDDR_INSTR / SECDDR_WARMUP / SECDDR_CORES  as in bench/harness.h
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/coordinator.h"
#include "fleet/shard.h"
#include "../bench/harness.h"

using namespace secddr;

namespace {

fleet::NodeConfig make_node(unsigned i, const bench::BenchOptions& opt) {
  const auto& suite = workloads::suite();
  const workloads::WorkloadDesc& w = suite[i % suite.size()];
  struct SecChoice {
    const char* tag;
    secmem::SecurityParams params;
  };
  const std::vector<SecChoice> secs = {
      {"tree64", secmem::SecurityParams::baseline_tree_ctr()},
      {"secddr", secmem::SecurityParams::secddr_ctr()},
      {"enc_only", secmem::SecurityParams::encrypt_only_ctr()},
  };
  const SecChoice& sec = secs[i % secs.size()];
  dram::Timings timings = dram::Timings::ddr4_3200();
  if (sec.params.ewcrc) timings = timings.with_ewcrc_burst();
  fleet::NodeConfig n;
  n.name = w.name + std::string("+") + sec.tag;
  n.system = bench::make_system_config(opt, sec.params, timings);
  n.workload = w.name;
  n.instructions = opt.instructions;
  n.warmup = opt.warmup;
  n.max_cycles = 4'000'000'000ull;
  return n;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  return s ? std::strtoull(s, nullptr, 10) : fallback;
}

void clean_state(const std::string& dir, std::size_t nodes) {
  for (std::size_t i = 0; i < nodes; ++i)
    std::remove(
        fleet::ShardDriver::checkpoint_path(dir, static_cast<unsigned>(i))
            .c_str());
}

std::string json_hist(const std::vector<std::uint64_t>& h) {
  std::string out = "[";
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(h[i]);
  }
  return out + "]";
}

}  // namespace

int main() {
  bench::BenchOptions opt = bench::BenchOptions::from_env();
  // Keep the no-knob invocation snappy (the full suite is a CI knob away).
  if (!std::getenv("SECDDR_INSTR")) opt.instructions = 20000;
  if (!std::getenv("SECDDR_WARMUP")) opt.warmup = 5000;
  if (!std::getenv("SECDDR_CORES")) opt.cores = 2;

  const unsigned node_count =
      static_cast<unsigned>(env_u64("SECDDR_FLEET_NODES", 4));
  const unsigned workers =
      static_cast<unsigned>(env_u64("SECDDR_FLEET_WORKERS", 2));
  const Cycle ckpt_every = env_u64("SECDDR_FLEET_CKPT", 10'000);
  const char* kill_env = std::getenv("SECDDR_FLEET_KILL");
  const bool kill_hook = kill_env && std::strcmp(kill_env, "1") == 0;
  const char* state_env = std::getenv("SECDDR_FLEET_STATE");
  const std::string state_base = state_env ? state_env : "fleet_state";

  std::vector<fleet::NodeConfig> nodes;
  for (unsigned i = 0; i < node_count; ++i)
    nodes.push_back(make_node(i, opt));

  std::printf("fleetd: %u nodes, %u workers, checkpoint every %llu cycles%s\n",
              node_count, workers,
              static_cast<unsigned long long>(ckpt_every),
              kill_hook ? ", kill-a-worker enabled" : "");

  fleet::FleetOptions run_opts;
  run_opts.workers = workers;
  run_opts.checkpoint_every = ckpt_every;
  run_opts.state_dir = state_base + "_run";
  run_opts.kill_after_first_checkpoint = kill_hook;
  clean_state(run_opts.state_dir, nodes.size());
  const fleet::FleetResult res = fleet::run_fleet(nodes, run_opts);

  // Undisturbed single-worker reference over the identical fleet.
  fleet::FleetOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.checkpoint_every = ckpt_every;
  ref_opts.state_dir = state_base + "_ref";
  clean_state(ref_opts.state_dir, nodes.size());
  const fleet::FleetResult ref = fleet::run_fleet(nodes, ref_opts);

  std::printf("\n%-22s %10s %14s %12s\n", "node", "total IPC",
              "avg rd lat", "dram reads");
  for (std::size_t i = 0; i < res.per_node.size(); ++i) {
    const sim::RunResult& r = res.per_node[i];
    std::printf("%-22s %10.4f %14.2f %12llu\n", res.names[i].c_str(),
                r.total_ipc, r.dram.avg_read_latency(),
                static_cast<unsigned long long>(r.dram.reads_completed));
  }
  std::printf("\nfleet total IPC %.4f | instructions %llu | respawns %u\n",
              res.total_ipc, static_cast<unsigned long long>(res.instructions),
              res.respawns);

  const bool identical =
      fleet::encode_fleet(res) == fleet::encode_fleet(ref);
  std::printf("recovered aggregates vs undisturbed single worker: %s\n",
              identical ? "bit-identical" : "DIVERGED");

  const char* json_env = std::getenv("SECDDR_FLEET_JSON");
  const std::string json_path = json_env ? json_env : "BENCH_fleet.json";
  if (!json_path.empty()) {
    std::string body = "{";
    body += "\"bench\":\"fleet\",";
    body += "\"nodes\":" + std::to_string(node_count) + ",";
    body += "\"workers\":" + std::to_string(workers) + ",";
    body += "\"checkpoint_every\":" + std::to_string(ckpt_every) + ",";
    body += "\"kill_hook\":" + std::string(kill_hook ? "true" : "false") + ",";
    body += "\"respawns\":" + std::to_string(res.respawns) + ",";
    char num[64];
    std::snprintf(num, sizeof num, "%.6f", res.total_ipc);
    body += "\"total_ipc\":" + std::string(num) + ",";
    body += "\"instructions\":" + std::to_string(res.instructions) + ",";
    body += "\"dram_reads_completed\":" +
            std::to_string(res.dram_reads_completed) + ",";
    body += "\"engine_meta_reads\":" +
            std::to_string(res.engine_meta_reads) + ",";
    body += "\"ipc_hist\":" + json_hist(res.ipc_hist) + ",";
    body += "\"latency_hist\":" + json_hist(res.latency_hist) + ",";
    body += "\"bit_identical\":" + std::string(identical ? "true" : "false");
    body += ",\"per_node\":[";
    for (std::size_t i = 0; i < res.per_node.size(); ++i) {
      if (i) body += ",";
      std::snprintf(num, sizeof num, "%.6f", res.per_node[i].total_ipc);
      body += "{\"name\":\"" + res.names[i] + "\",\"total_ipc\":" + num + "}";
    }
    body += "]}";
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", body.c_str());
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "fleetd: cannot write %s\n", json_path.c_str());
    }
  }

  if (!identical) {
    std::fprintf(stderr,
                 "fleetd: FAIL — fleet aggregates diverged from the "
                 "undisturbed reference\n");
    return 1;
  }
  if (kill_hook && res.respawns == 0) {
    std::fprintf(stderr,
                 "fleetd: FAIL — kill hook requested but no worker needed a "
                 "respawn (recovery path not exercised; lower "
                 "SECDDR_FLEET_CKPT or raise SECDDR_INSTR)\n");
    return 1;
  }
  return 0;
}
