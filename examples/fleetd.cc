// fleetd: fleet simulation service driver + self-checking smoke.
//
// Builds a heterogeneous fleet (workloads x security configurations from
// the evaluation suite), runs it through the multi-process coordinator
// (durable generational checkpoints + supervised crash recovery), then
// re-runs the identical fleet on a single undisturbed worker and
// requires the aggregated results to be byte-identical. Exit status 1 on
// any divergence — this is the fleet's determinism gate, wired into
// CTest.
//
//   fleetd [--chaos[=SEED]]
//
// --chaos arms a seeded fault-injection plan (fleet/chaos.h) covering
// every fault class — kills during/around checkpoint publication, a
// corrupted and a torn generation, a hung worker, a torn result frame —
// and then requires the disturbed run to (a) actually exercise the
// recovery machinery and (b) still match the undisturbed reference
// byte for byte, with zero nodes quarantined.
//
// Environment knobs (all optional):
//   SECDDR_FLEET_NODES    simulated nodes                 (default 4)
//   SECDDR_FLEET_WORKERS  worker processes                (default 2)
//   SECDDR_FLEET_CKPT     cycles between checkpoints      (default 10000)
//   SECDDR_FLEET_KILL=1   SIGKILL a worker after its first checkpoint,
//                         forcing the respawn + resume path
//   SECDDR_FLEET_CHAOS    chaos seed (same as --chaos=SEED)
//   SECDDR_FLEET_WATCHDOG_MS  watchdog deadline for the chaos run
//                             (default 2000; 0 disables)
//   SECDDR_FLEET_STATE    state-directory prefix          (default fleet_state)
//   SECDDR_FLEET_JSON     aggregate output ('' disables;  default BENCH_fleet.json)
//   SECDDR_INSTR / SECDDR_WARMUP / SECDDR_CORES  as in bench/harness.h
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/chaos.h"
#include "fleet/coordinator.h"
#include "fleet/shard.h"
#include "../bench/harness.h"

using namespace secddr;

namespace {

fleet::NodeConfig make_node(unsigned i, const bench::BenchOptions& opt) {
  const auto& suite = workloads::suite();
  const workloads::WorkloadDesc& w = suite[i % suite.size()];
  struct SecChoice {
    const char* tag;
    secmem::SecurityParams params;
  };
  const std::vector<SecChoice> secs = {
      {"tree64", secmem::SecurityParams::baseline_tree_ctr()},
      {"secddr", secmem::SecurityParams::secddr_ctr()},
      {"enc_only", secmem::SecurityParams::encrypt_only_ctr()},
  };
  const SecChoice& sec = secs[i % secs.size()];
  dram::Timings timings = dram::Timings::ddr4_3200();
  if (sec.params.ewcrc) timings = timings.with_ewcrc_burst();
  fleet::NodeConfig n;
  n.name = w.name + std::string("+") + sec.tag;
  n.system = bench::make_system_config(opt, sec.params, timings);
  n.workload = w.name;
  n.instructions = opt.instructions;
  n.warmup = opt.warmup;
  n.max_cycles = 4'000'000'000ull;
  return n;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  return s ? std::strtoull(s, nullptr, 10) : fallback;
}

std::string json_hist(const std::vector<std::uint64_t>& h) {
  std::string out = "[";
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(h[i]);
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::BenchOptions::from_env();
  // Keep the no-knob invocation snappy (the full suite is a CI knob away).
  if (!std::getenv("SECDDR_INSTR")) opt.instructions = 20000;
  if (!std::getenv("SECDDR_WARMUP")) opt.warmup = 5000;
  if (!std::getenv("SECDDR_CORES")) opt.cores = 2;

  bool chaos_mode = false;
  std::uint64_t chaos_seed = 1;
  if (const char* s = std::getenv("SECDDR_FLEET_CHAOS")) {
    chaos_mode = true;
    chaos_seed = std::strtoull(s, nullptr, 10);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos_mode = true;
    } else if (std::strncmp(argv[i], "--chaos=", 8) == 0) {
      chaos_mode = true;
      chaos_seed = std::strtoull(argv[i] + 8, nullptr, 10);
    } else {
      std::fprintf(stderr, "fleetd: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  const unsigned node_count =
      static_cast<unsigned>(env_u64("SECDDR_FLEET_NODES", 4));
  const unsigned workers =
      static_cast<unsigned>(env_u64("SECDDR_FLEET_WORKERS", 2));
  const Cycle ckpt_every = env_u64("SECDDR_FLEET_CKPT", 10'000);
  const char* kill_env = std::getenv("SECDDR_FLEET_KILL");
  const bool kill_hook = kill_env && std::strcmp(kill_env, "1") == 0;
  const char* state_env = std::getenv("SECDDR_FLEET_STATE");
  const std::string state_base = state_env ? state_env : "fleet_state";

  std::vector<fleet::NodeConfig> nodes;
  for (unsigned i = 0; i < node_count; ++i)
    nodes.push_back(make_node(i, opt));

  std::printf("fleetd: %u nodes, %u workers, checkpoint every %llu cycles%s%s\n",
              node_count, workers,
              static_cast<unsigned long long>(ckpt_every),
              kill_hook ? ", kill-a-worker enabled" : "",
              chaos_mode ? ", chaos armed" : "");

  fleet::FleetOptions run_opts;
  run_opts.workers = workers;
  run_opts.checkpoint_every = ckpt_every;
  run_opts.state_dir = state_base + "_run";
  run_opts.kill_after_first_checkpoint = kill_hook;
  if (chaos_mode) {
    run_opts.chaos = fleet::ChaosPlan::seeded(chaos_seed, node_count);
    run_opts.watchdog_deadline_ms =
        static_cast<unsigned>(env_u64("SECDDR_FLEET_WATCHDOG_MS", 2'000));
    // The seeded plan is built so full recovery (not quarantine) is the
    // required outcome; give the supervisor headroom to prove it.
    run_opts.node_failure_budget = 16;
    run_opts.max_respawns = 64;
    std::printf("chaos plan (seed %llu):\n%s",
                static_cast<unsigned long long>(chaos_seed),
                run_opts.chaos.describe().c_str());
  }
  fleet::reset_state_dir(run_opts.state_dir);
  const fleet::FleetResult res = fleet::run_fleet(nodes, run_opts);

  // Undisturbed single-worker reference over the identical fleet.
  fleet::FleetOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.checkpoint_every = ckpt_every;
  ref_opts.state_dir = state_base + "_ref";
  fleet::reset_state_dir(ref_opts.state_dir);
  const fleet::FleetResult ref = fleet::run_fleet(nodes, ref_opts);

  std::printf("\n%-22s %10s %14s %12s  %s\n", "node", "total IPC",
              "avg rd lat", "dram reads", "status");
  for (std::size_t i = 0; i < res.per_node.size(); ++i) {
    const sim::RunResult& r = res.per_node[i];
    std::printf("%-22s %10.4f %14.2f %12llu  %s\n", res.names[i].c_str(),
                r.total_ipc, r.dram.avg_read_latency(),
                static_cast<unsigned long long>(r.dram.reads_completed),
                fleet::node_status_name(res.status[i]));
  }
  std::printf(
      "\nfleet total IPC %.4f | instructions %llu | respawns %u | "
      "hung kills %u | quarantined %u\n",
      res.total_ipc, static_cast<unsigned long long>(res.instructions),
      res.respawns, res.hung_kills, res.quarantined);
  for (const fleet::FailureEvent& ev : res.failures)
    std::printf("  failure: node %u (%s) lost %llu cycles, backoff %lld ms%s\n",
                ev.node, res.names[ev.node].c_str(),
                static_cast<unsigned long long>(ev.lost_cycles), ev.backoff_ms,
                ev.hung ? " [watchdog]" : "");

  const bool identical =
      fleet::encode_fleet(res) == fleet::encode_fleet(ref);
  std::printf("recovered aggregates vs undisturbed single worker: %s\n",
              identical ? "bit-identical" : "DIVERGED");

  const char* json_env = std::getenv("SECDDR_FLEET_JSON");
  const std::string json_path = json_env ? json_env : "BENCH_fleet.json";
  if (!json_path.empty()) {
    std::string body = "{";
    body += "\"bench\":\"fleet\",";
    body += "\"nodes\":" + std::to_string(node_count) + ",";
    body += "\"workers\":" + std::to_string(workers) + ",";
    body += "\"checkpoint_every\":" + std::to_string(ckpt_every) + ",";
    body += "\"kill_hook\":" + std::string(kill_hook ? "true" : "false") + ",";
    body += "\"chaos\":" + std::string(chaos_mode ? "true" : "false") + ",";
    if (chaos_mode)
      body += "\"chaos_seed\":" + std::to_string(chaos_seed) + ",";
    body += "\"respawns\":" + std::to_string(res.respawns) + ",";
    body += "\"hung_kills\":" + std::to_string(res.hung_kills) + ",";
    body += "\"quarantined\":" + std::to_string(res.quarantined) + ",";
    body += "\"failures\":[";
    for (std::size_t i = 0; i < res.failures.size(); ++i) {
      const fleet::FailureEvent& ev = res.failures[i];
      if (i) body += ",";
      body += "{\"node\":" + std::to_string(ev.node) +
              ",\"lost_cycles\":" + std::to_string(ev.lost_cycles) +
              ",\"backoff_ms\":" + std::to_string(ev.backoff_ms) +
              ",\"hung\":" + (ev.hung ? "true" : "false") + "}";
    }
    body += "],";
    char num[64];
    std::snprintf(num, sizeof num, "%.6f", res.total_ipc);
    body += "\"total_ipc\":" + std::string(num) + ",";
    body += "\"instructions\":" + std::to_string(res.instructions) + ",";
    body += "\"dram_reads_completed\":" +
            std::to_string(res.dram_reads_completed) + ",";
    body += "\"engine_meta_reads\":" +
            std::to_string(res.engine_meta_reads) + ",";
    body += "\"ipc_hist\":" + json_hist(res.ipc_hist) + ",";
    body += "\"latency_hist\":" + json_hist(res.latency_hist) + ",";
    body += "\"bit_identical\":" + std::string(identical ? "true" : "false");
    body += ",\"per_node\":[";
    for (std::size_t i = 0; i < res.per_node.size(); ++i) {
      if (i) body += ",";
      std::snprintf(num, sizeof num, "%.6f", res.per_node[i].total_ipc);
      body += "{\"name\":\"" + res.names[i] + "\",\"total_ipc\":" + num +
              ",\"status\":\"" +
              fleet::node_status_name(res.status[i]) + "\"}";
    }
    body += "]}";
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", body.c_str());
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "fleetd: cannot write %s\n", json_path.c_str());
    }
  }

  if (!identical) {
    std::fprintf(stderr,
                 "fleetd: FAIL — fleet aggregates diverged from the "
                 "undisturbed reference\n");
    return 1;
  }
  if (kill_hook && res.respawns == 0) {
    std::fprintf(stderr,
                 "fleetd: FAIL — kill hook requested but no worker needed a "
                 "respawn (recovery path not exercised; lower "
                 "SECDDR_FLEET_CKPT or raise SECDDR_INSTR)\n");
    return 1;
  }
  if (chaos_mode && res.respawns == 0) {
    std::fprintf(stderr,
                 "fleetd: FAIL — chaos armed but no worker died (fault "
                 "injection did not engage)\n");
    return 1;
  }
  if (chaos_mode && res.quarantined != 0) {
    std::fprintf(stderr,
                 "fleetd: FAIL — seeded chaos plan must end in full "
                 "recovery, but %u node(s) were quarantined\n",
                 res.quarantined);
    return 1;
  }
  return 0;
}
