// Attestation demo: walks through the §III-F initialization protocol
// step by step — vendor provisioning, certificate validation, the
// endorsement-signed key exchange, counter initialization, and the
// failure paths (counterfeit module, revoked module).
//
//   $ ./attestation_demo
#include <cstdio>

#include "core/attestation.h"
#include "core/dimm.h"
#include "crypto/cert.h"
#include "crypto/dh.h"

using namespace secddr;
using namespace secddr::core;

namespace {

DimmConfig small_dimm() {
  DimmConfig cfg;
  cfg.geometry.rows_per_bank = 16;
  cfg.geometry.columns_per_row = 8;
  return cfg;
}

}  // namespace

int main() {
  const auto& group = crypto::DhGroup::modp1536();
  std::printf("SecDDR attestation walkthrough (paper Section III-F)\n");
  std::printf("Group: %zu-bit safe-prime MODP (RFC 3526)\n\n",
              group.p.bit_length());

  // --- Manufacturing time -------------------------------------------------
  std::printf("[vendor] creating certificate authority\n");
  crypto::CertificateAuthority ca(group, /*seed=*/42);

  std::printf("[vendor] provisioning module 'dimm:sn-1337' "
              "(endorsement keypair + certificate per rank)\n");
  Dimm dimm(small_dimm(), "dimm:sn-1337", group, /*seed=*/7);
  dimm.provision(ca);
  for (unsigned r = 0; r < dimm.config().geometry.ranks; ++r) {
    const auto& cert = dimm.certificate(r);
    std::printf("         rank %u certificate: subject='%s', EKp=%.16s...\n",
                r, cert.subject.c_str(),
                cert.endorsement_pub.to_hex().c_str());
  }

  // --- Boot time -----------------------------------------------------------
  std::printf("\n[boot] processor attests each rank\n");
  AttestationDriver driver(group, ca, /*seed=*/99, /*monotonic=*/true);
  for (unsigned r = 0; r < dimm.config().geometry.ranks; ++r) {
    const AttestationResult res = driver.attest_rank(dimm, r);
    if (!res.ok) {
      std::printf("       rank %u FAILED: %s\n", r, res.failure.c_str());
      return 1;
    }
    std::printf("       rank %u OK: Kt established (%.8s...), C0=%llu; "
                "device counter=%llu\n",
                r, to_hex(res.kt).c_str(),
                static_cast<unsigned long long>(res.c0),
                static_cast<unsigned long long>(dimm.transaction_counter(r)));
  }

  // --- Failure paths --------------------------------------------------------
  std::printf("\n[attack] counterfeit module provisioned by a rogue CA\n");
  crypto::CertificateAuthority rogue(group, 666);
  Dimm fake(small_dimm(), "dimm:sn-1337", group, 8);  // same identity!
  fake.provision(rogue);
  const AttestationResult forged = driver.attest_rank(fake, 0);
  std::printf("        -> %s (%s)\n", forged.ok ? "ACCEPTED (BUG!)" : "rejected",
              forged.failure.c_str());

  std::printf("\n[attack] module revoked after compromise\n");
  ca.revoke("dimm:sn-1337:rank0");
  const AttestationResult revoked = driver.attest_rank(dimm, 0);
  std::printf("        -> %s (%s)\n",
              revoked.ok ? "ACCEPTED (BUG!)" : "rejected",
              revoked.failure.c_str());

  std::printf("\nDone.\n");
  return (!forged.ok && !revoked.ok) ? 0 : 1;
}
