// Functional counter-integrity-tree baseline (§II-C3): correctness,
// at-rest replay detection, and the traversal-cost scaling that
// motivates SecDDR.
#include <gtest/gtest.h>

#include "baseline/integrity_tree.h"
#include "common/random.h"

namespace secddr::baseline {
namespace {

TEST(BaselineTree, WriteReadRoundTrip) {
  IntegrityTree tree({/*arity=*/8, /*lines=*/512});
  Xoshiro256 rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t idx = rng.next_below(512);
    CacheLine v;
    for (auto& b : v.bytes) b = static_cast<std::uint8_t>(rng.next());
    tree.write(idx, v);
    const auto r = tree.read(idx);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.data, v);
  }
}

TEST(BaselineTree, FreshReadsOfUntouchedLinesVerify) {
  IntegrityTree tree({8, 128});
  for (std::uint64_t i = 0; i < 128; ++i) {
    const auto r = tree.read(i);
    ASSERT_TRUE(r.ok) << i;
    EXPECT_EQ(r.data, CacheLine{});
  }
}

TEST(BaselineTree, DataAtRestIsEncrypted) {
  IntegrityTree tree({8, 64});
  const CacheLine pt = CacheLine::filled(0x41);
  tree.write(7, pt);
  EXPECT_FALSE(tree.memory().data[7] == pt);
}

TEST(BaselineTree, DetectsDataTamper) {
  IntegrityTree tree({8, 64});
  tree.write(3, CacheLine::filled(0x01));
  tree.memory().data[3][10] ^= 0xFF;
  EXPECT_FALSE(tree.read(3).ok);
}

TEST(BaselineTree, DetectsMacTamper) {
  IntegrityTree tree({8, 64});
  tree.write(3, CacheLine::filled(0x01));
  tree.memory().line_macs[3] ^= 1;
  EXPECT_FALSE(tree.read(3).ok);
}

TEST(BaselineTree, DetectsAtRestReplay) {
  // THE replay attack (§II-C1): restore a complete, self-consistent
  // (ciphertext, MAC, counter) triple from an earlier time. The line MAC
  // verifies — only the tree catches the stale counter.
  IntegrityTree tree({8, 64});
  tree.write(5, CacheLine::filled(0x01));
  const auto old_ct = tree.memory().data[5];
  const auto old_mac = tree.memory().line_macs[5];
  const auto old_counter = tree.memory().counters[5];

  tree.write(5, CacheLine::filled(0x02));  // victim progresses

  tree.memory().data[5] = old_ct;  // attacker replays the full triple
  tree.memory().line_macs[5] = old_mac;
  tree.memory().counters[5] = old_counter;
  EXPECT_FALSE(tree.read(5).ok) << "stale triple must fail the tree walk";
}

TEST(BaselineTree, ReplayOfTreeNodesAlsoDetected) {
  // Even replaying interior nodes along with the leaf fails: the root is
  // on-chip and cannot be rolled back.
  IntegrityTree tree({4, 256});
  tree.write(9, CacheLine::filled(0x01));
  const auto snapshot = tree.memory();  // full untrusted state
  tree.write(9, CacheLine::filled(0x02));
  tree.memory() = snapshot;  // attacker restores ALL of DRAM
  EXPECT_FALSE(tree.read(9).ok) << "on-chip root defeats whole-DRAM replay";
}

TEST(BaselineTree, OtherLinesUnaffectedByTamper) {
  IntegrityTree tree({8, 64});
  tree.write(1, CacheLine::filled(0x01));
  tree.write(2, CacheLine::filled(0x02));
  tree.memory().data[1][0] ^= 1;
  EXPECT_FALSE(tree.read(1).ok);
  const auto r2 = tree.read(2);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r2.data, CacheLine::filled(0x02));
}

TEST(BaselineTree, TraversalCostGrowsWithCapacity) {
  // The §II-D scalability problem, measured: deeper trees touch more
  // nodes per access.
  IntegrityTree small({8, 64});      // 64 -> 8 -> root
  IntegrityTree large({8, 32768});   // 32768 -> 4096 -> 512 -> 64 -> 8 -> root
  small.write(0, CacheLine::filled(1));
  large.write(0, CacheLine::filled(1));
  EXPECT_GT(large.last_nodes_touched(), small.last_nodes_touched());
  (void)small.read(0);
  const unsigned small_read = small.last_nodes_touched();
  (void)large.read(0);
  EXPECT_GT(large.last_nodes_touched(), small_read);
}

TEST(BaselineTree, HigherArityShrinksTraversal) {
  // The Fig. 8 arity trade-off, functional edition.
  IntegrityTree narrow({8, 32768});
  IntegrityTree wide({64, 32768});
  (void)narrow.read(100);
  (void)wide.read(100);
  EXPECT_GT(narrow.last_nodes_touched(), wide.last_nodes_touched());
  EXPECT_GT(narrow.tree_depth(), wide.tree_depth());
}

TEST(BaselineTree, RandomizedTamperSweepAlwaysDetected) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    IntegrityTree tree({4, 128});
    const std::uint64_t idx = rng.next_below(128);
    tree.write(idx, CacheLine::filled(0xAB));
    auto& mem = tree.memory();
    switch (rng.next_below(4)) {
      case 0:
        mem.data[idx][rng.next_below(64)] ^= 1 << rng.next_below(8);
        break;
      case 1:
        mem.line_macs[idx] ^= 1ull << rng.next_below(64);
        break;
      case 2:
        mem.counters[idx] += 1;
        break;
      case 3: {
        auto& level = mem.levels[rng.next_below(mem.levels.size())];
        level[rng.next_below(level.size())] ^= 1;
        // Tampering a node on a DIFFERENT path may not affect this read;
        // only assert when the tampered node is plausibly on-path by
        // retrying the read of every line.
        bool any_failed = false;
        for (std::uint64_t i = 0; i < 128; ++i)
          any_failed = any_failed || !tree.read(i).ok;
        EXPECT_TRUE(any_failed) << "node tamper invisible to every line";
        continue;
      }
    }
    EXPECT_FALSE(tree.read(idx).ok) << "trial " << trial;
  }
}

}  // namespace
}  // namespace secddr::baseline
