// Chaos battery (`fleet` label): every injected fault — kills during and
// around checkpoint publication, a corrupted generation, a torn (crash
// before fsync) generation, a hung worker, a torn result frame, a
// dropped announcement, plain kills — must end in either bit-identical
// recovery or clean quarantine, never a wrong aggregate.
//
// Also the coordinator's short-read regression: frames delivered one
// byte at a time through a socketpair must reassemble exactly.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fleet/chaos.h"
#include "fleet/checkpoint.h"
#include "fleet/coordinator.h"
#include "fleet/shard.h"
#include "secmem/params.h"

namespace secddr::fleet {
namespace {

NodeConfig make_node(const char* workload, const secmem::SecurityParams& sec) {
  NodeConfig n;
  n.name = std::string(workload) + "+chaos";
  n.system.mem.cores = 2;
  n.system.security = sec;
  n.system.data_bytes = 4ull << 30;
  n.workload = workload;
  n.instructions = 800;
  n.warmup = 200;
  return n;
}

std::vector<NodeConfig> small_fleet() {
  return {
      make_node("mcf", secmem::SecurityParams::secddr_ctr()),
      make_node("lbm", secmem::SecurityParams::baseline_tree_ctr()),
      make_node("povray", secmem::SecurityParams::encrypt_only_xts()),
  };
}

std::string fresh_state_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "chaos_" + tag;
  reset_state_dir(dir);
  return dir;
}

/// Undisturbed single-worker reference over `nodes`.
FleetResult reference_run(const std::vector<NodeConfig>& nodes,
                          const std::string& tag, Cycle ckpt_every) {
  FleetOptions opt;
  opt.workers = 1;
  opt.checkpoint_every = ckpt_every;
  opt.state_dir = fresh_state_dir(tag + "_ref");
  return run_fleet(nodes, opt);
}

FleetOptions chaos_options(const std::string& tag, Cycle ckpt_every,
                           ChaosPlan plan) {
  FleetOptions opt;
  opt.workers = 2;
  opt.checkpoint_every = ckpt_every;
  opt.state_dir = fresh_state_dir(tag + "_run");
  opt.chaos = std::move(plan);
  opt.watchdog_deadline_ms = 1'000;
  opt.respawn_backoff_ms = 10;  // keep the battery fast, still exponential
  opt.respawn_backoff_max_ms = 100;
  return opt;
}

ChaosPlan one_fault(ChaosPoint point, unsigned node, unsigned occurrence = 1) {
  ChaosFault f;
  f.point = point;
  f.node = node;
  f.occurrence = occurrence;
  ChaosPlan plan;
  plan.faults.push_back(f);
  return plan;
}

/// The expected partial result when `node` is quarantined: its RunResult
/// contributes nothing and its quarantine bit is set.
std::vector<std::uint8_t> encode_without(FleetResult ref, unsigned node) {
  ref.status.assign(ref.per_node.size(), NodeStatus::kOk);
  ref.status[node] = NodeStatus::kQuarantined;
  ref.per_node[node] = sim::RunResult{};
  finalize_aggregates(ref);
  return encode_fleet(ref);
}

// ---------------------------------------------------------------------------
// Single-fault scenarios: each fault class in isolation must recover
// bit-identically (a prior good generation or the pipe protocol absorbs it).
// ---------------------------------------------------------------------------

struct RecoveryCase {
  const char* tag;
  ChaosPoint point;
  unsigned occurrence;
};

class FleetChaosRecovery : public testing::TestWithParam<RecoveryCase> {};

TEST_P(FleetChaosRecovery, SingleFaultRecoversBitIdentically) {
  const RecoveryCase& c = GetParam();
  const std::vector<NodeConfig> nodes = small_fleet();
  const FleetResult ref = reference_run(nodes, c.tag, 400);

  FleetOptions opt = chaos_options(c.tag, 400,
                                   one_fault(c.point, 0, c.occurrence));
  const FleetResult r = run_fleet(nodes, opt);

  EXPECT_GE(r.respawns, 1u) << "fault never engaged the recovery path";
  EXPECT_EQ(r.quarantined, 0u);
  ASSERT_GE(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].node, 0u) << "death attributed to the wrong node";
  EXPECT_EQ(r.status[0], NodeStatus::kRecovered);
  EXPECT_EQ(encode_fleet(r), encode_fleet(ref));
}

INSTANTIATE_TEST_SUITE_P(
    Battery, FleetChaosRecovery,
    testing::Values(
        // Torn tmp file; nothing was published, last generation intact.
        RecoveryCase{"kill_during_write", ChaosPoint::kKillDuringCheckpointWrite,
                     2},
        // Complete tmp, killed before the rename publishes it.
        RecoveryCase{"kill_before_rename", ChaosPoint::kKillBeforeRename, 2},
        // Newest generation corrupted after publication: restore must
        // fall back to the previous generation.
        RecoveryCase{"corrupt_generation",
                     ChaosPoint::kCorruptPublishedGeneration, 2},
        // Crash-before-fsync regression: the published newest generation
        // is torn (its tail never reached disk); restore must skip it.
        RecoveryCase{"torn_generation", ChaosPoint::kPublishTornGeneration, 2},
        // Half a result frame in the pipe, then death: the torn tail is
        // discarded and the result re-earned by the respawn.
        RecoveryCase{"torn_result_frame", ChaosPoint::kTornResultFrame, 1},
        // Plain kill at a slice boundary.
        RecoveryCase{"kill_at_slice", ChaosPoint::kKillAtSlice, 1}),
    [](const testing::TestParamInfo<RecoveryCase>& info) {
      return std::string(info.param.tag);
    });

TEST(FleetChaos, WatchdogRecoversHungWorker) {
  const std::vector<NodeConfig> nodes = small_fleet();
  const FleetResult ref = reference_run(nodes, "hang", 400);

  FleetOptions opt =
      chaos_options("hang", 400, one_fault(ChaosPoint::kHangAtSlice, 0));
  opt.watchdog_deadline_ms = 300;  // a slice takes far less than this
  const FleetResult r = run_fleet(nodes, opt);

  EXPECT_EQ(r.hung_kills, 1u) << "the watchdog never fired";
  ASSERT_GE(r.failures.size(), 1u);
  EXPECT_TRUE(r.failures[0].hung);
  EXPECT_EQ(r.failures[0].node, 0u);
  EXPECT_EQ(r.quarantined, 0u);
  EXPECT_EQ(encode_fleet(r), encode_fleet(ref));
}

TEST(FleetChaos, DroppedAnnouncementDoesNotStallTheFleet) {
  // The durable file is written; only the announcement frame vanishes.
  // No death, no respawn — the run must simply complete and match.
  const std::vector<NodeConfig> nodes = small_fleet();
  const FleetResult ref = reference_run(nodes, "drop", 400);
  FleetOptions opt = chaos_options(
      "drop", 400, one_fault(ChaosPoint::kDropCheckpointAnnounce, 0));
  const FleetResult r = run_fleet(nodes, opt);
  EXPECT_EQ(r.respawns, 0u);
  EXPECT_EQ(r.quarantined, 0u);
  EXPECT_EQ(encode_fleet(r), encode_fleet(ref));
}

TEST(FleetChaos, SeededPlanFullBatteryRecoversBitIdentically) {
  // Every fault class at once, seed-scheduled — the fleetd --chaos smoke
  // in test form.
  const std::vector<NodeConfig> nodes = small_fleet();
  const FleetResult ref = reference_run(nodes, "seeded", 400);

  FleetOptions opt =
      chaos_options("seeded", 400,
                    ChaosPlan::seeded(7, static_cast<unsigned>(nodes.size())));
  opt.watchdog_deadline_ms = 500;
  opt.node_failure_budget = 16;  // the plan's outcome must be recovery
  opt.max_respawns = 64;
  const FleetResult r = run_fleet(nodes, opt);

  EXPECT_GE(r.respawns, 3u) << "most fault classes never engaged";
  EXPECT_GE(r.hung_kills, 1u);
  EXPECT_EQ(r.quarantined, 0u);
  EXPECT_EQ(r.failures.size(), r.respawns);
  EXPECT_EQ(encode_fleet(r), encode_fleet(ref));
}

// ---------------------------------------------------------------------------
// Quarantine scenarios: when recovery is impossible the run must finish
// with an explicit partial result, never a wrong aggregate.
// ---------------------------------------------------------------------------

TEST(FleetChaos, FailureBudgetExhaustionQuarantinesTheNode) {
  const std::vector<NodeConfig> nodes = small_fleet();
  const FleetResult ref = reference_run(nodes, "budget", 400);

  // Three kills, all attributed to node 0 (each worker life fires the
  // next unfired fault at its first slice of node 0).
  ChaosPlan plan;
  for (int i = 0; i < 3; ++i)
    plan.faults.push_back(one_fault(ChaosPoint::kKillAtSlice, 0).faults[0]);
  FleetOptions opt = chaos_options("budget", 400, plan);
  opt.node_failure_budget = 2;
  const FleetResult r = run_fleet(nodes, opt);

  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.status[0], NodeStatus::kQuarantined);
  EXPECT_NE(r.quarantine_reasons[0].find("budget"), std::string::npos)
      << r.quarantine_reasons[0];
  EXPECT_EQ(r.status[1], NodeStatus::kOk);  // its worker never died
  // Node 2 shares the dying worker slot with node 0, so it finishes via
  // checkpoint resume.
  EXPECT_EQ(r.status[2], NodeStatus::kRecovered);
  // The partial aggregate equals the reference minus the quarantined
  // node — explicit, not wrong.
  EXPECT_EQ(encode_fleet(r), encode_without(ref, 0));
}

TEST(FleetChaos, AllGenerationsCorruptQuarantinesTheNode) {
  const std::vector<NodeConfig> nodes = small_fleet();
  const FleetResult ref = reference_run(nodes, "allcorrupt", 400);

  // Seed the state directory with two generations of garbage for node 0:
  // state exists but none of it decodes, which must quarantine (a silent
  // restart from zero would fabricate history).
  const std::string dir = fresh_state_dir("allcorrupt_run");
  const std::string base = ShardDriver::checkpoint_path(dir, 0);
  for (std::uint64_t gen = 1; gen <= 2; ++gen) {
    std::vector<std::uint8_t> junk(256, static_cast<std::uint8_t>(gen));
    checkpoint::write_file(checkpoint::generation_path(base, gen), 1, junk);
    // Valid container, wrong config hash -> CheckpointFormatError on
    // restore; also flip a byte so one generation dies on CRC instead.
    if (gen == 2) {
      std::FILE* f =
          std::fopen(checkpoint::generation_path(base, gen).c_str(), "r+b");
      ASSERT_NE(f, nullptr);
      std::fseek(f, 40, SEEK_SET);
      std::fputc(0xa5, f);
      std::fclose(f);
    }
  }

  FleetOptions opt;
  opt.workers = 2;
  opt.checkpoint_every = 400;
  opt.state_dir = dir;
  const FleetResult r = run_fleet(nodes, opt);

  EXPECT_EQ(r.respawns, 0u);  // quarantine is reported, not crashed into
  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.status[0], NodeStatus::kQuarantined);
  EXPECT_NE(r.quarantine_reasons[0].find("unrecoverable"), std::string::npos)
      << r.quarantine_reasons[0];
  EXPECT_EQ(encode_fleet(r), encode_without(ref, 0));
}

// ---------------------------------------------------------------------------
// Short-read regression: the coordinator's frame reassembly must be
// correct at every chunk boundary, including inside the 8-byte header.
// ---------------------------------------------------------------------------

TEST(FleetChaos, FrameBufferReassemblesOneByteAtATimeThroughSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  std::vector<std::vector<std::uint8_t>> bodies;
  bodies.push_back({});  // empty body is a valid frame
  bodies.push_back({1, 2, 3});
  std::vector<std::uint8_t> big(3000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 13 + 1);
  bodies.push_back(big);

  std::vector<std::uint8_t> wire;
  for (const auto& b : bodies) {
    const std::vector<std::uint8_t> f = encode_frame(b);
    wire.insert(wire.end(), f.begin(), f.end());
  }

  FrameBuffer fb;
  std::vector<std::vector<std::uint8_t>> got;
  // One byte per send: every possible short-read boundary is exercised.
  for (const std::uint8_t byte : wire) {
    ASSERT_EQ(::send(sv[0], &byte, 1, 0), 1);
    std::uint8_t rx = 0;
    ASSERT_EQ(::recv(sv[1], &rx, 1, 0), 1);
    fb.append(&rx, 1);
    std::vector<std::uint8_t> body;
    while (fb.next(body)) got.push_back(body);
  }
  ::close(sv[0]);
  ::close(sv[1]);

  ASSERT_EQ(got.size(), bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) EXPECT_EQ(got[i], bodies[i]);
  EXPECT_EQ(fb.buffered(), 0u);
}

TEST(FleetChaos, FrameBufferRejectsCorruptAndOversizedFrames) {
  {
    // Flipped body byte -> CRC mismatch.
    std::vector<std::uint8_t> f = encode_frame({9, 9, 9, 9});
    f[10] ^= 0x01;
    FrameBuffer fb;
    fb.append(f.data(), f.size());
    std::vector<std::uint8_t> body;
    EXPECT_THROW(fb.next(body), std::runtime_error);
  }
  {
    // A torn length field claiming an absurd frame must throw, not make
    // the reassembler wait forever for bytes that never come.
    std::vector<std::uint8_t> f = encode_frame({1});
    f[3] = 0xff;  // length's top byte -> ~4GB
    FrameBuffer fb;
    fb.append(f.data(), f.size());
    std::vector<std::uint8_t> body;
    EXPECT_THROW(fb.next(body), std::runtime_error);
  }
}

TEST(FleetChaos, TornTrailingFrameIsDiscardedAtEof) {
  // A SIGKILL mid-write leaves a strict prefix in the pipe; the buffer
  // must simply never yield it.
  const std::vector<std::uint8_t> f = encode_frame({5, 6, 7, 8});
  FrameBuffer fb;
  fb.append(f.data(), f.size() - 3);
  std::vector<std::uint8_t> body;
  EXPECT_FALSE(fb.next(body));
  EXPECT_EQ(fb.buffered(), f.size() - 3);  // visible as a torn tail
}

}  // namespace
}  // namespace secddr::fleet
