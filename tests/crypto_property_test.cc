// Additional crypto property sweeps: parameterized round-trips, algebraic
// identities, and edge cases beyond the published-vector tests.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "crypto/aes.h"
#include "crypto/aes_ctr.h"
#include "crypto/aes_xts.h"
#include "crypto/bignum.h"
#include "crypto/cmac.h"
#include "crypto/crc.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace secddr::crypto {
namespace {

// ------------------------------------------------------------ AES-256

TEST(Aes256, RoundTripRandom) {
  Xoshiro256 rng(21);
  for (int i = 0; i < 100; ++i) {
    Key256 key;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    const Aes aes(key);
    Block pt;
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

TEST(Aes256, FourteenRounds) {
  const Aes aes(Key256{});
  EXPECT_EQ(aes.rounds(), 14);
  EXPECT_EQ(Aes(Key128{}).rounds(), 10);
}

// ------------------------------------------------------------ CTR

class CtrLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CtrLengths, EncryptDecryptIdentityAtEveryLength) {
  const Aes aes(Key128{3, 1, 4});
  const Block nonce = make_nonce(99, 'T', 2);
  Xoshiro256 rng(23);
  std::vector<std::uint8_t> data(GetParam());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const auto orig = data;
  ctr_xcrypt(aes, nonce, data.data(), data.size());
  if (!data.empty()) {
    EXPECT_NE(data, orig);
  }
  ctr_xcrypt(aes, nonce, data.data(), data.size());
  EXPECT_EQ(data, orig);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CtrLengths,
                         ::testing::Values(1, 15, 16, 17, 31, 32, 33, 64,
                                           100, 256));

TEST(CtrKeystream, PrefixConsistency) {
  // The first N bytes of a longer keystream equal the N-byte keystream.
  const Aes aes(Key128{9});
  const Block nonce = make_nonce(5, 'T', 0);
  const auto long_ks = ctr_keystream(aes, nonce, 128);
  const auto short_ks = ctr_keystream(aes, nonce, 40);
  EXPECT_TRUE(std::equal(short_ks.begin(), short_ks.end(), long_ks.begin()));
}

// ------------------------------------------------------------ XTS

class XtsSectors : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XtsSectors, RoundTripAndSectorSeparation) {
  const AesXts xts(Key128{1, 2}, Key128{3, 4});
  CacheLine line = CacheLine::filled(0xC3);
  CacheLine other = line;
  xts.encrypt(GetParam(), line.bytes.data(), line.bytes.size());
  xts.encrypt(GetParam() + 1, other.bytes.data(), other.bytes.size());
  EXPECT_FALSE(line == other) << "adjacent sectors must differ";
  xts.decrypt(GetParam(), line.bytes.data(), line.bytes.size());
  EXPECT_EQ(line, CacheLine::filled(0xC3));
}

INSTANTIATE_TEST_SUITE_P(Sectors, XtsSectors,
                         ::testing::Values(0ull, 1ull, 0xFFull, 0x10000ull,
                                           0xFFFFFFFFull,
                                           0x123456789ABCDEFull));

TEST(Xts, BlockPositionsWithinUnitDiffer) {
  // Identical 16B blocks at different positions of one unit encrypt
  // differently (the per-block tweak progression).
  const AesXts xts(Key128{5}, Key128{6});
  CacheLine line = CacheLine::filled(0x00);
  xts.encrypt(7, line.bytes.data(), line.bytes.size());
  for (int i = 1; i < 4; ++i) {
    EXPECT_FALSE(std::equal(line.bytes.begin(), line.bytes.begin() + 16,
                            line.bytes.begin() + 16 * i))
        << "block " << i;
  }
}

// ------------------------------------------------------------ CMAC/HMAC

TEST(CmacProperties, LengthExtensionResistance) {
  // tag(m) gives no valid tag for m||suffix (sampled check).
  const Cmac cmac(Key128{7});
  const std::uint8_t m[32] = {1, 2, 3};
  const Block t32 = cmac.tag(m, 32);
  std::uint8_t extended[48] = {1, 2, 3};
  const Block t48 = cmac.tag(extended, 48);
  EXPECT_NE(t32, t48);
}

TEST(CmacProperties, KeySeparation) {
  const std::uint8_t m[16] = {9};
  EXPECT_NE(Cmac(Key128{1}).tag(m, 16), Cmac(Key128{2}).tag(m, 16));
}

TEST(HmacProperties, KeyAndMessageSensitivity) {
  const std::vector<std::uint8_t> k1 = {1}, k2 = {2}, msg = {5, 6, 7};
  EXPECT_NE(hmac_sha256(k1, msg), hmac_sha256(k2, msg));
  EXPECT_NE(hmac_sha256(k1, msg), hmac_sha256(k1, {5, 6, 8}));
}

TEST(HkdfProperties, OutputsAreIndependentPerInfo) {
  const std::vector<std::uint8_t> ikm(32, 0xAB);
  const auto a = hkdf({}, ikm, {'a'}, 32);
  const auto b = hkdf({}, ikm, {'b'}, 32);
  EXPECT_NE(a, b);
  // And length-consistent: prefix property.
  const auto a16 = hkdf({}, ikm, {'a'}, 16);
  EXPECT_TRUE(std::equal(a16.begin(), a16.end(), a.begin()));
}

// ------------------------------------------------------------ CRC

TEST(CrcProperties, LinearityOverXor) {
  // CRC(a) ^ CRC(b) == CRC(a^b) ^ CRC(0) for equal-length inputs: the
  // linearity that makes a plain (unencrypted) CRC forgeable — the
  // reason SecDDR must encrypt the eWCRC (§III-B).
  Xoshiro256 rng(29);
  std::uint8_t a[24], b[24], x[24], zero[24] = {};
  for (int i = 0; i < 24; ++i) {
    a[i] = static_cast<std::uint8_t>(rng.next());
    b[i] = static_cast<std::uint8_t>(rng.next());
    x[i] = a[i] ^ b[i];
  }
  EXPECT_EQ(static_cast<std::uint16_t>(crc16(a, 24) ^ crc16(b, 24)),
            static_cast<std::uint16_t>(crc16(x, 24) ^ crc16(zero, 24)));
}

TEST(CrcProperties, DetectsAllBurstErrorsUpTo16Bits) {
  // CRC-16 detects any burst error shorter than the polynomial degree.
  std::uint8_t data[32] = {};
  const std::uint16_t base = crc16(data, 32);
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    auto copy = std::to_array(data);
    const unsigned start = static_cast<unsigned>(rng.next_below(32 * 8 - 16));
    const unsigned len = 1 + static_cast<unsigned>(rng.next_below(16));
    // Random non-zero burst of `len` bits starting at `start`.
    bool nonzero = false;
    for (unsigned i = 0; i < len; ++i) {
      if (i == 0 || rng.chance(0.5)) {
        copy[(start + i) / 8] ^= static_cast<std::uint8_t>(1u << ((start + i) % 8));
        nonzero = true;
      }
    }
    if (!nonzero) continue;
    EXPECT_NE(crc16(copy.data(), 32), base)
        << "missed burst at " << start << " len " << len;
  }
}

// ------------------------------------------------------------ BigUInt

TEST(BigUIntProperties, AlgebraicIdentities) {
  Xoshiro256 rng(37);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> bytes(1 + rng.next_below(32));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    const BigUInt a = BigUInt::from_bytes_be(bytes);
    EXPECT_EQ(a + BigUInt(0), a);
    EXPECT_EQ(a * BigUInt(1), a);
    EXPECT_EQ(a - a, BigUInt(0));
    EXPECT_EQ(a / BigUInt(1), a);
    if (!a.is_zero()) {
      EXPECT_EQ(a % a, BigUInt(0));
      EXPECT_EQ(a / a, BigUInt(1));
    }
    EXPECT_EQ((a << 32) >> 32, a);
    EXPECT_EQ(a * BigUInt(2), a + a);
  }
}

TEST(BigUIntProperties, ModExpHomomorphism) {
  // g^(x+y) == g^x * g^y (mod p) for a small prime field.
  const BigUInt p(1000003);
  Xoshiro256 rng(41);
  for (int i = 0; i < 50; ++i) {
    const BigUInt g(2 + rng.next_below(1000));
    const BigUInt x(rng.next_below(10000));
    const BigUInt y(rng.next_below(10000));
    const BigUInt lhs = BigUInt::mod_exp(g, x + y, p);
    const BigUInt rhs = BigUInt::mod_mul(BigUInt::mod_exp(g, x, p),
                                         BigUInt::mod_exp(g, y, p), p);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigUIntProperties, CompareIsTotalOrder) {
  const BigUInt a(5), b(500), c = BigUInt::from_hex("ffffffffffffffffff");
  EXPECT_TRUE(a < b && b < c && a < c);
  EXPECT_FALSE(c < a);
  EXPECT_TRUE(a <= a && a >= a && a == a);
}

// ------------------------------------------------------------ SHA-256

TEST(Sha256Properties, ChunkingInvariance) {
  // Hash must not depend on update() call boundaries.
  Xoshiro256 rng(43);
  std::vector<std::uint8_t> data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const auto whole = sha256(data.data(), data.size());
  Sha256 h;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t take =
        std::min<std::size_t>(1 + rng.next_below(97), data.size() - off);
    h.update(data.data() + off, take);
    off += take;
  }
  EXPECT_EQ(h.finish(), whole);
}

}  // namespace
}  // namespace secddr::crypto
