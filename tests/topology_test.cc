// Multi-channel memory topology: the ChannelSelector address round-trip,
// per-channel metadata layout isolation, and MemoryBackend routing.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "dram/address.h"
#include "secmem/layout.h"
#include "secmem/params.h"
#include "sim/backend.h"

namespace secddr {
namespace {

dram::Geometry make_geometry(unsigned channels,
                             dram::ChannelInterleave interleave) {
  dram::Geometry g;
  g.channels = channels;
  g.channel_interleave = interleave;
  return g;
}

// ---------------------------------------------------------------- selector

TEST(ChannelSelector, RoundTripAcrossChannelCountsAndBitPositions) {
  Xoshiro256 rng(42);
  for (const auto interleave :
       {dram::ChannelInterleave::kLine, dram::ChannelInterleave::kRow}) {
    for (const unsigned channels : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("channels=" + std::to_string(channels) + " interleave=" +
                   std::to_string(static_cast<int>(interleave)));
      const dram::ChannelSelector sel(make_geometry(channels, interleave));
      ASSERT_EQ(sel.channels(), channels);
      for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.next() % (64ull << 30);  // arbitrary byte address
        const unsigned ch = sel.channel_of(a);
        ASSERT_LT(ch, channels);
        // (channel, local) -> global is the exact inverse of the split.
        ASSERT_EQ(sel.to_global(ch, sel.to_local(a)), a);
        // The channel bits are gone: local addresses from one channel's
        // address stream are dense (stripe i of channel ch maps to local
        // stripe i/channels... verified via the stripe index below).
        const Addr stripe = Addr{1} << sel.shift();
        ASSERT_EQ(sel.to_local(a) / stripe, (a / stripe) / channels);
        // Offsets within a stripe survive untouched.
        ASSERT_EQ(sel.to_local(a) % stripe, a % stripe);
      }
    }
  }
}

TEST(ChannelSelector, LineInterleaveRoundRobinsConsecutiveLines) {
  const dram::ChannelSelector sel(
      make_geometry(4, dram::ChannelInterleave::kLine));
  for (Addr line = 0; line < 64; ++line)
    EXPECT_EQ(sel.channel_of(line * kLineSize), line % 4);
}

TEST(ChannelSelector, RowInterleaveKeepsRowBufferStripesTogether) {
  const dram::Geometry g = make_geometry(4, dram::ChannelInterleave::kRow);
  const dram::ChannelSelector sel(g);
  const Addr row_bytes =
      static_cast<Addr>(g.columns_per_row) * kLineSize;  // 8KB
  for (Addr stripe = 0; stripe < 16; ++stripe) {
    const unsigned ch = sel.channel_of(stripe * row_bytes);
    EXPECT_EQ(ch, stripe % 4);
    // Every line of the stripe stays on the stripe's channel.
    for (Addr off = 0; off < row_bytes; off += kLineSize)
      ASSERT_EQ(sel.channel_of(stripe * row_bytes + off), ch);
  }
}

TEST(ChannelSelector, SingleChannelIsIdentity) {
  for (const auto interleave :
       {dram::ChannelInterleave::kLine, dram::ChannelInterleave::kRow}) {
    const dram::ChannelSelector sel(make_geometry(1, interleave));
    Xoshiro256 rng(7);
    for (int i = 0; i < 1000; ++i) {
      const Addr a = rng.next() % (64ull << 30);
      EXPECT_EQ(sel.channel_of(a), 0u);
      EXPECT_EQ(sel.to_local(a), a);
      EXPECT_EQ(sel.to_global(0, a), a);
    }
  }
}

// ----------------------------------------------------- metadata isolation

// Each channel lays its metadata out above its local data slice; mapped
// back to the global address space, no channel's metadata region may
// overlap the global data region or any other channel's metadata.
TEST(Topology, PerChannelMetadataSlicesNeverOverlapDataOrEachOther) {
  const std::uint64_t data_bytes = 4ull << 30;
  for (const auto interleave :
       {dram::ChannelInterleave::kLine, dram::ChannelInterleave::kRow}) {
    for (const unsigned channels : {2u, 4u, 8u}) {
      SCOPED_TRACE("channels=" + std::to_string(channels) + " interleave=" +
                   std::to_string(static_cast<int>(interleave)));
      const dram::Geometry g = make_geometry(channels, interleave);
      const dram::ChannelSelector sel(g);
      const secmem::SecurityParams params =
          secmem::SecurityParams::baseline_tree_ctr();
      const secmem::MetadataLayout layout(params, data_bytes / channels);
      ASSERT_LE(layout.end_of_memory(), g.channel_capacity_bytes());

      std::set<Addr> seen_meta;
      Xoshiro256 rng(channels * 31 + static_cast<unsigned>(interleave));
      for (int i = 0; i < 4000; ++i) {
        // A random global data address, routed like the backend routes it.
        const Addr global = line_base(rng.next() % data_bytes);
        const unsigned ch = sel.channel_of(global);
        const Addr local = sel.to_local(global);
        ASSERT_LT(local, data_bytes / channels);

        std::vector<Addr> meta{layout.counter_line_addr(local)};
        for (unsigned level = 1; level <= layout.tree_levels(); ++level)
          meta.push_back(layout.tree_node_addr(level, local));
        for (const Addr m : meta) {
          // Metadata lives above the channel's data slice...
          ASSERT_TRUE(layout.is_metadata(m));
          // ...and on the same channel as the data it covers.
          const Addr m_global = sel.to_global(ch, m);
          ASSERT_EQ(sel.channel_of(m_global), ch);
          // Its global image never falls into the global data region
          // (which is exactly the image of every channel's local data).
          ASSERT_GE(sel.to_local(m_global), data_bytes / channels);
          seen_meta.insert(m_global);
        }
      }
      // Distinct (channel, local metadata line) pairs map to distinct
      // global lines: cross-channel collisions are impossible.
      for (const Addr m : seen_meta) {
        const unsigned ch = sel.channel_of(m);
        ASSERT_EQ(sel.to_global(ch, sel.to_local(m)), m);
      }
    }
  }
}

// ---------------------------------------------------------------- backend

// Reads issued to the backend route to the owning channel, complete, and
// aggregate stats equal the per-channel sums.
TEST(MemoryBackend, RoutesReadsAndAggregatesStats) {
  sim::BackendConfig cfg;
  cfg.geometry.channels = 4;
  cfg.security = secmem::SecurityParams::secddr_ctr();
  cfg.data_bytes = 4ull << 30;
  sim::MemoryBackend backend(cfg);
  ASSERT_EQ(backend.channels(), 4u);

  // 64 consecutive lines: line interleave spreads them 16 per channel.
  constexpr unsigned kReads = 64;
  for (unsigned i = 0; i < kReads; ++i)
    backend.start_read(static_cast<Addr>(i) * kLineSize, i, /*now=*/0);

  std::set<std::uint64_t> done;
  Cycle now = 0;
  while (done.size() < kReads && now < 1'000'000) {
    backend.tick(++now);
    for (const auto& r : backend.ready()) done.insert(r.tag);
    backend.ready().clear();
  }
  ASSERT_EQ(done.size(), kReads) << "reads lost in routing";
  EXPECT_TRUE(backend.drain_ready());

  const auto per_channel = backend.dram_stats_per_channel();
  ASSERT_EQ(per_channel.size(), 4u);
  std::uint64_t sum = 0;
  for (const auto& s : per_channel) {
    // 16 data reads each, plus that channel's counter-line fetches.
    EXPECT_GE(s.reads_enqueued, kReads / 4) << "interleave skewed";
    sum += s.reads_completed;
  }
  EXPECT_EQ(sum, backend.dram_stats().reads_completed);

  const auto engines = backend.engine_stats_per_channel();
  ASSERT_EQ(engines.size(), 4u);
  std::uint64_t engine_reads = 0;
  for (const auto& s : engines) {
    EXPECT_EQ(s.data_reads, kReads / 4) << "interleave skewed";
    engine_reads += s.data_reads;
  }
  EXPECT_EQ(engine_reads, kReads);
  EXPECT_EQ(backend.engine_stats().data_reads, kReads);
}

// drain_ready() must stay false while any single channel still holds work.
TEST(MemoryBackend, DrainReadyWaitsForEveryChannel) {
  sim::BackendConfig cfg;
  cfg.geometry.channels = 2;
  cfg.security = secmem::SecurityParams::encrypt_only_xts();
  cfg.data_bytes = 4ull << 30;
  sim::MemoryBackend backend(cfg);

  // One read on channel 1 only (line 1 under line interleave).
  backend.start_read(kLineSize, /*tag=*/0, /*now=*/0);
  EXPECT_FALSE(backend.drain_ready());
  Cycle now = 0;
  bool saw_ready = false;
  while (!saw_ready && now < 1'000'000) {
    backend.tick(++now);
    saw_ready = !backend.ready().empty();
    // Undrained work (in-flight or sitting in ready()) blocks the drain.
    EXPECT_EQ(backend.drain_ready(), false);
    if (saw_ready) backend.ready().clear();
  }
  ASSERT_TRUE(saw_ready);
  EXPECT_TRUE(backend.drain_ready());
  EXPECT_EQ(backend.dram_stats_per_channel()[0].reads_enqueued, 0u);
  EXPECT_EQ(backend.dram_stats_per_channel()[1].reads_enqueued, 1u);
}

// Threaded per-channel ticking (BackendConfig::mem_threads): the same
// request stream must produce the identical ready-tag sequence and
// per-channel statistics as the serial backend — the fixed channel-order
// aggregation barrier makes the interleaving deterministic.
TEST(MemoryBackendThreaded, TickThreadsAreBitIdenticalToSerial) {
  const auto drive = [](unsigned mem_threads) {
    sim::BackendConfig cfg;
    cfg.geometry.channels = 4;
    cfg.security = secmem::SecurityParams::secddr_ctr();
    cfg.data_bytes = 4ull << 30;
    cfg.mem_threads = mem_threads;
    sim::MemoryBackend backend(cfg);
    EXPECT_EQ(backend.mem_threads(), mem_threads);

    // Reads + writes across all channels, injected over time.
    std::vector<std::uint64_t> ready_order;
    Cycle now = 0;
    std::uint64_t tag = 0;
    for (unsigned round = 0; round < 96; ++round) {
      backend.start_read(static_cast<Addr>(round) * 3 * kLineSize, tag++,
                         now);
      if (round % 3 == 0)
        backend.start_write(static_cast<Addr>(round) * 7 * kLineSize, now);
      for (unsigned i = 0; i < 40; ++i) {
        backend.tick(++now);
        for (const auto& r : backend.ready()) {
          ready_order.push_back(r.tag);
          ready_order.push_back(r.at);
        }
        backend.ready().clear();
      }
    }
    while (!backend.drain_ready() && now < 2'000'000) {
      backend.tick(++now);
      for (const auto& r : backend.ready()) {
        ready_order.push_back(r.tag);
        ready_order.push_back(r.at);
      }
      backend.ready().clear();
    }
    EXPECT_TRUE(backend.drain_ready());
    auto dram = backend.dram_stats_per_channel();
    auto engine = backend.engine_stats_per_channel();
    return std::make_tuple(std::move(ready_order), std::move(dram),
                           std::move(engine));
  };

  const auto serial = drive(1);
  for (unsigned threads : {2u, 4u}) {
    SCOPED_TRACE("mem_threads=" + std::to_string(threads));
    const auto threaded = drive(threads);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(threaded))
        << "ready sequence diverged";
    const auto& ds = std::get<1>(serial);
    const auto& dt = std::get<1>(threaded);
    ASSERT_EQ(ds.size(), dt.size());
    for (std::size_t c = 0; c < ds.size(); ++c) {
      SCOPED_TRACE("channel " + std::to_string(c));
      EXPECT_EQ(ds[c].reads_completed, dt[c].reads_completed);
      EXPECT_EQ(ds[c].writes_completed, dt[c].writes_completed);
      EXPECT_EQ(ds[c].row_hits, dt[c].row_hits);
      EXPECT_EQ(ds[c].activates, dt[c].activates);
      EXPECT_EQ(ds[c].precharges, dt[c].precharges);
      EXPECT_EQ(ds[c].total_read_latency, dt[c].total_read_latency);
    }
    const auto& es = std::get<2>(serial);
    const auto& et = std::get<2>(threaded);
    ASSERT_EQ(es.size(), et.size());
    for (std::size_t c = 0; c < es.size(); ++c) {
      EXPECT_EQ(es[c].data_reads, et[c].data_reads);
      EXPECT_EQ(es[c].counter_fetches, et[c].counter_fetches);
      EXPECT_EQ(es[c].meta_writebacks, et[c].meta_writebacks);
    }
  }
}

// mem_threads is clamped to the channel count: asking for more workers
// than channels must not spawn idle spinners.
TEST(MemoryBackendThreaded, ThreadCountClampsToChannels) {
  sim::BackendConfig cfg;
  cfg.geometry.channels = 2;
  cfg.data_bytes = 4ull << 30;
  cfg.mem_threads = 8;
  sim::MemoryBackend backend(cfg);
  EXPECT_EQ(backend.mem_threads(), 2u);
  // The clamped backend still works.
  backend.start_read(0, 1, 0);
  Cycle now = 0;
  while (!backend.drain_ready() && now < 1'000'000) {
    backend.tick(++now);
    backend.ready().clear();
  }
  EXPECT_TRUE(backend.drain_ready());
}

}  // namespace
}  // namespace secddr
