// Power/thermal battery (`power` label):
//
//  * a golden FNV-1a hash pins every double the Table II analytical
//    model emits (bit-exact — the model is pure arithmetic, so any
//    change to its constants or formulas must show up here);
//  * property tests for the integer energy model (conservation is an
//    exact integer identity), the fixed-point exp() behind the RC
//    thermal node, the discrete RC step against the closed-form
//    exponential, and temperature monotonicity in injected energy;
//  * simulation-level conservation: a RunResult's energy breakdown must
//    equal counts x per-op exactly, with background = windows x cycles
//    x ranks x per-cycle;
//  * accounting neutrality (enabled-no-policies runs are bit-identical
//    to disabled) and policy determinism (throttle + remap enabled runs
//    are bit-identical across loop modes, thread counts, and channel
//    counts);
//  * throttle engagement and remap swaps actually occur under the
//    configurations that should produce them, without losing requests;
//  * controller save/load round-trips the power block (remap table,
//    window counts, thermal state, throttle engagement) mid-run.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/energy.h"
#include "analysis/power.h"
#include "analysis/thermal.h"
#include "common/random.h"
#include "dram/controller.h"
#include "fleet/checkpoint.h"
#include "secmem/params.h"
#include "sim/system.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr {
namespace {

// ------------------------------------------------------------ Table II

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}

std::uint64_t fnv1a_double(std::uint64_t h, double d) {
  return fnv1a_u64(h, std::bit_cast<std::uint64_t>(d));
}

// The AesPowerModel is pure double arithmetic from literal constants, so
// its output is bit-exact on any IEEE-754 platform: pin every emitted
// value behind one hash. If a deliberate model change lands, re-capture
// the constant from the failure message and update the paper-facing
// assertions in bench/table2_power.cc in the same commit.
TEST(Table2Golden, EveryEmittedDoubleIsPinned) {
  const analysis::AesPowerModel model;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto rows = model.table2();
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) {
    h = fnv1a(h, r.config.data(), r.config.size());
    h = fnv1a_u64(h, r.aes_units);
    h = fnv1a_double(h, r.chip_rate_gbps);
    h = fnv1a_double(h, r.aes_power_mw);
    h = fnv1a_double(h, r.dram_chip_power_mw);
    h = fnv1a_double(h, r.rank_power_mw);
    h = fnv1a_u64(h, r.ecc_chips_per_rank);
    h = fnv1a_double(h, r.overhead_per_rank);
  }
  h = fnv1a_double(h, model.total_area_mm2(3));
  const auto att = analysis::AesPowerModel::attestation_logic();
  h = fnv1a_double(h, att.multiplier_mm2);
  h = fnv1a_double(h, att.sha_mm2);
  h = fnv1a_double(h, att.multiplier_mw_at_500mhz);
  h = fnv1a_double(h, att.sha_mw_at_500mhz);
  EXPECT_EQ(h, 8457907628786275453ull) << "Table II output changed";
}

// ------------------------------------------------------- energy model

TEST(EnergyModel, ConservationIsAnExactIntegerIdentity) {
  const analysis::EnergyModel model;
  const auto& p = model.params();
  Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) {
    analysis::CommandCounts c;
    c.act = rng.next() % 10000;
    c.pre = rng.next() % 10000;
    c.rd = rng.next() % 10000;
    c.wr = rng.next() % 10000;
    c.ref = rng.next() % 100;
    const std::uint64_t cycles = rng.next() % 100000;
    const analysis::EnergyBreakdown e = model.window_energy(c, cycles);
    EXPECT_EQ(e.act_fj, c.act * p.act_fj);
    EXPECT_EQ(e.pre_fj, c.pre * p.pre_fj);
    EXPECT_EQ(e.rd_fj, c.rd * p.rd_fj);
    EXPECT_EQ(e.wr_fj, c.wr * p.wr_fj);
    EXPECT_EQ(e.ref_fj, c.ref * p.ref_fj);
    EXPECT_EQ(e.background_fj, cycles * p.background_fj_per_cycle);
    EXPECT_EQ(e.total_fj(), e.act_fj + e.pre_fj + e.rd_fj + e.wr_fj +
                                e.ref_fj + e.background_fj);
    EXPECT_EQ(e.dynamic_fj(), e.total_fj() - e.background_fj);
  }
}

// ------------------------------------------------------ thermal model

TEST(ThermalModel, IntegerExpMatchesStdExp) {
  // exp_neg_q32_to_q30 across the useful range (the node clamps x at 45,
  // where exp(-x) is below one Q30 ulp anyway).
  for (double x = 0.0; x <= 40.0; x += x < 1.0 ? 0.001 : 0.0773) {
    const auto x_q32 =
        static_cast<std::uint64_t>(x * 4294967296.0);  // 2^32
    const double got =
        static_cast<double>(analysis::ThermalNode::exp_neg_q32_to_q30(x_q32)) /
        1073741824.0;  // 2^30
    EXPECT_NEAR(got, std::exp(-x), 1e-5) << "x=" << x;
  }
  EXPECT_EQ(analysis::ThermalNode::exp_neg_q32_to_q30(0), 1ull << 30);
  EXPECT_EQ(analysis::ThermalNode::exp_neg_q32_to_q30(46ull << 32), 0ull);
}

TEST(ThermalModel, RcStepMatchesClosedFormExponential) {
  // Constant power P for n windows from ambient:
  //   T[n] = amb + P * R * (1 - alpha^n)
  // The fixed-point trajectory must track the double closed form (using
  // the node's own alpha, so only representation error accumulates, not
  // model error) and the fully continuous solution.
  analysis::ThermalParams tp;
  tp.r_mk_per_w = 4000;
  tp.c_nj_per_k = 100'000;  // tau = 400us >> dt: several windows per tau
  const std::uint64_t window = 1024, period_fs = 625'000;
  analysis::ThermalNode node(tp, window, period_fs);

  const double dt_s = static_cast<double>(window * period_fs) * 1e-15;
  const double r_kw = tp.r_mk_per_w / 1000.0;
  const double c_jk = static_cast<double>(tp.c_nj_per_k) * 1e-9;
  const double alpha_cont = std::exp(-dt_s / (r_kw * c_jk));
  const double alpha_node =
      static_cast<double>(node.alpha_q30()) / 1073741824.0;
  EXPECT_NEAR(alpha_node, alpha_cont, 1e-5);

  const std::uint64_t e_fj = 500'000'000;  // 0.5 uJ per window
  const double p_w = static_cast<double>(e_fj) * 1e-15 / dt_s;
  const double amb_c = static_cast<double>(tp.ambient_mc) / 1000.0;
  double t_model = amb_c;      // recurrence with the node's own alpha
  for (int n = 1; n <= 200; ++n) {
    node.apply_window(e_fj);
    t_model = amb_c + alpha_node * (t_model - amb_c) +
              p_w * r_kw * (1.0 - alpha_node);
    // Compare in Q16 (the trajectory's native grid): temp_mc() would add
    // a milli-degree conversion floor on top.
    const double t_node = static_cast<double>(node.temp_q16()) / 65536.0;
    const double t_cont =
        amb_c + p_w * r_kw * (1.0 - std::pow(alpha_cont, n));
    // The decay and injection terms each floor once per window, so the
    // fixed-point trajectory sits at most ~2.5 Q16 ulps/window (4e-5 C)
    // below the exact recurrence, linearly in n until equilibrium.
    const double trunc = 0.0005 + 4e-5 * n;
    EXPECT_NEAR(t_node, t_model, trunc) << "window " << n;
    EXPECT_NEAR(t_node - amb_c, t_cont - amb_c,
                trunc + 1e-4 * (t_cont - amb_c))
        << "window " << n;
  }
  // Steady state: T -> amb + P * R. tau/dt = 625 windows, so run to
  // ~13 tau (analytic residual < 1e-5 C); the remaining gap is the
  // truncation bias, bounded by ~2 ulps / (1 - alpha) ~ 0.02 C here.
  for (int n = 0; n < 8000; ++n) node.apply_window(e_fj);
  EXPECT_NEAR(static_cast<double>(node.temp_q16()) / 65536.0,
              amb_c + p_w * r_kw, 0.03);
  EXPECT_EQ(node.peak_mc(), node.temp_mc()) << "monotone rise: peak = last";
}

TEST(ThermalModel, TemperatureIsMonotoneInInjectedEnergy) {
  analysis::ThermalParams tp;
  tp.c_nj_per_k = 10'000;
  analysis::ThermalNode cool(tp, 1024, 625'000), warm(tp, 1024, 625'000);
  Xoshiro256 rng(4);
  for (int n = 0; n < 5000; ++n) {
    const std::uint64_t e = rng.next() % 1'000'000'000;
    const std::uint64_t extra = rng.next() % 1'000'000'000;
    cool.apply_window(e);
    warm.apply_window(e + extra);
    ASSERT_LE(cool.temp_q16(), warm.temp_q16()) << "window " << n;
    ASSERT_GE(cool.temp_q16(), analysis::ThermalNode::mc_to_q16(
                                   tp.ambient_mc));
  }
}

// -------------------------------------------------- simulation plumbing

sim::SystemConfig power_config(unsigned channels, unsigned mem_threads,
                               bool event_driven,
                               const dram::PowerConfig& power) {
  sim::SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = secmem::SecurityParams::secddr_ctr();
  cfg.geometry.channels = channels;
  cfg.data_bytes = 4ull << 30;  // two cores at 2GB trace stride
  cfg.event_driven = event_driven;
  cfg.mem_threads = mem_threads;
  cfg.power = power;
  return cfg;
}

sim::RunResult run_power(const workloads::WorkloadDesc& desc,
                         const sim::SystemConfig& cfg,
                         std::uint64_t instructions = 3000,
                         std::uint64_t warmup = 800) {
  workloads::SyntheticTrace t0(desc, 0), t1(desc, 1);
  sim::System sys(cfg, {&t0, &t1});
  return sys.run(instructions, 2'000'000'000, warmup);
}

/// Low-thermal-mass + low-trip-point config whose throttle must engage
/// under sustained traffic (see bench/thermal.cc for the arithmetic).
dram::PowerConfig demo_policies() {
  dram::PowerConfig p;
  p.enabled = true;
  p.thermal.c_nj_per_k = 500;
  p.throttle = true;
  p.trip_mc = 46'500;
  p.release_mc = 46'200;
  p.throttle_period = 4;
  p.remap = true;
  p.remap_delta_mc = 100;
  p.remap_min_windows = 2;
  return p;
}

TEST(PowerSim, RunResultEnergyConservesExactly) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  dram::PowerConfig power;
  power.enabled = true;
  const sim::SystemConfig cfg = power_config(2, 1, true, power);
  // warmup = 0: totals cover every closed window since cycle 0.
  const sim::RunResult r = run_power(*desc, cfg, 3000, /*warmup=*/0);
  const auto& p = power.energy;
  ASSERT_EQ(r.power_per_channel.size(), 2u);
  for (const auto& ch : r.power_per_channel) {
    ASSERT_TRUE(ch.enabled);
    EXPECT_GT(ch.windows, 0u);
    EXPECT_EQ(ch.energy.act_fj, ch.counts.act * p.act_fj);
    EXPECT_EQ(ch.energy.pre_fj, ch.counts.pre * p.pre_fj);
    EXPECT_EQ(ch.energy.rd_fj, ch.counts.rd * p.rd_fj);
    EXPECT_EQ(ch.energy.wr_fj, ch.counts.wr * p.wr_fj);
    EXPECT_EQ(ch.energy.ref_fj, ch.counts.ref * p.ref_fj);
    EXPECT_EQ(ch.energy.background_fj,
              ch.windows * power.window_cycles * cfg.geometry.ranks *
                  p.background_fj_per_cycle);
    // Per-rank energies partition the channel total.
    ASSERT_EQ(ch.ranks.size(), cfg.geometry.ranks);
    std::uint64_t rank_sum = 0;
    for (const auto& rank : ch.ranks) {
      rank_sum += rank.energy_fj;
      EXPECT_GE(rank.temp_mc, power.thermal.ambient_mc);
      EXPECT_GE(rank.peak_mc, rank.temp_mc - 1);  // mc rounding
    }
    EXPECT_EQ(rank_sum, ch.energy.total_fj());
    // The controller saw commands, so dynamic energy is nonzero.
    EXPECT_GT(ch.energy.dynamic_fj(), 0u);
  }
}

TEST(PowerSim, AccountingIsTimingNeutral) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  dram::PowerConfig acct;
  acct.enabled = true;
  for (const bool event_driven : {false, true}) {
    SCOPED_TRACE(event_driven ? "event-driven" : "per-cycle");
    const sim::RunResult off = run_power(
        *desc, power_config(1, 1, event_driven, dram::PowerConfig{}));
    const sim::RunResult on =
        run_power(*desc, power_config(1, 1, event_driven, acct));
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.total_ipc, on.total_ipc);
    EXPECT_EQ(off.dram.reads_completed, on.dram.reads_completed);
    EXPECT_EQ(off.dram.writes_completed, on.dram.writes_completed);
    EXPECT_EQ(off.dram.activates, on.dram.activates);
    EXPECT_EQ(off.dram.precharges, on.dram.precharges);
    EXPECT_EQ(off.dram.refreshes, on.dram.refreshes);
    EXPECT_EQ(off.dram.total_read_latency, on.dram.total_read_latency);
    EXPECT_EQ(off.engine.counter_fetches, on.engine.counter_fetches);
    // Off-run reports are inert placeholders.
    for (const auto& ch : off.power_per_channel) EXPECT_FALSE(ch.enabled);
  }
}

TEST(PowerSim, PoliciesAreBitIdenticalAcrossExecutionStrategies) {
  // Throttle + remap change timing, but deterministically: every loop
  // mode / thread count / channel count must produce byte-identical
  // RunResults (including the power reports — encode_result covers
  // them).
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  const dram::PowerConfig power = demo_policies();
  for (const unsigned channels : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(channels) + "ch");
    const std::vector<std::uint8_t> reference = fleet::checkpoint::encode_result(
        run_power(*desc, power_config(channels, 1, false, power)));
    for (const unsigned mem_threads : {1u, 4u}) {
      for (const bool event_driven : {false, true}) {
        if (!event_driven && mem_threads == 1) continue;  // the reference
        SCOPED_TRACE("mem_threads=" + std::to_string(mem_threads) +
                     "/event_driven=" + std::to_string(event_driven));
        EXPECT_EQ(fleet::checkpoint::encode_result(run_power(
                      *desc,
                      power_config(channels, mem_threads, event_driven,
                                   power))),
                  reference);
      }
    }
  }
}

TEST(PowerSim, ThrottleEngagesAndSlowsTheRun) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  dram::PowerConfig hot = demo_policies();
  hot.remap = false;
  dram::PowerConfig cold = hot;
  cold.throttle = false;
  const sim::RunResult free_run =
      run_power(*desc, power_config(1, 1, true, cold), 8000, 0);
  const sim::RunResult gated =
      run_power(*desc, power_config(1, 1, true, hot), 8000, 0);
  ASSERT_EQ(gated.power_per_channel.size(), 1u);
  const auto& p = gated.power_per_channel[0];
  EXPECT_GT(p.throttled_windows, 0u) << "trip point never reached";
  std::int64_t peak = 0;
  for (const auto& r : p.ranks) peak = std::max(peak, r.peak_mc);
  EXPECT_GE(peak, hot.trip_mc);
  // Gating command issue cannot make the workload finish earlier.
  EXPECT_GE(gated.cycles, free_run.cycles);
  EXPECT_EQ(gated.cores[0].instructions, free_run.cores[0].instructions)
      << "throttling must delay, not drop, work";
}

// ------------------------------------------------- controller policies

TEST(PowerController, RemapSwapsBanksUnderSkewedTraffic) {
  // All traffic targets logical rank 0: its banks accumulate dynamic
  // energy, its node runs hotter than rank 1's, and the remap policy
  // must migrate busy (but momentarily idle) banks toward the cool rank
  // — without losing or corrupting a single request.
  dram::Geometry g;
  g.rows_per_bank = 1 << 10;
  dram::PowerConfig power;
  power.enabled = true;
  power.window_cycles = 256;
  power.thermal.c_nj_per_k = 1'000;
  power.remap = true;
  power.remap_delta_mc = 10;
  power.remap_min_windows = 1;
  dram::Controller c(g, dram::Timings::ddr4_3200(), 64, 64,
                     dram::SchedulingPolicy::kFrFcfs, power);
  std::uint64_t tag = 0, completed = 0;
  Cycle now = 0;
  for (; now < 30000; ++now) {
    if (now % 40 == 0 && c.can_accept_read()) {
      dram::DecodedAddr d;
      d.rank = 0;
      d.bank_group = static_cast<unsigned>(tag % g.bank_groups);
      d.bank = static_cast<unsigned>((tag / g.bank_groups) % g.banks_per_group);
      d.row = (tag * 7) % g.rows_per_bank;
      d.column = 0;
      ASSERT_TRUE(c.enqueue(c.mapping().encode(d), false, ++tag, now));
    }
    c.tick(now);
    completed += c.completions().size();
    c.completions().clear();
  }
  while (c.pending() > 0 && now < 200000) {
    c.tick(now++);
    completed += c.completions().size();
    c.completions().clear();
  }
  EXPECT_EQ(completed, tag) << "remap lost requests";
  const dram::PowerReport rep = c.power_report(now);
  EXPECT_GT(rep.remap_swaps, 0u) << "skewed traffic never triggered a swap";
  ASSERT_EQ(rep.ranks.size(), 2u);
  EXPECT_GT(rep.ranks[0].peak_mc, power.thermal.ambient_mc)
      << "rank 0 never heated";
}

TEST(PowerController, SaveLoadRoundTripsPowerStateMidRun) {
  // Mid-run checkpoint with both policies active: the restored
  // controller must continue bit-identically — same completions, same
  // command counts, same fixed-point temperatures, same remap table
  // behavior (queued requests re-decode through the restored
  // permutation).
  dram::Geometry g;
  g.rows_per_bank = 1 << 10;
  dram::PowerConfig power = demo_policies();
  power.window_cycles = 256;
  power.remap_delta_mc = 10;
  const auto make = [&] {
    return dram::Controller(g, dram::Timings::ddr4_3200(), 64, 64,
                            dram::SchedulingPolicy::kFrFcfs, power);
  };
  // Deterministic traffic schedule shared by every phase.
  const auto drive = [&](dram::Controller& c, Cycle from, Cycle to,
                         std::vector<dram::Completion>& out) {
    Xoshiro256 rng(from + 1);
    for (Cycle cyc = from; cyc < to; ++cyc) {
      if (cyc % 16 == 0) {
        const bool w = rng.chance(0.3);
        dram::DecodedAddr d;
        d.rank = static_cast<unsigned>(rng.next() % (cyc % 5 == 0 ? 2 : 1));
        d.bank_group = static_cast<unsigned>(rng.next() % g.bank_groups);
        d.bank = static_cast<unsigned>(rng.next() % g.banks_per_group);
        d.row = rng.next() % g.rows_per_bank;
        d.column = static_cast<unsigned>(rng.next() % g.columns_per_row);
        const Addr a = c.mapping().encode(d);
        if (w ? c.can_accept_write() : c.can_accept_read())
          c.enqueue(a, w, cyc, cyc);
      }
      c.tick(cyc);
      out.insert(out.end(), c.completions().begin(), c.completions().end());
      c.completions().clear();
    }
  };

  dram::Controller a = make();
  std::vector<dram::Completion> a_done;
  drive(a, 0, 10000, a_done);
  serial::Sink sink;
  a.save(sink);
  const std::vector<std::uint8_t> image = sink.take();

  dram::Controller b = make();
  serial::Source src(image.data(), image.size());
  b.load(src);

  std::vector<dram::Completion> a_tail, b_tail;
  drive(a, 10000, 20000, a_tail);
  drive(b, 10000, 20000, b_tail);
  ASSERT_EQ(a_tail.size(), b_tail.size());
  for (std::size_t i = 0; i < a_tail.size(); ++i) {
    EXPECT_EQ(a_tail[i].tag, b_tail[i].tag) << i;
    EXPECT_EQ(a_tail[i].addr, b_tail[i].addr) << i;
    EXPECT_EQ(a_tail[i].finish, b_tail[i].finish) << i;
  }
  dram::PowerReport ra = a.power_report(20000), rb = b.power_report(20000);
  EXPECT_EQ(ra.energy.total_fj(), rb.energy.total_fj());
  EXPECT_EQ(ra.counts.act, rb.counts.act);
  EXPECT_EQ(ra.counts.rd, rb.counts.rd);
  EXPECT_EQ(ra.counts.wr, rb.counts.wr);
  EXPECT_EQ(ra.windows, rb.windows);
  EXPECT_EQ(ra.throttled_windows, rb.throttled_windows);
  EXPECT_EQ(ra.remap_swaps, rb.remap_swaps);
  ASSERT_EQ(ra.ranks.size(), rb.ranks.size());
  for (std::size_t r = 0; r < ra.ranks.size(); ++r) {
    EXPECT_EQ(ra.ranks[r].energy_fj, rb.ranks[r].energy_fj);
    EXPECT_EQ(ra.ranks[r].temp_mc, rb.ranks[r].temp_mc);
    EXPECT_EQ(ra.ranks[r].peak_mc, rb.ranks[r].peak_mc);
  }
  EXPECT_EQ(a.stats().reads_completed, b.stats().reads_completed);
  EXPECT_EQ(a.stats().writes_completed, b.stats().writes_completed);
}

}  // namespace
}  // namespace secddr
