// Unit battery for the adversarial fuzzer building blocks: fault-plan
// serialization, the mutation engine, the fault injector, the executor
// oracle, and the minimizer. The campaign-level properties (bounded
// zero-escape run, log determinism, regression-trace replay) live in
// fuzz_campaign_test.cc under the `fuzz` label.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "fuzz/campaign.h"
#include "fuzz/corpus.h"
#include "fuzz/executor.h"
#include "fuzz/mutate.h"

namespace secddr::fuzz {
namespace {

TEST(FaultClass, NamesRoundTrip) {
  std::set<std::string> seen;
  for (unsigned i = 0; i < kFaultClassCount; ++i) {
    const auto cls = static_cast<FaultClass>(i);
    const std::string name = to_string(cls);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    FaultClass back;
    ASSERT_TRUE(fault_class_from_string(name, &back));
    EXPECT_EQ(back, cls);
  }
  FaultClass out;
  EXPECT_FALSE(fault_class_from_string("no-such-fault", &out));
}

TEST(FaultPlan, SerializeParseRoundTrip) {
  FuzzInput in;
  in.profile = 3;
  in.plan = {{FaultClass::kMaskAlert, 2, 0, 0},
             {FaultClass::kSpliceReadResp, 7, 13, 5},
             {FaultClass::kRowHammer, 1, 300, 9}};
  FuzzInput back;
  std::string err;
  ASSERT_TRUE(parse_plan(serialize_plan(in), &back, &err)) << err;
  EXPECT_EQ(back.profile, in.profile);
  EXPECT_EQ(back.plan, in.plan);
}

TEST(FaultPlan, ParseRejectsGarbage) {
  FuzzInput out;
  std::string err;
  EXPECT_FALSE(parse_plan("not a plan", &out, &err));
  EXPECT_FALSE(parse_plan("secddr-fplan v1\nfault bogus-class\n", &out, &err));
  EXPECT_FALSE(
      parse_plan("secddr-fplan v1\nfault mask-alert trigger=0\n", &out, &err));
  EXPECT_FALSE(parse_plan("secddr-fplan v1\nprofile 99 zzz\n", &out, &err));
}

TEST(Mutator, DeterministicFromSeed) {
  Mutator a(1234), b(1234);
  FuzzInput ia = a.random_input(), ib = b.random_input();
  for (int k = 0; k < 50; ++k) {
    a.mutate(&ia);
    b.mutate(&ib);
  }
  EXPECT_EQ(ia.profile, ib.profile);
  EXPECT_EQ(ia.plan, ib.plan);
  ASSERT_EQ(ia.ops.size(), ib.ops.size());
  for (std::size_t i = 0; i < ia.ops.size(); ++i) {
    EXPECT_EQ(ia.ops[i].addr, ib.ops[i].addr);
    EXPECT_EQ(ia.ops[i].is_write, ib.ops[i].is_write);
    EXPECT_EQ(ia.ops[i].gap, ib.ops[i].gap);
  }
}

TEST(Mutator, RespectsBounds) {
  Mutator m(99);
  FuzzInput in = m.random_input();
  for (int k = 0; k < 2000; ++k) m.mutate(&in);
  EXPECT_LE(in.ops.size(), kMaxOps);
  EXPECT_LE(in.plan.size(), kMaxPlanOps);
  EXPECT_LT(in.profile, kProfileCount);
  for (const sim::TraceRecord& r : in.ops) EXPECT_LE(r.gap, kMaxGap);
}

TEST(SeedCorpus, CoversEveryFaultClassAndProfile) {
  const auto corpus = seed_corpus();
  std::set<unsigned> classes, profiles;
  for (const FuzzInput& in : corpus) {
    profiles.insert(in.profile);
    for (const FaultOp& op : in.plan)
      classes.insert(static_cast<unsigned>(op.cls));
  }
  EXPECT_EQ(classes.size(), kFaultClassCount);
  EXPECT_EQ(profiles.size(), kProfileCount);
}

TEST(Executor, CleanInputIsHarmless) {
  Executor ex;
  FuzzInput in;
  in.profile = 0;
  in.ops = {{0, true, 0x0}, {0, true, 0x1000}, {0, false, 0x0}};
  const Outcome o = ex.run(in);
  EXPECT_EQ(o.verdict, Verdict::kHarmless);
  EXPECT_EQ(o.violations, 0u);
  EXPECT_EQ(o.mismatches, 0u);
}

TEST(Executor, SignatureIsDeterministic) {
  Mutator m(7);
  Executor ex1, ex2;
  for (int k = 0; k < 5; ++k) {
    const FuzzInput in = m.random_input();
    const Outcome a = ex1.run(in);
    const Outcome b = ex1.run(in);  // same executor, repeated
    const Outcome c = ex2.run(in);  // independent executor
    EXPECT_EQ(a.signature, b.signature);
    EXPECT_EQ(a.signature, c.signature);
    EXPECT_EQ(a.verdict, c.verdict);
  }
}

TEST(Executor, FullSecDdrProfilesNeverLeakSilently) {
  // Every classic single-fault experiment against the hardened profiles
  // must end detected/corrected/harmless — never accounted, never escape.
  Executor ex;
  for (const FuzzInput& in : seed_corpus()) {
    const bool hardened = profile(in.profile).ewcrc &&
                          profile(in.profile).placement ==
                              core::LogicPlacement::kEccChip;
    const Outcome o = ex.run(in);
    EXPECT_NE(o.verdict, Verdict::kEscape)
        << profile(in.profile).name << " plan " << serialize_plan(in)
        << o.note;
    if (hardened) {
      EXPECT_NE(o.verdict, Verdict::kAccounted)
          << profile(in.profile).name << " plan " << serialize_plan(in);
    }
  }
}

TEST(Executor, WireFlipsAreDetectedOnFullSecDdr) {
  // The core detection claim (§II-A): any single bit flip on the data /
  // ECC lanes of either direction is caught.
  Executor ex;
  const FaultClass wire_classes[] = {
      FaultClass::kFlipWriteData, FaultClass::kFlipWriteEmac,
      FaultClass::kFlipReadData, FaultClass::kFlipReadEmac};
  for (const FaultClass cls : wire_classes) {
    for (std::uint32_t bit : {0u, 17u, 63u, 255u, 511u}) {
      FuzzInput in;
      in.profile = 0;
      in.ops = {{0, true, 0x0}, {0, false, 0x0}};
      in.plan = {{cls, 1, bit, 0}};
      const Outcome o = ex.run(in);
      EXPECT_EQ(o.verdict, Verdict::kDetected)
          << to_string(cls) << " bit " << bit << " -> "
          << to_string(o.verdict);
    }
  }
}

TEST(Executor, Fig3WriteRedirectIsAccountedOnlyWithoutEwcrc) {
  // The Fig. 3 row-redirect: silent exactly when eWCRC is off (profile
  // no-ewcrc accounts for it); with eWCRC on it must be detected or
  // neutralized, never silent.
  FuzzInput in;
  in.ops = {{0, true, 0x0},  {0, true, 0x4000}, {0, false, 0x0},
            {0, true, 0x0},  {0, false, 0x4000}, {0, false, 0x0}};
  in.plan = {{FaultClass::kFlipActRow, 1, 0, 0}};
  Executor ex;
  in.profile = 2;  // no-ewcrc
  const Outcome weak = ex.run(in);
  EXPECT_NE(weak.verdict, Verdict::kEscape) << weak.note;
  in.profile = 0;  // full SecDDR
  const Outcome hard = ex.run(in);
  EXPECT_NE(hard.verdict, Verdict::kEscape) << hard.note;
  EXPECT_NE(hard.verdict, Verdict::kAccounted);
}

TEST(Executor, OnDimmReplayAccountedOnlyOnTrustedDimm) {
  FuzzInput in;
  in.ops = {{0, true, 0x0}, {0, true, 0x0}, {0, false, 0x0}};
  in.plan = {{FaultClass::kOnDimmReplay, 2, 0, 0}};
  Executor ex;
  in.profile = 3;  // trusted-dimm placement: plaintext MAC on the inner bus
  EXPECT_NE(ex.run(in).verdict, Verdict::kEscape);
  in.profile = 0;  // untrusted-DIMM placement: replay must not verify
  const Outcome hard = ex.run(in);
  EXPECT_NE(hard.verdict, Verdict::kEscape) << hard.note;
  EXPECT_NE(hard.verdict, Verdict::kAccounted);
}

TEST(Corpus, AddIfNewDeduplicatesBySignature) {
  Corpus c;
  FuzzInput in;
  EXPECT_TRUE(c.add_if_new(in, 111));
  EXPECT_FALSE(c.add_if_new(in, 111));
  EXPECT_TRUE(c.add_if_new(in, 222));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.coverage(), 2u);
  EXPECT_TRUE(c.seen(111));
  EXPECT_FALSE(c.seen(333));
}

TEST(Corpus, SaveLoadRoundTrip) {
  FuzzInput in;
  in.profile = 4;
  in.plan = {{FaultClass::kDropWrite, 3, 0, 0},
             {FaultClass::kForgeAlert, 1, 0, 2}};
  in.ops = {{5, true, 0x40}, {0, false, 0x40}, {199, true, 0x1ffc0}};
  const std::string stem =
      testing::TempDir() + "/fuzz_roundtrip";
  std::string err;
  ASSERT_TRUE(save_input(in, stem, &err)) << err;
  FuzzInput back;
  ASSERT_TRUE(load_input(stem, &back, &err)) << err;
  EXPECT_EQ(back.profile, in.profile);
  EXPECT_EQ(back.plan, in.plan);
  ASSERT_EQ(back.ops.size(), in.ops.size());
  for (std::size_t i = 0; i < in.ops.size(); ++i) {
    EXPECT_EQ(back.ops[i].addr, in.ops[i].addr);
    EXPECT_EQ(back.ops[i].is_write, in.ops[i].is_write);
    EXPECT_EQ(back.ops[i].gap, in.ops[i].gap);
  }
  std::remove((stem + ".fplan").c_str());
  std::remove((stem + ".strace").c_str());
}

TEST(Corpus, LoadRejectsMissingTrace) {
  const std::string stem = testing::TempDir() + "/fuzz_planonly";
  FuzzInput in;
  in.plan = {{FaultClass::kMaskAlert, 1, 0, 0}};
  std::string err;
  ASSERT_TRUE(save_input(in, stem, &err)) << err;
  std::remove((stem + ".strace").c_str());
  FuzzInput back;
  EXPECT_FALSE(load_input(stem, &back, &err));
  std::remove((stem + ".fplan").c_str());
}

TEST(Minimizer, ShrinksWhilePreservingPredicate) {
  // Pad a known-detected input with irrelevant ops; the minimizer must
  // strip the padding and keep the detection.
  FuzzInput in;
  in.profile = 0;
  in.plan = {{FaultClass::kFlipReadData, 1, 9, 0},
             {FaultClass::kFlipWriteData, 100, 0, 0}};  // never fires
  in.ops = {{0, true, 0x0},    {0, true, 0x2000}, {0, false, 0x2000},
            {0, false, 0x0},   {0, true, 0x4000}, {0, false, 0x4000}};
  Executor ex;
  ASSERT_EQ(ex.run(in).verdict, Verdict::kDetected);
  const FuzzInput min = minimize(in, [&](const FuzzInput& t) {
    return ex.run(t).verdict == Verdict::kDetected;
  });
  EXPECT_EQ(ex.run(min).verdict, Verdict::kDetected);
  EXPECT_LT(min.ops.size(), in.ops.size());
  EXPECT_LE(min.plan.size(), 1u);
}

TEST(Campaign, ProfileFilterSelectsByName) {
  CampaignOptions opts;
  opts.trials = 40;
  opts.seed = 5;
  opts.jobs = 1;
  opts.profile_filter = "no-ewcrc";
  Campaign c(opts);
  const CampaignResult res = c.run();
  EXPECT_TRUE(res.clean()) << res.log;
  // Every logged input must be the filtered profile.
  EXPECT_EQ(res.log.find("profile=secddr-xts "), std::string::npos);
  EXPECT_NE(res.log.find("profile=no-ewcrc"), std::string::npos);
}

}  // namespace
}  // namespace secddr::fuzz
