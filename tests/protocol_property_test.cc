// Protocol-level property sweeps: exhaustive bit-flip detection on the
// wire, E-MAC uniqueness across transaction histories, and eWCRC
// sensitivity to every address field.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/random.h"
#include "core/attack.h"
#include "core/session.h"

namespace secddr::core {
namespace {

SessionConfig tiny(std::uint64_t seed) {
  SessionConfig cfg;
  cfg.dimm.geometry.ranks = 1;
  cfg.dimm.geometry.bank_groups = 2;
  cfg.dimm.geometry.banks_per_group = 2;
  cfg.dimm.geometry.rows_per_bank = 16;
  cfg.dimm.geometry.columns_per_row = 8;
  cfg.seed = seed;
  return cfg;
}

// Every bit position of the read-response E-MAC must be detected.
class EmacBitFlip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EmacBitFlip, ReadEmacFlipDetected) {
  auto s = SecureMemorySession::create(tiny(200 + GetParam()));
  ASSERT_NE(s, nullptr);
  s->write(0x40, CacheLine::filled(0x3C));
  BitFlipInterposer attacker;
  s->set_bus_interposer(&attacker);
  attacker.arm(BitFlipInterposer::Field::kReadEmac, GetParam());
  EXPECT_FALSE(s->read(0x40).ok()) << "bit " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBits, EmacBitFlip,
                         ::testing::Range(0u, 64u, 7u));  // sampled positions

// Sampled data-bit positions across all eight chip slices.
class DataBitFlip : public ::testing::TestWithParam<unsigned> {};

TEST_P(DataBitFlip, ReadDataFlipDetected) {
  auto s = SecureMemorySession::create(tiny(300 + GetParam()));
  ASSERT_NE(s, nullptr);
  s->write(0x80, CacheLine::filled(0xA5));
  BitFlipInterposer attacker;
  s->set_bus_interposer(&attacker);
  attacker.arm(BitFlipInterposer::Field::kReadData, GetParam());
  EXPECT_FALSE(s->read(0x80).ok()) << "bit " << GetParam();
}

TEST_P(DataBitFlip, WriteDataFlipAlertsAtDevice) {
  auto s = SecureMemorySession::create(tiny(400 + GetParam()));
  ASSERT_NE(s, nullptr);
  BitFlipInterposer attacker;
  s->set_bus_interposer(&attacker);
  attacker.arm(BitFlipInterposer::Field::kWriteData, GetParam());
  EXPECT_EQ(s->write(0x80, CacheLine::filled(0xA5)), Violation::kWriteAlert)
      << "bit " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SlicedPositions, DataBitFlip,
                         ::testing::Values(0u, 63u, 64u, 127u, 200u, 255u,
                                           300u, 388u, 450u, 511u));

// E-MAC uniqueness: over a long mixed read/write history of ONE line, the
// wire never carries the same E-MAC twice — the temporal uniqueness that
// defeats replay (§III-A).
TEST(EmacUniqueness, WireMacsNeverRepeatAcrossHistory) {
  auto s = SecureMemorySession::create(tiny(999));
  ASSERT_NE(s, nullptr);
  SnoopInterposer snoop;
  s->set_bus_interposer(&snoop);
  const Addr target = 0x40;
  const auto d = s->controller().mapping().decode(target);
  for (int epoch = 0; epoch < 100; ++epoch) {
    s->write(target, CacheLine::filled(static_cast<std::uint8_t>(epoch)));
    ASSERT_TRUE(s->read(target).ok());
  }
  const auto* history = snoop.history_for(
      d.rank, d.bank_group, d.bank, static_cast<unsigned>(d.row), d.column);
  ASSERT_NE(history, nullptr);
  ASSERT_GE(history->size(), 200u);
  std::set<std::uint64_t> emacs;
  for (const auto& obs : *history)
    EXPECT_TRUE(emacs.insert(obs.emac).second)
        << "repeated E-MAC on the wire";
}

// Same plaintext written twice produces different wire E-MACs even with
// XTS (identical ciphertext): the pad provides the temporal variation.
TEST(EmacUniqueness, IdenticalWritesDifferOnTheWire) {
  auto s = SecureMemorySession::create(tiny(1001));
  ASSERT_NE(s, nullptr);
  SnoopInterposer snoop;
  s->set_bus_interposer(&snoop);
  const Addr target = 0x40;
  const auto d = s->controller().mapping().decode(target);
  s->write(target, CacheLine::filled(0x77));
  s->write(target, CacheLine::filled(0x77));
  const auto* history = snoop.history_for(
      d.rank, d.bank_group, d.bank, static_cast<unsigned>(d.row), d.column);
  ASSERT_NE(history, nullptr);
  ASSERT_EQ(history->size(), 2u);
  EXPECT_EQ((*history)[0].data, (*history)[1].data)
      << "XTS ciphertext is deterministic";
  EXPECT_NE((*history)[0].emac, (*history)[1].emac)
      << "but the E-MAC must still differ";
}

// Randomized long-run session with mixed ranks/banks: zero false
// positives, counters in lockstep, plus a final replay that must fail.
TEST(ProtocolSoak, ThousandsOfOpsThenReplayStillDetected) {
  auto s = SecureMemorySession::create(tiny(2024));
  ASSERT_NE(s, nullptr);
  BusReplayInterposer attacker;  // snooping all along
  s->set_bus_interposer(&attacker);
  Xoshiro256 rng(5);
  std::unordered_map<Addr, CacheLine> shadow;
  const Addr target = 0x40;
  s->write(target, CacheLine::filled(0xEE));
  ASSERT_TRUE(s->read(target).ok());  // recorded epoch 0
  for (int i = 0; i < 5000; ++i) {
    const Addr a = line_base(rng.next() % s->capacity());
    if (rng.chance(0.5) || !shadow.count(a)) {
      CacheLine v;
      for (auto& b : v.bytes) b = static_cast<std::uint8_t>(rng.next());
      ASSERT_EQ(s->write(a, v), Violation::kNone);
      shadow[a] = v;
    } else {
      ASSERT_TRUE(s->read(a).ok());
    }
  }
  const auto d = s->controller().mapping().decode(target);
  attacker.arm(d.rank, d.bank_group, d.bank, static_cast<unsigned>(d.row),
               d.column, 0);
  EXPECT_FALSE(s->read(target).ok())
      << "epoch-0 replay must fail even 5000 transactions later";
}

}  // namespace
}  // namespace secddr::core
