// Slow-vs-fast determinism: the event-driven simulation loop must be a
// pure optimization. Every statistic of every component — core cycles,
// stall accounting, cache/MSHR traffic, engine metadata fetches, DRAM
// command and latency counters, per-channel breakdowns — must be
// bit-identical to the tick-every-cycle loop, across the fig6 sweep
// configurations, DRAM timing presets (including a non-integer
// core:memory clock ratio), both scheduling policies, multi-channel
// backends (both channel-bit positions), and a run that hits the cycle
// limit. A golden test additionally pins channels=1 results to the exact
// numbers the pre-backend single-channel pipeline produced.
//
// SECDDR_CHANNELS overrides the channel count of every variant that does
// not pin one itself, and SECDDR_MEM_THREADS runs every variant's memory
// backend on that many per-channel tick threads (ci.sh runs the
// determinism label with SECDDR_CHANNELS=2 and again with
// SECDDR_MEM_THREADS=2 as dedicated steps).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "secmem/params.h"
#include "sim/system.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr::sim {
namespace {

struct Variant {
  std::string name;
  secmem::SecurityParams security;
  dram::Timings timings = dram::Timings::ddr4_3200();
  dram::SchedulingPolicy scheduling = dram::SchedulingPolicy::kFrFcfs;
  unsigned channels = 0;  ///< 0 = default (1, or $SECDDR_CHANNELS)
  dram::ChannelInterleave interleave = dram::ChannelInterleave::kLine;
};

std::vector<Variant> sweep_variants() {
  return {
      {"tree64", secmem::SecurityParams::baseline_tree_ctr()},
      {"secddr_ctr", secmem::SecurityParams::secddr_ctr()},
      {"enc_ctr", secmem::SecurityParams::encrypt_only_ctr()},
      {"secddr_xts", secmem::SecurityParams::secddr_xts()},
      {"enc_xts", secmem::SecurityParams::encrypt_only_xts()},
      // Non-integer 3:8 memory:core clock ratio (InvisiMem's derated
      // channel) exercises the clock-accumulator inversion.
      {"invisimem_2400",
       secmem::SecurityParams::invisimem(secmem::Encryption::kXts),
       dram::Timings::ddr4_2400()},
      {"tree64_fcfs", secmem::SecurityParams::baseline_tree_ctr(),
       dram::Timings::ddr4_3200(), dram::SchedulingPolicy::kFcfs},
      // Multi-channel backends: line-interleaved 2-channel, and
      // row-interleaved 4-channel (the other channel-bit position).
      {"secddr_ctr_2ch", secmem::SecurityParams::secddr_ctr(),
       dram::Timings::ddr4_3200(), dram::SchedulingPolicy::kFrFcfs, 2,
       dram::ChannelInterleave::kLine},
      {"tree64_4ch_row", secmem::SecurityParams::baseline_tree_ctr(),
       dram::Timings::ddr4_3200(), dram::SchedulingPolicy::kFrFcfs, 4,
       dram::ChannelInterleave::kRow},
  };
}

unsigned env_channels() {
  const char* s = std::getenv("SECDDR_CHANNELS");
  const unsigned ch = s ? static_cast<unsigned>(std::strtoul(s, nullptr, 10)) : 1;
  // The channel selector needs a power of two; reject garbage loudly
  // instead of mis-routing in Release builds.
  EXPECT_TRUE(ch != 0 && (ch & (ch - 1)) == 0)
      << "SECDDR_CHANNELS=" << (s ? s : "") << " is not a power of two";
  return (ch != 0 && (ch & (ch - 1)) == 0) ? ch : 1;
}

unsigned env_mem_threads() {
  const char* s = std::getenv("SECDDR_MEM_THREADS");
  const unsigned t = s ? static_cast<unsigned>(std::strtoul(s, nullptr, 10)) : 1;
  return t ? t : 1;
}

RunResult run_variant(const workloads::WorkloadDesc& desc, const Variant& v,
                      bool event_driven, Cycle max_cycles = 2'000'000'000,
                      unsigned mem_threads = 0) {
  SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = v.security;
  cfg.timings = v.timings;
  cfg.scheduling = v.scheduling;
  cfg.geometry.channels = v.channels ? v.channels : env_channels();
  cfg.geometry.channel_interleave = v.interleave;
  cfg.data_bytes = 4ull << 30;  // two cores at 2GB trace stride
  cfg.event_driven = event_driven;
  cfg.mem_threads = mem_threads ? mem_threads : env_mem_threads();
  workloads::SyntheticTrace t0(desc, 0), t1(desc, 1);
  System sys(cfg, {&t0, &t1});
  return sys.run(3000, max_cycles, /*warmup=*/800);
}

void expect_identical(const RunResult& slow, const RunResult& fast) {
  ASSERT_EQ(slow.cores.size(), fast.cores.size());
  for (std::size_t i = 0; i < slow.cores.size(); ++i) {
    SCOPED_TRACE("core " + std::to_string(i));
    EXPECT_EQ(slow.cores[i].instructions, fast.cores[i].instructions);
    EXPECT_EQ(slow.cores[i].cycles, fast.cores[i].cycles);
    EXPECT_EQ(slow.cores[i].loads, fast.cores[i].loads);
    EXPECT_EQ(slow.cores[i].stores, fast.cores[i].stores);
    EXPECT_EQ(slow.cores[i].load_stall_cycles, fast.cores[i].load_stall_cycles);
  }
  EXPECT_EQ(slow.cycles, fast.cycles);
  EXPECT_EQ(slow.hit_cycle_limit, fast.hit_cycle_limit);
  // Derived doubles come from identical integers, so exact equality holds.
  EXPECT_EQ(slow.total_ipc, fast.total_ipc);
  EXPECT_EQ(slow.llc_mpki, fast.llc_mpki);
  EXPECT_EQ(slow.metadata_miss_rate, fast.metadata_miss_rate);
  EXPECT_EQ(slow.metadata_accesses, fast.metadata_accesses);

  EXPECT_EQ(slow.mem.l1_accesses, fast.mem.l1_accesses);
  EXPECT_EQ(slow.mem.l1_misses, fast.mem.l1_misses);
  EXPECT_EQ(slow.mem.llc_demand_accesses, fast.mem.llc_demand_accesses);
  EXPECT_EQ(slow.mem.llc_demand_misses, fast.mem.llc_demand_misses);
  EXPECT_EQ(slow.mem.llc_writebacks, fast.mem.llc_writebacks);
  EXPECT_EQ(slow.mem.prefetch_fills, fast.mem.prefetch_fills);
  EXPECT_EQ(slow.mem.llc_demand_misses_per_core,
            fast.mem.llc_demand_misses_per_core);

  EXPECT_EQ(slow.engine.data_reads, fast.engine.data_reads);
  EXPECT_EQ(slow.engine.data_writes, fast.engine.data_writes);
  EXPECT_EQ(slow.engine.counter_fetches, fast.engine.counter_fetches);
  EXPECT_EQ(slow.engine.mac_line_fetches, fast.engine.mac_line_fetches);
  EXPECT_EQ(slow.engine.tree_node_fetches, fast.engine.tree_node_fetches);
  EXPECT_EQ(slow.engine.meta_writebacks, fast.engine.meta_writebacks);
  EXPECT_EQ(slow.engine.reads_with_tree_walk, fast.engine.reads_with_tree_walk);

  EXPECT_EQ(slow.dram.reads_enqueued, fast.dram.reads_enqueued);
  EXPECT_EQ(slow.dram.writes_enqueued, fast.dram.writes_enqueued);
  EXPECT_EQ(slow.dram.reads_completed, fast.dram.reads_completed);
  EXPECT_EQ(slow.dram.writes_completed, fast.dram.writes_completed);
  EXPECT_EQ(slow.dram.row_hits, fast.dram.row_hits);
  EXPECT_EQ(slow.dram.row_misses, fast.dram.row_misses);
  EXPECT_EQ(slow.dram.activates, fast.dram.activates);
  EXPECT_EQ(slow.dram.precharges, fast.dram.precharges);
  EXPECT_EQ(slow.dram.refreshes, fast.dram.refreshes);
  EXPECT_EQ(slow.dram.write_forwards, fast.dram.write_forwards);
  EXPECT_EQ(slow.dram.data_bus_busy_cycles, fast.dram.data_bus_busy_cycles);
  EXPECT_EQ(slow.dram.total_read_latency, fast.dram.total_read_latency);

  // Per-channel breakdowns must match channel by channel, not just in sum.
  ASSERT_EQ(slow.engine_per_channel.size(), fast.engine_per_channel.size());
  ASSERT_EQ(slow.dram_per_channel.size(), fast.dram_per_channel.size());
  for (std::size_t c = 0; c < slow.engine_per_channel.size(); ++c) {
    SCOPED_TRACE("channel " + std::to_string(c));
    const auto& se = slow.engine_per_channel[c];
    const auto& fe = fast.engine_per_channel[c];
    EXPECT_EQ(se.data_reads, fe.data_reads);
    EXPECT_EQ(se.data_writes, fe.data_writes);
    EXPECT_EQ(se.counter_fetches, fe.counter_fetches);
    EXPECT_EQ(se.mac_line_fetches, fe.mac_line_fetches);
    EXPECT_EQ(se.tree_node_fetches, fe.tree_node_fetches);
    EXPECT_EQ(se.meta_writebacks, fe.meta_writebacks);
    const auto& sd = slow.dram_per_channel[c];
    const auto& fd = fast.dram_per_channel[c];
    EXPECT_EQ(sd.reads_enqueued, fd.reads_enqueued);
    EXPECT_EQ(sd.writes_enqueued, fd.writes_enqueued);
    EXPECT_EQ(sd.reads_completed, fd.reads_completed);
    EXPECT_EQ(sd.writes_completed, fd.writes_completed);
    EXPECT_EQ(sd.row_hits, fd.row_hits);
    EXPECT_EQ(sd.row_misses, fd.row_misses);
    EXPECT_EQ(sd.activates, fd.activates);
    EXPECT_EQ(sd.precharges, fd.precharges);
    EXPECT_EQ(sd.refreshes, fd.refreshes);
    EXPECT_EQ(sd.data_bus_busy_cycles, fd.data_bus_busy_cycles);
    EXPECT_EQ(sd.total_read_latency, fd.total_read_latency);
  }

  // Power/thermal reports (all-default when accounting is off) are part
  // of the bit-identity contract too: energy totals, command counts, and
  // the fixed-point temperature trajectories.
  ASSERT_EQ(slow.power_per_channel.size(), fast.power_per_channel.size());
  for (std::size_t c = 0; c < slow.power_per_channel.size(); ++c) {
    SCOPED_TRACE("power channel " + std::to_string(c));
    const auto& sp = slow.power_per_channel[c];
    const auto& fp = fast.power_per_channel[c];
    EXPECT_EQ(sp.enabled, fp.enabled);
    EXPECT_EQ(sp.energy.act_fj, fp.energy.act_fj);
    EXPECT_EQ(sp.energy.pre_fj, fp.energy.pre_fj);
    EXPECT_EQ(sp.energy.rd_fj, fp.energy.rd_fj);
    EXPECT_EQ(sp.energy.wr_fj, fp.energy.wr_fj);
    EXPECT_EQ(sp.energy.ref_fj, fp.energy.ref_fj);
    EXPECT_EQ(sp.energy.background_fj, fp.energy.background_fj);
    EXPECT_EQ(sp.counts.act, fp.counts.act);
    EXPECT_EQ(sp.counts.pre, fp.counts.pre);
    EXPECT_EQ(sp.counts.rd, fp.counts.rd);
    EXPECT_EQ(sp.counts.wr, fp.counts.wr);
    EXPECT_EQ(sp.counts.ref, fp.counts.ref);
    EXPECT_EQ(sp.windows, fp.windows);
    EXPECT_EQ(sp.throttled_windows, fp.throttled_windows);
    EXPECT_EQ(sp.remap_swaps, fp.remap_swaps);
    ASSERT_EQ(sp.ranks.size(), fp.ranks.size());
    for (std::size_t r = 0; r < sp.ranks.size(); ++r) {
      EXPECT_EQ(sp.ranks[r].energy_fj, fp.ranks[r].energy_fj);
      EXPECT_EQ(sp.ranks[r].temp_mc, fp.ranks[r].temp_mc);
      EXPECT_EQ(sp.ranks[r].peak_mc, fp.ranks[r].peak_mc);
    }
  }
}

TEST(SimFastPathDeterminism, BitIdenticalAcrossSweepConfigs) {
  for (const char* wl : {"mcf", "povray", "lbm"}) {
    const auto* desc = workloads::find(wl);
    ASSERT_NE(desc, nullptr);
    for (const Variant& v : sweep_variants()) {
      SCOPED_TRACE(std::string(wl) + " / " + v.name);
      expect_identical(run_variant(*desc, v, /*event_driven=*/false),
                       run_variant(*desc, v, /*event_driven=*/true));
    }
  }
}

TEST(SimFastPathDeterminism, BitIdenticalUnderWriteDrainPressure) {
  // Small MSHR pool + small LLC + write-heavy high-MPKI traffic keeps the
  // write queue crossing the drain watermarks and the MSHRs saturated —
  // the regime that exercises the drain-flip events and the
  // blocked-issue retry replay.
  // A synthetic stress workload (random, high MPKI, write-heavy) on top
  // of the suite's worst cases.
  workloads::WorkloadDesc stress{
      "drain-stress", 120.0, 400.0, 0.5, 1ull << 30,
      workloads::Pattern::kRandom, true, 7};
  std::vector<workloads::WorkloadDesc> descs{stress, *workloads::find("lbm"),
                                             *workloads::find("mcf")};
  for (const auto& desc : descs) {
    auto run = [&](bool event_driven) {
      SystemConfig cfg;
      cfg.mem.cores = 4;
      cfg.mem.mshrs = 16;
      cfg.mem.llc_bytes = 1ull << 20;
      cfg.security = secmem::SecurityParams::encrypt_only_xts();
      cfg.data_bytes = 8ull << 30;  // four cores at 2GB trace stride
      cfg.event_driven = event_driven;
      workloads::SyntheticTrace t0(desc, 0), t1(desc, 1), t2(desc, 2),
          t3(desc, 3);
      System sys(cfg, {&t0, &t1, &t2, &t3});
      return sys.run(30000, 2'000'000'000, /*warmup=*/5000);
    };
    SCOPED_TRACE(desc.name);
    expect_identical(run(false), run(true));
  }
}

TEST(SimFastPathDeterminism, BitIdenticalWhenCycleLimitHits) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  const Variant v{"tree64", secmem::SecurityParams::baseline_tree_ctr()};
  const RunResult slow =
      run_variant(*desc, v, /*event_driven=*/false, /*max_cycles=*/3000);
  const RunResult fast =
      run_variant(*desc, v, /*event_driven=*/true, /*max_cycles=*/3000);
  ASSERT_TRUE(slow.hit_cycle_limit) << "limit chosen too high for the test";
  expect_identical(slow, fast);
}

TEST(SimFastPathDeterminism, CycleLimitDrainsAllChannels) {
  // Regression (multi-channel cycle-limit path): when the limit fires,
  // every channel must have been ticked up to the limit cycle — no
  // completion may be stranded in a non-ticked channel — and both loops
  // must agree on the truncated state, channel by channel.
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  Variant v{"secddr_ctr_2ch", secmem::SecurityParams::secddr_ctr()};
  v.channels = 2;
  const RunResult slow =
      run_variant(*desc, v, /*event_driven=*/false, /*max_cycles=*/3000);
  const RunResult fast =
      run_variant(*desc, v, /*event_driven=*/true, /*max_cycles=*/3000);
  ASSERT_TRUE(slow.hit_cycle_limit) << "limit chosen too high for the test";
  ASSERT_EQ(slow.dram_per_channel.size(), 2u);
  expect_identical(slow, fast);
  // Both channels saw traffic before the limit (line interleave spreads
  // consecutive lines), so a stranded channel would show up as enqueued
  // but never-completed work on exactly one side.
  for (const auto& d : fast.dram_per_channel)
    EXPECT_GT(d.reads_enqueued, 0u);
}

TEST(SimFastPathDeterminism, HitCycleLimitAggregatesAcrossPhases) {
  // A warmup phase that runs into max_cycles must be reported even when
  // the measured phase finishes under the limit: the result covers fewer
  // warmup instructions than requested.
  const auto* desc = workloads::find("povray");
  ASSERT_NE(desc, nullptr);
  SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = secmem::SecurityParams::encrypt_only_xts();
  cfg.data_bytes = 4ull << 30;
  workloads::SyntheticTrace t0(*desc, 0), t1(*desc, 1);
  System sys(cfg, {&t0, &t1});
  // povray needs ~45000 cycles for 20000 warmup instructions per core, so
  // a 40000-cycle limit truncates the warmup; the measured phase
  // (remaining budget + 100, fresh cycle counter, warm caches) then
  // finishes in ~5000 cycles — well under its own limit.
  const RunResult r = sys.run(100, /*max_cycles=*/40000,
                              /*warmup_instructions=*/20000);
  EXPECT_LT(r.cycles, 40000u) << "measured phase unexpectedly hit the limit "
                                 "— warmup aggregation is untested";
  EXPECT_TRUE(r.hit_cycle_limit) << "warmup hit the limit but was not "
                                    "reported";
}

// Golden pre-backend results: the multi-channel MemoryBackend refactor
// must leave channels=1 runs bit-identical to the single-channel pipeline
// it replaced. These numbers were captured from the tree at the commit
// before the backend existed (event-driven loop, which the determinism
// tests above tie to the per-cycle loop). All-integer fields only, so
// they are exact on any platform.
TEST(SimFastPathDeterminism, Channels1MatchesPreBackendGolden) {
  struct Golden {
    const char* workload;
    secmem::SecurityParams security;
    std::uint64_t cycles, llc_misses, data_reads, counter_fetches,
        tree_node_fetches, reads_enqueued, reads_completed, row_hits,
        row_misses, activates, precharges, refreshes, data_bus_busy_cycles,
        total_read_latency, metadata_accesses, core0_cycles,
        core0_load_stalls, core1_cycles, core1_load_stalls;
  };
  const std::vector<Golden> goldens = {
      {"mcf", secmem::SecurityParams::secddr_ctr(), 18817, 1100, 1106, 855,
       0, 1961, 1961, 171, 1790, 2094, 2094, 2, 7844, 567909, 1106, 18818,
       18352, 18714, 18251},
      {"lbm", secmem::SecurityParams::baseline_tree_ctr(), 11876, 523, 761,
       11, 21, 793, 793, 737, 56, 62, 68, 2, 3172, 193221, 982, 11877,
       11409, 9214, 8743},
  };
  for (const Golden& g : goldens) {
    SCOPED_TRACE(g.workload);
    Variant v{"golden", g.security};
    v.channels = 1;  // golden numbers are channels=1 by definition
    const auto* desc = workloads::find(g.workload);
    ASSERT_NE(desc, nullptr);
    const RunResult r = run_variant(*desc, v, /*event_driven=*/true);
    EXPECT_EQ(r.cycles, g.cycles);
    EXPECT_EQ(r.mem.llc_demand_misses, g.llc_misses);
    EXPECT_EQ(r.engine.data_reads, g.data_reads);
    EXPECT_EQ(r.engine.counter_fetches, g.counter_fetches);
    EXPECT_EQ(r.engine.tree_node_fetches, g.tree_node_fetches);
    EXPECT_EQ(r.dram.reads_enqueued, g.reads_enqueued);
    EXPECT_EQ(r.dram.reads_completed, g.reads_completed);
    EXPECT_EQ(r.dram.row_hits, g.row_hits);
    EXPECT_EQ(r.dram.row_misses, g.row_misses);
    EXPECT_EQ(r.dram.activates, g.activates);
    EXPECT_EQ(r.dram.precharges, g.precharges);
    EXPECT_EQ(r.dram.refreshes, g.refreshes);
    EXPECT_EQ(r.dram.data_bus_busy_cycles, g.data_bus_busy_cycles);
    EXPECT_EQ(r.dram.total_read_latency, g.total_read_latency);
    EXPECT_EQ(r.metadata_accesses, g.metadata_accesses);
    ASSERT_EQ(r.cores.size(), 2u);
    EXPECT_EQ(r.cores[0].cycles, g.core0_cycles);
    EXPECT_EQ(r.cores[0].load_stall_cycles, g.core0_load_stalls);
    EXPECT_EQ(r.cores[1].cycles, g.core1_cycles);
    EXPECT_EQ(r.cores[1].load_stall_cycles, g.core1_load_stalls);
    // The aggregate equals the sole channel's breakdown.
    ASSERT_EQ(r.dram_per_channel.size(), 1u);
    EXPECT_EQ(r.dram_per_channel[0].reads_completed, g.reads_completed);
  }
}

// Golden results captured at the PR 3 commit (global-deque controller,
// serial backend): the per-bank request queues and the threaded tick path
// must reproduce them bit for bit, single- and multi-channel, both
// channel-bit positions, and at the saturated 4-core configuration.
// All-integer fields only, so they are exact on any platform.
TEST(SimFastPathDeterminism, PerBankQueuesMatchPr3Golden) {
  struct Golden {
    const char* workload;
    secmem::SecurityParams security;
    unsigned channels;
    dram::ChannelInterleave interleave;
    unsigned cores;
    std::uint64_t cycles, llc_misses, data_reads, counter_fetches,
        tree_node_fetches, reads_enqueued, reads_completed, writes_completed,
        row_hits, row_misses, activates, precharges, refreshes,
        data_bus_busy_cycles, total_read_latency, metadata_accesses,
        core0_cycles, core0_load_stalls;
  };
  const std::vector<Golden> goldens = {
      {"mcf", secmem::SecurityParams::secddr_ctr(), 2,
       dram::ChannelInterleave::kLine, 2, 12145, 1099, 1106, 856, 0, 1962,
       1962, 0, 153, 1809, 1941, 1941, 2, 7848, 359277, 1106, 11442, 10973},
      {"lbm", secmem::SecurityParams::baseline_tree_ctr(), 4,
       dram::ChannelInterleave::kRow, 2, 7642, 547, 759, 11, 22, 792, 792, 0,
       752, 40, 41, 37, 4, 3168, 136303, 921, 7643, 7172},
      {"mcf", secmem::SecurityParams::secddr_ctr(), 1,
       dram::ChannelInterleave::kLine, 4, 38230, 2257, 2280, 1741, 0, 4021,
       4021, 0, 359, 3662, 4364, 4364, 3, 16084, 1207386, 2280, 23249,
       22789},
  };
  // Serial first, then every channel ticked on its own thread: both must
  // match the PR 3 numbers exactly.
  for (const unsigned mem_threads : {1u, 4u}) {
    SCOPED_TRACE("mem_threads=" + std::to_string(mem_threads));
    for (const Golden& g : goldens) {
      SCOPED_TRACE(std::string(g.workload) + "/" +
                   std::to_string(g.channels) + "ch/" +
                   std::to_string(g.cores) + "cores");
      SystemConfig cfg;
      cfg.mem.cores = g.cores;
      cfg.security = g.security;
      cfg.geometry.channels = g.channels;
      cfg.geometry.channel_interleave = g.interleave;
      cfg.data_bytes = static_cast<std::uint64_t>(g.cores) * (2ull << 30);
      cfg.mem_threads = mem_threads;
      std::vector<std::unique_ptr<workloads::SyntheticTrace>> traces;
      std::vector<TraceSource*> ptrs;
      const auto* desc = workloads::find(g.workload);
      ASSERT_NE(desc, nullptr);
      for (unsigned i = 0; i < g.cores; ++i) {
        traces.push_back(std::make_unique<workloads::SyntheticTrace>(*desc, i));
        ptrs.push_back(traces.back().get());
      }
      System sys(cfg, ptrs);
      const RunResult r = sys.run(3000, 2'000'000'000, /*warmup=*/800);
      EXPECT_EQ(r.cycles, g.cycles);
      EXPECT_EQ(r.mem.llc_demand_misses, g.llc_misses);
      EXPECT_EQ(r.engine.data_reads, g.data_reads);
      EXPECT_EQ(r.engine.counter_fetches, g.counter_fetches);
      EXPECT_EQ(r.engine.tree_node_fetches, g.tree_node_fetches);
      EXPECT_EQ(r.dram.reads_enqueued, g.reads_enqueued);
      EXPECT_EQ(r.dram.reads_completed, g.reads_completed);
      EXPECT_EQ(r.dram.writes_completed, g.writes_completed);
      EXPECT_EQ(r.dram.row_hits, g.row_hits);
      EXPECT_EQ(r.dram.row_misses, g.row_misses);
      EXPECT_EQ(r.dram.activates, g.activates);
      EXPECT_EQ(r.dram.precharges, g.precharges);
      EXPECT_EQ(r.dram.refreshes, g.refreshes);
      EXPECT_EQ(r.dram.data_bus_busy_cycles, g.data_bus_busy_cycles);
      EXPECT_EQ(r.dram.total_read_latency, g.total_read_latency);
      EXPECT_EQ(r.metadata_accesses, g.metadata_accesses);
      ASSERT_GE(r.cores.size(), 1u);
      EXPECT_EQ(r.cores[0].cycles, g.core0_cycles);
      EXPECT_EQ(r.cores[0].load_stall_cycles, g.core0_load_stalls);
    }
  }
}

// Threaded memory backend (SECDDR_MEM_THREADS > 1): every channel's
// controller + engine ticks on a worker thread behind a fixed
// channel-order aggregation barrier, so the full RunResult — including
// per-channel breakdowns — must be bit-identical to the serial backend,
// under both simulation loops.
TEST(SimFastPathDeterminism, ThreadedBackendBitIdentical) {
  for (const char* wl : {"mcf", "lbm"}) {
    const auto* desc = workloads::find(wl);
    ASSERT_NE(desc, nullptr);
    for (unsigned channels : {2u, 4u}) {
      Variant v{"threaded", secmem::SecurityParams::secddr_ctr()};
      v.channels = channels;
      if (channels == 4) v.interleave = dram::ChannelInterleave::kRow;
      for (const bool event_driven : {true, false}) {
        SCOPED_TRACE(std::string(wl) + "/" + std::to_string(channels) +
                     "ch/event_driven=" + std::to_string(event_driven));
        const RunResult serial = run_variant(*desc, v, event_driven,
                                             2'000'000'000, /*mem_threads=*/1);
        const RunResult threaded = run_variant(
            *desc, v, event_driven, 2'000'000'000, /*mem_threads=*/channels);
        expect_identical(serial, threaded);
      }
    }
  }
}

TEST(SimFastPathDeterminism, EpochDecoupledBitIdentical) {
  // The epoch-decoupled fast path (bounded-lookahead windows, channels
  // run ahead on local clocks, fills drained at epoch boundaries) against
  // the per-cycle serial reference, under memory pressure that keeps
  // every window-bound ingredient live: in-flight reads, queued reads
  // behind write drains, write forwarding, deferred issues, and matured
  // completion flags. Every mem_threads setting must reproduce the
  // reference exactly — including the per-channel stat breakdowns
  // expect_identical covers.
  workloads::WorkloadDesc stress{
      "epoch-stress", 120.0, 400.0, 0.5, 1ull << 30,
      workloads::Pattern::kRandom, true, 11};
  std::vector<workloads::WorkloadDesc> descs{stress, *workloads::find("mcf")};
  for (const auto& desc : descs) {
    auto run = [&](bool event_driven, unsigned mem_threads) {
      SystemConfig cfg;
      cfg.mem.cores = 4;
      cfg.mem.mshrs = 16;
      cfg.mem.llc_bytes = 1ull << 20;
      cfg.security = secmem::SecurityParams::secddr_ctr();
      cfg.geometry.channels = 4;
      cfg.data_bytes = 8ull << 30;  // four cores at 2GB trace stride
      cfg.event_driven = event_driven;
      cfg.mem_threads = mem_threads;
      workloads::SyntheticTrace t0(desc, 0), t1(desc, 1), t2(desc, 2),
          t3(desc, 3);
      System sys(cfg, {&t0, &t1, &t2, &t3});
      return sys.run(20000, 2'000'000'000, /*warmup=*/4000);
    };
    SCOPED_TRACE(desc.name);
    const RunResult reference = run(/*event_driven=*/false, 1);
    for (unsigned mem_threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("mem_threads=" + std::to_string(mem_threads));
      expect_identical(reference, run(/*event_driven=*/true, mem_threads));
    }
  }
}

// Event-driven core fast-path for compute phases: a workload whose
// non-memory batches dwarf the ROB exercises the closed-form bulk
// retirement (compute_replayable_ticks / advance_compute). The fast loop
// must replay fetch + retirement math exactly — instructions, cycles,
// per-core stats — across the budget boundary between warmup and the
// measured phase.
TEST(SimFastPathDeterminism, BitIdenticalOnComputePhases) {
  // ~1 memory instruction per 2000 instructions and near-zero MPKI: the
  // ROB spends nearly all its time holding one giant batch, which is the
  // pure-compute state the closed form replays.
  const workloads::WorkloadDesc compute_heavy{
      "compute-heavy", 0.05, 0.5, 0.2, 64ull << 20,
      workloads::Pattern::kMixed, false, 11};
  const workloads::WorkloadDesc compute_pure{
      "compute-pure", 0.01, 0.1, 0.0, 16ull << 20,
      workloads::Pattern::kStreaming, false, 12};
  for (const auto& desc : {compute_heavy, compute_pure}) {
    SCOPED_TRACE(desc.name);
    const Variant v{"secddr_ctr", secmem::SecurityParams::secddr_ctr()};
    const RunResult slow = run_variant(desc, v, /*event_driven=*/false);
    const RunResult fast = run_variant(desc, v, /*event_driven=*/true);
    expect_identical(slow, fast);
    // The fast loop must actually have exercised the bulk-retire path:
    // with ~2000-instruction batches and a 224-entry ROB the run is
    // compute-dominated, so instructions vastly outnumber memory ops.
    ASSERT_GT(fast.cores[0].instructions, 1000u);
  }
}

}  // namespace
}  // namespace secddr::sim
