// Slow-vs-fast determinism: the event-driven simulation loop must be a
// pure optimization. Every statistic of every component — core cycles,
// stall accounting, cache/MSHR traffic, engine metadata fetches, DRAM
// command and latency counters — must be bit-identical to the
// tick-every-cycle loop, across the fig6 sweep configurations, DRAM
// timing presets (including a non-integer core:memory clock ratio), both
// scheduling policies, and a run that hits the cycle limit.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "secmem/params.h"
#include "sim/system.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr::sim {
namespace {

struct Variant {
  std::string name;
  secmem::SecurityParams security;
  dram::Timings timings = dram::Timings::ddr4_3200();
  dram::SchedulingPolicy scheduling = dram::SchedulingPolicy::kFrFcfs;
};

std::vector<Variant> sweep_variants() {
  return {
      {"tree64", secmem::SecurityParams::baseline_tree_ctr()},
      {"secddr_ctr", secmem::SecurityParams::secddr_ctr()},
      {"enc_ctr", secmem::SecurityParams::encrypt_only_ctr()},
      {"secddr_xts", secmem::SecurityParams::secddr_xts()},
      {"enc_xts", secmem::SecurityParams::encrypt_only_xts()},
      // Non-integer 3:8 memory:core clock ratio (InvisiMem's derated
      // channel) exercises the clock-accumulator inversion.
      {"invisimem_2400",
       secmem::SecurityParams::invisimem(secmem::Encryption::kXts),
       dram::Timings::ddr4_2400()},
      {"tree64_fcfs", secmem::SecurityParams::baseline_tree_ctr(),
       dram::Timings::ddr4_3200(), dram::SchedulingPolicy::kFcfs},
  };
}

RunResult run_variant(const workloads::WorkloadDesc& desc, const Variant& v,
                      bool event_driven, Cycle max_cycles = 2'000'000'000) {
  SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = v.security;
  cfg.timings = v.timings;
  cfg.scheduling = v.scheduling;
  cfg.data_bytes = 4ull << 30;  // two cores at 2GB trace stride
  cfg.event_driven = event_driven;
  workloads::SyntheticTrace t0(desc, 0), t1(desc, 1);
  System sys(cfg, {&t0, &t1});
  return sys.run(3000, max_cycles, /*warmup=*/800);
}

void expect_identical(const RunResult& slow, const RunResult& fast) {
  ASSERT_EQ(slow.cores.size(), fast.cores.size());
  for (std::size_t i = 0; i < slow.cores.size(); ++i) {
    SCOPED_TRACE("core " + std::to_string(i));
    EXPECT_EQ(slow.cores[i].instructions, fast.cores[i].instructions);
    EXPECT_EQ(slow.cores[i].cycles, fast.cores[i].cycles);
    EXPECT_EQ(slow.cores[i].loads, fast.cores[i].loads);
    EXPECT_EQ(slow.cores[i].stores, fast.cores[i].stores);
    EXPECT_EQ(slow.cores[i].load_stall_cycles, fast.cores[i].load_stall_cycles);
  }
  EXPECT_EQ(slow.cycles, fast.cycles);
  EXPECT_EQ(slow.hit_cycle_limit, fast.hit_cycle_limit);
  // Derived doubles come from identical integers, so exact equality holds.
  EXPECT_EQ(slow.total_ipc, fast.total_ipc);
  EXPECT_EQ(slow.llc_mpki, fast.llc_mpki);
  EXPECT_EQ(slow.metadata_miss_rate, fast.metadata_miss_rate);
  EXPECT_EQ(slow.metadata_accesses, fast.metadata_accesses);

  EXPECT_EQ(slow.mem.l1_accesses, fast.mem.l1_accesses);
  EXPECT_EQ(slow.mem.l1_misses, fast.mem.l1_misses);
  EXPECT_EQ(slow.mem.llc_demand_accesses, fast.mem.llc_demand_accesses);
  EXPECT_EQ(slow.mem.llc_demand_misses, fast.mem.llc_demand_misses);
  EXPECT_EQ(slow.mem.llc_writebacks, fast.mem.llc_writebacks);
  EXPECT_EQ(slow.mem.prefetch_fills, fast.mem.prefetch_fills);
  EXPECT_EQ(slow.mem.llc_demand_misses_per_core,
            fast.mem.llc_demand_misses_per_core);

  EXPECT_EQ(slow.engine.data_reads, fast.engine.data_reads);
  EXPECT_EQ(slow.engine.data_writes, fast.engine.data_writes);
  EXPECT_EQ(slow.engine.counter_fetches, fast.engine.counter_fetches);
  EXPECT_EQ(slow.engine.mac_line_fetches, fast.engine.mac_line_fetches);
  EXPECT_EQ(slow.engine.tree_node_fetches, fast.engine.tree_node_fetches);
  EXPECT_EQ(slow.engine.meta_writebacks, fast.engine.meta_writebacks);
  EXPECT_EQ(slow.engine.reads_with_tree_walk, fast.engine.reads_with_tree_walk);

  EXPECT_EQ(slow.dram.reads_enqueued, fast.dram.reads_enqueued);
  EXPECT_EQ(slow.dram.writes_enqueued, fast.dram.writes_enqueued);
  EXPECT_EQ(slow.dram.reads_completed, fast.dram.reads_completed);
  EXPECT_EQ(slow.dram.writes_completed, fast.dram.writes_completed);
  EXPECT_EQ(slow.dram.row_hits, fast.dram.row_hits);
  EXPECT_EQ(slow.dram.row_misses, fast.dram.row_misses);
  EXPECT_EQ(slow.dram.activates, fast.dram.activates);
  EXPECT_EQ(slow.dram.precharges, fast.dram.precharges);
  EXPECT_EQ(slow.dram.refreshes, fast.dram.refreshes);
  EXPECT_EQ(slow.dram.write_forwards, fast.dram.write_forwards);
  EXPECT_EQ(slow.dram.data_bus_busy_cycles, fast.dram.data_bus_busy_cycles);
  EXPECT_EQ(slow.dram.total_read_latency, fast.dram.total_read_latency);
}

TEST(SimFastPathDeterminism, BitIdenticalAcrossSweepConfigs) {
  for (const char* wl : {"mcf", "povray", "lbm"}) {
    const auto* desc = workloads::find(wl);
    ASSERT_NE(desc, nullptr);
    for (const Variant& v : sweep_variants()) {
      SCOPED_TRACE(std::string(wl) + " / " + v.name);
      expect_identical(run_variant(*desc, v, /*event_driven=*/false),
                       run_variant(*desc, v, /*event_driven=*/true));
    }
  }
}

TEST(SimFastPathDeterminism, BitIdenticalUnderWriteDrainPressure) {
  // Small MSHR pool + small LLC + write-heavy high-MPKI traffic keeps the
  // write queue crossing the drain watermarks and the MSHRs saturated —
  // the regime that exercises the drain-flip events and the
  // blocked-issue retry replay.
  // A synthetic stress workload (random, high MPKI, write-heavy) on top
  // of the suite's worst cases.
  workloads::WorkloadDesc stress{
      "drain-stress", 120.0, 400.0, 0.5, 1ull << 30,
      workloads::Pattern::kRandom, true, 7};
  std::vector<workloads::WorkloadDesc> descs{stress, *workloads::find("lbm"),
                                             *workloads::find("mcf")};
  for (const auto& desc : descs) {
    auto run = [&](bool event_driven) {
      SystemConfig cfg;
      cfg.mem.cores = 4;
      cfg.mem.mshrs = 16;
      cfg.mem.llc_bytes = 1ull << 20;
      cfg.security = secmem::SecurityParams::encrypt_only_xts();
      cfg.data_bytes = 8ull << 30;  // four cores at 2GB trace stride
      cfg.event_driven = event_driven;
      workloads::SyntheticTrace t0(desc, 0), t1(desc, 1), t2(desc, 2),
          t3(desc, 3);
      System sys(cfg, {&t0, &t1, &t2, &t3});
      return sys.run(30000, 2'000'000'000, /*warmup=*/5000);
    };
    SCOPED_TRACE(desc.name);
    expect_identical(run(false), run(true));
  }
}

TEST(SimFastPathDeterminism, BitIdenticalWhenCycleLimitHits) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  const Variant v{"tree64", secmem::SecurityParams::baseline_tree_ctr()};
  const RunResult slow =
      run_variant(*desc, v, /*event_driven=*/false, /*max_cycles=*/3000);
  const RunResult fast =
      run_variant(*desc, v, /*event_driven=*/true, /*max_cycles=*/3000);
  ASSERT_TRUE(slow.hit_cycle_limit) << "limit chosen too high for the test";
  expect_identical(slow, fast);
}

}  // namespace
}  // namespace secddr::sim
