// SEC-DED ECC substrate and its integration in the DIMM device model.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/secded.h"
#include "core/session.h"

namespace secddr {
namespace {

TEST(Secded, CleanWordDecodesOk) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 500; ++i) {
    std::uint64_t data = rng.next();
    std::uint8_t check = secded_encode(data);
    const std::uint64_t orig = data;
    EXPECT_EQ(secded_decode(data, check), SecdedStatus::kOk);
    EXPECT_EQ(data, orig);
  }
}

TEST(Secded, EverySingleDataBitFlipCorrected) {
  Xoshiro256 rng(2);
  const std::uint64_t orig = rng.next();
  const std::uint8_t orig_check = secded_encode(orig);
  for (int bit = 0; bit < 64; ++bit) {
    std::uint64_t data = orig ^ (1ull << bit);
    std::uint8_t check = orig_check;
    EXPECT_EQ(secded_decode(data, check), SecdedStatus::kCorrected)
        << "bit " << bit;
    EXPECT_EQ(data, orig) << "bit " << bit;
  }
}

TEST(Secded, EverySingleCheckBitFlipCorrected) {
  const std::uint64_t orig = 0xDEADBEEFCAFEF00Dull;
  const std::uint8_t orig_check = secded_encode(orig);
  for (int bit = 0; bit < 8; ++bit) {
    std::uint64_t data = orig;
    std::uint8_t check = orig_check ^ static_cast<std::uint8_t>(1u << bit);
    EXPECT_EQ(secded_decode(data, check), SecdedStatus::kCorrected)
        << "check bit " << bit;
    EXPECT_EQ(data, orig);
    EXPECT_EQ(check, orig_check);
  }
}

TEST(Secded, DoubleBitFlipsDetectedNotMiscorrected) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t orig = rng.next();
    const std::uint8_t orig_check = secded_encode(orig);
    const unsigned b1 = static_cast<unsigned>(rng.next_below(64));
    unsigned b2;
    do {
      b2 = static_cast<unsigned>(rng.next_below(64));
    } while (b2 == b1);
    std::uint64_t data = orig ^ (1ull << b1) ^ (1ull << b2);
    std::uint8_t check = orig_check;
    EXPECT_EQ(secded_decode(data, check), SecdedStatus::kUncorrectable)
        << "bits " << b1 << "," << b2;
  }
}

// ------------------------------------------------------- DIMM integration

core::SessionConfig ecc_config(bool secded) {
  core::SessionConfig cfg;
  cfg.dimm.geometry.ranks = 1;
  cfg.dimm.geometry.bank_groups = 2;
  cfg.dimm.geometry.banks_per_group = 2;
  cfg.dimm.geometry.rows_per_bank = 16;
  cfg.dimm.geometry.columns_per_row = 8;
  cfg.dimm.secded_enabled = secded;
  cfg.seed = 77;
  return cfg;
}

TEST(SecdedDimm, SoftErrorCorrectedTransparently) {
  auto s = core::SecureMemorySession::create(ecc_config(true));
  ASSERT_NE(s, nullptr);
  const CacheLine v = CacheLine::filled(0x3A);
  s->write(0x40, v);
  // A cosmic ray flips a stored bit (line_key 1 = col 1 of row 0).
  ASSERT_TRUE(s->dimm().inject_fault(0, 1, 137));
  const auto r = s->read(0x40);
  ASSERT_TRUE(r.ok()) << "single-bit fault must be invisible to the MAC";
  EXPECT_EQ(r.data, v);
  EXPECT_EQ(s->dimm().ecc_corrections(), 1u);
  // Scrubbed on access: the next read needs no correction.
  ASSERT_TRUE(s->read(0x40).ok());
  EXPECT_EQ(s->dimm().ecc_corrections(), 1u);
}

TEST(SecdedDimm, WithoutEccTheFaultTripsTheMac) {
  auto s = core::SecureMemorySession::create(ecc_config(false));
  ASSERT_NE(s, nullptr);
  s->write(0x40, CacheLine::filled(0x3A));
  ASSERT_TRUE(s->dimm().inject_fault(0, 1, 137));
  // Integrity protection catches the corruption, but the data is lost —
  // which is exactly why ECC and MACs coexist in the ECC chips.
  EXPECT_FALSE(s->read(0x40).ok());
}

TEST(SecdedDimm, DoubleFaultDetectedByMac) {
  auto s = core::SecureMemorySession::create(ecc_config(true));
  ASSERT_NE(s, nullptr);
  s->write(0x40, CacheLine::filled(0x3A));
  // Two flips in the same 64-bit word: beyond SEC-DED correction.
  ASSERT_TRUE(s->dimm().inject_fault(0, 1, 3));
  ASSERT_TRUE(s->dimm().inject_fault(0, 1, 17));
  EXPECT_FALSE(s->read(0x40).ok()) << "uncorrectable fault must not verify";
}

TEST(SecdedDimm, ManyScatteredFaultsAllCorrected) {
  auto s = core::SecureMemorySession::create(ecc_config(true));
  ASSERT_NE(s, nullptr);
  Xoshiro256 rng(9);
  // One fault per distinct 64-bit word across many lines.
  for (unsigned line = 0; line < 8; ++line) {
    const Addr a = static_cast<Addr>(line) * kLineSize;
    s->write(a, CacheLine::filled(static_cast<std::uint8_t>(line)));
  }
  for (unsigned line = 0; line < 8; ++line) {
    const unsigned word = static_cast<unsigned>(rng.next_below(8));
    ASSERT_TRUE(
        s->dimm().inject_fault(0, line, word * 64 +
                               static_cast<unsigned>(rng.next_below(64))));
  }
  for (unsigned line = 0; line < 8; ++line) {
    const Addr a = static_cast<Addr>(line) * kLineSize;
    const auto r = s->read(a);
    ASSERT_TRUE(r.ok()) << "line " << line;
    EXPECT_EQ(r.data, CacheLine::filled(static_cast<std::uint8_t>(line)));
  }
  EXPECT_EQ(s->dimm().ecc_corrections(), 8u);
}

}  // namespace
}  // namespace secddr
