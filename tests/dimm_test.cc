// Device-level protocol tests: drive the Dimm directly with hand-built
// commands (a minimal processor side constructed in the test), verifying
// the ECC-chip logic's exact storage and checking semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/dimm.h"
#include "core/emac.h"
#include "core/ewcrc.h"
#include "crypto/dh.h"
#include "crypto/hmac.h"

namespace secddr::core {
namespace {

DimmConfig tiny_dimm() {
  DimmConfig cfg;
  cfg.geometry.ranks = 2;
  cfg.geometry.bank_groups = 2;
  cfg.geometry.banks_per_group = 2;
  cfg.geometry.rows_per_bank = 16;
  cfg.geometry.columns_per_row = 8;
  return cfg;
}

// A minimal processor side: runs the key exchange against one rank and
// keeps a synchronized EmacEngine.
struct TestChannel {
  explicit TestChannel(Dimm& dimm, unsigned rank, std::uint64_t seed = 99)
      : rng(seed) {
    const auto& group = crypto::DhGroup::modp1536();
    const auto eph = crypto::dh_generate(group, rng);
    const auto resp = dimm.key_exchange(rank, eph.pub);
    const auto shared = crypto::dh_shared_secret(group, eph.priv, resp.pub);
    const auto okm = crypto::hkdf(
        {}, shared, {'s', 'e', 'c', 'd', 'd', 'r', '-', 'k', 't'}, 16);
    crypto::Key128 kt{};
    std::copy(okm.begin(), okm.end(), kt.begin());
    dimm.set_transaction_counter(rank, 1000);
    engine.emplace(kt, rank, 1000);
  }

  WriteCmd make_write(unsigned rank, unsigned bg, unsigned bank,
                      std::uint64_t row, unsigned col, const CacheLine& data,
                      std::uint64_t mac) {
    WriteCmd cmd;
    cmd.rank = rank;
    cmd.bank_group = bg;
    cmd.bank = bank;
    cmd.column = col;
    cmd.data = data;
    const std::uint64_t c = engine->next_counter(Dir::kWrite);
    cmd.emac = engine->encrypt_mac(mac, c);
    const WriteAddress addr{rank, bg, bank, row, col};
    cmd.data_crc = ewcrc_data_chips(addr, data);
    cmd.ecc_crc = static_cast<std::uint16_t>(ewcrc_ecc_chip(addr, mac) ^
                                             engine->otp_w(c, addr.code()));
    return cmd;
  }

  Xoshiro256 rng;
  std::optional<EmacEngine> engine;
};

struct Rig {
  Rig() : dimm(tiny_dimm(), "dimm:device-test", crypto::DhGroup::modp1536(), 7) {
    crypto::CertificateAuthority ca(crypto::DhGroup::modp1536(), 1);
    dimm.provision(ca);
  }
  Dimm dimm;
};

TEST(DimmDevice, StoresDecryptedMacNotEmac) {
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  rig.dimm.activate({0, 0, 0, 3});
  const CacheLine data = CacheLine::filled(0x5C);
  const std::uint64_t mac = 0xABCDEF0123456789ull;
  const WriteCmd cmd = chan.make_write(0, 0, 0, 3, 2, data, mac);
  EXPECT_NE(cmd.emac, mac) << "MAC must be encrypted on the wire";
  const WriteStatus st = rig.dimm.write(cmd);
  ASSERT_TRUE(st.stored);
  // line_key for (bg0, bank0, row3, col2) = ((0*2+0)*16+3)*8+2.
  CacheLine stored;
  std::uint64_t stored_mac = 0;
  ASSERT_TRUE(rig.dimm.peek_line(0, (3 * 8) + 2, &stored, &stored_mac));
  EXPECT_EQ(stored, data);
  EXPECT_EQ(stored_mac, mac) << "MACs rest unencrypted (paper §III-A)";
}

TEST(DimmDevice, ReadReturnsEmacUnderFreshPad) {
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  rig.dimm.activate({0, 0, 0, 1});
  const std::uint64_t mac = 0x1122334455667788ull;
  ASSERT_TRUE(
      rig.dimm.write(chan.make_write(0, 0, 0, 1, 0, CacheLine::filled(9), mac))
          .stored);
  const std::uint64_t c = chan.engine->next_counter(Dir::kRead);
  const auto resp = rig.dimm.read({0, 0, 0, 0});
  ASSERT_TRUE(resp.has_value());
  EXPECT_NE(resp->emac, mac);
  EXPECT_EQ(chan.engine->decrypt_mac(resp->emac, c), mac);
}

TEST(DimmDevice, ReadWithoutOpenRowReturnsNothing) {
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  EXPECT_FALSE(rig.dimm.read({0, 1, 1, 0}).has_value());
}

TEST(DimmDevice, WriteWithoutOpenRowAlerts) {
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  const WriteCmd cmd =
      chan.make_write(0, 1, 1, 0, 0, CacheLine::filled(1), 42);
  const WriteStatus st = rig.dimm.write(cmd);
  EXPECT_FALSE(st.stored);
  EXPECT_TRUE(st.alert);
}

TEST(DimmDevice, WriteToWrongOpenRowFailsEwcrc) {
  // The device verifies against the row it actually has open.
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  rig.dimm.activate({0, 0, 0, 5});  // row 5 open
  // The processor believes row 4 is open (CRCs computed for row 4).
  const WriteCmd cmd =
      chan.make_write(0, 0, 0, /*row=*/4, 1, CacheLine::filled(2), 43);
  const WriteStatus st = rig.dimm.write(cmd);
  EXPECT_FALSE(st.stored);
  EXPECT_TRUE(st.alert);
}

TEST(DimmDevice, CorruptedDataSliceAlerts) {
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  rig.dimm.activate({0, 0, 0, 0});
  WriteCmd cmd = chan.make_write(0, 0, 0, 0, 0, CacheLine::filled(7), 44);
  cmd.data[17] ^= 0x40;  // corrupt chip 2's slice in flight
  EXPECT_TRUE(rig.dimm.write(cmd).alert);
}

TEST(DimmDevice, CorruptedEccCrcAlerts) {
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  rig.dimm.activate({0, 0, 0, 0});
  WriteCmd cmd = chan.make_write(0, 0, 0, 0, 0, CacheLine::filled(7), 44);
  cmd.ecc_crc ^= 0x1;
  EXPECT_TRUE(rig.dimm.write(cmd).alert);
}

TEST(DimmDevice, RanksAreIndependentChannels) {
  Rig rig;
  TestChannel chan0(rig.dimm, 0, 5);
  TestChannel chan1(rig.dimm, 1, 6);
  rig.dimm.activate({0, 0, 0, 0});
  rig.dimm.activate({1, 0, 0, 0});
  ASSERT_TRUE(rig.dimm
                  .write(chan0.make_write(0, 0, 0, 0, 0,
                                          CacheLine::filled(0xA0), 100))
                  .stored);
  ASSERT_TRUE(rig.dimm
                  .write(chan1.make_write(1, 0, 0, 0, 0,
                                          CacheLine::filled(0xB1), 200))
                  .stored);
  CacheLine d0, d1;
  std::uint64_t m0 = 0, m1 = 0;
  ASSERT_TRUE(rig.dimm.peek_line(0, 0, &d0, &m0));
  ASSERT_TRUE(rig.dimm.peek_line(1, 0, &d1, &m1));
  EXPECT_EQ(d0, CacheLine::filled(0xA0));
  EXPECT_EQ(d1, CacheLine::filled(0xB1));
  EXPECT_EQ(m0, 100u);
  EXPECT_EQ(m1, 200u);
  // Counters advanced independently.
  EXPECT_EQ(rig.dimm.transaction_counter(0),
            rig.dimm.transaction_counter(1));
}

TEST(DimmDevice, ActivateSwitchesRowsPerBank) {
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  rig.dimm.activate({0, 0, 0, 2});
  ASSERT_TRUE(rig.dimm
                  .write(chan.make_write(0, 0, 0, 2, 0,
                                         CacheLine::filled(0x22), 1))
                  .stored);
  rig.dimm.activate({0, 0, 0, 9});
  ASSERT_TRUE(rig.dimm
                  .write(chan.make_write(0, 0, 0, 9, 0,
                                         CacheLine::filled(0x99), 2))
                  .stored);
  // Both rows hold their own data (keys: row*8 + col).
  CacheLine a, b;
  ASSERT_TRUE(rig.dimm.peek_line(0, 2 * 8, &a, nullptr));
  ASSERT_TRUE(rig.dimm.peek_line(0, 9 * 8, &b, nullptr));
  EXPECT_EQ(a, CacheLine::filled(0x22));
  EXPECT_EQ(b, CacheLine::filled(0x99));
  // Other banks are unaffected by this bank's activates.
  EXPECT_FALSE(rig.dimm.read({0, 1, 0, 0}).has_value());
}

TEST(DimmDevice, SnapshotRestoreRoundTrip) {
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  rig.dimm.activate({0, 0, 0, 0});
  ASSERT_TRUE(rig.dimm
                  .write(chan.make_write(0, 0, 0, 0, 0,
                                         CacheLine::filled(0x11), 7))
                  .stored);
  const auto snap = rig.dimm.snapshot();
  const std::uint64_t ctr_at_snap = rig.dimm.transaction_counter(0);
  ASSERT_TRUE(rig.dimm
                  .write(chan.make_write(0, 0, 0, 0, 0,
                                         CacheLine::filled(0x22), 8))
                  .stored);
  rig.dimm.restore(snap);
  CacheLine d;
  std::uint64_t m = 0;
  ASSERT_TRUE(rig.dimm.peek_line(0, 0, &d, &m));
  EXPECT_EQ(d, CacheLine::filled(0x11));
  EXPECT_EQ(m, 7u);
  EXPECT_EQ(rig.dimm.transaction_counter(0), ctr_at_snap);
}

TEST(DimmDevice, RejectedWriteDoesNotConsumeCounter) {
  // Counter discipline: only a burst that commits to the arrays consumes
  // the write counter. The old advance-on-receipt rule let an attacker
  // re-synchronize a desynced channel by injecting a forged (rejected)
  // write, and left a masked-ALERT_n stale line self-consistent — the
  // fuzz campaign's drop+inject and alert-mask escapes (tests/regress/).
  Rig rig;
  TestChannel chan(rig.dimm, 0);
  rig.dimm.activate({0, 0, 0, 0});
  const std::uint64_t before = rig.dimm.transaction_counter(0);
  WriteCmd cmd = chan.make_write(0, 0, 0, 0, 0, CacheLine::filled(1), 9);
  cmd.data[0] ^= 1;  // force an alert
  EXPECT_TRUE(rig.dimm.write(cmd).alert);
  EXPECT_EQ(rig.dimm.transaction_counter(0), before);
  // The processor side, observing ALERT_n, does not consume either
  // (make_write consumed eagerly — roll the helper engine back).
  chan.engine->set_counter(before);
  // An accepted burst still consumes exactly one write transaction.
  EXPECT_TRUE(
      rig.dimm.write(chan.make_write(0, 0, 0, 0, 0, CacheLine::filled(1), 9))
          .stored);
  EXPECT_GT(rig.dimm.transaction_counter(0), before);
  EXPECT_EQ(rig.dimm.transaction_counter(0), chan.engine->counter());
}

}  // namespace
}  // namespace secddr::core
