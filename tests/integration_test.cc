// End-to-end integration: full simulator runs across the paper's security
// configurations, asserting the orderings the evaluation reports.
// These are shrunken versions of the Fig. 6/8/10 experiments (fewer
// instructions, 2 cores) so they run in seconds under ctest.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "secmem/params.h"
#include "sim/system.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr {
namespace {

using secmem::Encryption;
using secmem::SecurityParams;

double run_ipc(const std::string& workload, SecurityParams sec,
               std::uint64_t instr = 30000,
               dram::Timings timings = dram::Timings::ddr4_3200()) {
  const auto* desc = workloads::find(workload);
  EXPECT_NE(desc, nullptr);
  workloads::SyntheticTrace t0(*desc, 0), t1(*desc, 1);
  sim::SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = std::move(sec);
  cfg.timings = timings;
  cfg.data_bytes = 4ull << 30;
  sim::System sys(cfg, {&t0, &t1});
  const auto r = sys.run(instr, 100'000'000);
  EXPECT_FALSE(r.hit_cycle_limit);
  return r.total_ipc;
}

// ---- Fig. 6 orderings -------------------------------------------------

TEST(Integration, SecDdrCtrBeatsTreeOnRandomWorkload) {
  // §V-A: random-access workloads gain the most from removing the tree.
  const double tree = run_ipc("pr", SecurityParams::baseline_tree_ctr());
  const double secddr = run_ipc("pr", SecurityParams::secddr_ctr());
  EXPECT_GT(secddr, tree * 1.05) << "SecDDR must clearly beat the tree";
}

TEST(Integration, SecDdrCtrIsCloseToEncryptOnlyCtr) {
  // Paper: within 3% on average; give slack for a single short workload.
  const double enc = run_ipc("omnetpp", SecurityParams::encrypt_only_ctr());
  const double secddr = run_ipc("omnetpp", SecurityParams::secddr_ctr());
  EXPECT_GT(secddr, enc * 0.90);
  EXPECT_LE(secddr, enc * 1.02);
}

TEST(Integration, SecDdrXtsWithinOnePercentOfEncryptOnlyXts) {
  const double enc = run_ipc("mcf", SecurityParams::encrypt_only_xts());
  const double secddr = run_ipc("mcf", SecurityParams::secddr_xts());
  EXPECT_GT(secddr, enc * 0.95);
  EXPECT_LE(secddr, enc * 1.02);
}

TEST(Integration, XtsBeatsCtrForSecDdrOnRandomWorkload) {
  // §V-A: XTS removes counter fetches; random workloads benefit.
  const double ctr = run_ipc("sssp", SecurityParams::secddr_ctr());
  const double xts = run_ipc("sssp", SecurityParams::secddr_xts());
  EXPECT_GT(xts, ctr);
}

TEST(Integration, LowMpkiWorkloadBarelyAffectedByAnyConfig) {
  const double tree = run_ipc("povray", SecurityParams::baseline_tree_ctr());
  const double enc = run_ipc("povray", SecurityParams::encrypt_only_xts());
  EXPECT_GT(tree, enc * 0.93) << "compute-bound workloads shrug off the tree";
}

// ---- Fig. 8 orderings -------------------------------------------------

TEST(Integration, HashTree8IsDramaticallyWorse) {
  const double tree64 = run_ipc("bc", SecurityParams::baseline_tree_ctr());
  const double tree8 = run_ipc("bc", SecurityParams::hash_tree8_xts());
  EXPECT_LT(tree8, tree64 * 0.9) << "8-ary hash tree must be far slower";
}

TEST(Integration, CounterPacking8IsWorseThan64) {
  const double p8 =
      run_ipc("omnetpp", SecurityParams::encrypt_only_ctr(8));
  const double p64 =
      run_ipc("omnetpp", SecurityParams::encrypt_only_ctr(64));
  EXPECT_LT(p8, p64) << "8 counters/line shrinks counter-cache reach";
}

TEST(Integration, CounterPacking128SimilarTo64UnderRandomPaging) {
  // §V-A: random 4KB page mapping neutralizes 128-packing's advantage.
  const double p64 = run_ipc("mcf", SecurityParams::encrypt_only_ctr(64));
  const double p128 = run_ipc("mcf", SecurityParams::encrypt_only_ctr(128));
  EXPECT_NEAR(p128 / p64, 1.0, 0.05);
}

// ---- Fig. 10/12 orderings ---------------------------------------------

TEST(Integration, SecDdrBeatsInvisiMemRealistic) {
  const double inv = run_ipc("pr", SecurityParams::invisimem(Encryption::kXts),
                             30000, dram::Timings::ddr4_2400());
  const double secddr = run_ipc("pr", SecurityParams::secddr_xts());
  EXPECT_GT(secddr, inv * 1.02);
}

TEST(Integration, InvisiMemUnrealisticCloseButBehindSecDdr) {
  const double inv = run_ipc("cc", SecurityParams::invisimem(Encryption::kXts));
  const double secddr = run_ipc("cc", SecurityParams::secddr_xts());
  EXPECT_GT(secddr, inv * 0.99);
  EXPECT_LT(inv, secddr * 1.01);
}

// ---- conservation checks ----------------------------------------------

TEST(Integration, TreeConfigGeneratesMetadataTraffic) {
  const auto* desc = workloads::find("xz");
  workloads::SyntheticTrace t0(*desc, 0), t1(*desc, 1);
  sim::SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = SecurityParams::baseline_tree_ctr();
  cfg.data_bytes = 4ull << 30;
  sim::System sys(cfg, {&t0, &t1});
  const auto r = sys.run(30000);
  EXPECT_GT(r.engine.counter_fetches, 0u);
  EXPECT_GT(r.engine.tree_node_fetches, 0u);
  EXPECT_GT(r.metadata_accesses, 0u);
  // DRAM reads >= data reads + metadata fetches (prefetches add more).
  EXPECT_GE(r.dram.reads_enqueued,
            r.engine.data_reads + r.engine.meta_reads());
}

TEST(Integration, SecDdrGeneratesZeroTreeTraffic) {
  const auto* desc = workloads::find("xz");
  workloads::SyntheticTrace t0(*desc, 0), t1(*desc, 1);
  sim::SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = SecurityParams::secddr_xts();
  cfg.data_bytes = 4ull << 30;
  sim::System sys(cfg, {&t0, &t1});
  const auto r = sys.run(30000);
  EXPECT_EQ(r.engine.tree_node_fetches, 0u);
  EXPECT_EQ(r.engine.counter_fetches, 0u);
  EXPECT_EQ(r.engine.mac_line_fetches, 0u);
}

TEST(Integration, MeasuredMpkiTracksDescriptorForIntensiveWorkloads) {
  // Calibration sanity: measured LLC MPKI lands within 2x of target
  // after a cache-warmup phase (the warm working set is resident).
  for (const char* name : {"mcf", "lbm", "pr"}) {
    const auto* desc = workloads::find(name);
    workloads::SyntheticTrace t0(*desc, 0), t1(*desc, 1);
    sim::SystemConfig cfg;
    cfg.mem.cores = 2;
    cfg.security = SecurityParams::encrypt_only_xts();
    cfg.data_bytes = 4ull << 30;
    sim::System sys(cfg, {&t0, &t1});
    const auto r = sys.run(60000, 2'000'000'000, /*warmup=*/60000);
    // Lower bound 0.35x: the stream prefetcher legitimately converts a
    // slice of streaming workloads' demand misses into hits.
    EXPECT_GT(r.llc_mpki, desc->mpki * 0.35) << name;
    EXPECT_LT(r.llc_mpki, desc->mpki * 2.0) << name;
  }
}

}  // namespace
}  // namespace secddr
